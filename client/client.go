// Package client is the Go client for pgivd, the pgiv reactive graph
// database server.
//
// A Client multiplexes requests and view subscriptions over one TCP
// connection. Requests are synchronous: Exec, Query, RegisterView and
// friends block until the server's response arrives. Subscriptions are
// asynchronous: after Subscribe, the server pushes one DeltaBatch per
// (commit, view) pair, and the client invokes the subscription callback
// on its reader goroutine — callbacks must therefore return quickly and
// must not issue requests on the same Client (hand work to another
// goroutine instead).
package client

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"pgiv"
	"pgiv/internal/protocol"
)

// WriteStats reports the effect of a write statement.
type WriteStats = protocol.WriteStats

// Delta is one row change in a view: Mult > 0 appearances, Mult < 0
// disappearances.
type Delta struct {
	Row  pgiv.Row
	Mult int
}

// DeltaBatch is one view's coalesced per-commit change batch. Seq is the
// server's monotonic commit sequence number; batches for one view arrive
// in strictly increasing Seq order, at most one per commit.
type DeltaBatch struct {
	View   string
	Seq    uint64
	Deltas []Delta
}

// Client is a connection to a pgivd server. Safe for concurrent use.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serialises outbound frames

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *protocol.Response
	subs    map[string]func(DeltaBatch)
	err     error // terminal connection error, set once
	done    chan struct{}
}

// Dial connects to a pgivd server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:      nc,
		pending: make(map[uint64]chan *protocol.Response),
		subs:    make(map[string]func(DeltaBatch)),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection. In-flight requests fail.
func (c *Client) Close() error {
	err := c.nc.Close()
	<-c.done
	return err
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		msg, err := protocol.ReadFrame(c.nc)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		switch msg.Type {
		case "resp":
			if msg.Resp == nil {
				continue
			}
			c.mu.Lock()
			ch := c.pending[msg.Resp.ID]
			delete(c.pending, msg.Resp.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- msg.Resp
			}
		case "delta":
			if msg.Delta == nil {
				continue
			}
			c.mu.Lock()
			fn := c.subs[msg.Delta.View]
			c.mu.Unlock()
			if fn == nil {
				continue
			}
			batch := DeltaBatch{View: msg.Delta.View, Seq: msg.Delta.Seq}
			for _, wd := range msg.Delta.Deltas {
				row, err := protocol.DecodeRow(wd.Row)
				if err != nil {
					c.nc.Close()
					c.fail(fmt.Errorf("client: bad delta row: %w", err))
					return
				}
				batch.Deltas = append(batch.Deltas, Delta{Row: row, Mult: wd.Mult})
			}
			fn(batch)
		}
	}
}

// fail records the terminal error and releases every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

func (c *Client) call(req *protocol.Request) (*protocol.Response, error) {
	ch := make(chan *protocol.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := protocol.WriteFrame(c.nc, &protocol.Message{Type: "req", Req: req})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("pgivd: %s", resp.Error)
	}
	return resp, nil
}

// Ping checks the connection.
func (c *Client) Ping() error {
	_, err := c.call(&protocol.Request{Op: protocol.OpPing})
	return err
}

// Exec runs a Cypher write statement. It returns the statement's effect
// and the commit sequence number it produced (0 when the statement was a
// no-op and nothing was committed).
func (c *Client) Exec(stmt string, params pgiv.Props) (WriteStats, uint64, error) {
	resp, err := c.call(&protocol.Request{
		Op: protocol.OpExec, Text: stmt, Params: protocol.EncodeParams(params),
	})
	if err != nil {
		return WriteStats{}, 0, err
	}
	var st WriteStats
	if resp.Stats != nil {
		st = *resp.Stats
	}
	return st, resp.Seq, nil
}

// Query snapshot-evaluates a read query on the server. The query runs
// against a pinned commit epoch, concurrently with writers: it never
// waits for (or delays) a commit.
func (c *Client) Query(query string, params pgiv.Props) ([]string, []pgiv.Row, error) {
	schema, rows, _, err := c.QueryAt(query, params)
	return schema, rows, err
}

// QueryAt is Query returning also the commit sequence number (graph
// epoch) the result is consistent with: the result reflects exactly the
// commits with seq ≤ the returned value.
func (c *Client) QueryAt(query string, params pgiv.Props) ([]string, []pgiv.Row, uint64, error) {
	resp, err := c.call(&protocol.Request{
		Op: protocol.OpQuery, Text: query, Params: protocol.EncodeParams(params),
	})
	if err != nil {
		return nil, nil, 0, err
	}
	rows, err := decodeRows(resp.Rows)
	if err != nil {
		return nil, nil, 0, err
	}
	return resp.Schema, rows, resp.Seq, nil
}

// Rows reads a registered view's current contents (rank order for
// ordered views, canonical order otherwise) and the commit sequence
// number they are consistent with. On the server this is a wait-free
// load of the view's last published epoch — the cheapest read the
// protocol offers.
func (c *Client) Rows(name string) ([]string, []pgiv.Row, uint64, error) {
	resp, err := c.call(&protocol.Request{Op: protocol.OpRows, Name: name})
	if err != nil {
		return nil, nil, 0, err
	}
	rows, err := decodeRows(resp.Rows)
	if err != nil {
		return nil, nil, 0, err
	}
	return resp.Schema, rows, resp.Seq, nil
}

// RegisterView registers an incrementally maintained view on the server
// and returns its output schema.
func (c *Client) RegisterView(name, query string) ([]string, error) {
	resp, err := c.call(&protocol.Request{Op: protocol.OpRegister, Name: name, Text: query})
	if err != nil {
		return nil, err
	}
	return resp.Schema, nil
}

// DropView drops a view.
func (c *Client) DropView(name string) error {
	_, err := c.call(&protocol.Request{Op: protocol.OpDrop, Name: name})
	return err
}

// Views lists the server's registered view names, sorted.
func (c *Client) Views() ([]string, error) {
	resp, err := c.call(&protocol.Request{Op: protocol.OpViews})
	if err != nil {
		return nil, err
	}
	vs := append([]string(nil), resp.Views...)
	sort.Strings(vs)
	return vs, nil
}

// Subscribe starts streaming a view's per-commit delta batches to fn. It
// returns the view's schema, its current rows, and the commit sequence
// number the rows are consistent with: the first batch delivered to fn
// has a strictly greater Seq, so rows + batches replay the view exactly.
//
// fn runs on the client's reader goroutine: return quickly and do not
// call back into this Client from inside it.
func (c *Client) Subscribe(name string, fn func(DeltaBatch)) ([]string, []pgiv.Row, uint64, error) {
	c.mu.Lock()
	c.subs[name] = fn
	c.mu.Unlock()
	resp, err := c.call(&protocol.Request{Op: protocol.OpSubscribe, Name: name})
	if err != nil {
		c.mu.Lock()
		delete(c.subs, name)
		c.mu.Unlock()
		return nil, nil, 0, err
	}
	rows, err := decodeRows(resp.Rows)
	if err != nil {
		return nil, nil, 0, err
	}
	return resp.Schema, rows, resp.Seq, nil
}

// Unsubscribe stops streaming a view.
func (c *Client) Unsubscribe(name string) error {
	_, err := c.call(&protocol.Request{Op: protocol.OpUnsubscribe, Name: name})
	c.mu.Lock()
	delete(c.subs, name)
	c.mu.Unlock()
	return err
}

func decodeRows(ws [][]protocol.WireValue) ([]pgiv.Row, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	rows := make([]pgiv.Row, len(ws))
	for i, w := range ws {
		row, err := protocol.DecodeRow(w)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}
