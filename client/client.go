// Package client is the Go client for pgivd, the pgiv reactive graph
// database server.
//
// A Client multiplexes requests and view subscriptions over one TCP
// connection. Requests are synchronous: Exec, Query, RegisterView and
// friends block until the server's response arrives. Subscriptions are
// asynchronous: after Subscribe, the server pushes one DeltaBatch per
// (commit, view) pair, and the client invokes the subscription callback
// on its reader goroutine — callbacks must therefore return quickly and
// must not issue requests on the same Client (hand work to another
// goroutine instead).
//
// With WithReconnect, a lost connection is redialed with exponential
// backoff and jitter, every subscription is re-registered, and the
// stream resumes from the last commit sequence number the client saw:
// if the server's seed rows are consistent with exactly that sequence,
// delivery continues with no gap and no duplicate; otherwise the
// OnResync callback hands the application a fresh row snapshot to
// rebase on.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"pgiv"
	"pgiv/internal/protocol"
)

// connLostError marks a transport-level failure (connection dropped,
// frame write failed) as opposed to an error the server returned in a
// response frame. resubscribe relies on the distinction: transport
// failures are retried on the next redial cycle, server rejections drop
// the subscription for good.
type connLostError struct{ err error }

func (e *connLostError) Error() string { return e.err.Error() }
func (e *connLostError) Unwrap() error { return e.err }

func isConnLost(err error) bool {
	var cl *connLostError
	return errors.As(err, &cl)
}

// WriteStats reports the effect of a write statement.
type WriteStats = protocol.WriteStats

// Delta is one row change in a view: Mult > 0 appearances, Mult < 0
// disappearances.
type Delta struct {
	Row  pgiv.Row
	Mult int
}

// DeltaBatch is one view's coalesced per-commit change batch. Seq is the
// server's monotonic commit sequence number; batches for one view arrive
// in strictly increasing Seq order, at most one per commit.
type DeltaBatch struct {
	View   string
	Seq    uint64
	Deltas []Delta
}

// ReconnectConfig tunes WithReconnect.
type ReconnectConfig struct {
	// MinBackoff is the first redial delay (default 25ms); each failed
	// attempt doubles it up to MaxBackoff (default 2s). Every delay gets
	// full jitter: the actual sleep is uniform in [delay/2, delay].
	MinBackoff time.Duration
	MaxBackoff time.Duration

	// MaxAttempts bounds consecutive failed redials before the client
	// gives up and turns the connection error terminal (0 = never give
	// up; a successful redial resets the count).
	MaxAttempts int

	// OnResync fires after a resubscription whose seed rows are NOT the
	// exact continuation of the delta stream — commits happened while
	// disconnected (seq jumped forward), or the server recovered to an
	// older epoch (seq moved back). The rows are the view's full contents
	// consistent with seq; the application must replace its replica with
	// them. Subsequent batches continue from seq. Like subscription
	// callbacks it runs on the client's reader machinery: return quickly
	// and do not call back into the Client. Nil = resyncs are silent.
	OnResync func(view string, schema []string, rows []pgiv.Row, seq uint64)
}

// DialOption configures Dial.
type DialOption func(*Client)

// WithReconnect makes the client survive connection loss: the connection
// is redialed with exponential backoff, subscriptions are re-registered
// and their streams resume (see ReconnectConfig.OnResync for the
// cannot-resume-exactly case). Requests in flight when the connection
// drops still fail — the client cannot know whether a write committed —
// but later requests proceed once the redial succeeds.
func WithReconnect(cfg ReconnectConfig) DialOption {
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff < cfg.MinBackoff {
		cfg.MaxBackoff = 2 * time.Second
	}
	return func(c *Client) { c.rc = &cfg }
}

// subState tracks one subscription across the connection's lifetime.
// lastSeq is the last sequence number delivered (or seeded); active
// gates delta delivery — it drops on disconnect and is restored by the
// resubscription's response, so a stale stream can never interleave
// with a fresh seed.
type subState struct {
	fn      func(DeltaBatch)
	lastSeq uint64
	active  bool
}

// Client is a connection to a pgivd server. Safe for concurrent use.
type Client struct {
	addr string
	rc   *ReconnectConfig // nil = fail on first connection loss

	wmu sync.Mutex // serialises outbound frames

	mu         sync.Mutex
	nc         net.Conn
	nextID     uint64
	pending    map[uint64]chan *protocol.Response
	subs       map[string]*subState
	subPending map[uint64]string // in-flight subscribe request -> view
	err        error             // connection error; terminal unless reconnecting
	closed     bool
	done       chan struct{}
	closing    chan struct{}
}

// Dial connects to a pgivd server.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	c := &Client{
		addr:       addr,
		pending:    make(map[uint64]chan *protocol.Response),
		subs:       make(map[string]*subState),
		subPending: make(map[uint64]string),
		done:       make(chan struct{}),
		closing:    make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.nc = nc
	go c.run()
	return c, nil
}

// Close tears down the connection and stops any reconnection. In-flight
// requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.closing)
	}
	nc := c.nc
	c.mu.Unlock()
	err := nc.Close()
	<-c.done
	return err
}

// run owns the connection lifecycle: read until the connection dies,
// then (with reconnect) redial, resubscribe and read again.
func (c *Client) run() {
	defer close(c.done)
	for {
		c.readOnce()
		c.mu.Lock()
		stop := c.closed || c.rc == nil
		c.mu.Unlock()
		if stop || !c.redial() {
			return
		}
		go c.resubscribe()
	}
}

// readOnce drains the current connection until it fails, dispatching
// responses and delta batches. On failure it releases every waiter and
// deactivates every subscription.
func (c *Client) readOnce() {
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	for {
		msg, err := protocol.ReadFrame(nc)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		switch msg.Type {
		case "resp":
			if msg.Resp == nil {
				continue
			}
			c.mu.Lock()
			if view, ok := c.subPending[msg.Resp.ID]; ok {
				// A subscribe response: activate the stream before any of
				// its delta frames are read (same goroutine, so the wire
				// order response-then-deltas is preserved exactly).
				delete(c.subPending, msg.Resp.ID)
				if st := c.subs[view]; st != nil && msg.Resp.Error == "" {
					st.lastSeq = msg.Resp.Seq
					st.active = true
				}
			}
			ch := c.pending[msg.Resp.ID]
			delete(c.pending, msg.Resp.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- msg.Resp
			}
		case "delta":
			if msg.Delta == nil {
				continue
			}
			c.mu.Lock()
			st := c.subs[msg.Delta.View]
			var fn func(DeltaBatch)
			if st != nil && st.active && msg.Delta.Seq > st.lastSeq {
				st.lastSeq = msg.Delta.Seq
				fn = st.fn
			}
			c.mu.Unlock()
			if fn == nil {
				continue
			}
			batch := DeltaBatch{View: msg.Delta.View, Seq: msg.Delta.Seq}
			for _, wd := range msg.Delta.Deltas {
				row, err := protocol.DecodeRow(wd.Row)
				if err != nil {
					nc.Close()
					c.fail(fmt.Errorf("client: bad delta row: %w", err))
					return
				}
				batch.Deltas = append(batch.Deltas, Delta{Row: row, Mult: wd.Mult})
			}
			fn(batch)
		case "bye":
			// Graceful server shutdown: the connection is about to drop
			// deliberately and nothing further will arrive. Stop
			// reconnecting — redialing a server that said goodbye would
			// spin against a closed port.
			c.mu.Lock()
			if !c.closed {
				c.closed = true
				close(c.closing)
			}
			c.mu.Unlock()
			nc.Close()
			c.fail(fmt.Errorf("client: server shut down"))
			return
		}
	}
}

// fail records the connection error, releases every waiter and
// deactivates every subscription.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	for id := range c.subPending {
		delete(c.subPending, id)
	}
	for _, st := range c.subs {
		st.active = false
	}
	c.mu.Unlock()
}

// redial re-establishes the connection with exponential backoff and full
// jitter, returning false when the client is closed or MaxAttempts is
// exhausted (the recorded error stays terminal then).
func (c *Client) redial() bool {
	backoff := c.rc.MinBackoff
	for attempt := 0; ; attempt++ {
		if c.rc.MaxAttempts > 0 && attempt >= c.rc.MaxAttempts {
			return false
		}
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-c.closing:
			return false
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > c.rc.MaxBackoff {
			backoff = c.rc.MaxBackoff
		}
		nc, err := net.Dial("tcp", c.addr)
		if err != nil {
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nc.Close()
			return false
		}
		c.nc = nc
		c.err = nil
		c.mu.Unlock()
		return true
	}
}

// resubscribe re-registers every subscription on the fresh connection
// and decides, per view, whether the stream resumed exactly (seed seq ==
// last delivered seq: nothing to do) or needs a resync (OnResync).
func (c *Client) resubscribe() {
	c.mu.Lock()
	names := make([]string, 0, len(c.subs))
	for name := range c.subs {
		names = append(names, name)
	}
	onResync := c.rc.OnResync
	c.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		c.mu.Lock()
		st := c.subs[name]
		if st == nil { // unsubscribed meanwhile
			c.mu.Unlock()
			continue
		}
		pre := st.lastSeq
		c.mu.Unlock()
		resp, err := c.doCall(&protocol.Request{Op: protocol.OpSubscribe, Name: name}, name)
		if err != nil {
			if isConnLost(err) {
				return // connection died again; the next cycle retries
			}
			// The server rejected the view (dropped while we were away):
			// the subscription cannot be resumed, forget it.
			c.mu.Lock()
			delete(c.subs, name)
			c.mu.Unlock()
			continue
		}
		if resp.Seq != pre && onResync != nil {
			rows, err := decodeRows(resp.Rows)
			if err != nil {
				continue
			}
			onResync(name, resp.Schema, rows, resp.Seq)
		}
	}
}

func (c *Client) call(req *protocol.Request) (*protocol.Response, error) {
	return c.doCall(req, "")
}

// doCall sends one request and waits for its response. A non-empty
// subView marks the request as a subscribe for that view, so the reader
// can activate the stream at the exact wire position of the response.
func (c *Client) doCall(req *protocol.Request, subView string) (*protocol.Response, error) {
	ch := make(chan *protocol.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, &connLostError{err}
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	if subView != "" {
		c.subPending[req.ID] = subView
	}
	nc := c.nc
	c.mu.Unlock()

	c.wmu.Lock()
	err := protocol.WriteFrame(nc, &protocol.Message{Type: "req", Req: req})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		delete(c.subPending, req.ID)
		c.mu.Unlock()
		return nil, &connLostError{err}
	}
	resp, ok := <-ch
	if !ok {
		// The channel is closed only by fail(): the connection died while
		// this request was in flight. c.err may already have been reset
		// to nil by a concurrent redial — the typed error preserves the
		// classification regardless.
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("client: connection lost")
		}
		return nil, &connLostError{err}
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("pgivd: %s", resp.Error)
	}
	return resp, nil
}

// Ping checks the connection.
func (c *Client) Ping() error {
	_, err := c.call(&protocol.Request{Op: protocol.OpPing})
	return err
}

// Exec runs a Cypher write statement. It returns the statement's effect
// and the commit sequence number it produced (0 when the statement was a
// no-op and nothing was committed).
func (c *Client) Exec(stmt string, params pgiv.Props) (WriteStats, uint64, error) {
	resp, err := c.call(&protocol.Request{
		Op: protocol.OpExec, Text: stmt, Params: protocol.EncodeParams(params),
	})
	if err != nil {
		return WriteStats{}, 0, err
	}
	var st WriteStats
	if resp.Stats != nil {
		st = *resp.Stats
	}
	return st, resp.Seq, nil
}

// Query evaluates a read query on the server. The query runs against a
// pinned commit epoch, concurrently with writers: it never waits for
// (or delays) a commit. When a registered view's materialized rows
// cover the query, the server answers from that memo plus a residual
// plan instead of a from-scratch snapshot evaluation (unless it was
// started with -no-rewrite); the result is byte-identical either way.
func (c *Client) Query(query string, params pgiv.Props) ([]string, []pgiv.Row, error) {
	schema, rows, _, err := c.QueryAt(query, params)
	return schema, rows, err
}

// QueryAt is Query returning also the commit sequence number (graph
// epoch) the result is consistent with: the result reflects exactly the
// commits with seq ≤ the returned value.
func (c *Client) QueryAt(query string, params pgiv.Props) ([]string, []pgiv.Row, uint64, error) {
	resp, err := c.call(&protocol.Request{
		Op: protocol.OpQuery, Text: query, Params: protocol.EncodeParams(params),
	})
	if err != nil {
		return nil, nil, 0, err
	}
	rows, err := decodeRows(resp.Rows)
	if err != nil {
		return nil, nil, 0, err
	}
	return resp.Schema, rows, resp.Seq, nil
}

// Rows reads a registered view's current contents (rank order for
// ordered views, canonical order otherwise) and the commit sequence
// number they are consistent with. On the server this is a wait-free
// load of the view's last published epoch — the cheapest read the
// protocol offers.
func (c *Client) Rows(name string) ([]string, []pgiv.Row, uint64, error) {
	resp, err := c.call(&protocol.Request{Op: protocol.OpRows, Name: name})
	if err != nil {
		return nil, nil, 0, err
	}
	rows, err := decodeRows(resp.Rows)
	if err != nil {
		return nil, nil, 0, err
	}
	return resp.Schema, rows, resp.Seq, nil
}

// RegisterView registers an incrementally maintained view on the server
// and returns its output schema.
func (c *Client) RegisterView(name, query string) ([]string, error) {
	resp, err := c.call(&protocol.Request{Op: protocol.OpRegister, Name: name, Text: query})
	if err != nil {
		return nil, err
	}
	return resp.Schema, nil
}

// DropView drops a view.
func (c *Client) DropView(name string) error {
	_, err := c.call(&protocol.Request{Op: protocol.OpDrop, Name: name})
	return err
}

// Views lists the server's registered view names, sorted.
func (c *Client) Views() ([]string, error) {
	resp, err := c.call(&protocol.Request{Op: protocol.OpViews})
	if err != nil {
		return nil, err
	}
	vs := append([]string(nil), resp.Views...)
	sort.Strings(vs)
	return vs, nil
}

// Subscribe starts streaming a view's per-commit delta batches to fn. It
// returns the view's schema, its current rows, and the commit sequence
// number the rows are consistent with: the first batch delivered to fn
// has a strictly greater Seq, so rows + batches replay the view exactly.
//
// fn runs on the client's reader goroutine: return quickly and do not
// call back into this Client from inside it.
func (c *Client) Subscribe(name string, fn func(DeltaBatch)) ([]string, []pgiv.Row, uint64, error) {
	c.mu.Lock()
	c.subs[name] = &subState{fn: fn}
	c.mu.Unlock()
	resp, err := c.doCall(&protocol.Request{Op: protocol.OpSubscribe, Name: name}, name)
	if err != nil {
		c.mu.Lock()
		delete(c.subs, name)
		c.mu.Unlock()
		return nil, nil, 0, err
	}
	rows, err := decodeRows(resp.Rows)
	if err != nil {
		return nil, nil, 0, err
	}
	return resp.Schema, rows, resp.Seq, nil
}

// Unsubscribe stops streaming a view.
func (c *Client) Unsubscribe(name string) error {
	_, err := c.call(&protocol.Request{Op: protocol.OpUnsubscribe, Name: name})
	c.mu.Lock()
	delete(c.subs, name)
	c.mu.Unlock()
	return err
}

func decodeRows(ws [][]protocol.WireValue) ([]pgiv.Row, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	rows := make([]pgiv.Row, len(ws))
	for i, w := range ws {
		row, err := protocol.DecodeRow(w)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}
