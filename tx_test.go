// Transaction semantics through the public facade: coalescing inside one
// commit must be invisible to view contents and visible (as net batches)
// to OnChange subscribers, and batched loading must be indistinguishable
// from per-operation loading except in cost.
package pgiv

import (
	"fmt"
	"testing"

	"pgiv/internal/value"
	"pgiv/internal/workload"
)

func mustRegisterT(t *testing.T, e *Engine, name, q string) *View {
	t.Helper()
	v, err := e.RegisterView(name, q)
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return v
}

// TestTxAddRemoveEdgeYieldsNoViewDeltas: an edge added and removed in
// one transaction must produce zero view deltas and leave the view rows
// untouched.
func TestTxAddRemoveEdgeYieldsNoViewDeltas(t *testing.T) {
	g := NewGraph()
	p := g.AddVertex([]string{"Post"}, Props{"lang": Str("en")})
	c := g.AddVertex([]string{"Comm"}, Props{"lang": Str("en")})
	engine := NewEngine(g)
	view := mustRegisterT(t, engine, "same-lang",
		"MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c")

	var fired int
	view.OnChange(func(ds []Delta) { fired++ })

	before := view.Rows()
	if err := g.Batch(func(tx *Tx) error {
		e, err := tx.AddEdge(p, c, "REPLY", nil)
		if err != nil {
			return err
		}
		return tx.RemoveEdge(e)
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("OnChange fired %d times for a self-cancelling tx, want 0", fired)
	}
	after := view.Rows()
	if len(before) != len(after) {
		t.Fatalf("rows changed: %d -> %d", len(before), len(after))
	}
}

// TestTxPropertyFlipFlopYieldsNoViewDeltas: writing a property away and
// back inside one transaction coalesces to nothing.
func TestTxPropertyFlipFlopYieldsNoViewDeltas(t *testing.T) {
	g := NewGraph()
	p := g.AddVertex([]string{"Post"}, Props{"lang": Str("en")})
	c := g.AddVertex([]string{"Comm"}, Props{"lang": Str("en")})
	if _, err := g.AddEdge(p, c, "REPLY", nil); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(g)
	view := mustRegisterT(t, engine, "threads",
		"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
	if len(view.Rows()) != 1 {
		t.Fatalf("seed rows = %d, want 1", len(view.Rows()))
	}

	var fired int
	view.OnChange(func(ds []Delta) { fired++ })

	if err := g.Batch(func(tx *Tx) error {
		_ = tx.SetVertexProperty(c, "lang", Str("de"))
		_ = tx.SetVertexProperty(c, "lang", Str("en"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("OnChange fired %d times for a flip-flop tx, want 0", fired)
	}
	if len(view.Rows()) != 1 {
		t.Errorf("rows after flip-flop = %d, want 1", len(view.Rows()))
	}
}

// TestOnChangeOncePerCommit: a multi-operation transaction touching a
// view several times fires OnChange exactly once, with the coalesced net
// batch; folding the stream over many commits reproduces the view.
func TestOnChangeOncePerCommit(t *testing.T) {
	g := NewGraph()
	engine := NewEngine(g)
	view := mustRegisterT(t, engine, "popular",
		"MATCH (u:Person)-[:LIKES]->(p:Post) RETURN p, count(u)")

	var batches [][]Delta
	view.OnChange(func(ds []Delta) {
		cp := make([]Delta, len(ds))
		copy(cp, ds)
		batches = append(batches, cp)
	})

	var post ID
	if err := g.Batch(func(tx *Tx) error {
		post = tx.AddVertex([]string{"Post"}, nil)
		for i := 0; i < 5; i++ {
			u := tx.AddVertex([]string{"Person"}, nil)
			if _, err := tx.AddEdge(u, post, "LIKES", nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 {
		t.Fatalf("OnChange fired %d times for one commit, want 1", len(batches))
	}
	// Without coalescing, the aggregate would have emitted a
	// retract/assert pair per LIKES edge; the net batch asserts only the
	// final count row.
	if len(batches[0]) != 1 {
		t.Fatalf("coalesced batch has %d deltas, want 1 (got %v)", len(batches[0]), batches[0])
	}
	d := batches[0][0]
	if d.Mult != 1 || !value.Equal(d.Row[1], value.NewInt(5)) {
		t.Errorf("net delta = %+v, want +$(post, 5)", d)
	}

	// A second commit fires a second batch: retract count 5, assert 6.
	if err := g.Batch(func(tx *Tx) error {
		u := tx.AddVertex([]string{"Person"}, nil)
		_, err := tx.AddEdge(u, post, "LIKES", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("OnChange fired %d times after two commits, want 2", len(batches))
	}
	if len(batches[1]) != 2 {
		t.Errorf("second batch has %d deltas, want retract+assert pair", len(batches[1]))
	}
}

// TestBatchedVsPerOpRows: loading the identical operation stream through
// one transaction vs through auto-committed single operations must
// produce byte-identical view contents (acceptance criterion for the
// loading benchmark pair).
func TestBatchedVsPerOpRows(t *testing.T) {
	cfg := workload.SocialConfig{
		Persons: 30, PostsPerPerson: 3, RepliesPerPost: 5,
		KnowsPerPerson: 4, LikesPerPerson: 3,
		Langs: []string{"en", "de"}, Seed: 99,
	}
	run := func(load func(*workload.Social)) map[string][]Row {
		soc := workload.NewSocial(cfg)
		engine := NewEngine(soc.G)
		views := make(map[string]*View)
		for name, q := range workload.SocialQueries {
			views[name] = mustRegisterT(t, engine, name, q)
		}
		load(soc)
		out := make(map[string][]Row)
		for name, v := range views {
			out[name] = v.Rows()
		}
		return out
	}
	perOp := run((*workload.Social).LoadPerOp)
	batched := run((*workload.Social).Load)

	for name, want := range perOp {
		got := batched[name]
		if len(got) != len(want) {
			t.Fatalf("%s: batched %d rows, per-op %d", name, len(got), len(want))
		}
		for i := range got {
			if string(value.RowKey(got[i])) != string(value.RowKey(want[i])) {
				t.Fatalf("%s row %d: batched %v, per-op %v", name, i, got[i], want[i])
			}
		}
	}

	// And both must agree with the from-scratch snapshot evaluation.
	soc := workload.GenerateSocial(cfg)
	for name, q := range workload.SocialQueries {
		res, err := Snapshot(soc.G, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Sorted()) != len(perOp[name]) {
			t.Fatalf("%s: snapshot %d rows, views %d", name, len(res.Sorted()), len(perOp[name]))
		}
	}
}

// TestBatchedChurnMatchesSnapshot: a mixed churn applied in batches must
// keep every view consistent with the from-scratch oracle.
func TestBatchedChurnMatchesSnapshot(t *testing.T) {
	soc := workload.GenerateSocial(workload.SocialConfig{
		Persons: 12, PostsPerPerson: 2, RepliesPerPost: 4,
		KnowsPerPerson: 3, LikesPerPerson: 2,
		Langs: []string{"en", "de"}, Seed: 5,
	})
	engine := NewEngine(soc.G)
	views := make(map[string]*View)
	for name, q := range workload.SocialQueries {
		views[name] = mustRegisterT(t, engine, name, q)
	}
	for step := 0; step < 8; step++ {
		soc.ChurnBatch(10)
		for name, v := range views {
			res, err := Snapshot(soc.G, v.Query())
			if err != nil {
				t.Fatal(err)
			}
			want := res.Sorted()
			got := v.Rows()
			if len(got) != len(want) {
				t.Fatalf("step %d %s: view %d rows, snapshot %d", step, name, len(got), len(want))
			}
			for i := range got {
				if value.CompareRows(got[i], want[i]) != 0 {
					t.Fatalf("step %d %s row %d differs: %v vs %v", step, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDropViewAndCloseIdempotent exercises the sink-index removal path
// and repeated Close.
func TestDropViewAndCloseIdempotent(t *testing.T) {
	soc := workload.GenerateSocial(workload.SocialConfig{
		Persons: 8, PostsPerPerson: 2, RepliesPerPost: 3,
		KnowsPerPerson: 2, LikesPerPerson: 2,
		Langs: []string{"en"}, Seed: 1,
	})
	engine := NewEngine(soc.G)
	for i := 0; i < 6; i++ {
		mustRegisterT(t, engine, fmt.Sprintf("v%d", i),
			"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t")
	}
	// Drop out of registration order to stress the swap-delete index.
	for _, i := range []int{3, 0, 5, 1, 4} {
		if err := engine.DropView(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := engine.View("v2")
	// Several batched commits: sink removal must preserve the
	// input-before-transitive fan-out order, or stale fragments survive.
	for step := 0; step < 5; step++ {
		soc.ChurnBatch(20)
		res, err := Snapshot(soc.G, v.Query())
		if err != nil {
			t.Fatal(err)
		}
		want := res.Sorted()
		got := v.Rows()
		if len(got) != len(want) {
			t.Fatalf("step %d: surviving view out of sync: %d vs %d", step, len(got), len(want))
		}
		for i := range got {
			if value.CompareRows(got[i], want[i]) != 0 {
				t.Fatalf("step %d row %d differs", step, i)
			}
		}
	}
	engine.Close()
	engine.Close() // idempotent
	soc.Churn(1)   // must not panic or reach the closed engine
}
