// Benchmark harness: one benchmark family per experiment in DESIGN.md
// (EXP-A .. EXP-I). The paper (a SIGMOD SRC abstract) has no numbered
// tables or figures; these benchmarks quantify its claims — incremental
// maintenance vs full recomputation, fine-grained property updates (FGN),
// transitive/path maintenance (ORD), schema pushdown, and Rete node
// sharing. cmd/pgivbench renders the same experiments as tables for
// EXPERIMENTS.md.
package pgiv

import (
	"fmt"
	"testing"

	"pgiv/internal/workload"
)

// mustRegister registers a view or fails the benchmark.
func mustRegister(b *testing.B, e *Engine, name, q string) *View {
	b.Helper()
	v, err := e.RegisterView(name, q)
	if err != nil {
		b.Fatalf("register %s: %v", name, err)
	}
	return v
}

// paperGraph builds the running example graph of Section 2.
func paperGraph(b *testing.B) (*Graph, ID, ID) {
	g := NewGraph()
	post := g.AddVertex([]string{"Post"}, Props{"lang": Str("en")})
	c2 := g.AddVertex([]string{"Comm"}, Props{"lang": Str("en")})
	c3 := g.AddVertex([]string{"Comm"}, Props{"lang": Str("en")})
	if _, err := g.AddEdge(post, c2, "REPLY", nil); err != nil {
		b.Fatal(err)
	}
	if _, err := g.AddEdge(c2, c3, "REPLY", nil); err != nil {
		b.Fatal(err)
	}
	return g, post, c3
}

const paperQuery = "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t"

// BenchmarkEXPA_RunningExample maintains the paper's example view under a
// language flip (one FGN property update per iteration).
func BenchmarkEXPA_RunningExample(b *testing.B) {
	b.Run("Incremental", func(b *testing.B) {
		g, _, c3 := paperGraph(b)
		engine := NewEngine(g)
		mustRegister(b, engine, "threads", paperQuery)
		langs := []Value{Str("de"), Str("en")}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.SetVertexProperty(c3, "lang", langs[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Snapshot", func(b *testing.B) {
		g, _, c3 := paperGraph(b)
		langs := []Value{Str("de"), Str("en")}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.SetVertexProperty(c3, "lang", langs[i%2]); err != nil {
				b.Fatal(err)
			}
			if _, err := Snapshot(g, paperQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEXPB_TrainBenchmark compares continuous validation of all six
// Train Benchmark constraints per transformation: incremental maintenance
// vs re-running the queries, across model scales.
func BenchmarkEXPB_TrainBenchmark(b *testing.B) {
	for _, scale := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("scale=%d/Incremental", scale), func(b *testing.B) {
			train := workload.GenerateTrain(workload.DefaultTrainConfig(scale))
			engine := NewEngine(train.G)
			for name, q := range workload.TrainQueries {
				mustRegister(b, engine, name, q)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				train.InjectRepairMix(1)
			}
		})
		b.Run(fmt.Sprintf("scale=%d/Snapshot", scale), func(b *testing.B) {
			train := workload.GenerateTrain(workload.DefaultTrainConfig(scale))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				train.InjectRepairMix(1)
				for _, q := range workload.TrainQueries {
					if _, err := Snapshot(train.G, q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// replyChain builds a Post followed by a linear chain of n Comm replies
// and returns the ids in order.
func replyChain(b *testing.B, n int) (*Graph, []ID, []ID) {
	g := NewGraph()
	ids := []ID{g.AddVertex([]string{"Post"}, Props{"lang": Str("en")})}
	var eids []ID
	for i := 0; i < n; i++ {
		c := g.AddVertex([]string{"Comm"}, Props{"lang": Str("en")})
		e, err := g.AddEdge(ids[len(ids)-1], c, "REPLY", nil)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, c)
		eids = append(eids, e)
	}
	return g, ids, eids
}

// BenchmarkEXPC_Transitive measures maintenance of the transitive-path
// view when an edge at the end of a reply chain of the given depth churns
// (delete + re-insert), for growing depths.
func BenchmarkEXPC_Transitive(b *testing.B) {
	for _, depth := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("depth=%d/Incremental", depth), func(b *testing.B) {
			g, ids, eids := replyChain(b, depth)
			engine := NewEngine(g)
			mustRegister(b, engine, "threads", paperQuery)
			last := eids[len(eids)-1]
			src, dst := ids[len(ids)-2], ids[len(ids)-1]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.RemoveEdge(last); err != nil {
					b.Fatal(err)
				}
				var err error
				last, err = g.AddEdge(src, dst, "REPLY", nil)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("depth=%d/Snapshot", depth), func(b *testing.B) {
			g, ids, eids := replyChain(b, depth)
			last := eids[len(eids)-1]
			src, dst := ids[len(ids)-2], ids[len(ids)-1]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.RemoveEdge(last); err != nil {
					b.Fatal(err)
				}
				var err error
				last, err = g.AddEdge(src, dst, "REPLY", nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Snapshot(g, paperQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEXPD_FGN measures a single fine-grained property update on the
// social workload with the full view battery registered, against
// re-evaluating the battery.
func BenchmarkEXPD_FGN(b *testing.B) {
	b.Run("Incremental", func(b *testing.B) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := NewEngine(soc.G)
		for name, q := range workload.SocialQueries {
			mustRegister(b, engine, name, q)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			soc.FlipLanguage()
		}
	})
	b.Run("Snapshot", func(b *testing.B) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			soc.FlipLanguage()
			for _, q := range workload.SocialQueries {
				if _, err := Snapshot(soc.G, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// wideGraph builds vertices with `width` properties of which the
// registered view uses exactly one — the schema-inference experiment.
func wideGraph(width, n int) (*Graph, []ID) {
	g := NewGraph()
	var ids []ID
	for i := 0; i < n; i++ {
		props := Props{}
		for w := 0; w < width; w++ {
			props[fmt.Sprintf("p%d", w)] = Int(int64(w))
		}
		ids = append(ids, g.AddVertex([]string{"Wide"}, props))
	}
	return g, ids
}

// BenchmarkEXPE_Pushdown shows the effect of minimal-schema inference:
// updating a property outside the view's inferred schema is filtered at
// the input node, regardless of how many other properties the vertex
// carries.
func BenchmarkEXPE_Pushdown(b *testing.B) {
	const width = 32
	b.Run("UpdateUnusedProp", func(b *testing.B) {
		g, ids := wideGraph(width, 500)
		engine := NewEngine(g)
		mustRegister(b, engine, "v", "MATCH (w:Wide) WHERE w.p0 > 1 RETURN w, w.p0")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// p31 is not part of the view's inferred schema.
			if err := g.SetVertexProperty(ids[i%len(ids)], "p31", Int(int64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("UpdateUsedProp", func(b *testing.B) {
		g, ids := wideGraph(width, 500)
		engine := NewEngine(g)
		mustRegister(b, engine, "v", "MATCH (w:Wide) WHERE w.p0 > 1 RETURN w, w.p0")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.SetVertexProperty(ids[i%len(ids)], "p0", Int(int64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SnapshotReeval", func(b *testing.B) {
		g, ids := wideGraph(width, 500)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.SetVertexProperty(ids[i%len(ids)], "p0", Int(int64(i))); err != nil {
				b.Fatal(err)
			}
			if _, err := Snapshot(g, "MATCH (w:Wide) WHERE w.p0 > 1 RETURN w, w.p0"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// overlappingViews registers n views that all scan the same inputs.
func overlappingViews(b *testing.B, e *Engine, n int) {
	for i := 0; i < n; i++ {
		mustRegister(b, e, fmt.Sprintf("v%d", i),
			fmt.Sprintf("MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.score > %d RETURN a, b", i))
	}
}

// BenchmarkEXPF_Sharing measures update cost with 16 overlapping views,
// with Rete input-node sharing on and off.
func BenchmarkEXPF_Sharing(b *testing.B) {
	run := func(b *testing.B, opts EngineOptions) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := NewEngineWithOptions(soc.G, opts)
		overlappingViews(b, engine, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			soc.FlipScore()
		}
	}
	b.Run("Shared", func(b *testing.B) { run(b, EngineOptions{}) })
	b.Run("Private", func(b *testing.B) { run(b, EngineOptions{NoSharing: true}) })
}

// BenchmarkEXPG_AtomicPaths measures the paper's ORD design point: a
// transaction that removes one edge of a long reply chain and adds a
// replacement; every path through it is deleted and re-derived as an
// atomic unit.
func BenchmarkEXPG_AtomicPaths(b *testing.B) {
	const depth = 12
	b.Run("Incremental", func(b *testing.B) {
		g, ids, eids := replyChain(b, depth)
		engine := NewEngine(g)
		mustRegister(b, engine, "threads", paperQuery)
		mid := eids[depth/2]
		src, dst := ids[depth/2], ids[depth/2+1]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.RemoveEdge(mid); err != nil {
				b.Fatal(err)
			}
			var err error
			mid, err = g.AddEdge(src, dst, "REPLY", nil)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Snapshot", func(b *testing.B) {
		g, ids, eids := replyChain(b, depth)
		mid := eids[depth/2]
		src, dst := ids[depth/2], ids[depth/2+1]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.RemoveEdge(mid); err != nil {
				b.Fatal(err)
			}
			var err error
			mid, err = g.AddEdge(src, dst, "REPLY", nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Snapshot(g, paperQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEXPH_Battery runs the mixed social churn with the whole view
// battery registered (fragment breadth under load).
func BenchmarkEXPH_Battery(b *testing.B) {
	b.Run("Incremental", func(b *testing.B) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := NewEngine(soc.G)
		for name, q := range workload.SocialQueries {
			mustRegister(b, engine, name, q)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			soc.Churn(1)
		}
	})
	b.Run("Snapshot", func(b *testing.B) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			soc.Churn(1)
			for _, q := range workload.SocialQueries {
				if _, err := Snapshot(soc.G, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// loadConfig sizes the social workload at ~10k mutations (vertices,
// edges and property writes) for the loading benchmarks.
func loadConfig() workload.SocialConfig {
	cfg := workload.DefaultSocialConfig(1)
	cfg.Persons = 120
	return cfg
}

// benchLoad measures loading the ~10k-mutation social workload into a
// graph with the full view battery registered up front, so every
// mutation is propagated into the views.
func benchLoad(b *testing.B, load func(*workload.Social)) {
	cfg := loadConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer() // engine construction and view compilation are setup
		soc := workload.NewSocial(cfg)
		engine := NewEngine(soc.G)
		for name, q := range workload.SocialQueries {
			mustRegister(b, engine, name, q)
		}
		b.StartTimer()
		load(soc)
		b.StopTimer()
		engine.Close()
		b.StartTimer()
	}
}

// BenchmarkPerOpLoad drives the load through auto-committed one-op
// transactions: one lock acquisition, sink fan-out and view flush per
// mutation.
func BenchmarkPerOpLoad(b *testing.B) {
	benchLoad(b, (*workload.Social).LoadPerOp)
}

// BenchmarkBatchedLoad drives the identical operation stream through one
// transaction: a single coalesced ChangeSet propagates per commit. The
// final view contents are byte-identical to the per-op path (asserted in
// TestBatchedVsPerOpRows).
func BenchmarkBatchedLoad(b *testing.B) {
	benchLoad(b, (*workload.Social).Load)
}

// --- EXP-K: the delta hot path (allocations and parallel propagation) ---
//
// The EXP-K family quantifies the zero-allocation work on the delta hot
// path (scratch-buffer key encoding, typed adjacency indexes, pooled
// emit buffers) and the per-view parallel propagation scheduler. Run
// with -benchmem; cmd/pgivbench -json records the same figures in
// BENCH_PR2.json.

// BenchmarkEXPK_SingleUpdateFGN is the allocation-focused view of the
// single fine-grained property update (EXP-D's incremental side): one
// language flip per iteration with the full social battery registered.
// NumWorkers is pinned to 1 so the allocation trajectory is
// scheduler-independent — the default engine resolves NumWorkers to
// GOMAXPROCS, and the parallel path's per-commit closures would make
// allocs/op vary by host core count.
func BenchmarkEXPK_SingleUpdateFGN(b *testing.B) {
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
	engine := NewEngineWithOptions(soc.G, EngineOptions{NumWorkers: 1})
	defer engine.Close()
	for name, q := range workload.SocialQueries {
		mustRegister(b, engine, name, q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		soc.FlipLanguage()
	}
}

// BenchmarkEXPK_TransitiveEdgeFlip is the allocation-focused view of the
// transitive edge flip: delete and re-insert the last edge of a 16-hop
// reply chain under the paper's path view. Single view, so propagation
// is sequential regardless of NumWorkers.
func BenchmarkEXPK_TransitiveEdgeFlip(b *testing.B) {
	g, ids, eids := replyChain(b, 16)
	engine := NewEngine(g)
	defer engine.Close()
	mustRegister(b, engine, "threads", paperQuery)
	last := eids[len(eids)-1]
	src, dst := ids[len(ids)-2], ids[len(ids)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.RemoveEdge(last); err != nil {
			b.Fatal(err)
		}
		var err error
		last, err = g.AddEdge(src, dst, "REPLY", nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// The batched-load leg of EXP-K is BenchmarkBatchedLoad above (it
// already reports allocations); cmd/pgivbench records it in the EXP-K
// table.

// BenchmarkEXPK_MultiView measures one edge flip propagating into 1, 2,
// 4 and 8 transitive path views, sequentially (NumWorkers 1) and on the
// worker pool (NumWorkers 4). Every view is registered over the same
// inputs, so the shared input nodes translate each commit once in both
// modes; the per-view beta networks and transitive sinks are what the
// scheduler fans out. On a multi-core host the parallel rows divide the
// per-view work across cores; on a single-core host they expose the
// scheduler's overhead floor.
func BenchmarkEXPK_MultiView(b *testing.B) {
	for _, nv := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("views=%d/workers=%d", nv, workers), func(b *testing.B) {
				g, ids, eids := replyChain(b, 16)
				engine := NewEngineWithOptions(g, EngineOptions{NumWorkers: workers})
				for i := 0; i < nv; i++ {
					mustRegister(b, engine, fmt.Sprintf("threads-%d", i), paperQuery)
				}
				last := eids[len(eids)-1]
				src, dst := ids[len(ids)-2], ids[len(ids)-1]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := g.RemoveEdge(last); err != nil {
						b.Fatal(err)
					}
					var err error
					last, err = g.AddEdge(src, dst, "REPLY", nil)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				engine.Close()
			})
		}
	}
}

// BenchmarkEXPI_Memory reports the Rete memory footprint (memoized rows)
// of the social battery per scale — the space cost of maintenance.
func BenchmarkEXPI_Memory(b *testing.B) {
	for _, scale := range []int{1, 2} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				soc := workload.GenerateSocial(workload.DefaultSocialConfig(scale))
				engine := NewEngine(soc.G)
				for name, q := range workload.SocialQueries {
					mustRegister(b, engine, name, q)
				}
				// Deduplicated engine figure: shared nodes counted once.
				b.ReportMetric(float64(engine.MemoryEntries()), "entries")
				b.ReportMetric(float64(soc.G.NumVertices()+soc.G.NumEdges()), "graph-elems")
			}
		})
	}
}

// BenchmarkEXPL_SubplanSharing measures one FGN score flip propagating
// into 64 views drawn from 8 query templates, with the subplan-sharing
// registry on and off. With sharing, the 8 distinct select/join chains
// run once per commit however many views attach to them, so the per-op
// cost and the allocation count match the 8-view configuration; with
// NoSharing every view pays its private copy. The memoized-row totals
// are reported per configuration (shared nodes counted once).
func BenchmarkEXPL_SubplanSharing(b *testing.B) {
	templateQ := func(i int) string {
		return fmt.Sprintf(
			"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE a.score > %d RETURN a, c",
			(i%8)*10)
	}
	for _, cfg := range []struct {
		name  string
		views int
		opts  EngineOptions
	}{
		{"views=8/sharing", 8, EngineOptions{NumWorkers: 1}},
		{"views=64/sharing", 64, EngineOptions{NumWorkers: 1}},
		{"views=64/nosharing", 64, EngineOptions{NoSharing: true, NumWorkers: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
			engine := NewEngineWithOptions(soc.G, cfg.opts)
			for i := 0; i < cfg.views; i++ {
				mustRegister(b, engine, fmt.Sprintf("v%02d", i), templateQ(i))
			}
			b.ReportMetric(float64(engine.MemoryEntries()), "entries")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				soc.FlipScore()
			}
			b.StopTimer()
			engine.Close()
		})
	}
}

// BenchmarkEXPN_Leaderboard measures incremental top-K maintenance (the
// ranked social battery: ORDER BY/SKIP/LIMIT windows over churning
// scores) against re-sorting the battery from scratch per update.
func BenchmarkEXPN_Leaderboard(b *testing.B) {
	b.Run("Incremental", func(b *testing.B) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		engine := NewEngineWithOptions(soc.G, EngineOptions{NumWorkers: 1})
		for name, q := range workload.SocialRankedQueries {
			mustRegister(b, engine, name, q)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			soc.ChurnScores(1)
		}
		b.StopTimer()
		engine.Close()
	})
	b.Run("Snapshot", func(b *testing.B) {
		soc := workload.GenerateSocial(workload.DefaultSocialConfig(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			soc.ChurnScores(1)
			for _, q := range workload.SocialRankedQueries {
				if _, err := Snapshot(soc.G, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
