package nra

import (
	"fmt"
	"sort"

	"pgiv/internal/cypher"
	"pgiv/internal/gra"
	"pgiv/internal/schema"
)

// Transform rewrites a GRA plan into an NRA plan (paper Section 4 step 2):
//
//   - every fixed-length expand-out becomes a natural join with a
//     get-edges operator:   ↑(w:W)(v)[:E](r)  ≡  r ⋈ ⇑(w:W)(v)[:E]
//   - every transitive expand-out becomes a transitive join:
//     ↑(w:W)(v)[:E*](r)  ≡  r ⋈∗ ⇑(w:W)(v)[:E]
//   - every property access v.key on a pattern-bound variable v becomes an
//     unnest operator µ(v.key → "v.key") placed above the operator binding
//     v (the FRA stage then pushes it into the base operator).
func Transform(g gra.Op) (Op, error) {
	t := &transformer{needs: make(map[string]map[string]bool)}
	t.collectNeeds(g)
	return t.rewrite(g)
}

type transformer struct {
	// needs maps a variable name to the set of property keys accessed on
	// it anywhere in the query.
	needs map[string]map[string]bool
}

// collectNeeds gathers property accesses from every expression in the
// plan.
func (t *transformer) collectNeeds(op gra.Op) {
	switch o := op.(type) {
	case *gra.Select:
		t.collectExpr(o.Cond)
	case *gra.Project:
		for _, it := range o.Items {
			t.collectExpr(it.Expr)
		}
	case *gra.Aggregate:
		for _, it := range o.GroupBy {
			t.collectExpr(it.Expr)
		}
		for _, a := range o.Aggs {
			if a.Arg != nil {
				t.collectExpr(a.Arg)
			}
		}
	case *gra.Unwind:
		t.collectExpr(o.Expr)
	case *gra.Top:
		for _, it := range o.Items {
			t.collectExpr(it.Expr)
		}
	}
	for _, c := range op.Children() {
		t.collectNeeds(c)
	}
}

func (t *transformer) collectExpr(e cypher.Expr) {
	cypher.WalkExpr(e, func(x cypher.Expr) {
		pa, ok := x.(*cypher.PropAccess)
		if !ok {
			return
		}
		v, ok := pa.Subject.(*cypher.Variable)
		if !ok {
			return
		}
		if t.needs[v.Name] == nil {
			t.needs[v.Name] = make(map[string]bool)
		}
		t.needs[v.Name][pa.Key] = true
	})
}

// unnestsFor wraps op with unnest operators for every property key needed
// on the given variables (those that op newly binds).
func (t *transformer) unnestsFor(op Op, vars ...string) Op {
	for _, v := range vars {
		keys := t.needs[v]
		if len(keys) == 0 {
			continue
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			op = &Unnest{Input: op, Var: v, Key: k, Attr: schema.PropAttr(v, k)}
		}
	}
	return op
}

func (t *transformer) rewrite(op gra.Op) (Op, error) {
	switch o := op.(type) {
	case *gra.Unit:
		return &Unit{}, nil

	case *gra.GetVertices:
		return t.unnestsFor(&GetVertices{Var: o.Var, Labels: o.Labels}, o.Var), nil

	case *gra.Expand:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		if o.VarLength {
			tj := &TransitiveJoin{
				Input: in, SrcAttr: o.SrcVar, Types: o.Types, Dir: o.Dir,
				Min: o.Min, Max: o.Max, DstAttr: o.DstVar,
				DstLabels: o.DstLabels, PathAttr: o.PathAttr,
			}
			return t.unnestsFor(tj, o.DstVar), nil
		}
		var ge *GetEdges
		switch o.Dir {
		case cypher.DirOut:
			ge = &GetEdges{AVar: o.SrcVar, EVar: o.EdgeVar, BVar: o.DstVar,
				Types: o.Types, BLabels: o.DstLabels}
		case cypher.DirIn:
			ge = &GetEdges{AVar: o.DstVar, EVar: o.EdgeVar, BVar: o.SrcVar,
				Types: o.Types, ALabels: o.DstLabels}
		default: // DirBoth
			ge = &GetEdges{AVar: o.SrcVar, EVar: o.EdgeVar, BVar: o.DstVar,
				Types: o.Types, BLabels: o.DstLabels, Undirected: true}
		}
		join := &Join{L: in, R: t.unnestsFor(ge, o.EdgeVar, o.DstVar)}
		return join, nil

	case *gra.ShortestPath:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		sp := &ShortestPath{
			Input: in, SrcAttr: o.SrcVar, Types: o.Types, Dir: o.Dir,
			Min: o.Min, Max: o.Max, DstAttr: o.DstVar,
			DstLabels: o.DstLabels, WeightProp: o.WeightProp,
			EdgePreds: o.EdgePreds, PathAttr: o.PathAttr, CostAttr: o.CostAttr,
		}
		return t.unnestsFor(sp, o.DstVar), nil

	case *gra.Select:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		return &Select{Input: in, Cond: o.Cond}, nil

	case *gra.Project:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		return &Project{Input: in, Items: o.Items}, nil

	case *gra.Dedup:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		return &Dedup{Input: in}, nil

	case *gra.Join:
		l, err := t.rewrite(o.L)
		if err != nil {
			return nil, err
		}
		r, err := t.rewrite(o.R)
		if err != nil {
			return nil, err
		}
		return &Join{L: l, R: r}, nil

	case *gra.LeftOuterJoin:
		l, err := t.rewrite(o.L)
		if err != nil {
			return nil, err
		}
		r, err := t.rewrite(o.R)
		if err != nil {
			return nil, err
		}
		return &LeftOuterJoin{L: l, R: r}, nil

	case *gra.SemiJoin:
		l, err := t.rewrite(o.L)
		if err != nil {
			return nil, err
		}
		r, err := t.rewrite(o.R)
		if err != nil {
			return nil, err
		}
		return &SemiJoin{L: l, R: r}, nil

	case *gra.AntiJoin:
		l, err := t.rewrite(o.L)
		if err != nil {
			return nil, err
		}
		r, err := t.rewrite(o.R)
		if err != nil {
			return nil, err
		}
		return &AntiJoin{L: l, R: r}, nil

	case *gra.AllDifferent:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		return &AllDifferent{Input: in, EdgeAttrs: o.EdgeAttrs, PathAttrs: o.PathAttrs}, nil

	case *gra.PathBuild:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		return &PathBuild{Input: in, Attr: o.Attr, Items: o.Items}, nil

	case *gra.Aggregate:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		return &Aggregate{Input: in, GroupBy: o.GroupBy, Aggs: o.Aggs}, nil

	case *gra.Unwind:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		return &Unwind{Input: in, Expr: o.Expr, Alias: o.Alias}, nil

	case *gra.Top:
		in, err := t.rewrite(o.Input)
		if err != nil {
			return nil, err
		}
		return &Top{Input: in, Items: o.Items, Skip: o.Skip, Limit: o.Limit}, nil
	}
	return nil, fmt.Errorf("nra: unsupported GRA operator %T", op)
}
