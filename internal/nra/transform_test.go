package nra

import (
	"strings"
	"testing"

	"pgiv/internal/cypher"
	"pgiv/internal/gra"
)

func transform(t *testing.T, src string) Op {
	t.Helper()
	q, err := cypher.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := gra.Compile(q)
	if err != nil {
		t.Fatalf("gra: %v", err)
	}
	n, err := Transform(g)
	if err != nil {
		t.Fatalf("nra: %v", err)
	}
	return n
}

// TestExpandBecomesGetEdgesJoin checks the paper's rule
// ↑(w:W)(v)[:E](r) ≡ r ⋈ ⇑(w:W)(v)[:E].
func TestExpandBecomesGetEdgesJoin(t *testing.T) {
	op := transform(t, "MATCH (a:A)-[e:X]->(b:B) RETURN a")
	got := Format(op)
	for _, frag := range []string{"Join on (a)", "GetEdges (a)-[e:X]->(b:B)", "GetVertices (a:A)"} {
		if !strings.Contains(got, frag) {
			t.Errorf("plan missing %q:\n%s", frag, got)
		}
	}
	if strings.Contains(got, "Expand") {
		t.Errorf("expand survived transformation:\n%s", got)
	}
}

func TestIncomingExpandSwapsRoles(t *testing.T) {
	op := transform(t, "MATCH (a:A)<-[e:X]-(b:B) RETURN a")
	got := Format(op)
	// a is the edge target, so b takes the source role of ⇑; a's label is
	// already enforced by the joined get-vertices operator.
	if !strings.Contains(got, "GetEdges (b:B)-[e:X]->(a)") {
		t.Errorf("unexpected get-edges orientation:\n%s", got)
	}
}

func TestUndirectedExpand(t *testing.T) {
	op := transform(t, "MATCH (a:A)-[e:X]-(b) RETURN a")
	got := Format(op)
	if !strings.Contains(got, "]--(") {
		t.Errorf("undirected get-edges not marked:\n%s", got)
	}
}

// TestTransitiveExpandBecomesTransitiveJoin checks
// ↑(w:W)(v)[:E*](r) ≡ r ⋈∗ ⇑.
func TestTransitiveExpandBecomesTransitiveJoin(t *testing.T) {
	op := transform(t, "MATCH (p:Post)-[:REPLY*2..4]->(c:Comm) RETURN p")
	got := Format(op)
	if !strings.Contains(got, "TransitiveJoin (p)-[:REPLY*2..4]->(c:Comm)") {
		t.Errorf("plan:\n%s", got)
	}
}

// TestUnnestInsertion checks that property accesses become µ operators
// above the binding operator (paper Section 4 step 2).
func TestUnnestInsertion(t *testing.T) {
	op := transform(t, "MATCH (p:Post) WHERE p.lang = 'en' RETURN p.score")
	got := Format(op)
	for _, frag := range []string{"Unnest µ(p.lang → p.lang)", "Unnest µ(p.score → p.score)", "GetVertices (p:Post)"} {
		if !strings.Contains(got, frag) {
			t.Errorf("plan missing %q:\n%s", frag, got)
		}
	}
}

func TestUnnestOnEdgeAndDstVars(t *testing.T) {
	op := transform(t, "MATCH (a:A)-[e:X]->(b) WHERE e.w > 1 AND b.y = 2 RETURN a")
	got := Format(op)
	for _, frag := range []string{"Unnest µ(e.w → e.w)", "Unnest µ(b.y → b.y)"} {
		if !strings.Contains(got, frag) {
			t.Errorf("plan missing %q:\n%s", frag, got)
		}
	}
}

func TestUnwindVarGetsNoUnnest(t *testing.T) {
	// n is bound by UNWIND, not by a pattern: no unnest is created (the
	// IVM fragment checker will reject n.x; the snapshot engine falls
	// back to live lookup).
	op := transform(t, "MATCH t = (a:A)-[:X*]->(b) UNWIND nodes(t) AS n RETURN n")
	got := Format(op)
	if strings.Contains(got, "µ(n.") {
		t.Errorf("unexpected unnest for unwind variable:\n%s", got)
	}
}

func TestSchemaPropagation(t *testing.T) {
	op := transform(t, "MATCH (p:Post) WHERE p.lang = 'en' RETURN p")
	// Root is the projection; below it the selection must see p.lang in
	// its input schema.
	proj := op.(*Project)
	sel := proj.Input.(*Select)
	if !sel.Input.Schema().Has("p.lang") {
		t.Errorf("selection input schema lacks p.lang: %s", sel.Input.Schema())
	}
}
