// Package nra implements nested relational algebra (NRA) plans, the second
// compilation stage of the paper (Section 4 step 2).
//
// The key transformation is that expand-out operators — which cannot be
// maintained incrementally — are replaced by natural joins with the nullary
// get-edges operator ⇑(w:W)(v:V)[e:E], and transitive expand-outs by
// transitive joins (./∗). Property accesses become unnest (µ) operators
// placed directly above the operator that binds the accessed variable; the
// FRA stage (package fra) merges them into the base operators' inferred
// schemas.
package nra

import (
	"fmt"
	"strings"

	"pgiv/internal/cypher"
	"pgiv/internal/gra"
	"pgiv/internal/schema"
)

// PropSpec requests that a property Key of a bound variable be made
// available as attribute Attr (the paper's {lang → pL} notation).
type PropSpec struct {
	Key  string
	Attr string
}

// Op is an NRA operator.
type Op interface {
	Schema() schema.Schema
	Children() []Op
	Head() string
}

// Unit produces a single empty row.
type Unit struct{}

// GetVertices is ©(v:V), optionally carrying pushed-down properties
// (populated by the FRA stage).
type GetVertices struct {
	Var    string
	Labels []string
	Props  []PropSpec
}

// GetEdges is the nullary get-edges operator ⇑. It emits one row (a, e, b)
// per edge of one of the Types (empty = any) whose endpoints carry ALabels
// and BLabels; a is the edge source and b the target. With Undirected, each
// edge additionally yields the swapped row (b, e, a) — unless it is a
// self-loop — so that both orientations of an undirected pattern match.
type GetEdges struct {
	AVar, EVar, BVar string
	Types            []string
	ALabels, BLabels []string
	Undirected       bool
	AProps           []PropSpec // properties of the A endpoint
	EProps           []PropSpec // properties of the edge
	BProps           []PropSpec // properties of the B endpoint
}

// TransitiveJoin is the transitive join r ./∗ ⇑: it extends each input row
// with every edge-distinct path of Min..Max hops (Max == -1 means
// unbounded) starting at SrcAttr over edges of the given Types, ending at
// a vertex carrying DstLabels, which is bound to DstAttr; the traversed
// path is bound to PathAttr. Paths are atomic values per the paper.
type TransitiveJoin struct {
	Input     Op
	SrcAttr   string
	Types     []string
	Dir       cypher.Direction
	Min, Max  int
	DstAttr   string
	DstLabels []string
	PathAttr  string
	DstProps  []PropSpec // properties of the final (destination) vertex
}

// ShortestPath is the shortest-path join: it extends each input row with
// every vertex reachable from SrcAttr over edge-distinct trails of
// Min..Max usable edges (edges of one of the Types satisfying every
// EdgePred, and — when WeightProp is set — carrying a numeric non-negative
// weight), binding the destination to DstAttr, the cheapest such trail to
// PathAttr and its cost to CostAttr. Ties are broken by hop count, then by
// the path's canonical key, so the witness is deterministic. The cost is a
// float weight sum when WeightProp is set, else the integer hop count.
type ShortestPath struct {
	Input      Op
	SrcAttr    string
	Types      []string
	Dir        cypher.Direction
	Min, Max   int
	DstAttr    string
	DstLabels  []string
	WeightProp string
	EdgePreds  []gra.EdgePred
	PathAttr   string
	CostAttr   string
	DstProps   []PropSpec // properties of the destination vertex
}

// Unnest is the modified unnest operator µ(v.key → attr): it extends each
// row with the value of property key of the vertex or edge bound to Var
// (null if absent). The FRA stage eliminates all Unnest operators by
// pushing them into base operators.
type Unnest struct {
	Input Op
	Var   string
	Key   string
	Attr  string
}

// Join is the natural join on shared attributes.
type Join struct{ L, R Op }

// LeftOuterJoin is the natural left outer join: left rows with no match
// in R on the shared attributes survive once with R's non-shared
// attributes null-padded (OPTIONAL MATCH).
type LeftOuterJoin struct{ L, R Op }

// SemiJoin keeps left rows with at least one match in R on the shared
// attributes (positive pattern predicate).
type SemiJoin struct{ L, R Op }

// AntiJoin keeps left rows with no match in R on the shared attributes
// (negative pattern predicate, NOT (pattern)).
type AntiJoin struct{ L, R Op }

// Select is the selection operator.
type Select struct {
	Input Op
	Cond  cypher.Expr
}

// Project is the projection operator.
type Project struct {
	Input Op
	Items []gra.Item
}

// Dedup removes duplicates (bag → set).
type Dedup struct{ Input Op }

// AllDifferent enforces relationship uniqueness (see gra.AllDifferent).
type AllDifferent struct {
	Input     Op
	EdgeAttrs []string
	PathAttrs []string
}

// PathBuild constructs a named path value (see gra.PathBuild).
type PathBuild struct {
	Input Op
	Attr  string
	Items []gra.PathItem
}

// Aggregate groups and aggregates (see gra.Aggregate).
type Aggregate struct {
	Input   Op
	GroupBy []gra.Item
	Aggs    []gra.AggSpec
}

// Unwind expands a list into rows.
type Unwind struct {
	Input Op
	Expr  cypher.Expr
	Alias string
}

// Top orders rows by Items — ties broken by the full row's canonical
// key — and keeps the [skip, skip+limit) window (see gra.Top). It is
// incrementally maintainable: the Rete compiler builds an
// order-statistic TopKNode for it, and the snapshot engine evaluates
// the identical ordering (it is the differential oracle).
type Top struct {
	Input Op
	Items []gra.SortItem
	Skip  cypher.Expr // nil = 0; constant
	Limit cypher.Expr // nil = unbounded; constant
}

func propAttrs(var_ string, ps []PropSpec) schema.Schema {
	out := make(schema.Schema, len(ps))
	for i, p := range ps {
		out[i] = p.Attr
	}
	return out
}

func (*Unit) Schema() schema.Schema { return schema.Schema{} }
func (o *GetVertices) Schema() schema.Schema {
	return append(schema.Schema{o.Var}, propAttrs(o.Var, o.Props)...)
}
func (o *GetEdges) Schema() schema.Schema {
	s := schema.Schema{o.AVar, o.EVar, o.BVar}
	s = append(s, propAttrs(o.AVar, o.AProps)...)
	s = append(s, propAttrs(o.EVar, o.EProps)...)
	s = append(s, propAttrs(o.BVar, o.BProps)...)
	return s
}
func (o *TransitiveJoin) Schema() schema.Schema {
	s := o.Input.Schema().Clone()
	s = append(s, o.DstAttr)
	if o.PathAttr != "" {
		s = append(s, o.PathAttr)
	}
	s = append(s, propAttrs(o.DstAttr, o.DstProps)...)
	return s
}
func (o *ShortestPath) Schema() schema.Schema {
	s := o.Input.Schema().Clone()
	s = append(s, o.DstAttr)
	if o.PathAttr != "" {
		s = append(s, o.PathAttr)
	}
	if o.CostAttr != "" {
		s = append(s, o.CostAttr)
	}
	s = append(s, propAttrs(o.DstAttr, o.DstProps)...)
	return s
}
func (o *Unnest) Schema() schema.Schema {
	return append(o.Input.Schema().Clone(), o.Attr)
}
func (o *Join) Schema() schema.Schema {
	l := o.L.Schema().Clone()
	for _, a := range o.R.Schema() {
		if !l.Has(a) {
			l = append(l, a)
		}
	}
	return l
}
func (o *LeftOuterJoin) Schema() schema.Schema {
	l := o.L.Schema().Clone()
	for _, a := range o.R.Schema() {
		if !l.Has(a) {
			l = append(l, a)
		}
	}
	return l
}
func (o *SemiJoin) Schema() schema.Schema { return o.L.Schema() }
func (o *AntiJoin) Schema() schema.Schema { return o.L.Schema() }
func (o *Select) Schema() schema.Schema   { return o.Input.Schema() }
func (o *Project) Schema() schema.Schema {
	s := make(schema.Schema, len(o.Items))
	for i, it := range o.Items {
		s[i] = it.Alias
	}
	return s
}
func (o *Dedup) Schema() schema.Schema        { return o.Input.Schema() }
func (o *AllDifferent) Schema() schema.Schema { return o.Input.Schema() }
func (o *PathBuild) Schema() schema.Schema {
	return append(o.Input.Schema().Clone(), o.Attr)
}
func (o *Aggregate) Schema() schema.Schema {
	var s schema.Schema
	for _, it := range o.GroupBy {
		s = append(s, it.Alias)
	}
	for _, a := range o.Aggs {
		s = append(s, a.Alias)
	}
	return s
}
func (o *Unwind) Schema() schema.Schema {
	return append(o.Input.Schema().Clone(), o.Alias)
}
func (o *Top) Schema() schema.Schema { return o.Input.Schema() }

func (*Unit) Children() []Op             { return nil }
func (*GetVertices) Children() []Op      { return nil }
func (*GetEdges) Children() []Op         { return nil }
func (o *TransitiveJoin) Children() []Op { return []Op{o.Input} }
func (o *ShortestPath) Children() []Op   { return []Op{o.Input} }
func (o *Unnest) Children() []Op         { return []Op{o.Input} }
func (o *Join) Children() []Op           { return []Op{o.L, o.R} }
func (o *LeftOuterJoin) Children() []Op  { return []Op{o.L, o.R} }
func (o *SemiJoin) Children() []Op       { return []Op{o.L, o.R} }
func (o *AntiJoin) Children() []Op       { return []Op{o.L, o.R} }
func (o *Select) Children() []Op         { return []Op{o.Input} }
func (o *Project) Children() []Op        { return []Op{o.Input} }
func (o *Dedup) Children() []Op          { return []Op{o.Input} }
func (o *AllDifferent) Children() []Op   { return []Op{o.Input} }
func (o *PathBuild) Children() []Op      { return []Op{o.Input} }
func (o *Aggregate) Children() []Op      { return []Op{o.Input} }
func (o *Unwind) Children() []Op         { return []Op{o.Input} }
func (o *Top) Children() []Op            { return []Op{o.Input} }

func labelsText(ls []string) string {
	if len(ls) == 0 {
		return ""
	}
	return ":" + strings.Join(ls, ":")
}

func propsText(ps []PropSpec) string {
	if len(ps) == 0 {
		return ""
	}
	var parts []string
	for _, p := range ps {
		parts = append(parts, fmt.Sprintf("%s→%s", p.Key, p.Attr))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (*Unit) Head() string { return "Unit" }
func (o *GetVertices) Head() string {
	return fmt.Sprintf("GetVertices (%s%s%s)", o.Var, labelsText(o.Labels), propsText(o.Props))
}
func (o *GetEdges) Head() string {
	t := ""
	if len(o.Types) > 0 {
		t = ":" + strings.Join(o.Types, "|")
	}
	arrow := "->"
	if o.Undirected {
		arrow = "--"
	}
	return fmt.Sprintf("GetEdges (%s%s%s)-[%s%s%s]%s(%s%s%s)",
		o.AVar, labelsText(o.ALabels), propsText(o.AProps),
		o.EVar, t, propsText(o.EProps), arrow,
		o.BVar, labelsText(o.BLabels), propsText(o.BProps))
}
func (o *TransitiveJoin) Head() string {
	t := ""
	if len(o.Types) > 0 {
		t = ":" + strings.Join(o.Types, "|")
	}
	dir := "->"
	switch o.Dir {
	case cypher.DirIn:
		dir = "<-"
	case cypher.DirBoth:
		dir = "--"
	}
	hops := fmt.Sprintf("*%d..%d", o.Min, o.Max)
	if o.Max == -1 {
		hops = fmt.Sprintf("*%d..", o.Min)
	}
	return fmt.Sprintf("TransitiveJoin (%s)-[%s%s]%s(%s%s%s) path=%s",
		o.SrcAttr, t, hops, dir, o.DstAttr, labelsText(o.DstLabels), propsText(o.DstProps), o.PathAttr)
}
func (o *ShortestPath) Head() string {
	h := gra.ShortestPathHead(o.SrcAttr, o.Types, o.Dir, o.Min, o.Max, o.WeightProp, o.EdgePreds, o.DstAttr, o.DstLabels, o.PathAttr, o.CostAttr)
	return h + propsText(o.DstProps)
}
func (o *Unnest) Head() string {
	return fmt.Sprintf("Unnest µ(%s.%s → %s)", o.Var, o.Key, o.Attr)
}
func (o *Join) Head() string {
	return "Join on " + o.L.Schema().Shared(o.R.Schema()).String()
}
func (o *LeftOuterJoin) Head() string {
	return "LeftOuterJoin on " + o.L.Schema().Shared(o.R.Schema()).String()
}
func (o *SemiJoin) Head() string {
	return "SemiJoin on " + o.L.Schema().Shared(o.R.Schema()).String()
}
func (o *AntiJoin) Head() string {
	return "AntiJoin on " + o.L.Schema().Shared(o.R.Schema()).String()
}
func (o *Select) Head() string { return "Select " + o.Cond.String() }
func (o *Project) Head() string {
	var parts []string
	for _, it := range o.Items {
		parts = append(parts, fmt.Sprintf("%s AS %s", it.Expr.String(), it.Alias))
	}
	return "Project " + strings.Join(parts, ", ")
}
func (o *Dedup) Head() string { return "Dedup" }
func (o *AllDifferent) Head() string {
	return fmt.Sprintf("AllDifferent edges=%v paths=%v", o.EdgeAttrs, o.PathAttrs)
}
func (o *PathBuild) Head() string {
	var parts []string
	for _, it := range o.Items {
		parts = append(parts, it.Attr)
	}
	return fmt.Sprintf("PathBuild %s = <%s>", o.Attr, strings.Join(parts, ", "))
}
func (o *Aggregate) Head() string {
	var parts []string
	for _, it := range o.GroupBy {
		parts = append(parts, it.Alias)
	}
	for _, a := range o.Aggs {
		arg := "*"
		if a.Arg != nil {
			arg = a.Arg.String()
		}
		parts = append(parts, fmt.Sprintf("%s(%s) AS %s", a.Func, arg, a.Alias))
	}
	return "Aggregate " + strings.Join(parts, ", ")
}
func (o *Unwind) Head() string {
	return fmt.Sprintf("Unwind %s AS %s", o.Expr.String(), o.Alias)
}
func (o *Top) Head() string { return gra.TopHead(o.Items, o.Skip, o.Limit) }

// Format renders the plan tree with indentation, root first.
func Format(op Op) string {
	var sb strings.Builder
	var rec func(Op, int)
	rec = func(o Op, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(o.Head())
		sb.WriteByte('\n')
		for _, c := range o.Children() {
			rec(c, depth+1)
		}
	}
	rec(op, 0)
	return sb.String()
}
