package rete

import "pgiv/internal/value"

// TransformNode is a stateless node applying a pure row transformation:
// each input row maps to zero or more output rows, preserving the delta's
// multiplicity. It implements selection (0/1 output rows), projection
// (exactly 1), path construction, relationship-uniqueness filtering and
// UNWIND (0..n).
//
// Statelessness is sound only because the transformation is a pure
// function of the row: the IVM fragment checker guarantees that no
// expression reachable here consults mutable graph state, so a retraction
// maps to exactly the rows its insertion mapped to.
type TransformNode struct {
	emitter
	fn func(value.Row) []value.Row
}

// NewTransformNode wraps a pure row transformation.
func NewTransformNode(fn func(value.Row) []value.Row) *TransformNode {
	return &TransformNode{fn: fn}
}

// Apply implements Receiver.
func (n *TransformNode) Apply(port int, deltas []Delta) {
	var out []Delta
	for _, d := range deltas {
		for _, row := range n.fn(d.Row) {
			out = append(out, Delta{Row: row, Mult: d.Mult})
		}
	}
	n.emit(out)
}

// DedupNode converts a bag to a set: a row is emitted when its
// multiplicity becomes positive and retracted when it returns to zero
// (RETURN DISTINCT).
type DedupNode struct {
	emitter
	mem *memory
}

// NewDedupNode builds a dedup node.
func NewDedupNode() *DedupNode { return &DedupNode{mem: newMemory()} }

// Apply implements Receiver.
func (n *DedupNode) Apply(port int, deltas []Delta) {
	var out []Delta
	for _, d := range deltas {
		old, new := n.mem.apply(d.Row, d.Mult)
		switch {
		case old == 0 && new > 0:
			out = append(out, Delta{Row: d.Row, Mult: 1})
		case old > 0 && new == 0:
			out = append(out, Delta{Row: d.Row, Mult: -1})
		}
	}
	n.emit(out)
}

func (n *DedupNode) memoryEntries() int { return n.mem.size() }
