package rete

import "pgiv/internal/value"

// TransformNode is a stateless node applying a pure row transformation:
// each input row maps to zero or more output rows (passed to the emit
// callback), preserving the delta's multiplicity. It implements
// selection (0/1 output rows), projection (exactly 1), path
// construction, relationship-uniqueness filtering and UNWIND (0..n).
// The callback contract keeps pure filters allocation-free: a dropped
// row costs nothing, and no intermediate row slice is built.
//
// Statelessness is sound only because the transformation is a pure
// function of the row: the IVM fragment checker guarantees that no
// expression reachable here consults mutable graph state, so a retraction
// maps to exactly the rows its insertion mapped to.
type TransformNode struct {
	emitter
	fn      func(row value.Row, emit func(value.Row))
	out     []Delta         // batch under construction during Apply
	mult    int             // multiplicity of the delta being transformed
	sink    func(value.Row) // pre-bound append callback (one closure per node)
	seedSrc seeder          // upstream seeder, set at build time (replay seeding)
}

// NewTransformNode wraps a pure row transformation.
func NewTransformNode(fn func(row value.Row, emit func(value.Row))) *TransformNode {
	n := &TransformNode{fn: fn}
	n.sink = func(r value.Row) { n.out = append(n.out, Delta{Row: r, Mult: n.mult}) }
	return n
}

// Apply implements Receiver.
func (n *TransformNode) Apply(port int, deltas []Delta) {
	n.out = n.outBuf()
	for _, d := range deltas {
		n.mult = d.Mult
		n.fn(d.Row, n.sink)
	}
	out := n.out
	n.out = nil
	n.emitOwned(out)
}

// DedupNode converts a bag to a set: a row is emitted when its
// multiplicity becomes positive and retracted when it returns to zero
// (RETURN DISTINCT).
type DedupNode struct {
	emitter
	memoVersion
	mem *memory
}

// NewDedupNode builds a dedup node.
func NewDedupNode() *DedupNode { return &DedupNode{mem: newMemory()} }

// Apply implements Receiver.
func (n *DedupNode) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		n.bumpMemo()
	}
	out := n.outBuf()
	for _, d := range deltas {
		old, new := n.mem.apply(d.Row, d.Mult)
		switch {
		case old == 0 && new > 0:
			out = append(out, Delta{Row: d.Row, Mult: 1})
		case old > 0 && new == 0:
			out = append(out, Delta{Row: d.Row, Mult: -1})
		}
	}
	n.emitOwned(out)
}

func (n *DedupNode) memoryEntries() int { return n.mem.size() }
