package rete

import "pgiv/internal/value"

// Replay seeding: when a new view attaches below an already-live shared
// node, the node replays its *memoized* rows into exactly the new
// successor edge instead of the engine re-deriving them from a graph
// scan. Registering the 50th view of a popular template therefore costs
// one pass over the shared node's memory, not a full graph scan per
// operator. Input nodes keep their scan-based Seed (they are stateless —
// the graph is their memory); every stateful node below reconstructs its
// current output relation from its own state.
//
// Seeding runs outside commits on the registering goroutine, so fresh
// batch slices are allocated (this is not a per-commit hot path) and the
// node-owned scratch used by Apply is left untouched.

// Seed implements seeder: the join's current output is the per-key cross
// product of the two memoized sides.
func (n *JoinNode) Seed(target succ) {
	var out []Delta
	for jk, lbucket := range n.left.items {
		rbucket := n.right.items[jk]
		if len(rbucket) == 0 {
			continue
		}
		for _, le := range lbucket {
			for _, re := range rbucket {
				out = append(out, Delta{Row: n.combine(le.row, re.row), Mult: le.count * re.count})
			}
		}
	}
	if len(out) > 0 {
		target.node.Apply(target.port, out)
	}
}

// Seed implements seeder: the dedup's current output is one copy of every
// memoized row with positive multiplicity.
func (n *DedupNode) Seed(target succ) {
	out := make([]Delta, 0, len(n.mem.items))
	for _, e := range n.mem.items {
		if e.count > 0 {
			out = append(out, Delta{Row: e.row, Mult: 1})
		}
	}
	if len(out) > 0 {
		target.node.Apply(target.port, out)
	}
}

// Seed implements seeder: live left rows (per the memoized right counts)
// replay with their multiplicities.
func (n *ExistsNode) Seed(target succ) {
	var out []Delta
	for jk, lbucket := range n.left.items {
		rc := 0
		if p := n.rightCounts[jk]; p != nil {
			rc = *p
		}
		if !n.live(rc) {
			continue
		}
		for _, le := range lbucket {
			out = append(out, Delta{Row: le.row, Mult: le.count})
		}
	}
	if len(out) > 0 {
		target.node.Apply(target.port, out)
	}
}

// Seed implements seeder: every group's currently emitted output row
// replays once (for a global aggregate this includes the default row of
// an empty input).
func (n *AggregateNode) Seed(target succ) {
	out := make([]Delta, 0, len(n.groups))
	for _, grp := range n.groups {
		if grp.out != nil {
			out = append(out, Delta{Row: grp.out, Mult: 1})
		}
	}
	if len(out) > 0 {
		target.node.Apply(target.port, out)
	}
}

// Seed implements seeder: every memoized left row joins against the
// memoized fragment set of its source vertex — no path enumeration runs.
func (n *TransitiveNode) Seed(target succ) {
	var out []Delta
	for _, bucket := range n.left.items {
		for _, le := range bucket {
			srcVal := le.row[n.srcIdx]
			if srcVal.Kind() != value.KindVertex {
				continue
			}
			st := n.sources[srcVal.ID()]
			if st == nil {
				continue
			}
			for _, frag := range st.sortedFrags() {
				out = append(out, Delta{Row: value.ConcatRows(le.row, frag), Mult: le.count})
			}
		}
	}
	if len(out) > 0 {
		target.node.Apply(target.port, out)
	}
}

// Seed implements seeder: every memoized left row joins against the
// memoized fragment set of its source vertex — no path enumeration runs.
func (n *ShortestPathNode) Seed(target succ) {
	var out []Delta
	for _, bucket := range n.left.items {
		for _, le := range bucket {
			srcVal := le.row[n.srcIdx]
			if srcVal.Kind() != value.KindVertex {
				continue
			}
			st := n.sources[srcVal.ID()]
			if st == nil {
				continue
			}
			for _, frag := range st.sortedFrags() {
				out = append(out, Delta{Row: value.ConcatRows(le.row, frag), Mult: le.count})
			}
		}
	}
	if len(out) > 0 {
		target.node.Apply(target.port, out)
	}
}

// Seed implements seeder for the stateless transform: it pulls the
// upstream seeder (set at build time) through a relay that applies the
// transformation and delivers only to the new edge — existing successors
// of this shared node see nothing.
func (n *TransformNode) Seed(target succ) {
	if n.seedSrc == nil {
		return
	}
	n.seedSrc.Seed(succ{node: transformRelay{n: n, target: target}, port: 0})
}

// transformRelay adapts a transform node into a one-edge Receiver used
// during replay seeding: batches from the upstream seeder are mapped
// through the transformation and forwarded to the single target edge.
type transformRelay struct {
	n      *TransformNode
	target succ
}

// Apply implements Receiver.
func (r transformRelay) Apply(port int, deltas []Delta) {
	var out []Delta
	mult := 0
	sink := func(row value.Row) { out = append(out, Delta{Row: row, Mult: mult}) }
	for _, d := range deltas {
		mult = d.Mult
		r.n.fn(d.Row, sink)
	}
	if len(out) > 0 {
		r.target.node.Apply(r.target.port, out)
	}
}
