package rete

import "pgiv/internal/value"

// Production is the terminal node of a view's network: it materialises
// the view contents (a bag with multiplicities) and notifies subscribers
// with the delta batches it receives.
type Production struct {
	mem  *memory
	subs []func([]Delta)
}

// NewProduction builds an empty production node.
func NewProduction() *Production { return &Production{mem: newMemory()} }

// Apply implements Receiver: it folds the deltas into the materialised
// bag and forwards the batch to subscribers. Batches may contain
// transient retract/assert pairs for the same row; subscribers needing
// net effects should fold them.
func (p *Production) Apply(port int, deltas []Delta) {
	for _, d := range deltas {
		p.mem.apply(d.Row, d.Mult)
	}
	for _, fn := range p.subs {
		fn(deltas)
	}
}

// Subscribe registers a delta callback. Callbacks run synchronously
// inside the mutating store call and must not mutate the graph.
func (p *Production) Subscribe(fn func([]Delta)) { p.subs = append(p.subs, fn) }

// Rows returns the materialised view contents in canonical order, each
// row repeated per its multiplicity.
func (p *Production) Rows() []value.Row { return p.mem.rows() }

// DistinctCount returns the number of distinct rows in the view.
func (p *Production) DistinctCount() int { return p.mem.size() }

func (p *Production) memoryEntries() int { return p.mem.size() }
