package rete

import (
	"sync"
	"sync/atomic"

	"pgiv/internal/value"
)

// Production is the terminal node of a view's network: it materialises
// the view contents (a bag with multiplicities) and notifies subscribers
// with the delta batches it receives. Views whose plans share the same
// fingerprint share one production (the materialised bag is identical by
// construction), so each holds its own subscription token for detach.
type Production struct {
	memoVersion
	mem    *memory
	subs   []prodSub
	nextID int

	// Canonical-ordering cache: rebuilt lazily by Rows, invalidated by
	// Apply. The mutex makes concurrent Rows readers safe among
	// themselves (one batch-grained lock per Apply keeps the hot path
	// cheap); reading while a commit is being applied is unsynchronised,
	// as it always was — don't read views from inside another view's
	// OnChange under a parallel engine.
	rowsMu sync.Mutex
	sorted []value.Row
	dirty  bool

	// Epoch publication (MVCC read path): when watched, Publish installs
	// an immutable (epoch, rows) pair after each commit's propagation,
	// and Published hands it to wait-free readers — no lock the commit
	// path takes. pubStale tracks, under rowsMu, whether the bag changed
	// since the last publication; it is deliberately separate from dirty,
	// which a concurrent legacy Rows call may clear mid-commit with a
	// torn rebuild.
	watched  atomic.Bool
	pub      atomic.Pointer[PubRows]
	pubStale bool
}

// PubRows is one published epoch of a production: the canonical-order row
// set as of the commit with that epoch. Both fields are immutable.
type PubRows struct {
	Epoch uint64
	Rows  []value.Row
}

// NewProduction builds an empty production node.
func NewProduction() *Production { return &Production{mem: newMemory(), dirty: true} }

// Apply implements Receiver: it folds the deltas into the materialised
// bag and forwards the batch to subscribers. Batches may contain
// transient retract/assert pairs for the same row; subscribers needing
// net effects should fold them.
func (p *Production) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		p.bumpMemo()
	}
	for _, d := range deltas {
		p.mem.apply(d.Row, d.Mult)
	}
	if len(deltas) > 0 {
		p.rowsMu.Lock()
		p.dirty = true
		p.pubStale = true
		p.sorted = nil
		p.rowsMu.Unlock()
	}
	for _, s := range p.subs {
		s.fn(deltas)
	}
}

// prodSub is one subscription with its removal token.
type prodSub struct {
	id int
	fn func([]Delta)
}

// Subscribe registers a delta callback and returns a token for
// Unsubscribe. Callbacks run synchronously inside the mutating store
// call and must not mutate the graph.
func (p *Production) Subscribe(fn func([]Delta)) int {
	p.nextID++
	p.subs = append(p.subs, prodSub{id: p.nextID, fn: fn})
	return p.nextID
}

// Unsubscribe removes a subscription by token (used when one of several
// views sharing this production drops).
func (p *Production) Unsubscribe(id int) {
	for i, s := range p.subs {
		if s.id == id {
			p.subs = append(p.subs[:i], p.subs[i+1:]...)
			return
		}
	}
}

// Rows returns the materialised view contents in canonical order, each
// row repeated per its multiplicity. The ordering is computed lazily
// and cached behind a dirty flag invalidated by Apply, so repeated
// reads between commits pay no re-sort. Each rebuild makes a fresh
// slice, so a retained result is never mutated by later calls; callers
// must not modify it.
func (p *Production) Rows() []value.Row {
	p.rowsMu.Lock()
	defer p.rowsMu.Unlock()
	if p.dirty {
		p.sorted = p.mem.rows()
		p.dirty = false
	}
	return p.sorted
}

// Watch turns on epoch publication for this production and publishes the
// current contents at the given epoch. Callers must ensure no commit is
// propagating concurrently (the server calls this under its write lock).
// Once watched, the maintenance path publishes after every commit; the
// unwatched cost stays one atomic load per commit.
func (p *Production) Watch(epoch uint64) {
	p.watched.Store(true)
	p.publish(epoch, true)
}

// Publish installs the post-commit row set at the given epoch. It is a
// no-op unless the production is watched. Runs on the maintenance path
// after propagation for this commit has finished; epochs are published
// in commit order because commits are serialised.
func (p *Production) Publish(epoch uint64) {
	if !p.watched.Load() {
		return
	}
	p.publish(epoch, false)
}

func (p *Production) publish(epoch uint64, force bool) {
	prev := p.pub.Load()
	if prev != nil && prev.Epoch == epoch && !force {
		return
	}
	p.rowsMu.Lock()
	if p.pubStale || prev == nil || force {
		rows := p.mem.rows()
		// Feed the legacy cache too: both paths now hand out the same
		// immutable slice, which keeps View.Ordered's identity cache
		// coherent across them.
		p.sorted = rows
		p.dirty = false
		p.pubStale = false
		p.pub.Store(&PubRows{Epoch: epoch, Rows: rows})
	} else {
		// Contents unchanged by this commit: restamp the previous rows
		// so readers still learn the latest epoch (read-your-writes).
		p.pub.Store(&PubRows{Epoch: epoch, Rows: prev.Rows})
	}
	p.rowsMu.Unlock()
}

// Published returns the latest published (epoch, rows) pair, or nil if
// the production is not watched (or not yet published). Wait-free; the
// result is immutable and safe to retain.
func (p *Production) Published() *PubRows { return p.pub.Load() }

// DistinctCount returns the number of distinct rows in the view.
func (p *Production) DistinctCount() int { return p.mem.size() }

func (p *Production) memoryEntries() int { return p.mem.size() }
