package rete

import (
	"sync"

	"pgiv/internal/value"
)

// Production is the terminal node of a view's network: it materialises
// the view contents (a bag with multiplicities) and notifies subscribers
// with the delta batches it receives. Views whose plans share the same
// fingerprint share one production (the materialised bag is identical by
// construction), so each holds its own subscription token for detach.
type Production struct {
	mem    *memory
	subs   []prodSub
	nextID int

	// Canonical-ordering cache: rebuilt lazily by Rows, invalidated by
	// Apply. The mutex makes concurrent Rows readers safe among
	// themselves (one batch-grained lock per Apply keeps the hot path
	// cheap); reading while a commit is being applied is unsynchronised,
	// as it always was — don't read views from inside another view's
	// OnChange under a parallel engine.
	rowsMu sync.Mutex
	sorted []value.Row
	dirty  bool
}

// NewProduction builds an empty production node.
func NewProduction() *Production { return &Production{mem: newMemory(), dirty: true} }

// Apply implements Receiver: it folds the deltas into the materialised
// bag and forwards the batch to subscribers. Batches may contain
// transient retract/assert pairs for the same row; subscribers needing
// net effects should fold them.
func (p *Production) Apply(port int, deltas []Delta) {
	for _, d := range deltas {
		p.mem.apply(d.Row, d.Mult)
	}
	if len(deltas) > 0 {
		p.rowsMu.Lock()
		p.dirty = true
		p.sorted = nil
		p.rowsMu.Unlock()
	}
	for _, s := range p.subs {
		s.fn(deltas)
	}
}

// prodSub is one subscription with its removal token.
type prodSub struct {
	id int
	fn func([]Delta)
}

// Subscribe registers a delta callback and returns a token for
// Unsubscribe. Callbacks run synchronously inside the mutating store
// call and must not mutate the graph.
func (p *Production) Subscribe(fn func([]Delta)) int {
	p.nextID++
	p.subs = append(p.subs, prodSub{id: p.nextID, fn: fn})
	return p.nextID
}

// Unsubscribe removes a subscription by token (used when one of several
// views sharing this production drops).
func (p *Production) Unsubscribe(id int) {
	for i, s := range p.subs {
		if s.id == id {
			p.subs = append(p.subs[:i], p.subs[i+1:]...)
			return
		}
	}
}

// Rows returns the materialised view contents in canonical order, each
// row repeated per its multiplicity. The ordering is computed lazily
// and cached behind a dirty flag invalidated by Apply, so repeated
// reads between commits pay no re-sort. Each rebuild makes a fresh
// slice, so a retained result is never mutated by later calls; callers
// must not modify it.
func (p *Production) Rows() []value.Row {
	p.rowsMu.Lock()
	defer p.rowsMu.Unlock()
	if p.dirty {
		p.sorted = p.mem.rows()
		p.dirty = false
	}
	return p.sorted
}

// DistinctCount returns the number of distinct rows in the view.
func (p *Production) DistinctCount() int { return p.mem.size() }

func (p *Production) memoryEntries() int { return p.mem.size() }
