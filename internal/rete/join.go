package rete

import "pgiv/internal/value"

// JoinNode is a binary natural-join node with indexed memories on both
// sides (a beta node in Rete terms). Multiplicities follow the counting
// approach: a delta on one side joins against the full memory of the
// other, so the emitted multiplicity is the product of the delta's and the
// matched entry's multiplicities.
type JoinNode struct {
	emitter
	memoVersion
	left  *indexedMemory
	right *indexedMemory
	rKeep []int // right columns appended to the left row
	arena rowArena
}

// NewJoinNode builds a join node. lKey and rKey are the positions of the
// shared attributes in the left and right schemas (in the same order);
// rKeep are the right columns that survive into the output (non-shared),
// appended after the left row.
func NewJoinNode(lKey, rKey, rKeep []int) *JoinNode {
	return &JoinNode{
		left:  newIndexedMemory(lKey),
		right: newIndexedMemory(rKey),
		rKeep: rKeep,
	}
}

// Apply implements Receiver. The output batch and the combined rows are
// carved from node-owned scratch (emit buffer, row arena): a probe that
// matches nothing allocates nothing.
func (n *JoinNode) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		n.bumpMemo()
	}
	out := n.outBuf()
	for _, d := range deltas {
		if port == 0 {
			n.left.apply(d.Row, d.Mult)
			key := n.left.keyOf(d.Row)
			n.right.probe(key, func(rrow value.Row, count int) {
				out = append(out, Delta{Row: n.combine(d.Row, rrow), Mult: d.Mult * count})
			})
		} else {
			n.right.apply(d.Row, d.Mult)
			key := n.right.keyOf(d.Row)
			n.left.probe(key, func(lrow value.Row, count int) {
				out = append(out, Delta{Row: n.combine(lrow, d.Row), Mult: d.Mult * count})
			})
		}
	}
	n.emitOwned(out)
}

func (n *JoinNode) combine(l, r value.Row) value.Row {
	out := n.arena.alloc(len(l) + len(n.rKeep))
	out = append(out, l...)
	for _, i := range n.rKeep {
		out = append(out, r[i])
	}
	return out
}

// memoryEntries reports the number of distinct memoized rows (for the
// memory-cost experiment).
func (n *JoinNode) memoryEntries() int { return n.left.size() + n.right.size() }
