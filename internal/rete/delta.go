// Package rete implements the incremental view maintenance engine of the
// paper (Section 4 step 4): a Rete-style discrimination network over flat
// relational algebra plans.
//
// Rows flow through the network as deltas — (row, ±multiplicity) pairs
// under bag semantics, following the counting approach of Gupta et al. and
// Griffin & Libkin. Input nodes translate fine-grained graph change events
// (FGN) into deltas; stateful nodes (joins, dedup, aggregation, transitive
// joins) memoize their inputs so that each update is processed
// incrementally; the production node materialises the view and notifies
// subscribers.
//
// Transitive (variable-length) patterns are maintained by a dedicated
// node that memoizes, per active source vertex, the set of edge-distinct
// paths — paths are atomic values per the paper's treatment of ordering
// (ORD): they are inserted and deleted as units.
package rete

import (
	"sort"

	"pgiv/internal/value"
)

// Delta is a change to a relation: Row appears (Mult > 0) or disappears
// (Mult < 0) with the given multiplicity.
type Delta struct {
	Row  value.Row
	Mult int
}

// memEntry is a memoized row with its current multiplicity.
type memEntry struct {
	row   value.Row
	count int
}

// memory is a bag of rows keyed by their binary encoding. Key encodings
// go through a per-memory scratch Hasher, so steady-state apply calls on
// already-memoized rows (and all probes) allocate no key; a key string
// is materialised only when a new distinct row is inserted.
type memory struct {
	items map[string]*memEntry
	h     value.Hasher
}

func newMemory() *memory { return &memory{items: make(map[string]*memEntry)} }

// apply adjusts the multiplicity of row by mult and returns the previous
// and new counts.
func (m *memory) apply(row value.Row, mult int) (old, new int) {
	k := m.h.RowKey(row)
	e := m.items[string(k)] // zero-copy probe
	if e == nil {
		if mult == 0 {
			return 0, 0
		}
		e = &memEntry{row: row}
		m.items[string(k)] = e
	}
	old = e.count
	e.count += mult
	new = e.count
	if e.count == 0 {
		delete(m.items, string(k)) // zero-copy delete
	}
	return old, new
}

// rows returns the bag contents in canonical sorted order, each row
// repeated by its multiplicity. Production caches the result behind a
// dirty flag; this always rebuilds.
func (m *memory) rows() []value.Row {
	out := make([]value.Row, 0, len(m.items))
	for _, e := range m.items {
		for i := 0; i < e.count; i++ {
			out = append(out, e.row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return value.CompareRows(out[i], out[j]) < 0 })
	return out
}

// size returns the number of distinct rows.
func (m *memory) size() int { return len(m.items) }

// indexedMemory is a bag of rows indexed by a join key (a subset of
// columns), supporting per-key probes. Like memory, key encodings use
// scratch Hashers: probes and steady-state applies allocate no keys.
type indexedMemory struct {
	keyIdx []int
	items  map[string]map[string]*memEntry // joinKey → rowKey → entry
	jh, rh value.Hasher                    // join-key and row-key scratch
}

func newIndexedMemory(keyIdx []int) *indexedMemory {
	return &indexedMemory{keyIdx: keyIdx, items: make(map[string]map[string]*memEntry)}
}

// keyOf encodes row's join key into scratch; the result is valid until
// the next keyOf or apply call on this memory.
func (m *indexedMemory) keyOf(row value.Row) []byte {
	return m.jh.ColsKey(row, m.keyIdx)
}

func (m *indexedMemory) apply(row value.Row, mult int) (old, new int) {
	jk := m.keyOf(row)
	bucket := m.items[string(jk)]
	if bucket == nil {
		bucket = make(map[string]*memEntry)
		m.items[string(jk)] = bucket
	}
	rk := m.rh.RowKey(row)
	e := bucket[string(rk)]
	if e == nil {
		e = &memEntry{row: row}
		bucket[string(rk)] = e
	}
	old = e.count
	e.count += mult
	new = e.count
	if e.count == 0 {
		delete(bucket, string(rk))
		if len(bucket) == 0 {
			delete(m.items, string(jk))
		}
	}
	return old, new
}

// probe invokes fn for every row currently stored under the join key.
// The key may be scratch bytes (e.g. a keyOf result); it is not
// retained.
func (m *indexedMemory) probe(key []byte, fn func(row value.Row, count int)) {
	for _, e := range m.items[string(key)] {
		fn(e.row, e.count)
	}
}

// rowArena hands out row storage carved from shared chunks, cutting the
// one-allocation-per-output-row cost of row construction in hot nodes
// (join combine) to one allocation per chunk. Rows are immutable once
// built and may be retained indefinitely by downstream memories; each
// returned slice is full-slice-capped so appends can never bleed into a
// neighbour. A chunk stays reachable while any row carved from it is —
// the chunk size bounds that overhead per live batch.
type rowArena struct {
	chunk []value.Value
}

const arenaChunk = 256 // values per chunk (~3 cache lines of rows)

// alloc returns an empty row with capacity n, backed by the arena.
func (a *rowArena) alloc(n int) value.Row {
	if cap(a.chunk)-len(a.chunk) < n {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.chunk = make([]value.Value, 0, size)
	}
	start := len(a.chunk)
	a.chunk = a.chunk[: start+n : cap(a.chunk)]
	return a.chunk[start : start : start+n]
}

// size returns the number of distinct rows across all keys.
func (m *indexedMemory) size() int {
	n := 0
	for _, b := range m.items {
		n += len(b)
	}
	return n
}
