// Package rete implements the incremental view maintenance engine of the
// paper (Section 4 step 4): a Rete-style discrimination network over flat
// relational algebra plans.
//
// Rows flow through the network as deltas — (row, ±multiplicity) pairs
// under bag semantics, following the counting approach of Gupta et al. and
// Griffin & Libkin. Input nodes translate fine-grained graph change events
// (FGN) into deltas; stateful nodes (joins, dedup, aggregation, transitive
// joins) memoize their inputs so that each update is processed
// incrementally; the production node materialises the view and notifies
// subscribers.
//
// Transitive (variable-length) patterns are maintained by a dedicated
// node that memoizes, per active source vertex, the set of edge-distinct
// paths — paths are atomic values per the paper's treatment of ordering
// (ORD): they are inserted and deleted as units.
package rete

import (
	"sort"

	"pgiv/internal/value"
)

// Delta is a change to a relation: Row appears (Mult > 0) or disappears
// (Mult < 0) with the given multiplicity.
type Delta struct {
	Row  value.Row
	Mult int
}

// memEntry is a memoized row with its current multiplicity.
type memEntry struct {
	row   value.Row
	count int
}

// memory is a bag of rows keyed by their binary encoding.
type memory struct {
	items map[string]*memEntry
}

func newMemory() *memory { return &memory{items: make(map[string]*memEntry)} }

// apply adjusts the multiplicity of row by mult and returns the previous
// and new counts.
func (m *memory) apply(row value.Row, mult int) (old, new int) {
	k := value.RowKey(row)
	e := m.items[k]
	if e == nil {
		if mult == 0 {
			return 0, 0
		}
		e = &memEntry{row: row}
		m.items[k] = e
	}
	old = e.count
	e.count += mult
	new = e.count
	if e.count == 0 {
		delete(m.items, k)
	}
	return old, new
}

// rows returns the bag contents in canonical sorted order, each row
// repeated by its multiplicity.
func (m *memory) rows() []value.Row {
	out := make([]value.Row, 0, len(m.items))
	for _, e := range m.items {
		for i := 0; i < e.count; i++ {
			out = append(out, e.row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return value.CompareRows(out[i], out[j]) < 0 })
	return out
}

// size returns the number of distinct rows.
func (m *memory) size() int { return len(m.items) }

// indexedMemory is a bag of rows indexed by a join key (a subset of
// columns), supporting per-key probes.
type indexedMemory struct {
	keyIdx []int
	items  map[string]map[string]*memEntry // joinKey → rowKey → entry
}

func newIndexedMemory(keyIdx []int) *indexedMemory {
	return &indexedMemory{keyIdx: keyIdx, items: make(map[string]map[string]*memEntry)}
}

func (m *indexedMemory) keyOf(row value.Row) string {
	var buf []byte
	for _, i := range m.keyIdx {
		buf = value.AppendKey(buf, row[i])
	}
	return string(buf)
}

func (m *indexedMemory) apply(row value.Row, mult int) (old, new int) {
	jk := m.keyOf(row)
	bucket := m.items[jk]
	if bucket == nil {
		bucket = make(map[string]*memEntry)
		m.items[jk] = bucket
	}
	rk := value.RowKey(row)
	e := bucket[rk]
	if e == nil {
		e = &memEntry{row: row}
		bucket[rk] = e
	}
	old = e.count
	e.count += mult
	new = e.count
	if e.count == 0 {
		delete(bucket, rk)
		if len(bucket) == 0 {
			delete(m.items, jk)
		}
	}
	return old, new
}

// probe invokes fn for every row currently stored under the join key.
func (m *indexedMemory) probe(key string, fn func(row value.Row, count int)) {
	for _, e := range m.items[key] {
		fn(e.row, e.count)
	}
}

// size returns the number of distinct rows across all keys.
func (m *indexedMemory) size() int {
	n := 0
	for _, b := range m.items {
		n += len(b)
	}
	return n
}
