package rete

import (
	"sort"

	"pgiv/internal/cypher"
	"pgiv/internal/graph"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// ShortestPathNode incrementally maintains the shortest-path join: each
// left row is extended with, per reachable destination, the single
// cheapest edge-distinct trail of Min..Max usable edges from its source
// vertex (snapshot.ShortestPathEnum defines usability, cost and the
// deterministic tie-break).
//
// The node memoizes per active source vertex a distance-fragment set —
// one fragment (destination, witness path, cost, destination properties)
// per reachable destination — plus a containment index counting, per
// edge, how many witness paths cross it. Repair is a bounded
// delta-Dijkstra in the style of TransitiveNode: an edge removal can only
// change champions of sources whose witness set contains the edge (a
// non-witness edge's removal shrinks the candidate set without touching
// the incumbent), found exactly via the containment index; an edge
// insertion can only improve sources within Max reverse hops of the
// edge's entry endpoint, found by a depth-bounded reverse BFS; a weight
// or predicate property change can do either, so it takes the union.
// Each affected source is re-enumerated at most once per commit and the
// fragment-set difference is emitted.
type ShortestPathNode struct {
	emitter
	memoVersion
	g        *graph.Graph
	srcIdx   int // position of the source vertex in left rows
	spec     *snapshot.ShortestPathSpec
	dstProps []string

	left     *indexedMemory // left rows grouped by source vertex
	sources  map[graph.ID]*srcState
	freshIDs []graph.ID   // sources first activated during the current commit
	skh      value.Hasher // source-key scratch

	// depth-bounded reverse-reachability scratch, reused across commits
	bfsDepth map[graph.ID]int
	bfsQueue []graph.ID
	bfsOut   []graph.ID
}

// NewShortestPathNode builds a shortest-path node. srcIdx is the source
// vertex position in left rows; dstProps are the pushed-down property
// keys of the destination vertex.
func NewShortestPathNode(g *graph.Graph, srcIdx int, spec *snapshot.ShortestPathSpec, dstProps []string) *ShortestPathNode {
	return &ShortestPathNode{
		g: g, srcIdx: srcIdx, spec: spec, dstProps: dstProps,
		left:    newIndexedMemory([]int{srcIdx}),
		sources: make(map[graph.ID]*srcState),
	}
}

// computeFrags enumerates the current fragment set of a source vertex:
// one (dst, path, cost, dstProps...) row per reachable destination. The
// layout keeps the witness path at index 1, so srcState's containment
// bookkeeping (dropEdges/addEdges) applies unchanged.
func (n *ShortestPathNode) computeFrags(src graph.ID) map[string]value.Row {
	frags := make(map[string]value.Row)
	snapshot.ShortestPathEnum(n.g, src, n.spec, func(p *value.Path, dst *graph.Vertex, cost value.Value) {
		frag := make(value.Row, 0, 3+len(n.dstProps))
		frag = append(frag, value.NewVertex(dst.ID), value.NewPath(p), cost)
		for _, k := range n.dstProps {
			frag = append(frag, dst.Prop(k))
		}
		frags[value.RowKey(frag)] = frag
	})
	return frags
}

// srcKey encodes a source-vertex key into scratch; valid until the next
// srcKey call.
func (n *ShortestPathNode) srcKey(id graph.ID) []byte {
	return n.skh.ValueKey(value.NewVertex(id))
}

// Apply implements Receiver for the left input (port 0).
func (n *ShortestPathNode) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		n.bumpMemo()
	}
	out := n.outBuf()
	for _, d := range deltas {
		srcVal := d.Row[n.srcIdx]
		if srcVal.Kind() != value.KindVertex {
			n.left.apply(d.Row, d.Mult)
			continue
		}
		id := srcVal.ID()
		st := n.sources[id]
		if st == nil && d.Mult > 0 {
			// A source activated mid-commit enumerates against the already
			// fully-applied graph; mark it so this commit's batch pass does
			// not re-enumerate it (left deltas always precede the node's
			// own ApplyChangeSet — inputs are registered first).
			st = &srcState{frags: n.computeFrags(id), fresh: true, sortedDirty: true}
			st.edges = buildEdgeIndex(st.frags)
			n.sources[id] = st
			n.freshIDs = append(n.freshIDs, id)
		}
		n.left.apply(d.Row, d.Mult)
		if st != nil {
			for _, frag := range st.sortedFrags() {
				out = append(out, Delta{Row: value.ConcatRows(d.Row, frag), Mult: d.Mult})
			}
		}
		// Release the fragment memory once no left row references the source.
		if len(n.left.items[string(n.srcKey(id))]) == 0 {
			delete(n.sources, id)
		}
	}
	n.emitOwned(out)
}

// recomputeAndDiff refreshes the fragment sets of the given sources and
// emits deltas for every left row of each changed source.
func (n *ShortestPathNode) recomputeAndDiff(ids []graph.ID) {
	n.bumpMemo()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := n.outBuf()
	for _, id := range ids {
		st := n.sources[id]
		if st == nil || st.fresh {
			continue
		}
		newFrags := n.computeFrags(id)
		var removed, added []value.Row
		for k, frag := range st.frags {
			if _, ok := newFrags[k]; !ok {
				removed = append(removed, frag)
			}
		}
		for k, frag := range newFrags {
			if _, ok := st.frags[k]; !ok {
				added = append(added, frag)
			}
		}
		if len(removed) == 0 && len(added) == 0 {
			st.frags = newFrags
			continue
		}
		sortRows(removed)
		sortRows(added)
		n.left.probe(n.srcKey(id), func(lrow value.Row, count int) {
			for _, frag := range removed {
				out = append(out, Delta{Row: value.ConcatRows(lrow, frag), Mult: -count})
			}
			for _, frag := range added {
				out = append(out, Delta{Row: value.ConcatRows(lrow, frag), Mult: count})
			}
		})
		for _, frag := range removed {
			st.dropEdges(frag)
		}
		for _, frag := range added {
			st.addEdges(frag)
		}
		st.frags = newFrags
		st.sortedDirty = true
	}
	n.emitOwned(out)
}

// activeSourcesWithin returns the active sources within limit backward
// hops (limit == -1 means unbounded) of any of the given targets,
// traversing edges of the node's types against its direction — a
// conservative superset of the sources whose hop window can see the
// targets. vertexTargets seed the reverse BFS at depth 0; edgeEntries —
// entry endpoints of changed edges — seed at depth 1, because crossing
// the changed edge itself already spends one of the trail's Max hops, so
// only sources within Max-1 hops of the entry can use it. Skipping that
// final BFS layer shrinks the explored ball by roughly a branching
// factor. The result and the bookkeeping are node-owned scratch, valid
// until the next call.
func (n *ShortestPathNode) activeSourcesWithin(limit int, vertexTargets, edgeEntries []graph.ID) []graph.ID {
	if n.bfsDepth == nil {
		n.bfsDepth = make(map[graph.ID]int)
	}
	clear(n.bfsDepth)
	depth := n.bfsDepth
	queue := n.bfsQueue[:0]
	for _, t := range vertexTargets {
		if _, ok := depth[t]; !ok {
			depth[t] = 0
			queue = append(queue, t)
		}
	}
	for _, t := range edgeEntries {
		if _, ok := depth[t]; !ok {
			depth[t] = 1
			queue = append(queue, t)
		}
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		d := depth[x]
		if limit != -1 && d >= limit {
			continue
		}
		n.forEachBackwardNeighbor(x, func(p graph.ID) {
			if _, ok := depth[p]; !ok {
				depth[p] = d + 1
				queue = append(queue, p)
			}
		})
	}
	n.bfsQueue = queue
	out := n.bfsOut[:0]
	for id := range depth {
		if _, ok := n.sources[id]; ok {
			out = append(out, id)
		}
	}
	n.bfsOut = out
	return out
}

// forEachBackwardNeighbor invokes fn for every vertex that can step to x
// in one hop of the node's traversal direction, walking the typed
// adjacency index without allocating.
func (n *ShortestPathNode) forEachBackwardNeighbor(x graph.ID, fn func(graph.ID)) {
	ts := n.spec.Types
	if len(ts) == 0 {
		ts = allTypes
	}
	for _, t := range ts {
		if n.spec.Dir == cypher.DirOut || n.spec.Dir == cypher.DirBoth {
			n.g.ForEachInEdge(x, t, func(e *graph.Edge) bool {
				fn(e.Src)
				return true
			})
		}
		if n.spec.Dir == cypher.DirIn || n.spec.Dir == cypher.DirBoth {
			n.g.ForEachOutEdge(x, t, func(e *graph.Edge) bool {
				fn(e.Trg)
				return true
			})
		}
	}
}

// appendEntries appends the entry endpoint(s) of an edge — the vertices a
// path is at immediately before crossing it — per the node's direction.
func (n *ShortestPathNode) appendEntries(targets []graph.ID, e *graph.Edge) []graph.ID {
	switch n.spec.Dir {
	case cypher.DirOut:
		return append(targets, e.Src)
	case cypher.DirIn:
		return append(targets, e.Trg)
	default:
		return append(targets, e.Src, e.Trg)
	}
}

// edgePropRelevant reports whether any of the changed edge property keys
// can affect path cost or edge usability.
func (n *ShortestPathNode) edgePropRelevant(keys []string) bool {
	for _, k := range keys {
		if n.spec.WeightProp != "" && k == n.spec.WeightProp {
			return true
		}
		for _, p := range n.spec.EdgePreds {
			if p.Key == k {
				return true
			}
		}
	}
	return false
}

// ApplyChangeSet implements ChangeSink. Unlike TransitiveNode there is no
// property-blind fast path: an edge property change can re-weight or
// (un)block paths, so weight/predicate keys are part of the relevance
// check. Affected sources are the union of exact witness containment (for
// removals and property changes) and the depth-bounded reverse BFS from
// changed entry points (for insertions, property changes and destination
// vertex changes); each is re-enumerated at most once per commit.
//
// Source-vertex existence is deliberately ignored here: it flows in
// through the left input (a removed source's rows are retracted against
// the still-memoized fragments, or the fragments are already gone — both
// orders yield the same net deltas).
func (n *ShortestPathNode) ApplyChangeSet(cs *graph.ChangeSet) {
	defer n.clearFresh()
	if len(n.sources) == 0 {
		return
	}
	affected := make(map[graph.ID]bool)
	markWitnesses := func(eid graph.ID) {
		for id, st := range n.sources {
			if st.edges[eid] > 0 {
				affected[id] = true
			}
		}
	}
	var entries, targets []graph.ID
	for _, d := range cs.Edges() {
		if !typeMatches(n.spec.Types, d.E.Type) {
			continue
		}
		switch {
		case d.Created():
			entries = n.appendEntries(entries, d.E)
		case d.Removed():
			// Removing a non-witness edge cannot change a champion: the
			// incumbent survives and the candidate set only shrinks.
			markWitnesses(d.E.ID)
		default:
			if n.edgePropRelevant(d.ChangedProps()) {
				// A re-weight or predicate flip can evict the edge from
				// current witnesses or open a cheaper trail for any source
				// that can reach it: take the union of both searches.
				markWitnesses(d.E.ID)
				entries = n.appendEntries(entries, d.E)
			}
		}
	}
	for _, d := range cs.Vertices() {
		if d.Created() || d.Removed() {
			continue
		}
		relevant := false
		if d.LabelsChanged() {
			for _, l := range n.spec.DstLabels {
				if d.HadLabel(l) != d.V.HasLabel(l) {
					relevant = true
					break
				}
			}
		}
		if !relevant {
			for _, k := range d.ChangedProps() {
				if containsLabel(n.dstProps, k) {
					relevant = true
					break
				}
			}
		}
		if relevant {
			targets = append(targets, d.V.ID)
		}
	}
	if len(targets) > 0 || len(entries) > 0 {
		for _, id := range n.activeSourcesWithin(n.spec.Max, targets, entries) {
			affected[id] = true
		}
	}
	if len(affected) == 0 {
		return
	}
	ids := make([]graph.ID, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	n.recomputeAndDiff(ids)
}

// clearFresh ends the current commit's freshness window.
func (n *ShortestPathNode) clearFresh() {
	for _, id := range n.freshIDs {
		if st := n.sources[id]; st != nil {
			st.fresh = false
		}
	}
	n.freshIDs = n.freshIDs[:0]
}

func (n *ShortestPathNode) memoryEntries() int {
	e := n.left.size()
	for _, st := range n.sources {
		e += len(st.frags)
	}
	return e
}
