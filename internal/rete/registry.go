package rete

import (
	"fmt"
	"sort"

	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/value"
)

// SubplanEntry is one shared, ref-counted node of the Rete network. The
// registry keys entries by the structural fingerprint of the FRA subtree
// they compute (fra.Fingerprint), so every view whose plan contains that
// subtree — the whole chain of inputs, joins, selections, dedups,
// aggregates, transitive joins, and even the terminal production — attaches
// to the same stateful node instead of building a private copy.
//
// refs counts attachments: one per parent link using this entry as a
// child, plus one per view materialised directly by a production entry.
// When the count reaches zero the entry detaches from its children (each
// of which it holds one ref on per link) and is forgotten; memory and
// per-commit propagation cost therefore scale with the number of
// *distinct* subplans, not the number of views.
type SubplanEntry struct {
	key  string // registry map key (fingerprint; serialised when sharing is off)
	p    producer
	seed seeder

	sink    ChangeSink    // non-nil for input and transitive nodes
	trans   Translator    // non-nil for input nodes
	counter memoryCounter // non-nil for stateful nodes
	isInput bool

	production *Production // non-nil only for production entries

	// Production entries also keep the FRA plan they materialise, so the
	// rewrite planner can enumerate live memos and reason about them
	// structurally (subsumption, residual compilation). The plan is the
	// flattened NRA tree as compiled — never mutated after Build.
	prodPlan   nra.Op
	prodParams map[string]value.Value
	prodFP     string // bare plan fingerprint (without the "prod[...]" wrapper)

	refs     int
	order    int // creation sequence; fixes deterministic scheduling order
	children []childLink
}

// childLink is one use of a child entry: the successor edge from the
// child's node into this entry's node. A binary node over two copies of
// the same subtree holds two links to one child entry.
type childLink struct {
	child *SubplanEntry
	edge  succ
}

// seedEdge is a boundary edge that must be seeded when a new view
// attaches: the (pre-populated or input) child replays its current rows
// into exactly this successor edge.
type seedEdge struct {
	seed seeder
	edge succ
}

// SubplanRegistry owns every live Rete node, keyed by subplan
// fingerprint. With sharing disabled (the EXP-F/EXP-L ablation) every
// lookup misses and every registration gets a serialised private key, so
// each view builds the fully private network of the unshared engine.
type SubplanRegistry struct {
	g       *graph.Graph
	sharing bool
	serial  int
	seq     int
	entries map[string]*SubplanEntry

	onNew     func(ChangeSink) // invoked for every new changeset-consuming node
	onRelease func(ChangeSink) // invoked when such a node's entry is released
}

// NewSubplanRegistry builds a registry. onNew is called for every newly
// created changeset sink (input and transitive nodes) so the engine can
// route committed change sets to it; onRelease is called when the last
// view using such a node drops.
func NewSubplanRegistry(g *graph.Graph, sharing bool, onNew, onRelease func(ChangeSink)) *SubplanRegistry {
	return &SubplanRegistry{
		g: g, sharing: sharing,
		entries:   make(map[string]*SubplanEntry),
		onNew:     onNew,
		onRelease: onRelease,
	}
}

// lookup returns the live entry for a fingerprint, or nil. With sharing
// disabled it always misses.
func (r *SubplanRegistry) lookup(fp string) *SubplanEntry {
	if !r.sharing {
		return nil
	}
	return r.entries[fp]
}

// register stores a freshly built entry under the fingerprint (serialised
// when sharing is off), assigns its creation order and initial reference,
// and announces its changeset sink.
func (r *SubplanRegistry) register(fp string, e *SubplanEntry) *SubplanEntry {
	if !r.sharing {
		r.serial++
		fp = fmt.Sprintf("%s\x00#%d", fp, r.serial)
	}
	e.key = fp
	e.refs = 1
	e.order = r.seq
	r.seq++
	r.entries[fp] = e
	if e.sink != nil && r.onNew != nil {
		r.onNew(e.sink)
	}
	return e
}

// release drops one reference; at zero the entry detaches from its
// children (releasing one ref per link) and is forgotten.
func (r *SubplanRegistry) release(e *SubplanEntry) {
	e.refs--
	if e.refs > 0 {
		return
	}
	delete(r.entries, e.key)
	if e.sink != nil && r.onRelease != nil {
		r.onRelease(e.sink)
	}
	for _, cl := range e.children {
		cl.child.p.removeSucc(cl.edge.node, cl.edge.port)
		r.release(cl.child)
	}
	e.children = nil
}

// MemoryEntries sums the memoized rows of every distinct live node —
// the engine-level memory figure of the sharing experiment (each shared
// node counted once however many views attach to it).
func (r *SubplanRegistry) MemoryEntries() int {
	total := 0
	for _, e := range r.entries {
		if e.counter != nil {
			total += e.counter.memoryEntries()
		}
	}
	return total
}

// NodeCount returns the number of distinct live nodes (including
// productions).
func (r *SubplanRegistry) NodeCount() int { return len(r.entries) }

// Candidate is one live memoized production exposed to the query-rewrite
// planner: the FRA plan it materialises (read-only), the parameters it
// was compiled with, its bare plan fingerprint, and the Production whose
// Published() rows hold the epoch-stamped memo.
type Candidate struct {
	Fingerprint string
	Plan        nra.Op
	Params      map[string]value.Value
	Prod        *Production
	Order       int
}

// Candidates enumerates every live production entry in deterministic
// creation order. It is a read-only view: the returned plans and
// productions are shared, not copied, and callers must access rows only
// through Production.Published(). Works identically with sharing off —
// serialised keys still hold production entries with plans.
func (r *SubplanRegistry) Candidates() []Candidate {
	out := make([]Candidate, 0, len(r.entries))
	for _, e := range r.entries {
		if e.production == nil || e.prodPlan == nil {
			continue
		}
		out = append(out, Candidate{
			Fingerprint: e.prodFP,
			Plan:        e.prodPlan,
			Params:      e.prodParams,
			Prod:        e.production,
			Order:       e.order,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// --- propagation plan ---

// PropPlan partitions the live network into independently propagatable
// groups for the parallel scheduler. Input (alpha) nodes are stateless
// and excluded: each commit they are translated once, and their read-only
// delta batches are delivered into every group that consumes them. All
// remaining nodes are partitioned by connected components of the
// successor graph — two views sharing any stateful subtree land in one
// group, so no mutable node is ever touched by two workers.
type PropPlan struct {
	Groups []PropGroup
}

// PropGroup is one connected component of mutable nodes: the input edges
// feeding it (in deterministic creation order) and its transitive-join
// sinks (in creation order, which places every node after the inputs of
// its own subtree — the ordering the transitive freshness window relies
// on).
type PropGroup struct {
	inputs []inputEdge
	sinks  []ChangeSink
}

type inputEdge struct {
	t    Translator
	edge succ
}

// Run propagates one committed change set through the group: the
// precomputed input batches are applied into the group's edges, then the
// group's transitive sinks consume the change set directly. batch returns
// the commit's translated delta batch of an input node (read-only,
// shared across groups).
func (g *PropGroup) Run(cs *graph.ChangeSet, batch func(Translator) []Delta) {
	for _, ie := range g.inputs {
		if ds := batch(ie.t); len(ds) > 0 {
			ie.edge.node.Apply(ie.edge.port, ds)
		}
	}
	for _, s := range g.sinks {
		s.ApplyChangeSet(cs)
	}
}

// BuildPropPlan computes the current propagation partition. The engine
// rebuilds it whenever a view registers or drops; commits only read it.
func (r *SubplanRegistry) BuildPropPlan() *PropPlan {
	entries := make([]*SubplanEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].order < entries[j].order })

	// Union-find over mutable (non-input) entries, connected by links.
	parent := make(map[*SubplanEntry]*SubplanEntry, len(entries))
	var find func(e *SubplanEntry) *SubplanEntry
	find = func(e *SubplanEntry) *SubplanEntry {
		p, ok := parent[e]
		if !ok || p == e {
			parent[e] = e
			return e
		}
		root := find(p)
		parent[e] = root
		return root
	}
	union := func(a, b *SubplanEntry) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, e := range entries {
		if e.isInput {
			continue
		}
		for _, cl := range e.children {
			if !cl.child.isInput {
				union(e, cl.child)
			}
		}
	}

	groupOf := make(map[*SubplanEntry]*PropGroup)
	var groups []*PropGroup
	group := func(e *SubplanEntry) *PropGroup {
		root := find(e)
		g := groupOf[root]
		if g == nil {
			g = &PropGroup{}
			groupOf[root] = g
			groups = append(groups, g)
		}
		return g
	}
	for _, e := range entries {
		if e.isInput {
			continue
		}
		g := group(e)
		for _, cl := range e.children {
			if cl.child.isInput {
				g.inputs = append(g.inputs, inputEdge{t: cl.child.trans, edge: cl.edge})
			}
		}
		if e.sink != nil {
			g.sinks = append(g.sinks, e.sink)
		}
	}

	plan := &PropPlan{Groups: make([]PropGroup, 0, len(groups))}
	for _, g := range groups {
		if len(g.inputs) == 0 && len(g.sinks) == 0 {
			continue
		}
		plan.Groups = append(plan.Groups, *g)
	}
	return plan
}
