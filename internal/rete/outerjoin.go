package rete

import "pgiv/internal/value"

// OuterJoinNode maintains a natural left outer join incrementally (the
// Rete form of OPTIONAL MATCH): a left row with matching right rows
// emits one combined row per match (multiplicities multiply, as in
// JoinNode); a left row whose join key currently has zero right-side
// support emits itself once per left multiplicity, with the right side's
// non-shared columns null-padded.
//
// Both sides are memoized in key-indexed memories, as in JoinNode. On
// top of that the node tracks, per join key, the total right-side
// multiplicity — the support count, exactly the ExistsNode pattern.
// When a key's support crosses zero the padded rows for every left row
// under that key flip: appearing matches retract the padding and assert
// the combined rows, disappearing matches do the reverse, and the
// production's per-commit coalescing nets out any transient churn.
type OuterJoinNode struct {
	emitter
	memoVersion
	left  *indexedMemory
	right *indexedMemory
	rKeep []int // right columns appended to the left row (null-padded)
	// rightCounts holds per-key right-side support behind pointers so
	// steady-state updates mutate in place (see ExistsNode).
	rightCounts map[string]*int
	arena       rowArena
}

// NewOuterJoinNode builds a left-outer-join node. lKey and rKey are the
// positions of the shared attributes in the left and right schemas (in
// the same order); rKeep are the right columns that survive into the
// output, appended after the left row — or null-padded for matchless
// left rows.
func NewOuterJoinNode(lKey, rKey, rKeep []int) *OuterJoinNode {
	return &OuterJoinNode{
		left:        newIndexedMemory(lKey),
		right:       newIndexedMemory(rKey),
		rKeep:       rKeep,
		rightCounts: make(map[string]*int),
	}
}

// live reports whether left rows under a key with the given right
// support emit combined rows (true) or the null-padded row (false).
func (n *OuterJoinNode) live(rightCount int) bool { return rightCount > 0 }

// Apply implements Receiver.
func (n *OuterJoinNode) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		n.bumpMemo()
	}
	out := n.outBuf()
	for _, d := range deltas {
		if port == 0 {
			n.left.apply(d.Row, d.Mult)
			key := n.left.keyOf(d.Row)
			rc := 0
			if p := n.rightCounts[string(key)]; p != nil {
				rc = *p
			}
			if n.live(rc) {
				n.right.probe(key, func(rrow value.Row, count int) {
					out = append(out, Delta{Row: n.combine(d.Row, rrow), Mult: d.Mult * count})
				})
			} else {
				out = append(out, Delta{Row: n.pad(d.Row), Mult: d.Mult})
			}
		} else {
			n.right.apply(d.Row, d.Mult)
			key := n.right.keyOf(d.Row)
			p := n.rightCounts[string(key)]
			old := 0
			if p != nil {
				old = *p
			}
			new := old + d.Mult
			switch {
			case new == 0:
				delete(n.rightCounts, string(key))
			case p != nil:
				*p = new
			default:
				v := new
				n.rightCounts[string(key)] = &v
			}
			// The combined rows for this right delta always flow.
			n.left.probe(key, func(lrow value.Row, count int) {
				out = append(out, Delta{Row: n.combine(lrow, d.Row), Mult: d.Mult * count})
			})
			// Padding flips when the support crosses zero.
			wasLive, isLive := n.live(old), n.live(new)
			if wasLive == isLive {
				continue
			}
			mult := 1
			if isLive {
				mult = -1 // matches appeared: retract the padded rows
			}
			n.left.probe(key, func(lrow value.Row, count int) {
				out = append(out, Delta{Row: n.pad(lrow), Mult: mult * count})
			})
		}
	}
	n.emitOwned(out)
}

func (n *OuterJoinNode) combine(l, r value.Row) value.Row {
	out := n.arena.alloc(len(l) + len(n.rKeep))
	out = append(out, l...)
	for _, i := range n.rKeep {
		out = append(out, r[i])
	}
	return out
}

// pad builds the null-padded output row of a matchless left row.
func (n *OuterJoinNode) pad(l value.Row) value.Row {
	out := n.arena.alloc(len(l) + len(n.rKeep))
	out = append(out, l...)
	for range n.rKeep {
		out = append(out, value.Null)
	}
	return out
}

// Seed implements seeder: keys with right support replay the per-key
// cross product of the memoized sides; keys without replay the padded
// left rows.
func (n *OuterJoinNode) Seed(target succ) {
	var out []Delta
	for jk, lbucket := range n.left.items {
		rc := 0
		if p := n.rightCounts[jk]; p != nil {
			rc = *p
		}
		if n.live(rc) {
			rbucket := n.right.items[jk]
			for _, le := range lbucket {
				for _, re := range rbucket {
					out = append(out, Delta{Row: n.combine(le.row, re.row), Mult: le.count * re.count})
				}
			}
		} else {
			for _, le := range lbucket {
				out = append(out, Delta{Row: n.pad(le.row), Mult: le.count})
			}
		}
	}
	if len(out) > 0 {
		target.node.Apply(target.port, out)
	}
}

// memoryEntries reports the distinct memoized rows plus the support
// index (for the memory-cost experiment).
func (n *OuterJoinNode) memoryEntries() int {
	return n.left.size() + n.right.size() + len(n.rightCounts)
}
