package rete

import (
	"strings"

	"pgiv/internal/expr"
	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// TopKNode incrementally maintains the Top operator
// (ORDER BY ... [SKIP s] [LIMIT k]): it keeps every input row in an
// order-statistic skip list — a counted skip list whose link widths are
// bag multiplicities, so the rank of any row and the row at any rank are
// O(log n) — ordered by the evaluated sort keys with the canonical
// row-key tie-break (the exact comparator of snapshot.TopCompare, which
// makes the snapshot engine the oracle for every window). Downstream it
// emits only the delta of the visible window [s, s+k): rows enter and
// leave as insertions and deletions shift ranks across the window
// boundaries, and everything strictly below the window stays invisible
// to the production however much it churns.
//
// Two regimes share the machinery:
//
//   - bounded LIMIT: after each input batch the node re-enumerates the
//     window [s, s+k) (O(log n + k)) and merge-diffs it against the
//     previously emitted window, emitting only the difference. A batch
//     whose every change ranks at or beyond the window end skips the
//     diff entirely — the common leaderboard case of churn below the
//     fold costs one rank query per delta.
//   - unbounded LIMIT (SKIP only): the visible relation is
//     "everything minus the prefix [0, s)", so the node forwards the
//     raw input batch and appends the negated diff of the prefix.
//
// The hot path allocates nothing in steady state: key evaluation, rank
// queries, width updates and the window diff all run through node-owned
// scratch; memory is allocated only when a distinct row first appears.
type TopKNode struct {
	emitter
	memoVersion
	keyFns []expr.Fn
	desc   []bool
	skip   int
	limit  int // -1 = unbounded
	env    *expr.Env

	head  *topNode
	level int
	total int // bag size of the tree (sum of entry counts)
	rng   uint64

	byKey map[string]*topEntry
	kh    value.Hasher

	keysScratch value.Row
	win, winBuf []winItem             // previously emitted window / diff scratch
	update      [topMaxLevel]*topNode // search path scratch
	rankAt      [topMaxLevel]int      // end-position of update[i]
}

// topEntry is one distinct row with its evaluated sort keys and bag
// count. The count is the full bag multiplicity and may be transiently
// negative inside a batch (a retraction arriving before its matching
// assertion); the skip list only ever holds entries with positive count.
type topEntry struct {
	keys   value.Row
	row    value.Row
	rowKey string
	count  int
}

// topNode is one tower of the counted skip list. width[i] is the bag
// multiplicity spanned by the level-i link: the sum of entry counts in
// the open-closed interval (this node, next[i]] — for a nil next[i],
// the sum of all counts after this node. The cumulative widths along a
// search path therefore give the end position of the reached node.
type topNode struct {
	ent   *topEntry
	next  []*topNode
	width []int
}

const topMaxLevel = 24

// winItem is one row of the emitted window with its visible multiplicity
// (an entry straddling a window boundary is partially visible).
type winItem struct {
	ent *topEntry
	vis int
}

// NewTopKNode builds a Top maintenance node. keyFns evaluate the sort
// keys over input rows (desc flags one per key); skip is the window
// start; limit is the window size, -1 for unbounded (SKIP only). A node
// with skip == 0 and unbounded limit would be the identity — the Rete
// compiler never builds one.
func NewTopKNode(g *graph.Graph, keyFns []expr.Fn, desc []bool, skip, limit int) *TopKNode {
	return &TopKNode{
		keyFns: keyFns, desc: desc, skip: skip, limit: limit,
		env:   &expr.Env{G: g},
		head:  &topNode{next: make([]*topNode, topMaxLevel), width: make([]int, topMaxLevel)},
		level: 1,
		rng:   0x9e3779b97f4a7c15, // fixed seed: deterministic shape per insert order
		byKey: make(map[string]*topEntry),
	}
}

// cmp orders an entry against a probe (keys, row, rowKey), matching
// snapshot.TopCompare: sort keys with desc flags, then canonical row
// comparison, then the canonical binary row key. Total over distinct
// rows.
func (n *TopKNode) cmp(e *topEntry, keys value.Row, row value.Row, rowKey []byte) int {
	for k := range n.desc {
		c := value.Compare(e.keys[k], keys[k])
		if n.desc[k] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	if c := value.CompareRows(e.row, row); c != 0 {
		return c
	}
	return cmpStrBytes(e.rowKey, rowKey)
}

// cmpStrBytes compares a string against a byte slice without the
// string([]byte) conversion — the probe's row key is Hasher scratch,
// and converting it would put an allocation on every tied comparison
// of the search hot path.
func cmpStrBytes(s string, b []byte) int {
	m := len(s)
	if len(b) < m {
		m = len(b)
	}
	for i := 0; i < m; i++ {
		if s[i] != b[i] {
			if s[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(b):
		return -1
	case len(s) > len(b):
		return 1
	}
	return 0
}

// cmpEntries orders two entries (used by the window merge-diff).
func (n *TopKNode) cmpEntries(a, b *topEntry) int {
	for k := range n.desc {
		c := value.Compare(a.keys[k], b.keys[k])
		if n.desc[k] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	if c := value.CompareRows(a.row, b.row); c != 0 {
		return c
	}
	return strings.Compare(a.rowKey, b.rowKey)
}

// boundary returns the position below which a change can affect the
// emitted result: the window end for bounded limits, the prefix end
// (skip) for unbounded ones.
func (n *TopKNode) boundary() int {
	if n.limit < 0 {
		return n.skip
	}
	return n.skip + n.limit
}

// Apply implements Receiver: fold the batch into the order-statistic
// tree (one O(log n) search per delta), then emit the window delta in
// one diff pass — skipped entirely when every change ranked at or
// beyond the boundary.
func (n *TopKNode) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		n.bumpMemo()
	}
	affected := false
	bound := n.boundary()
	out := n.outBuf()
	for _, d := range deltas {
		if d.Mult == 0 {
			continue
		}
		if n.limit < 0 {
			// Unbounded: the raw delta is the Δtotal part of
			// Δvisible = Δtotal − Δprefix.
			out = append(out, d)
		}
		n.env.Row = d.Row
		ks := n.keysScratch[:0]
		for _, fn := range n.keyFns {
			ks = append(ks, fn(n.env))
		}
		n.keysScratch = ks
		rk := n.kh.RowKey(d.Row)

		node := n.search(ks, d.Row, rk)
		pos := n.rankAt[0] // start position of the found/insertion point
		if pos < bound {
			affected = true
		}

		ent := n.byKey[string(rk)] // zero-copy probe
		if ent == nil {
			ent = &topEntry{
				keys:   append(value.Row(nil), ks...),
				row:    d.Row,
				rowKey: string(rk),
			}
			n.byKey[ent.rowKey] = ent
		}
		treeOld := ent.count
		if treeOld < 0 {
			treeOld = 0
		}
		ent.count += d.Mult
		treeNew := ent.count
		if treeNew < 0 {
			treeNew = 0
		}
		if ent.count == 0 {
			delete(n.byKey, ent.rowKey)
		}
		switch {
		case treeOld == 0 && treeNew > 0:
			n.insert(ent, treeNew)
		case treeOld > 0 && treeNew == 0:
			n.remove(node, treeOld)
		case treeNew != treeOld:
			dm := treeNew - treeOld
			for i := 0; i < n.level; i++ {
				n.update[i].width[i] += dm
			}
			n.total += dm
		}
	}
	if affected {
		out = n.diffWindow(out)
	}
	n.emitOwned(out)
}

// search descends the skip list for the probe, filling update[] (the
// last node strictly before the probe per level) and rankAt[] (that
// node's end position). Returns the probe's node if present.
func (n *TopKNode) search(keys value.Row, row value.Row, rowKey []byte) *topNode {
	x := n.head
	pos := 0
	for i := n.level - 1; i >= 0; i-- {
		for x.next[i] != nil && n.cmp(x.next[i].ent, keys, row, rowKey) < 0 {
			pos += x.width[i]
			x = x.next[i]
		}
		n.update[i] = x
		n.rankAt[i] = pos
	}
	if cand := x.next[0]; cand != nil && n.cmp(cand.ent, keys, row, rowKey) == 0 {
		return cand
	}
	return nil
}

// randLevel draws a deterministic tower height (xorshift64, p = 1/4 per
// level). The shape never influences emitted results, only probe cost.
func (n *TopKNode) randLevel() int {
	lvl := 1
	for lvl < topMaxLevel {
		n.rng ^= n.rng << 13
		n.rng ^= n.rng >> 7
		n.rng ^= n.rng << 17
		if n.rng&3 != 0 {
			break
		}
		lvl++
	}
	return lvl
}

// insert links a new tower for ent (tree count cnt) at the position
// recorded by the preceding search.
func (n *TopKNode) insert(ent *topEntry, cnt int) {
	lvl := n.randLevel()
	if lvl > n.level {
		for i := n.level; i < lvl; i++ {
			n.update[i] = n.head
			n.rankAt[i] = 0
			n.head.width[i] = n.total // the head→nil link spans everything
		}
		n.level = lvl
	}
	node := &topNode{ent: ent, next: make([]*topNode, lvl), width: make([]int, lvl)}
	pos := n.rankAt[0] // the new node's start position
	for i := 0; i < lvl; i++ {
		u := n.update[i]
		node.next[i] = u.next[i]
		u.next[i] = node
		left := pos - n.rankAt[i] // counts between update[i] and the new node
		node.width[i] = u.width[i] - left
		u.width[i] = left + cnt
	}
	for i := lvl; i < n.level; i++ {
		n.update[i].width[i] += cnt
	}
	n.total += cnt
}

// remove unlinks node (tree count cnt) using the preceding search path.
func (n *TopKNode) remove(node *topNode, cnt int) {
	for i := 0; i < n.level; i++ {
		u := n.update[i]
		if i < len(node.next) && u.next[i] == node {
			u.width[i] += node.width[i] - cnt
			u.next[i] = node.next[i]
		} else {
			u.width[i] -= cnt
		}
	}
	for n.level > 1 && n.head.next[n.level-1] == nil {
		n.head.width[n.level-1] = 0
		n.level--
	}
	n.total -= cnt
}

// fillRange appends every entry with repetitions in [lo, hi) — with the
// size of its visible overlap — to buf and returns it. O(log n) to find
// the start, then one step per enumerated entry; allocation-free once
// buf's capacity has grown to the window size.
func (n *TopKNode) fillRange(buf []winItem, lo, hi int) []winItem {
	if hi > n.total {
		hi = n.total
	}
	if lo >= hi {
		return buf
	}
	x := n.head
	pos := 0
	for i := n.level - 1; i >= 0; i-- {
		for x.next[i] != nil && pos+x.width[i] <= lo {
			pos += x.width[i]
			x = x.next[i]
		}
	}
	for node := x.next[0]; node != nil && pos < hi; node = node.next[0] {
		end := pos + node.ent.count
		vlo, vhi := pos, end
		if vlo < lo {
			vlo = lo
		}
		if vhi > hi {
			vhi = hi
		}
		if vhi > vlo {
			buf = append(buf, winItem{ent: node.ent, vis: vhi - vlo})
		}
		pos = end
	}
	return buf
}

// diffWindow enumerates the current diffed region — the window [s, s+k)
// for bounded limits, the invisible prefix [0, s) for unbounded ones —
// into scratch, merge-diffs it against the previously emitted state and
// appends the resulting deltas to out (negated for the prefix: a row
// entering the prefix leaves the visible suffix). Both sides are sorted
// by the node's comparator, so the diff is a single allocation-free
// merge walk.
func (n *TopKNode) diffWindow(out []Delta) []Delta {
	lo, hi, sign := n.skip, n.skip+n.limit, 1
	if n.limit < 0 {
		lo, hi, sign = 0, n.skip, -1
	}
	cur := n.fillRange(n.winBuf[:0], lo, hi)
	n.winBuf = cur

	prev := n.win
	i, j := 0, 0
	for i < len(prev) || j < len(cur) {
		switch {
		case i == len(prev):
			out = append(out, Delta{Row: cur[j].ent.row, Mult: sign * cur[j].vis})
			j++
		case j == len(cur):
			out = append(out, Delta{Row: prev[i].ent.row, Mult: -sign * prev[i].vis})
			i++
		default:
			c := n.cmpEntries(prev[i].ent, cur[j].ent)
			switch {
			case c < 0:
				out = append(out, Delta{Row: prev[i].ent.row, Mult: -sign * prev[i].vis})
				i++
			case c > 0:
				out = append(out, Delta{Row: cur[j].ent.row, Mult: sign * cur[j].vis})
				j++
			default:
				if d := cur[j].vis - prev[i].vis; d != 0 {
					out = append(out, Delta{Row: cur[j].ent.row, Mult: sign * d})
				}
				i++
				j++
			}
		}
	}
	n.win, n.winBuf = cur, prev // swap: cur becomes the emitted state
	return out
}

// Seed implements seeder: the currently visible rows replay with their
// visible multiplicities — the window for bounded limits, everything
// from the skip boundary for unbounded ones.
func (n *TopKNode) Seed(target succ) {
	hi := n.total
	if n.limit >= 0 {
		hi = n.skip + n.limit
	}
	var out []Delta
	for _, it := range n.fillRange(nil, n.skip, hi) {
		out = append(out, Delta{Row: it.ent.row, Mult: it.vis})
	}
	if len(out) > 0 {
		target.node.Apply(target.port, out)
	}
}

// memoryEntries reports the distinct memoized rows (every input row is
// held once, window membership notwithstanding).
func (n *TopKNode) memoryEntries() int { return len(n.byKey) }
