package rete

import (
	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// VertexInput is the Rete input node of a get-vertices operator
// ©(v:Labels{props}). It translates vertex-level graph events into deltas
// over rows of the form (vertex, prop1, prop2, ...). A property update on
// a pushed-down key re-emits only the affected row — the paper's
// fine-granularity (FGN) property.
type VertexInput struct {
	emitter
	nopSink
	g      *graph.Graph
	labels []string
	props  []string // pushed-down property keys, in row order
}

// NewVertexInput constructs an input node for the given label set and
// pushed property keys.
func NewVertexInput(g *graph.Graph, labels, props []string) *VertexInput {
	return &VertexInput{g: g, labels: labels, props: props}
}

func (n *VertexInput) rowFor(v *graph.Vertex) value.Row {
	row := make(value.Row, 0, 1+len(n.props))
	row = append(row, value.NewVertex(v.ID))
	for _, k := range n.props {
		row = append(row, v.Prop(k))
	}
	return row
}

// Seed replays the current graph contents into one successor edge (used
// when a new view attaches to an already-live shared input).
func (n *VertexInput) Seed(target succ) {
	primary := ""
	if len(n.labels) > 0 {
		primary = n.labels[0]
	}
	var deltas []Delta
	for _, v := range n.g.VerticesByLabel(primary) {
		if vertexMatches(v, n.labels) {
			deltas = append(deltas, Delta{Row: n.rowFor(v), Mult: 1})
		}
	}
	if len(deltas) > 0 {
		target.node.Apply(target.port, deltas)
	}
}

// VertexAdded implements GraphSink.
func (n *VertexInput) VertexAdded(v *graph.Vertex) {
	if vertexMatches(v, n.labels) {
		n.emit([]Delta{{Row: n.rowFor(v), Mult: 1}})
	}
}

// VertexRemoved implements GraphSink.
func (n *VertexInput) VertexRemoved(v *graph.Vertex) {
	if vertexMatches(v, n.labels) {
		n.emit([]Delta{{Row: n.rowFor(v), Mult: -1}})
	}
}

// VertexLabelAdded implements GraphSink.
func (n *VertexInput) VertexLabelAdded(v *graph.Vertex, label string) {
	if !containsLabel(n.labels, label) {
		return // the label is irrelevant; match status unchanged
	}
	if vertexMatches(v, n.labels) {
		// Before the event the vertex lacked a required label, so the row
		// is new.
		n.emit([]Delta{{Row: n.rowFor(v), Mult: 1}})
	}
}

// VertexLabelRemoved implements GraphSink.
func (n *VertexInput) VertexLabelRemoved(v *graph.Vertex, label string) {
	if !containsLabel(n.labels, label) {
		return
	}
	// The row existed before iff all other required labels still match.
	if vertexMatchesExcept(v, n.labels, label) {
		n.emit([]Delta{{Row: n.rowFor(v), Mult: -1}})
	}
}

// VertexPropertyChanged implements GraphSink.
func (n *VertexInput) VertexPropertyChanged(v *graph.Vertex, key string, old value.Value) {
	if !vertexMatches(v, n.labels) {
		return
	}
	affected := false
	for _, k := range n.props {
		if k == key {
			affected = true
			break
		}
	}
	if !affected {
		return
	}
	newRow := n.rowFor(v)
	oldRow := value.CloneRow(newRow)
	for i, k := range n.props {
		if k == key {
			oldRow[1+i] = old
		}
	}
	n.emit([]Delta{{Row: oldRow, Mult: -1}, {Row: newRow, Mult: 1}})
}

func containsLabel(labels []string, l string) bool {
	for _, x := range labels {
		if x == l {
			return true
		}
	}
	return false
}

// vertexMatchesExcept checks the label requirements assuming the vertex
// still carried the given (just removed) label.
func vertexMatchesExcept(v *graph.Vertex, labels []string, removed string) bool {
	for _, l := range labels {
		if l == removed {
			continue
		}
		if !v.HasLabel(l) {
			return false
		}
	}
	return true
}

// EdgeInput is the Rete input node of a get-edges operator
// ⇑(a:AL)-[e:T]->(b:BL) with pushed-down endpoint and edge properties.
// Rows have the form (a, e, b, aProps..., eProps..., bProps...). With
// Undirected, each edge contributes both orientations (except self-loops,
// which contribute one).
type EdgeInput struct {
	emitter
	nopSink
	g          *graph.Graph
	types      []string
	aLabels    []string
	bLabels    []string
	undirected bool
	aProps     []string
	eProps     []string
	bProps     []string

	// changeset-translation scratch, reused across commits
	cands     map[graph.ID]edgeCand
	candIDs   []graph.ID
	usedAfter []bool
}

// NewEdgeInput constructs an edge input node.
func NewEdgeInput(g *graph.Graph, types, aLabels, bLabels []string, undirected bool, aProps, eProps, bProps []string) *EdgeInput {
	return &EdgeInput{
		g: g, types: types, aLabels: aLabels, bLabels: bLabels,
		undirected: undirected, aProps: aProps, eProps: eProps, bProps: bProps,
	}
}

// orientation is one (a, b) assignment of an edge's endpoints.
type orientation struct {
	a, b *graph.Vertex
}

// orientations returns the candidate endpoint assignments of e (without
// label checks). The forward orientation comes first.
func (n *EdgeInput) orientations(e *graph.Edge) []orientation {
	src, okS := n.g.VertexByID(e.Src)
	trg, okT := n.g.VertexByID(e.Trg)
	if !okS || !okT {
		return nil
	}
	out := []orientation{{a: src, b: trg}}
	if n.undirected && e.Src != e.Trg {
		out = append(out, orientation{a: trg, b: src})
	}
	return out
}

func (n *EdgeInput) rowFor(o orientation, e *graph.Edge) value.Row {
	row := make(value.Row, 0, 3+len(n.aProps)+len(n.eProps)+len(n.bProps))
	row = append(row, value.NewVertex(o.a.ID), value.NewEdge(e.ID), value.NewVertex(o.b.ID))
	for _, k := range n.aProps {
		row = append(row, o.a.Prop(k))
	}
	for _, k := range n.eProps {
		row = append(row, e.Prop(k))
	}
	for _, k := range n.bProps {
		row = append(row, o.b.Prop(k))
	}
	return row
}

func (n *EdgeInput) matchingRows(e *graph.Edge) []Delta {
	var out []Delta
	for _, o := range n.orientations(e) {
		if vertexMatches(o.a, n.aLabels) && vertexMatches(o.b, n.bLabels) {
			out = append(out, Delta{Row: n.rowFor(o, e), Mult: 1})
		}
	}
	return out
}

// Seed replays the current edge set into one successor edge.
func (n *EdgeInput) Seed(target succ) {
	var deltas []Delta
	ts := n.types
	if len(ts) == 0 {
		ts = []string{""}
	}
	for _, t := range ts {
		for _, e := range n.g.EdgesByType(t) {
			deltas = append(deltas, n.matchingRows(e)...)
		}
	}
	if len(deltas) > 0 {
		target.node.Apply(target.port, deltas)
	}
}

// EdgeAdded implements GraphSink.
func (n *EdgeInput) EdgeAdded(e *graph.Edge) {
	if !typeMatches(n.types, e.Type) {
		return
	}
	n.emit(n.matchingRows(e))
}

// EdgeRemoved implements GraphSink. The edge is already unlinked from the
// store, but the removed object and its endpoints (removed-vertex events
// follow their incident-edge events) are still readable.
func (n *EdgeInput) EdgeRemoved(e *graph.Edge) {
	if !typeMatches(n.types, e.Type) {
		return
	}
	rows := n.matchingRows(e)
	for i := range rows {
		rows[i].Mult = -1
	}
	n.emit(rows)
}

// incidentEdges lists the distinct edges touching v that match the type
// filter.
func (n *EdgeInput) incidentEdges(v *graph.Vertex) []*graph.Edge {
	seen := make(map[graph.ID]bool)
	var out []*graph.Edge
	for _, e := range n.g.OutEdges(v.ID, "") {
		if typeMatches(n.types, e.Type) && !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	for _, e := range n.g.InEdges(v.ID, "") {
		if typeMatches(n.types, e.Type) && !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	return out
}

// labelDelta handles a label addition or removal on v: rows whose match
// status flips are emitted or retracted.
func (n *EdgeInput) labelDelta(v *graph.Vertex, label string, added bool) {
	relevant := containsLabel(n.aLabels, label) || containsLabel(n.bLabels, label)
	if !relevant {
		return
	}
	matchNow := func(x *graph.Vertex, req []string) bool { return vertexMatches(x, req) }
	matchBefore := func(x *graph.Vertex, req []string) bool {
		if x.ID != v.ID {
			return vertexMatches(x, req)
		}
		if added {
			// Before the event v lacked the label.
			return vertexMatches(x, req) && !containsLabel(req, label)
		}
		// Before the event v still carried the label.
		return vertexMatchesExcept(x, req, label)
	}
	var deltas []Delta
	for _, e := range n.incidentEdges(v) {
		for _, o := range n.orientations(e) {
			after := matchNow(o.a, n.aLabels) && matchNow(o.b, n.bLabels)
			before := matchBefore(o.a, n.aLabels) && matchBefore(o.b, n.bLabels)
			if after && !before {
				deltas = append(deltas, Delta{Row: n.rowFor(o, e), Mult: 1})
			} else if before && !after {
				deltas = append(deltas, Delta{Row: n.rowFor(o, e), Mult: -1})
			}
		}
	}
	n.emit(deltas)
}

// VertexLabelAdded implements GraphSink.
func (n *EdgeInput) VertexLabelAdded(v *graph.Vertex, label string) {
	n.labelDelta(v, label, true)
}

// VertexLabelRemoved implements GraphSink.
func (n *EdgeInput) VertexLabelRemoved(v *graph.Vertex, label string) {
	n.labelDelta(v, label, false)
}

// VertexPropertyChanged implements GraphSink: rows containing v on a side
// whose pushed properties include the key are re-emitted with the new
// value.
func (n *EdgeInput) VertexPropertyChanged(v *graph.Vertex, key string, old value.Value) {
	inA := containsLabel(n.aProps, key)
	inB := containsLabel(n.bProps, key)
	if !inA && !inB {
		return
	}
	var deltas []Delta
	for _, e := range n.incidentEdges(v) {
		for _, o := range n.orientations(e) {
			if !vertexMatches(o.a, n.aLabels) || !vertexMatches(o.b, n.bLabels) {
				continue
			}
			touched := (o.a.ID == v.ID && inA) || (o.b.ID == v.ID && inB)
			if !touched {
				continue
			}
			newRow := n.rowFor(o, e)
			oldRow := value.CloneRow(newRow)
			base := 3
			if o.a.ID == v.ID {
				for i, k := range n.aProps {
					if k == key {
						oldRow[base+i] = old
					}
				}
			}
			if o.b.ID == v.ID {
				for i, k := range n.bProps {
					if k == key {
						oldRow[base+len(n.aProps)+len(n.eProps)+i] = old
					}
				}
			}
			deltas = append(deltas, Delta{Row: oldRow, Mult: -1}, Delta{Row: newRow, Mult: 1})
		}
	}
	n.emit(deltas)
}

// EdgePropertyChanged implements GraphSink.
func (n *EdgeInput) EdgePropertyChanged(e *graph.Edge, key string, old value.Value) {
	if !typeMatches(n.types, e.Type) || !containsLabel(n.eProps, key) {
		return
	}
	var deltas []Delta
	for _, o := range n.orientations(e) {
		if !vertexMatches(o.a, n.aLabels) || !vertexMatches(o.b, n.bLabels) {
			continue
		}
		newRow := n.rowFor(o, e)
		oldRow := value.CloneRow(newRow)
		for i, k := range n.eProps {
			if k == key {
				oldRow[3+len(n.aProps)+i] = old
			}
		}
		deltas = append(deltas, Delta{Row: oldRow, Mult: -1}, Delta{Row: newRow, Mult: 1})
	}
	n.emit(deltas)
}

// UnitInput produces a single empty row (the input of UNWIND-led queries).
type UnitInput struct {
	emitter
	nopSink
}

// Seed emits the unit row into one successor edge.
func (n *UnitInput) Seed(target succ) {
	target.node.Apply(target.port, []Delta{{Row: value.Row{}, Mult: 1}})
}

// --- batched changeset consumption ---
//
// The ApplyChangeSet implementations below are the native batch path:
// one coalesced ChangeSet per commit yields one delta batch per input
// node. Pre-transaction state is read from the per-element deltas, so
// combined transitions (a label flip plus a property write on the same
// vertex, an edge removal whose endpoint vanished in the same
// transaction) produce exact retract/assert pairs — something the
// per-event replay cannot reconstruct once operations are coalesced.

// labelsMatchBefore checks the label requirements against a vertex's
// pre-transaction label set.
func labelsMatchBefore(d *graph.VertexDelta, labels []string) bool {
	for _, l := range labels {
		if !d.HadLabel(l) {
			return false
		}
	}
	return true
}

// beforeRowFor builds the pre-transaction row of a changed vertex.
func (n *VertexInput) beforeRowFor(d *graph.VertexDelta) value.Row {
	row := make(value.Row, 0, 1+len(n.props))
	row = append(row, value.NewVertex(d.V.ID))
	for _, k := range n.props {
		row = append(row, d.BeforeProp(k))
	}
	return row
}

// ApplyChangeSet implements ChangeSink: every touched vertex contributes
// a retraction of its pre-transaction row (if it matched) and an
// assertion of its post-transaction row (if it matches), emitted as one
// batch.
func (n *VertexInput) ApplyChangeSet(cs *graph.ChangeSet) {
	n.emit(n.TranslateChangeSet(cs))
}

// TranslateChangeSet implements Translator: it computes the batch
// ApplyChangeSet would emit, without emitting. The result lives in the
// node's reusable buffer — valid until the next commit.
func (n *VertexInput) TranslateChangeSet(cs *graph.ChangeSet) []Delta {
	deltas := n.outBuf()
	for _, d := range cs.Vertices() {
		beforeMatch := d.ExistedBefore() && labelsMatchBefore(d, n.labels)
		afterMatch := d.ExistsAfter() && vertexMatches(d.V, n.labels)
		if !beforeMatch && !afterMatch {
			continue
		}
		var beforeRow, afterRow value.Row
		if beforeMatch {
			beforeRow = n.beforeRowFor(d)
		}
		if afterMatch {
			afterRow = n.rowFor(d.V)
		}
		if beforeMatch && afterMatch && value.EqualRows(beforeRow, afterRow) {
			continue
		}
		if beforeMatch {
			deltas = append(deltas, Delta{Row: beforeRow, Mult: -1})
		}
		if afterMatch {
			deltas = append(deltas, Delta{Row: afterRow, Mult: 1})
		}
	}
	n.buf = deltas
	return deltas
}

// resolveVertex finds an endpoint vertex object, preferring the
// changeset delta (whose object stays readable even after removal) over
// the store.
func (n *EdgeInput) resolveVertex(cs *graph.ChangeSet, id graph.ID) (*graph.Vertex, *graph.VertexDelta) {
	if vd := cs.VertexDelta(id); vd != nil {
		return vd.V, vd
	}
	if v, ok := n.g.VertexByID(id); ok {
		return v, nil
	}
	return nil, nil
}

func endpointHadLabels(v *graph.Vertex, vd *graph.VertexDelta, labels []string) bool {
	if vd != nil {
		return vd.ExistedBefore() && labelsMatchBefore(vd, labels)
	}
	return vertexMatches(v, labels)
}

func endpointBeforeProp(v *graph.Vertex, vd *graph.VertexDelta, key string) value.Value {
	if vd != nil {
		return vd.BeforeProp(key)
	}
	return v.Prop(key)
}

// vertexRelevant reports whether a vertex transition can change this
// input's rows. Created and removed vertices are irrelevant here: their
// incident edges are created/removed in the same transaction and appear
// as edge deltas of their own.
func (n *EdgeInput) vertexRelevant(vd *graph.VertexDelta) bool {
	if vd.Created() || vd.Removed() {
		return false
	}
	if vd.LabelsChanged() {
		for _, l := range n.aLabels {
			if vd.HadLabel(l) != vd.V.HasLabel(l) {
				return true
			}
		}
		for _, l := range n.bLabels {
			if vd.HadLabel(l) != vd.V.HasLabel(l) {
				return true
			}
		}
	}
	for _, k := range vd.ChangedProps() {
		if containsLabel(n.aProps, k) || containsLabel(n.bProps, k) {
			return true
		}
	}
	return false
}

// beforeRows builds the pre-transaction rows of an edge (nil if the edge
// was created in the transaction, or its pre-state did not match).
func (n *EdgeInput) beforeRows(cs *graph.ChangeSet, e *graph.Edge, d *graph.EdgeDelta) []value.Row {
	if d != nil && d.Created() {
		return nil
	}
	src, sd := n.resolveVertex(cs, e.Src)
	trg, td := n.resolveVertex(cs, e.Trg)
	if src == nil || trg == nil {
		return nil
	}
	type orient struct {
		a, b   *graph.Vertex
		ad, bd *graph.VertexDelta
	}
	orients := []orient{{src, trg, sd, td}}
	if n.undirected && e.Src != e.Trg {
		orients = append(orients, orient{trg, src, td, sd})
	}
	var rows []value.Row
	for _, o := range orients {
		if !endpointHadLabels(o.a, o.ad, n.aLabels) || !endpointHadLabels(o.b, o.bd, n.bLabels) {
			continue
		}
		row := make(value.Row, 0, 3+len(n.aProps)+len(n.eProps)+len(n.bProps))
		row = append(row, value.NewVertex(o.a.ID), value.NewEdge(e.ID), value.NewVertex(o.b.ID))
		for _, k := range n.aProps {
			row = append(row, endpointBeforeProp(o.a, o.ad, k))
		}
		for _, k := range n.eProps {
			if d != nil {
				row = append(row, d.BeforeProp(k))
			} else {
				row = append(row, e.Prop(k))
			}
		}
		for _, k := range n.bProps {
			row = append(row, endpointBeforeProp(o.b, o.bd, k))
		}
		rows = append(rows, row)
	}
	return rows
}

// afterRows builds the post-transaction rows of an edge (nil if removed
// or not matching).
func (n *EdgeInput) afterRows(e *graph.Edge, d *graph.EdgeDelta) []value.Row {
	if d != nil && d.Removed() {
		return nil
	}
	var rows []value.Row
	for _, o := range n.orientations(e) {
		if vertexMatches(o.a, n.aLabels) && vertexMatches(o.b, n.bLabels) {
			rows = append(rows, n.rowFor(o, e))
		}
	}
	return rows
}

// edgeCand is one affected-edge candidate during changeset translation.
type edgeCand struct {
	e *graph.Edge
	d *graph.EdgeDelta
}

// ApplyChangeSet implements ChangeSink. The affected edge set is the
// union of the changeset's edge deltas and the current incident edges of
// every relevantly-changed vertex (edges removed alongside a changed
// vertex are already edge deltas, so the union is complete). Each
// affected edge contributes its pre-row retractions and post-row
// assertions; identical pairs cancel.
func (n *EdgeInput) ApplyChangeSet(cs *graph.ChangeSet) {
	n.emit(n.TranslateChangeSet(cs))
}

// TranslateChangeSet implements Translator: it computes the batch
// ApplyChangeSet would emit, without emitting. The result and the
// candidate bookkeeping live in node-owned scratch reused across
// commits — valid until the next commit.
func (n *EdgeInput) TranslateChangeSet(cs *graph.ChangeSet) []Delta {
	if n.cands == nil {
		n.cands = make(map[graph.ID]edgeCand)
	}
	clear(n.cands)
	order := n.candIDs[:0]
	add := func(e *graph.Edge, d *graph.EdgeDelta) {
		if !typeMatches(n.types, e.Type) {
			return
		}
		if _, ok := n.cands[e.ID]; ok {
			return
		}
		n.cands[e.ID] = edgeCand{e: e, d: d}
		order = append(order, e.ID)
	}
	for _, d := range cs.Edges() {
		add(d.E, d)
	}
	for _, vd := range cs.Vertices() {
		if !n.vertexRelevant(vd) {
			continue
		}
		for _, e := range n.g.OutEdges(vd.V.ID, "") {
			add(e, cs.EdgeDelta(e.ID))
		}
		for _, e := range n.g.InEdges(vd.V.ID, "") {
			add(e, cs.EdgeDelta(e.ID))
		}
	}
	n.candIDs = order

	deltas := n.outBuf()
	for _, id := range order {
		c := n.cands[id]
		before := n.beforeRows(cs, c.e, c.d)
		after := n.afterRows(c.e, c.d)
		used := n.usedAfter[:0]
		for range after {
			used = append(used, false)
		}
		n.usedAfter = used
		for _, br := range before {
			matched := false
			for i, ar := range after {
				if !used[i] && value.EqualRows(br, ar) {
					used[i] = true
					matched = true
					break
				}
			}
			if !matched {
				deltas = append(deltas, Delta{Row: br, Mult: -1})
			}
		}
		for i, ar := range after {
			if !used[i] {
				deltas = append(deltas, Delta{Row: ar, Mult: 1})
			}
		}
	}
	n.buf = deltas
	return deltas
}

// ApplyChangeSet implements ChangeSink: the unit relation never changes.
func (n *UnitInput) ApplyChangeSet(*graph.ChangeSet) {}

// TranslateChangeSet implements Translator: the unit relation never
// changes, so the batch is always empty.
func (n *UnitInput) TranslateChangeSet(*graph.ChangeSet) []Delta { return nil }

var (
	_ Translator = (*VertexInput)(nil)
	_ Translator = (*EdgeInput)(nil)
	_ Translator = (*UnitInput)(nil)
)
