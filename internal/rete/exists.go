package rete

import "pgiv/internal/value"

// ExistsNode maintains a semijoin (Negate == false) or antijoin
// (Negate == true): a left row is live iff the number of right rows with
// the same join key is positive (respectively zero). Output rows carry
// the left schema and the left multiplicities.
//
// The node memoizes the left rows indexed by join key and the per-key
// total multiplicity of the right side; when a key's right count crosses
// zero, all left rows under that key flip between live and suppressed.
type ExistsNode struct {
	emitter
	memoVersion
	negate   bool
	left     *indexedMemory
	rightIdx []int
	// rightCounts holds per-key right-side multiplicities behind
	// pointers, so steady-state count updates mutate in place and only
	// a key's first appearance materialises a map key string.
	rightCounts map[string]*int
	rkh         value.Hasher // right-key scratch
}

// NewExistsNode builds a semijoin/antijoin node. lKey and rKey are the
// positions of the shared attributes in the left and right schemas.
func NewExistsNode(lKey, rKey []int, negate bool) *ExistsNode {
	return &ExistsNode{
		negate:      negate,
		left:        newIndexedMemory(lKey),
		rightIdx:    rKey,
		rightCounts: make(map[string]*int),
	}
}

// rightKey encodes row's join key into scratch; valid until the next
// rightKey call.
func (n *ExistsNode) rightKey(row value.Row) []byte {
	return n.rkh.ColsKey(row, n.rightIdx)
}

// live reports whether left rows under a key with the given right count
// are emitted.
func (n *ExistsNode) live(rightCount int) bool {
	return (rightCount > 0) != n.negate
}

// Apply implements Receiver.
func (n *ExistsNode) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		n.bumpMemo()
	}
	out := n.outBuf()
	for _, d := range deltas {
		if port == 0 {
			n.left.apply(d.Row, d.Mult)
			key := n.left.keyOf(d.Row)
			rc := 0
			if p := n.rightCounts[string(key)]; p != nil {
				rc = *p
			}
			if n.live(rc) {
				out = append(out, d)
			}
		} else {
			key := n.rightKey(d.Row)
			p := n.rightCounts[string(key)]
			old := 0
			if p != nil {
				old = *p
			}
			new := old + d.Mult
			switch {
			case new == 0:
				delete(n.rightCounts, string(key))
			case p != nil:
				*p = new
			default:
				v := new
				n.rightCounts[string(key)] = &v
			}
			wasLive, isLive := n.live(old), n.live(new)
			if wasLive == isLive {
				continue
			}
			mult := 1
			if !isLive {
				mult = -1
			}
			n.left.probe(key, func(lrow value.Row, count int) {
				out = append(out, Delta{Row: lrow, Mult: mult * count})
			})
		}
	}
	n.emitOwned(out)
}

func (n *ExistsNode) memoryEntries() int { return n.left.size() + len(n.rightCounts) }
