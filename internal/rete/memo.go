package rete

import (
	"fmt"
	"sort"
	"strings"

	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// This file is the checkpoint side of the durability layer: every
// stateful node type can serialise its memoized state into a NodeMemo
// and restore it later, byte-for-byte equivalently to having replayed
// the history that produced it. Restoring never emits deltas — it
// reconstructs internal memories only; the caller restores every node of
// a network (and its production) before any commit propagates again.
//
// Each node also carries a memo version, bumped whenever its state may
// have changed. The checkpoint store compares versions against its
// manifest to rewrite only the node files that are dirty — the
// "dirty-page" granularity that keeps periodic checkpoints incremental.

// MemoRow is one memoized row of a node-side memory. Port selects the
// memory on multi-memory nodes (0 = left/main, 1 = right); Keys carries
// the evaluated sort keys on TopK entries (nil elsewhere).
type MemoRow struct {
	Port int
	Row  value.Row
	Keys value.Row
	Mult int
}

// ValCount is one distinct aggregate argument value with its
// multiplicity.
type ValCount struct {
	Val   value.Value
	Count int
}

// AggGroupMemo is the serialised state of one aggregation group.
type AggGroupMemo struct {
	Keys     value.Row
	RowCount int64
	Sets     [][]ValCount
	Out      value.Row // currently emitted row, nil if none
}

// TransSourceMemo is the serialised path set of one active transitive
// source.
type TransSourceMemo struct {
	Src   graph.ID
	Frags []value.Row
}

// KeyCount is one binary-keyed support counter (ExistsNode right side).
type KeyCount struct {
	Key   []byte
	Count int
}

// NodeMemo is the serialisable memo state of one stateful node. Kind
// tags the producing node type; restore rejects a mismatch.
type NodeMemo struct {
	Kind    string
	Rows    []MemoRow
	Groups  []AggGroupMemo
	Sources []TransSourceMemo
	Counts  []KeyCount
}

// MemoNode is implemented by every stateful node (and the production):
// the unit of checkpoint granularity.
type MemoNode interface {
	MemoVersion() uint64
	SnapshotMemo() *NodeMemo
	RestoreMemo(m *NodeMemo) error
}

// memoVersion is the embedded dirty counter.
type memoVersion struct {
	ver uint64
}

// bumpMemo marks the node's memo state changed.
func (m *memoVersion) bumpMemo() { m.ver++ }

// MemoVersion implements MemoNode.
func (m *memoVersion) MemoVersion() uint64 { return m.ver }

// BaseKey strips the private-copy serial suffix a no-sharing registry
// appends to entry keys, recovering the structural fingerprint. Private
// copies of the same subplan hold identical state by construction, so
// the fingerprint is the stable checkpoint identity across restarts
// (registration order fixes which copy maps to which).
func BaseKey(key string) string {
	if i := strings.IndexByte(key, '\x00'); i >= 0 {
		return key[:i]
	}
	return key
}

// ForEachMemoNode iterates every live stateful entry in creation order,
// yielding its registry key and memo interface.
func (r *SubplanRegistry) ForEachMemoNode(fn func(key string, n MemoNode)) {
	entries := make([]*SubplanEntry, 0, len(r.entries))
	for _, e := range r.entries {
		if e.counter != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].order < entries[j].order })
	for _, e := range entries {
		if mn, ok := e.counter.(MemoNode); ok {
			fn(e.key, mn)
		}
	}
}

// sortMemoRows puts memo rows into deterministic order so equal state
// serialises to equal bytes.
func sortMemoRows(rows []MemoRow) []MemoRow {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Port != rows[j].Port {
			return rows[i].Port < rows[j].Port
		}
		return value.CompareRows(rows[i].Row, rows[j].Row) < 0
	})
	return rows
}

func memoKindErr(want string, m *NodeMemo) error {
	return fmt.Errorf("rete: restore: memo kind %q, node wants %q", m.Kind, want)
}

// notEmptyErr guards restore-into-used-node mistakes.
var errMemoNotEmpty = fmt.Errorf("rete: restore into a non-empty node")

// --- memory helpers ---

func snapshotMemory(m *memory, port int, rows []MemoRow) []MemoRow {
	for _, e := range m.items {
		rows = append(rows, MemoRow{Port: port, Row: e.row, Mult: e.count})
	}
	return rows
}

func snapshotIndexed(m *indexedMemory, port int, rows []MemoRow) []MemoRow {
	for _, bucket := range m.items {
		for _, e := range bucket {
			rows = append(rows, MemoRow{Port: port, Row: e.row, Mult: e.count})
		}
	}
	return rows
}

// --- JoinNode ---

// SnapshotMemo implements MemoNode.
func (n *JoinNode) SnapshotMemo() *NodeMemo {
	rows := snapshotIndexed(n.left, 0, nil)
	rows = snapshotIndexed(n.right, 1, rows)
	return &NodeMemo{Kind: "join", Rows: sortMemoRows(rows)}
}

// RestoreMemo implements MemoNode.
func (n *JoinNode) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "join" {
		return memoKindErr("join", m)
	}
	if n.left.size() != 0 || n.right.size() != 0 {
		return errMemoNotEmpty
	}
	for _, r := range m.Rows {
		if r.Port == 0 {
			n.left.apply(r.Row, r.Mult)
		} else {
			n.right.apply(r.Row, r.Mult)
		}
	}
	return nil
}

// --- OuterJoinNode ---

// SnapshotMemo implements MemoNode. The per-key right support counts are
// derivable (per-bucket sums of the right memory), so only the two
// memories are serialised.
func (n *OuterJoinNode) SnapshotMemo() *NodeMemo {
	rows := snapshotIndexed(n.left, 0, nil)
	rows = snapshotIndexed(n.right, 1, rows)
	return &NodeMemo{Kind: "outerjoin", Rows: sortMemoRows(rows)}
}

// RestoreMemo implements MemoNode.
func (n *OuterJoinNode) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "outerjoin" {
		return memoKindErr("outerjoin", m)
	}
	if n.left.size() != 0 || n.right.size() != 0 || len(n.rightCounts) != 0 {
		return errMemoNotEmpty
	}
	for _, r := range m.Rows {
		if r.Port == 0 {
			n.left.apply(r.Row, r.Mult)
		} else {
			n.right.apply(r.Row, r.Mult)
		}
	}
	// Rebuild the support index: the right memory's bucket keys are the
	// same join-key strings rightCounts uses.
	for jk, bucket := range n.right.items {
		sum := 0
		for _, e := range bucket {
			sum += e.count
		}
		if sum != 0 {
			c := sum
			n.rightCounts[jk] = &c
		}
	}
	return nil
}

// --- ExistsNode ---

// SnapshotMemo implements MemoNode. Right rows are never memoized — only
// their per-key support counts — so the counts serialise verbatim under
// their binary keys.
func (n *ExistsNode) SnapshotMemo() *NodeMemo {
	rows := sortMemoRows(snapshotIndexed(n.left, 0, nil))
	counts := make([]KeyCount, 0, len(n.rightCounts))
	for k, p := range n.rightCounts {
		counts = append(counts, KeyCount{Key: []byte(k), Count: *p})
	}
	sort.Slice(counts, func(i, j int) bool { return string(counts[i].Key) < string(counts[j].Key) })
	return &NodeMemo{Kind: "exists", Rows: rows, Counts: counts}
}

// RestoreMemo implements MemoNode.
func (n *ExistsNode) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "exists" {
		return memoKindErr("exists", m)
	}
	if n.left.size() != 0 || len(n.rightCounts) != 0 {
		return errMemoNotEmpty
	}
	for _, r := range m.Rows {
		n.left.apply(r.Row, r.Mult)
	}
	for _, kc := range m.Counts {
		c := kc.Count
		n.rightCounts[string(kc.Key)] = &c
	}
	return nil
}

// --- DedupNode ---

// SnapshotMemo implements MemoNode.
func (n *DedupNode) SnapshotMemo() *NodeMemo {
	return &NodeMemo{Kind: "dedup", Rows: sortMemoRows(snapshotMemory(n.mem, 0, nil))}
}

// RestoreMemo implements MemoNode.
func (n *DedupNode) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "dedup" {
		return memoKindErr("dedup", m)
	}
	if n.mem.size() != 0 {
		return errMemoNotEmpty
	}
	for _, r := range m.Rows {
		n.mem.apply(r.Row, r.Mult)
	}
	return nil
}

// --- AggregateNode ---

// SnapshotMemo implements MemoNode: group state serialises directly
// (there is no raw-input memo to rebuild it from).
func (n *AggregateNode) SnapshotMemo() *NodeMemo {
	groups := make([]AggGroupMemo, 0, len(n.groups))
	for _, grp := range n.groups {
		gm := AggGroupMemo{Keys: grp.keys, RowCount: grp.rowCount, Out: grp.out}
		gm.Sets = make([][]ValCount, len(grp.sets))
		for i, set := range grp.sets {
			vcs := make([]ValCount, 0, len(set))
			for _, av := range set {
				vcs = append(vcs, ValCount{Val: av.val, Count: av.count})
			}
			sort.Slice(vcs, func(a, b int) bool { return value.Compare(vcs[a].Val, vcs[b].Val) < 0 })
			gm.Sets[i] = vcs
		}
		groups = append(groups, gm)
	}
	sort.Slice(groups, func(i, j int) bool { return value.CompareRows(groups[i].Keys, groups[j].Keys) < 0 })
	return &NodeMemo{Kind: "aggregate", Groups: groups}
}

// RestoreMemo implements MemoNode. Restoring also replaces the initial
// global-aggregate group EmitInitial would have created — a restored
// network never runs EmitInitial.
func (n *AggregateNode) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "aggregate" {
		return memoKindErr("aggregate", m)
	}
	if len(n.groups) != 0 {
		return errMemoNotEmpty
	}
	for _, gm := range m.Groups {
		if len(gm.Sets) != len(n.specs) {
			return fmt.Errorf("rete: restore aggregate: %d sets, want %d", len(gm.Sets), len(n.specs))
		}
		grp := n.group(gm.Keys)
		grp.rowCount = gm.RowCount
		grp.out = gm.Out
		for i, vcs := range gm.Sets {
			for _, vc := range vcs {
				vk := n.vh.ValueKey(vc.Val)
				grp.sets[i][string(vk)] = &aggVal{val: vc.Val, count: vc.Count}
			}
		}
	}
	return nil
}

// --- TransitiveNode ---

// SnapshotMemo implements MemoNode: left rows plus the per-source
// fragment sets (the edge-containment index is derivable).
func (n *TransitiveNode) SnapshotMemo() *NodeMemo {
	rows := sortMemoRows(snapshotIndexed(n.left, 0, nil))
	srcs := make([]TransSourceMemo, 0, len(n.sources))
	for id, st := range n.sources {
		frags := make([]value.Row, 0, len(st.frags))
		for _, f := range st.frags {
			frags = append(frags, f)
		}
		sortRows(frags)
		srcs = append(srcs, TransSourceMemo{Src: id, Frags: frags})
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Src < srcs[j].Src })
	return &NodeMemo{Kind: "transitive", Rows: rows, Sources: srcs}
}

// RestoreMemo implements MemoNode.
func (n *TransitiveNode) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "transitive" {
		return memoKindErr("transitive", m)
	}
	if n.left.size() != 0 || len(n.sources) != 0 {
		return errMemoNotEmpty
	}
	for _, r := range m.Rows {
		n.left.apply(r.Row, r.Mult)
	}
	for _, sm := range m.Sources {
		st := &srcState{frags: make(map[string]value.Row, len(sm.Frags)), sortedDirty: true}
		for _, f := range sm.Frags {
			if len(f) < 2 || f[1].Kind() != value.KindPath {
				return fmt.Errorf("rete: restore transitive: malformed fragment for source %d", sm.Src)
			}
			st.frags[value.RowKey(f)] = f
		}
		st.edges = buildEdgeIndex(st.frags)
		n.sources[sm.Src] = st
	}
	return nil
}

// --- ShortestPathNode ---

// SnapshotMemo implements MemoNode: left rows plus the per-source
// fragment sets, exactly like TransitiveNode (the edge-containment index
// is derivable from the witness paths). Fragments keep the witness path
// at index 1, so the memo layout is shared.
func (n *ShortestPathNode) SnapshotMemo() *NodeMemo {
	rows := sortMemoRows(snapshotIndexed(n.left, 0, nil))
	srcs := make([]TransSourceMemo, 0, len(n.sources))
	for id, st := range n.sources {
		frags := make([]value.Row, 0, len(st.frags))
		for _, f := range st.frags {
			frags = append(frags, f)
		}
		sortRows(frags)
		srcs = append(srcs, TransSourceMemo{Src: id, Frags: frags})
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Src < srcs[j].Src })
	return &NodeMemo{Kind: "shortestpath", Rows: rows, Sources: srcs}
}

// RestoreMemo implements MemoNode.
func (n *ShortestPathNode) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "shortestpath" {
		return memoKindErr("shortestpath", m)
	}
	if n.left.size() != 0 || len(n.sources) != 0 {
		return errMemoNotEmpty
	}
	for _, r := range m.Rows {
		n.left.apply(r.Row, r.Mult)
	}
	for _, sm := range m.Sources {
		st := &srcState{frags: make(map[string]value.Row, len(sm.Frags)), sortedDirty: true}
		for _, f := range sm.Frags {
			if len(f) < 3 || f[1].Kind() != value.KindPath {
				return fmt.Errorf("rete: restore shortestpath: malformed fragment for source %d", sm.Src)
			}
			st.frags[value.RowKey(f)] = f
		}
		st.edges = buildEdgeIndex(st.frags)
		n.sources[sm.Src] = st
	}
	return nil
}

// --- TopKNode ---

// SnapshotMemo implements MemoNode. Entries serialise with their
// evaluated sort keys verbatim — restore must not re-evaluate key
// expressions against a graph state later than the rows' epoch.
func (n *TopKNode) SnapshotMemo() *NodeMemo {
	rows := make([]MemoRow, 0, len(n.byKey))
	for _, e := range n.byKey {
		rows = append(rows, MemoRow{Row: e.row, Keys: e.keys, Mult: e.count})
	}
	return &NodeMemo{Kind: "topk", Rows: sortMemoRows(rows)}
}

// RestoreMemo implements MemoNode: entries re-insert into the
// order-statistic skip list with emission suppressed, then the emitted
// window state is rebuilt from the restored tree so the next diff pass
// starts from the pre-crash window.
func (n *TopKNode) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "topk" {
		return memoKindErr("topk", m)
	}
	if len(n.byKey) != 0 {
		return errMemoNotEmpty
	}
	for _, r := range m.Rows {
		if r.Mult <= 0 {
			// Transiently negative counts exist only mid-batch; a
			// checkpoint never observes one.
			return fmt.Errorf("rete: restore topk: non-positive count %d", r.Mult)
		}
		rk := n.kh.RowKey(r.Row)
		if _, dup := n.byKey[string(rk)]; dup {
			return fmt.Errorf("rete: restore topk: duplicate row")
		}
		ent := &topEntry{
			keys:   append(value.Row(nil), r.Keys...),
			row:    r.Row,
			rowKey: string(rk),
			count:  r.Mult,
		}
		n.byKey[ent.rowKey] = ent
		n.search(ent.keys, ent.row, rk)
		n.insert(ent, ent.count)
	}
	// Rebuild the previously-emitted diff region (the window for bounded
	// limits, the invisible prefix for unbounded ones).
	lo, hi := n.skip, n.skip+n.limit
	if n.limit < 0 {
		lo, hi = 0, n.skip
	}
	n.win = n.fillRange(nil, lo, hi)
	return nil
}

// --- Production ---

// SnapshotMemo implements MemoNode.
func (p *Production) SnapshotMemo() *NodeMemo {
	return &NodeMemo{Kind: "production", Rows: sortMemoRows(snapshotMemory(p.mem, 0, nil))}
}

// RestoreMemo implements MemoNode.
func (p *Production) RestoreMemo(m *NodeMemo) error {
	if m.Kind != "production" {
		return memoKindErr("production", m)
	}
	if p.mem.size() != 0 {
		return errMemoNotEmpty
	}
	for _, r := range m.Rows {
		p.mem.apply(r.Row, r.Mult)
	}
	p.rowsMu.Lock()
	p.dirty = true
	p.pubStale = true
	p.sorted = nil
	p.rowsMu.Unlock()
	return nil
}

var (
	_ MemoNode = (*JoinNode)(nil)
	_ MemoNode = (*OuterJoinNode)(nil)
	_ MemoNode = (*ExistsNode)(nil)
	_ MemoNode = (*DedupNode)(nil)
	_ MemoNode = (*AggregateNode)(nil)
	_ MemoNode = (*TransitiveNode)(nil)
	_ MemoNode = (*ShortestPathNode)(nil)
	_ MemoNode = (*TopKNode)(nil)
	_ MemoNode = (*Production)(nil)
)
