package rete

import (
	"fmt"
	"strings"

	"pgiv/internal/expr"
	"pgiv/internal/fra"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// seeder replays current graph state into one successor edge.
type seeder interface{ Seed(target succ) }

// producer is any node that can feed successors.
type producer interface {
	addSucc(node Receiver, port int) succ
	removeSucc(node Receiver, port int)
}

// InputRegistry owns the input (alpha) nodes and enables node sharing
// across views: two views scanning the same labels with the same pushed
// properties share one input node (a classic Rete optimisation; an
// engine option disables it for the ablation experiment).
type InputRegistry struct {
	g       *graph.Graph
	sharing bool
	serial  int
	vertex  map[string]*VertexInput
	edge    map[string]*EdgeInput
	unit    *UnitInput
	onNew   func(ChangeSink) // invoked for every newly created input node
}

// NewInputRegistry builds a registry. onNew is called for every new input
// node so the engine can route committed change sets to it.
func NewInputRegistry(g *graph.Graph, sharing bool, onNew func(ChangeSink)) *InputRegistry {
	return &InputRegistry{
		g: g, sharing: sharing,
		vertex: make(map[string]*VertexInput),
		edge:   make(map[string]*EdgeInput),
		onNew:  onNew,
	}
}

func (r *InputRegistry) key(parts ...string) string {
	k := strings.Join(parts, "\x00")
	if !r.sharing {
		r.serial++
		k = fmt.Sprintf("%s\x00#%d", k, r.serial)
	}
	return k
}

// VertexInput returns (creating if needed) the shared input node for the
// given labels and pushed property keys.
func (r *InputRegistry) VertexInput(labels, props []string) *VertexInput {
	k := r.key("v", strings.Join(labels, ","), strings.Join(props, ","))
	n := r.vertex[k]
	if n == nil {
		n = NewVertexInput(r.g, labels, props)
		r.vertex[k] = n
		r.onNew(n)
	}
	return n
}

// EdgeInput returns (creating if needed) the shared edge input node.
func (r *InputRegistry) EdgeInput(types, aLabels, bLabels []string, undirected bool, aProps, eProps, bProps []string) *EdgeInput {
	u := "d"
	if undirected {
		u = "u"
	}
	k := r.key("e", strings.Join(types, ","), strings.Join(aLabels, ","), strings.Join(bLabels, ","), u,
		strings.Join(aProps, ","), strings.Join(eProps, ","), strings.Join(bProps, ","))
	n := r.edge[k]
	if n == nil {
		n = NewEdgeInput(r.g, types, aLabels, bLabels, undirected, aProps, eProps, bProps)
		r.edge[k] = n
		r.onNew(n)
	}
	return n
}

// UnitInput returns the shared unit input node.
func (r *InputRegistry) UnitInput() *UnitInput {
	if r.unit == nil {
		r.unit = &UnitInput{}
		r.onNew(r.unit)
	}
	return r.unit
}

// memoryCounter is implemented by stateful nodes.
type memoryCounter interface{ memoryEntries() int }

// attachment records an edge from a shared input node into this view's
// private network, for targeted seeding and later detachment.
type attachment struct {
	seed seeder
	prod producer
	edge succ
}

// Network is the compiled Rete network of one view.
type Network struct {
	Prod        *Production
	sinks       []ChangeSink // per-view changeset sinks (transitive nodes)
	attachments []attachment
	aggs        []*AggregateNode
	stateful    []memoryCounter
}

// Sinks returns the per-view changeset sinks (transitive-join nodes);
// the engine must route committed change sets to them while the view is
// live.
func (nw *Network) Sinks() []ChangeSink { return nw.sinks }

// Seed populates the network from the current graph contents: global
// aggregates emit their initial row, then every shared-input attachment
// is replayed into this view's private successor edge. Seeding happens
// outside any commit, so the transitive nodes' per-commit freshness
// window (sources enumerated against the post-commit graph) is closed
// explicitly afterwards.
func (nw *Network) Seed() {
	for _, a := range nw.aggs {
		a.EmitInitial()
	}
	for _, at := range nw.attachments {
		at.seed.Seed(at.edge)
	}
	for _, s := range nw.sinks {
		if t, ok := s.(*TransitiveNode); ok {
			t.clearFresh()
		}
	}
}

// ApplyTranslated delivers precomputed shared-input delta batches into
// this view's private subtree: for every attachment whose input node has
// a non-empty batch (per lookup), the batch is applied on the
// attachment's successor edge — exactly what the input's own emit would
// have done, but driven by the caller. The parallel propagation
// scheduler uses it to translate each shared input once per commit and
// fan the same read-only batch out across views from different
// goroutines; every node downstream of the attachments is private to
// this view, so concurrent ApplyTranslated calls on different networks
// never share mutable state.
func (nw *Network) ApplyTranslated(lookup func(Translator) []Delta) {
	for _, at := range nw.attachments {
		t, ok := at.seed.(Translator)
		if !ok {
			continue
		}
		if ds := lookup(t); len(ds) > 0 {
			at.edge.node.Apply(at.edge.port, ds)
		}
	}
}

// Detach disconnects the view's private nodes from the shared input
// nodes. The engine must also stop routing events to Sinks().
func (nw *Network) Detach() {
	for _, at := range nw.attachments {
		at.prod.removeSucc(at.edge.node, at.edge.port)
	}
}

// MemoryEntries sums the distinct memoized rows of all stateful nodes in
// the network (for the memory-cost experiment). Shared input nodes are
// stateless and contribute nothing.
func (nw *Network) MemoryEntries() int {
	total := 0
	for _, s := range nw.stateful {
		total += s.memoryEntries()
	}
	return total
}

// built pairs a producer with its seeding handle (non-nil only for shared
// input nodes).
type built struct {
	p      producer
	shared seeder
}

type builder struct {
	g      *graph.Graph
	reg    *InputRegistry
	params map[string]value.Value
	nw     *Network
}

// Build compiles an FRA plan into a Rete network. The plan must lie in
// the incrementally maintainable fragment (the ivm package checks this
// before calling Build); Sort/Skip/Limit operators are rejected here as a
// safety net.
func Build(plan *fra.Plan, g *graph.Graph, reg *InputRegistry, params map[string]value.Value) (*Network, error) {
	b := &builder{g: g, reg: reg, params: params, nw: &Network{}}
	root, err := b.build(plan.Root)
	if err != nil {
		return nil, err
	}
	prod := NewProduction()
	b.connect(root, prod, 0)
	b.nw.Prod = prod
	b.nw.stateful = append(b.nw.stateful, prod)
	return b.nw, nil
}

func (b *builder) connect(src built, dst Receiver, port int) {
	edge := src.p.addSucc(dst, port)
	if src.shared != nil {
		b.nw.attachments = append(b.nw.attachments, attachment{seed: src.shared, prod: src.p, edge: edge})
	}
}

func (b *builder) buildExists(lop, rop nra.Op, negate bool) (built, error) {
	l, err := b.build(lop)
	if err != nil {
		return built{}, err
	}
	r, err := b.build(rop)
	if err != nil {
		return built{}, err
	}
	ls, rs := lop.Schema(), rop.Schema()
	shared := ls.Shared(rs)
	lKey := make([]int, len(shared))
	rKey := make([]int, len(shared))
	for i, a := range shared {
		lKey[i] = ls.Index(a)
		rKey[i] = rs.Index(a)
	}
	node := NewExistsNode(lKey, rKey, negate)
	b.connect(l, node, 0)
	b.connect(r, node, 1)
	b.nw.stateful = append(b.nw.stateful, node)
	return built{p: node}, nil
}

func propKeys(ps []nra.PropSpec) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Key
	}
	return out
}

func (b *builder) build(op nra.Op) (built, error) {
	switch o := op.(type) {
	case *nra.Unit:
		u := b.reg.UnitInput()
		return built{p: u, shared: u}, nil

	case *nra.GetVertices:
		vi := b.reg.VertexInput(o.Labels, propKeys(o.Props))
		return built{p: vi, shared: vi}, nil

	case *nra.GetEdges:
		ei := b.reg.EdgeInput(o.Types, o.ALabels, o.BLabels, o.Undirected,
			propKeys(o.AProps), propKeys(o.EProps), propKeys(o.BProps))
		return built{p: ei, shared: ei}, nil

	case *nra.TransitiveJoin:
		in, err := b.build(o.Input)
		if err != nil {
			return built{}, err
		}
		srcIdx := o.Input.Schema().Index(o.SrcAttr)
		if srcIdx < 0 {
			return built{}, fmt.Errorf("rete: transitive join source %q not in input schema", o.SrcAttr)
		}
		if o.PathAttr == "" {
			return built{}, fmt.Errorf("rete: transitive join without path attribute")
		}
		node := NewTransitiveNode(b.g, srcIdx, o.Types, o.Dir, o.Min, o.Max, o.DstLabels, propKeys(o.DstProps))
		b.connect(in, node, 0)
		b.nw.sinks = append(b.nw.sinks, node)
		b.nw.stateful = append(b.nw.stateful, node)
		return built{p: node}, nil

	case *nra.Join:
		l, err := b.build(o.L)
		if err != nil {
			return built{}, err
		}
		r, err := b.build(o.R)
		if err != nil {
			return built{}, err
		}
		ls, rs := o.L.Schema(), o.R.Schema()
		shared := ls.Shared(rs)
		lKey := make([]int, len(shared))
		rKey := make([]int, len(shared))
		for i, a := range shared {
			lKey[i] = ls.Index(a)
			rKey[i] = rs.Index(a)
		}
		var rKeep []int
		for i, a := range rs {
			if !ls.Has(a) {
				rKeep = append(rKeep, i)
			}
		}
		node := NewJoinNode(lKey, rKey, rKeep)
		b.connect(l, node, 0)
		b.connect(r, node, 1)
		b.nw.stateful = append(b.nw.stateful, node)
		return built{p: node}, nil

	case *nra.SemiJoin:
		return b.buildExists(o.L, o.R, false)

	case *nra.AntiJoin:
		return b.buildExists(o.L, o.R, true)

	case *nra.Select:
		in, err := b.build(o.Input)
		if err != nil {
			return built{}, err
		}
		fn, err := expr.Compile(o.Cond, o.Input.Schema(), b.params)
		if err != nil {
			return built{}, err
		}
		env := &expr.Env{G: b.g}
		node := NewTransformNode(func(row value.Row, emit func(value.Row)) {
			env.Row = row
			if ok, known := expr.Truth(fn(env)); known && ok {
				emit(row)
			}
		})
		b.connect(in, node, 0)
		return built{p: node}, nil

	case *nra.Project:
		in, err := b.build(o.Input)
		if err != nil {
			return built{}, err
		}
		fns := make([]expr.Fn, len(o.Items))
		for i, it := range o.Items {
			fn, err := expr.Compile(it.Expr, o.Input.Schema(), b.params)
			if err != nil {
				return built{}, err
			}
			fns[i] = fn
		}
		env := &expr.Env{G: b.g}
		node := NewTransformNode(func(row value.Row, emit func(value.Row)) {
			env.Row = row
			out := make(value.Row, len(fns))
			for i, fn := range fns {
				out[i] = fn(env)
			}
			emit(out)
		})
		b.connect(in, node, 0)
		return built{p: node}, nil

	case *nra.Dedup:
		in, err := b.build(o.Input)
		if err != nil {
			return built{}, err
		}
		node := NewDedupNode()
		b.connect(in, node, 0)
		b.nw.stateful = append(b.nw.stateful, node)
		return built{p: node}, nil

	case *nra.AllDifferent:
		in, err := b.build(o.Input)
		if err != nil {
			return built{}, err
		}
		s := o.Input.Schema()
		var edgeIdx, pathIdx []int
		for _, a := range o.EdgeAttrs {
			i := s.Index(a)
			if i < 0 {
				return built{}, fmt.Errorf("rete: all-different attribute %q missing", a)
			}
			edgeIdx = append(edgeIdx, i)
		}
		for _, a := range o.PathAttrs {
			i := s.Index(a)
			if i < 0 {
				return built{}, fmt.Errorf("rete: all-different attribute %q missing", a)
			}
			pathIdx = append(pathIdx, i)
		}
		node := NewTransformNode(func(row value.Row, emit func(value.Row)) {
			if snapshot.EdgesDisjoint(row, edgeIdx, pathIdx) {
				emit(row)
			}
		})
		b.connect(in, node, 0)
		return built{p: node}, nil

	case *nra.PathBuild:
		in, err := b.build(o.Input)
		if err != nil {
			return built{}, err
		}
		items, err := snapshot.ResolvePathItems(o.Items, o.Input.Schema())
		if err != nil {
			return built{}, err
		}
		node := NewTransformNode(func(row value.Row, emit func(value.Row)) {
			p, ok := snapshot.BuildPath(row, items)
			if !ok {
				return
			}
			out := make(value.Row, 0, len(row)+1)
			out = append(out, row...)
			out = append(out, value.NewPath(p))
			emit(out)
		})
		b.connect(in, node, 0)
		return built{p: node}, nil

	case *nra.Aggregate:
		in, err := b.build(o.Input)
		if err != nil {
			return built{}, err
		}
		groupFns := make([]expr.Fn, len(o.GroupBy))
		for i, it := range o.GroupBy {
			fn, err := expr.Compile(it.Expr, o.Input.Schema(), b.params)
			if err != nil {
				return built{}, err
			}
			groupFns[i] = fn
		}
		specs := make([]AggSpec, len(o.Aggs))
		for i, a := range o.Aggs {
			spec := AggSpec{Func: a.Func, Distinct: a.Distinct}
			if a.Arg != nil {
				fn, err := expr.Compile(a.Arg, o.Input.Schema(), b.params)
				if err != nil {
					return built{}, err
				}
				spec.ArgFn = fn
			}
			specs[i] = spec
		}
		node := NewAggregateNode(b.g, groupFns, specs)
		b.connect(in, node, 0)
		b.nw.aggs = append(b.nw.aggs, node)
		b.nw.stateful = append(b.nw.stateful, node)
		return built{p: node}, nil

	case *nra.Unwind:
		in, err := b.build(o.Input)
		if err != nil {
			return built{}, err
		}
		fn, err := expr.Compile(o.Expr, o.Input.Schema(), b.params)
		if err != nil {
			return built{}, err
		}
		env := &expr.Env{G: b.g}
		node := NewTransformNode(func(row value.Row, emit func(value.Row)) {
			env.Row = row
			v := fn(env)
			switch v.Kind() {
			case value.KindNull:
			case value.KindList:
				for _, el := range v.List() {
					r := make(value.Row, 0, len(row)+1)
					r = append(r, row...)
					r = append(r, el)
					emit(r)
				}
			default:
				r := make(value.Row, 0, len(row)+1)
				r = append(r, row...)
				r = append(r, v)
				emit(r)
			}
		})
		b.connect(in, node, 0)
		return built{p: node}, nil

	case *nra.Sort, *nra.Skip, *nra.Limit:
		return built{}, fmt.Errorf("rete: %T is not incrementally maintainable (ordering/top-k, see the paper's ORD discussion)", op)
	}
	return built{}, fmt.Errorf("rete: unsupported operator %T", op)
}
