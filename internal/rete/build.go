package rete

import (
	"fmt"

	"pgiv/internal/expr"
	"pgiv/internal/fra"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/schema"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// seeder replays current rows into one successor edge: input nodes scan
// the graph (they are stateless), stateful nodes replay their memoized
// state, transform nodes relay their upstream seeder through the
// transformation (see seed.go).
type seeder interface{ Seed(target succ) }

// producer is any node that can feed successors.
type producer interface {
	addSucc(node Receiver, port int) succ
	removeSucc(node Receiver, port int)
}

// memoryCounter is implemented by stateful nodes.
type memoryCounter interface{ memoryEntries() int }

// Network is one view's handle onto the shared Rete network: the
// production entry it materialises through, plus the bookkeeping needed
// to seed the nodes this registration created. With subplan sharing, the
// "network of a view" is a set of references into the registry's shared
// DAG — possibly with no private node at all when another view already
// registered the identical plan.
type Network struct {
	Prod *Production
	root *SubplanEntry // the production's registry entry

	// seeds are the boundary edges of this registration: every edge where
	// a node created by this build attaches below a pre-populated shared
	// entry (memory replay) or an input node (graph scan). Edges between
	// two newly created nodes need no seeding — deltas reach them by
	// propagation from the boundary.
	seeds []seedEdge

	newAggs  []*AggregateNode    // created by this build; EmitInitial before seeding
	newTrans []*TransitiveNode   // created by this build; clearFresh after seeding
	newSPs   []*ShortestPathNode // created by this build; clearFresh after seeding

	counters []memoryCounter // distinct stateful nodes this view depends on
}

// Seed populates the nodes created by this registration: global
// aggregates emit their initial row, then every boundary edge replays —
// shared stateful ancestors from memory, inputs from the graph. Order
// among boundary edges is irrelevant: the counting semantics make the
// final memories independent of delivery order. Seeding happens outside
// any commit, so the freshness window of newly created transitive nodes
// is closed explicitly afterwards.
func (nw *Network) Seed() {
	for _, a := range nw.newAggs {
		a.EmitInitial()
	}
	for _, s := range nw.seeds {
		s.seed.Seed(s.edge)
	}
	for _, t := range nw.newTrans {
		t.clearFresh()
	}
	for _, s := range nw.newSPs {
		s.clearFresh()
	}
}

// Release drops this view's reference on the production entry; the
// registry unwinds whatever suffix of the chain no other view holds.
// The caller must also unsubscribe its production callback.
func (nw *Network) Release(reg *SubplanRegistry) { reg.release(nw.root) }

// MemoryEntries sums the distinct memoized rows of all stateful nodes
// this view depends on (for the memory-cost experiment). A node shared
// with other views is counted once here and once in each of their
// figures; SubplanRegistry.MemoryEntries reports the deduplicated
// engine-level total.
func (nw *Network) MemoryEntries() int {
	total := 0
	for _, c := range nw.counters {
		total += c.memoryEntries()
	}
	return total
}

type builder struct {
	g       *graph.Graph
	reg     *SubplanRegistry
	params  map[string]value.Value
	fper    *fra.Fingerprinter // memoizes subtree fingerprints for this plan
	nw      *Network
	created map[*SubplanEntry]bool // entries created by this build call
}

// Build compiles an FRA plan into the shared Rete network: every subtree
// is fingerprinted and resolved through the registry, so subtrees another
// live view already compiled — including the terminal production when the
// whole plan matches — are attached to rather than rebuilt. The plan must
// lie in the incrementally maintainable fragment (the ivm package checks
// this before calling Build).
func Build(plan *fra.Plan, g *graph.Graph, reg *SubplanRegistry, params map[string]value.Value) (*Network, error) {
	b := &builder{
		g: g, reg: reg, params: params,
		fper: fra.NewFingerprinter(params),
		nw:   &Network{}, created: make(map[*SubplanEntry]bool),
	}
	planFP := b.fper.Fingerprint(plan.Root)
	prodFP := "prod[" + planFP + "]"
	if e := reg.lookup(prodFP); e != nil {
		// Another live view materialises the identical plan: share its
		// production outright. Nothing to build, nothing to seed.
		e.refs++
		b.nw.root = e
		b.nw.Prod = e.production
		b.collectCounters(e)
		return b.nw, nil
	}
	root, err := b.build(plan.Root)
	if err != nil {
		// Every failing path below releases the references it took, so a
		// failed registration leaves the registry unchanged.
		return nil, err
	}
	prod := NewProduction()
	entry := b.newEntry(prodFP, &SubplanEntry{
		counter: prod, production: prod,
		prodPlan: plan.Root, prodParams: params, prodFP: planFP,
	})
	b.link(entry, prod, 0, root)
	b.nw.root = entry
	b.nw.Prod = prod
	b.collectCounters(entry)
	return b.nw, nil
}

// newEntry registers a freshly built entry and marks it as created by
// this build.
func (b *builder) newEntry(fp string, e *SubplanEntry) *SubplanEntry {
	b.reg.register(fp, e)
	b.created[e] = true
	return e
}

// link connects child's node into node's port, records the use on
// parent, and — when the child is pre-populated (reused) or an input —
// schedules the new edge for seeding.
func (b *builder) link(parent *SubplanEntry, node Receiver, port int, child *SubplanEntry) {
	edge := child.p.addSucc(node, port)
	parent.children = append(parent.children, childLink{child: child, edge: edge})
	if !b.created[child] || child.isInput {
		b.nw.seeds = append(b.nw.seeds, seedEdge{seed: child.seed, edge: edge})
	}
}

// collectCounters walks the view's entry closure and records each
// distinct stateful node once.
func (b *builder) collectCounters(root *SubplanEntry) {
	seen := make(map[*SubplanEntry]bool)
	var walk func(e *SubplanEntry)
	walk = func(e *SubplanEntry) {
		if seen[e] {
			return
		}
		seen[e] = true
		if e.counter != nil {
			b.nw.counters = append(b.nw.counters, e.counter)
		}
		for _, cl := range e.children {
			walk(cl.child)
		}
	}
	walk(root)
}

func propKeys(ps []nra.PropSpec) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Key
	}
	return out
}

// entryKey returns the registry key of op's node. Input (alpha) nodes
// are variable-independent — their rows carry positions, not names — so
// they are keyed by labels/types/pushed property keys only
// (fra.InputKey) and shared across views that merely rename pattern
// variables (the PR 2 alpha sharing). Every other node keeps the full
// structural fingerprint: variable names flow into parent fingerprints,
// where they genuinely determine schemas and join-key positions.
func (b *builder) entryKey(op nra.Op) string {
	if k, ok := fra.InputKey(op); ok {
		return k
	}
	return b.fper.Fingerprint(op)
}

// build resolves op through the registry: a key hit returns the live
// shared entry (one new reference), a miss builds the node, links its
// children and registers it.
func (b *builder) build(op nra.Op) (*SubplanEntry, error) {
	fp := b.entryKey(op)
	if e := b.reg.lookup(fp); e != nil {
		e.refs++
		return e, nil
	}

	switch o := op.(type) {
	case *nra.Unit:
		n := &UnitInput{}
		return b.newEntry(fp, &SubplanEntry{p: n, seed: n, sink: n, trans: n, isInput: true}), nil

	case *nra.GetVertices:
		n := NewVertexInput(b.g, o.Labels, propKeys(o.Props))
		return b.newEntry(fp, &SubplanEntry{p: n, seed: n, sink: n, trans: n, isInput: true}), nil

	case *nra.GetEdges:
		n := NewEdgeInput(b.g, o.Types, o.ALabels, o.BLabels, o.Undirected,
			propKeys(o.AProps), propKeys(o.EProps), propKeys(o.BProps))
		return b.newEntry(fp, &SubplanEntry{p: n, seed: n, sink: n, trans: n, isInput: true}), nil

	case *nra.TransitiveJoin:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		srcIdx := o.Input.Schema().Index(o.SrcAttr)
		if srcIdx < 0 {
			b.reg.release(in)
			return nil, fmt.Errorf("rete: transitive join source %q not in input schema", o.SrcAttr)
		}
		if o.PathAttr == "" {
			b.reg.release(in)
			return nil, fmt.Errorf("rete: transitive join without path attribute")
		}
		n := NewTransitiveNode(b.g, srcIdx, o.Types, o.Dir, o.Min, o.Max, o.DstLabels, propKeys(o.DstProps))
		e := b.newEntry(fp, &SubplanEntry{p: n, seed: n, sink: n, counter: n})
		b.link(e, n, 0, in)
		b.nw.newTrans = append(b.nw.newTrans, n)
		return e, nil

	case *nra.ShortestPath:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		srcIdx := o.Input.Schema().Index(o.SrcAttr)
		if srcIdx < 0 {
			b.reg.release(in)
			return nil, fmt.Errorf("rete: shortest path source %q not in input schema", o.SrcAttr)
		}
		if o.PathAttr == "" || o.CostAttr == "" {
			b.reg.release(in)
			return nil, fmt.Errorf("rete: shortest path without path/cost attribute")
		}
		preds, err := snapshot.ResolveEdgePreds(o.EdgePreds, b.params)
		if err != nil {
			b.reg.release(in)
			return nil, err
		}
		spec := &snapshot.ShortestPathSpec{
			Types: o.Types, Dir: o.Dir, Min: o.Min, Max: o.Max,
			DstLabels: o.DstLabels, WeightProp: o.WeightProp, EdgePreds: preds,
		}
		n := NewShortestPathNode(b.g, srcIdx, spec, propKeys(o.DstProps))
		e := b.newEntry(fp, &SubplanEntry{p: n, seed: n, sink: n, counter: n})
		b.link(e, n, 0, in)
		b.nw.newSPs = append(b.nw.newSPs, n)
		return e, nil

	case *nra.Join:
		l, err := b.build(o.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(o.R)
		if err != nil {
			b.reg.release(l)
			return nil, err
		}
		lKey, rKey, rKeep := schema.JoinKeys(o.L.Schema(), o.R.Schema())
		n := NewJoinNode(lKey, rKey, rKeep)
		e := b.newEntry(fp, &SubplanEntry{p: n, seed: n, counter: n})
		b.link(e, n, 0, l)
		b.link(e, n, 1, r)
		return e, nil

	case *nra.LeftOuterJoin:
		l, err := b.build(o.L)
		if err != nil {
			return nil, err
		}
		r, err := b.build(o.R)
		if err != nil {
			b.reg.release(l)
			return nil, err
		}
		lKey, rKey, rKeep := schema.JoinKeys(o.L.Schema(), o.R.Schema())
		n := NewOuterJoinNode(lKey, rKey, rKeep)
		e := b.newEntry(fp, &SubplanEntry{p: n, seed: n, counter: n})
		b.link(e, n, 0, l)
		b.link(e, n, 1, r)
		return e, nil

	case *nra.SemiJoin:
		return b.buildExists(fp, o.L, o.R, false)
	case *nra.AntiJoin:
		return b.buildExists(fp, o.L, o.R, true)

	case *nra.Select:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		fn, err := expr.Compile(o.Cond, o.Input.Schema(), b.params)
		if err != nil {
			b.reg.release(in)
			return nil, err
		}
		env := &expr.Env{G: b.g}
		return b.transform(fp, in, func(row value.Row, emit func(value.Row)) {
			env.Row = row
			if ok, known := expr.Truth(fn(env)); known && ok {
				emit(row)
			}
		}), nil

	case *nra.Project:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		fns := make([]expr.Fn, len(o.Items))
		for i, it := range o.Items {
			fn, err := expr.Compile(it.Expr, o.Input.Schema(), b.params)
			if err != nil {
				b.reg.release(in)
				return nil, err
			}
			fns[i] = fn
		}
		env := &expr.Env{G: b.g}
		return b.transform(fp, in, func(row value.Row, emit func(value.Row)) {
			env.Row = row
			out := make(value.Row, len(fns))
			for i, fn := range fns {
				out[i] = fn(env)
			}
			emit(out)
		}), nil

	case *nra.Dedup:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		n := NewDedupNode()
		e := b.newEntry(fp, &SubplanEntry{p: n, seed: n, counter: n})
		b.link(e, n, 0, in)
		return e, nil

	case *nra.AllDifferent:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		s := o.Input.Schema()
		var edgeIdx, pathIdx []int
		for _, a := range o.EdgeAttrs {
			i := s.Index(a)
			if i < 0 {
				b.reg.release(in)
				return nil, fmt.Errorf("rete: all-different attribute %q missing", a)
			}
			edgeIdx = append(edgeIdx, i)
		}
		for _, a := range o.PathAttrs {
			i := s.Index(a)
			if i < 0 {
				b.reg.release(in)
				return nil, fmt.Errorf("rete: all-different attribute %q missing", a)
			}
			pathIdx = append(pathIdx, i)
		}
		return b.transform(fp, in, func(row value.Row, emit func(value.Row)) {
			if snapshot.EdgesDisjoint(row, edgeIdx, pathIdx) {
				emit(row)
			}
		}), nil

	case *nra.PathBuild:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		items, err := snapshot.ResolvePathItems(o.Items, o.Input.Schema())
		if err != nil {
			b.reg.release(in)
			return nil, err
		}
		return b.transform(fp, in, func(row value.Row, emit func(value.Row)) {
			p, ok := snapshot.BuildPath(row, items)
			if !ok {
				return
			}
			out := make(value.Row, 0, len(row)+1)
			out = append(out, row...)
			out = append(out, value.NewPath(p))
			emit(out)
		}), nil

	case *nra.Aggregate:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		groupFns := make([]expr.Fn, len(o.GroupBy))
		for i, it := range o.GroupBy {
			fn, err := expr.Compile(it.Expr, o.Input.Schema(), b.params)
			if err != nil {
				b.reg.release(in)
				return nil, err
			}
			groupFns[i] = fn
		}
		specs := make([]AggSpec, len(o.Aggs))
		for i, a := range o.Aggs {
			spec := AggSpec{Func: a.Func, Distinct: a.Distinct}
			if a.Arg != nil {
				fn, err := expr.Compile(a.Arg, o.Input.Schema(), b.params)
				if err != nil {
					b.reg.release(in)
					return nil, err
				}
				spec.ArgFn = fn
			}
			specs[i] = spec
		}
		n := NewAggregateNode(b.g, groupFns, specs)
		e := b.newEntry(fp, &SubplanEntry{p: n, seed: n, counter: n})
		b.link(e, n, 0, in)
		b.nw.newAggs = append(b.nw.newAggs, n)
		return e, nil

	case *nra.Unwind:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		fn, err := expr.Compile(o.Expr, o.Input.Schema(), b.params)
		if err != nil {
			b.reg.release(in)
			return nil, err
		}
		env := &expr.Env{G: b.g}
		return b.transform(fp, in, func(row value.Row, emit func(value.Row)) {
			env.Row = row
			v := fn(env)
			switch v.Kind() {
			case value.KindNull:
			case value.KindList:
				for _, el := range v.List() {
					r := make(value.Row, 0, len(row)+1)
					r = append(r, row...)
					r = append(r, el)
					emit(r)
				}
			default:
				r := make(value.Row, 0, len(row)+1)
				r = append(r, row...)
				r = append(r, v)
				emit(r)
			}
		}), nil

	case *nra.Top:
		in, err := b.build(o.Input)
		if err != nil {
			return nil, err
		}
		keyFns := make([]expr.Fn, len(o.Items))
		desc := make([]bool, len(o.Items))
		for i, it := range o.Items {
			fn, err := expr.Compile(it.Expr, o.Input.Schema(), b.params)
			if err != nil {
				b.reg.release(in)
				return nil, err
			}
			keyFns[i] = fn
			desc[i] = it.Desc
		}
		skip, limit := 0, -1
		if o.Skip != nil {
			if skip, err = snapshot.EvalConstN(o.Skip, b.params, "rete: SKIP"); err != nil {
				b.reg.release(in)
				return nil, err
			}
		}
		if o.Limit != nil {
			if limit, err = snapshot.EvalConstN(o.Limit, b.params, "rete: LIMIT"); err != nil {
				b.reg.release(in)
				return nil, err
			}
		}
		if skip == 0 && limit < 0 {
			// Pure ORDER BY: the operator is the identity on the bag —
			// delivery order is applied at the view layer (ivm sorts
			// reads and OnChange batches by the Top comparator) — so an
			// identity transform keeps the registry mapping uniform
			// without duplicating the relation in a stateful node.
			return b.transform(fp, in, func(row value.Row, emit func(value.Row)) {
				emit(row)
			}), nil
		}
		n := NewTopKNode(b.g, keyFns, desc, skip, limit)
		e := b.newEntry(fp, &SubplanEntry{p: n, seed: n, counter: n})
		b.link(e, n, 0, in)
		return e, nil
	}
	return nil, fmt.Errorf("rete: unsupported operator %T", op)
}

// transform registers a stateless transform node over in; the node's
// replay seeding pulls in's seeder through the transformation.
func (b *builder) transform(fp string, in *SubplanEntry, fn func(value.Row, func(value.Row))) *SubplanEntry {
	n := NewTransformNode(fn)
	n.seedSrc = in.seed
	e := b.newEntry(fp, &SubplanEntry{p: n, seed: n})
	b.link(e, n, 0, in)
	return e
}

func (b *builder) buildExists(fp string, lop, rop nra.Op, negate bool) (*SubplanEntry, error) {
	l, err := b.build(lop)
	if err != nil {
		return nil, err
	}
	r, err := b.build(rop)
	if err != nil {
		b.reg.release(l)
		return nil, err
	}
	lKey, rKey, _ := schema.JoinKeys(lop.Schema(), rop.Schema())
	n := NewExistsNode(lKey, rKey, negate)
	e := b.newEntry(fp, &SubplanEntry{p: n, seed: n, counter: n})
	b.link(e, n, 0, l)
	b.link(e, n, 1, r)
	return e, nil
}
