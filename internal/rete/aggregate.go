package rete

import (
	"sort"

	"pgiv/internal/expr"
	"pgiv/internal/graph"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// AggSpec describes one aggregation maintained by an AggregateNode.
// A nil ArgFn means count(*).
type AggSpec struct {
	Func     string
	ArgFn    expr.Fn
	Distinct bool
}

// aggVal is one distinct argument value with its multiplicity within a
// group.
type aggVal struct {
	val   value.Value
	count int
}

// aggGroup is the maintained state of one group.
type aggGroup struct {
	keys     value.Row
	rowCount int64
	sets     []map[string]*aggVal // per aggregate: multiset of non-null args
	out      value.Row            // currently emitted output row, nil if none
}

// AggregateNode incrementally maintains grouping and aggregation
// (count/sum/avg/min/max/collect — the paper leaves aggregation as future
// work; this is the natural extension using per-group multisets, which
// makes deletions of min/max/collect inputs exact).
type AggregateNode struct {
	emitter
	memoVersion
	g        *graph.Graph
	groupFns []expr.Fn
	specs    []AggSpec
	groups   map[string]*aggGroup
	kh, vh   value.Hasher // group-key and argument-value scratch
}

// NewAggregateNode builds an aggregation node. An empty groupFns slice
// makes it a global aggregate, which always emits exactly one row (the
// defaults for an empty input: count 0, sum 0, min/max/avg null,
// collect []).
func NewAggregateNode(g *graph.Graph, groupFns []expr.Fn, specs []AggSpec) *AggregateNode {
	return &AggregateNode{g: g, groupFns: groupFns, specs: specs, groups: make(map[string]*aggGroup)}
}

func (n *AggregateNode) global() bool { return len(n.groupFns) == 0 }

// EmitInitial emits the default row of a global aggregate. It must run
// once, after the network is built and before any input is seeded.
func (n *AggregateNode) EmitInitial() {
	if !n.global() {
		return
	}
	grp := n.group(value.Row{})
	out := n.finalize(grp)
	grp.out = out
	n.emit([]Delta{{Row: out, Mult: 1}})
}

func (n *AggregateNode) group(keys value.Row) *aggGroup {
	kb := n.kh.RowKey(keys)
	grp := n.groups[string(kb)]
	if grp == nil {
		grp = &aggGroup{keys: keys, sets: make([]map[string]*aggVal, len(n.specs))}
		for i := range n.specs {
			grp.sets[i] = make(map[string]*aggVal)
		}
		n.groups[string(kb)] = grp
	}
	return grp
}

// Apply implements Receiver. Group and argument-value lookups go through
// scratch Hashers: a delta landing in an existing, already-touched group
// allocates no keys.
func (n *AggregateNode) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		n.bumpMemo()
	}
	touched := make(map[string]*aggGroup)
	var order []string
	env := &expr.Env{G: n.g}
	for _, d := range deltas {
		env.Row = d.Row
		keys := make(value.Row, len(n.groupFns))
		for i, fn := range n.groupFns {
			keys[i] = fn(env)
		}
		kb := n.kh.RowKey(keys)
		grp := n.groups[string(kb)]
		if grp == nil {
			grp = n.group(keys)
		}
		if _, seen := touched[string(kb)]; !seen {
			k := string(kb)
			touched[k] = grp
			order = append(order, k)
		}
		grp.rowCount += int64(d.Mult)
		for i, spec := range n.specs {
			if spec.ArgFn == nil {
				continue
			}
			v := spec.ArgFn(env)
			if v.IsNull() {
				continue
			}
			vk := n.vh.ValueKey(v)
			av := grp.sets[i][string(vk)]
			if av == nil {
				av = &aggVal{val: v}
				grp.sets[i][string(vk)] = av
			}
			av.count += d.Mult
			if av.count == 0 {
				delete(grp.sets[i], string(vk))
			}
		}
	}

	sort.Strings(order)
	out := n.outBuf()
	for _, k := range order {
		grp := touched[k]
		var newOut value.Row
		if grp.rowCount > 0 || n.global() {
			newOut = n.finalize(grp)
		}
		if grp.out != nil && newOut != nil && value.EqualRows(grp.out, newOut) {
			continue
		}
		if grp.out != nil {
			out = append(out, Delta{Row: grp.out, Mult: -1})
		}
		if newOut != nil {
			out = append(out, Delta{Row: newOut, Mult: 1})
		}
		grp.out = newOut
		if grp.rowCount <= 0 && !n.global() {
			delete(n.groups, k)
		}
	}
	n.emitOwned(out)
}

// finalize computes the group's output row, matching the snapshot
// engine's aggregation semantics exactly (both call
// snapshot.FinalizeAgg).
func (n *AggregateNode) finalize(grp *aggGroup) value.Row {
	out := make(value.Row, 0, len(grp.keys)+len(n.specs))
	out = append(out, grp.keys...)
	for i, spec := range n.specs {
		var v value.Value
		if spec.ArgFn == nil {
			v, _ = snapshot.FinalizeAgg(spec.Func, true, nil, grp.rowCount)
		} else {
			vals := expand(grp.sets[i], spec.Distinct)
			v, _ = snapshot.FinalizeAgg(spec.Func, false, vals, grp.rowCount)
		}
		out = append(out, v)
	}
	return out
}

// expand flattens a multiset into a value slice (each value once for
// DISTINCT, else repeated by multiplicity).
func expand(set map[string]*aggVal, distinct bool) []value.Value {
	vals := make([]value.Value, 0, len(set))
	for _, av := range set {
		reps := av.count
		if distinct {
			reps = 1
		}
		for i := 0; i < reps; i++ {
			vals = append(vals, av.val)
		}
	}
	if vals == nil {
		vals = []value.Value{}
	}
	return vals
}

func (n *AggregateNode) memoryEntries() int {
	e := 0
	for _, grp := range n.groups {
		e++
		for _, s := range grp.sets {
			e += len(s)
		}
	}
	return e
}
