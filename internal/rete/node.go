package rete

import (
	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// Receiver consumes delta batches on a numbered input port (0 for unary
// nodes and the left input of joins, 1 for the right input).
type Receiver interface {
	Apply(port int, deltas []Delta)
}

// succ is a successor edge in the network.
type succ struct {
	node Receiver
	port int
}

// emitter is embedded by every node that forwards deltas. It owns a
// reusable output buffer: nodes build each Apply call's batch in
// outBuf() and hand it to emitOwned(), which forwards it and keeps the
// grown capacity for the next call instead of re-making the slice.
// Reuse is sound because delivery is synchronous and receivers never
// retain the batch slice (rows are retained, the []Delta is not), and
// the network is acyclic so a node's Apply is never re-entered while
// its own emit is on the stack.
type emitter struct {
	succs []succ
	buf   []Delta
}

// outBuf returns the node's scratch output batch, reset to length zero.
func (e *emitter) outBuf() []Delta { return e.buf[:0] }

// emitOwned forwards out to all successors and adopts it (including any
// growth) as the scratch buffer for the next outBuf call.
func (e *emitter) emitOwned(out []Delta) {
	e.buf = out
	e.emit(out)
}

// addSucc connects a successor; returns the edge for targeted seeding.
func (e *emitter) addSucc(node Receiver, port int) succ {
	s := succ{node: node, port: port}
	e.succs = append(e.succs, s)
	return s
}

// removeSucc disconnects a successor (used when a view is dropped).
func (e *emitter) removeSucc(node Receiver, port int) {
	for i, s := range e.succs {
		if s.node == node && s.port == port {
			e.succs = append(e.succs[:i], e.succs[i+1:]...)
			return
		}
	}
}

func (e *emitter) hasSuccs() bool { return len(e.succs) > 0 }

// emit forwards a delta batch to all successors.
func (e *emitter) emit(deltas []Delta) {
	if len(deltas) == 0 {
		return
	}
	for _, s := range e.succs {
		s.node.Apply(s.port, deltas)
	}
}

// ChangeSink is implemented by nodes that consume committed graph
// change sets: the input nodes (get-vertices, get-edges) and the
// transitive-join node. The view-maintenance engine fans exactly one
// coalesced ChangeSet per commit out to all registered sinks, so a
// 10k-mutation batch costs each sink one invocation. ApplyChangeSet runs
// after the whole transaction has been applied to the store; pre-state
// is read from the per-element deltas, post-state from the live objects.
type ChangeSink interface {
	ApplyChangeSet(cs *graph.ChangeSet)
}

// Translator is implemented by the shared input nodes (get-vertices,
// get-edges, unit): TranslateChangeSet computes the node's delta batch
// for a committed change set without emitting it. The parallel
// propagation scheduler translates each shared input exactly once per
// commit and delivers the same (read-only) batch into every attached
// view's private subtree, possibly from different goroutines.
//
// The returned slice is owned by the node and valid until its next
// TranslateChangeSet/ApplyChangeSet call — i.e. until the next commit,
// since the store serialises transactions. Callers must not retain or
// modify it across commits.
type Translator interface {
	ChangeSink
	TranslateChangeSet(cs *graph.ChangeSet) []Delta
}

// GraphSink is the legacy per-event sink interface, kept so node
// internals can migrate gradually: the transitive-join node still routes
// single-change commits through its fine-grained handlers, and
// AsChangeSink lifts any GraphSink into a ChangeSink. All methods are
// invoked after the store has applied the change; property callbacks
// carry the previous value.
type GraphSink interface {
	VertexAdded(v *graph.Vertex)
	VertexRemoved(v *graph.Vertex)
	EdgeAdded(e *graph.Edge)
	EdgeRemoved(e *graph.Edge)
	VertexLabelAdded(v *graph.Vertex, label string)
	VertexLabelRemoved(v *graph.Vertex, label string)
	VertexPropertyChanged(v *graph.Vertex, key string, old value.Value)
	EdgePropertyChanged(e *graph.Edge, key string, old value.Value)
}

// nopSink provides no-op defaults for GraphSink implementers.
type nopSink struct{}

func (nopSink) VertexAdded(*graph.Vertex)                                    {}
func (nopSink) VertexRemoved(*graph.Vertex)                                  {}
func (nopSink) EdgeAdded(*graph.Edge)                                        {}
func (nopSink) EdgeRemoved(*graph.Edge)                                      {}
func (nopSink) VertexLabelAdded(*graph.Vertex, string)                       {}
func (nopSink) VertexLabelRemoved(*graph.Vertex, string)                     {}
func (nopSink) VertexPropertyChanged(*graph.Vertex, string, value.Value)     {}
func (nopSink) EdgePropertyChanged(e *graph.Edge, key string, o value.Value) {}

// AsChangeSink adapts a per-event GraphSink to the ChangeSet interface
// via graph.AdaptEvents — a migration aid for sink implementations that
// have not learned batches yet. The replay presents net per-element
// transitions one event at a time, so a sink that reconstructs pre-state
// from the live object (as the input nodes do) sees exact deltas only
// when each element changed in a single way; the native ApplyChangeSet
// implementations below handle arbitrary combined transitions and should
// be preferred.
func AsChangeSink(s GraphSink) ChangeSink {
	return adaptedSink{graph.AdaptEvents(s)}
}

type adaptedSink struct{ l graph.Listener }

func (a adaptedSink) ApplyChangeSet(cs *graph.ChangeSet) { a.l.Apply(cs) }

func vertexMatches(v *graph.Vertex, labels []string) bool {
	for _, l := range labels {
		if !v.HasLabel(l) {
			return false
		}
	}
	return true
}

func typeMatches(types []string, t string) bool {
	if len(types) == 0 {
		return true
	}
	for _, x := range types {
		if x == t {
			return true
		}
	}
	return false
}
