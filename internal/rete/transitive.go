package rete

import (
	"sort"

	"pgiv/internal/cypher"
	"pgiv/internal/graph"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// TransitiveNode incrementally maintains the transitive join r ./∗ ⇑ of
// the paper: each left row is extended with every edge-distinct path of
// Min..Max hops from its source vertex, ending at a vertex carrying the
// destination labels.
//
// Paths are atomic values (the paper's ORD compromise): an update never
// rewrites a path in place — affected paths are deleted and re-derived as
// units. The node memoizes, per active source vertex, the current set of
// "fragments" (destination vertex, path, destination properties); on a
// relevant graph change it recomputes the fragments of the affected
// sources only (found by exact containment indexing for deletions and by
// reverse reachability for insertions) and emits the difference.
type TransitiveNode struct {
	emitter
	nopSink
	memoVersion
	g         *graph.Graph
	srcIdx    int // position of the source vertex in left rows
	types     []string
	dir       cypher.Direction
	min, max  int
	dstLabels []string
	dstProps  []string

	left     *indexedMemory // left rows grouped by source vertex
	sources  map[graph.ID]*srcState
	freshIDs []graph.ID   // sources first activated during the current commit
	skh      value.Hasher // source-key scratch
	fkh      value.Hasher // fragment-key scratch (EdgeAdded dup probes)

	// reverse-reachability scratch, reused across commits
	bfsVisited map[graph.ID]bool
	bfsQueue   []graph.ID
	bfsOut     []graph.ID
}

// srcState is the memoized path set of one active source vertex.
type srcState struct {
	frags map[string]value.Row // fragment key → (dst, path, dstProps...)
	edges map[graph.ID]int     // edge → number of fragments containing it
	fresh bool                 // enumerated against the post-commit graph already

	// Deterministic fragment order, cached behind a dirty flag (mirroring
	// Production.Rows): Apply replays it once per left delta, so a stable
	// source no longer pays a key sort per delta.
	sorted      []value.Row
	sortedDirty bool
}

// sortedFrags returns the fragments in deterministic key order,
// rebuilding the cache only after a fragment-set change.
func (st *srcState) sortedFrags() []value.Row {
	if st.sortedDirty {
		keys := make([]string, 0, len(st.frags))
		for k := range st.frags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]value.Row, len(keys))
		for i, k := range keys {
			out[i] = st.frags[k]
		}
		st.sorted = out
		st.sortedDirty = false
	}
	return st.sorted
}

// dropEdges decrements the edge-containment counts of one removed
// fragment's path (the index is maintained incrementally; removal used to
// rebuild it from every surviving fragment).
func (st *srcState) dropEdges(frag value.Row) {
	for _, e := range frag[1].Path().Edges {
		if st.edges[e]--; st.edges[e] == 0 {
			delete(st.edges, e)
		}
	}
}

// addEdges increments the edge-containment counts of one added fragment.
func (st *srcState) addEdges(frag value.Row) {
	for _, e := range frag[1].Path().Edges {
		st.edges[e]++
	}
}

// NewTransitiveNode builds a transitive-join node. srcIdx is the source
// vertex position in left rows; dstProps are the pushed-down property keys
// of the destination vertex.
func NewTransitiveNode(g *graph.Graph, srcIdx int, types []string, dir cypher.Direction, min, max int, dstLabels, dstProps []string) *TransitiveNode {
	return &TransitiveNode{
		g: g, srcIdx: srcIdx, types: types, dir: dir, min: min, max: max,
		dstLabels: dstLabels, dstProps: dstProps,
		left:    newIndexedMemory([]int{srcIdx}),
		sources: make(map[graph.ID]*srcState),
	}
}

// computeFrags enumerates the current fragment set of a source vertex.
func (n *TransitiveNode) computeFrags(src graph.ID) map[string]value.Row {
	frags := make(map[string]value.Row)
	snapshot.PathEnum(n.g, src, n.types, n.dir, n.min, n.max, n.dstLabels, func(p *value.Path, dst *graph.Vertex) {
		frag := make(value.Row, 0, 2+len(n.dstProps))
		frag = append(frag, value.NewVertex(dst.ID), value.NewPath(p))
		for _, k := range n.dstProps {
			frag = append(frag, dst.Prop(k))
		}
		frags[value.RowKey(frag)] = frag
	})
	return frags
}

func buildEdgeIndex(frags map[string]value.Row) map[graph.ID]int {
	idx := make(map[graph.ID]int)
	for _, frag := range frags {
		for _, e := range frag[1].Path().Edges {
			idx[e]++
		}
	}
	return idx
}

// srcKey encodes a source-vertex key into scratch; valid until the next
// srcKey call.
func (n *TransitiveNode) srcKey(id graph.ID) []byte {
	return n.skh.ValueKey(value.NewVertex(id))
}

// Apply implements Receiver for the left input (port 0).
func (n *TransitiveNode) Apply(port int, deltas []Delta) {
	if len(deltas) > 0 {
		n.bumpMemo()
	}
	out := n.outBuf()
	for _, d := range deltas {
		srcVal := d.Row[n.srcIdx]
		if srcVal.Kind() != value.KindVertex {
			n.left.apply(d.Row, d.Mult)
			continue
		}
		id := srcVal.ID()
		st := n.sources[id]
		if st == nil && d.Mult > 0 {
			// A source activated mid-commit enumerates against the already
			// fully-applied graph; mark it so this commit's batch pass does
			// not re-enumerate it (left deltas always precede the node's
			// own ApplyChangeSet — inputs are registered first).
			st = &srcState{frags: n.computeFrags(id), fresh: true, sortedDirty: true}
			st.edges = buildEdgeIndex(st.frags)
			n.sources[id] = st
			n.freshIDs = append(n.freshIDs, id)
		}
		n.left.apply(d.Row, d.Mult)
		if st != nil {
			for _, frag := range st.sortedFrags() {
				out = append(out, Delta{Row: value.ConcatRows(d.Row, frag), Mult: d.Mult})
			}
		}
		// Release the path memory once no left row references the source.
		if len(n.left.items[string(n.srcKey(id))]) == 0 {
			delete(n.sources, id)
		}
	}
	n.emitOwned(out)
}

// recomputeAndDiff refreshes the fragment sets of the given sources and
// emits deltas for every left row of each changed source.
func (n *TransitiveNode) recomputeAndDiff(ids []graph.ID) {
	n.bumpMemo()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := n.outBuf()
	for _, id := range ids {
		st := n.sources[id]
		if st == nil || st.fresh {
			continue
		}
		newFrags := n.computeFrags(id)
		var removed, added []value.Row
		for k, frag := range st.frags {
			if _, ok := newFrags[k]; !ok {
				removed = append(removed, frag)
			}
		}
		for k, frag := range newFrags {
			if _, ok := st.frags[k]; !ok {
				added = append(added, frag)
			}
		}
		if len(removed) == 0 && len(added) == 0 {
			st.frags = newFrags
			continue
		}
		sortRows(removed)
		sortRows(added)
		n.left.probe(n.srcKey(id), func(lrow value.Row, count int) {
			for _, frag := range removed {
				out = append(out, Delta{Row: value.ConcatRows(lrow, frag), Mult: -count})
			}
			for _, frag := range added {
				out = append(out, Delta{Row: value.ConcatRows(lrow, frag), Mult: count})
			}
		})
		for _, frag := range removed {
			st.dropEdges(frag)
		}
		for _, frag := range added {
			st.addEdges(frag)
		}
		st.frags = newFrags
		st.sortedDirty = true
	}
	n.emitOwned(out)
}

func sortRows(rows []value.Row) {
	sort.Slice(rows, func(i, j int) bool { return value.CompareRows(rows[i], rows[j]) < 0 })
}

// activeSourcesReaching returns the active sources that can reach any of
// the given vertices by traversing edges of the node's types in its
// direction (a conservative superset of the affected sources). The search
// runs backwards from the targets. The result and the search bookkeeping
// are node-owned scratch, valid until the next call.
func (n *TransitiveNode) activeSourcesReaching(targets ...graph.ID) []graph.ID {
	if n.bfsVisited == nil {
		n.bfsVisited = make(map[graph.ID]bool)
	}
	clear(n.bfsVisited)
	visited := n.bfsVisited
	queue := n.bfsQueue[:0]
	for _, t := range targets {
		if !visited[t] {
			visited[t] = true
			queue = append(queue, t)
		}
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		n.forEachBackwardNeighbor(x, func(p graph.ID) {
			if !visited[p] {
				visited[p] = true
				queue = append(queue, p)
			}
		})
	}
	n.bfsQueue = queue
	out := n.bfsOut[:0]
	for id := range visited {
		if _, ok := n.sources[id]; ok {
			out = append(out, id)
		}
	}
	n.bfsOut = out
	return out
}

// forEachBackwardNeighbor invokes fn for every vertex that can step to x
// in one hop of the node's traversal direction, walking the typed
// adjacency index without allocating.
func (n *TransitiveNode) forEachBackwardNeighbor(x graph.ID, fn func(graph.ID)) {
	ts := n.types
	if len(ts) == 0 {
		ts = allTypes
	}
	for _, t := range ts {
		if n.dir == cypher.DirOut || n.dir == cypher.DirBoth {
			n.g.ForEachInEdge(x, t, func(e *graph.Edge) bool {
				fn(e.Src)
				return true
			})
		}
		if n.dir == cypher.DirIn || n.dir == cypher.DirBoth {
			n.g.ForEachOutEdge(x, t, func(e *graph.Edge) bool {
				fn(e.Trg)
				return true
			})
		}
	}
}

// allTypes is the shared "no type filter" singleton, so hot loops avoid
// re-making the one-element slice.
var allTypes = []string{""}

// ApplyChangeSet implements ChangeSink. Single edge additions and
// removals — the hot fine-grained operations — route through the
// dedicated handlers below, which maintain the memoized path sets
// without re-enumeration. Arbitrary batches take one recompute-and-diff
// pass over the union of affected sources: exact edge-containment
// indexing finds the sources whose memoized paths lost an edge, and
// reverse reachability (on the post-transaction graph) finds the sources
// that can see added edges or changed destination vertices. However many
// mutations the transaction carried, each affected source is
// re-enumerated at most once per commit.
//
// Source-vertex existence is deliberately ignored here: it flows in
// through the left input (a removed source's rows are retracted against
// the still-memoized fragments, or the fragments are already gone —
// both orders yield the same net deltas).
func (n *TransitiveNode) ApplyChangeSet(cs *graph.ChangeSet) {
	defer n.clearFresh()
	if len(n.sources) == 0 {
		return
	}
	if es := cs.Edges(); len(es) == 1 && len(cs.Vertices()) == 0 {
		d := es[0]
		switch {
		case d.Created():
			n.EdgeAdded(d.E)
		case d.Removed():
			n.EdgeRemoved(d.E)
		}
		return // edge property changes never affect paths or destinations
	}

	affected := make(map[graph.ID]bool)
	var targets []graph.ID
	for _, d := range cs.Edges() {
		if !typeMatches(n.types, d.E.Type) {
			continue
		}
		if d.Removed() {
			for id, st := range n.sources {
				if st.edges[d.E.ID] > 0 {
					affected[id] = true
				}
			}
		}
		if d.Created() {
			switch n.dir {
			case cypher.DirOut:
				targets = append(targets, d.E.Src)
			case cypher.DirIn:
				targets = append(targets, d.E.Trg)
			default:
				targets = append(targets, d.E.Src, d.E.Trg)
			}
		}
	}
	for _, d := range cs.Vertices() {
		if d.Created() || d.Removed() {
			continue
		}
		relevant := false
		if d.LabelsChanged() {
			for _, l := range n.dstLabels {
				if d.HadLabel(l) != d.V.HasLabel(l) {
					relevant = true
					break
				}
			}
		}
		if !relevant {
			for _, k := range d.ChangedProps() {
				if containsLabel(n.dstProps, k) {
					relevant = true
					break
				}
			}
		}
		if relevant {
			targets = append(targets, d.V.ID)
		}
	}
	if len(targets) > 0 {
		for _, id := range n.activeSourcesReaching(targets...) {
			affected[id] = true
		}
	}
	if len(affected) == 0 {
		return
	}
	ids := make([]graph.ID, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	n.recomputeAndDiff(ids)
}

// clearFresh ends the current commit's freshness window.
func (n *TransitiveNode) clearFresh() {
	for _, id := range n.freshIDs {
		if st := n.sources[id]; st != nil {
			st.fresh = false
		}
	}
	n.freshIDs = n.freshIDs[:0]
}

// EdgeAdded implements GraphSink. Insertion is handled without
// re-enumerating whole path sets: every new path contains the new edge
// exactly once (path sets are edge-distinct), so it decomposes uniquely
// into a prefix reaching the edge's entry endpoint, the edge itself, and
// a suffix from its exit. The node enumerates exactly those paths —
// pruning prefix branches by reverse reachability — and inserts them as
// atomic units (cf. Bergmann et al., incremental transitive closure).
func (n *TransitiveNode) EdgeAdded(e *graph.Edge) {
	if !typeMatches(n.types, e.Type) || len(n.sources) == 0 {
		return
	}
	n.bumpMemo()
	type orient struct{ entry, exit graph.ID }
	var orients []orient
	switch n.dir {
	case cypher.DirOut:
		orients = []orient{{e.Src, e.Trg}}
	case cypher.DirIn:
		orients = []orient{{e.Trg, e.Src}}
	default:
		orients = []orient{{e.Src, e.Trg}}
		if e.Src != e.Trg {
			orients = append(orients, orient{e.Trg, e.Src})
		}
	}
	var entries []graph.ID
	for _, o := range orients {
		entries = append(entries, o.entry)
	}
	affected := n.activeSourcesReaching(entries...)
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

	out := n.outBuf()
	for _, src := range affected {
		st := n.sources[src]
		var added []value.Row
		for _, o := range orients {
			n.pathsThroughEdge(src, e.ID, o.entry, o.exit, func(frag value.Row) {
				k := n.fkh.RowKey(frag)
				if _, dup := st.frags[string(k)]; dup { // zero-copy probe
					return
				}
				st.frags[string(k)] = frag // materialises the key on insert
				added = append(added, frag)
			})
		}
		if len(added) == 0 {
			continue
		}
		sortRows(added)
		n.left.probe(n.srcKey(src), func(lrow value.Row, count int) {
			for _, frag := range added {
				out = append(out, Delta{Row: value.ConcatRows(lrow, frag), Mult: count})
			}
		})
		for _, frag := range added {
			st.addEdges(frag)
		}
		st.sortedDirty = true
	}
	n.emitOwned(out)
}

// pathsThroughEdge enumerates the edge-distinct paths from src that
// traverse the edge (entry -eid-> exit), emitting one fragment per
// qualifying path (length within bounds, final vertex labelled).
func (n *TransitiveNode) pathsThroughEdge(src graph.ID, eid, entry, exit graph.ID, emit func(value.Row)) {
	// Vertices that can still reach the entry endpoint: prefix pruning.
	reach := n.verticesReaching(entry)
	if !reach[src] {
		return
	}
	used := map[graph.ID]bool{eid: true}

	emitIfQualifies := func(p *value.Path, dst graph.ID) {
		if p.Len() < n.min {
			return
		}
		v, ok := n.g.VertexByID(dst)
		if !ok || !vertexMatches(v, n.dstLabels) {
			return
		}
		frag := make(value.Row, 0, 2+len(n.dstProps))
		frag = append(frag, value.NewVertex(dst), value.NewPath(p))
		for _, k := range n.dstProps {
			frag = append(frag, v.Prop(k))
		}
		emit(frag)
	}

	var dfsSuffix func(cur graph.ID, p *value.Path)
	dfsSuffix = func(cur graph.ID, p *value.Path) {
		if n.max != -1 && p.Len() >= n.max {
			return
		}
		n.forEachForwardStep(cur, func(edge, next graph.ID) {
			if used[edge] {
				return
			}
			np := p.Extend(edge, next)
			emitIfQualifies(np, next)
			used[edge] = true
			dfsSuffix(next, np)
			used[edge] = false
		})
	}

	var dfsPrefix func(cur graph.ID, p *value.Path)
	dfsPrefix = func(cur graph.ID, p *value.Path) {
		if cur == entry && (n.max == -1 || p.Len() < n.max) {
			withE := p.Extend(eid, exit)
			emitIfQualifies(withE, exit)
			used[eid] = true // already set, but keep the invariant explicit
			dfsSuffix(exit, withE)
		}
		if n.max != -1 && p.Len() >= n.max-1 {
			return
		}
		n.forEachForwardStep(cur, func(edge, next graph.ID) {
			if used[edge] || !reach[next] {
				return
			}
			used[edge] = true
			dfsPrefix(next, p.Extend(edge, next))
			used[edge] = false
		})
	}
	dfsPrefix(src, &value.Path{Vertices: []int64{src}})
}

// forEachForwardStep invokes fn for every one-hop expansion from cur in
// the node's traversal direction, walking the typed adjacency index
// without allocating. Iteration over the adjacency snapshot is
// re-entrant, so fn may recurse into further forEachForwardStep calls.
func (n *TransitiveNode) forEachForwardStep(cur graph.ID, fn func(edge, next graph.ID)) {
	ts := n.types
	if len(ts) == 0 {
		ts = allTypes
	}
	for _, t := range ts {
		if n.dir == cypher.DirOut || n.dir == cypher.DirBoth {
			n.g.ForEachOutEdge(cur, t, func(e *graph.Edge) bool {
				fn(e.ID, e.Trg)
				return true
			})
		}
		if n.dir == cypher.DirIn || n.dir == cypher.DirBoth {
			n.g.ForEachInEdge(cur, t, func(e *graph.Edge) bool {
				if n.dir == cypher.DirBoth && e.Src == e.Trg {
					return true
				}
				fn(e.ID, e.Src)
				return true
			})
		}
	}
}

// verticesReaching returns all vertices that can reach x via the node's
// traversal direction (including x itself).
func (n *TransitiveNode) verticesReaching(x graph.ID) map[graph.ID]bool {
	visited := map[graph.ID]bool{x: true}
	queue := []graph.ID{x}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n.forEachBackwardNeighbor(cur, func(p graph.ID) {
			if !visited[p] {
				visited[p] = true
				queue = append(queue, p)
			}
		})
	}
	return visited
}

// EdgeRemoved implements GraphSink. Deletion is exact and needs no
// re-enumeration: the edge-distinct path set of a source is monotone
// under edge removal, so precisely the memoized fragments whose path
// contains the edge disappear (paths are atomic units — they are deleted
// whole, per the paper's ORD treatment).
func (n *TransitiveNode) EdgeRemoved(e *graph.Edge) {
	if !typeMatches(n.types, e.Type) || len(n.sources) == 0 {
		return
	}
	n.bumpMemo()
	var affected []graph.ID
	for id, st := range n.sources {
		if st.edges[e.ID] > 0 {
			affected = append(affected, id)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	out := n.outBuf()
	for _, id := range affected {
		st := n.sources[id]
		var removed []value.Row
		for k, frag := range st.frags {
			if frag[1].Path().ContainsEdge(e.ID) {
				removed = append(removed, frag)
				delete(st.frags, k)
			}
		}
		if len(removed) == 0 {
			continue
		}
		sortRows(removed)
		n.left.probe(n.srcKey(id), func(lrow value.Row, count int) {
			for _, frag := range removed {
				out = append(out, Delta{Row: value.ConcatRows(lrow, frag), Mult: -count})
			}
		})
		// Decrement the removed fragments' edge counts in place — the
		// index used to be rebuilt from every surviving fragment here.
		for _, frag := range removed {
			st.dropEdges(frag)
		}
		st.sortedDirty = true
	}
	n.emitOwned(out)
}

// VertexLabelAdded implements GraphSink: destination-label changes affect
// sources that reach the vertex.
func (n *TransitiveNode) VertexLabelAdded(v *graph.Vertex, label string) {
	n.dstVertexChanged(v, label)
}

// VertexLabelRemoved implements GraphSink.
func (n *TransitiveNode) VertexLabelRemoved(v *graph.Vertex, label string) {
	n.dstVertexChanged(v, label)
}

func (n *TransitiveNode) dstVertexChanged(v *graph.Vertex, label string) {
	if !containsLabel(n.dstLabels, label) || len(n.sources) == 0 {
		return
	}
	n.recomputeAndDiff(n.activeSourcesReaching(v.ID))
}

// VertexPropertyChanged implements GraphSink: pushed-down destination
// properties of reachable vertices flow into fragments.
func (n *TransitiveNode) VertexPropertyChanged(v *graph.Vertex, key string, old value.Value) {
	if !containsLabel(n.dstProps, key) || len(n.sources) == 0 {
		return
	}
	n.recomputeAndDiff(n.activeSourcesReaching(v.ID))
}

func (n *TransitiveNode) memoryEntries() int {
	e := n.left.size()
	for _, st := range n.sources {
		e += len(st.frags)
	}
	return e
}
