package rete

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pgiv/internal/expr"
	"pgiv/internal/value"
)

// scoreRow is (name, score).
func scoreRow(name string, score int64) value.Row {
	return value.Row{value.NewString(name), value.NewInt(score)}
}

var scoreKeyFns = []expr.Fn{func(env *expr.Env) value.Value { return env.Row[1] }}

// refWindow computes the expected visible bag with a naive reference:
// sort all rows by (score desc, canonical row), repeat per multiplicity,
// take [skip, skip+limit).
func refWindow(rows map[string]struct {
	row  value.Row
	mult int
}, desc bool, skip, limit int) map[string]int {
	type item struct {
		row value.Row
		key string
	}
	var seq []item
	for k, e := range rows {
		for i := 0; i < e.mult; i++ {
			seq = append(seq, item{row: e.row, key: k})
		}
	}
	sort.Slice(seq, func(i, j int) bool {
		c := value.Compare(seq[i].row[1], seq[j].row[1])
		if desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
		if c := value.CompareRows(seq[i].row, seq[j].row); c != 0 {
			return c < 0
		}
		return seq[i].key < seq[j].key
	})
	if skip > len(seq) {
		skip = len(seq)
	}
	end := len(seq)
	if limit >= 0 && skip+limit < end {
		end = skip + limit
	}
	out := make(map[string]int)
	for _, it := range seq[skip:end] {
		out[it.key]++
	}
	return out
}

// TestTopKNodeRandomized drives random delta batches (inserts, deletes,
// multiplicity bumps, heavy score ties) through TopKNode configurations
// covering bounded and unbounded windows, asserting after every batch
// that the net emitted bag equals the naive reference window.
func TestTopKNodeRandomized(t *testing.T) {
	configs := []struct {
		name        string
		skip, limit int
		desc        bool
	}{
		{"top5-desc", 0, 5, true},
		{"window-asc", 3, 4, false},
		{"skip-only", 4, -1, true},
		{"limit0", 2, 0, false},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			n := NewTopKNode(nil, scoreKeyFns, []bool{cfg.desc}, cfg.skip, cfg.limit)
			col := &collector{}
			n.addSucc(col, 0)

			live := make(map[string]struct {
				row  value.Row
				mult int
			})
			names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
			for step := 0; step < 400; step++ {
				var batch []Delta
				for b := 0; b < 1+r.Intn(3); b++ {
					name := names[r.Intn(len(names))]
					score := int64(r.Intn(4)) // heavy ties
					row := scoreRow(name, score)
					k := value.RowKey(row)
					e := live[k]
					var mult int
					if e.mult > 0 && r.Intn(2) == 0 {
						mult = -1 - r.Intn(e.mult)
						if -mult > e.mult {
							mult = -e.mult
						}
					} else {
						mult = 1 + r.Intn(2)
					}
					e.row = row
					e.mult += mult
					if e.mult == 0 {
						delete(live, k)
					} else {
						live[k] = e
					}
					batch = append(batch, Delta{Row: row, Mult: mult})
				}
				n.Apply(0, batch)

				want := refWindow(live, cfg.desc, cfg.skip, cfg.limit)
				got := col.net()
				if len(got) != len(want) {
					t.Fatalf("step %d: emitted window %v, want %v", step, got, want)
				}
				for k, m := range want {
					if got[k] != m {
						t.Fatalf("step %d: row %q visible %d, want %d (window %v)", step, k, got[k], m, got)
					}
				}
			}
			if n.memoryEntries() != len(live) {
				t.Fatalf("memoryEntries = %d, want %d", n.memoryEntries(), len(live))
			}
		})
	}
}

// TestTopKNodeSeed verifies replay seeding: after a populated run, Seed
// into a fresh collector must deliver exactly the visible window.
func TestTopKNodeSeed(t *testing.T) {
	n := NewTopKNode(nil, scoreKeyFns, []bool{true}, 1, 3)
	col := &collector{}
	n.addSucc(col, 0)
	var batch []Delta
	for i := 0; i < 8; i++ {
		batch = append(batch, Delta{Row: scoreRow(fmt.Sprintf("p%d", i), int64(i%3)), Mult: 1 + i%2})
	}
	n.Apply(0, batch)

	seeded := &collector{}
	n.Seed(succ{node: seeded, port: 0})
	want, got := col.net(), seeded.net()
	if len(want) != len(got) {
		t.Fatalf("seed bag %v, want %v", got, want)
	}
	for k, m := range want {
		if got[k] != m {
			t.Fatalf("seed bag %v, want %v", got, want)
		}
	}
}
