package rete

import (
	"testing"

	"pgiv/internal/expr"
	"pgiv/internal/value"
)

// collector records every delta batch it receives.
type collector struct {
	deltas []Delta
}

func (c *collector) Apply(port int, ds []Delta) { c.deltas = append(c.deltas, ds...) }

func (c *collector) net() map[string]int {
	m := make(map[string]int)
	for _, d := range c.deltas {
		m[value.RowKey(d.Row)] += d.Mult
	}
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
	return m
}

func row(vals ...int64) value.Row {
	r := make(value.Row, len(vals))
	for i, v := range vals {
		r[i] = value.NewInt(v)
	}
	return r
}

func TestMemoryCounts(t *testing.T) {
	m := newMemory()
	old, new := m.apply(row(1), 2)
	if old != 0 || new != 2 {
		t.Errorf("apply = %d, %d", old, new)
	}
	old, new = m.apply(row(1), -2)
	if old != 2 || new != 0 {
		t.Errorf("apply = %d, %d", old, new)
	}
	if m.size() != 0 {
		t.Error("entry not deleted at zero")
	}
	m.apply(row(2), 1)
	m.apply(row(3), 3)
	if got := len(m.rows()); got != 4 {
		t.Errorf("rows with multiplicity = %d, want 4", got)
	}
}

func TestJoinNodeCounting(t *testing.T) {
	// Join on first column; right keeps its second column.
	j := NewJoinNode([]int{0}, []int{0}, []int{1})
	sink := &collector{}
	j.addSucc(sink, 0)

	j.Apply(0, []Delta{{Row: row(1, 10), Mult: 1}})
	if len(sink.net()) != 0 {
		t.Fatal("no right rows yet")
	}
	j.Apply(1, []Delta{{Row: row(1, 100), Mult: 2}})
	// Expect (1,10,100) with multiplicity 2.
	net := sink.net()
	if net[value.RowKey(row(1, 10, 100))] != 2 {
		t.Fatalf("net = %v", net)
	}
	// Another left row with multiplicity 3 joins against count 2.
	j.Apply(0, []Delta{{Row: row(1, 11), Mult: 3}})
	if sink.net()[value.RowKey(row(1, 11, 100))] != 6 {
		t.Fatalf("net = %v", sink.net())
	}
	// Retract the right side entirely; everything cancels.
	j.Apply(1, []Delta{{Row: row(1, 100), Mult: -2}})
	if len(sink.net()) != 0 {
		t.Fatalf("net after retraction = %v", sink.net())
	}
	if j.memoryEntries() != 2 {
		t.Errorf("memory entries = %d", j.memoryEntries())
	}
}

func TestSelfJoinViaSharedInput(t *testing.T) {
	// The same delta batch applied to both ports (self-join R ⋈ R on col
	// 0) must equal |R.key|^2 rows.
	j := NewJoinNode([]int{0}, []int{0}, []int{1})
	sink := &collector{}
	j.addSucc(sink, 0)
	batch := []Delta{{Row: row(1, 7), Mult: 1}}
	j.Apply(0, batch)
	j.Apply(1, batch)
	if sink.net()[value.RowKey(row(1, 7, 7))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	batch2 := []Delta{{Row: row(1, 8), Mult: 1}}
	j.Apply(0, batch2)
	j.Apply(1, batch2)
	// Now R = {(1,7),(1,8)}; R⋈R has 4 rows.
	total := 0
	for _, v := range sink.net() {
		total += v
	}
	if total != 4 {
		t.Fatalf("self-join total = %d, net %v", total, sink.net())
	}
}

func TestDedupNodeTransitions(t *testing.T) {
	d := NewDedupNode()
	sink := &collector{}
	d.addSucc(sink, 0)
	d.Apply(0, []Delta{{Row: row(1), Mult: 1}})
	d.Apply(0, []Delta{{Row: row(1), Mult: 2}}) // no new emission
	if sink.net()[value.RowKey(row(1))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	d.Apply(0, []Delta{{Row: row(1), Mult: -3}}) // back to zero: retract
	if len(sink.net()) != 0 {
		t.Fatalf("net = %v", sink.net())
	}
}

func TestExistsNodeSemi(t *testing.T) {
	n := NewExistsNode([]int{0}, []int{0}, false)
	sink := &collector{}
	n.addSucc(sink, 0)
	n.Apply(0, []Delta{{Row: row(1, 5), Mult: 1}}) // suppressed: no right
	if len(sink.net()) != 0 {
		t.Fatal("semijoin leaked without right match")
	}
	n.Apply(1, []Delta{{Row: row(1), Mult: 1}}) // activates key 1
	if sink.net()[value.RowKey(row(1, 5))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(1, []Delta{{Row: row(1), Mult: 1}}) // still active, no change
	if sink.net()[value.RowKey(row(1, 5))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(1, []Delta{{Row: row(1), Mult: -2}}) // deactivates
	if len(sink.net()) != 0 {
		t.Fatalf("net = %v", sink.net())
	}
}

func TestExistsNodeAnti(t *testing.T) {
	n := NewExistsNode([]int{0}, []int{0}, true)
	sink := &collector{}
	n.addSucc(sink, 0)
	n.Apply(0, []Delta{{Row: row(1, 5), Mult: 1}}) // live: no right match
	if sink.net()[value.RowKey(row(1, 5))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(1, []Delta{{Row: row(1), Mult: 1}}) // kills it
	if len(sink.net()) != 0 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(0, []Delta{{Row: row(2, 6), Mult: 1}}) // different key: live
	n.Apply(1, []Delta{{Row: row(1), Mult: -1}})   // revives key 1
	net := sink.net()
	if net[value.RowKey(row(1, 5))] != 1 || net[value.RowKey(row(2, 6))] != 1 {
		t.Fatalf("net = %v", net)
	}
}

func TestOuterJoinNodePaddingFlips(t *testing.T) {
	// Left outer join on the first column; the right side keeps its
	// second column (null-padded while a key has no right support).
	n := NewOuterJoinNode([]int{0}, []int{0}, []int{1})
	sink := &collector{}
	n.addSucc(sink, 0)
	padded := value.Row{value.NewInt(1), value.NewInt(5), value.Null}

	n.Apply(0, []Delta{{Row: row(1, 5), Mult: 1}}) // no match yet: padded
	if sink.net()[value.RowKey(padded)] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(1, []Delta{{Row: row(1, 100), Mult: 2}}) // matches appear: flip
	net := sink.net()
	if net[value.RowKey(padded)] != 0 {
		t.Fatalf("padding survived a live key: %v", net)
	}
	if net[value.RowKey(row(1, 5, 100))] != 2 {
		t.Fatalf("net = %v", net)
	}
	n.Apply(1, []Delta{{Row: row(1, 101), Mult: 1}}) // second match: no flip
	if sink.net()[value.RowKey(row(1, 5, 101))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(1, []Delta{{Row: row(1, 100), Mult: -2}}) // partial retract: still live
	net = sink.net()
	if net[value.RowKey(row(1, 5, 100))] != 0 || net[value.RowKey(padded)] != 0 {
		t.Fatalf("net = %v", net)
	}
	n.Apply(1, []Delta{{Row: row(1, 101), Mult: -1}}) // support hits zero: padding returns
	net = sink.net()
	if net[value.RowKey(padded)] != 1 || len(net) != 1 {
		t.Fatalf("net = %v", net)
	}
	// A left row under a key with no right support is padded with its
	// own multiplicity; retracting it cancels exactly.
	n.Apply(0, []Delta{{Row: row(2, 6), Mult: 3}})
	padded2 := value.Row{value.NewInt(2), value.NewInt(6), value.Null}
	if sink.net()[value.RowKey(padded2)] != 3 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(0, []Delta{{Row: row(2, 6), Mult: -3}})
	n.Apply(0, []Delta{{Row: row(1, 5), Mult: -1}})
	if len(sink.net()) != 0 {
		t.Fatalf("net = %v", sink.net())
	}
	if n.memoryEntries() != 0 {
		t.Errorf("memoryEntries = %d after full retraction", n.memoryEntries())
	}
}

func TestOuterJoinNodeSeed(t *testing.T) {
	n := NewOuterJoinNode([]int{0}, []int{0}, []int{1})
	pre := &collector{}
	n.addSucc(pre, 0)
	n.Apply(0, []Delta{{Row: row(1, 5), Mult: 1}})
	n.Apply(1, []Delta{{Row: row(1, 100), Mult: 2}})
	n.Apply(0, []Delta{{Row: row(2, 6), Mult: 3}})

	// A late attachment seeds from memory: combined rows for live keys,
	// padded rows for the rest — matching what pre saw, netted.
	late := &collector{}
	n.Seed(succ{node: late, port: 0})
	want := pre.net()
	got := late.net()
	if len(got) != len(want) {
		t.Fatalf("seed net %v, live net %v", got, want)
	}
	for k, m := range want {
		if got[k] != m {
			t.Fatalf("seed net %v, live net %v", got, want)
		}
	}
}

func TestTransformNodePreservesMultiplicity(t *testing.T) {
	n := NewTransformNode(func(r value.Row, emit func(value.Row)) {
		if r[0].Int() < 0 {
			return
		}
		emit(r)
		emit(r) // duplicate
	})
	sink := &collector{}
	n.addSucc(sink, 0)
	n.Apply(0, []Delta{{Row: row(1), Mult: 3}, {Row: row(-1), Mult: 5}})
	if sink.net()[value.RowKey(row(1))] != 6 {
		t.Fatalf("net = %v", sink.net())
	}
}

func TestAggregateNodeIncremental(t *testing.T) {
	// Group by column 0, count(*) and sum(column 1).
	groupFn := expr.Fn(func(env *expr.Env) value.Value { return env.Row[0] })
	sumFn := expr.Fn(func(env *expr.Env) value.Value { return env.Row[1] })
	n := NewAggregateNode(nil, []expr.Fn{groupFn}, []AggSpec{
		{Func: "count"},
		{Func: "sum", ArgFn: sumFn},
	})
	sink := &collector{}
	n.addSucc(sink, 0)

	n.Apply(0, []Delta{{Row: row(1, 10), Mult: 1}, {Row: row(1, 20), Mult: 1}})
	if sink.net()[value.RowKey(row(1, 2, 30))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(0, []Delta{{Row: row(1, 10), Mult: -1}})
	if sink.net()[value.RowKey(row(1, 1, 20))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	// Group vanishes entirely.
	n.Apply(0, []Delta{{Row: row(1, 20), Mult: -1}})
	if len(sink.net()) != 0 {
		t.Fatalf("net = %v", sink.net())
	}
}

func TestAggregateNodeGlobalDefaults(t *testing.T) {
	n := NewAggregateNode(nil, nil, []AggSpec{{Func: "count"}})
	sink := &collector{}
	n.addSucc(sink, 0)
	n.EmitInitial()
	if sink.net()[value.RowKey(row(0))] != 1 {
		t.Fatalf("initial net = %v", sink.net())
	}
	n.Apply(0, []Delta{{Row: row(7), Mult: 2}})
	if sink.net()[value.RowKey(row(2))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
	n.Apply(0, []Delta{{Row: row(7), Mult: -2}})
	// Global aggregate returns to the default row, never disappears.
	if sink.net()[value.RowKey(row(0))] != 1 {
		t.Fatalf("net = %v", sink.net())
	}
}

func TestProductionRowsAndSubscription(t *testing.T) {
	p := NewProduction()
	var seen int
	p.Subscribe(func(ds []Delta) { seen += len(ds) })
	p.Apply(0, []Delta{{Row: row(2), Mult: 1}, {Row: row(1), Mult: 2}})
	rows := p.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// Canonical order with multiplicities expanded.
	if !value.EqualRows(rows[0], row(1)) || !value.EqualRows(rows[1], row(1)) || !value.EqualRows(rows[2], row(2)) {
		t.Fatalf("row order = %v", rows)
	}
	if p.DistinctCount() != 2 || seen != 2 {
		t.Errorf("distinct = %d, deltas seen = %d", p.DistinctCount(), seen)
	}
}

func TestEmitterRemoveSucc(t *testing.T) {
	var e emitter
	a, b := &collector{}, &collector{}
	e.addSucc(a, 0)
	e.addSucc(b, 0)
	e.emit([]Delta{{Row: row(1), Mult: 1}})
	e.removeSucc(a, 0)
	e.emit([]Delta{{Row: row(2), Mult: 1}})
	if len(a.deltas) != 1 || len(b.deltas) != 2 {
		t.Errorf("a=%d b=%d", len(a.deltas), len(b.deltas))
	}
}
