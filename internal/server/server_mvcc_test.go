package server

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgiv"
	"pgiv/client"
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
)

// startServerOpts is startServer with server options (e.g.
// WithSerializedReads for baseline-parity tests).
func startServerOpts(t *testing.T, opts ...Option) (string, *graph.Graph, *ivm.Engine) {
	t.Helper()
	g := graph.New()
	engine := ivm.NewEngine(g)
	srv := New(g, engine, opts...)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		engine.Close()
	})
	return addr.String(), g, engine
}

// loadReplyChain builds a Post followed by a REPLY chain of n Comm
// vertices — the all-pairs variable-length-path query over it costs
// O(n^3) path steps, which is how the tests below manufacture an
// arbitrarily slow read.
func loadReplyChain(t *testing.T, g *graph.Graph, n int) {
	t.Helper()
	err := g.Batch(func(tx *graph.Tx) error {
		prev := tx.AddVertex([]string{"Post"}, pgiv.Props{"lang": pgiv.Str("en")})
		for i := 0; i < n; i++ {
			c := tx.AddVertex([]string{"Comm"}, pgiv.Props{"lang": pgiv.Str("en")})
			if _, err := tx.AddEdge(prev, c, "REPLY", nil); err != nil {
				return err
			}
			prev = c
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

const slowQuery = "MATCH (a:Comm)-[:REPLY*]->(b:Comm) RETURN count(*)"

// growUntilSlow adds disjoint REPLY chains until slowQuery takes at
// least minDur on this machine, and returns the measured duration. The
// increments are constant-size so the result overshoots minDur by at
// most roughly one increment's cost — important under -race, where a
// single chain is already expensive.
func growUntilSlow(t *testing.T, g *graph.Graph, c *client.Client, minDur time.Duration) time.Duration {
	t.Helper()
	for chains := 1; ; chains++ {
		loadReplyChain(t, g, 200)
		t0 := time.Now()
		if _, _, err := c.Query(slowQuery, nil); err != nil {
			t.Fatal(err)
		}
		d := time.Since(t0)
		if d >= minDur || chains >= 40 {
			return d
		}
	}
}

// TestSlowReadDoesNotDelayCommit is the PR's commit-latency regression
// test: a multi-hundred-millisecond ad-hoc read is in flight, and a
// write statement on another connection commits and returns while the
// read is still running. Under the old serialized server this is
// impossible — the exec would queue behind the whole scan.
func TestSlowReadDoesNotDelayCommit(t *testing.T) {
	addr, g, _ := startServerOpts(t)

	reader, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	writer, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	scanDur := growUntilSlow(t, g, reader, 300*time.Millisecond)

	var readDone atomic.Bool
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		close(started)
		_, _, err := reader.Query(slowQuery, nil)
		readDone.Store(true)
		errc <- err
	}()
	<-started
	time.Sleep(scanDur / 10) // let the scan get well under way

	t0 := time.Now()
	if _, _, err := writer.Exec("CREATE (:Post {lang: 'zz'})", nil); err != nil {
		t.Fatal(err)
	}
	commitDur := time.Since(t0)
	if readDone.Load() {
		t.Fatalf("slow read (%v) finished before the commit (%v) — cannot tell whether the commit waited", scanDur, commitDur)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// The commit overlapped the scan. It may pay CPU sharing with the
	// scan, but must not have waited the scan out.
	if commitDur > scanDur/2 {
		t.Fatalf("commit took %v while a %v read was in flight — looks serialized", commitDur, scanDur)
	}
}

// TestRowsRoundTrip exercises the wait-free view read op: contents match
// an ad-hoc query of the same pattern, and the sequence number is
// read-your-writes with respect to the connection's own exec.
func TestRowsRoundTrip(t *testing.T) {
	addr, _, _ := startServerOpts(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.RegisterView("langs", "MATCH (p:Post) RETURN p.lang, count(*)"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Rows("nosuch"); err == nil {
		t.Fatal("Rows on unknown view should fail")
	}

	var lastSeq uint64
	for i := 0; i < 5; i++ {
		_, seq, err := c.Exec(fmt.Sprintf("CREATE (:Post {lang: 'l%d'})", i%2), nil)
		if err != nil {
			t.Fatal(err)
		}
		schema, rows, rseq, err := c.Rows("langs")
		if err != nil {
			t.Fatal(err)
		}
		if rseq < seq {
			t.Fatalf("Rows seq %d older than own exec seq %d (no read-your-writes)", rseq, seq)
		}
		if rseq < lastSeq {
			t.Fatalf("Rows seq went backwards: %d after %d", rseq, lastSeq)
		}
		lastSeq = rseq
		_, qrows, err := c.Query("MATCH (p:Post) RETURN p.lang, count(*)", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rowKeys(rows), rowKeys(qrows)) {
			t.Fatalf("view rows %v != ad-hoc query rows %v (schema %v)", rowKeys(rows), rowKeys(qrows), schema)
		}
	}
}

// TestDisconnectMidReadReleasesPin kills the client while its slow read
// is still evaluating server-side and checks the pinned epoch is
// released: no reader refcount may leak, else old epochs are retained
// forever.
func TestDisconnectMidReadReleasesPin(t *testing.T) {
	addr, g, _ := startServerOpts(t)

	reader, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	scanDur := growUntilSlow(t, g, reader, 300*time.Millisecond)

	done := make(chan struct{})
	go func() {
		defer close(done)
		reader.Query(slowQuery, nil) // will fail: the connection dies under it
	}()
	time.Sleep(scanDur / 10)
	if st := g.MVCCStats(); st.PinnedReaders == 0 {
		t.Fatal("expected the in-flight read to hold a pin")
	}
	reader.Close()
	<-done

	// The abandoned scan still runs to completion server-side; give it
	// ample time (scaled to its measured cost) to finish and unpin.
	deadline := time.Now().Add(10*scanDur + 30*time.Second)
	for {
		st := g.MVCCStats()
		if st.PinnedReaders == 0 && st.PinnedEpochs == 0 {
			if st.RetainedNodes != st.LatestNodes {
				t.Fatalf("pins released but %d nodes retained beyond the %d live ones", st.RetainedNodes, st.LatestNodes)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pin leaked after disconnect: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentReadersSeeNoTornCommits hammers the server with paired
// creates ("CREATE (:X), (:X)" — the invariant is an even count) while
// readers mix ad-hoc queries and view reads. Any odd count is a torn
// commit; any non-monotonic count or sequence on one connection breaks
// snapshot ordering.
func TestConcurrentReadersSeeNoTornCommits(t *testing.T) {
	addr, _, _ := startServerOpts(t)

	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if _, err := setup.RegisterView("xs", "MATCH (n:X) RETURN count(*)"); err != nil {
		t.Fatal(err)
	}

	const commits = 60
	const nReaders = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < commits; i++ {
			if _, _, err := setup.Exec("CREATE (:X), (:X)", nil); err != nil {
				t.Errorf("exec: %v", err)
				return
			}
		}
	}()

	count := func(rows []pgiv.Row) (int64, bool) {
		if len(rows) == 0 {
			return 0, true // view not yet populated / empty graph
		}
		if len(rows) != 1 || len(rows[0]) != 1 {
			return 0, false
		}
		return rows[0][0].Int(), true
	}
	for r := 0; r < nReaders; r++ {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(r int, c *client.Client) {
			defer wg.Done()
			var lastCount int64
			var lastSeq uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var rows []pgiv.Row
				var seq uint64
				var err error
				if i%2 == 0 {
					_, rows, seq, err = c.QueryAt("MATCH (n:X) RETURN count(*)", nil)
				} else {
					_, rows, seq, err = c.Rows("xs")
				}
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				n, ok := count(rows)
				if !ok {
					t.Errorf("reader %d: unexpected row shape %v", r, rows)
					return
				}
				if n%2 != 0 {
					t.Errorf("reader %d: torn commit visible: count(*) = %d (odd)", r, n)
					return
				}
				if n < lastCount {
					t.Errorf("reader %d: count went backwards: %d after %d", r, n, lastCount)
					return
				}
				if seq < lastSeq {
					t.Errorf("reader %d: seq went backwards: %d after %d", r, seq, lastSeq)
					return
				}
				lastCount, lastSeq = n, seq
			}
		}(r, c)
	}
	wg.Wait()

	_, rows, _, err := setup.Rows("xs")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := count(rows); n != 2*commits {
		t.Fatalf("final count %d, want %d", n, 2*commits)
	}
}

// TestSerializedParity runs the same script against a
// WithSerializedReads server and the default MVCC server: every
// response-visible behaviour (schemas, rows, stats) must match — the
// option changes locking, not semantics.
func TestSerializedParity(t *testing.T) {
	type obs struct {
		schema []string
		rows   []string
	}
	script := func(t *testing.T, addr string) []obs {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.RegisterView("langs", "MATCH (p:Post) RETURN p.lang, count(*)"); err != nil {
			t.Fatal(err)
		}
		stmts := []string{
			"CREATE (:Post {lang: 'en'}), (:Post {lang: 'de'})",
			"CREATE (:Post {lang: 'en'})-[:REPLY]->(:Comm {lang: 'en'})",
			"MATCH (p:Post {lang: 'de'}) SET p.lang = 'fr'",
		}
		var out []obs
		for _, stmt := range stmts {
			if _, _, err := c.Exec(stmt, nil); err != nil {
				t.Fatal(err)
			}
			schema, rows, _, err := c.Rows("langs")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, obs{schema, rowKeys(rows)})
			qschema, qrows, err := c.Query("MATCH (p:Post)-[:REPLY]->(c) RETURN p.lang, c.lang", nil)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, obs{qschema, rowKeys(qrows)})
		}
		return out
	}

	mvccAddr, _, _ := startServerOpts(t)
	serAddr, _, _ := startServerOpts(t, WithSerializedReads())
	got, want := script(t, mvccAddr), script(t, serAddr)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mvcc and serialized servers disagree:\nmvcc:       %v\nserialized: %v", got, want)
	}
}
