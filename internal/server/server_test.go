package server

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"pgiv"
	"pgiv/client"
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/value"
)

// startServer spins up a server on a loopback port and returns its
// address plus the underlying graph and engine.
func startServer(t *testing.T) (string, *graph.Graph, *ivm.Engine) {
	t.Helper()
	g := graph.New()
	engine := ivm.NewEngine(g)
	srv := New(g, engine)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		engine.Close()
	})
	return addr.String(), g, engine
}

// collector buffers delta batches from a subscription.
type collector struct {
	mu      sync.Mutex
	batches []client.DeltaBatch
}

func (c *collector) add(b client.DeltaBatch) {
	c.mu.Lock()
	c.batches = append(c.batches, b)
	c.mu.Unlock()
}

func (c *collector) snapshot() []client.DeltaBatch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]client.DeltaBatch(nil), c.batches...)
}

func rowKeys(rows []pgiv.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.RowKey(r)
	}
	sort.Strings(out)
	return out
}

// TestAcceptance is the PR's acceptance criterion: a single Cypher write
// statement sent over the wire mutates the graph and delivers exactly
// one coalesced OnChange batch per commit to every subscribed client,
// with view contents identical to the equivalent graph.Mutator batch.
func TestAcceptance(t *testing.T) {
	addr, _, engine := startServer(t)

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, err := c1.RegisterView("langs", "MATCH (p:Post) RETURN p.lang, count(*)"); err != nil {
		t.Fatal(err)
	}

	var col1, col2 collector
	if _, _, _, err := c1.Subscribe("langs", col1.add); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c2.Subscribe("langs", col2.add); err != nil {
		t.Fatal(err)
	}

	// One statement, several changes: must arrive as ONE batch per client.
	st, seq, err := c1.Exec("CREATE (:Post {lang: 'en'}), (:Post {lang: 'en'}), (:Post {lang: 'de'})", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesCreated != 3 {
		t.Fatalf("stats = %+v, want 3 nodes created", st)
	}
	if seq == 0 {
		t.Fatal("commit produced no sequence number")
	}

	// A second commit so we can observe batch boundaries and seq order.
	if _, _, err := c2.Exec("MATCH (p:Post {lang: 'de'}) SET p.lang = 'en'", nil); err != nil {
		t.Fatal(err)
	}

	// Synchronise: a ping's response is ordered after all delta frames the
	// commits produced on each connection.
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}

	for i, col := range []*collector{&col1, &col2} {
		bs := col.snapshot()
		if len(bs) != 2 {
			t.Fatalf("client %d got %d batches, want 2 (one per commit): %+v", i+1, len(bs), bs)
		}
		if bs[0].Seq != seq || bs[1].Seq <= bs[0].Seq {
			t.Fatalf("client %d seq order broken: %d then %d (exec seq %d)", i+1, bs[0].Seq, bs[1].Seq, seq)
		}
		// Commit 1: {en:2} and {de:1} appear — 2 positive deltas, coalesced.
		if len(bs[0].Deltas) != 2 {
			t.Fatalf("client %d first batch has %d deltas, want 2: %+v", i+1, len(bs[0].Deltas), bs[0])
		}
	}

	// View contents over the wire must equal the equivalent Mutator batch.
	want := pgiv.NewGraph()
	if err := want.Batch(func(tx *graph.Tx) error {
		for _, lang := range []string{"en", "en", "de"} {
			tx.AddVertex([]string{"Post"}, map[string]value.Value{"lang": value.NewString(lang)})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := want.Batch(func(tx *graph.Tx) error {
		for _, v := range want.VerticesByLabel("Post") {
			if s := v.Prop("lang"); !s.IsNull() && s.Str() == "de" {
				tx.SetVertexProperty(v.ID, "lang", value.NewString("en"))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wantEngine := ivm.NewEngine(want)
	defer wantEngine.Close()
	wantView, err := wantEngine.RegisterView("langs", "MATCH (p:Post) RETURN p.lang, count(*)")
	if err != nil {
		t.Fatal(err)
	}

	v, ok := engine.View("langs")
	if !ok {
		t.Fatal("view vanished")
	}
	got := rowKeys(v.Rows())
	wantRows := rowKeys(wantView.Rows())
	if len(got) != len(wantRows) {
		t.Fatalf("row count: wire %d vs mutator %d", len(got), len(wantRows))
	}
	for i := range got {
		if got[i] != wantRows[i] {
			t.Fatalf("row %d differs: wire %q vs mutator %q", i, got[i], wantRows[i])
		}
	}
}

// TestSubscribeReplaySeed checks that Subscribe's rows + subsequent
// batches reconstruct the view: applying the batches on top of the
// returned rows yields the live view contents.
func TestSubscribeReplaySeed(t *testing.T) {
	addr, _, engine := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.RegisterView("people", "MATCH (n:Person) RETURN n.name"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec("CREATE (:Person {name: 'Ann'}), (:Person {name: 'Bob'})", nil); err != nil {
		t.Fatal(err)
	}

	var col collector
	_, seed, seq, err := c.Subscribe("people", col.add)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) != 2 {
		t.Fatalf("seed rows = %d, want 2", len(seed))
	}
	if seq == 0 {
		t.Fatal("subscribe seq = 0 after a commit")
	}

	if _, _, err := c.Exec("MATCH (n:Person {name: 'Bob'}) DETACH DELETE n", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec("CREATE (:Person {name: 'Cec'})", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Replay: multiset of seed rows + deltas.
	counts := map[string]int{}
	for _, r := range seed {
		counts[value.RowKey(r)]++
	}
	last := seq
	for _, b := range col.snapshot() {
		if b.Seq <= last {
			t.Fatalf("batch seq %d not after %d", b.Seq, last)
		}
		last = b.Seq
		for _, d := range b.Deltas {
			counts[value.RowKey(d.Row)] += d.Mult
		}
	}
	var replayed []string
	for k, n := range counts {
		if n < 0 {
			t.Fatalf("negative multiplicity for %q", k)
		}
		for i := 0; i < n; i++ {
			replayed = append(replayed, k)
		}
	}
	sort.Strings(replayed)

	v, _ := engine.View("people")
	live := rowKeys(v.Rows())
	if fmt.Sprint(replayed) != fmt.Sprint(live) {
		t.Fatalf("replay %v != live %v", replayed, live)
	}
}

// TestServerOps covers query, views, drop, unsubscribe and error paths.
func TestServerOps(t *testing.T) {
	addr, _, _ := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec("CREATE (:X {n: $n})", pgiv.Props{"n": pgiv.Int(7)}); err != nil {
		t.Fatal(err)
	}
	schema, rows, err := c.Query("MATCH (x:X) RETURN x.n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 1 || len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Fatalf("query result: %v %v", schema, rows)
	}

	// Reads must be rejected by exec, writes by query/register.
	if _, _, err := c.Exec("MATCH (n) RETURN n", nil); err == nil {
		t.Fatal("exec accepted a read")
	}
	if _, _, err := c.Query("CREATE (:Y)", nil); err == nil {
		t.Fatal("query accepted a write")
	}
	if _, err := c.RegisterView("w", "CREATE (:Y)"); err == nil {
		t.Fatal("register accepted a write")
	}

	if _, err := c.RegisterView("xs", "MATCH (x:X) RETURN x"); err != nil {
		t.Fatal(err)
	}
	vs, err := c.Views()
	if err != nil || len(vs) != 1 || vs[0] != "xs" {
		t.Fatalf("views = %v, %v", vs, err)
	}

	var col collector
	if _, _, _, err := c.Subscribe("xs", col.add); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe("xs"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec("CREATE (:X {n: 8})", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if n := len(col.snapshot()); n != 0 {
		t.Fatalf("got %d batches after unsubscribe", n)
	}

	if err := c.DropView("xs"); err != nil {
		t.Fatal(err)
	}
	if vs, _ := c.Views(); len(vs) != 0 {
		t.Fatalf("views after drop: %v", vs)
	}
	if _, _, _, err := c.Subscribe("xs", col.add); err == nil {
		t.Fatal("subscribed to a dropped view")
	}

	// A failed statement must not leak a commit or deltas: the SET takes
	// effect inside the transaction, then the MERGE's null constraint
	// errors and the whole statement rolls back.
	if _, err := c.RegisterView("xs", "MATCH (x:X) RETURN x.n"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Subscribe("xs", col.add); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec("MATCH (x:X) SET x.n = 99 MERGE (:Y {k: x.nope})", nil); err == nil {
		t.Fatal("bad statement succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if n := len(col.snapshot()); n != 0 {
		t.Fatalf("failed statement leaked %d delta batches", n)
	}
}
