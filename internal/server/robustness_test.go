package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pgiv"
	"pgiv/client"
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/protocol"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// addPerson commits one uniquely named Person through a client (commits
// must flow through the server while it is subscribed to the graph: its
// subscriber bookkeeping is guarded by the request lock).
func addPerson(t *testing.T, w *client.Client, i int) {
	t.Helper()
	if _, _, err := w.Exec(fmt.Sprintf("CREATE (:Person {name: 'p%03d'})", i), nil); err != nil {
		t.Fatal(err)
	}
}

// subscriberSeqs returns how many connections are subscribed to view on s.
func (s *Server) subscriberCount(view string) int {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return len(s.subs[view])
}

// TestReconnectResumesSubscription kills the server under a subscribed
// reconnecting client, restarts it on the same address, and requires the
// delta stream to resume with no gap and no duplicate: every commit's
// row arrives exactly once, seqs strictly increasing across the outage.
func TestReconnectResumesSubscription(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	srv1 := New(g, engine)
	addrA, err := srv1.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := addrA.String()
	if _, err := engine.RegisterView("people", "MATCH (p:Person) RETURN p.name"); err != nil {
		t.Fatal(err)
	}

	var (
		mu      sync.Mutex
		batches []client.DeltaBatch
		resyncs int
	)
	c, err := client.Dial(addr, client.WithReconnect(client.ReconnectConfig{
		MinBackoff: 5 * time.Millisecond,
		OnResync: func(string, []string, []pgiv.Row, uint64) {
			mu.Lock()
			resyncs++
			mu.Unlock()
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Subscribe("people", func(b client.DeltaBatch) {
		mu.Lock()
		batches = append(batches, b)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	w1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		addPerson(t, w1, i)
	}
	waitFor(t, 5*time.Second, "first 5 batches", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(batches) >= 5
	})
	w1.Close()

	// Kill the server abruptly (no goodbye), restart on the same port
	// with the same graph + engine, and wait for the client to redial
	// and re-subscribe before committing again — so the outage loses no
	// commits and an exact resume is possible.
	srv1.Close()
	srv2 := New(g, engine)
	defer srv2.Close()
	waitFor(t, 5*time.Second, "port rebind", func() bool {
		_, err := srv2.ListenAndServe(addr)
		return err == nil
	})
	waitFor(t, 10*time.Second, "resubscription", func() bool {
		return srv2.subscriberCount("people") > 0
	})

	w2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	for i := 5; i < 10; i++ {
		addPerson(t, w2, i)
	}
	waitFor(t, 5*time.Second, "all 10 batches", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(batches) >= 10
	})

	mu.Lock()
	defer mu.Unlock()
	if resyncs != 0 {
		t.Fatalf("lossless outage still forced %d resync(s)", resyncs)
	}
	seen := map[string]int{}
	var lastSeq uint64
	for _, b := range batches {
		if b.Seq <= lastSeq {
			t.Fatalf("batch seq %d after %d: duplicate or reordered", b.Seq, lastSeq)
		}
		lastSeq = b.Seq
		for _, d := range b.Deltas {
			if d.Mult != 1 {
				t.Fatalf("unexpected delta mult %d", d.Mult)
			}
			seen[d.Row[0].Str()]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("saw %d distinct rows, want 10: %v", len(seen), seen)
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("row %q delivered %d times", name, n)
		}
	}
}

// TestReconnectResyncAfterMissedCommits commits while the server is down
// (the engine keeps maintaining views), so the reconnecting subscriber
// cannot resume exactly: it must get one OnResync carrying the view's
// full rows at the new sequence, and the stream continues from there.
func TestReconnectResyncAfterMissedCommits(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	srv1 := New(g, engine)
	addrA, err := srv1.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := addrA.String()
	if _, err := engine.RegisterView("people", "MATCH (p:Person) RETURN p.name"); err != nil {
		t.Fatal(err)
	}

	type resync struct {
		rows int
		seq  uint64
	}
	var (
		mu      sync.Mutex
		batches []client.DeltaBatch
		resyncs []resync
	)
	c, err := client.Dial(addr, client.WithReconnect(client.ReconnectConfig{
		MinBackoff: 5 * time.Millisecond,
		OnResync: func(view string, _ []string, rows []pgiv.Row, seq uint64) {
			mu.Lock()
			resyncs = append(resyncs, resync{rows: len(rows), seq: seq})
			mu.Unlock()
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Subscribe("people", func(b client.DeltaBatch) {
		mu.Lock()
		batches = append(batches, b)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	w1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	addPerson(t, w1, 0)
	waitFor(t, 5*time.Second, "first batch", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(batches) >= 1
	})
	w1.Close()

	srv1.Close()
	// Missed while disconnected: the server is down (and unsubscribed
	// from the graph), so these commits go directly to the graph and
	// their deltas are gone for good.
	for _, i := range []int{1, 2} {
		err := g.Batch(func(tx *graph.Tx) error {
			tx.AddVertex([]string{"Person"}, pgiv.Props{"name": pgiv.Str(fmt.Sprintf("p%03d", i))})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	missedSeq := g.Epoch()

	srv2 := New(g, engine)
	defer srv2.Close()
	waitFor(t, 5*time.Second, "port rebind", func() bool {
		_, err := srv2.ListenAndServe(addr)
		return err == nil
	})
	waitFor(t, 10*time.Second, "resubscription", func() bool {
		return srv2.subscriberCount("people") > 0
	})
	w2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	addPerson(t, w2, 3)
	waitFor(t, 5*time.Second, "post-resync batch", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(batches) >= 2
	})

	mu.Lock()
	defer mu.Unlock()
	if len(resyncs) != 1 {
		t.Fatalf("got %d resyncs, want exactly 1: %+v", len(resyncs), resyncs)
	}
	if resyncs[0].rows != 3 || resyncs[0].seq != missedSeq {
		t.Fatalf("resync carried %d rows at seq %d, want 3 rows at seq %d", resyncs[0].rows, resyncs[0].seq, missedSeq)
	}
	last := batches[len(batches)-1]
	if last.Seq <= missedSeq {
		t.Fatalf("post-resync batch seq %d not past resync seq %d", last.Seq, missedSeq)
	}
	if got := last.Deltas[0].Row[0].Str(); got != "p003" {
		t.Fatalf("post-resync delta row %q, want p003", got)
	}
}

// rawSubscribe dials addr with no client machinery, subscribes to view,
// reads the seed response and returns the naked connection.
func rawSubscribe(t *testing.T, addr, view string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	req := &protocol.Message{Type: "req", Req: &protocol.Request{ID: 1, Op: protocol.OpSubscribe, Name: view}}
	if err := protocol.WriteFrame(nc, req); err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.ReadFrame(nc)
	if err != nil || resp.Type != "resp" || resp.Resp.Error != "" {
		t.Fatalf("subscribe: %v %+v", err, resp)
	}
	return nc
}

// TestStalledSubscriberDisconnected subscribes a client that never reads
// its socket, then commits enough large deltas to fill its out channel
// and TCP buffers. Without write deadlines the commit dispatcher would
// block forever on the full channel (backpressure with no exit); with
// WithTimeouts the stalled writer is cut off, the connection detaches,
// and every commit completes promptly. Healthy subscribers keep their
// stream, and no MVCC snapshot pin leaks.
func TestStalledSubscriberDisconnected(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	srv := New(g, engine, WithTimeouts(Timeouts{Write: 200 * time.Millisecond}))
	defer srv.Close()
	addrA, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := addrA.String()
	if _, err := engine.RegisterView("blobs", "MATCH (b:Blob) RETURN b.data"); err != nil {
		t.Fatal(err)
	}

	stalled := rawSubscribe(t, addr, "blobs")
	defer stalled.Close()
	// A healthy subscriber alongside it, to prove the stall is isolated.
	var healthy int
	var mu sync.Mutex
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, _, err := c.Subscribe("blobs", func(b client.DeltaBatch) {
		mu.Lock()
		healthy += len(b.Deltas)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	writer, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	const commits = 400
	blob := strings.Repeat("x", 64<<10)
	start := time.Now()
	for i := 0; i < commits; i++ {
		_, _, err := writer.Exec("CREATE (:Blob {data: $d})",
			pgiv.Props{"d": pgiv.Str(fmt.Sprintf("%d-%s", i, blob))})
		if err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// The dispatcher may stall once, for roughly the write deadline,
	// while the dead subscriber's queue is full; it must not stall per
	// commit or indefinitely.
	if elapsed > 30*time.Second {
		t.Fatalf("%d commits took %v with a stalled subscriber — dispatcher wedged", commits, elapsed)
	}
	waitFor(t, 10*time.Second, "stalled conn detach", func() bool {
		return srv.subscriberCount("blobs") == 1
	})
	waitFor(t, 30*time.Second, "healthy subscriber catches up", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return healthy == commits
	})
	if st := g.MVCCStats(); st.PinnedReaders != 0 || st.PinnedEpochs != 0 {
		t.Fatalf("snapshot pins leaked: %+v", st)
	}
}

// TestReadIdleTimeout: a connection that sends nothing for longer than
// ReadIdle is disconnected server-side.
func TestReadIdleTimeout(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	srv := New(g, engine, WithTimeouts(Timeouts{ReadIdle: 150 * time.Millisecond}))
	defer srv.Close()
	addrA, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", addrA.String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if msg, err := protocol.ReadFrame(nc); err == nil {
		t.Fatalf("idle connection survived: got %+v", msg)
	}
	waitFor(t, 5*time.Second, "idle conn removed", func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.conns) == 0
	})
}

// TestGracefulCloseSendsBye: CloseWithTimeout delivers a "bye" frame to
// each subscriber before the socket drops, and a reconnecting client
// treats it as a deliberate shutdown — it stops redialing.
func TestGracefulCloseSendsBye(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	srv := New(g, engine)
	addrA, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := addrA.String()
	if _, err := engine.RegisterView("people", "MATCH (p:Person) RETURN p.name"); err != nil {
		t.Fatal(err)
	}

	raw := rawSubscribe(t, addr, "people")
	defer raw.Close()
	rec, err := client.Dial(addr, client.WithReconnect(client.ReconnectConfig{MinBackoff: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if _, _, _, err := rec.Subscribe("people", func(client.DeltaBatch) {}); err != nil {
		t.Fatal(err)
	}

	if !srv.CloseWithTimeout(5 * time.Second) {
		t.Fatal("goodbyes did not flush within the deadline")
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := protocol.ReadFrame(raw)
	if err != nil {
		t.Fatalf("expected a bye frame, got read error %v", err)
	}
	if msg.Type != "bye" {
		t.Fatalf("expected bye, got %+v", msg)
	}
	if _, err := protocol.ReadFrame(raw); err == nil {
		t.Fatal("frames after bye")
	}

	// The reconnecting client saw the bye too: its error is terminal and
	// it is not redialing the dead address.
	waitFor(t, 5*time.Second, "client accepts shutdown", func() bool {
		err := rec.Ping()
		return err != nil && strings.Contains(err.Error(), "shut down")
	})
}
