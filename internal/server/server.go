// Package server implements pgivd: a TCP server exposing the incremental
// view maintenance engine over the pgiv wire protocol (package protocol).
//
// Clients send write statements, ad-hoc read queries, view
// registration/drop requests, and view subscriptions. A subscription
// delivers the OnChange contract over the socket: per committed
// transaction, every subscriber of every touched view receives exactly
// one DeltaBatch frame with the commit's coalesced net deltas, stamped
// with the server's monotonic commit sequence number.
//
// Sequencing works by listener ordering on the graph's dispatch chain:
// the engine subscribes at NewEngine, the server subscribes afterwards,
// and the graph notifies listeners in subscription order. By the time the
// server's Apply runs — still synchronously inside Commit — every view's
// OnChange callback has already buffered its batch with the server, so
// Apply fans the batches out stamped with the commit's epoch. A
// subscriber therefore observes batches in commit order with no gaps,
// and the Subscribe response carries the view's current rows plus the
// sequence number they are consistent with (the wire-level analogue of
// the engine's replay seeding).
//
// Concurrency: sequence numbers ARE the graph's commit epochs, and reads
// never touch the write lock. An ad-hoc query pins an epoch snapshot of
// the graph (graph.Snapshot) and evaluates against it; a view read
// (OpRows) loads the view's published (epoch, rows) pair wait-free. Both
// run concurrently with commits and with each other, so a slow read
// never delays a writer and reads scale with connections. Writes, view
// registration/drop and subscription management still serialise on
// execMu, unchanged. WithSerializedReads restores the old
// everything-on-execMu behaviour (the benchmark baseline).
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pgiv/internal/cypher"
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/protocol"
	"pgiv/internal/rete"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
	"pgiv/internal/write"
)

// Server serves one engine over TCP.
type Server struct {
	g      *graph.Graph
	engine *ivm.Engine

	// execMu serialises everything that mutates the graph or the
	// engine's view set: write statements, view registration/drop, and
	// subscription management (Engine methods must not run while a
	// mutation is in flight). Reads do NOT take it (unless serialized):
	// ad-hoc queries evaluate against a pinned epoch snapshot and view
	// reads load published rows, both isolated from half-applied
	// statements by construction.
	execMu sync.Mutex

	// serialized routes reads through execMu like pre-MVCC builds —
	// kept as the measurable baseline behind WithSerializedReads.
	serialized bool

	// noRewrite disables answering ad-hoc queries from materialized view
	// state (the -no-rewrite escape hatch); reads always evaluate from a
	// pinned snapshot.
	noRewrite bool

	// lastSeq is the last stamped commit sequence number — the graph
	// epoch of the latest commit observed by Apply. Guarded by execMu:
	// every commit happens inside it.
	lastSeq uint64

	// subs maps view name -> subscribed connections; hooked marks views
	// whose OnChange dispatcher is installed (views expose no
	// per-callback unsubscribe, so the dispatcher stays for the view's
	// lifetime and consults subs). Both guarded by execMu.
	subs   map[string]map[*conn]bool
	hooked map[string]bool

	// commitBuf accumulates the current commit's per-view batches
	// between the OnChange callbacks and the server's Apply. Only
	// touched inside a commit, which execMu serialises.
	commitBuf []pendingBatch

	// timeouts are the per-connection I/O deadlines (zero fields disable
	// the corresponding deadline). Set at construction, read-only after.
	timeouts Timeouts

	mu     sync.Mutex // guards conns and closed
	conns  map[*conn]bool
	closed bool

	ln net.Listener
	wg sync.WaitGroup
}

type pendingBatch struct {
	view   string
	deltas []protocol.WireDelta
}

// Option configures a Server at construction.
type Option func(*Server)

// Timeouts are the per-connection I/O deadlines. A zero field disables
// that deadline (the pre-timeout behaviour).
type Timeouts struct {
	// ReadIdle is the maximum quiet time between client frames; a
	// connection that sends nothing for this long is closed. Subscribers
	// that only listen must ping within the window to stay connected.
	ReadIdle time.Duration
	// Write bounds each outbound frame write. A subscriber that stops
	// draining its socket stalls the writer on a full TCP buffer; the
	// deadline cuts it loose so a commit blocked on that subscriber's
	// full out channel (backpressure) unblocks instead of wedging the
	// dispatcher.
	Write time.Duration
}

// WithTimeouts sets per-connection read/write deadlines and an idle
// timeout, so one stalled or vanished client can never wedge the commit
// dispatcher or pin resources forever.
func WithTimeouts(t Timeouts) Option {
	return func(s *Server) { s.timeouts = t }
}

// WithSerializedReads makes ad-hoc queries and view reads take execMu
// like writes do, disabling the epoch-snapshot read path. This is the
// pre-MVCC behaviour, kept as the comparison baseline for benchmarks
// (pgivbench EXP-P) and differential testing.
func WithSerializedReads() Option {
	return func(s *Server) { s.serialized = true }
}

// WithoutRewrite disables serving ad-hoc queries from materialized view
// state: every OpQuery evaluates from scratch against a pinned snapshot,
// the pre-rewrite behaviour. Escape hatch (pgivd -no-rewrite) and the
// benchmark baseline for EXP-R.
func WithoutRewrite() Option {
	return func(s *Server) { s.noRewrite = true }
}

// New creates a server for an existing graph + engine pair and hooks it
// into the graph's commit dispatch chain (after the engine — New must be
// called after ivm.NewEngine so sequence stamping sees completed view
// updates). Unless WithSerializedReads is given, it enables MVCC
// snapshot maintenance on the graph so reads never take the write path's
// locks.
func New(g *graph.Graph, engine *ivm.Engine, opts ...Option) *Server {
	s := &Server{
		g:      g,
		engine: engine,
		subs:   make(map[string]map[*conn]bool),
		hooked: make(map[string]bool),
		conns:  make(map[*conn]bool),
	}
	for _, o := range opts {
		o(s)
	}
	if !s.serialized {
		g.EnableMVCC()
	}
	if !s.serialized && !s.noRewrite {
		// Ad-hoc reads serve from materialized state when a registered
		// view covers them; no commit is in flight at construction time.
		engine.EnableRewrite()
	}
	s.lastSeq = g.Epoch()
	g.Subscribe(s)
	return s
}

// Apply is the graph.Listener hook: it runs synchronously inside every
// Commit, after the engine has propagated the changeset and all OnChange
// callbacks have buffered their batches. The commit's sequence number is
// its graph epoch — the same value ad-hoc query responses and published
// view rows carry, so a client can correlate every read with the delta
// stream. Apply fans the buffered batches out to subscribers.
func (s *Server) Apply(cs *graph.ChangeSet) {
	s.lastSeq = cs.Epoch()
	if len(s.commitBuf) == 0 {
		return
	}
	seq := s.lastSeq
	for _, pb := range s.commitBuf {
		msg := &protocol.Message{Type: "delta", Delta: &protocol.DeltaBatch{
			View: pb.view, Seq: seq, Deltas: pb.deltas,
		}}
		for c := range s.subs[pb.view] {
			c.send(msg)
		}
	}
	s.commitBuf = s.commitBuf[:0]
}

// bufferBatch is the per-view OnChange dispatcher body: it encodes the
// commit's coalesced batch once, to be stamped and fanned out by Apply.
func (s *Server) bufferBatch(view string, ds []rete.Delta) {
	if len(s.subs[view]) == 0 {
		return
	}
	wds := make([]protocol.WireDelta, len(ds))
	for i, d := range ds {
		wds[i] = protocol.WireDelta{Row: protocol.EncodeRow(d.Row), Mult: d.Mult}
	}
	s.commitBuf = append(s.commitBuf, pendingBatch{view: view, deltas: wds})
}

// Serve accepts connections on ln until Close. It returns after the
// listener fails (nil error after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := &conn{s: s, nc: nc, out: make(chan *protocol.Message, 256), done: make(chan struct{})}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = true
		s.mu.Unlock()
		s.wg.Add(2)
		go c.writeLoop()
		go c.readLoop()
	}
}

// ListenAndServe listens on addr and serves. The returned ready channel
// yields the bound address once listening (useful with ":0").
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln) //nolint:errcheck
	return ln.Addr(), nil
}

// Close stops accepting, closes every connection, waits for their
// goroutines, and unhooks the server from the graph. The engine and
// graph stay usable. Connections are cut immediately, with no goodbye
// grace; use CloseWithTimeout for a graceful shutdown.
func (s *Server) Close() {
	s.closeWithin(0)
}

// CloseWithTimeout is the graceful Close: it stops accepting, sends each
// connection a best-effort "bye" frame (so clients can distinguish a
// deliberate shutdown from a crash), waits up to d for the writers to
// flush it, then closes every connection and waits for their goroutines.
// The deadline bounds the whole shutdown — a subscriber that refuses to
// drain its socket cannot hold the server open past it. Returns true if
// every goodbye flushed within the deadline.
func (s *Server) CloseWithTimeout(d time.Duration) bool {
	return s.closeWithin(d)
}

func (s *Server) closeWithin(d time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	flushed := true
	if d > 0 {
		// Goodbye phase: enqueue a "bye" on each connection without
		// blocking (a stalled subscriber's full queue just skips it —
		// that connection gets the abrupt close below), then wait out
		// the grace period for the writers to flush. A writer exits
		// right after putting the bye on the wire, which closes done.
		bye := &protocol.Message{Type: "bye"}
		waiting := make([]*conn, 0, len(conns))
		for _, c := range conns {
			select {
			case c.out <- bye:
				waiting = append(waiting, c)
			case <-c.done:
			default:
				flushed = false
			}
		}
		deadline := time.NewTimer(d)
		for _, c := range waiting {
			select {
			case <-c.done:
			case <-deadline.C:
				flushed = false
				// Deadline spent: cut the rest off immediately.
				deadline.Reset(0)
			}
		}
		deadline.Stop()
	}
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
	s.g.Unsubscribe(s)
	return flushed
}

// Seq returns the last stamped commit sequence number.
func (s *Server) Seq() uint64 {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return s.lastSeq
}

// conn is one client connection. Outbound frames (responses and delta
// batches) flow through the out channel to a single writer goroutine, so
// a commit never interleaves frames with a response mid-write; if a slow
// subscriber fills the buffer the committing statement blocks —
// backpressure, not loss.
type conn struct {
	s    *Server
	nc   net.Conn
	out  chan *protocol.Message
	done chan struct{} // closed when the writer exits
	once sync.Once
}

func (c *conn) close() {
	c.once.Do(func() {
		c.nc.Close()
	})
}

func (c *conn) send(m *protocol.Message) {
	select {
	case c.out <- m:
	case <-c.done:
	}
}

func (c *conn) writeLoop() {
	defer c.s.wg.Done()
	defer close(c.done)
	for m := range c.out {
		if d := c.s.timeouts.Write; d > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck
		}
		if err := protocol.WriteFrame(c.nc, m); err != nil {
			c.close()
			// Drain senders until readLoop closes the channel.
			for range c.out {
			}
			return
		}
		if m.Type == "bye" {
			// Goodbye flushed: nothing further may follow it. Exit (which
			// closes done, unblocking the graceful Close and any blocked
			// send) and drain what readLoop still feeds us.
			c.close()
			for range c.out {
			}
			return
		}
	}
}

func (c *conn) readLoop() {
	defer c.s.wg.Done()
	defer func() {
		c.close()
		c.s.detach(c)
		close(c.out)
	}()
	for {
		if d := c.s.timeouts.ReadIdle; d > 0 {
			c.nc.SetReadDeadline(time.Now().Add(d)) //nolint:errcheck
		}
		msg, err := protocol.ReadFrame(c.nc)
		if err != nil {
			return
		}
		if msg.Type != "req" || msg.Req == nil {
			return
		}
		if resp := c.s.handle(c, msg.Req); resp != nil {
			c.send(&protocol.Message{Type: "resp", Resp: resp})
		}
	}
}

// detach removes a dying connection from every subscriber set and from
// the server's connection table.
func (s *Server) detach(c *conn) {
	s.execMu.Lock()
	for _, set := range s.subs {
		delete(set, c)
	}
	s.execMu.Unlock()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func errResp(id uint64, format string, args ...interface{}) *protocol.Response {
	return &protocol.Response{ID: id, Error: fmt.Sprintf(format, args...)}
}

func (s *Server) handle(c *conn, req *protocol.Request) *protocol.Response {
	switch req.Op {
	case protocol.OpPing:
		return &protocol.Response{ID: req.ID}
	case protocol.OpViews:
		return &protocol.Response{ID: req.ID, Views: s.engine.ViewNames()}
	case protocol.OpExec:
		return s.handleExec(req)
	case protocol.OpQuery:
		return s.handleQuery(req)
	case protocol.OpRows:
		return s.handleRows(req)
	case protocol.OpRegister:
		return s.handleRegister(req)
	case protocol.OpDrop:
		return s.handleDrop(req)
	case protocol.OpSubscribe:
		return s.handleSubscribe(c, req)
	case protocol.OpUnsubscribe:
		s.execMu.Lock()
		if set, ok := s.subs[req.Name]; ok {
			delete(set, c)
		}
		s.execMu.Unlock()
		return &protocol.Response{ID: req.ID}
	}
	return errResp(req.ID, "server: unknown op %q", req.Op)
}

func (s *Server) handleExec(req *protocol.Request) *protocol.Response {
	stmt, err := cypher.ParseStatement(req.Text)
	if err != nil {
		return errResp(req.ID, "%v", err)
	}
	if !stmt.IsWrite() {
		return errResp(req.ID, "server: exec requires a write statement; use query for reads")
	}
	params, err := protocol.DecodeParams(req.Params)
	if err != nil {
		return errResp(req.ID, "%v", err)
	}
	s.execMu.Lock()
	defer s.execMu.Unlock()
	before := s.lastSeq
	st, err := write.ExecStatement(s.g, stmt.Write, params)
	if err != nil {
		return errResp(req.ID, "%v", err)
	}
	resp := &protocol.Response{ID: req.ID, Stats: &protocol.WriteStats{
		MatchedRows:   st.MatchedRows,
		NodesCreated:  st.NodesCreated,
		EdgesCreated:  st.EdgesCreated,
		NodesDeleted:  st.NodesDeleted,
		EdgesDeleted:  st.EdgesDeleted,
		PropertiesSet: st.PropertiesSet,
		LabelsAdded:   st.LabelsAdded,
		LabelsRemoved: st.LabelsRemoved,
	}}
	if s.lastSeq != before { // the statement committed a non-empty changeset
		resp.Seq = s.lastSeq
	}
	return resp
}

// handleQuery evaluates an ad-hoc read. Without execMu: it pins the
// latest committed epoch and evaluates against that immutable snapshot,
// so it runs concurrently with writers and other readers and can never
// observe a half-applied statement. The response's Seq is the pinned
// epoch. Read-your-writes per connection follows from the wire being
// ordered: by the time a client sends the query, its own exec response
// (carrying that commit's epoch) is already on the wire, and Snapshot
// pins an epoch at least as new as any completed commit.
func (s *Server) handleQuery(req *protocol.Request) *protocol.Response {
	params, err := protocol.DecodeParams(req.Params)
	if err != nil {
		return errResp(req.ID, "%v", err)
	}
	var (
		res *snapshot.Result
		seq uint64
	)
	switch {
	case s.serialized:
		s.execMu.Lock()
		res, err = snapshot.Query(s.g, req.Text, params)
		seq = s.lastSeq
		s.execMu.Unlock()
	case s.noRewrite:
		snap := s.g.Snapshot()
		res, err = snapshot.Query(snap, req.Text, params)
		seq = snap.Epoch()
		snap.Release()
	default:
		// Rewrite path: answer from a covering view memo when one exists
		// (falling back to snapshot evaluation inside the engine on a
		// miss). Seq is the epoch the answer reflects either way.
		res, seq, err = s.engine.QueryParams(req.Text, params)
	}
	if err != nil {
		return errResp(req.ID, "%v", err)
	}
	rows := make([][]protocol.WireValue, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = protocol.EncodeRow(r)
	}
	return &protocol.Response{ID: req.ID, Schema: []string(res.Schema), Rows: rows, Seq: seq}
}

// handleRows returns a registered view's current contents. Without
// execMu: the view's production publishes an immutable (epoch, rows)
// pair after every commit, and this handler just loads it — a wait-free
// read that never blocks a commit and is never blocked by one. Seq is
// the epoch the rows are consistent with.
func (s *Server) handleRows(req *protocol.Request) *protocol.Response {
	v, ok := s.engine.View(req.Name)
	if !ok {
		return errResp(req.ID, "server: no view %q", req.Name)
	}
	var (
		cur []value.Row
		seq uint64
	)
	if s.serialized {
		s.execMu.Lock()
		cur = v.Rows()
		seq = s.lastSeq
		s.execMu.Unlock()
	} else if cur, seq, ok = v.PublishedRows(); !ok {
		// Not watched (registered before this server, or engine used
		// directly): fall back to the locked path once.
		s.execMu.Lock()
		v.Watch()
		cur, seq, _ = v.PublishedRows()
		s.execMu.Unlock()
	}
	rows := make([][]protocol.WireValue, len(cur))
	for i, r := range cur {
		rows[i] = protocol.EncodeRow(r)
	}
	return &protocol.Response{ID: req.ID, Schema: []string(v.Schema()), Rows: rows, Seq: seq}
}

func (s *Server) handleRegister(req *protocol.Request) *protocol.Response {
	if req.Name == "" {
		return errResp(req.ID, "server: register requires a view name")
	}
	params, err := protocol.DecodeParams(req.Params)
	if err != nil {
		return errResp(req.ID, "%v", err)
	}
	s.execMu.Lock()
	defer s.execMu.Unlock()
	v, err := s.engine.RegisterViewParams(req.Name, req.Text, params)
	if err != nil {
		return errResp(req.ID, "%v", err)
	}
	if !s.serialized {
		// Start epoch publication now (no commit can be in flight:
		// execMu is held), so OpRows reads are wait-free from the start.
		v.Watch()
	}
	return &protocol.Response{ID: req.ID, Schema: []string(v.Schema())}
}

func (s *Server) handleDrop(req *protocol.Request) *protocol.Response {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	if err := s.engine.DropView(req.Name); err != nil {
		return errResp(req.ID, "%v", err)
	}
	// A future view under the same name is a different view: drop the
	// old dispatcher bookkeeping and subscriber set.
	delete(s.hooked, req.Name)
	delete(s.subs, req.Name)
	return &protocol.Response{ID: req.ID}
}

// handleSubscribe enqueues its own response while still holding execMu,
// so no later commit's delta frames can precede it on the wire; the
// returned nil tells readLoop not to send a second response.
func (s *Server) handleSubscribe(c *conn, req *protocol.Request) *protocol.Response {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	v, ok := s.engine.View(req.Name)
	if !ok {
		return errResp(req.ID, "server: no view %q", req.Name)
	}
	if !s.hooked[req.Name] {
		name := req.Name
		v.OnChange(func(ds []rete.Delta) { s.bufferBatch(name, ds) })
		s.hooked[name] = true
	}
	set := s.subs[req.Name]
	if set == nil {
		set = make(map[*conn]bool)
		s.subs[req.Name] = set
	}
	set[c] = true
	// Seed from the published epoch when available (its epoch equals
	// lastSeq here: publication happens inside every commit, and execMu
	// excludes commits now). Either way the rows are consistent with the
	// stamped Seq, and later delta frames carry strictly greater ones.
	cur, seq, ok := v.PublishedRows()
	if !ok {
		cur, seq = v.Rows(), s.lastSeq
	}
	rows := make([][]protocol.WireValue, len(cur))
	for i, r := range cur {
		rows[i] = protocol.EncodeRow(r)
	}
	c.send(&protocol.Message{Type: "resp", Resp: &protocol.Response{
		ID: req.ID, Schema: []string(v.Schema()), Rows: rows, Seq: seq,
	}})
	return nil
}
