// Package schema models relation schemas: ordered lists of attribute
// names. Property graphs are schema-free, so — per the paper's Section 4
// step (3) — the schema of every relation in a query plan is inferred from
// the query itself. Pattern variables are attributes named after themselves
// ("p", "c", "t"); properties unnested from a variable v use the attribute
// name "v.key" (the paper's lang→pL naming is generated here as p.lang).
package schema

import "strings"

// Schema is an ordered list of attribute names.
type Schema []string

// Index returns the position of the attribute, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a == name {
			return i
		}
	}
	return -1
}

// Has reports whether the attribute is present.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Concat returns a new schema holding s followed by t.
func (s Schema) Concat(t Schema) Schema {
	out := make(Schema, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// Clone returns a copy of s.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Shared returns the attributes present in both s and t, in s's order.
func (s Schema) Shared(t Schema) Schema {
	var out Schema
	for _, a := range s {
		if t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// String renders the schema as (a, b, c).
func (s Schema) String() string { return "(" + strings.Join(s, ", ") + ")" }

// JoinKeys resolves the column arithmetic of a natural join of l and r:
// lKey and rKey are the positions of the shared attributes in each
// schema (in l's order, pairwise aligned), and rKeep the positions of
// the right columns that survive into the output (those not shared).
// The Rete join/outer-join/exists builders and the snapshot evaluator
// all derive their key indexes here, so the incremental network and the
// differential-test oracle cannot disagree about join keys.
func JoinKeys(l, r Schema) (lKey, rKey, rKeep []int) {
	shared := l.Shared(r)
	lKey = make([]int, len(shared))
	rKey = make([]int, len(shared))
	for i, a := range shared {
		lKey[i] = l.Index(a)
		rKey[i] = r.Index(a)
	}
	for i, a := range r {
		if !l.Has(a) {
			rKeep = append(rKeep, i)
		}
	}
	return lKey, rKey, rKeep
}

// PropAttr builds the attribute name of a property unnested from a
// variable: PropAttr("p", "lang") == "p.lang".
func PropAttr(varName, key string) string { return varName + "." + key }

// IsPropAttr reports whether the attribute is an unnested property
// attribute, and if so splits it into variable and key.
func IsPropAttr(attr string) (varName, key string, ok bool) {
	i := strings.IndexByte(attr, '.')
	if i <= 0 || i == len(attr)-1 {
		return "", "", false
	}
	return attr[:i], attr[i+1:], true
}
