package schema

import "testing"

func TestIndexHasConcat(t *testing.T) {
	s := Schema{"a", "b", "c"}
	if s.Index("a") != 0 || s.Index("c") != 2 || s.Index("z") != -1 {
		t.Error("Index wrong")
	}
	if !s.Has("b") || s.Has("z") {
		t.Error("Has wrong")
	}
	cat := s.Concat(Schema{"d"})
	if len(cat) != 4 || cat[3] != "d" || len(s) != 3 {
		t.Error("Concat wrong or mutated receiver")
	}
}

func TestCloneIsolation(t *testing.T) {
	s := Schema{"a", "b"}
	c := s.Clone()
	c[0] = "z"
	if s[0] != "a" {
		t.Error("Clone aliases the original")
	}
}

func TestShared(t *testing.T) {
	s := Schema{"a", "b", "c"}
	u := Schema{"c", "a", "x"}
	got := s.Shared(u)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Shared = %v (must preserve left order)", got)
	}
	if s.Shared(Schema{}) != nil {
		t.Error("Shared with empty should be nil")
	}
}

func TestPropAttr(t *testing.T) {
	if PropAttr("p", "lang") != "p.lang" {
		t.Error("PropAttr wrong")
	}
	v, k, ok := IsPropAttr("p.lang")
	if !ok || v != "p" || k != "lang" {
		t.Error("IsPropAttr wrong")
	}
	for _, bad := range []string{"plain", ".x", "x.", ""} {
		if _, _, ok := IsPropAttr(bad); ok {
			t.Errorf("IsPropAttr(%q) should fail", bad)
		}
	}
	// First dot splits: nested keys keep the remainder.
	v, k, ok = IsPropAttr("a.b.c")
	if !ok || v != "a" || k != "b.c" {
		t.Errorf("IsPropAttr(a.b.c) = %s, %s", v, k)
	}
}

func TestString(t *testing.T) {
	if (Schema{"a", "b"}).String() != "(a, b)" {
		t.Error("String wrong")
	}
	if (Schema{}).String() != "()" {
		t.Error("empty String wrong")
	}
}

func TestJoinKeys(t *testing.T) {
	l := Schema{"a", "b", "c"}
	r := Schema{"c", "d", "a"}
	lKey, rKey, rKeep := JoinKeys(l, r)
	// Shared attrs in l's order: a, c.
	if len(lKey) != 2 || lKey[0] != 0 || lKey[1] != 2 {
		t.Errorf("lKey = %v", lKey)
	}
	if len(rKey) != 2 || rKey[0] != 2 || rKey[1] != 0 {
		t.Errorf("rKey = %v", rKey)
	}
	if len(rKeep) != 1 || rKeep[0] != 1 {
		t.Errorf("rKeep = %v", rKeep)
	}
	// Disjoint schemas: no keys, everything kept.
	lKey, rKey, rKeep = JoinKeys(Schema{"x"}, Schema{"y", "z"})
	if len(lKey) != 0 || len(rKey) != 0 || len(rKeep) != 2 {
		t.Errorf("disjoint: %v %v %v", lKey, rKey, rKeep)
	}
}
