// Package checkpoint persists incremental snapshots of an IVM engine:
// the graph state plus the memoized state of every Rete node, under a
// manifest that records the WAL position the snapshot corresponds to.
//
// A checkpoint directory holds one MANIFEST plus one file per payload
// (the graph snapshot and one file per stateful node). Node files are
// incremental: a node whose memo version has not changed since the
// previous checkpoint keeps its existing file — only dirty nodes are
// rewritten. The manifest is replaced atomically (write tmp, fsync,
// rename), so a crash mid-checkpoint leaves either the old or the new
// manifest, each referencing only fully-written files; orphans from an
// interrupted checkpoint are swept on Open.
//
// Recovery contract: load the manifest's graph state, re-register its
// views in recorded order without seeding, restore each node's memo,
// then replay the WAL tail (records with LSN greater than the
// manifest's) through the normal commit path.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"pgiv/internal/graph"
	"pgiv/internal/protocol"
	"pgiv/internal/rete"
	"pgiv/internal/value"
)

const manifestName = "MANIFEST"

// ViewRecord is one registered view, in registration order — the order
// matters because no-sharing registries assign private-copy serials by
// registration sequence, and node keys must line up on restore.
type ViewRecord struct {
	Name   string                        `json:"name"`
	Query  string                        `json:"query"`
	Params map[string]protocol.WireValue `json:"params,omitempty"`
}

// NodeRecord maps one stateful node (by full registry key, including
// any private-copy suffix) to the file holding its memo and the memo
// version the file was written at.
type NodeRecord struct {
	Key     string `json:"key"`
	Version uint64 `json:"version"`
	File    string `json:"file"`
}

// Manifest is the checkpoint root: the epoch and WAL watermark the
// snapshot is consistent with, the ID allocator positions, and the
// payload files.
type Manifest struct {
	Epoch     uint64       `json:"epoch"`
	LSN       uint64       `json:"lsn"`
	NextV     int64        `json:"nv"`
	NextE     int64        `json:"ne"`
	GraphFile string       `json:"graph_file"`
	Views     []ViewRecord `json:"views,omitempty"`
	Nodes     []NodeRecord `json:"nodes,omitempty"`
}

// NodeState is one node's input to Write.
type NodeState struct {
	Key     string
	Version uint64
	Memo    *rete.NodeMemo
}

// Snapshot is the full input to Write.
type Snapshot struct {
	Epoch        uint64
	LSN          uint64
	NextV, NextE int64
	Views        []ViewRecord
	GraphState   []byte // graph.ExportState bytes
	Nodes        []NodeState
}

// Store manages one checkpoint directory.
type Store struct {
	dir string
	gen uint64 // generation counter for fresh file names
	// last manifest's node records, for incremental reuse.
	lastNodes map[string]NodeRecord
}

// Open opens (creating if needed) a checkpoint directory, returning the
// store and the latest manifest (nil if none exists yet). Files not
// referenced by the manifest — leftovers of an interrupted checkpoint —
// are removed.
func Open(dir string) (*Store, *Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir, lastNodes: make(map[string]NodeRecord)}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		s.sweep(nil)
		return s, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: decode manifest: %w", err)
	}
	for _, nr := range m.Nodes {
		s.lastNodes[nr.Key] = nr
		if g := fileGen(nr.File); g > s.gen {
			s.gen = g
		}
	}
	if g := fileGen(m.GraphFile); g > s.gen {
		s.gen = g
	}
	s.sweep(&m)
	return s, &m, nil
}

// fileGen extracts the generation number from a payload file name
// ("graph-3.json", "node-3-7.json"); 0 if unparseable.
func fileGen(name string) uint64 {
	var gen, idx uint64
	if n, _ := fmt.Sscanf(name, "graph-%d.json", &gen); n == 1 {
		return gen
	}
	if n, _ := fmt.Sscanf(name, "node-%d-%d.json", &gen, &idx); n == 2 {
		return gen
	}
	return 0
}

// sweep removes payload files not referenced by m.
func (s *Store) sweep(m *Manifest) {
	keep := map[string]bool{manifestName: true}
	if m != nil {
		keep[m.GraphFile] = true
		for _, nr := range m.Nodes {
			keep[nr.File] = true
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && !keep[e.Name()] {
			_ = os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// Unchanged reports whether the last manifest already holds key at
// version — the caller may then pass NodeState.Memo == nil and the file
// is reused without re-serialising the node.
func (s *Store) Unchanged(key string, version uint64) bool {
	last, ok := s.lastNodes[key]
	return ok && last.Version == version
}

// Write persists a snapshot: dirty node memos and the graph state go to
// fresh generation-numbered files, unchanged nodes keep their existing
// files, and the manifest is atomically replaced. Old files become
// garbage and are swept after the rename.
func (s *Store) Write(snap *Snapshot) error {
	gen := s.gen + 1
	m := &Manifest{
		Epoch: snap.Epoch,
		LSN:   snap.LSN,
		NextV: snap.NextV,
		NextE: snap.NextE,
		Views: snap.Views,
	}
	m.GraphFile = fmt.Sprintf("graph-%d.json", gen)
	if err := s.writeFile(m.GraphFile, snap.GraphState); err != nil {
		return err
	}
	for i, ns := range snap.Nodes {
		if last, ok := s.lastNodes[ns.Key]; ok && last.Version == ns.Version {
			m.Nodes = append(m.Nodes, NodeRecord{Key: ns.Key, Version: ns.Version, File: last.File})
			continue
		}
		name := fmt.Sprintf("node-%d-%d.json", gen, i)
		data, err := json.Marshal(encodeMemo(ns.Memo))
		if err != nil {
			return fmt.Errorf("checkpoint: encode node %q: %w", ns.Key, err)
		}
		if err := s.writeFile(name, data); err != nil {
			return err
		}
		m.Nodes = append(m.Nodes, NodeRecord{Key: ns.Key, Version: ns.Version, File: name})
	}

	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("checkpoint: encode manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := writeSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("checkpoint: publish manifest: %w", err)
	}
	syncDir(s.dir)

	s.gen = gen
	s.lastNodes = make(map[string]NodeRecord, len(m.Nodes))
	for _, nr := range m.Nodes {
		s.lastNodes[nr.Key] = nr
	}
	s.sweep(m)
	return nil
}

func (s *Store) writeFile(name string, data []byte) error {
	return writeSync(filepath.Join(s.dir, name), data)
}

func writeSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", path, err)
	}
	return f.Close()
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// ReadGraph returns the manifest's graph state bytes.
func (s *Store) ReadGraph(m *Manifest) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, m.GraphFile))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read graph state: %w", err)
	}
	return data, nil
}

// ReadNode loads one node memo.
func (s *Store) ReadNode(rec NodeRecord) (*rete.NodeMemo, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, rec.File))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read node %q: %w", rec.Key, err)
	}
	var wm wireMemo
	if err := json.Unmarshal(data, &wm); err != nil {
		return nil, fmt.Errorf("checkpoint: decode node %q: %w", rec.Key, err)
	}
	memo, err := decodeMemo(&wm)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: node %q: %w", rec.Key, err)
	}
	return memo, nil
}

// --- memo wire form ---
//
// rete deliberately does not depend on the wire protocol, so the
// WireValue translation of memo rows lives here. Rows round-trip through
// protocol.EncodeRow/DecodeRow (lossless for every value kind the engine
// materialises, including vertex/edge references and paths); binary
// support keys ride as base64 via encoding/json's []byte handling.

type wireMemoRow struct {
	Port int                  `json:"p,omitempty"`
	Row  []protocol.WireValue `json:"r"`
	Keys []protocol.WireValue `json:"k,omitempty"`
	Mult int                  `json:"n"`
}

type wireValCount struct {
	Val   protocol.WireValue `json:"v"`
	Count int                `json:"n"`
}

type wireAggGroup struct {
	Keys     []protocol.WireValue `json:"k,omitempty"`
	RowCount int64                `json:"rc"`
	Sets     [][]wireValCount     `json:"sets,omitempty"`
	Out      []protocol.WireValue `json:"out,omitempty"`
	HasOut   bool                 `json:"has_out,omitempty"`
}

type wireTransSource struct {
	Src   int64                  `json:"src"`
	Frags [][]protocol.WireValue `json:"frags,omitempty"`
}

type wireKeyCount struct {
	Key   []byte `json:"key"`
	Count int    `json:"n"`
}

type wireMemo struct {
	Kind    string            `json:"kind"`
	Rows    []wireMemoRow     `json:"rows,omitempty"`
	Groups  []wireAggGroup    `json:"groups,omitempty"`
	Sources []wireTransSource `json:"sources,omitempty"`
	Counts  []wireKeyCount    `json:"counts,omitempty"`
}

func encodeMemo(m *rete.NodeMemo) *wireMemo {
	wm := &wireMemo{Kind: m.Kind}
	for _, r := range m.Rows {
		wr := wireMemoRow{Port: r.Port, Row: protocol.EncodeRow(r.Row), Mult: r.Mult}
		if r.Keys != nil {
			wr.Keys = protocol.EncodeRow(r.Keys)
		}
		wm.Rows = append(wm.Rows, wr)
	}
	for _, g := range m.Groups {
		wg := wireAggGroup{Keys: protocol.EncodeRow(g.Keys), RowCount: g.RowCount}
		for _, set := range g.Sets {
			ws := make([]wireValCount, len(set))
			for i, vc := range set {
				ws[i] = wireValCount{Val: protocol.EncodeValue(vc.Val), Count: vc.Count}
			}
			wg.Sets = append(wg.Sets, ws)
		}
		if g.Out != nil {
			wg.Out = protocol.EncodeRow(g.Out)
			wg.HasOut = true
		}
		wm.Groups = append(wm.Groups, wg)
	}
	for _, src := range m.Sources {
		ws := wireTransSource{Src: int64(src.Src)}
		for _, f := range src.Frags {
			ws.Frags = append(ws.Frags, protocol.EncodeRow(f))
		}
		wm.Sources = append(wm.Sources, ws)
	}
	for _, kc := range m.Counts {
		wm.Counts = append(wm.Counts, wireKeyCount{Key: kc.Key, Count: kc.Count})
	}
	return wm
}

func decodeMemo(wm *wireMemo) (*rete.NodeMemo, error) {
	m := &rete.NodeMemo{Kind: wm.Kind}
	for _, wr := range wm.Rows {
		row, err := protocol.DecodeRow(wr.Row)
		if err != nil {
			return nil, err
		}
		r := rete.MemoRow{Port: wr.Port, Row: row, Mult: wr.Mult}
		if wr.Keys != nil {
			if r.Keys, err = protocol.DecodeRow(wr.Keys); err != nil {
				return nil, err
			}
		}
		m.Rows = append(m.Rows, r)
	}
	for _, wg := range wm.Groups {
		keys, err := protocol.DecodeRow(wg.Keys)
		if err != nil {
			return nil, err
		}
		g := rete.AggGroupMemo{Keys: keys, RowCount: wg.RowCount}
		for _, ws := range wg.Sets {
			set := make([]rete.ValCount, len(ws))
			for i, wc := range ws {
				v, err := protocol.DecodeValue(wc.Val)
				if err != nil {
					return nil, err
				}
				set[i] = rete.ValCount{Val: v, Count: wc.Count}
			}
			g.Sets = append(g.Sets, set)
		}
		if wg.HasOut {
			if g.Out, err = protocol.DecodeRow(wg.Out); err != nil {
				return nil, err
			}
		}
		m.Groups = append(m.Groups, g)
	}
	for _, ws := range wm.Sources {
		src := rete.TransSourceMemo{Src: graph.ID(ws.Src)}
		for _, wf := range ws.Frags {
			f, err := protocol.DecodeRow(wf)
			if err != nil {
				return nil, err
			}
			src.Frags = append(src.Frags, f)
		}
		m.Sources = append(m.Sources, src)
	}
	for _, wc := range wm.Counts {
		m.Counts = append(m.Counts, rete.KeyCount{Key: wc.Key, Count: wc.Count})
	}
	return m, nil
}

// EncodeParams converts evaluated view parameters to wire form.
func EncodeParams(params map[string]value.Value) map[string]protocol.WireValue {
	if len(params) == 0 {
		return nil
	}
	out := make(map[string]protocol.WireValue, len(params))
	for k, v := range params {
		out[k] = protocol.EncodeValue(v)
	}
	return out
}

// DecodeParams converts wire parameters back to engine values.
func DecodeParams(w map[string]protocol.WireValue) (map[string]value.Value, error) {
	if len(w) == 0 {
		return nil, nil
	}
	out := make(map[string]value.Value, len(w))
	for k, wv := range w {
		v, err := protocol.DecodeValue(wv)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: param %q: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// Keys returns the sorted node keys of a manifest (diagnostics).
func (m *Manifest) NodeKeys() []string {
	keys := make([]string, len(m.Nodes))
	for i, nr := range m.Nodes {
		keys[i] = nr.Key
	}
	sort.Strings(keys)
	return keys
}
