package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue produces a random value of bounded depth for property tests.
func genValue(r *rand.Rand, depth int) Value {
	max := 10
	if depth <= 0 {
		max = 7 // atoms only
	}
	switch r.Intn(max) {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 0)
	case 2:
		return NewInt(int64(r.Intn(21) - 10))
	case 3:
		return NewFloat(float64(r.Intn(21)-10) / 2)
	case 4:
		return NewString(string(rune('a' + r.Intn(5))))
	case 5:
		return NewVertex(int64(r.Intn(5)))
	case 6:
		return NewEdge(int64(r.Intn(5)))
	case 7:
		n := r.Intn(3)
		list := make([]Value, n)
		for i := range list {
			list[i] = genValue(r, depth-1)
		}
		return NewList(list)
	case 8:
		n := r.Intn(3)
		m := make(map[string]Value, n)
		for i := 0; i < n; i++ {
			m[string(rune('k'+i))] = genValue(r, depth-1)
		}
		return NewMap(m)
	default:
		n := r.Intn(3)
		p := &Path{Vertices: []int64{int64(r.Intn(4))}}
		for i := 0; i < n; i++ {
			p = p.Extend(int64(r.Intn(6)), int64(r.Intn(4)))
		}
		return NewPath(p)
	}
}

// quickValue adapts genValue to testing/quick.
type quickValue struct{ V Value }

func (quickValue) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(quickValue{V: genValue(r, 2)})
}

func TestEqualMatchesKeyEncoding(t *testing.T) {
	f := func(a, b quickValue) bool {
		return Equal(a.V, b.V) == (Key(a.V) == Key(b.V))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	reflexive := func(a quickValue) bool { return Compare(a.V, a.V) == 0 }
	if err := quick.Check(reflexive, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatalf("reflexivity: %v", err)
	}
	antisymmetric := func(a, b quickValue) bool {
		return Compare(a.V, b.V) == -Compare(b.V, a.V)
	}
	if err := quick.Check(antisymmetric, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatalf("antisymmetry: %v", err)
	}
	transitive := func(a, b, c quickValue) bool {
		x, y, z := a.V, b.V, c.V
		// Sort the triple pairwise and check consistency.
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(transitive, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatalf("transitivity: %v", err)
	}
	equalMeansCompareZero := func(a, b quickValue) bool {
		if Equal(a.V, b.V) {
			return Compare(a.V, b.V) == 0
		}
		return true
	}
	if err := quick.Check(equalMeansCompareZero, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatalf("Equal ⇒ Compare==0: %v", err)
	}
}

func TestNumericCoercion(t *testing.T) {
	if !Equal(NewInt(1), NewFloat(1.0)) {
		t.Error("1 should equal 1.0")
	}
	if Key(NewInt(1)) != Key(NewFloat(1.0)) {
		t.Error("keys of 1 and 1.0 should coincide")
	}
	if Equal(NewInt(1), NewFloat(1.5)) {
		t.Error("1 should not equal 1.5")
	}
	if Compare(NewInt(2), NewFloat(1.5)) != 1 {
		t.Error("2 > 1.5")
	}
	// Large integers must not lose precision against nearby floats.
	big := int64(1) << 60
	if Equal(NewInt(big), NewInt(big+1)) {
		t.Error("distinct large ints equal")
	}
	if Key(NewFloat(math.NaN())) == Key(NewFloat(1)) {
		t.Error("NaN key collides with 1")
	}
}

func TestNullOrdering(t *testing.T) {
	vals := []Value{Null, NewInt(1), NewString("a"), NewBool(true)}
	for _, v := range vals[1:] {
		if Compare(Null, v) != 1 {
			t.Errorf("null must sort after %s", v)
		}
		if Compare(v, Null) != -1 {
			t.Errorf("%s must sort before null", v)
		}
	}
	if Compare(Null, Null) != 0 {
		t.Error("null equals null in ordering")
	}
}

func TestCrossKindOrdering(t *testing.T) {
	// bool < number < string < vertex < edge < list < map < path
	ordered := []Value{
		NewBool(true), NewInt(5), NewString("z"), NewVertex(1), NewEdge(1),
		NewList([]Value{NewInt(1)}), NewMap(map[string]Value{"a": NewInt(1)}),
		NewPath(&Path{Vertices: []int64{1}}),
	}
	for i := 0; i < len(ordered)-1; i++ {
		if Compare(ordered[i], ordered[i+1]) != -1 {
			t.Errorf("%s should sort before %s", ordered[i], ordered[i+1])
		}
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{NewBool(true), "true"},
		{NewInt(-3), "-3"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), `"hi"`},
		{NewVertex(7), "(#7)"},
		{NewEdge(7), "[#7]"},
		{NewList([]Value{NewInt(1), NewString("a")}), `[1, "a"]`},
		{NewMap(map[string]Value{"b": NewInt(2), "a": NewInt(1)}), "{a: 1, b: 2}"},
		{NewPath(&Path{Vertices: []int64{1, 2}, Edges: []int64{9}}), "<(#1)-[#9]->(#2)>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	p := &Path{Vertices: []int64{1}}
	p2 := p.Extend(10, 2).Extend(11, 3)
	if p2.Len() != 2 || p2.Start() != 1 || p2.End() != 3 {
		t.Fatalf("path structure wrong: %+v", p2)
	}
	if !p2.ContainsEdge(10) || p2.ContainsEdge(12) {
		t.Error("ContainsEdge wrong")
	}
	if !p2.ContainsVertex(2) || p2.ContainsVertex(9) {
		t.Error("ContainsVertex wrong")
	}
	// Extend must not alias the original.
	if p.Len() != 0 {
		t.Error("Extend mutated the receiver")
	}
}

func TestRowHelpers(t *testing.T) {
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewInt(1), NewString("x")}
	c := Row{NewInt(1), NewString("y")}
	if !EqualRows(a, b) || EqualRows(a, c) {
		t.Error("EqualRows wrong")
	}
	if CompareRows(a, c) != -1 || CompareRows(c, a) != 1 || CompareRows(a, b) != 0 {
		t.Error("CompareRows wrong")
	}
	if RowKey(a) != RowKey(b) || RowKey(a) == RowKey(c) {
		t.Error("RowKey wrong")
	}
	cat := ConcatRows(a, c)
	if len(cat) != 4 || !Equal(cat[3], NewString("y")) {
		t.Error("ConcatRows wrong")
	}
	clone := CloneRow(a)
	clone[0] = NewInt(9)
	if !Equal(a[0], NewInt(1)) {
		t.Error("CloneRow aliases the original")
	}
	if RowString(a) != `(1, "x")` {
		t.Errorf("RowString = %s", RowString(a))
	}
	if CompareRows(a, Row{NewInt(1)}) != 1 {
		t.Error("longer row should sort after its prefix")
	}
}

func TestKeyEncodingInjective(t *testing.T) {
	// Regression cases where naive encodings collide.
	pairs := [][2]Value{
		{NewString("ab"), NewList([]Value{NewString("a"), NewString("b")})},
		{NewList([]Value{NewList(nil)}), NewList([]Value{NewList(nil), NewList(nil)})},
		{NewVertex(1), NewEdge(1)},
		{NewInt(0), NewBool(false)},
		{NewPath(&Path{Vertices: []int64{1, 2}, Edges: []int64{1}}),
			NewPath(&Path{Vertices: []int64{1, 2, 1}, Edges: []int64{1, 1}})},
	}
	for _, p := range pairs {
		if Key(p[0]) == Key(p[1]) {
			t.Errorf("key collision between %s and %s", p[0], p[1])
		}
	}
}
