package value

// Row is a tuple of values. Rows flow through both the snapshot evaluator
// and the Rete network; their schema (attribute names) is tracked by the
// plan operators, not by the row itself.
type Row []Value

// CloneRow returns a copy of r. The values themselves are immutable and
// shared.
func CloneRow(r Row) Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// AppendRowKey appends the unambiguous binary encoding of every value of r
// to dst.
func AppendRowKey(dst []byte, r Row) []byte {
	for _, v := range r {
		dst = AppendKey(dst, v)
	}
	return dst
}

// RowKey returns the binary encoding of r as a string.
func RowKey(r Row) string { return string(AppendRowKey(nil, r)) }

// CompareRows orders rows lexicographically by Compare.
func CompareRows(a, b Row) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// EqualRows reports whether a and b are strictly equal element-wise.
func EqualRows(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// ConcatRows returns a new row holding a followed by b.
func ConcatRows(a, b Row) Row {
	c := make(Row, 0, len(a)+len(b))
	c = append(c, a...)
	c = append(c, b...)
	return c
}

// RowString renders a row as a parenthesised tuple.
func RowString(r Row) string {
	s := "("
	for i, v := range r {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}
