// Package value implements the value model of the property graph query
// engine: atomic values (null, boolean, integer, float, string), vertex and
// edge references, lists, maps, and paths.
//
// The model follows the paper's data model (Section 2): atomic domains D_i,
// vertex/edge identifiers, and nested collections. Paths are first-class,
// ordered values (an alternating list of vertices and edges) but are treated
// as atomic units by the incremental engine, per the paper's Section 4.
//
// Values are immutable once constructed. Two operations are central to the
// engine and must agree with each other:
//
//   - Equal: strict equality (null equals null here; the ternary-logic
//     Cypher '=' is implemented on top of this in internal/expr), and
//   - AppendKey: an injective-up-to-equality binary encoding used as the
//     key of Rete memories and hash joins.
//
// Numeric values compare across Int/Float (1 == 1.0), and AppendKey
// canonicalises integral floats so that key equality matches Equal.
package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types of a Value.
type Kind uint8

// The ordering of these constants defines the cross-type sort order used by
// Compare (nulls sort last, see Compare).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindVertex
	KindEdge
	KindList
	KindMap
	KindPath
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindVertex:
		return "vertex"
	case KindEdge:
		return "edge"
	case KindList:
		return "list"
	case KindMap:
		return "map"
	case KindPath:
		return "path"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Path is an alternating sequence of vertices and edges:
// Vertices[0], Edges[0], Vertices[1], ..., Edges[n-1], Vertices[n].
// A zero-length path has one vertex and no edges.
type Path struct {
	Vertices []int64
	Edges    []int64
}

// Len returns the number of edges (hops) in the path.
func (p *Path) Len() int { return len(p.Edges) }

// Start returns the first vertex of the path.
func (p *Path) Start() int64 { return p.Vertices[0] }

// End returns the last vertex of the path.
func (p *Path) End() int64 { return p.Vertices[len(p.Vertices)-1] }

// ContainsEdge reports whether edge id e appears in the path.
func (p *Path) ContainsEdge(e int64) bool {
	for _, x := range p.Edges {
		if x == e {
			return true
		}
	}
	return false
}

// ContainsVertex reports whether vertex id v appears in the path.
func (p *Path) ContainsVertex(v int64) bool {
	for _, x := range p.Vertices {
		if x == v {
			return true
		}
	}
	return false
}

// Extend returns a new path with edge e to vertex w appended.
func (p *Path) Extend(e, w int64) *Path {
	np := &Path{
		Vertices: make([]int64, 0, len(p.Vertices)+1),
		Edges:    make([]int64, 0, len(p.Edges)+1),
	}
	np.Vertices = append(np.Vertices, p.Vertices...)
	np.Edges = append(np.Edges, p.Edges...)
	np.Vertices = append(np.Vertices, w)
	np.Edges = append(np.Edges, e)
	return np
}

// Value is an immutable tagged union over the supported kinds.
// The zero Value is null.
type Value struct {
	kind Kind
	b    bool
	i    int64 // int, vertex id, edge id
	f    float64
	s    string
	list []Value
	m    map[string]Value
	p    *Path
}

// Null is the null value.
var Null = Value{kind: KindNull}

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewVertex returns a vertex reference.
func NewVertex(id int64) Value { return Value{kind: KindVertex, i: id} }

// NewEdge returns an edge reference.
func NewEdge(id int64) Value { return Value{kind: KindEdge, i: id} }

// NewList returns a list value. The slice is not copied; callers must not
// mutate it afterwards.
func NewList(vs []Value) Value { return Value{kind: KindList, list: vs} }

// NewMap returns a map value. The map is not copied; callers must not
// mutate it afterwards.
func NewMap(m map[string]Value) Value { return Value{kind: KindMap, m: m} }

// NewPath returns a path value. The path is not copied.
func NewPath(p *Path) Value { return Value{kind: KindPath, p: p} }

// Kind returns the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; valid only for KindBool.
func (v Value) Bool() bool { return v.b }

// Int returns the integer payload; valid only for KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; valid only for KindFloat.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; valid only for KindString.
func (v Value) Str() string { return v.s }

// ID returns the identifier payload of a vertex or edge reference.
func (v Value) ID() int64 { return v.i }

// List returns the list payload; valid only for KindList. Callers must not
// mutate the returned slice.
func (v Value) List() []Value { return v.list }

// Map returns the map payload; valid only for KindMap. Callers must not
// mutate the returned map.
func (v Value) Map() map[string]Value { return v.m }

// Path returns the path payload; valid only for KindPath.
func (v Value) Path() *Path { return v.p }

// IsNumeric reports whether v is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat returns the numeric payload widened to float64; valid only for
// numeric kinds.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Equal reports strict equality of a and b. Unlike the Cypher '=' operator,
// null equals null (the engine uses Equal for grouping, distinct and join
// keys; ternary logic lives in internal/expr).
func Equal(a, b Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		return numericCompare(a, b) == 0
	}
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindString:
		return a.s == b.s
	case KindVertex, KindEdge:
		return a.i == b.i
	case KindList:
		if len(a.list) != len(b.list) {
			return false
		}
		for i := range a.list {
			if !Equal(a.list[i], b.list[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(a.m) != len(b.m) {
			return false
		}
		for k, av := range a.m {
			bv, ok := b.m[k]
			if !ok || !Equal(av, bv) {
				return false
			}
		}
		return true
	case KindPath:
		if a.p.Len() != b.p.Len() || len(a.p.Vertices) != len(b.p.Vertices) {
			return false
		}
		for i := range a.p.Vertices {
			if a.p.Vertices[i] != b.p.Vertices[i] {
				return false
			}
		}
		for i := range a.p.Edges {
			if a.p.Edges[i] != b.p.Edges[i] {
				return false
			}
		}
		return true
	}
	return false
}

// numericCompare compares two numeric values exactly. Mixed int/float
// comparisons avoid precision loss for large integers by comparing in the
// integer domain when the float is integral.
func numericCompare(a, b Value) int {
	if a.kind == KindInt && b.kind == KindInt {
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	case math.IsNaN(af) && !math.IsNaN(bf):
		return 1 // NaN sorts after all numbers
	case !math.IsNaN(af) && math.IsNaN(bf):
		return -1
	}
	return 0
}

// Compare imposes a total order over all values, used for deterministic
// result ordering and ORDER BY in the snapshot engine. Following Cypher
// orderability, null sorts after everything else; otherwise values order by
// kind (bool < number < string < vertex < edge < list < map < path) and
// within a kind by payload. Int and Float compare numerically.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return 1
		default:
			return -1
		}
	}
	ar, br := rank(a.kind), rank(b.kind)
	if ar != br {
		if ar < br {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
		return 0
	case KindInt, KindFloat:
		return numericCompare(a, b)
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindVertex, KindEdge:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindList:
		return compareSlices(a.list, b.list)
	case KindMap:
		ak, bk := sortedKeys(a.m), sortedKeys(b.m)
		for i := 0; i < len(ak) && i < len(bk); i++ {
			if c := strings.Compare(ak[i], bk[i]); c != 0 {
				return c
			}
			if c := Compare(a.m[ak[i]], b.m[bk[i]]); c != 0 {
				return c
			}
		}
		switch {
		case len(ak) < len(bk):
			return -1
		case len(ak) > len(bk):
			return 1
		}
		return 0
	case KindPath:
		if c := compareInt64s(a.p.Vertices, b.p.Vertices); c != 0 {
			return c
		}
		return compareInt64s(a.p.Edges, b.p.Edges)
	}
	return 0
}

// rank maps kinds to their position in the cross-type order. Int and Float
// share a rank so that mixed numeric comparisons are numeric.
func rank(k Kind) int {
	switch k {
	case KindBool:
		return 0
	case KindInt, KindFloat:
		return 1
	case KindString:
		return 2
	case KindVertex:
		return 3
	case KindEdge:
		return 4
	case KindList:
		return 5
	case KindMap:
		return 6
	case KindPath:
		return 7
	}
	return 8
}

func compareSlices(a, b []Value) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func compareInt64s(a, b []int64) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func sortedKeys(m map[string]Value) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Key tag bytes for AppendKey. Floats that hold an integral value in int64
// range are encoded as ints so key equality agrees with Equal.
const (
	tagNull   = 'n'
	tagFalse  = 'f'
	tagTrue   = 't'
	tagInt    = 'i'
	tagFloat  = 'd'
	tagString = 's'
	tagVertex = 'v'
	tagEdge   = 'e'
	tagList   = 'l'
	tagMap    = 'm'
	tagPath   = 'p'
	tagEnd    = 0xff
)

// AppendKey appends an unambiguous binary encoding of v to dst and returns
// the extended slice. Equal(a, b) if and only if the encodings of a and b
// are byte-equal. The encoding is used as map key in Rete memories, hash
// joins, grouping and DISTINCT.
func AppendKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, tagNull)
	case KindBool:
		if v.b {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case KindInt:
		dst = append(dst, tagInt)
		return binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindFloat:
		// Canonicalise integral floats to the int encoding.
		if v.f == math.Trunc(v.f) && v.f >= -9.2233720368547758e18 && v.f <= 9.2233720368547758e18 {
			i := int64(v.f)
			if float64(i) == v.f {
				dst = append(dst, tagInt)
				return binary.BigEndian.AppendUint64(dst, uint64(i))
			}
		}
		dst = append(dst, tagFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = append(dst, tagString)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.s)))
		return append(dst, v.s...)
	case KindVertex:
		dst = append(dst, tagVertex)
		return binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindEdge:
		dst = append(dst, tagEdge)
		return binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindList:
		dst = append(dst, tagList)
		for _, e := range v.list {
			dst = AppendKey(dst, e)
		}
		return append(dst, tagEnd)
	case KindMap:
		dst = append(dst, tagMap)
		for _, k := range sortedKeys(v.m) {
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(k)))
			dst = append(dst, k...)
			dst = AppendKey(dst, v.m[k])
		}
		return append(dst, tagEnd)
	case KindPath:
		dst = append(dst, tagPath)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.p.Vertices)))
		for _, x := range v.p.Vertices {
			dst = binary.BigEndian.AppendUint64(dst, uint64(x))
		}
		for _, x := range v.p.Edges {
			dst = binary.BigEndian.AppendUint64(dst, uint64(x))
		}
		return dst
	}
	return append(dst, tagNull)
}

// Key returns AppendKey(nil, v) as a string, suitable as a Go map key.
func Key(v Value) string { return string(AppendKey(nil, v)) }

// String renders v in a Cypher-like literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindVertex:
		return fmt.Sprintf("(#%d)", v.i)
	case KindEdge:
		return fmt.Sprintf("[#%d]", v.i)
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	case KindMap:
		var sb strings.Builder
		sb.WriteByte('{')
		for i, k := range sortedKeys(v.m) {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString(v.m[k].String())
		}
		sb.WriteByte('}')
		return sb.String()
	case KindPath:
		var sb strings.Builder
		sb.WriteByte('<')
		for i, vid := range v.p.Vertices {
			if i > 0 {
				sb.WriteString(fmt.Sprintf("-[#%d]->", v.p.Edges[i-1]))
			}
			sb.WriteString(fmt.Sprintf("(#%d)", vid))
		}
		sb.WriteByte('>')
		return sb.String()
	}
	return "?"
}
