package value

// Hasher encodes rows and values into a reusable scratch buffer, so the
// steady-state key computations of the incremental engine (Rete memory
// lookups, join probes, grouping) allocate nothing.
//
// The returned byte slices alias the Hasher's internal buffer: they are
// valid only until the next call on the same Hasher and must not be
// retained. Callers that use the result as a Go map key should rely on
// the compiler's zero-copy `m[string(b)]` / `delete(m, string(b))`
// optimisations for probes and deletes, and convert to a string
// explicitly (one allocation) only when inserting a new entry.
//
// A Hasher is not safe for concurrent use; every Rete node owns its own.
// The zero value is ready to use.
type Hasher struct {
	buf []byte
}

// RowKey encodes every value of r (see AppendKey) into the scratch
// buffer and returns it. Byte-equal results correspond exactly to
// EqualRows rows, like RowKey at the package level — without the string
// allocation.
func (h *Hasher) RowKey(r Row) []byte {
	h.buf = AppendRowKey(h.buf[:0], r)
	return h.buf
}

// ValueKey encodes a single value into the scratch buffer and returns it.
func (h *Hasher) ValueKey(v Value) []byte {
	h.buf = AppendKey(h.buf[:0], v)
	return h.buf
}

// ColsKey encodes the projection of r onto the given column positions —
// the shape of a join or grouping key — into the scratch buffer and
// returns it.
func (h *Hasher) ColsKey(r Row, cols []int) []byte {
	h.buf = h.buf[:0]
	for _, i := range cols {
		h.buf = AppendKey(h.buf, r[i])
	}
	return h.buf
}
