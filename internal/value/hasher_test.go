package value

import (
	"testing"
)

// TestHasherAgreesWithKey asserts the scratch-buffer encodings are
// byte-identical to the allocating package-level ones, across reuse.
func TestHasherAgreesWithKey(t *testing.T) {
	var h Hasher
	rows := []Row{
		{NewInt(1), NewString("x")},
		{NewVertex(7), NewPath(&Path{Vertices: []int64{7, 8}, Edges: []int64{3}}), Null},
		{}, // empty row
		{NewList([]Value{NewFloat(1.5), NewBool(true)})},
	}
	for _, r := range rows {
		if got, want := string(h.RowKey(r)), RowKey(r); got != want {
			t.Errorf("RowKey(%v): hasher %q, package %q", r, got, want)
		}
	}
	for _, r := range rows {
		for _, v := range r {
			if got, want := string(h.ValueKey(v)), Key(v); got != want {
				t.Errorf("ValueKey(%v): hasher %q, package %q", v, got, want)
			}
		}
	}
	r := Row{NewInt(1), NewString("x"), NewVertex(2)}
	if got, want := string(h.ColsKey(r, []int{2, 0})), Key(r[2])+Key(r[0]); got != want {
		t.Errorf("ColsKey: hasher %q, want %q", got, want)
	}
}

// TestHasherScratchReuse asserts successive calls overwrite (not grow)
// the same scratch buffer and that probes through it allocate nothing.
func TestHasherScratchReuse(t *testing.T) {
	var h Hasher
	long := Row{NewString("a long string value to grow the buffer")}
	short := Row{NewInt(1)}
	h.RowKey(long)
	k := h.RowKey(short)
	if string(k) != RowKey(short) {
		t.Fatalf("scratch not reset between calls: %q", k)
	}
	m := map[string]int{RowKey(short): 42}
	allocs := testing.AllocsPerRun(100, func() {
		if m[string(h.RowKey(short))] != 42 {
			t.Fatal("probe missed")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state probe allocates %.1f/op, want 0", allocs)
	}
}
