package workload

import (
	"testing"

	"pgiv/internal/snapshot"
)

func TestSocialDeterminism(t *testing.T) {
	a := GenerateSocial(DefaultSocialConfig(1))
	b := GenerateSocial(DefaultSocialConfig(1))
	if a.G.NumVertices() != b.G.NumVertices() || a.G.NumEdges() != b.G.NumEdges() {
		t.Errorf("same seed produced different graphs: %d/%d vs %d/%d",
			a.G.NumVertices(), a.G.NumEdges(), b.G.NumVertices(), b.G.NumEdges())
	}
	if len(a.Persons) != 100 || len(a.Posts) != 400 {
		t.Errorf("entity counts: %d persons, %d posts", len(a.Persons), len(a.Posts))
	}
	// Churn keeps the graph usable and tracked IDs valid.
	before := a.G.NumVertices()
	a.Churn(50)
	if a.G.NumVertices() == 0 {
		t.Error("graph emptied by churn")
	}
	_ = before
}

func TestSocialQueriesEvaluate(t *testing.T) {
	s := GenerateSocial(SocialConfig{
		Persons: 10, PostsPerPerson: 2, RepliesPerPost: 3,
		KnowsPerPerson: 2, LikesPerPerson: 1, Seed: 1,
	})
	for name, q := range SocialQueries {
		if _, err := snapshot.Query(s.G, q, nil); err != nil {
			t.Errorf("query %s: %v", name, err)
		}
	}
}

func TestTrainGeneratorShape(t *testing.T) {
	tr := GenerateTrain(DefaultTrainConfig(1))
	if len(tr.Routes) != 20 {
		t.Errorf("routes = %d", len(tr.Routes))
	}
	if len(tr.Switches) != 20*5 {
		t.Errorf("switches = %d", len(tr.Switches))
	}
	if len(tr.Segments) != 20*5*8 {
		t.Errorf("segments = %d", len(tr.Segments))
	}
	if tr.G.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
}

func TestTrainQueriesHaveFaults(t *testing.T) {
	tr := GenerateTrain(TrainConfig{
		Routes: 10, SwitchesPerRoute: 4, SegmentsPerSwitch: 6,
		FaultRate: 0.3, Seed: 5,
	})
	// With a high fault rate every constraint except the structural ones
	// should have violations; all queries must at least evaluate.
	for name, q := range TrainQueries {
		res, err := snapshot.Query(tr.G, q, nil)
		if err != nil {
			t.Fatalf("query %s: %v", name, err)
		}
		switch name {
		case "PosLength", "SwitchMonitored", "RouteSensor", "SwitchSet":
			if len(res.Rows) == 0 {
				t.Errorf("query %s found no violations at fault rate 0.3", name)
			}
		}
	}
}

func TestTrainInjectRepair(t *testing.T) {
	tr := GenerateTrain(TrainConfig{
		Routes: 5, SwitchesPerRoute: 3, SegmentsPerSwitch: 4,
		FaultRate: 0, Seed: 9,
	})
	posQ := TrainQueries["PosLength"]
	res, _ := snapshot.Query(tr.G, posQ, nil)
	if len(res.Rows) != 0 {
		t.Fatalf("fault-free model has %d PosLength violations", len(res.Rows))
	}
	tr.InjectPosLength()
	res, _ = snapshot.Query(tr.G, posQ, nil)
	if len(res.Rows) != 1 {
		t.Fatalf("after inject: %d violations", len(res.Rows))
	}
	// Monitored switches: removing one edge creates exactly one
	// violation.
	swQ := TrainQueries["SwitchMonitored"]
	res, _ = snapshot.Query(tr.G, swQ, nil)
	base := len(res.Rows)
	if !tr.InjectSwitchMonitored() {
		t.Fatal("inject failed")
	}
	res, _ = snapshot.Query(tr.G, swQ, nil)
	if len(res.Rows) != base+1 {
		t.Fatalf("after inject: %d violations (base %d)", len(res.Rows), base)
	}
	if !tr.RepairSwitchMonitored() {
		t.Fatal("repair failed")
	}
	res, _ = snapshot.Query(tr.G, swQ, nil)
	if len(res.Rows) != base {
		t.Fatalf("after repair: %d violations (base %d)", len(res.Rows), base)
	}
}

func TestRandomGenerator(t *testing.T) {
	g, vids, eids := GenerateRandom(DefaultRandomConfig(20, 40, 3))
	if g.NumVertices() != 20 || len(vids) != 20 {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != len(eids) {
		t.Errorf("edges = %d vs %d ids", g.NumEdges(), len(eids))
	}
	g2, _, _ := GenerateRandom(DefaultRandomConfig(20, 40, 3))
	if g2.NumEdges() != g.NumEdges() {
		t.Error("same seed produced different edge counts")
	}
}
