// Package workload provides deterministic, seeded workload generators for
// the evaluation:
//
//   - a social-network generator modelled on the entities of the paper's
//     running example and the LDBC Social Network Benchmark it cites
//     (Persons, Posts, Comments, KNOWS/LIKES/REPLY edges, language
//     properties), with a fine-grained update stream;
//   - a railway-model generator following the structure of the Train
//     Benchmark (the paper's continuous model validation use case), with
//     the standard queries and inject/repair transformation mixes;
//   - a uniform random graph generator for property-based tests.
//
// Substitution note (see DESIGN.md): the original LDBC and Train
// Benchmark generators are external Java/Hadoop tools; these native
// generators reproduce the entity/edge structure and update
// characteristics that the paper's claims depend on, not the exact
// datasets.
package workload

import (
	"fmt"
	"math/rand"

	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// SocialConfig parameterises the social network generator.
type SocialConfig struct {
	Persons        int
	PostsPerPerson int
	RepliesPerPost int // size of each post's reply tree
	KnowsPerPerson int
	LikesPerPerson int
	Langs          []string
	Seed           int64
}

// DefaultSocialConfig returns a configuration scaled by the given factor
// (scale 1 ≈ 1.3k vertices).
func DefaultSocialConfig(scale int) SocialConfig {
	if scale < 1 {
		scale = 1
	}
	return SocialConfig{
		Persons:        100 * scale,
		PostsPerPerson: 4,
		RepliesPerPost: 8,
		KnowsPerPerson: 6,
		LikesPerPerson: 5,
		Langs:          []string{"en", "de", "fr", "hu"},
		Seed:           42,
	}
}

// Social is a generated social network with handles for the update
// stream.
type Social struct {
	G        *graph.Graph
	Persons  []graph.ID
	Posts    []graph.ID
	Comments []graph.ID
	cfg      SocialConfig
	rng      *rand.Rand
}

var cities = []string{"berlin", "budapest", "aachen", "paris", "wien"}

// GenerateSocial builds a social network graph.
func GenerateSocial(cfg SocialConfig) *Social {
	s := &Social{G: graph.New(), cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if len(s.cfg.Langs) == 0 {
		s.cfg.Langs = []string{"en"}
	}
	for i := 0; i < cfg.Persons; i++ {
		id := s.G.AddVertex([]string{"Person"}, map[string]value.Value{
			"name":  value.NewString(fmt.Sprintf("person-%d", i)),
			"city":  value.NewString(cities[s.rng.Intn(len(cities))]),
			"score": value.NewInt(int64(s.rng.Intn(100))),
		})
		s.Persons = append(s.Persons, id)
	}
	for _, p := range s.Persons {
		for k := 0; k < cfg.KnowsPerPerson; k++ {
			q := s.Persons[s.rng.Intn(len(s.Persons))]
			if q == p {
				continue
			}
			_, _ = s.G.AddEdge(p, q, "KNOWS", map[string]value.Value{
				"weight": value.NewInt(int64(s.rng.Intn(10))),
			})
		}
	}
	for _, p := range s.Persons {
		for k := 0; k < cfg.PostsPerPerson; k++ {
			post := s.G.AddVertex([]string{"Post"}, map[string]value.Value{
				"lang":  value.NewString(s.lang()),
				"score": value.NewInt(int64(s.rng.Intn(100))),
			})
			s.Posts = append(s.Posts, post)
			_, _ = s.G.AddEdge(p, post, "AUTHORED", nil)
			// Grow a reply tree under the post: each comment replies to
			// the post or to an earlier comment of the same thread (the
			// paper's REPLY edges point from the message to its reply).
			thread := []graph.ID{post}
			for r := 0; r < cfg.RepliesPerPost; r++ {
				parent := thread[s.rng.Intn(len(thread))]
				c := s.G.AddVertex([]string{"Comm"}, map[string]value.Value{
					"lang":  value.NewString(s.lang()),
					"score": value.NewInt(int64(s.rng.Intn(100))),
				})
				s.Comments = append(s.Comments, c)
				_, _ = s.G.AddEdge(parent, c, "REPLY", nil)
				thread = append(thread, c)
			}
		}
	}
	for _, p := range s.Persons {
		for k := 0; k < cfg.LikesPerPerson; k++ {
			if len(s.Posts) == 0 {
				break
			}
			post := s.Posts[s.rng.Intn(len(s.Posts))]
			_, _ = s.G.AddEdge(p, post, "LIKES", nil)
		}
	}
	return s
}

func (s *Social) lang() string { return s.cfg.Langs[s.rng.Intn(len(s.cfg.Langs))] }

// AddComment inserts a new comment replying to a random message and
// returns its ID.
func (s *Social) AddComment() graph.ID {
	var parent graph.ID
	if len(s.Comments) > 0 && s.rng.Intn(2) == 0 {
		parent = s.Comments[s.rng.Intn(len(s.Comments))]
	} else if len(s.Posts) > 0 {
		parent = s.Posts[s.rng.Intn(len(s.Posts))]
	} else {
		return 0
	}
	c := s.G.AddVertex([]string{"Comm"}, map[string]value.Value{
		"lang":  value.NewString(s.lang()),
		"score": value.NewInt(int64(s.rng.Intn(100))),
	})
	_, _ = s.G.AddEdge(parent, c, "REPLY", nil)
	s.Comments = append(s.Comments, c)
	return c
}

// RemoveComment deletes a random comment (with its incident edges).
func (s *Social) RemoveComment() bool {
	for len(s.Comments) > 0 {
		i := s.rng.Intn(len(s.Comments))
		id := s.Comments[i]
		s.Comments[i] = s.Comments[len(s.Comments)-1]
		s.Comments = s.Comments[:len(s.Comments)-1]
		if err := s.G.RemoveVertex(id); err == nil {
			return true
		}
	}
	return false
}

// FlipLanguage changes the lang property of a random message — the FGN
// update: a single property-level event.
func (s *Social) FlipLanguage() graph.ID {
	pool := s.Posts
	if len(s.Comments) > 0 && s.rng.Intn(2) == 0 {
		pool = s.Comments
	}
	if len(pool) == 0 {
		return 0
	}
	id := pool[s.rng.Intn(len(pool))]
	_ = s.G.SetVertexProperty(id, "lang", value.NewString(s.lang()))
	return id
}

// FlipScore changes the score property of a random person.
func (s *Social) FlipScore() graph.ID {
	if len(s.Persons) == 0 {
		return 0
	}
	id := s.Persons[s.rng.Intn(len(s.Persons))]
	_ = s.G.SetVertexProperty(id, "score", value.NewInt(int64(s.rng.Intn(100))))
	return id
}

// AddKnows inserts a KNOWS edge between random persons.
func (s *Social) AddKnows() {
	if len(s.Persons) < 2 {
		return
	}
	p := s.Persons[s.rng.Intn(len(s.Persons))]
	q := s.Persons[s.rng.Intn(len(s.Persons))]
	if p != q {
		_, _ = s.G.AddEdge(p, q, "KNOWS", map[string]value.Value{
			"weight": value.NewInt(int64(s.rng.Intn(10))),
		})
	}
}

// RemoveKnows deletes a random KNOWS edge.
func (s *Social) RemoveKnows() {
	es := s.G.EdgesByType("KNOWS")
	if len(es) == 0 {
		return
	}
	_ = s.G.RemoveEdge(es[s.rng.Intn(len(es))].ID)
}

// Churn applies n random fine-grained updates drawn from the full
// operation mix.
func (s *Social) Churn(n int) {
	for i := 0; i < n; i++ {
		switch s.rng.Intn(6) {
		case 0:
			s.AddComment()
		case 1:
			s.RemoveComment()
		case 2, 3:
			s.FlipLanguage()
		case 4:
			s.AddKnows()
		case 5:
			s.RemoveKnows()
		}
	}
}

// SocialQueries is the social-network view battery used in benchmarks.
var SocialQueries = map[string]string{
	"threads":     "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
	"same-lang":   "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
	"popular":     "MATCH (u:Person)-[:LIKES]->(p:Post) RETURN p, count(u)",
	"fof":         "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE NOT (a)-[:KNOWS]->(c) RETURN a, c",
	"lonely":      "MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
	"deep-thread": "MATCH t = (p:Post)-[:REPLY*3..]->(c:Comm) RETURN p, c, length(t)",
}
