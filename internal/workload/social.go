// Package workload provides deterministic, seeded workload generators for
// the evaluation:
//
//   - a social-network generator modelled on the entities of the paper's
//     running example and the LDBC Social Network Benchmark it cites
//     (Persons, Posts, Comments, KNOWS/LIKES/REPLY edges, language
//     properties), with a fine-grained update stream;
//   - a railway-model generator following the structure of the Train
//     Benchmark (the paper's continuous model validation use case), with
//     the standard queries and inject/repair transformation mixes;
//   - a uniform random graph generator for property-based tests.
//
// All generators write through graph.Mutator, so the same deterministic
// operation stream can load through one batched transaction (the
// default — one coalesced propagation pass for the whole dataset) or
// through auto-committed per-operation transactions (the baseline the
// loading benchmarks compare against). Both paths produce byte-identical
// graphs: IDs are assigned in the same order either way.
//
// Substitution note (see DESIGN.md): the original LDBC and Train
// Benchmark generators are external Java/Hadoop tools; these native
// generators reproduce the entity/edge structure and update
// characteristics that the paper's claims depend on, not the exact
// datasets.
package workload

import (
	"fmt"
	"math/rand"

	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// SocialConfig parameterises the social network generator.
type SocialConfig struct {
	Persons        int
	PostsPerPerson int
	RepliesPerPost int // size of each post's reply tree
	KnowsPerPerson int
	LikesPerPerson int
	Langs          []string
	Seed           int64
}

// DefaultSocialConfig returns a configuration scaled by the given factor
// (scale 1 ≈ 1.3k vertices).
func DefaultSocialConfig(scale int) SocialConfig {
	if scale < 1 {
		scale = 1
	}
	return SocialConfig{
		Persons:        100 * scale,
		PostsPerPerson: 4,
		RepliesPerPost: 8,
		KnowsPerPerson: 6,
		LikesPerPerson: 5,
		Langs:          []string{"en", "de", "fr", "hu"},
		Seed:           42,
	}
}

// Social is a generated social network with handles for the update
// stream.
type Social struct {
	G        *graph.Graph
	Persons  []graph.ID
	Posts    []graph.ID
	Comments []graph.ID
	cfg      SocialConfig
	rng      *rand.Rand
}

var cities = []string{"berlin", "budapest", "aachen", "paris", "wien"}

// NewSocial creates an empty social workload bound to a fresh graph.
// Register views on s.G before calling Load/LoadPerOp to measure (or
// exercise) view maintenance during loading.
func NewSocial(cfg SocialConfig) *Social {
	s := &Social{G: graph.New(), cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if len(s.cfg.Langs) == 0 {
		s.cfg.Langs = []string{"en"}
	}
	return s
}

// GenerateSocial builds a social network graph, loading it in a single
// batched transaction.
func GenerateSocial(cfg SocialConfig) *Social {
	s := NewSocial(cfg)
	s.Load()
	return s
}

// Load populates the graph in one transaction: listeners receive a
// single coalesced ChangeSet for the entire dataset.
func (s *Social) Load() {
	_ = s.G.Batch(func(tx *graph.Tx) error {
		s.build(tx)
		return nil
	})
}

// LoadPerOp populates the graph through auto-committed one-operation
// transactions — the per-operation baseline for the loading benchmarks.
// The resulting graph is identical to Load's.
func (s *Social) LoadPerOp() { s.build(s.G) }

// build emits the deterministic generation stream through m.
func (s *Social) build(m graph.Mutator) {
	cfg := s.cfg
	for i := 0; i < cfg.Persons; i++ {
		id := m.AddVertex([]string{"Person"}, map[string]value.Value{
			"name":  value.NewString(fmt.Sprintf("person-%d", i)),
			"city":  value.NewString(cities[s.rng.Intn(len(cities))]),
			"score": value.NewInt(int64(s.rng.Intn(100))),
		})
		s.Persons = append(s.Persons, id)
	}
	for _, p := range s.Persons {
		for k := 0; k < cfg.KnowsPerPerson; k++ {
			q := s.Persons[s.rng.Intn(len(s.Persons))]
			if q == p {
				continue
			}
			_, _ = m.AddEdge(p, q, "KNOWS", map[string]value.Value{
				"weight": value.NewInt(int64(s.rng.Intn(10))),
			})
		}
	}
	for _, p := range s.Persons {
		for k := 0; k < cfg.PostsPerPerson; k++ {
			post := m.AddVertex([]string{"Post"}, map[string]value.Value{
				"lang":  value.NewString(s.lang()),
				"score": value.NewInt(int64(s.rng.Intn(100))),
			})
			s.Posts = append(s.Posts, post)
			_, _ = m.AddEdge(p, post, "AUTHORED", nil)
			// Grow a reply tree under the post: each comment replies to
			// the post or to an earlier comment of the same thread (the
			// paper's REPLY edges point from the message to its reply).
			thread := []graph.ID{post}
			for r := 0; r < cfg.RepliesPerPost; r++ {
				parent := thread[s.rng.Intn(len(thread))]
				c := m.AddVertex([]string{"Comm"}, map[string]value.Value{
					"lang":  value.NewString(s.lang()),
					"score": value.NewInt(int64(s.rng.Intn(100))),
				})
				s.Comments = append(s.Comments, c)
				_, _ = m.AddEdge(parent, c, "REPLY", nil)
				thread = append(thread, c)
			}
		}
	}
	for _, p := range s.Persons {
		for k := 0; k < cfg.LikesPerPerson; k++ {
			if len(s.Posts) == 0 {
				break
			}
			post := s.Posts[s.rng.Intn(len(s.Posts))]
			_, _ = m.AddEdge(p, post, "LIKES", nil)
		}
	}
}

func (s *Social) lang() string { return s.cfg.Langs[s.rng.Intn(len(s.cfg.Langs))] }

// AddComment inserts a new comment replying to a random message and
// returns its ID (auto-committed).
func (s *Social) AddComment() graph.ID { return s.addComment(s.G) }

func (s *Social) addComment(m graph.Mutator) graph.ID {
	var parent graph.ID
	if len(s.Comments) > 0 && s.rng.Intn(2) == 0 {
		parent = s.Comments[s.rng.Intn(len(s.Comments))]
	} else if len(s.Posts) > 0 {
		parent = s.Posts[s.rng.Intn(len(s.Posts))]
	} else {
		return 0
	}
	c := m.AddVertex([]string{"Comm"}, map[string]value.Value{
		"lang":  value.NewString(s.lang()),
		"score": value.NewInt(int64(s.rng.Intn(100))),
	})
	_, _ = m.AddEdge(parent, c, "REPLY", nil)
	s.Comments = append(s.Comments, c)
	return c
}

// RemoveComment deletes a random comment (with its incident edges,
// auto-committed).
func (s *Social) RemoveComment() bool { return s.removeComment(s.G) }

func (s *Social) removeComment(m graph.Mutator) bool {
	for len(s.Comments) > 0 {
		i := s.rng.Intn(len(s.Comments))
		id := s.Comments[i]
		s.Comments[i] = s.Comments[len(s.Comments)-1]
		s.Comments = s.Comments[:len(s.Comments)-1]
		if err := m.RemoveVertex(id); err == nil {
			return true
		}
	}
	return false
}

// FlipLanguage changes the lang property of a random message — the FGN
// update: a single property-level transition (auto-committed).
func (s *Social) FlipLanguage() graph.ID { return s.flipLanguage(s.G) }

func (s *Social) flipLanguage(m graph.Mutator) graph.ID {
	pool := s.Posts
	if len(s.Comments) > 0 && s.rng.Intn(2) == 0 {
		pool = s.Comments
	}
	if len(pool) == 0 {
		return 0
	}
	id := pool[s.rng.Intn(len(pool))]
	_ = m.SetVertexProperty(id, "lang", value.NewString(s.lang()))
	return id
}

// FlipScore changes the score property of a random person
// (auto-committed).
func (s *Social) FlipScore() graph.ID { return s.flipScore(s.G) }

func (s *Social) flipScore(m graph.Mutator) graph.ID {
	if len(s.Persons) == 0 {
		return 0
	}
	id := s.Persons[s.rng.Intn(len(s.Persons))]
	_ = m.SetVertexProperty(id, "score", value.NewInt(int64(s.rng.Intn(100))))
	return id
}

// FlipPostScore changes the score property of a random post
// (auto-committed) — the post-leaderboard update of the ranked battery.
func (s *Social) FlipPostScore() graph.ID { return s.flipPostScore(s.G) }

func (s *Social) flipPostScore(m graph.Mutator) graph.ID {
	if len(s.Posts) == 0 {
		return 0
	}
	id := s.Posts[s.rng.Intn(len(s.Posts))]
	_ = m.SetVertexProperty(id, "score", value.NewInt(int64(s.rng.Intn(100))))
	return id
}

// ChurnScores applies n random score flips across persons and posts,
// each auto-committed — the update stream of the leaderboard experiment
// (EXP-N): every flip can move a row into, out of, or within the
// registered top-K windows.
func (s *Social) ChurnScores(n int) {
	for i := 0; i < n; i++ {
		if s.rng.Intn(3) == 0 {
			s.flipPostScore(s.G)
		} else {
			s.flipScore(s.G)
		}
	}
}

// AddKnows inserts a KNOWS edge between random persons (auto-committed).
func (s *Social) AddKnows() { s.addKnows(s.G) }

func (s *Social) addKnows(m graph.Mutator) {
	if len(s.Persons) < 2 {
		return
	}
	p := s.Persons[s.rng.Intn(len(s.Persons))]
	q := s.Persons[s.rng.Intn(len(s.Persons))]
	if p != q {
		_, _ = m.AddEdge(p, q, "KNOWS", map[string]value.Value{
			"weight": value.NewInt(int64(s.rng.Intn(10))),
		})
	}
}

// RemoveKnows deletes a random KNOWS edge (auto-committed).
func (s *Social) RemoveKnows() { s.removeKnows(s.G) }

func (s *Social) removeKnows(m graph.Mutator) {
	es := s.G.EdgesByType("KNOWS")
	if len(es) == 0 {
		return
	}
	_ = m.RemoveEdge(es[s.rng.Intn(len(es))].ID)
}

// churn applies n random fine-grained updates drawn from the full
// operation mix through m.
func (s *Social) churn(m graph.Mutator, n int) {
	for i := 0; i < n; i++ {
		switch s.rng.Intn(6) {
		case 0:
			s.addComment(m)
		case 1:
			s.removeComment(m)
		case 2, 3:
			s.flipLanguage(m)
		case 4:
			s.addKnows(m)
		case 5:
			s.removeKnows(m)
		}
	}
}

// Churn applies n random fine-grained updates, each auto-committed (one
// propagation pass per update).
func (s *Social) Churn(n int) { s.churn(s.G, n) }

// ChurnBatch applies n random updates inside one transaction (one
// coalesced propagation pass for the whole mix).
func (s *Social) ChurnBatch(n int) {
	_ = s.G.Batch(func(tx *graph.Tx) error {
		s.churn(tx, n)
		return nil
	})
}

// SocialQueries is the social-network view battery used in benchmarks.
var SocialQueries = map[string]string{
	"threads":     "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
	"same-lang":   "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
	"popular":     "MATCH (u:Person)-[:LIKES]->(p:Post) RETURN p, count(u)",
	"fof":         "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE NOT (a)-[:KNOWS]->(c) RETURN a, c",
	"lonely":      "MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
	"deep-thread": "MATCH t = (p:Post)-[:REPLY*3..]->(c:Comm) RETURN p, c, length(t)",
}

// SocialRankedQueries is the leaderboard battery (EXP-N): ordered
// top-K/windowed views over churning score properties — the
// ORDER BY/SKIP/LIMIT workload class the order-statistic TopKNode
// maintains incrementally. Scores are drawn from 0..99 over hundreds of
// vertices, so window boundaries regularly cut through ties and the
// deterministic tie-break is on the hot path.
var SocialRankedQueries = map[string]string{
	"top10-persons":  "MATCH (a:Person) RETURN a.name, a.score ORDER BY a.score DESC, a.name LIMIT 10",
	"top100-persons": "MATCH (a:Person) RETURN a.name, a.score ORDER BY a.score DESC, a.name LIMIT 100",
	"mid-board":      "MATCH (a:Person) RETURN a.name, a.score ORDER BY a.score DESC, a.name SKIP 45 LIMIT 10",
	"top10-posts":    "MATCH (p:Post) RETURN p, p.score ORDER BY p.score DESC LIMIT 10",
	"top-langs":      "MATCH (p:Post) WITH p.lang AS l, count(*) AS n ORDER BY n DESC, l LIMIT 2 RETURN l, n",
}

// SocialRoutingQueries is the shortest-path battery (EXP-S): bounded-hop
// weighted and unweighted shortest-path views over the churning KNOWS
// graph. Every KNOWS edge carries an integer weight in 0..9, so weighted
// and unweighted routes genuinely differ, and AddKnows/RemoveKnows churn
// moves witnesses on nearly every commit.
var SocialRoutingQueries = map[string]string{
	"route-hops":   "MATCH t = shortestPath((a:Person)-[:KNOWS*1..2]->(b:Person)) RETURN a, b, cost(t)",
	"route-weight": "MATCH t = shortestPath((a:Person)-[:KNOWS*1..2 {weight}]->(b:Person)) RETURN a, b, cost(t)",
	"route-both":   "MATCH t = shortestPath((a:Person)-[:KNOWS*1..2 {weight}]-(b:Person)) RETURN a, b, cost(t), length(t)",
}

// SocialOptionalQueries is the optional-match battery (EXP-M): the same
// social graph queried through OPTIONAL MATCH left outer joins and WITH
// projection horizons — kept separate from SocialQueries so the
// longstanding EXP-A..L figures stay comparable across PRs.
var SocialOptionalQueries = map[string]string{
	"opt-knows":    "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b",
	"opt-likes":    "MATCH (p:Post) OPTIONAL MATCH (p)<-[:LIKES]-(u:Person) WHERE u.score >= 50 RETURN p, u",
	"opt-reply":    "MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
	"opt-count":    "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) RETURN a, count(b)",
	"with-friends": "MATCH (a:Person)-[:KNOWS]->(b:Person) WITH a, count(b) AS friends WHERE friends >= 3 RETURN a, friends",
	"with-langs":   "MATCH (p:Post) WITH p.lang AS l, count(*) AS n RETURN l, n",
}
