package workload

import (
	"math/rand"

	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// RandomConfig parameterises the uniform random graph generator used by
// property-based tests and micro-benchmarks.
type RandomConfig struct {
	Vertices int
	Edges    int
	Labels   []string
	Types    []string
	PropKeys []string
	Seed     int64
}

// DefaultRandomConfig returns a small random graph configuration.
func DefaultRandomConfig(vertices, edges int, seed int64) RandomConfig {
	return RandomConfig{
		Vertices: vertices,
		Edges:    edges,
		Labels:   []string{"A", "B", "C"},
		Types:    []string{"X", "Y"},
		PropKeys: []string{"p", "q"},
		Seed:     seed,
	}
}

// GenerateRandom builds a uniform random multigraph in one batched
// transaction: every vertex gets a random label subset and integer
// properties; every edge connects two uniformly chosen vertices
// (self-loops included) with a random type.
func GenerateRandom(cfg RandomConfig) (*graph.Graph, []graph.ID, []graph.ID) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()
	var vids, eids []graph.ID
	_ = g.Batch(func(tx *graph.Tx) error {
		for i := 0; i < cfg.Vertices; i++ {
			var labels []string
			for _, l := range cfg.Labels {
				if rng.Intn(2) == 0 {
					labels = append(labels, l)
				}
			}
			props := make(map[string]value.Value)
			for _, k := range cfg.PropKeys {
				if rng.Intn(2) == 0 {
					props[k] = value.NewInt(int64(rng.Intn(10)))
				}
			}
			vids = append(vids, tx.AddVertex(labels, props))
		}
		for i := 0; i < cfg.Edges && len(vids) > 0; i++ {
			src := vids[rng.Intn(len(vids))]
			trg := vids[rng.Intn(len(vids))]
			typ := cfg.Types[rng.Intn(len(cfg.Types))]
			props := map[string]value.Value{"w": value.NewInt(int64(rng.Intn(10)))}
			id, err := tx.AddEdge(src, trg, typ, props)
			if err == nil {
				eids = append(eids, id)
			}
		}
		return nil
	})
	return g, vids, eids
}
