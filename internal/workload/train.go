package workload

import (
	"math/rand"

	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// TrainConfig parameterises the railway model generator. The model
// follows the Train Benchmark (Szárnyas et al., SoSyM 2017), the paper's
// motivating continuous-validation workload: routes follow switch
// positions targeting switches; sensors monitor track elements; routes
// require the sensors of their switches; semaphores guard route entries
// and exits. A fraction of the model is generated faulty so that each
// well-formedness query has matches ("inject" faults), and the update
// stream repairs or re-injects faults.
type TrainConfig struct {
	Routes            int
	SwitchesPerRoute  int
	SegmentsPerSwitch int
	FaultRate         float64 // fraction of elements generated faulty
	Seed              int64
}

// DefaultTrainConfig returns a configuration scaled by the given factor
// (scale 1 ≈ 1.2k vertices).
func DefaultTrainConfig(scale int) TrainConfig {
	if scale < 1 {
		scale = 1
	}
	return TrainConfig{
		Routes:            20 * scale,
		SwitchesPerRoute:  5,
		SegmentsPerSwitch: 8,
		FaultRate:         0.05,
		Seed:              42,
	}
}

// Train is a generated railway model with handles for the inject/repair
// update stream.
type Train struct {
	G          *graph.Graph
	Routes     []graph.ID
	Switches   []graph.ID
	Segments   []graph.ID
	Sensors    []graph.ID
	Semaphores []graph.ID
	cfg        TrainConfig
	rng        *rand.Rand

	monitoredBy map[graph.ID]graph.ID // switch → its monitoredBy edge (for inject/repair)
	requires    map[graph.ID]graph.ID // route → one of its requires edges
	mixCounter  int                   // rotates the inject/repair mix across calls
}

// positions a switch or switch position can take.
var positions = []string{"LEFT", "RIGHT", "STRAIGHT"}

// GenerateTrain builds a railway model, loading it in a single batched
// transaction.
func GenerateTrain(cfg TrainConfig) *Train {
	t := &Train{
		G: graph.New(), cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)),
		monitoredBy: make(map[graph.ID]graph.ID),
		requires:    make(map[graph.ID]graph.ID),
	}
	_ = t.G.Batch(func(tx *graph.Tx) error {
		t.build(tx)
		return nil
	})
	return t
}

// build emits the deterministic generation stream through g.
func (t *Train) build(g graph.Mutator) {
	cfg := t.cfg
	for r := 0; r < cfg.Routes; r++ {
		route := g.AddVertex([]string{"Route"}, nil)
		t.Routes = append(t.Routes, route)
		entry := g.AddVertex([]string{"Semaphore"}, map[string]value.Value{
			"signal": value.NewString(t.signal()),
		})
		exit := g.AddVertex([]string{"Semaphore"}, map[string]value.Value{
			"signal": value.NewString(t.signal()),
		})
		t.Semaphores = append(t.Semaphores, entry, exit)
		_, _ = g.AddEdge(route, entry, "entry", nil)
		_, _ = g.AddEdge(route, exit, "exit", nil)

		var prevSegment graph.ID
		for s := 0; s < cfg.SwitchesPerRoute; s++ {
			pos := positions[t.rng.Intn(len(positions))]
			cur := pos
			if t.rng.Float64() < cfg.FaultRate {
				// SwitchSet fault: the switch is not in the position the
				// route follows.
				cur = positions[(indexOf(positions, pos)+1)%len(positions)]
			}
			sw := g.AddVertex([]string{"Switch", "TrackElement"}, map[string]value.Value{
				"currentPosition": value.NewString(cur),
			})
			t.Switches = append(t.Switches, sw)
			swp := g.AddVertex([]string{"SwitchPosition"}, map[string]value.Value{
				"position": value.NewString(pos),
			})
			_, _ = g.AddEdge(route, swp, "follows", nil)
			_, _ = g.AddEdge(swp, sw, "target", nil)

			sensor := g.AddVertex([]string{"Sensor"}, nil)
			t.Sensors = append(t.Sensors, sensor)
			if t.rng.Float64() >= cfg.FaultRate {
				// SwitchMonitored fault when skipped: switch without sensor.
				eid, _ := g.AddEdge(sw, sensor, "monitoredBy", nil)
				t.monitoredBy[sw] = eid
			}
			if t.rng.Float64() >= cfg.FaultRate {
				// RouteSensor fault when skipped: the route does not
				// require the sensor of its switch.
				eid, _ := g.AddEdge(route, sensor, "requires", nil)
				t.requires[route] = eid
			}

			// A chain of segments monitored by the sensor, connected to
			// the switch and to each other.
			var prev graph.ID = sw
			for k := 0; k < cfg.SegmentsPerSwitch; k++ {
				length := int64(t.rng.Intn(1000) + 1)
				if t.rng.Float64() < cfg.FaultRate {
					// PosLength fault: non-positive length.
					length = -length + 1
				}
				seg := g.AddVertex([]string{"Segment", "TrackElement"}, map[string]value.Value{
					"length": value.NewInt(length),
				})
				t.Segments = append(t.Segments, seg)
				_, _ = g.AddEdge(seg, sensor, "monitoredBy", nil)
				_, _ = g.AddEdge(prev, seg, "connectsTo", nil)
				prev = seg
			}
			if prevSegment != 0 {
				_, _ = g.AddEdge(prevSegment, sw, "connectsTo", nil)
			}
			prevSegment = prev
		}
	}
}

func (t *Train) signal() string {
	if t.rng.Intn(3) == 0 {
		return "GO"
	}
	return "STOP"
}

func indexOf(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return 0
}

// TrainQueries are the Train Benchmark well-formedness queries expressed
// in the engine's openCypher fragment. Each returns the violations of one
// constraint.
var TrainQueries = map[string]string{
	// PosLength: every segment must have positive length.
	"PosLength": "MATCH (s:Segment) WHERE s.length <= 0 RETURN s, s.length",
	// SwitchMonitored: every switch must have a sensor.
	"SwitchMonitored": "MATCH (sw:Switch) WHERE NOT (sw)-[:monitoredBy]->(:Sensor) RETURN sw",
	// RouteSensor: a route following a switch position must require the
	// sensor monitoring the switch.
	"RouteSensor": "MATCH (r:Route)-[:follows]->(swp:SwitchPosition)-[:target]->(sw:Switch)-[:monitoredBy]->(s:Sensor) WHERE NOT (r)-[:requires]->(s) RETURN r, swp, sw, s",
	// SwitchSet: when the entry semaphore of a route shows GO, its
	// switches must stand in the position the route follows.
	"SwitchSet": "MATCH (sem:Semaphore)<-[:entry]-(r:Route)-[:follows]->(swp:SwitchPosition)-[:target]->(sw:Switch) WHERE sem.signal = 'GO' AND sw.currentPosition <> swp.position RETURN sem, r, swp, sw",
	// ConnectedSegments: sensors must monitor at most five consecutive
	// segments (six in a row under one sensor is a violation).
	"ConnectedSegments": "MATCH (s:Sensor)<-[:monitoredBy]-(s1:Segment)-[:connectsTo]->(s2:Segment)-[:connectsTo]->(s3:Segment)-[:connectsTo]->(s4:Segment)-[:connectsTo]->(s5:Segment)-[:connectsTo]->(s6:Segment), (s2)-[:monitoredBy]->(s), (s3)-[:monitoredBy]->(s), (s4)-[:monitoredBy]->(s), (s5)-[:monitoredBy]->(s), (s6)-[:monitoredBy]->(s) RETURN s1, s2, s3, s4, s5, s6",
	// SemaphoreNeighbor: routes connected by neighbouring sensors must
	// share the semaphore between exit and entry.
	"SemaphoreNeighbor": "MATCH (sem:Semaphore)<-[:exit]-(r1:Route)-[:requires]->(s1:Sensor)<-[:monitoredBy]-(te1:TrackElement)-[:connectsTo]->(te2:TrackElement)-[:monitoredBy]->(s2:Sensor)<-[:requires]-(r2:Route) WHERE NOT (r2)-[:entry]->(sem) AND r1 <> r2 RETURN sem, r1, r2",
}

// InjectPosLength makes a random segment invalid (length 0).
func (t *Train) InjectPosLength() graph.ID {
	if len(t.Segments) == 0 {
		return 0
	}
	id := t.Segments[t.rng.Intn(len(t.Segments))]
	_ = t.G.SetVertexProperty(id, "length", value.NewInt(0))
	return id
}

// RepairPosLength fixes a random invalid segment.
func (t *Train) RepairPosLength() graph.ID {
	if len(t.Segments) == 0 {
		return 0
	}
	id := t.Segments[t.rng.Intn(len(t.Segments))]
	_ = t.G.SetVertexProperty(id, "length", value.NewInt(int64(t.rng.Intn(1000)+1)))
	return id
}

// InjectSwitchMonitored removes the sensor edge of a random switch.
func (t *Train) InjectSwitchMonitored() bool {
	for sw, eid := range t.monitoredBy {
		if err := t.G.RemoveEdge(eid); err == nil {
			delete(t.monitoredBy, sw)
			return true
		}
	}
	return false
}

// RepairSwitchMonitored reattaches a sensor to a random unmonitored
// switch.
func (t *Train) RepairSwitchMonitored() bool {
	for _, sw := range t.Switches {
		if _, ok := t.monitoredBy[sw]; ok {
			continue
		}
		if len(t.Sensors) == 0 {
			return false
		}
		sensor := t.Sensors[t.rng.Intn(len(t.Sensors))]
		eid, err := t.G.AddEdge(sw, sensor, "monitoredBy", nil)
		if err == nil {
			t.monitoredBy[sw] = eid
			return true
		}
	}
	return false
}

// InjectSwitchSet flips a random switch out of its followed position.
func (t *Train) InjectSwitchSet() graph.ID {
	if len(t.Switches) == 0 {
		return 0
	}
	id := t.Switches[t.rng.Intn(len(t.Switches))]
	v, ok := t.G.VertexByID(id)
	if !ok {
		return 0
	}
	cur := v.Prop("currentPosition")
	next := positions[(indexOf(positions, cur.Str())+1)%len(positions)]
	_ = t.G.SetVertexProperty(id, "currentPosition", value.NewString(next))
	return id
}

// FlipSemaphore toggles a random semaphore between GO and STOP.
func (t *Train) FlipSemaphore() graph.ID {
	if len(t.Semaphores) == 0 {
		return 0
	}
	id := t.Semaphores[t.rng.Intn(len(t.Semaphores))]
	v, ok := t.G.VertexByID(id)
	if !ok {
		return 0
	}
	sig := "GO"
	if v.Prop("signal").Str() == "GO" {
		sig = "STOP"
	}
	_ = t.G.SetVertexProperty(id, "signal", value.NewString(sig))
	return id
}

// InjectRepairMix applies n alternating inject/repair operations across
// all constraint kinds (the Train Benchmark's continuous validation
// scenario). The rotation persists across calls, so calling it with n=1
// repeatedly cycles through all operation kinds.
func (t *Train) InjectRepairMix(n int) {
	for j := 0; j < n; j++ {
		i := t.mixCounter
		t.mixCounter++
		switch i % 6 {
		case 0:
			t.InjectPosLength()
		case 1:
			t.RepairPosLength()
		case 2:
			t.InjectSwitchMonitored()
		case 3:
			t.RepairSwitchMonitored()
		case 4:
			t.InjectSwitchSet()
		case 5:
			t.FlipSemaphore()
		}
	}
}
