package workload

import (
	"fmt"
	"math/rand"
)

// SocialReadWriteMix yields the request streams of EXP-P: a sustained
// write stream (SocialWriteMix statements, with an occasional bulk
// statement so commits are sometimes slow — exactly the case where a
// serialized read path queues) and a read stream mixing ad-hoc snapshot
// queries with registered-view reads, the serving-traffic shape of a
// social feed: mostly cheap view lookups, some heavier scans.
type SocialReadWriteMix struct {
	Writes *SocialWriteMix
	rng    *rand.Rand
}

// ReadReq is one read request of the mix: either an ad-hoc query (View
// empty) or a view read by name.
type ReadReq struct {
	View  string // registered view name, or "" for ad-hoc
	Query string // query text when View == ""
}

// ReadViews returns the views the read mix consults; register them (in
// this order, any names) before driving reads. The queries exercise an
// aggregate view and an ordered leaderboard — both incrementally
// maintained, both read wait-free under MVCC.
func ReadViews() []string {
	return []string{
		"MATCH (c:Comm) RETURN c.lang, count(*), avg(c.score)",
		"MATCH (c:Comm) RETURN c.score, c.lang ORDER BY c.score DESC, c.lang LIMIT 20",
	}
}

// NewSocialReadWriteMix builds the paired streams around an existing
// write mix, deterministic for a given seed and graph state.
func NewSocialReadWriteMix(w *SocialWriteMix, seed int64) *SocialReadWriteMix {
	return &SocialReadWriteMix{Writes: w, rng: rand.New(rand.NewSource(seed))}
}

// NextWrite returns the next write statement. Roughly one in eight is a
// bulk multi-CREATE whose commit is markedly slower than the rest —
// under a serialized server every concurrent read queues behind it.
func (m *SocialReadWriteMix) NextWrite() string {
	if m.rng.Intn(5) == 0 {
		lang := []string{"en", "de", "fr", "hu"}[m.rng.Intn(4)]
		stmt := ""
		for i := 0; i < 250; i++ {
			if i > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(:Comm {lang: '%s', score: %d})", lang, m.rng.Intn(100))
		}
		return "CREATE " + stmt
	}
	return m.Writes.Next()
}

// NextRead returns the next read request: mostly view reads — the
// serving-traffic common case, wait-free under MVCC — plus an
// occasional cheap ad-hoc snapshot query. (Deliberately expensive
// ad-hoc reads are exercised separately by the slow-read phase of
// EXP-P; here they would drown the lock-vs-lock-free comparison in
// evaluation CPU on a single-core host.)
func (m *SocialReadWriteMix) NextRead(viewNames []string) ReadReq {
	if m.rng.Intn(10) < 9 {
		return ReadReq{View: viewNames[m.rng.Intn(len(viewNames))]}
	}
	return ReadReq{Query: "MATCH (t:Tag) RETURN count(*)"}
}
