package workload

import (
	"fmt"
	"math/rand"

	"pgiv/internal/graph"
)

// SocialWriteMix yields a reproducible stream of Cypher write statements
// driving churn on a social graph — the load-driver mix of EXP-O. The
// mix covers every write clause: comment creation (MATCH … CREATE),
// score and language updates (SET), tag upserts (MERGE + CREATE edge),
// label flips (SET/REMOVE :Hot) and comment deletion (DETACH DELETE).
// Statements reference vertices by id() looked up against the live
// graph, so a statement whose target has since vanished binds zero rows
// and commits nothing — mirroring real interactive traffic.
type SocialWriteMix struct {
	g     *graph.Graph
	rng   *rand.Rand
	langs []string
}

// NewSocialWriteMix builds a statement stream over g, deterministic for
// a given seed and graph state.
func NewSocialWriteMix(g *graph.Graph, seed int64) *SocialWriteMix {
	return &SocialWriteMix{
		g: g, rng: rand.New(rand.NewSource(seed)),
		langs: []string{"en", "de", "fr", "hu"},
	}
}

func (m *SocialWriteMix) pick(label string) (graph.ID, bool) {
	vs := m.g.VerticesByLabel(label)
	if len(vs) == 0 {
		return 0, false
	}
	return vs[m.rng.Intn(len(vs))].ID, true
}

// Next returns the next write statement of the mix.
func (m *SocialWriteMix) Next() string {
	lang := m.langs[m.rng.Intn(len(m.langs))]
	score := m.rng.Intn(100)
	switch p := m.rng.Intn(100); {
	case p < 30: // reply to a random post or comment
		parent, ok := m.pick("Post")
		if m.rng.Intn(2) == 0 {
			if c, okc := m.pick("Comm"); okc {
				parent, ok = c, true
			}
		}
		if !ok {
			return fmt.Sprintf("CREATE (:Comm {lang: '%s', score: %d})", lang, score)
		}
		return fmt.Sprintf(
			"MATCH (p) WHERE id(p) = %d CREATE (p)-[:REPLY]->(:Comm {lang: '%s', score: %d})",
			parent, lang, score)
	case p < 55: // score update
		id, ok := m.pick("Comm")
		if !ok {
			id, ok = m.pick("Post")
		}
		if !ok {
			return "CREATE (:Post {lang: 'en', score: 0})"
		}
		return fmt.Sprintf("MATCH (n) WHERE id(n) = %d SET n.score = %d", id, score)
	case p < 70: // language flip
		id, ok := m.pick("Post")
		if !ok {
			return fmt.Sprintf("CREATE (:Post {lang: '%s', score: %d})", lang, score)
		}
		return fmt.Sprintf("MATCH (p) WHERE id(p) = %d SET p.lang = '%s'", id, lang)
	case p < 80: // tag upsert: MERGE the tag node, then attach
		id, ok := m.pick("Post")
		if !ok {
			return fmt.Sprintf("MERGE (:Tag {name: 'tag-%d'})", m.rng.Intn(16))
		}
		return fmt.Sprintf(
			"MATCH (p) WHERE id(p) = %d MERGE (t:Tag {name: 'tag-%d'}) CREATE (p)-[:TAGGED]->(t)",
			id, m.rng.Intn(16))
	case p < 90: // label flip
		id, ok := m.pick("Person")
		if !ok {
			return "MERGE (:Person {name: 'seed'})"
		}
		if m.rng.Intn(2) == 0 {
			return fmt.Sprintf("MATCH (n) WHERE id(n) = %d SET n:Hot", id)
		}
		return fmt.Sprintf("MATCH (n) WHERE id(n) = %d REMOVE n:Hot", id)
	default: // delete a comment subtree root
		id, ok := m.pick("Comm")
		if !ok {
			return fmt.Sprintf("CREATE (:Comm {lang: '%s', score: %d})", lang, score)
		}
		return fmt.Sprintf("MATCH (c:Comm) WHERE id(c) = %d DETACH DELETE c", id)
	}
}
