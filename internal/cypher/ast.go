package cypher

import (
	"fmt"
	"sort"
	"strings"

	"pgiv/internal/value"
)

// Query is a parsed read query:
// (MATCH | OPTIONAL MATCH | UNWIND | WITH)* RETURN.
type Query struct {
	Reading []Clause
	Return  *ReturnClause
}

// Clause is a reading clause: *MatchClause, *UnwindClause or
// *WithClause.
type Clause interface{ clauseNode() }

// MatchClause is a [OPTIONAL] MATCH with optional WHERE. For an
// OPTIONAL MATCH the WHERE belongs to the optional pattern: it filters
// candidate matches before the match outcome is decided, so a failing
// predicate yields the null-padded row, not an eliminated row.
type MatchClause struct {
	Optional bool
	Patterns []*PathPattern
	Where    Expr // nil if absent
}

func (*MatchClause) clauseNode() {}

// UnwindClause is UNWIND expr AS alias.
type UnwindClause struct {
	Expr  Expr
	Alias string
}

func (*UnwindClause) clauseNode() {}

// WithClause is WITH [DISTINCT] items [ORDER BY ...] [SKIP n] [LIMIT n]
// [WHERE expr]: a horizon in the query — the projection replaces the
// working relation, ORDER BY/SKIP/LIMIT window the projected rows, and
// the WHERE filters the windowed rows (acting as HAVING when items
// aggregate). Every item carries an alias (non-variable expressions must
// be aliased explicitly, per openCypher).
type WithClause struct {
	Distinct bool
	Items    []ReturnItem
	OrderBy  []SortItem
	Skip     Expr // nil if absent
	Limit    Expr // nil if absent
	Where    Expr // nil if absent
}

func (*WithClause) clauseNode() {}

// PathPattern is one comma-separated pattern of a MATCH clause, optionally
// bound to a path variable: Var = (n0)-[r0]->(n1)-...
// len(Nodes) == len(Rels)+1.
type PathPattern struct {
	Var      string // named path variable, "" if unnamed
	Nodes    []*NodePattern
	Rels     []*RelPattern
	Shortest bool // wrapped in shortestPath(...): exactly one var-length rel
}

// NodePattern is (var:Label1:Label2 {key: expr, ...}).
type NodePattern struct {
	Var    string
	Labels []string
	Props  map[string]Expr
}

// Direction of a relationship pattern.
type Direction uint8

// Relationship directions.
const (
	DirOut  Direction = iota // -[]->
	DirIn                    // <-[]-
	DirBoth                  // -[]-
)

// RelPattern is -[var:TYPE1|TYPE2 *min..max {key: expr}]->.
// For fixed-length relationships VarLength is false and Min == Max == 1.
// Max == -1 means unbounded. WeightProp is the bare name form {w} inside a
// shortestPath relationship: the edge property whose sum the path minimizes
// ("" for unweighted, i.e. hop-count, shortest paths).
type RelPattern struct {
	Var        string
	Types      []string
	Dir        Direction
	VarLength  bool
	Min        int
	Max        int
	Props      map[string]Expr
	WeightProp string
}

// ReturnClause is RETURN [DISTINCT] items [ORDER BY ...] [SKIP n] [LIMIT n].
type ReturnClause struct {
	Distinct bool
	Items    []ReturnItem
	OrderBy  []SortItem
	Skip     Expr // nil if absent
	Limit    Expr // nil if absent
}

// ReturnItem is expr [AS alias]. Alias is always non-empty after parsing
// (defaulted to the expression text).
type ReturnItem struct {
	Expr  Expr
	Alias string
}

// SortItem is expr [ASC|DESC].
type SortItem struct {
	Expr Expr
	Desc bool
}

// Expr is an expression AST node.
type Expr interface {
	exprNode()
	String() string
}

// Literal is a constant value.
type Literal struct{ Val value.Value }

// Variable references a bound variable.
type Variable struct{ Name string }

// Parameter is a $name query parameter, substituted at compile time.
type Parameter struct{ Name string }

// PropAccess is subject.key (property access on a vertex, edge or map).
type PropAccess struct {
	Subject Expr
	Key     string
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpXor
	OpIn
	OpStartsWith
	OpEndsWith
	OpContains
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpPow:
		return "^"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpXor:
		return "XOR"
	case OpIn:
		return "IN"
	case OpStartsWith:
		return "STARTS WITH"
	case OpEndsWith:
		return "ENDS WITH"
	case OpContains:
		return "CONTAINS"
	}
	return "?"
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	OpNeg UnOp = iota
	OpNot
)

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// FuncCall invokes a built-in function; Name is lower-case.
type FuncCall struct {
	Name     string
	Distinct bool
	Args     []Expr
}

// CountStar is count(*).
type CountStar struct{}

// ListLit is a list literal [e1, e2, ...].
type ListLit struct{ Elems []Expr }

// MapLit is a map literal {k1: e1, k2: e2, ...}.
type MapLit struct{ Entries map[string]Expr }

// PatternPredicate is a pattern used as a predicate in WHERE, e.g.
// WHERE (a)-[:KNOWS]->(b) or WHERE NOT (s)-[:monitoredBy]->(:Sensor).
// It is only supported as a (possibly NOT-negated) top-level conjunct of
// WHERE, where it compiles to a semijoin (antijoin when negated).
type PatternPredicate struct{ Pattern *PathPattern }

func (*Literal) exprNode()          {}
func (*Variable) exprNode()         {}
func (*Parameter) exprNode()        {}
func (*PropAccess) exprNode()       {}
func (*Binary) exprNode()           {}
func (*Unary) exprNode()            {}
func (*IsNull) exprNode()           {}
func (*FuncCall) exprNode()         {}
func (*CountStar) exprNode()        {}
func (*ListLit) exprNode()          {}
func (*MapLit) exprNode()           {}
func (*PatternPredicate) exprNode() {}

func (e *Literal) String() string   { return e.Val.String() }
func (e *Variable) String() string  { return e.Name }
func (e *Parameter) String() string { return "$" + e.Name }
func (e *PropAccess) String() string {
	return fmt.Sprintf("%s.%s", e.Subject.String(), e.Key)
}
func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), e.Op, e.R.String())
}
func (e *Unary) String() string {
	if e.Op == OpNot {
		return fmt.Sprintf("(NOT %s)", e.X.String())
	}
	return fmt.Sprintf("(-%s)", e.X.String())
}
func (e *IsNull) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X.String())
	}
	return fmt.Sprintf("(%s IS NULL)", e.X.String())
}
func (e *FuncCall) String() string {
	var args []string
	for _, a := range e.Args {
		args = append(args, a.String())
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", e.Name, d, strings.Join(args, ", "))
}
func (e *CountStar) String() string { return "count(*)" }
func (e *PatternPredicate) String() string {
	var sb strings.Builder
	for i, n := range e.Pattern.Nodes {
		if i > 0 {
			r := e.Pattern.Rels[i-1]
			switch r.Dir {
			case DirIn:
				sb.WriteString("<-[]-")
			case DirOut:
				sb.WriteString("-[]->")
			default:
				sb.WriteString("-[]-")
			}
		}
		sb.WriteByte('(')
		sb.WriteString(n.Var)
		for _, l := range n.Labels {
			sb.WriteByte(':')
			sb.WriteString(l)
		}
		sb.WriteByte(')')
	}
	return sb.String()
}
func (e *ListLit) String() string {
	var elems []string
	for _, x := range e.Elems {
		elems = append(elems, x.String())
	}
	return "[" + strings.Join(elems, ", ") + "]"
}
func (e *MapLit) String() string {
	keys := make([]string, 0, len(e.Entries))
	for k := range e.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, k+": "+e.Entries[k].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// aggregateFuncs are the built-in aggregation functions.
var aggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"collect": true,
}

// IsAggregate reports whether e is an aggregation function call or
// count(*).
func IsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *CountStar:
		return true
	case *FuncCall:
		return aggregateFuncs[x.Name]
	}
	return false
}

// ContainsAggregate reports whether any subexpression of e is an
// aggregation.
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if IsAggregate(x) {
			found = true
		}
	})
	return found
}

// WalkExpr invokes fn on e and every subexpression, pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *PropAccess:
		WalkExpr(x.Subject, fn)
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Unary:
		WalkExpr(x.X, fn)
	case *IsNull:
		WalkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *ListLit:
		for _, el := range x.Elems {
			WalkExpr(el, fn)
		}
	case *MapLit:
		keys := make([]string, 0, len(x.Entries))
		for k := range x.Entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			WalkExpr(x.Entries[k], fn)
		}
	}
}

// RewriteExpr rebuilds e bottom-up, replacing every subexpression x with
// fn(x). fn receives each node after its children have been rewritten and
// must return a non-nil expression (return the argument to keep it).
// Subexpression containers are mutated in place.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *PropAccess:
		x.Subject = RewriteExpr(x.Subject, fn)
	case *Binary:
		x.L = RewriteExpr(x.L, fn)
		x.R = RewriteExpr(x.R, fn)
	case *Unary:
		x.X = RewriteExpr(x.X, fn)
	case *IsNull:
		x.X = RewriteExpr(x.X, fn)
	case *FuncCall:
		for i, a := range x.Args {
			x.Args[i] = RewriteExpr(a, fn)
		}
	case *ListLit:
		for i, el := range x.Elems {
			x.Elems[i] = RewriteExpr(el, fn)
		}
	case *MapLit:
		for k, v := range x.Entries {
			x.Entries[k] = RewriteExpr(v, fn)
		}
	}
	return fn(e)
}

// Variables returns the sorted set of variable names referenced by e.
func Variables(e Expr) []string {
	set := make(map[string]bool)
	WalkExpr(e, func(x Expr) {
		if v, ok := x.(*Variable); ok {
			set[v.Name] = true
		}
	})
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
