package cypher

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseSimpleMatch(t *testing.T) {
	q := mustParse(t, "MATCH (p:Post) RETURN p")
	m := q.Reading[0].(*MatchClause)
	if len(m.Patterns) != 1 {
		t.Fatal("pattern count")
	}
	n := m.Patterns[0].Nodes[0]
	if n.Var != "p" || len(n.Labels) != 1 || n.Labels[0] != "Post" {
		t.Errorf("node = %+v", n)
	}
	if q.Return.Items[0].Alias != "p" {
		t.Errorf("alias = %q", q.Return.Items[0].Alias)
	}
}

func TestParseRelationshipForms(t *testing.T) {
	cases := []struct {
		src  string
		dir  Direction
		min  int
		max  int
		varl bool
	}{
		{"MATCH (a)-[r:T]->(b) RETURN a", DirOut, 1, 1, false},
		{"MATCH (a)<-[r:T]-(b) RETURN a", DirIn, 1, 1, false},
		{"MATCH (a)-[r:T]-(b) RETURN a", DirBoth, 1, 1, false},
		{"MATCH (a)-->(b) RETURN a", DirOut, 1, 1, false},
		{"MATCH (a)<--(b) RETURN a", DirIn, 1, 1, false},
		{"MATCH (a)--(b) RETURN a", DirBoth, 1, 1, false},
		{"MATCH (a)-[:T*]->(b) RETURN a", DirOut, 1, -1, true},
		{"MATCH (a)-[:T*3]->(b) RETURN a", DirOut, 3, 3, true},
		{"MATCH (a)-[:T*2..5]->(b) RETURN a", DirOut, 2, 5, true},
		{"MATCH (a)-[:T*2..]->(b) RETURN a", DirOut, 2, -1, true},
		{"MATCH (a)-[:T*..4]->(b) RETURN a", DirOut, 1, 4, true},
		{"MATCH (a)-[:T*0..2]->(b) RETURN a", DirOut, 0, 2, true},
	}
	for _, c := range cases {
		q := mustParse(t, c.src)
		r := q.Reading[0].(*MatchClause).Patterns[0].Rels[0]
		if r.Dir != c.dir || r.Min != c.min || r.Max != c.max || r.VarLength != c.varl {
			t.Errorf("%s: got dir=%d min=%d max=%d varl=%v", c.src, r.Dir, r.Min, r.Max, r.VarLength)
		}
	}
}

func TestParseMultipleTypes(t *testing.T) {
	q := mustParse(t, "MATCH (a)-[r:X|Y|Z]->(b) RETURN r")
	r := q.Reading[0].(*MatchClause).Patterns[0].Rels[0]
	if len(r.Types) != 3 || r.Types[0] != "X" || r.Types[2] != "Z" {
		t.Errorf("types = %v", r.Types)
	}
}

func TestParseNamedPathAndProps(t *testing.T) {
	q := mustParse(t, "MATCH t = (p:Post {lang: 'en', score: 3})-[:REPLY*]->(c) RETURN t")
	pat := q.Reading[0].(*MatchClause).Patterns[0]
	if pat.Var != "t" {
		t.Errorf("path var = %q", pat.Var)
	}
	if len(pat.Nodes[0].Props) != 2 {
		t.Errorf("props = %v", pat.Nodes[0].Props)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":            "(1 + (2 * 3))",
		"(1 + 2) * 3":          "((1 + 2) * 3)",
		"a.x = 1 AND b.y <> 2": "((a.x = 1) AND (b.y <> 2))",
		"NOT a OR b":           "((NOT a) OR b)",
		"a XOR b AND c":        "(a XOR (b AND c))",
		"1 < 2 < 3":            "((1 < 2) AND (2 < 3))",
		"x IN [1, 2]":          "(x IN [1, 2])",
		"name STARTS WITH 'A'": `(name STARTS WITH "A")`,
		"name ENDS WITH 'z'":   `(name ENDS WITH "z")`,
		"name CONTAINS 'mid'":  `(name CONTAINS "mid")`,
		"x IS NULL":            "(x IS NULL)",
		"x IS NOT NULL":        "(x IS NOT NULL)",
		"-x":                   "(-x)",
		"-3":                   "-3",
		"2 ^ 3 ^ 2":            "(2 ^ (3 ^ 2))",
		"size(nodes(t))":       "size(nodes(t))",
		"count(DISTINCT a)":    "count(DISTINCT a)",
		"coalesce(a, b, 1)":    "coalesce(a, b, 1)",
		"$param + 1":           "($param + 1)",
		"5 % 2":                "(5 % 2)",
		"1.5e2":                "150",
		"exists(a.x)":          "(a.x IS NOT NULL)",
	}
	for src, want := range cases {
		e, err := ParseExpression(src)
		if err != nil {
			t.Errorf("ParseExpression(%q): %v", src, err)
			continue
		}
		if got := e.String(); got != want {
			t.Errorf("ParseExpression(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestParseReturnModifiers(t *testing.T) {
	q := mustParse(t, "MATCH (a) RETURN DISTINCT a.x AS x, count(*) ORDER BY x DESC, a.x ASC SKIP 2 LIMIT 10")
	r := q.Return
	if !r.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if len(r.Items) != 2 || r.Items[0].Alias != "x" {
		t.Errorf("items = %+v", r.Items)
	}
	if len(r.OrderBy) != 2 || !r.OrderBy[0].Desc || r.OrderBy[1].Desc {
		t.Errorf("order by = %+v", r.OrderBy)
	}
	if r.Skip == nil || r.Limit == nil {
		t.Error("skip/limit missing")
	}
}

func TestParseWithModifiers(t *testing.T) {
	q := mustParse(t, "MATCH (a) WITH a ORDER BY a.score DESC SKIP 1 LIMIT 5 WHERE a.score > 2 RETURN a")
	w := q.Reading[1].(*WithClause)
	if len(w.OrderBy) != 1 || !w.OrderBy[0].Desc {
		t.Errorf("order by = %+v", w.OrderBy)
	}
	if w.Skip == nil || w.Limit == nil {
		t.Error("skip/limit missing")
	}
	if w.Where == nil {
		t.Error("where missing")
	}
}

func TestParseUnwind(t *testing.T) {
	q := mustParse(t, "MATCH t = (a)-[:R*]->(b) UNWIND nodes(t) AS n RETURN n")
	u := q.Reading[1].(*UnwindClause)
	if u.Alias != "n" || u.Expr.String() != "nodes(t)" {
		t.Errorf("unwind = %+v", u)
	}
}

func TestParsePatternPredicate(t *testing.T) {
	q := mustParse(t, "MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a")
	w := q.Reading[0].(*MatchClause).Where
	un, ok := w.(*Unary)
	if !ok || un.Op != OpNot {
		t.Fatalf("where = %T %s", w, w.String())
	}
	pp, ok := un.X.(*PatternPredicate)
	if !ok {
		t.Fatalf("inner = %T", un.X)
	}
	if len(pp.Pattern.Rels) != 1 || pp.Pattern.Nodes[1].Labels[0] != "Person" {
		t.Errorf("pattern = %+v", pp.Pattern)
	}

	// A parenthesised expression must not parse as a pattern.
	q2 := mustParse(t, "MATCH (a) WHERE (a.x) > 1 RETURN a")
	if _, ok := q2.Reading[0].(*MatchClause).Where.(*Binary); !ok {
		t.Error("parenthesised expression misparsed")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	mustParse(t, "match (a) where a.x = 1 return a")
	mustParse(t, "Match (a) Return a")
}

func TestParseComments(t *testing.T) {
	mustParse(t, "MATCH (a) // line comment\nRETURN a /* block */")
}

func TestParseQuotedIdentifier(t *testing.T) {
	q := mustParse(t, "MATCH (`weird var`:`My Label`) RETURN `weird var`")
	n := q.Reading[0].(*MatchClause).Patterns[0].Nodes[0]
	if n.Var != "weird var" || n.Labels[0] != "My Label" {
		t.Errorf("node = %+v", n)
	}
}

func TestParseOptionalMatch(t *testing.T) {
	q := mustParse(t, "MATCH (a:Person) OPTIONAL MATCH (a)-[e:KNOWS]->(b:Person) WHERE b.score > 5 RETURN a, b")
	if len(q.Reading) != 2 {
		t.Fatalf("clause count = %d", len(q.Reading))
	}
	m0 := q.Reading[0].(*MatchClause)
	if m0.Optional {
		t.Error("first MATCH should not be optional")
	}
	m1 := q.Reading[1].(*MatchClause)
	if !m1.Optional {
		t.Error("second MATCH should be optional")
	}
	if m1.Where == nil {
		t.Error("optional WHERE lost")
	}
	if m1.Patterns[0].Rels[0].Var != "e" {
		t.Errorf("rel = %+v", m1.Patterns[0].Rels[0])
	}
}

func TestParseWith(t *testing.T) {
	q := mustParse(t, "MATCH (a:Person)-[:KNOWS]->(b) WITH a, count(b) AS friends WHERE friends >= 2 RETURN a, friends")
	w := q.Reading[1].(*WithClause)
	if len(w.Items) != 2 {
		t.Fatalf("item count = %d", len(w.Items))
	}
	if w.Items[0].Alias != "a" || w.Items[1].Alias != "friends" {
		t.Errorf("aliases = %q, %q", w.Items[0].Alias, w.Items[1].Alias)
	}
	if !IsAggregate(w.Items[1].Expr) {
		t.Error("second item should be an aggregate")
	}
	if w.Where == nil {
		t.Error("WITH ... WHERE lost")
	}
	if w.Distinct {
		t.Error("not distinct")
	}

	q2 := mustParse(t, "MATCH (a:Person) WITH DISTINCT a.city AS city RETURN city")
	w2 := q2.Reading[1].(*WithClause)
	if !w2.Distinct || w2.Items[0].Alias != "city" {
		t.Errorf("with = %+v", w2)
	}
}

func TestParseDepthLimit(t *testing.T) {
	// Deeply nested expressions must produce an error, never a panic or
	// stack overflow (the go-fuzz contract of the parser).
	deep := strings.Repeat("(", 20000) + "1" + strings.Repeat(")", 20000)
	if _, err := Parse("MATCH (a) WHERE a.x = " + deep + " RETURN a"); err == nil {
		t.Error("deeply nested parentheses should error")
	}
	if _, err := Parse("RETURN " + strings.Repeat("NOT ", 20000) + "TRUE"); err == nil {
		t.Error("deep NOT chain should error")
	}
	if _, err := Parse("RETURN " + strings.Repeat("-", 20000) + "1"); err == nil {
		t.Error("deep unary-minus chain should error")
	}
	if _, err := Parse("RETURN 2" + strings.Repeat("^2", 20000)); err == nil {
		t.Error("deep power chain should error")
	}
	// Moderate nesting still parses.
	ok := strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100)
	mustParse(t, "RETURN "+ok+" AS x")
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"MATCH (a)",                       // no RETURN
		"RETURN",                          // empty return
		"MATCH (a RETURN a",               // unclosed node
		"MATCH (a)-[*1..0]->(b) RETURN a", // bad bounds
		"MATCH (a)<-[:T]->(b) RETURN a",   // both directions
		"OPTIONAL (a) RETURN a",           // OPTIONAL without MATCH
		"MATCH (a) WITH a.x RETURN a",     // unaliased WITH expression
		"MATCH (a) WITH a ORDER RETURN a", // ORDER without BY in WITH
		"MATCH (a) WITH RETURN a",         // empty WITH
		"MATCH (a) RETURN a extra",        // trailing tokens
		"MATCH (a) WHERE a.x = 'unterminated RETURN a",
		"MATCH (a) RETURN a.x AS x, a.y AS x ORDER", // incomplete ORDER BY
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("MATCH (a) RETURN a ORDER LIMIT 1")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error should carry an offset, got %v", err)
	}
}

func TestAggregateDetection(t *testing.T) {
	e, _ := ParseExpression("count(x) + 1")
	if !ContainsAggregate(e) {
		t.Error("ContainsAggregate missed count(x)")
	}
	if IsAggregate(e) {
		t.Error("count(x)+1 is not a bare aggregate")
	}
	e2, _ := ParseExpression("min(a)")
	if !IsAggregate(e2) {
		t.Error("min is an aggregate")
	}
	e3, _ := ParseExpression("size(a)")
	if ContainsAggregate(e3) {
		t.Error("size is not an aggregate")
	}
}

func TestVariablesCollection(t *testing.T) {
	e, _ := ParseExpression("a.x + b * c(d)")
	got := strings.Join(Variables(e), ",")
	if got != "a,b,d" {
		t.Errorf("Variables = %s", got)
	}
}

func TestParseShortestPath(t *testing.T) {
	q := mustParse(t, "MATCH t = shortestPath((a:Person)-[:KNOWS*1..3 {weight, cat: 2}]->(b:Person)) RETURN a, b")
	pat := q.Reading[0].(*MatchClause).Patterns[0]
	if !pat.Shortest {
		t.Fatal("Shortest not set")
	}
	if pat.Var != "t" {
		t.Errorf("path var = %q", pat.Var)
	}
	r := pat.Rels[0]
	if !r.VarLength || r.Min != 1 || r.Max != 3 {
		t.Errorf("rel = %+v", r)
	}
	if r.WeightProp != "weight" {
		t.Errorf("weight prop = %q", r.WeightProp)
	}
	if len(r.Props) != 1 || r.Props["cat"] == nil {
		t.Errorf("edge preds = %+v", r.Props)
	}

	// Unnamed, case-insensitive keyword, no weight.
	q = mustParse(t, "MATCH SHORTESTPATH((a)-[:T*..4]-(b)) RETURN a")
	pat = q.Reading[0].(*MatchClause).Patterns[0]
	if !pat.Shortest || pat.Var != "" {
		t.Errorf("pattern = %+v", pat)
	}
	if r := pat.Rels[0]; r.Min != 1 || r.Max != 4 || r.Dir != DirBoth {
		t.Errorf("rel = %+v", r)
	}
}

func TestParseShortestPathErrors(t *testing.T) {
	cases := []string{
		// Two hops: shortestPath takes exactly one var-length rel.
		"MATCH shortestPath((a)-[:T*1..2]->(b)-[:T]->(c)) RETURN a",
		// Fixed-length rel inside shortestPath.
		"MATCH shortestPath((a)-[:T]->(b)) RETURN a",
		// Two bare names in the brace: at most one weight property.
		"MATCH shortestPath((a)-[:T*1..2 {w, v}]->(b)) RETURN a",
		// A weight property is only meaningful on a var-length rel.
		"MATCH (a)-[:T {w}]->(b) RETURN a",
		// Missing closing paren.
		"MATCH shortestPath((a)-[:T*1..2]->(b) RETURN a",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parsed without error", src)
		}
	}
}
