package cypher

import "testing"

// fuzzSeedQueries is the seed corpus of FuzzParse: every query string
// literal that appears anywhere in this repository (tests, workloads,
// benchmarks, examples), valid and deliberately invalid alike, plus a
// few adversarial extras. Regenerate by grepping for MATCH/OPTIONAL/
// UNWIND/RETURN/WITH string literals.
var fuzzSeedQueries = []string{
	"MATCH",
	// Extended path grammar: shortestPath, weight properties and
	// interior-edge predicates (PR 10), valid and malformed alike.
	"MATCH t = shortestPath((a:Person)-[:KNOWS*1..3 {weight}]->(b:Person)) RETURN a, b, cost(t)",
	"MATCH shortestPath((a)-[:T*..4 {w, k: 2}]-(b)) RETURN a",
	"MATCH shortestPath((a)-[:T*0..]->(b)) RETURN a, b",
	"MATCH shortestPath((a)-[:T]->(b)) RETURN a",
	"MATCH shortestPath((a)-[:T*1..2 {w, v}]->(b)) RETURN a",
	"MATCH shortestPath((a)-[:T*1..2]->(b)-[:T]->(c)) RETURN a",
	"MATCH shortestPath((a)-[:T*0..2]->(b) RETURN a",
	"MATCH (a)-[:T {w}]->(b) RETURN a",
	"MATCH (a)-[:T*..3]->(b) RETURN a",
	"MATCH (`weird var`:`My Label`) RETURN `weird var`",
	"MATCH (a RETURN a",
	"MATCH (a)",
	"MATCH (a) // line comment\nRETURN a /* block */",
	"MATCH (a) RETURN DISTINCT a",
	"MATCH (a) RETURN DISTINCT a ORDER BY a SKIP 1 LIMIT 2",
	"MATCH (a) RETURN DISTINCT a.x AS x, count(*) ORDER BY x DESC, a.x ASC SKIP 2 LIMIT 10",
	"MATCH (a) RETURN a AS x, a AS x",
	"MATCH (a) RETURN a LIMIT -1",
	"MATCH (a) RETURN a LIMIT 3",
	"MATCH (a) RETURN a ORDER BY a",
	"MATCH (a) RETURN a ORDER BY count(a)",
	"MATCH (a) RETURN a ORDER LIMIT 1",
	"MATCH (a) RETURN a SKIP 'x'",
	"MATCH (a) RETURN a SKIP 1",
	"MATCH (a) RETURN a extra",
	"MATCH (a) RETURN a.x AS x, a.y AS x ORDER",
	"MATCH (a) RETURN count(*)",
	"MATCH (a) RETURN count(a) + 1 AS n",
	"MATCH (a) RETURN id(a)",
	"MATCH (a) RETURN keys(a)",
	"MATCH (a) RETURN labels(a)",
	"MATCH (a) RETURN min(count(a)) AS n",
	"MATCH (a) UNWIND [1] AS a RETURN a",
	"MATCH (a) UNWIND count(a) AS x RETURN x",
	"MATCH (a) WHERE (a)-[:X]->(:B) OR a.p = 1 RETURN a",
	"MATCH (a) WHERE (a.x) > 1 RETURN a",
	"MATCH (a) WHERE a.x = ",
	"MATCH (a) WHERE a.x = 'unterminated RETURN a",
	"MATCH (a) WHERE count(a) > 1 RETURN a",
	"MATCH (a) WHERE size(labels(a)) > 1 RETURN a",
	"MATCH (a) WITH RETURN a",
	"MATCH (a) WITH a ORDER BY a RETURN a",
	"MATCH (a) WITH a.x RETURN a",
	"MATCH (a)--(b) RETURN a",
	"MATCH (a)-->(b) RETURN a",
	"MATCH (a)-[*1..0]->(b) RETURN a",
	"MATCH (a)-[:REPLY]->(a2) WHERE a.lang = a2.lang RETURN a, a2",
	"MATCH (a)-[:T*..4]->(b) RETURN a",
	"MATCH (a)-[:T*0..2]->(b) RETURN a",
	"MATCH (a)-[:T*2..5]->(b) RETURN a",
	"MATCH (a)-[:T*2..]->(b) RETURN a",
	"MATCH (a)-[:T*3]->(b) RETURN a",
	"MATCH (a)-[:T*]->(b) RETURN a",
	"MATCH (a)-[:X* {w: 1}]->(b) RETURN a",
	"MATCH (a)-[e:KNOWS]->(b) RETURN a, b",
	"MATCH (a)-[e:X]->(b), (c)-[e:X]->(d) RETURN a",
	"MATCH (a)-[e]->(b) RETURN type(e)",
	"MATCH (a)-[es:X*]->(b) RETURN es",
	"MATCH (a)-[r:T]-(b) RETURN a",
	"MATCH (a)-[r:T]->(b) RETURN a",
	"MATCH (a)-[r:X|Y|Z]->(b) RETURN r",
	"MATCH (a)<--(b) RETURN a",
	"MATCH (a)<-[:T]->(b) RETURN a",
	"MATCH (a)<-[r:T]-(b) RETURN a",
	"MATCH (a:A) RETURN a",
	"MATCH (a:A) RETURN a, id(a) AS i",
	"MATCH (a:A) WHERE (a)-[:X]->(:B) RETURN a",
	"MATCH (a:A) WHERE NOT (a)-[:X]->(:B) AND a.p = 1 RETURN a",
	"MATCH (a:A) WHERE a.p = 1 RETURN a",
	"MATCH (a:A) WHERE a.p > 1 AND a.p < 9 RETURN a.p",
	"MATCH (a:A)-[:X]->(b) MATCH (b)-[:Y]->(c) WHERE b.p = 1 RETURN a, c",
	"MATCH (a:A)-[:X]->(b)-[:X]->(a) RETURN a",
	"MATCH (a:A)-[:X]->(b:B) RETURN a, b",
	"MATCH (a:A)-[e:X]-(b) RETURN a",
	"MATCH (a:A)-[e:X]->(b) RETURN a, e, b",
	"MATCH (a:A)-[e:X]->(b) WHERE e.w > 1 AND b.y = 2 RETURN a",
	"MATCH (a:A)-[e:X]->(b), (c:C)-[f:Y]->(b) RETURN a, c",
	"MATCH (a:A)-[e:X]->(b:B) RETURN a",
	"MATCH (a:A)-[e:X]->(b:B) WHERE a.p = b.q AND e.w > 0 RETURN a, e.w",
	"MATCH (a:A)<-[e:X]-(b:B) RETURN a",
	"MATCH (a:P) WHERE a.score > $min RETURN a",
	"MATCH (a:P) WHERE a.score > 5 RETURN a",
	"MATCH (a:P) WHERE a.x > $missing RETURN a",
	"MATCH (a:Person {city: 'berlin'}) RETURN a",
	"MATCH (a:Person {name: 'Ann'}) RETURN a",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) RETURN a, count(b)",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) WITH a, count(b) AS k RETURN a, k",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[e:KNOWS]->(b:Person) WHERE b.score > 5 RETURN a, b",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[e:LIKES]->(p:Post) WHERE p.score > 3 RETURN a, p, p.score",
	"MATCH (a:Person) RETURN DISTINCT a.city",
	"MATCH (a:Person) RETURN a",
	"MATCH (a:Person) RETURN avg(a.score)",
	"MATCH (a:Person) RETURN avg(a.score), count(a.score)",
	"MATCH (a:Person) RETURN collect(a.name)",
	"MATCH (a:Person) RETURN collect(a.score)",
	"MATCH (a:Person) RETURN count(*)",
	"MATCH (a:Person) RETURN count(DISTINCT a.city)",
	"MATCH (a:Person) RETURN count(a.missing)",
	"MATCH (a:Person) RETURN min(a.score), max(a.score), sum(a.score)",
	"MATCH (a:Person) RETURN sum(a.score), min(a.score), max(a.score)",
	"MATCH (a:Person) WHERE (a)-[:LIKES]->(:Post) RETURN a",
	"MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
	"MATCH (a:Person) WHERE NOT (a)-[:LIKES]->(:Post) RETURN a.name",
	"MATCH (a:Person) WHERE a.name STARTS WITH 'A' RETURN a.name",
	"MATCH (a:Person) WHERE a.nick IS NULL RETURN a",
	"MATCH (a:Person) WHERE a.score > $min RETURN a.name",
	"MATCH (a:Person) WHERE a.score > 15 RETURN a.name",
	"MATCH (a:Person) WHERE a.score IN [1, 2, 3] RETURN a",
	"MATCH (a:Person) WITH DISTINCT a.city AS city RETURN city",
	"MATCH (a:Person) WITH a AS x WHERE x.score < 8 RETURN x.score, x",
	"MATCH (a:Person) WITH a WHERE (a)-[:LIKES]->(:Post) RETURN a.name",
	"MATCH (a:Person) WITH a WHERE a.score > 2 RETURN a, a.score",
	"MATCH (a:Person), (p:Post) WHERE a.score = p.score RETURN a, p",
	"MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b) WHERE NOT (b)-[:KNOWS]->(a) RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b) WITH a, count(b) AS friends WHERE friends >= 2 RETURN a, friends",
	"MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(a) RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN a, b, c",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) MATCH (b)-[:LIKES]->(p:Post) RETURN a, p",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b, %q",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, count(b)",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.score > %d RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.score > 5 RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.score > 6 RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person)",
	"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) RETURN a, c",
	"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE NOT (a)-[:KNOWS]->(c) RETURN a, c",
	"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE a.score > %d RETURN a, c",
	"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE a.score > 40 RETURN a, c",
	"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE a.score > 50 RETURN a, c",
	"MATCH (a:Person)-[:LIKES]->(b:Post) RETURN a, b",
	"MATCH (a:Person)-[:LIKES]->(p:Post)-[:REPLY]->(c) RETURN a, c",
	"MATCH (a:Person)-[e:KNOWS {weight: 3}]->(b) RETURN a, b",
	"MATCH (a:Person)-[e:KNOWS|LIKES]->(x) RETURN a, x",
	"MATCH (a:Person)-[e]->(b) RETURN a, e, b",
	"MATCH (a:S)-[:E*0..]->(b) RETURN a, b",
	"MATCH (a:S)-[:E*2..3]->(b:S) RETURN a, b",
	"MATCH (a:S)-[:E*]->(b:S) WHERE b.x = 1 RETURN a, b",
	"MATCH (a:S)<-[:E*1..4]-(b) RETURN a, b",
	"MATCH (b:Person) RETURN b",
	"MATCH (c)<-[:REPLY]-(p:Post) RETURN c",
	"MATCH (c:Comm) RETURN DISTINCT 1",
	"MATCH (c:Comm) RETURN c ORDER BY c.lang LIMIT 3",
	"MATCH (c:Comm) RETURN c.lang",
	"MATCH (c:Comm) RETURN c.lang, count(*)",
	"MATCH (f:Account:Flagged)-[:TRANSFER*1..2]->(a:Account) WHERE NOT (a)-[:TRANSFER]->(:Account:Flagged) RETURN DISTINCT a",
	"MATCH (h:Person:Hot) RETURN h, h.score",
	"MATCH (m:Comm) WHERE (m)-[:REPLY]->(:Comm) RETURN m",
	"MATCH (m:Comm) WHERE NOT (m)-[:REPLY]->(:Comm) RETURN m",
	"MATCH (n:P) RETURN n.a / 2 AS y",
	"MATCH (n:P) RETURN n.a / 2.0 AS y",
	"MATCH (n:P) WHERE n.a > $x RETURN n",
	"MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY*]->(c:Comm) RETURN p, c",
	"MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) OPTIONAL MATCH (c)-[:REPLY]->(d:Comm) RETURN p, c, d",
	"MATCH (p:Post) OPTIONAL MATCH (p)<-[:LIKES]-(u:Person) WHERE u.score >= 5 RETURN p, u",
	"MATCH (p:Post) RETURN count(*)",
	"MATCH (p:Post) RETURN p",
	"MATCH (p:Post) RETURN p ORDER BY p.lang LIMIT 3",
	"MATCH (p:Post) RETURN p.lang",
	"MATCH (p:Post) RETURN p.lang, count(*)",
	"MATCH (p:Post) RETURN p.lang, count(*) AS n",
	"MATCH (p:Post) RETURN p.lang, count(*) AS n, sum(p.score) AS total",
	"MATCH (p:Post) WHERE NOT (p)-[:REPLY*]->(:Comm {lang: 'de'}) RETURN p",
	"MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
	"MATCH (p:Post) WHERE p.lang = 'en' RETURN p.score",
	"MATCH (p:Post) WHERE p.score > 5 RETURN p, p.score",
	"MATCH (p:Post) WITH p.lang AS l, count(*) AS n RETURN l, n",
	"MATCH (p:Post)-[:REPLY*0..]->(m) RETURN m",
	"MATCH (p:Post)-[:REPLY*0..]->(m) RETURN p, m",
	"MATCH (p:Post)-[:REPLY*1..2]->(c:Comm) RETURN p, c",
	"MATCH (p:Post)-[:REPLY*2..4]->(c:Comm) RETURN p",
	"MATCH (p:Post)-[:REPLY*2..]->(c:Comm) RETURN p, c",
	"MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c",
	"MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
	"MATCH (p:Post)-[:REPLY]->(c) RETURN p, c",
	"MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p",
	"MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
	"MATCH (p:Post)<-[:LIKES]-(u:Person) RETURN p, u",
	"MATCH (r:Route)-[:follows]->(swp:SwitchPosition)-[:target]->(sw:Switch)-[:monitoredBy]->(s:Sensor) WHERE NOT (r)-[:requires]->(s) RETURN r, swp, sw, s",
	"MATCH (s:Segment) WHERE s.length <= 0 RETURN s",
	"MATCH (s:Segment) WHERE s.length <= 0 RETURN s, s.length",
	"MATCH (s:Sensor)<-[:monitoredBy]-(s1:Segment)-[:connectsTo]->(s2:Segment)-[:connectsTo]->(s3:Segment)-[:connectsTo]->(s4:Segment)-[:connectsTo]->(s5:Segment)-[:connectsTo]->(s6:Segment), (s2)-[:monitoredBy]->(s), (s3)-[:monitoredBy]->(s), (s4)-[:monitoredBy]->(s), (s5)-[:monitoredBy]->(s), (s6)-[:monitoredBy]->(s) RETURN s1, s2, s3, s4, s5, s6",
	"MATCH (sem:Semaphore)<-[:entry]-(r:Route)-[:follows]->(swp:SwitchPosition)-[:target]->(sw:Switch) WHERE sem.signal = 'GO' AND sw.currentPosition <> swp.position RETURN sem, r, swp, sw",
	"MATCH (sem:Semaphore)<-[:exit]-(r1:Route)-[:requires]->(s1:Sensor)<-[:monitoredBy]-(te1:TrackElement)-[:connectsTo]->(te2:TrackElement)-[:monitoredBy]->(s2:Sensor)<-[:requires]-(r2:Route) WHERE NOT (r2)-[:entry]->(sem) AND r1 <> r2 RETURN sem, r1, r2",
	"MATCH (src:Account)-[:TRANSFER]->(sink:Account) RETURN sink, count(DISTINCT src) AS senders",
	"MATCH (src:Account)-[:TRANSFER]->(sink:Account) RETURN sink, count(DISTINCT src) AS senders ORDER BY senders DESC LIMIT 3",
	"MATCH (sw:Switch) WHERE NOT (sw)-[:monitoredBy]->(:Sensor) RETURN sw",
	"MATCH (u:Person)-[:LIKES]->(p:Post) RETURN p, count(u)",
	"MATCH (w:Wide) WHERE w.p0 > 1 RETURN w, w.p0",
	"MATCH (x:A)-[:X]-(y) RETURN x, y",
	"MATCH (x:A)-[e:X]->(y)-[f:X]->(x) RETURN x",
	"MATCH (x:Comm)-[:REPLY]->(x2:Comm)-[:REPLY]->(x3:Comm)-[:REPLY]->(x) RETURN x, x2, x3",
	"MATCH (x:Nope) RETURN count(*), sum(x.s), min(x.s), collect(x)",
	"MATCH (x:Nope) RETURN x",
	"MATCH (x:Person) RETURN x",
	"MATCH (y:Person) RETURN y",
	"MATCH t = (a)-->(b) MATCH t = (c)-->(d) RETURN t",
	"MATCH t = (a)-[:R*]->(b) UNWIND nodes(t) AS n RETURN n",
	"MATCH t = (a)-[:X*]->(b) RETURN relationships(t), length(t)",
	"MATCH t = (a)-[:X*]->(b) UNWIND nodes(t) AS n RETURN n",
	"MATCH t = (a:A)-[:X*]->(b) UNWIND nodes(t) AS n RETURN n",
	"MATCH t = (a:A)-[:X*]->(b) UNWIND nodes(t) AS n RETURN n.x",
	"MATCH t = (a:Account)-[:TRANSFER*2..4]->(a) RETURN a, t",
	"MATCH t = (a:Person)-[:KNOWS*1..3]->(b:Person) RETURN a, b, length(t)",
	"MATCH t = (a:S)-[:E*]-(b:S) RETURN a, b, length(t)",
	"MATCH t = (a:S)-[:E*]->(b) RETURN a, b, t",
	"MATCH t = (p:Post {lang: 'en', score: 3})-[:REPLY*]->(c) RETURN t",
	"MATCH t = (p:Post)-[:REPLY*2..2]->(c:Comm) UNWIND nodes(t) AS n RETURN n",
	"MATCH t = (p:Post)-[:REPLY*3..]->(c:Comm) RETURN p, c, length(t)",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN length(t)",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN p, n",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN c, p",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
	"MATCH t = (x:S)-[:E*]->(y) WHERE x = $ignore RETURN t",
	"OPTIONAL",
	"OPTIONAL (a) RETURN a",
	"OPTIONAL MATCH (h:Person:Hot) RETURN h",
	"RETURN",
	"RETURN ",
	"RETURN 2",
	"UNWIND",
	"UNWIND 5 AS x RETURN x",
	"UNWIND [1, 2, 2, 3] AS x RETURN x, x * 2",
	"UNWIND [1, 2, 3, 4] AS x RETURN x SKIP 1 LIMIT 2",
	"UNWIND [1, 2, 3] AS x WITH x WHERE x % 2 = 1 RETURN x",
	"UNWIND [1, 2] AS x RETURN x",
	"UNWIND [3, 1, 2, 1] AS x RETURN x ORDER BY x",
	"UNWIND [3, 1, 2] AS x RETURN x ORDER BY x DESC",
	"UNWIND [] AS x RETURN x",
	"UNWIND [{k: 1}] AS m RETURN m",
	"UNWIND null AS x RETURN x",
	"WITH",
	"WITH ... WHERE lost",
	"MATCH (a{x:{y:{z:[1,[2,[3]]]}}}) RETURN a",
	`RETURN \'\\\'\'`,
	`RETURN "\\u0000"`,
	"MATCH (a) RETURN a.`weird.key`",
	"/* nested /* comment */ MATCH (a) RETURN a",
	"MATCH (a)-[:`t y p e`*1..2]->(b) RETURN b",
	"RETURN $p + $q",
	"RETURN 0.5e-3 ^ 2 % 3",
	"MATCH (a) WHERE a.x STARTS WITH NOT TRUE RETURN a",
	"WITH 1 AS x RETURN x",
	"OPTIONAL MATCH (a) OPTIONAL MATCH (b) RETURN a, b",
	// Write statements (PR 6): ParseStatement's grammar, valid and
	// invalid alike. Parse must reject all of these.
	"CREATE (:A)",
	"CREATE (a:A {x: 1}), (b:B {x: a.x + 1}), (a)-[:R {w: 2}]->(b)",
	"CREATE (a)-[:R]->(b)-[:S]->(a)",
	"CREATE (a), (a)",
	"CREATE p = (a)-[:R]->(b)",
	"CREATE (a:A {x: $p})",
	"CREATE",
	"CREATE ()",
	"CREATE (a:A)-[:R]-(b)",
	"CREATE (a)-[:R*]->(b)",
	"MATCH (n) SET n.x = 1, n.y = n.x + 1, n:Hot",
	"MATCH (n) SET n = 1",
	"MATCH (n) SET n.x += 1",
	"MATCH (n) REMOVE n.x, n:Hot",
	"MATCH (n) REMOVE",
	"MATCH (n) DELETE n",
	"MATCH (n) DETACH DELETE n",
	"MATCH (n) DETACH n",
	"MATCH (a)-[e:R]->(b) DELETE e",
	"MATCH (n) WHERE id(n) = 3 SET n.score = NULL",
	"MATCH (a), (b) WHERE id(a) = 1 AND id(b) = 2 CREATE (a)-[:KNOWS]->(b)",
	"MERGE (p:Person {name: 'Ann'})",
	"MERGE (p:Person {name: 'Ann'}) ON CREATE SET p.seen = 1 ON MATCH SET p.seen = p.seen + 1",
	"MERGE (a)-[:KNOWS]-(b)",
	"MERGE (a)-[:KNOWS|LIKES]->(b)",
	"MERGE (a)-[:R*1..2]->(b)",
	"MERGE p = (a)-[:R]->(b)",
	"MERGE (a) ON DELETE SET a.x = 1",
	"MERGE",
	"UNWIND [1, 2, 3] AS x CREATE (:N {v: x})",
	"UNWIND $rows AS r MERGE (:K {k: r})",
	"MATCH (a:Person) WITH a ORDER BY a.score DESC LIMIT 3 SET a:Top",
	"OPTIONAL MATCH (a:Gone) DELETE a",
	"MATCH (n) SET n.x = 1 RETURN n",
	"CREATE (n) MATCH (m) RETURN m",
	"MATCH (n) DELETE n CREATE (:X) MERGE (:Y) SET n.x = 1 REMOVE n.x",
	"CREATE (:X);",
}

// checkPatterns asserts the structural invariant of every parsed path
// pattern: one more node than relationships.
func checkPatterns(t *testing.T, src string, pats []*PathPattern) {
	t.Helper()
	for _, pat := range pats {
		if len(pat.Nodes) != len(pat.Rels)+1 {
			t.Fatalf("Parse(%q): pattern with %d nodes, %d rels", src, len(pat.Nodes), len(pat.Rels))
		}
	}
}

func checkReading(t *testing.T, src string, reading []Clause) {
	t.Helper()
	for _, cl := range reading {
		if m, ok := cl.(*MatchClause); ok {
			checkPatterns(t, src, m.Patterns)
		}
	}
}

// FuzzParse asserts the total-function contract of both parser entry
// points: any input returns an AST or an error — never a panic, never a
// stack overflow (bounded recursion depth) — and a successful parse is
// internally consistent. Parse (the read-only grammar) must reject
// every write statement; ParseStatement accepts both and tags them.
func FuzzParse(f *testing.F) {
	for _, q := range fuzzSeedQueries {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil {
			if q.Return == nil {
				t.Fatalf("Parse(%q) succeeded without a RETURN clause", src)
			}
			checkReading(t, src, q.Reading)
		} else if q != nil {
			t.Fatalf("Parse(%q) returned both a query and an error", src)
		}

		st, serr := ParseStatement(src)
		if serr != nil {
			if st != nil {
				t.Fatalf("ParseStatement(%q) returned both a statement and an error", src)
			}
			// ParseStatement's grammar is a superset of Parse's.
			if err == nil {
				t.Fatalf("ParseStatement(%q) failed but Parse succeeded: %v", src, serr)
			}
			return
		}
		if st.IsWrite() {
			// Parse must reject every write statement (read-only contract).
			if err == nil {
				t.Fatalf("Parse(%q) accepted a write statement", src)
			}
			w := st.Write
			if len(w.Updates) == 0 {
				t.Fatalf("ParseStatement(%q): write with no update clauses", src)
			}
			checkReading(t, src, w.Reading)
			for _, u := range w.Updates {
				switch c := u.(type) {
				case *CreateClause:
					checkPatterns(t, src, c.Patterns)
				case *MergeClause:
					checkPatterns(t, src, []*PathPattern{c.Pattern})
				}
			}
		} else if st.Read == nil || st.Read.Return == nil {
			t.Fatalf("ParseStatement(%q): read statement without RETURN", src)
		}
	})
}
