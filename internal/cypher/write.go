package cypher

// Statement is a parsed Cypher statement: either a read query (ending in
// RETURN) or a write statement (a reading prefix followed by one or more
// update clauses). Exactly one of Read and Write is non-nil.
type Statement struct {
	Read  *Query
	Write *WriteStatement
}

// IsWrite reports whether the statement mutates the graph.
func (s *Statement) IsWrite() bool { return s.Write != nil }

// WriteStatement is (MATCH | OPTIONAL MATCH | UNWIND | WITH)* followed by
// (CREATE | MERGE | SET | REMOVE | DELETE | DETACH DELETE)+. Per
// openCypher's eager write semantics the reading prefix is evaluated once,
// against the pre-statement graph, and the update clauses are then applied
// clause-major: each clause processes every binding row before the next
// clause starts.
type WriteStatement struct {
	Reading []Clause
	Updates []UpdateClause
}

// UpdateClause is a write clause: *CreateClause, *MergeClause, *SetClause,
// *RemoveClause or *DeleteClause.
type UpdateClause interface{ updateNode() }

// CreateClause is CREATE pattern[, pattern]*. Node patterns whose variable
// is already bound reuse the bound vertex (and must then be bare: no
// labels or properties); unbound node variables are created and become
// visible to later clauses. Relationships always create a new edge and
// require exactly one type and a fixed direction.
type CreateClause struct {
	Patterns []*PathPattern
}

// MergeClause is MERGE pattern [ON CREATE SET items] [ON MATCH SET items].
// The pattern must be fixed-length. For each binding row the pattern is
// matched against the live graph (honouring already-bound variables); on
// at least one match every match becomes an output row and ON MATCH SET
// runs, otherwise the unbound elements are created as by CREATE and
// ON CREATE SET runs.
type MergeClause struct {
	Pattern  *PathPattern
	OnCreate []SetItem
	OnMatch  []SetItem
}

// SetClause is SET item[, item]*.
type SetClause struct {
	Items []SetItem
}

// SetItem is one assignment: the property form v.key = expr (Key non-empty)
// or the label form v:L1:L2 (Labels non-empty). Setting a property to NULL
// removes it, as in openCypher.
type SetItem struct {
	Variable string
	Key      string   // property form
	Labels   []string // label form
	Value    Expr     // property form only
}

// RemoveClause is REMOVE item[, item]*.
type RemoveClause struct {
	Items []RemoveItem
}

// RemoveItem is v.key (remove a property) or v:L1:L2 (remove labels).
type RemoveItem struct {
	Variable string
	Key      string
	Labels   []string
}

// DeleteClause is [DETACH] DELETE expr[, expr]*. Deleting NULL is a no-op;
// a plain DELETE of a vertex that still has incident edges is an error
// (the whole statement rolls back), while DETACH DELETE removes the
// incident edges first.
type DeleteClause struct {
	Detach bool
	Exprs  []Expr
}

func (*CreateClause) updateNode() {}
func (*MergeClause) updateNode()  {}
func (*SetClause) updateNode()    {}
func (*RemoveClause) updateNode() {}
func (*DeleteClause) updateNode() {}

// writeKeywords start an update clause.
var writeKeywords = []string{"CREATE", "MERGE", "SET", "DELETE", "DETACH", "REMOVE"}

func (p *parser) atWriteKeyword() bool {
	for _, kw := range writeKeywords {
		if p.atKeyword(kw) {
			return true
		}
	}
	return false
}

// ParseStatement parses a read query or a write statement. Read queries
// follow the Parse grammar; write statements replace the RETURN with one
// or more update clauses (CREATE, MERGE, SET, REMOVE, [DETACH] DELETE).
func ParseStatement(src string) (*Statement, error) {
	toks, err := newLexer(src).lexAll()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseStatement()
}

func (p *parser) parseStatement() (*Statement, error) {
	var reading []Clause
	for {
		switch {
		case p.atKeyword("MATCH"):
			p.next()
			m, err := p.parseMatch()
			if err != nil {
				return nil, err
			}
			reading = append(reading, m)
		case p.atKeyword("OPTIONAL"):
			p.next()
			if err := p.expectKeyword("MATCH"); err != nil {
				return nil, err
			}
			m, err := p.parseMatch()
			if err != nil {
				return nil, err
			}
			m.Optional = true
			reading = append(reading, m)
		case p.atKeyword("WITH"):
			p.next()
			w, err := p.parseWith()
			if err != nil {
				return nil, err
			}
			reading = append(reading, w)
		case p.atKeyword("UNWIND"):
			p.next()
			u, err := p.parseUnwind()
			if err != nil {
				return nil, err
			}
			reading = append(reading, u)
		case p.atKeyword("RETURN"):
			p.next()
			r, err := p.parseReturn()
			if err != nil {
				return nil, err
			}
			p.accept(TokSemi)
			if !p.at(TokEOF) {
				return nil, p.errorf("unexpected %s after query", p.peek())
			}
			return &Statement{Read: &Query{Reading: reading, Return: r}}, nil
		case p.atWriteKeyword():
			updates, err := p.parseUpdates()
			if err != nil {
				return nil, err
			}
			return &Statement{Write: &WriteStatement{Reading: reading, Updates: updates}}, nil
		default:
			return nil, p.errorf("expected MATCH, UNWIND, WITH, RETURN, CREATE, MERGE, SET, REMOVE or DELETE, found %s", p.peek())
		}
	}
}

func (p *parser) parseUpdates() ([]UpdateClause, error) {
	var updates []UpdateClause
	for {
		switch {
		case p.acceptKeyword("CREATE"):
			c := &CreateClause{}
			for {
				pat, err := p.parsePathPattern()
				if err != nil {
					return nil, err
				}
				c.Patterns = append(c.Patterns, pat)
				if !p.accept(TokComma) {
					break
				}
			}
			updates = append(updates, c)
		case p.acceptKeyword("MERGE"):
			m, err := p.parseMerge()
			if err != nil {
				return nil, err
			}
			updates = append(updates, m)
		case p.acceptKeyword("SET"):
			items, err := p.parseSetItems()
			if err != nil {
				return nil, err
			}
			updates = append(updates, &SetClause{Items: items})
		case p.acceptKeyword("REMOVE"):
			r := &RemoveClause{}
			for {
				item, err := p.parseRemoveItem()
				if err != nil {
					return nil, err
				}
				r.Items = append(r.Items, item)
				if !p.accept(TokComma) {
					break
				}
			}
			updates = append(updates, r)
		case p.atKeyword("DETACH") || p.atKeyword("DELETE"):
			d := &DeleteClause{Detach: p.acceptKeyword("DETACH")}
			if err := p.expectKeyword("DELETE"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.Exprs = append(d.Exprs, e)
				if !p.accept(TokComma) {
					break
				}
			}
			updates = append(updates, d)
		case p.atKeyword("RETURN"):
			return nil, p.errorf("RETURN after write clauses is not supported")
		default:
			p.accept(TokSemi)
			if !p.at(TokEOF) {
				return nil, p.errorf("unexpected %s after write clause", p.peek())
			}
			return updates, nil
		}
	}
}

func (p *parser) parseMerge() (*MergeClause, error) {
	pat, err := p.parsePathPattern()
	if err != nil {
		return nil, err
	}
	if pat.Var != "" {
		return nil, p.errorf("MERGE pattern cannot bind a path variable")
	}
	for _, r := range pat.Rels {
		if r.VarLength {
			return nil, p.errorf("MERGE pattern cannot contain a variable-length relationship")
		}
	}
	m := &MergeClause{Pattern: pat}
	for p.acceptKeyword("ON") {
		isCreate := false
		switch {
		case p.acceptKeyword("CREATE"):
			isCreate = true
		case p.acceptKeyword("MATCH"):
		default:
			return nil, p.errorf("expected CREATE or MATCH after ON, found %s", p.peek())
		}
		if err := p.expectKeyword("SET"); err != nil {
			return nil, err
		}
		items, err := p.parseSetItems()
		if err != nil {
			return nil, err
		}
		if isCreate {
			m.OnCreate = append(m.OnCreate, items...)
		} else {
			m.OnMatch = append(m.OnMatch, items...)
		}
	}
	return m, nil
}

func (p *parser) parseSetItems() ([]SetItem, error) {
	var items []SetItem
	for {
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		item := SetItem{Variable: v.Text}
		switch {
		case p.accept(TokDot):
			key, err := p.expectName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokEq); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.Key, item.Value = key, e
		case p.at(TokColon):
			for p.accept(TokColon) {
				lbl, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				item.Labels = append(item.Labels, lbl.Text)
			}
		default:
			return nil, p.errorf("expected %q or %q in SET item, found %s",
				".", ":", p.peek())
		}
		items = append(items, item)
		if !p.accept(TokComma) {
			break
		}
	}
	return items, nil
}

func (p *parser) parseRemoveItem() (RemoveItem, error) {
	v, err := p.expect(TokIdent)
	if err != nil {
		return RemoveItem{}, err
	}
	item := RemoveItem{Variable: v.Text}
	switch {
	case p.accept(TokDot):
		key, err := p.expectName()
		if err != nil {
			return RemoveItem{}, err
		}
		item.Key = key
	case p.at(TokColon):
		for p.accept(TokColon) {
			lbl, err := p.expect(TokIdent)
			if err != nil {
				return RemoveItem{}, err
			}
			item.Labels = append(item.Labels, lbl.Text)
		}
	default:
		return RemoveItem{}, p.errorf("expected %q or %q in REMOVE item, found %s",
			".", ":", p.peek())
	}
	return item, nil
}
