package cypher

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// SyntaxError reports a lexical or parse error with its byte offset in the
// query text.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("cypher: syntax error at offset %d: %s", e.Pos, e.Msg)
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// lexAll tokenises the whole input.
func (lx *lexer) lexAll() ([]Token, error) {
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '/' && lx.peekByteAt(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.peekByteAt(1) == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return &SyntaxError{Pos: lx.pos, Msg: "unterminated block comment"}
			}
			lx.pos += 2 + end + 2
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case c >= '0' && c <= '9':
		return lx.lexNumber()
	case c == '\'' || c == '"':
		return lx.lexString(c)
	case c == '`':
		return lx.lexQuotedIdent()
	case c == '$':
		lx.pos++
		return lx.lexParam(start)
	}
	r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
	if isIdentStart(r) {
		lx.pos += size
		for lx.pos < len(lx.src) {
			r, size = utf8.DecodeRuneInString(lx.src[lx.pos:])
			if !isIdentPart(r) {
				break
			}
			lx.pos += size
		}
		text := lx.src[start:lx.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	}

	lx.pos++
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: start}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: start}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: start}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: start}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: start}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: start}, nil
	case ',':
		return Token{Kind: TokComma, Pos: start}, nil
	case ':':
		return Token{Kind: TokColon, Pos: start}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: start}, nil
	case '|':
		return Token{Kind: TokPipe, Pos: start}, nil
	case '.':
		if lx.peekByte() == '.' {
			lx.pos++
			return Token{Kind: TokDotDot, Pos: start}, nil
		}
		return Token{Kind: TokDot, Pos: start}, nil
	case '=':
		return Token{Kind: TokEq, Pos: start}, nil
	case '<':
		switch lx.peekByte() {
		case '=':
			lx.pos++
			return Token{Kind: TokLe, Pos: start}, nil
		case '>':
			lx.pos++
			return Token{Kind: TokNeq, Pos: start}, nil
		}
		return Token{Kind: TokLt, Pos: start}, nil
	case '>':
		if lx.peekByte() == '=' {
			lx.pos++
			return Token{Kind: TokGe, Pos: start}, nil
		}
		return Token{Kind: TokGt, Pos: start}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: start}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: start}, nil
	case '*':
		return Token{Kind: TokStar, Pos: start}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: start}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: start}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: start}, nil
	}
	return Token{}, &SyntaxError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (lx *lexer) lexNumber() (Token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.pos++
	}
	isFloat := false
	// A '.' followed by a digit is a fraction; '..' is a range operator.
	if lx.peekByte() == '.' && lx.peekByteAt(1) >= '0' && lx.peekByteAt(1) <= '9' {
		isFloat = true
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	if b := lx.peekByte(); b == 'e' || b == 'E' {
		save := lx.pos
		lx.pos++
		if b := lx.peekByte(); b == '+' || b == '-' {
			lx.pos++
		}
		if b := lx.peekByte(); b >= '0' && b <= '9' {
			isFloat = true
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
		} else {
			lx.pos = save
		}
	}
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: lx.src[start:lx.pos], Pos: start}, nil
}

func (lx *lexer) lexString(quote byte) (Token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case quote:
			lx.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return Token{}, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
			}
			esc := lx.src[lx.pos]
			lx.pos++
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\', '\'', '"':
				sb.WriteByte(esc)
			default:
				return Token{}, &SyntaxError{Pos: lx.pos - 1, Msg: fmt.Sprintf("unknown escape \\%c", esc)}
			}
		default:
			sb.WriteByte(c)
			lx.pos++
		}
	}
	return Token{}, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
}

func (lx *lexer) lexQuotedIdent() (Token, error) {
	start := lx.pos
	lx.pos++ // opening backquote
	end := strings.IndexByte(lx.src[lx.pos:], '`')
	if end < 0 {
		return Token{}, &SyntaxError{Pos: start, Msg: "unterminated quoted identifier"}
	}
	text := lx.src[lx.pos : lx.pos+end]
	lx.pos += end + 1
	return Token{Kind: TokIdent, Text: text, Pos: start}, nil
}

func (lx *lexer) lexParam(start int) (Token, error) {
	if lx.pos >= len(lx.src) {
		return Token{}, &SyntaxError{Pos: start, Msg: "incomplete parameter"}
	}
	r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
	if !isIdentStart(r) {
		return Token{}, &SyntaxError{Pos: start, Msg: "parameter name expected after $"}
	}
	nameStart := lx.pos
	lx.pos += size
	for lx.pos < len(lx.src) {
		r, size = utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isIdentPart(r) {
			break
		}
		lx.pos += size
	}
	return Token{Kind: TokParam, Text: lx.src[nameStart:lx.pos], Pos: start}, nil
}
