package cypher

import (
	"strings"
	"testing"
)

func TestParseStatementRead(t *testing.T) {
	s, err := ParseStatement("MATCH (n:Person) RETURN n.name")
	if err != nil {
		t.Fatal(err)
	}
	if s.IsWrite() || s.Read == nil {
		t.Fatalf("expected read statement, got %+v", s)
	}
	if len(s.Read.Reading) != 1 || len(s.Read.Return.Items) != 1 {
		t.Fatalf("unexpected read AST: %+v", s.Read)
	}
}

func TestParseStatementCreate(t *testing.T) {
	s, err := ParseStatement(
		"CREATE (p:Post {lang: 'en'}), (c:Comm), (p)-[:REPLY {w: 1}]->(c)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsWrite() {
		t.Fatal("expected write statement")
	}
	w := s.Write
	if len(w.Reading) != 0 || len(w.Updates) != 1 {
		t.Fatalf("unexpected write AST: %+v", w)
	}
	c, ok := w.Updates[0].(*CreateClause)
	if !ok || len(c.Patterns) != 3 {
		t.Fatalf("expected one CREATE with 3 patterns, got %+v", w.Updates[0])
	}
	if len(c.Patterns[2].Rels) != 1 || c.Patterns[2].Rels[0].Types[0] != "REPLY" {
		t.Fatalf("bad relationship pattern: %+v", c.Patterns[2].Rels)
	}
}

func TestParseStatementMatchSetDelete(t *testing.T) {
	s, err := ParseStatement(
		"MATCH (n:Person) WHERE n.age > 30 SET n.senior = TRUE, n:Hot REMOVE n.tmp DETACH DELETE n")
	if err != nil {
		t.Fatal(err)
	}
	w := s.Write
	if w == nil || len(w.Reading) != 1 || len(w.Updates) != 3 {
		t.Fatalf("unexpected write AST: %+v", s)
	}
	set := w.Updates[0].(*SetClause)
	if len(set.Items) != 2 || set.Items[0].Key != "senior" || len(set.Items[1].Labels) != 1 {
		t.Fatalf("bad SET items: %+v", set.Items)
	}
	rem := w.Updates[1].(*RemoveClause)
	if len(rem.Items) != 1 || rem.Items[0].Key != "tmp" {
		t.Fatalf("bad REMOVE items: %+v", rem.Items)
	}
	del := w.Updates[2].(*DeleteClause)
	if !del.Detach || len(del.Exprs) != 1 {
		t.Fatalf("bad DELETE: %+v", del)
	}
}

func TestParseStatementMerge(t *testing.T) {
	s, err := ParseStatement(
		"MERGE (p:Person {name: 'Ann'}) ON CREATE SET p.seen = 1 ON MATCH SET p.seen = 2")
	if err != nil {
		t.Fatal(err)
	}
	m := s.Write.Updates[0].(*MergeClause)
	if len(m.Pattern.Nodes) != 1 || len(m.OnCreate) != 1 || len(m.OnMatch) != 1 {
		t.Fatalf("bad MERGE: %+v", m)
	}
}

func TestParseStatementErrors(t *testing.T) {
	for _, src := range []string{
		"MATCH (n) SET n.x = 1 RETURN n",  // RETURN after write
		"CREATE (n) MATCH (m) RETURN m",   // reading after write
		"MERGE p = (a)-[:X]->(b)",         // named path in MERGE
		"MERGE (a)-[:X*]->(b)",            // var-length in MERGE
		"MERGE (a) ON DELETE SET a.x = 1", // bad ON
		"SET n",                           // incomplete SET item
		"REMOVE n",                        // incomplete REMOVE item
		"DETACH (n)",                      // DETACH without DELETE
		"MATCH (n) DELETE",                // missing expression
		"",                                // empty input
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}
}

// Parse must stay read-only: write statements are rejected with a
// grammar error, so RegisterView and Snapshot never see them.
func TestParseRejectsWrites(t *testing.T) {
	_, err := Parse("MATCH (n) SET n.x = 1")
	if err == nil || !strings.Contains(err.Error(), "expected") {
		t.Fatalf("Parse accepted a write statement: %v", err)
	}
}
