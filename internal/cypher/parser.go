package cypher

import (
	"fmt"
	"strconv"
	"strings"

	"pgiv/internal/value"
)

// Parse parses a single read query. The grammar is the openCypher fragment
// of the paper extended with the left-outer-join and projection clauses of
// its companion work (Szárnyas & Maginecz):
// ([OPTIONAL] MATCH [WHERE] | UNWIND | WITH [DISTINCT] items [WHERE])*
// RETURN [DISTINCT] items [ORDER BY] [SKIP] [LIMIT].
func Parse(src string) (*Query, error) {
	toks, err := newLexer(src).lexAll()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// ParseExpression parses a standalone expression (used in tests and tools).
func ParseExpression(src string) (Expr, error) {
	toks, err := newLexer(src).lexAll()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF) {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks  []Token
	pos   int
	depth int // recursion depth of expression/pattern parsing
}

// maxDepth bounds recursive-descent nesting. Each level costs a dozen
// stack frames through the precedence tower, so the limit keeps
// adversarial inputs (fuzzed deeply nested parentheses, NOT/^/- chains)
// from exhausting the stack: Parse must return an error, never panic.
const maxDepth = 512

// enter guards one recursion level; every successful enter is paired
// with leave.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return p.errorf("expression nesting exceeds %d levels", maxDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k TokenKind) bool {
	return p.toks[p.pos].Kind == k
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) accept(k TokenKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, p.errorf("expected %q, found %s", symbolText(k), p.peek())
}

func (p *parser) expectKeyword(kw string) error {
	if p.acceptKeyword(kw) {
		return nil
	}
	return p.errorf("expected %s, found %s", kw, p.peek())
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &SyntaxError{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	for {
		switch {
		case p.atKeyword("MATCH"):
			p.next()
			m, err := p.parseMatch()
			if err != nil {
				return nil, err
			}
			q.Reading = append(q.Reading, m)
		case p.atKeyword("OPTIONAL"):
			p.next()
			if err := p.expectKeyword("MATCH"); err != nil {
				return nil, err
			}
			m, err := p.parseMatch()
			if err != nil {
				return nil, err
			}
			m.Optional = true
			q.Reading = append(q.Reading, m)
		case p.atKeyword("WITH"):
			p.next()
			w, err := p.parseWith()
			if err != nil {
				return nil, err
			}
			q.Reading = append(q.Reading, w)
		case p.atKeyword("UNWIND"):
			p.next()
			u, err := p.parseUnwind()
			if err != nil {
				return nil, err
			}
			q.Reading = append(q.Reading, u)
		case p.atKeyword("RETURN"):
			p.next()
			r, err := p.parseReturn()
			if err != nil {
				return nil, err
			}
			q.Return = r
			p.accept(TokSemi)
			if !p.at(TokEOF) {
				return nil, p.errorf("unexpected %s after query", p.peek())
			}
			return q, nil
		default:
			return nil, p.errorf("expected MATCH, UNWIND or RETURN, found %s", p.peek())
		}
	}
}

func (p *parser) parseMatch() (*MatchClause, error) {
	m := &MatchClause{}
	for {
		pat, err := p.parsePathPattern()
		if err != nil {
			return nil, err
		}
		m.Patterns = append(m.Patterns, pat)
		if !p.accept(TokComma) {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		m.Where = w
	}
	return m, nil
}

func (p *parser) parseUnwind() (*UnwindClause, error) {
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	return &UnwindClause{Expr: e, Alias: name.Text}, nil
}

// parseWith parses WITH [DISTINCT] item[, item]* [ORDER BY ...]
// [SKIP n] [LIMIT n] [WHERE expr]. Items follow openCypher's aliasing
// rule: a bare variable passes through under its own name; any other
// expression must be aliased with AS.
func (p *parser) parseWith() (*WithClause, error) {
	w := &WithClause{}
	if p.acceptKeyword("DISTINCT") {
		w.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := ReturnItem{Expr: e}
		if p.acceptKeyword("AS") {
			name, err := p.expectName()
			if err != nil {
				return nil, err
			}
			item.Alias = name
		} else if v, ok := e.(*Variable); ok {
			item.Alias = v.Name
		} else {
			return nil, p.errorf("expression %s in WITH must be aliased (use AS)", e.String())
		}
		w.Items = append(w.Items, item)
		if !p.accept(TokComma) {
			break
		}
	}
	if err := p.parseOrderSkipLimit(&w.OrderBy, &w.Skip, &w.Limit); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		w.Where = cond
	}
	return w, nil
}

// parseOrderSkipLimit parses the optional [ORDER BY item[, item]*]
// [SKIP n] [LIMIT n] sub-clauses shared by WITH and RETURN.
func (p *parser) parseOrderSkipLimit(orderBy *[]SortItem, skip, limit *Expr) error {
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			si := SortItem{Expr: e}
			if p.acceptKeyword("DESC") || p.acceptKeyword("DESCENDING") {
				si.Desc = true
			} else if p.acceptKeyword("ASC") || p.acceptKeyword("ASCENDING") {
				si.Desc = false
			}
			*orderBy = append(*orderBy, si)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if p.acceptKeyword("SKIP") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		*skip = e
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		*limit = e
	}
	return nil
}

// parsePathPattern parses [var =] (n)-[r]->(m)-..., optionally wrapped in
// shortestPath( (n)-[r*..k]->(m) ).
func (p *parser) parsePathPattern() (*PathPattern, error) {
	pat := &PathPattern{}
	// Named path: ident '=' '('
	if p.at(TokIdent) && p.toks[p.pos+1].Kind == TokEq {
		pat.Var = p.next().Text
		p.next() // '='
	}
	// shortestPath((a)-[:T*1..k {w}]->(b)): a function-style wrapper
	// (matched case-insensitively) around a single variable-length
	// relationship pattern. The opening TokLParen disambiguates it from a
	// plain node pattern, which also starts with '('.
	if p.at(TokIdent) && strings.EqualFold(p.peek().Text, "shortestPath") && p.toks[p.pos+1].Kind == TokLParen {
		p.next() // shortestPath
		p.next() // '('
		pat.Shortest = true
	}
	n, err := p.parseNodePattern()
	if err != nil {
		return nil, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for p.at(TokMinus) || p.at(TokLt) {
		r, err := p.parseRelPattern()
		if err != nil {
			return nil, err
		}
		n, err := p.parseNodePattern()
		if err != nil {
			return nil, err
		}
		pat.Rels = append(pat.Rels, r)
		pat.Nodes = append(pat.Nodes, n)
	}
	if pat.Shortest {
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if len(pat.Rels) != 1 || !pat.Rels[0].VarLength {
			return nil, p.errorf("shortestPath requires a single variable-length relationship pattern")
		}
	}
	return pat, nil
}

func (p *parser) parseNodePattern() (*NodePattern, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	n := &NodePattern{}
	if p.at(TokIdent) {
		n.Var = p.next().Text
	}
	for p.accept(TokColon) {
		lbl, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		n.Labels = append(n.Labels, lbl.Text)
	}
	if p.at(TokLBrace) {
		props, err := p.parsePropertyMap()
		if err != nil {
			return nil, err
		}
		n.Props = props
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return n, nil
}

// parseRelPattern parses -[...]->, <-[...]-, -[...]-, and the bracketless
// forms -->, <--, --.
func (p *parser) parseRelPattern() (*RelPattern, error) {
	r := &RelPattern{Dir: DirBoth, Min: 1, Max: 1}
	leftArrow := p.accept(TokLt)
	if _, err := p.expect(TokMinus); err != nil {
		return nil, err
	}
	if p.accept(TokLBracket) {
		if p.at(TokIdent) {
			r.Var = p.next().Text
		}
		if p.accept(TokColon) {
			typ, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			r.Types = append(r.Types, typ.Text)
			for p.accept(TokPipe) {
				p.accept(TokColon) // |:T alternative syntax
				typ, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				r.Types = append(r.Types, typ.Text)
			}
		}
		if p.accept(TokStar) {
			r.VarLength = true
			r.Min, r.Max = 1, -1
			if p.at(TokInt) {
				lo, err := strconv.Atoi(p.next().Text)
				if err != nil {
					return nil, p.errorf("invalid hop bound")
				}
				r.Min, r.Max = lo, lo
				if p.accept(TokDotDot) {
					r.Max = -1
					if p.at(TokInt) {
						hi, err := strconv.Atoi(p.next().Text)
						if err != nil {
							return nil, p.errorf("invalid hop bound")
						}
						r.Max = hi
					}
				}
			} else if p.accept(TokDotDot) {
				// *..k means 1..k, matching openCypher: an omitted lower
				// bound defaults to 1, never 0. A zero-hop match must be
				// requested explicitly with *0..k.
				r.Min = 1
				r.Max = -1
				if p.at(TokInt) {
					hi, err := strconv.Atoi(p.next().Text)
					if err != nil {
						return nil, p.errorf("invalid hop bound")
					}
					r.Max = hi
				}
			}
			if r.Max != -1 && r.Max < r.Min {
				return nil, p.errorf("variable-length upper bound %d below lower bound %d", r.Max, r.Min)
			}
		}
		if p.at(TokLBrace) {
			if err := p.parseRelBrace(r); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokMinus); err != nil {
			return nil, err
		}
	} else {
		// Bracketless: the second '-' of '--'.
		if _, err := p.expect(TokMinus); err != nil {
			return nil, err
		}
	}
	rightArrow := p.accept(TokGt)
	switch {
	case leftArrow && rightArrow:
		return nil, p.errorf("relationship cannot point both ways")
	case leftArrow:
		r.Dir = DirIn
	case rightArrow:
		r.Dir = DirOut
	default:
		r.Dir = DirBoth
	}
	if r.WeightProp != "" && !r.VarLength {
		return nil, p.errorf("a bare weight property ({%s}) is only valid on a variable-length relationship", r.WeightProp)
	}
	return r, nil
}

// parseRelBrace parses the {...} block of a relationship pattern. Besides
// the key:expr property predicates shared with node patterns it accepts a
// single bare name, which designates the edge weight property for
// shortestPath: -[:ROAD*1..5 {dist}]-> minimizes the sum of e.dist.
func (p *parser) parseRelBrace(r *RelPattern) error {
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	if p.accept(TokRBrace) {
		return nil
	}
	for {
		key, err := p.expectName()
		if err != nil {
			return err
		}
		if p.accept(TokColon) {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			if r.Props == nil {
				r.Props = make(map[string]Expr)
			}
			r.Props[key] = e
		} else {
			if r.WeightProp != "" {
				return p.errorf("relationship pattern names two weight properties: %s and %s", r.WeightProp, key)
			}
			r.WeightProp = key
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return err
	}
	return nil
}

func (p *parser) parsePropertyMap() (map[string]Expr, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	props := make(map[string]Expr)
	if p.accept(TokRBrace) {
		return props, nil
	}
	for {
		key, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		props[key] = e
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return props, nil
}

// expectName accepts an identifier or a keyword used as a name (e.g. a
// property called "in").
func (p *parser) expectName() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent || t.Kind == TokKeyword {
		p.next()
		return t.Text, nil
	}
	return "", p.errorf("expected a name, found %s", t)
}

func (p *parser) parseReturn() (*ReturnClause, error) {
	r := &ReturnClause{}
	if p.acceptKeyword("DISTINCT") {
		r.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := ReturnItem{Expr: e, Alias: e.String()}
		if p.acceptKeyword("AS") {
			name, err := p.expectName()
			if err != nil {
				return nil, err
			}
			item.Alias = name
		} else if v, ok := e.(*Variable); ok {
			item.Alias = v.Name
		} else if pa, ok := e.(*PropAccess); ok {
			if v, ok := pa.Subject.(*Variable); ok {
				item.Alias = v.Name + "." + pa.Key
			}
		}
		r.Items = append(r.Items, item)
		if !p.accept(TokComma) {
			break
		}
	}
	if err := p.parseOrderSkipLimit(&r.OrderBy, &r.Skip, &r.Limit); err != nil {
		return nil, err
	}
	return r, nil
}

// Expression parsing with standard Cypher precedence:
// OR < XOR < AND < NOT < comparison < additive < multiplicative <
// power < unary < postfix (property access) < primary.

func (p *parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("XOR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpXor, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		p.leave()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) comparisonOp() (BinOp, bool) {
	switch p.peek().Kind {
	case TokEq:
		return OpEq, true
	case TokNeq:
		return OpNe, true
	case TokLt:
		return OpLt, true
	case TokLe:
		return OpLe, true
	case TokGt:
		return OpGt, true
	case TokGe:
		return OpGe, true
	}
	return 0, false
}

// parseComparison handles binary comparisons, Cypher's chained form
// (a < b < c becomes a < b AND b < c), IN, string predicates and IS NULL.
func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var result Expr
	cur := l
	for {
		if op, ok := p.comparisonOp(); ok {
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			cmp := &Binary{Op: op, L: cur, R: r}
			if result == nil {
				result = cmp
			} else {
				result = &Binary{Op: OpAnd, L: result, R: cmp}
			}
			cur = r
			continue
		}
		break
	}
	if result != nil {
		return result, nil
	}
	switch {
	case p.atKeyword("IN"):
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpIn, L: l, R: r}, nil
	case p.atKeyword("STARTS"):
		p.next()
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpStartsWith, L: l, R: r}, nil
	case p.atKeyword("ENDS"):
		p.next()
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpEndsWith, L: l, R: r}, nil
	case p.atKeyword("CONTAINS"):
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpContains, L: l, R: r}, nil
	case p.atKeyword("IS"):
		p.next()
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: negate}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokPlus):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.accept(TokMinus):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokStar):
			r, err := p.parsePower()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case p.accept(TokSlash):
			r, err := p.parsePower()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		case p.accept(TokPercent):
			r, err := p.parsePower()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parsePower() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.accept(TokCaret) {
		if err := p.enter(); err != nil {
			return nil, err
		}
		r, err := p.parsePower() // right-associative
		p.leave()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpPow, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.accept(TokMinus):
		if err := p.enter(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		p.leave()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok {
			switch lit.Val.Kind() {
			case value.KindInt:
				return &Literal{Val: value.NewInt(-lit.Val.Int())}, nil
			case value.KindFloat:
				return &Literal{Val: value.NewFloat(-lit.Val.Float())}, nil
			}
		}
		return &Unary{Op: OpNeg, X: x}, nil
	case p.accept(TokPlus):
		if err := p.enter(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		p.leave()
		return x, err
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept(TokDot) {
		key, err := p.expectName()
		if err != nil {
			return nil, err
		}
		e = &PropAccess{Subject: e, Key: key}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("integer literal out of range: %s", t.Text)
		}
		return &Literal{Val: value.NewInt(i)}, nil
	case TokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid float literal: %s", t.Text)
		}
		return &Literal{Val: value.NewFloat(f)}, nil
	case TokString:
		p.next()
		return &Literal{Val: value.NewString(t.Text)}, nil
	case TokParam:
		p.next()
		return &Parameter{Name: t.Text}, nil
	case TokLParen:
		// A '(' may open a parenthesised expression or a pattern
		// predicate like (a)-[:KNOWS]->(b); try the pattern first with
		// backtracking (a bare parenthesised expression never parses as a
		// node pattern followed by a relationship).
		if pat, ok := p.tryPatternPredicate(); ok {
			return &PatternPredicate{Pattern: pat}, nil
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBrace:
		entries, err := p.parsePropertyMap()
		if err != nil {
			return nil, err
		}
		return &MapLit{Entries: entries}, nil
	case TokLBracket:
		p.next()
		lst := &ListLit{}
		if !p.accept(TokRBracket) {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lst.Elems = append(lst.Elems, e)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		return lst, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &Literal{Val: value.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: value.NewBool(false)}, nil
		case "NULL":
			p.next()
			return &Literal{Val: value.Null}, nil
		case "EXISTS":
			p.next()
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &IsNull{X: arg, Negate: true}, nil
		}
		return nil, p.errorf("unexpected keyword %s", t.Text)
	case TokIdent:
		// Function call or variable.
		if p.toks[p.pos+1].Kind == TokLParen {
			name := p.next().Text
			p.next() // '('
			fc := &FuncCall{Name: lowerASCII(name)}
			if fc.Name == "count" && p.at(TokStar) {
				p.next()
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
				return &CountStar{}, nil
			}
			if p.acceptKeyword("DISTINCT") {
				fc.Distinct = true
			}
			if !p.accept(TokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		p.next()
		return &Variable{Name: t.Text}, nil
	}
	return nil, p.errorf("unexpected %s", t)
}

// tryPatternPredicate attempts to parse a relationship pattern at the
// current position, restoring the position on failure. Only patterns with
// at least one relationship qualify (a lone "(x)" is a parenthesised
// variable).
func (p *parser) tryPatternPredicate() (*PathPattern, bool) {
	save := p.pos
	pat, err := p.parsePathPattern()
	if err != nil || len(pat.Rels) == 0 || pat.Var != "" {
		p.pos = save
		return nil, false
	}
	return pat, true
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
