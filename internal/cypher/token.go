// Package cypher implements a lexer, parser and abstract syntax tree for
// the openCypher fragment studied by the paper: MATCH patterns (including
// variable-length, i.e. transitive, relationships and named paths), WHERE
// predicates, UNWIND (path unwinding), and RETURN with projections,
// DISTINCT, aggregation, ORDER BY, SKIP and LIMIT.
//
// ORDER BY / SKIP / LIMIT parse successfully but are rejected later by the
// incremental fragment checker (internal/ivm), mirroring the paper's
// result that top-k/ordering is not incrementally maintainable; the
// snapshot engine evaluates them.
package cypher

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind uint8

// Token kinds. Keywords are recognised case-insensitively and carry their
// canonical upper-case text.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokParam // $name

	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLBrace   // {
	TokRBrace   // }
	TokComma    // ,
	TokColon    // :
	TokSemi     // ;
	TokDot      // .
	TokDotDot   // ..
	TokPipe     // |

	TokEq      // =
	TokNeq     // <>
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokCaret   // ^
)

// Token is a lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // identifier/keyword/string payload, or numeric literal text
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokIdent, TokKeyword, TokInt, TokFloat:
		return fmt.Sprintf("%q", t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	case TokParam:
		return "$" + t.Text
	}
	return fmt.Sprintf("%q", symbolText(t.Kind))
}

func symbolText(k TokenKind) string {
	switch k {
	case TokLParen:
		return "("
	case TokRParen:
		return ")"
	case TokLBracket:
		return "["
	case TokRBracket:
		return "]"
	case TokLBrace:
		return "{"
	case TokRBrace:
		return "}"
	case TokComma:
		return ","
	case TokColon:
		return ":"
	case TokSemi:
		return ";"
	case TokDot:
		return "."
	case TokDotDot:
		return ".."
	case TokPipe:
		return "|"
	case TokEq:
		return "="
	case TokNeq:
		return "<>"
	case TokLt:
		return "<"
	case TokLe:
		return "<="
	case TokGt:
		return ">"
	case TokGe:
		return ">="
	case TokPlus:
		return "+"
	case TokMinus:
		return "-"
	case TokStar:
		return "*"
	case TokSlash:
		return "/"
	case TokPercent:
		return "%"
	case TokCaret:
		return "^"
	}
	return "?"
}

// keywords recognised by the lexer (upper-case canonical form).
var keywords = map[string]bool{
	"MATCH": true, "OPTIONAL": true, "WHERE": true, "RETURN": true,
	"DISTINCT": true, "AS": true, "ORDER": true, "BY": true, "ASC": true,
	"ASCENDING": true, "DESC": true, "DESCENDING": true, "SKIP": true,
	"LIMIT": true, "UNWIND": true, "WITH": true, "AND": true, "OR": true,
	"XOR": true, "NOT": true, "IN": true, "IS": true, "NULL": true,
	"TRUE": true, "FALSE": true, "STARTS": true, "ENDS": true,
	"CONTAINS": true, "EXISTS": true,
	// Write clauses (parsed by ParseStatement; Parse stays read-only).
	"CREATE": true, "MERGE": true, "SET": true, "DELETE": true,
	"DETACH": true, "REMOVE": true, "ON": true,
}
