package expr

import (
	"strings"
	"testing"

	"pgiv/internal/cypher"
	"pgiv/internal/graph"
	"pgiv/internal/schema"
	"pgiv/internal/value"
)

// evalStr compiles and evaluates a standalone expression over an optional
// one-row environment and renders the result.
func evalStr(t *testing.T, src string, s schema.Schema, row value.Row, g graph.Reader) string {
	t.Helper()
	e, err := cypher.ParseExpression(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	fn, err := Compile(e, s, map[string]value.Value{"p": value.NewInt(42)})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return fn(&Env{Row: row, G: g}).String()
}

func TestArithmetic(t *testing.T) {
	cases := map[string]string{
		"1 + 2":        "3",
		"7 / 2":        "3", // integer division
		"7.0 / 2":      "3.5",
		"7 % 3":        "1",
		"2 ^ 10":       "1024", // power is float
		"1 + 2.5":      "3.5",
		"1 / 0":        "null",
		"1 % 0":        "null",
		"-(3)":         "-3",
		"1 + null":     "null",
		"'a' + 'b'":    `"ab"`,
		"[1] + [2, 3]": "[1, 2, 3]",
		"[1] + 2":      "[1, 2]",
		"'a' + 1":      "null",
		"$p + 1":       "43",
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil, nil, nil); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestTernaryLogic(t *testing.T) {
	cases := map[string]string{
		"true AND true":  "true",
		"true AND false": "false",
		"true AND null":  "null",
		"false AND null": "false", // Kleene: false dominates
		"true OR null":   "true",
		"false OR null":  "null",
		"null OR null":   "null",
		"true XOR true":  "false",
		"true XOR null":  "null",
		"NOT true":       "false",
		"NOT null":       "null",
		"NOT 5":          "null", // non-boolean is unknown
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil, nil, nil); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := map[string]string{
		"1 = 1.0":         "true",
		"1 = 2":           "false",
		"1 <> 2":          "true",
		"null = null":     "null",
		"1 = null":        "null",
		"1 < 2":           "true",
		"2 <= 2":          "true",
		"'a' < 'b'":       "true",
		"1 < 'a'":         "null", // incomparable
		"true < false":    "false",
		"[1, 2] < [1, 3]": "true",
		"1 = 'a'":         "false",
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil, nil, nil); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestInOperator(t *testing.T) {
	cases := map[string]string{
		"2 IN [1, 2, 3]": "true",
		"4 IN [1, 2, 3]": "false",
		"4 IN [1, null]": "null",
		"2 IN [2, null]": "true",
		"null IN [1]":    "null",
		"null IN []":     "false",
		"1 IN null":      "null",
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil, nil, nil); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestStringPredicates(t *testing.T) {
	cases := map[string]string{
		"'abc' STARTS WITH 'ab'": "true",
		"'abc' ENDS WITH 'bc'":   "true",
		"'abc' CONTAINS 'zz'":    "false",
		"'abc' CONTAINS null":    "null",
		"1 CONTAINS 'a'":         "null",
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil, nil, nil); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestScalarFunctions(t *testing.T) {
	p := &value.Path{Vertices: []int64{1, 2, 3}, Edges: []int64{7, 8}}
	s := schema.Schema{"t", "lst"}
	row := value.Row{value.NewPath(p), value.NewList([]value.Value{value.NewInt(4), value.NewInt(9)})}
	cases := map[string]string{
		"length(t)":         "2",
		"nodes(t)":          "[(#1), (#2), (#3)]",
		"relationships(t)":  "[[#7], [#8]]",
		"startnode(t)":      "(#1)",
		"endnode(t)":        "(#3)",
		"size(lst)":         "2",
		"head(lst)":         "4",
		"last(lst)":         "9",
		"head([])":          "null",
		"coalesce(null, 5)": "5",
		"abs(-4)":           "4",
		"abs(-4.5)":         "4.5",
		"tointeger(3.9)":    "3",
		"tofloat(3)":        "3",
		"tostring(42)":      `"42"`,
		"tolower('AbC')":    `"abc"`,
		"toupper('AbC')":    `"ABC"`,
		"size('abc')":       "3",
		"length('abc')":     "3",
	}
	for src, want := range cases {
		if got := evalStr(t, src, s, row, nil); got != want {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestPropertyAccess(t *testing.T) {
	g := graph.New()
	vid := g.AddVertex([]string{"A"}, map[string]value.Value{"x": value.NewInt(5)})
	eid, _ := g.AddEdge(vid, vid, "T", map[string]value.Value{"w": value.NewInt(9)})

	s := schema.Schema{"v", "e", "m", "v.x"}
	row := value.Row{
		value.NewVertex(vid), value.NewEdge(eid),
		value.NewMap(map[string]value.Value{"k": value.NewInt(3)}),
		value.NewInt(5),
	}
	// Pushed-down attribute takes priority (no graph access).
	if got := evalStr(t, "v.x", s, row, nil); got != "5" {
		t.Errorf("pushed v.x = %s", got)
	}
	// Map access is value-based.
	if got := evalStr(t, "m.k", s, row, nil); got != "3" {
		t.Errorf("m.k = %s", got)
	}
	if got := evalStr(t, "m.missing", s, row, nil); got != "null" {
		t.Errorf("m.missing = %s", got)
	}
	// Fallback graph lookups for non-pushed keys.
	if got := evalStr(t, "v.y", s, row, g); got != "null" {
		t.Errorf("v.y = %s", got)
	}
	if got := evalStr(t, "e.w", s, row, g); got != "9" {
		t.Errorf("e.w = %s", got)
	}
	// id()/type()/labels() over graph refs.
	if got := evalStr(t, "id(v)", s, row, g); got != "1" {
		t.Errorf("id(v) = %s", got)
	}
	if got := evalStr(t, "type(e)", s, row, g); got != `"T"` {
		t.Errorf("type(e) = %s", got)
	}
	if got := evalStr(t, "labels(v)", s, row, g); got != `["A"]` {
		t.Errorf("labels(v) = %s", got)
	}
	if got := evalStr(t, "keys(v)", s, row, g); got != `["x"]` {
		t.Errorf("keys(v) = %s", got)
	}
}

func TestIsNullAndExists(t *testing.T) {
	s := schema.Schema{"x"}
	if got := evalStr(t, "x IS NULL", s, value.Row{value.Null}, nil); got != "true" {
		t.Errorf("IS NULL = %s", got)
	}
	if got := evalStr(t, "x IS NOT NULL", s, value.Row{value.NewInt(1)}, nil); got != "true" {
		t.Errorf("IS NOT NULL = %s", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"unknownVar",
		"count(x)",
		"sum(x)",
		"nosuchfunc(1)",
		"$missing",
		"size(1, 2)",
	}
	for _, src := range cases {
		e, err := cypher.ParseExpression(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(e, schema.Schema{}, nil); err == nil {
			t.Errorf("Compile(%q) unexpectedly succeeded", src)
		}
	}
}

func TestMutableGraphDeps(t *testing.T) {
	e, _ := cypher.ParseExpression("labels(v)")
	if deps := MutableGraphDeps(e); len(deps) != 1 || deps[0] != "labels" {
		t.Errorf("deps = %v", deps)
	}
	e2, _ := cypher.ParseExpression("size(x) + 1")
	if deps := MutableGraphDeps(e2); len(deps) != 0 {
		t.Errorf("deps = %v", deps)
	}
}

func TestTruth(t *testing.T) {
	if ok, known := Truth(value.NewBool(true)); !ok || !known {
		t.Error("true")
	}
	if ok, known := Truth(value.NewBool(false)); ok || !known {
		t.Error("false")
	}
	if _, known := Truth(value.Null); known {
		t.Error("null is unknown")
	}
	if _, known := Truth(value.NewInt(1)); known {
		t.Error("int is unknown")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := schema.Schema{"a", "b"}
	if s.Index("b") != 1 || s.Index("z") != -1 {
		t.Error("Index wrong")
	}
	if !strings.Contains(s.String(), "a, b") {
		t.Error("String wrong")
	}
	v, k, ok := schema.IsPropAttr("p.lang")
	if !ok || v != "p" || k != "lang" {
		t.Error("IsPropAttr wrong")
	}
	if _, _, ok := schema.IsPropAttr("plain"); ok {
		t.Error("plain attr misdetected")
	}
}
