// Package expr compiles openCypher expression ASTs into evaluator
// functions over relation rows.
//
// Semantics follow openCypher's ternary logic: null propagates through
// arithmetic and comparisons, and AND/OR/XOR/NOT use Kleene logic. The
// compiled form resolves variable and unnested-property references to
// column indices at compile time, so evaluation is allocation-light.
//
// Property accesses on pattern variables are expected to have been pushed
// down into base operators by the FRA stage (appearing here as "v.key"
// attributes). When a property access cannot be resolved to a column, the
// evaluator falls back to a live graph lookup — the snapshot engine
// permits this; the incremental engine guarantees pushdown, and the
// fragment checker rejects expressions whose value could change without a
// graph event reaching the view (see MutableGraphDeps).
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pgiv/internal/cypher"
	"pgiv/internal/graph"
	"pgiv/internal/schema"
	"pgiv/internal/value"
)

// Env is the evaluation environment of one row.
type Env struct {
	Row value.Row
	G   graph.Reader // may be nil if the expression has no graph deps
}

// Fn is a compiled expression.
type Fn func(*Env) value.Value

// Truth classifies a value as a ternary condition: true, false, or unknown
// (null and all non-boolean values are unknown; WHERE keeps only true).
func Truth(v value.Value) (isTrue, known bool) {
	if v.Kind() == value.KindBool {
		return v.Bool(), true
	}
	return false, false
}

// Compile compiles e against the given schema. Query parameters are
// substituted from params (a missing parameter is a compile error).
// Aggregation functions are rejected; they are handled by the Aggregate
// plan operator.
func Compile(e cypher.Expr, s schema.Schema, params map[string]value.Value) (Fn, error) {
	c := &compiler{schema: s, params: params}
	return c.compile(e)
}

// MutableGraphDeps reports whether the expression consults mutable graph
// state that is not covered by pushed-down attributes — currently the
// labels(), keys() and properties() functions. Such expressions are not
// incrementally maintainable (their value can change without any delta
// reaching the view) and are rejected by the IVM fragment checker.
func MutableGraphDeps(e cypher.Expr) []string {
	var deps []string
	cypher.WalkExpr(e, func(x cypher.Expr) {
		if fc, ok := x.(*cypher.FuncCall); ok {
			switch fc.Name {
			case "labels", "keys", "properties":
				deps = append(deps, fc.Name)
			}
		}
	})
	return deps
}

type compiler struct {
	schema schema.Schema
	params map[string]value.Value
}

func (c *compiler) compile(e cypher.Expr) (Fn, error) {
	switch x := e.(type) {
	case *cypher.Literal:
		v := x.Val
		return func(*Env) value.Value { return v }, nil

	case *cypher.Parameter:
		v, ok := c.params[x.Name]
		if !ok {
			return nil, fmt.Errorf("expr: missing parameter $%s", x.Name)
		}
		return func(*Env) value.Value { return v }, nil

	case *cypher.Variable:
		i := c.schema.Index(x.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown variable %q (schema %s)", x.Name, c.schema)
		}
		return func(env *Env) value.Value { return env.Row[i] }, nil

	case *cypher.PropAccess:
		// Resolve v.key to a pushed-down column when available.
		if v, ok := x.Subject.(*cypher.Variable); ok {
			if i := c.schema.Index(schema.PropAttr(v.Name, x.Key)); i >= 0 {
				return func(env *Env) value.Value { return env.Row[i] }, nil
			}
		}
		sub, err := c.compile(x.Subject)
		if err != nil {
			return nil, err
		}
		key := x.Key
		return func(env *Env) value.Value {
			return propLookup(env, sub(env), key)
		}, nil

	case *cypher.Binary:
		return c.compileBinary(x)

	case *cypher.Unary:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case cypher.OpNeg:
			return func(env *Env) value.Value { return negate(sub(env)) }, nil
		case cypher.OpNot:
			return func(env *Env) value.Value { return not(sub(env)) }, nil
		}
		return nil, fmt.Errorf("expr: unknown unary operator")

	case *cypher.IsNull:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(env *Env) value.Value {
			isNull := sub(env).IsNull()
			if negate {
				return value.NewBool(!isNull)
			}
			return value.NewBool(isNull)
		}, nil

	case *cypher.ListLit:
		subs := make([]Fn, len(x.Elems))
		for i, el := range x.Elems {
			f, err := c.compile(el)
			if err != nil {
				return nil, err
			}
			subs[i] = f
		}
		return func(env *Env) value.Value {
			elems := make([]value.Value, len(subs))
			for i, f := range subs {
				elems[i] = f(env)
			}
			return value.NewList(elems)
		}, nil

	case *cypher.MapLit:
		keys := make([]string, 0, len(x.Entries))
		for k := range x.Entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fns := make([]Fn, len(keys))
		for i, k := range keys {
			f, err := c.compile(x.Entries[k])
			if err != nil {
				return nil, err
			}
			fns[i] = f
		}
		return func(env *Env) value.Value {
			m := make(map[string]value.Value, len(keys))
			for i, k := range keys {
				m[k] = fns[i](env)
			}
			return value.NewMap(m)
		}, nil

	case *cypher.FuncCall:
		return c.compileFunc(x)

	case *cypher.CountStar:
		return nil, fmt.Errorf("expr: count(*) is an aggregate and cannot appear here")

	case *cypher.PatternPredicate:
		return nil, fmt.Errorf("expr: pattern predicates are only supported as top-level conjuncts of WHERE")
	}
	return nil, fmt.Errorf("expr: unsupported expression %T", e)
}

func propLookup(env *Env, subject value.Value, key string) value.Value {
	switch subject.Kind() {
	case value.KindNull:
		return value.Null
	case value.KindMap:
		if v, ok := subject.Map()[key]; ok {
			return v
		}
		return value.Null
	case value.KindVertex:
		if env.G == nil {
			return value.Null
		}
		if v, ok := env.G.VertexByID(subject.ID()); ok {
			return v.Prop(key)
		}
		return value.Null
	case value.KindEdge:
		if env.G == nil {
			return value.Null
		}
		if e, ok := env.G.EdgeByID(subject.ID()); ok {
			return e.Prop(key)
		}
		return value.Null
	}
	return value.Null
}

func (c *compiler) compileBinary(x *cypher.Binary) (Fn, error) {
	l, err := c.compile(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case cypher.OpAnd:
		return func(env *Env) value.Value { return and(l(env), r(env)) }, nil
	case cypher.OpOr:
		return func(env *Env) value.Value { return or(l(env), r(env)) }, nil
	case cypher.OpXor:
		return func(env *Env) value.Value { return xor(l(env), r(env)) }, nil
	case cypher.OpEq:
		return func(env *Env) value.Value { return equals(l(env), r(env)) }, nil
	case cypher.OpNe:
		return func(env *Env) value.Value { return not(equals(l(env), r(env))) }, nil
	case cypher.OpLt, cypher.OpLe, cypher.OpGt, cypher.OpGe:
		op := x.Op
		return func(env *Env) value.Value { return order(op, l(env), r(env)) }, nil
	case cypher.OpAdd:
		return func(env *Env) value.Value { return add(l(env), r(env)) }, nil
	case cypher.OpSub, cypher.OpMul, cypher.OpDiv, cypher.OpMod, cypher.OpPow:
		op := x.Op
		return func(env *Env) value.Value { return arith(op, l(env), r(env)) }, nil
	case cypher.OpIn:
		return func(env *Env) value.Value { return in(l(env), r(env)) }, nil
	case cypher.OpStartsWith, cypher.OpEndsWith, cypher.OpContains:
		op := x.Op
		return func(env *Env) value.Value { return stringPred(op, l(env), r(env)) }, nil
	}
	return nil, fmt.Errorf("expr: unsupported binary operator %s", x.Op)
}

// Kleene three-valued logic. Null encodes unknown.

func and(a, b value.Value) value.Value {
	at, ak := Truth(a)
	bt, bk := Truth(b)
	switch {
	case ak && !at, bk && !bt:
		return value.NewBool(false)
	case ak && bk:
		return value.NewBool(true)
	}
	return value.Null
}

func or(a, b value.Value) value.Value {
	at, ak := Truth(a)
	bt, bk := Truth(b)
	switch {
	case ak && at, bk && bt:
		return value.NewBool(true)
	case ak && bk:
		return value.NewBool(false)
	}
	return value.Null
}

func xor(a, b value.Value) value.Value {
	at, ak := Truth(a)
	bt, bk := Truth(b)
	if ak && bk {
		return value.NewBool(at != bt)
	}
	return value.Null
}

func not(v value.Value) value.Value {
	if t, known := Truth(v); known {
		return value.NewBool(!t)
	}
	return value.Null
}

func equals(a, b value.Value) value.Value {
	if a.IsNull() || b.IsNull() {
		return value.Null
	}
	return value.NewBool(value.Equal(a, b))
}

func order(op cypher.BinOp, a, b value.Value) value.Value {
	if a.IsNull() || b.IsNull() {
		return value.Null
	}
	comparable := (a.IsNumeric() && b.IsNumeric()) ||
		(a.Kind() == b.Kind() && (a.Kind() == value.KindString || a.Kind() == value.KindBool ||
			a.Kind() == value.KindList))
	if !comparable {
		return value.Null // incomparable types: unknown, per openCypher
	}
	c := value.Compare(a, b)
	switch op {
	case cypher.OpLt:
		return value.NewBool(c < 0)
	case cypher.OpLe:
		return value.NewBool(c <= 0)
	case cypher.OpGt:
		return value.NewBool(c > 0)
	case cypher.OpGe:
		return value.NewBool(c >= 0)
	}
	return value.Null
}

func add(a, b value.Value) value.Value {
	if a.IsNull() || b.IsNull() {
		return value.Null
	}
	switch {
	case a.Kind() == value.KindString && b.Kind() == value.KindString:
		return value.NewString(a.Str() + b.Str())
	case a.Kind() == value.KindList && b.Kind() == value.KindList:
		out := make([]value.Value, 0, len(a.List())+len(b.List()))
		out = append(out, a.List()...)
		out = append(out, b.List()...)
		return value.NewList(out)
	case a.Kind() == value.KindList:
		out := make([]value.Value, 0, len(a.List())+1)
		out = append(out, a.List()...)
		out = append(out, b)
		return value.NewList(out)
	}
	return arith(cypher.OpAdd, a, b)
}

func arith(op cypher.BinOp, a, b value.Value) value.Value {
	if !a.IsNumeric() || !b.IsNumeric() {
		return value.Null
	}
	bothInt := a.Kind() == value.KindInt && b.Kind() == value.KindInt
	if bothInt && op != cypher.OpPow {
		ai, bi := a.Int(), b.Int()
		switch op {
		case cypher.OpAdd:
			return value.NewInt(ai + bi)
		case cypher.OpSub:
			return value.NewInt(ai - bi)
		case cypher.OpMul:
			return value.NewInt(ai * bi)
		case cypher.OpDiv:
			if bi == 0 {
				return value.Null
			}
			return value.NewInt(ai / bi)
		case cypher.OpMod:
			if bi == 0 {
				return value.Null
			}
			return value.NewInt(ai % bi)
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case cypher.OpAdd:
		return value.NewFloat(af + bf)
	case cypher.OpSub:
		return value.NewFloat(af - bf)
	case cypher.OpMul:
		return value.NewFloat(af * bf)
	case cypher.OpDiv:
		if bf == 0 {
			return value.Null
		}
		return value.NewFloat(af / bf)
	case cypher.OpMod:
		return value.NewFloat(math.Mod(af, bf))
	case cypher.OpPow:
		return value.NewFloat(math.Pow(af, bf))
	}
	return value.Null
}

func negate(v value.Value) value.Value {
	switch v.Kind() {
	case value.KindInt:
		return value.NewInt(-v.Int())
	case value.KindFloat:
		return value.NewFloat(-v.Float())
	}
	return value.Null
}

func in(x, list value.Value) value.Value {
	if list.IsNull() {
		return value.Null
	}
	if list.Kind() != value.KindList {
		return value.Null
	}
	// IN is a disjunction of equalities: the empty list yields false even
	// for a null needle; otherwise null operands make the result unknown
	// unless a definite match is found.
	sawNull := false
	for _, el := range list.List() {
		if el.IsNull() || x.IsNull() {
			sawNull = true
			continue
		}
		if value.Equal(x, el) {
			return value.NewBool(true)
		}
	}
	if sawNull {
		return value.Null
	}
	return value.NewBool(false)
}

func stringPred(op cypher.BinOp, a, b value.Value) value.Value {
	if a.Kind() != value.KindString || b.Kind() != value.KindString {
		return value.Null
	}
	switch op {
	case cypher.OpStartsWith:
		return value.NewBool(strings.HasPrefix(a.Str(), b.Str()))
	case cypher.OpEndsWith:
		return value.NewBool(strings.HasSuffix(a.Str(), b.Str()))
	case cypher.OpContains:
		return value.NewBool(strings.Contains(a.Str(), b.Str()))
	}
	return value.Null
}

func (c *compiler) compileFunc(x *cypher.FuncCall) (Fn, error) {
	switch x.Name {
	case "count", "sum", "avg", "min", "max", "collect":
		return nil, fmt.Errorf("expr: aggregate %s cannot appear here", x.Name)
	}
	args := make([]Fn, len(x.Args))
	for i, a := range x.Args {
		f, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("expr: %s expects %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "id":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() == value.KindVertex || v.Kind() == value.KindEdge {
				return value.NewInt(v.ID())
			}
			return value.Null
		}, nil
	case "type":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() != value.KindEdge || env.G == nil {
				return value.Null
			}
			if e, ok := env.G.EdgeByID(v.ID()); ok {
				return value.NewString(e.Type)
			}
			return value.Null
		}, nil
	case "labels":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() != value.KindVertex || env.G == nil {
				return value.Null
			}
			if vx, ok := env.G.VertexByID(v.ID()); ok {
				ls := vx.Labels()
				out := make([]value.Value, len(ls))
				for i, l := range ls {
					out[i] = value.NewString(l)
				}
				return value.NewList(out)
			}
			return value.Null
		}, nil
	case "keys":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			switch v.Kind() {
			case value.KindMap:
				ks := make([]string, 0, len(v.Map()))
				for k := range v.Map() {
					ks = append(ks, k)
				}
				sort.Strings(ks)
				out := make([]value.Value, len(ks))
				for i, k := range ks {
					out[i] = value.NewString(k)
				}
				return value.NewList(out)
			case value.KindVertex:
				if env.G == nil {
					return value.Null
				}
				if vx, ok := env.G.VertexByID(v.ID()); ok {
					ks := vx.PropKeys()
					out := make([]value.Value, len(ks))
					for i, k := range ks {
						out[i] = value.NewString(k)
					}
					return value.NewList(out)
				}
			}
			return value.Null
		}, nil
	case "nodes":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() != value.KindPath {
				return value.Null
			}
			p := v.Path()
			out := make([]value.Value, len(p.Vertices))
			for i, id := range p.Vertices {
				out[i] = value.NewVertex(id)
			}
			return value.NewList(out)
		}, nil
	case "relationships", "rels":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() != value.KindPath {
				return value.Null
			}
			p := v.Path()
			out := make([]value.Value, len(p.Edges))
			for i, id := range p.Edges {
				out[i] = value.NewEdge(id)
			}
			return value.NewList(out)
		}, nil
	case "length":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			switch v.Kind() {
			case value.KindPath:
				return value.NewInt(int64(v.Path().Len()))
			case value.KindList:
				return value.NewInt(int64(len(v.List())))
			case value.KindString:
				return value.NewInt(int64(len(v.Str())))
			}
			return value.Null
		}, nil
	case "size":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			switch v.Kind() {
			case value.KindList:
				return value.NewInt(int64(len(v.List())))
			case value.KindString:
				return value.NewInt(int64(len(v.Str())))
			case value.KindMap:
				return value.NewInt(int64(len(v.Map())))
			}
			return value.Null
		}, nil
	case "head":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() == value.KindList && len(v.List()) > 0 {
				return v.List()[0]
			}
			return value.Null
		}, nil
	case "last":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() == value.KindList && len(v.List()) > 0 {
				return v.List()[len(v.List())-1]
			}
			return value.Null
		}, nil
	case "startnode":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() == value.KindPath {
				return value.NewVertex(v.Path().Start())
			}
			return value.Null
		}, nil
	case "endnode":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() == value.KindPath {
				return value.NewVertex(v.Path().End())
			}
			return value.Null
		}, nil
	case "coalesce":
		return func(env *Env) value.Value {
			for _, f := range args {
				if v := f(env); !v.IsNull() {
					return v
				}
			}
			return value.Null
		}, nil
	case "abs":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			switch v.Kind() {
			case value.KindInt:
				if v.Int() < 0 {
					return value.NewInt(-v.Int())
				}
				return v
			case value.KindFloat:
				return value.NewFloat(math.Abs(v.Float()))
			}
			return value.Null
		}, nil
	case "tointeger":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			switch v.Kind() {
			case value.KindInt:
				return v
			case value.KindFloat:
				return value.NewInt(int64(v.Float()))
			}
			return value.Null
		}, nil
	case "tofloat":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.IsNumeric() {
				return value.NewFloat(v.AsFloat())
			}
			return value.Null
		}, nil
	case "tostring":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() == value.KindString {
				return v
			}
			if v.IsNull() {
				return value.Null
			}
			return value.NewString(v.String())
		}, nil
	case "tolower":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() == value.KindString {
				return value.NewString(strings.ToLower(v.Str()))
			}
			return value.Null
		}, nil
	case "toupper":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) value.Value {
			v := args[0](env)
			if v.Kind() == value.KindString {
				return value.NewString(strings.ToUpper(v.Str()))
			}
			return value.Null
		}, nil
	}
	return nil, fmt.Errorf("expr: unknown function %s", x.Name)
}
