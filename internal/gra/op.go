// Package gra implements graph relational algebra (GRA), the first
// compilation stage of the paper (Section 4 step 1, following [20]).
//
// GRA extends relational algebra with two graph-specific operators: the
// nullary get-vertices operator ©(v:V) and the unary expand-out operator
// ↑(w:W)(v)[:E], which navigates along edges, including transitive
// (variable-length) closure patterns. Property accesses remain nested
// (they appear inside expressions as v.key); unnesting happens in the NRA
// stage (package nra), and schema inference / pushdown in the FRA stage
// (package fra).
package gra

import (
	"fmt"
	"strings"

	"pgiv/internal/cypher"
	"pgiv/internal/schema"
)

// Op is a GRA operator.
type Op interface {
	// Schema returns the output attribute list of the operator.
	Schema() schema.Schema
	// Children returns the input operators.
	Children() []Op
	// Head renders the operator (without its subtree) for plan printing.
	Head() string
}

// Unit produces a single empty row. It is the input of queries that start
// with UNWIND or have a constant RETURN.
type Unit struct{}

// GetVertices is the nullary get-vertices operator ©(v:V1:V2).
type GetVertices struct {
	Var    string
	Labels []string
}

// Expand is the expand-out operator ↑(w:W)(v)[e:T1|T2]. With VarLength it
// is the transitive expand ↑(w:W)(v)[:T*min..max], which binds PathAttr to
// the traversed path. EdgeVar is empty for variable-length expands (paths
// are atomic units per the paper).
type Expand struct {
	Input     Op
	SrcVar    string
	EdgeVar   string // "" for variable-length
	DstVar    string
	Types     []string
	Dir       cypher.Direction
	DstLabels []string
	VarLength bool
	Min, Max  int    // hops; Max == -1 means unbounded
	PathAttr  string // attribute holding the traversed path ("" if unused)
}

// EdgePred is a property predicate on the interior edges of a path
// operator: every traversed edge e must satisfy e.Key = Expr (with the
// usual null-rejecting comparison semantics). Exprs must be constant.
type EdgePred struct {
	Key  string
	Expr cypher.Expr
}

// ShortestPath is the shortest-path expand compiled from
// shortestPath((v)-[:T*min..max {w, k: c}]->(w:W)): for each source row it
// binds DstVar to every vertex reachable over edge-distinct trails of
// min..max usable edges, PathAttr to the cheapest such trail (ties broken
// by hop count, then by the path's canonical key, so results are
// deterministic), and CostAttr to its cost. With WeightProp set the cost
// is the float sum of that edge property (edges missing a numeric,
// non-negative weight are unusable); otherwise the cost is the integer
// hop count. EdgePreds restrict which edges are usable.
type ShortestPath struct {
	Input      Op
	SrcVar     string
	DstVar     string
	Types      []string
	Dir        cypher.Direction
	DstLabels  []string
	Min, Max   int    // hops; Max == -1 means unbounded
	WeightProp string // "" for unweighted (hop-count) shortest paths
	EdgePreds  []EdgePred
	PathAttr   string // attribute holding the witness path ("" if unused)
	CostAttr   string // attribute holding the path cost
}

// Select is the selection operator σ(cond).
type Select struct {
	Input Op
	Cond  cypher.Expr
}

// Item is an aliased expression (projection item or group key).
type Item struct {
	Expr  cypher.Expr
	Alias string
}

// Project is the projection operator π(items).
type Project struct {
	Input Op
	Items []Item
}

// Dedup removes duplicate rows (bag → set), used for RETURN DISTINCT.
type Dedup struct{ Input Op }

// Join is the natural join of two subplans on their shared attributes.
type Join struct{ L, R Op }

// LeftOuterJoin is the natural left outer join: every left row joins
// with its matches in R on the shared attributes; a left row with no
// match survives once, with R's non-shared attributes null-padded. It
// implements OPTIONAL MATCH per the paper's companion work (Szárnyas &
// Maginecz, "Reducing Property Graph Queries to Relational Algebra for
// Incremental View Maintenance").
type LeftOuterJoin struct{ L, R Op }

// SemiJoin keeps the left rows (with their own multiplicities) that have
// at least one match in R on the shared attributes. It implements
// positive pattern predicates in WHERE.
type SemiJoin struct{ L, R Op }

// AntiJoin keeps the left rows that have no match in R on the shared
// attributes. It implements NOT (pattern) predicates — the negative
// application conditions needed by workloads like the Train Benchmark.
type AntiJoin struct{ L, R Op }

// AllDifferent enforces openCypher's relationship-uniqueness semantics:
// all edges bound in one MATCH clause (single edge variables and the edges
// of variable-length paths) are pairwise distinct.
type AllDifferent struct {
	Input     Op
	EdgeAttrs []string // attributes holding single edges
	PathAttrs []string // attributes holding paths
}

// PathBuild constructs a named path value from the traversal sequence of a
// pattern and binds it to Attr.
type PathBuild struct {
	Input Op
	Attr  string
	Items []PathItem
}

// PathItemKind classifies path construction items.
type PathItemKind uint8

// Path construction item kinds.
const (
	PathVertex PathItemKind = iota // attribute holds a vertex
	PathEdge                       // attribute holds an edge (with its known orientation)
	PathSub                        // attribute holds a sub-path (variable-length segment)
)

// PathItem is one step of path construction. For PathEdge items, Reversed
// records that the pattern traverses the edge against its direction.
type PathItem struct {
	Kind     PathItemKind
	Attr     string
	Reversed bool
}

// AggSpec is one aggregation: Func is count/sum/avg/min/max/collect; a nil
// Arg means count(*).
type AggSpec struct {
	Func     string
	Arg      cypher.Expr
	Distinct bool
	Alias    string
}

// Aggregate groups by the evaluated GroupBy items and computes Aggs per
// group. Output schema is GroupBy aliases followed by Agg aliases.
type Aggregate struct {
	Input   Op
	GroupBy []Item
	Aggs    []AggSpec
}

// Unwind expands a list-valued expression into one row per element,
// binding the element to Alias (the paper's path unwinding uses this with
// nodes(path)).
type Unwind struct {
	Input Op
	Expr  cypher.Expr
	Alias string
}

// Top is the order-and-window operator compiled from
// ORDER BY [ASC|DESC] ... [SKIP s] [LIMIT k] (in RETURN or WITH): rows
// are ordered by Items — ties broken deterministically by the full row's
// canonical key, so equal sort keys always yield the same window — and
// the visible window [s, s+k) of that order is kept. A nil Skip means
// s = 0; a nil Limit means an unbounded window. With both nil the
// operator is a pure ordering (the relation is unchanged as a bag; only
// result delivery order is affected). Unlike the paper's ORD result,
// Top IS incrementally maintainable here: the Rete TopKNode maintains
// the window with an order-statistic tree (see package rete).
type Top struct {
	Input Op
	Items []SortItem
	Skip  cypher.Expr // nil if absent; must be a constant expression
	Limit cypher.Expr // nil if absent; must be a constant expression
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr cypher.Expr
	Desc bool
}

func (*Unit) Schema() schema.Schema { return schema.Schema{} }
func (o *GetVertices) Schema() schema.Schema {
	return schema.Schema{o.Var}
}
func (o *Expand) Schema() schema.Schema {
	s := o.Input.Schema().Clone()
	if o.EdgeVar != "" && !s.Has(o.EdgeVar) {
		s = append(s, o.EdgeVar)
	}
	if !s.Has(o.DstVar) {
		s = append(s, o.DstVar)
	}
	if o.PathAttr != "" {
		s = append(s, o.PathAttr)
	}
	return s
}
func (o *ShortestPath) Schema() schema.Schema {
	s := o.Input.Schema().Clone()
	if !s.Has(o.DstVar) {
		s = append(s, o.DstVar)
	}
	if o.PathAttr != "" {
		s = append(s, o.PathAttr)
	}
	if o.CostAttr != "" {
		s = append(s, o.CostAttr)
	}
	return s
}
func (o *Select) Schema() schema.Schema { return o.Input.Schema() }
func (o *Project) Schema() schema.Schema {
	s := make(schema.Schema, len(o.Items))
	for i, it := range o.Items {
		s[i] = it.Alias
	}
	return s
}
func (o *Dedup) Schema() schema.Schema { return o.Input.Schema() }
func (o *Join) Schema() schema.Schema {
	l := o.L.Schema().Clone()
	for _, a := range o.R.Schema() {
		if !l.Has(a) {
			l = append(l, a)
		}
	}
	return l
}
func (o *LeftOuterJoin) Schema() schema.Schema {
	l := o.L.Schema().Clone()
	for _, a := range o.R.Schema() {
		if !l.Has(a) {
			l = append(l, a)
		}
	}
	return l
}
func (o *SemiJoin) Schema() schema.Schema     { return o.L.Schema() }
func (o *AntiJoin) Schema() schema.Schema     { return o.L.Schema() }
func (o *AllDifferent) Schema() schema.Schema { return o.Input.Schema() }
func (o *PathBuild) Schema() schema.Schema {
	return append(o.Input.Schema().Clone(), o.Attr)
}
func (o *Aggregate) Schema() schema.Schema {
	var s schema.Schema
	for _, it := range o.GroupBy {
		s = append(s, it.Alias)
	}
	for _, a := range o.Aggs {
		s = append(s, a.Alias)
	}
	return s
}
func (o *Unwind) Schema() schema.Schema {
	return append(o.Input.Schema().Clone(), o.Alias)
}
func (o *Top) Schema() schema.Schema { return o.Input.Schema() }

func (*Unit) Children() []Op            { return nil }
func (*GetVertices) Children() []Op     { return nil }
func (o *Expand) Children() []Op        { return []Op{o.Input} }
func (o *ShortestPath) Children() []Op  { return []Op{o.Input} }
func (o *Select) Children() []Op        { return []Op{o.Input} }
func (o *Project) Children() []Op       { return []Op{o.Input} }
func (o *Dedup) Children() []Op         { return []Op{o.Input} }
func (o *Join) Children() []Op          { return []Op{o.L, o.R} }
func (o *LeftOuterJoin) Children() []Op { return []Op{o.L, o.R} }
func (o *SemiJoin) Children() []Op      { return []Op{o.L, o.R} }
func (o *AntiJoin) Children() []Op      { return []Op{o.L, o.R} }
func (o *AllDifferent) Children() []Op  { return []Op{o.Input} }
func (o *PathBuild) Children() []Op     { return []Op{o.Input} }
func (o *Aggregate) Children() []Op     { return []Op{o.Input} }
func (o *Unwind) Children() []Op        { return []Op{o.Input} }
func (o *Top) Children() []Op           { return []Op{o.Input} }

func labelsText(ls []string) string {
	if len(ls) == 0 {
		return ""
	}
	return ":" + strings.Join(ls, ":")
}

func (*Unit) Head() string { return "Unit" }
func (o *GetVertices) Head() string {
	return fmt.Sprintf("GetVertices (%s%s)", o.Var, labelsText(o.Labels))
}
func (o *Expand) Head() string {
	dir := "->"
	if o.Dir == cypher.DirIn {
		dir = "<-"
	} else if o.Dir == cypher.DirBoth {
		dir = "--"
	}
	hops := ""
	if o.VarLength {
		if o.Max == -1 {
			hops = fmt.Sprintf("*%d..", o.Min)
		} else {
			hops = fmt.Sprintf("*%d..%d", o.Min, o.Max)
		}
	}
	t := ""
	if len(o.Types) > 0 {
		t = ":" + strings.Join(o.Types, "|")
	}
	return fmt.Sprintf("Expand (%s)-[%s%s%s]%s(%s%s)", o.SrcVar, o.EdgeVar, t, hops, dir, o.DstVar, labelsText(o.DstLabels))
}

// ShortestPathHead renders a ShortestPath-style operator head; shared with
// the NRA stage so the two plan printings stay aligned.
func ShortestPathHead(src string, types []string, dir cypher.Direction, min, max int, weight string, preds []EdgePred, dst string, dstLabels []string, pathAttr, costAttr string) string {
	arrow := "->"
	if dir == cypher.DirIn {
		arrow = "<-"
	} else if dir == cypher.DirBoth {
		arrow = "--"
	}
	hops := fmt.Sprintf("*%d..", min)
	if max != -1 {
		hops = fmt.Sprintf("*%d..%d", min, max)
	}
	t := ""
	if len(types) > 0 {
		t = ":" + strings.Join(types, "|")
	}
	var ann []string
	if weight != "" {
		ann = append(ann, weight)
	}
	for _, ep := range preds {
		ann = append(ann, fmt.Sprintf("%s: %s", ep.Key, ep.Expr.String()))
	}
	brace := ""
	if len(ann) > 0 {
		brace = " {" + strings.Join(ann, ", ") + "}"
	}
	return fmt.Sprintf("ShortestPath (%s)-[%s%s%s]%s(%s%s) path=%s cost=%s",
		src, t, hops, brace, arrow, dst, labelsText(dstLabels), pathAttr, costAttr)
}

func (o *ShortestPath) Head() string {
	return ShortestPathHead(o.SrcVar, o.Types, o.Dir, o.Min, o.Max, o.WeightProp, o.EdgePreds, o.DstVar, o.DstLabels, o.PathAttr, o.CostAttr)
}
func (o *Select) Head() string { return "Select " + o.Cond.String() }
func (o *Project) Head() string {
	var parts []string
	for _, it := range o.Items {
		parts = append(parts, fmt.Sprintf("%s AS %s", it.Expr.String(), it.Alias))
	}
	return "Project " + strings.Join(parts, ", ")
}
func (o *Dedup) Head() string { return "Dedup" }
func (o *Join) Head() string {
	return "Join on " + o.L.Schema().Shared(o.R.Schema()).String()
}
func (o *LeftOuterJoin) Head() string {
	return "LeftOuterJoin on " + o.L.Schema().Shared(o.R.Schema()).String()
}
func (o *SemiJoin) Head() string {
	return "SemiJoin on " + o.L.Schema().Shared(o.R.Schema()).String()
}
func (o *AntiJoin) Head() string {
	return "AntiJoin on " + o.L.Schema().Shared(o.R.Schema()).String()
}
func (o *AllDifferent) Head() string {
	return fmt.Sprintf("AllDifferent edges=%v paths=%v", o.EdgeAttrs, o.PathAttrs)
}
func (o *PathBuild) Head() string {
	var parts []string
	for _, it := range o.Items {
		parts = append(parts, it.Attr)
	}
	return fmt.Sprintf("PathBuild %s = <%s>", o.Attr, strings.Join(parts, ", "))
}
func (o *Aggregate) Head() string {
	var parts []string
	for _, it := range o.GroupBy {
		parts = append(parts, it.Alias)
	}
	for _, a := range o.Aggs {
		arg := "*"
		if a.Arg != nil {
			arg = a.Arg.String()
		}
		parts = append(parts, fmt.Sprintf("%s(%s) AS %s", a.Func, arg, a.Alias))
	}
	return "Aggregate " + strings.Join(parts, ", ")
}
func (o *Unwind) Head() string {
	return fmt.Sprintf("Unwind %s AS %s", o.Expr.String(), o.Alias)
}

// TopHead renders a Top-style operator head; shared with the NRA stage
// so the two plan printings stay aligned.
func TopHead(items []SortItem, skip, limit cypher.Expr) string {
	var parts []string
	for _, it := range items {
		d := "ASC"
		if it.Desc {
			d = "DESC"
		}
		parts = append(parts, it.Expr.String()+" "+d)
	}
	s := "Top"
	if len(parts) > 0 {
		s += " " + strings.Join(parts, ", ")
	}
	if skip != nil {
		s += " SKIP " + skip.String()
	}
	if limit != nil {
		s += " LIMIT " + limit.String()
	}
	return s
}

func (o *Top) Head() string { return TopHead(o.Items, o.Skip, o.Limit) }

// Format renders the plan tree with indentation, root first.
func Format(op Op) string {
	var sb strings.Builder
	var rec func(Op, int)
	rec = func(o Op, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(o.Head())
		sb.WriteByte('\n')
		for _, c := range o.Children() {
			rec(c, depth+1)
		}
	}
	rec(op, 0)
	return sb.String()
}
