package gra

import (
	"fmt"

	"pgiv/internal/cypher"
	"pgiv/internal/schema"
)

// Compile translates a parsed openCypher query into a GRA plan, following
// the mapping of [20]: each MATCH pattern becomes a get-vertices operator
// followed by expand-out operators; comma-separated patterns and
// consecutive MATCH clauses are combined by natural joins on shared
// variables; WHERE becomes a selection and RETURN a projection (with
// grouping if aggregates are present).
func Compile(q *cypher.Query) (Op, error) {
	c := &compiler{pathVars: make(map[string]bool)}
	return c.compileQuery(q)
}

type compiler struct {
	hidden   int
	pathVars map[string]bool // named path variables bound so far
}

func (c *compiler) fresh(prefix string) string {
	c.hidden++
	return fmt.Sprintf("#%s%d", prefix, c.hidden)
}

func (c *compiler) compileQuery(q *cypher.Query) (Op, error) {
	if q.Return == nil {
		return nil, fmt.Errorf("gra: query has no RETURN clause")
	}
	rewriteCostCalls(q)
	withNeeds := queryPropNeeds(q)
	var acc Op
	for i, clause := range q.Reading {
		switch cl := clause.(type) {
		case *cypher.MatchClause:
			var outer schema.Schema
			if acc != nil {
				outer = acc.Schema()
			}
			if err := checkMatchWhereScope(cl, outer); err != nil {
				return nil, err
			}
			mp, err := c.compileMatch(cl)
			if err != nil {
				return nil, err
			}
			switch {
			case cl.Optional:
				// OPTIONAL MATCH is a left outer join of the working
				// relation with the optional pattern (its WHERE already
				// applied inside mp): unmatched rows survive null-padded.
				// At the start of a query the left side is the unit
				// relation, so a matchless OPTIONAL MATCH yields one
				// all-null row, per openCypher.
				if acc == nil {
					acc = &Unit{}
				}
				acc = &LeftOuterJoin{L: acc, R: mp}
			case acc == nil:
				acc = mp
			default:
				acc = &Join{L: acc, R: mp}
			}
		case *cypher.WithClause:
			if acc == nil {
				acc = &Unit{}
			}
			wp, err := c.compileWith(acc, cl, withNeeds[i])
			if err != nil {
				return nil, err
			}
			acc = wp
		case *cypher.UnwindClause:
			if cypher.ContainsAggregate(cl.Expr) {
				return nil, fmt.Errorf("gra: aggregates are not allowed in UNWIND")
			}
			if acc == nil {
				acc = &Unit{}
			}
			if acc.Schema().Has(cl.Alias) {
				return nil, fmt.Errorf("gra: UNWIND alias %q is already bound", cl.Alias)
			}
			acc = &Unwind{Input: acc, Expr: cl.Expr, Alias: cl.Alias}
		default:
			return nil, fmt.Errorf("gra: unsupported clause %T", clause)
		}
	}
	if acc == nil {
		acc = &Unit{}
	}
	return c.compileReturn(acc, q.Return)
}

func (c *compiler) compileMatch(m *cypher.MatchClause) (Op, error) {
	var clausePlan Op
	var edgeAttrs, pathAttrs []string
	for _, pat := range m.Patterns {
		chain, ea, pa, err := c.compileChain(pat)
		if err != nil {
			return nil, err
		}
		// Deduplicate user-level edge variables: reusing a relationship
		// variable means the same relationship, which is exempt from the
		// uniqueness requirement.
		for _, a := range ea {
			if !containsString(edgeAttrs, a) {
				edgeAttrs = append(edgeAttrs, a)
			}
		}
		pathAttrs = append(pathAttrs, pa...)
		if clausePlan == nil {
			clausePlan = chain
		} else {
			clausePlan = &Join{L: clausePlan, R: chain}
		}
	}
	if len(edgeAttrs)+len(pathAttrs) > 1 {
		clausePlan = &AllDifferent{Input: clausePlan, EdgeAttrs: edgeAttrs, PathAttrs: pathAttrs}
	}
	if m.Where != nil {
		if cypher.ContainsAggregate(m.Where) {
			return nil, fmt.Errorf("gra: aggregates are not allowed in WHERE")
		}
		// Split the condition into top-level conjuncts: pattern
		// predicates become semijoins (antijoins when negated); ordinary
		// predicates become selections.
		for _, conj := range splitConjuncts(m.Where) {
			var err error
			clausePlan, err = c.applyWhereConjunct(clausePlan, conj)
			if err != nil {
				return nil, err
			}
		}
	}
	return clausePlan, nil
}

// checkMatchWhereScope rejects WHERE references that our per-clause
// compilation would silently leave uncorrelated. The WHERE of a MATCH
// compiles inside the clause's own subplan, so it can only correlate
// with variables the clause itself binds:
//
//   - In an OPTIONAL MATCH, any WHERE reference to a variable bound
//     earlier but absent from the optional pattern is out of scope on
//     the right side of the left outer join (openCypher allows it; our
//     relational compilation does not — bind the variable in the
//     pattern, or filter after a WITH).
//   - In any MATCH clause, a pattern predicate naming an
//     earlier-clause variable the clause does not rebind would compile
//     into a semijoin against a fresh, uncorrelated scan of that
//     variable — wrong rows, not an error — because cypher.WalkExpr
//     does not treat pattern-bound names as expression variables. Such
//     predicates must live in the clause that binds their variables.
//
// Plain expression references to unbound variables are left to the
// expression compiler and fragment checker, which reject them with
// their own errors.
func checkMatchWhereScope(cl *cypher.MatchClause, outer schema.Schema) error {
	if cl.Where == nil {
		return nil
	}
	bound := make(map[string]bool)
	for _, pat := range cl.Patterns {
		if pat.Var != "" {
			bound[pat.Var] = true
		}
		for _, n := range pat.Nodes {
			if n.Var != "" {
				bound[n.Var] = true
			}
		}
		for _, r := range pat.Rels {
			if r.Var != "" {
				bound[r.Var] = true
			}
		}
	}
	outOfScope := func(v string) bool { return !bound[v] && outer.Has(v) }
	if cl.Optional {
		for _, v := range cypher.Variables(cl.Where) {
			if outOfScope(v) {
				return fmt.Errorf("gra: the WHERE of an OPTIONAL MATCH may only reference variables bound by the optional pattern itself; %q is bound earlier (bind it in the pattern, or filter after a WITH)", v)
			}
		}
	}
	var err error
	flag := func(v string) {
		if err == nil && v != "" && outOfScope(v) {
			err = fmt.Errorf("gra: pattern predicate references %q, which this clause does not bind; the predicate would not correlate with the earlier binding (move it to the clause binding %q, or rebind the variable in this pattern)", v, v)
		}
	}
	flagExpr := func(e cypher.Expr) {
		for _, v := range cypher.Variables(e) {
			flag(v)
		}
	}
	cypher.WalkExpr(cl.Where, func(x cypher.Expr) {
		pp, ok := x.(*cypher.PatternPredicate)
		if !ok {
			return
		}
		// WalkExpr does not descend into the predicate's pattern; its
		// variable references live in node/rel names and inline
		// property expressions.
		for _, n := range pp.Pattern.Nodes {
			flag(n.Var)
			for _, e := range n.Props {
				flagExpr(e)
			}
		}
		for _, r := range pp.Pattern.Rels {
			flag(r.Var)
			for _, e := range r.Props {
				flagExpr(e)
			}
		}
	})
	return err
}

// propNeeds maps a variable name to the set of property keys accessed
// on it.
type propNeeds map[string]map[string]bool

func (n propNeeds) collect(e cypher.Expr) {
	cypher.WalkExpr(e, func(x cypher.Expr) {
		pa, ok := x.(*cypher.PropAccess)
		if !ok {
			return
		}
		v, ok := pa.Subject.(*cypher.Variable)
		if !ok {
			return
		}
		if n[v.Name] == nil {
			n[v.Name] = make(map[string]bool)
		}
		n[v.Name][pa.Key] = true
	})
}

func (n propNeeds) add(varName, key string) {
	if n[varName] == nil {
		n[varName] = make(map[string]bool)
	}
	n[varName][key] = true
}

func (n propNeeds) clone() propNeeds {
	out := make(propNeeds, len(n))
	for v, keys := range n {
		for k := range keys {
			out.add(v, k)
		}
	}
	return out
}

// queryPropNeeds computes, for each WITH clause (by Reading index), the
// property accesses its projection must provide — everything demanded
// downstream, expressed in the clause's own output namespace, plus its
// own WHERE (which filters the projected rows). compileWith extends the
// projection with these attributes so property pushdown survives the
// projection horizon: WITH a ... RETURN a.score carries a.score,
// keeping the query in the incrementally maintainable fragment.
//
// The scan runs backwards so needs translate through every later WITH's
// renames: in WITH a WITH a AS b RETURN b.x, the demand b.x maps to
// a.x at the second horizon and must already be carried by the first.
func queryPropNeeds(q *cypher.Query) map[int]propNeeds {
	out := make(map[int]propNeeds)
	needs := make(propNeeds)
	if q.Return != nil {
		for _, it := range q.Return.Items {
			needs.collect(it.Expr)
		}
		for _, si := range q.Return.OrderBy {
			needs.collect(si.Expr)
		}
		if q.Return.Skip != nil {
			needs.collect(q.Return.Skip)
		}
		if q.Return.Limit != nil {
			needs.collect(q.Return.Limit)
		}
	}
	for j := len(q.Reading) - 1; j >= 0; j-- {
		switch cl := q.Reading[j].(type) {
		case *cypher.MatchClause:
			for _, pat := range cl.Patterns {
				for _, nd := range pat.Nodes {
					for _, e := range nd.Props {
						needs.collect(e)
					}
				}
				for _, r := range pat.Rels {
					for _, e := range r.Props {
						needs.collect(e)
					}
				}
			}
			if cl.Where != nil {
				needs.collect(cl.Where)
			}
		case *cypher.UnwindClause:
			needs.collect(cl.Expr)
		case *cypher.WithClause:
			// The WHERE filters — and ORDER BY/SKIP/LIMIT window — the
			// projected rows, so their accesses are demands on this
			// clause's own output.
			if cl.Where != nil {
				needs.collect(cl.Where)
			}
			for _, si := range cl.OrderBy {
				needs.collect(si.Expr)
			}
			if cl.Skip != nil {
				needs.collect(cl.Skip)
			}
			if cl.Limit != nil {
				needs.collect(cl.Limit)
			}
			out[j] = needs.clone()
			// Translate into the pre-projection namespace: demands on a
			// pass-through alias map to its source variable; demands on
			// computed items vanish (there is nothing to push); the item
			// expressions themselves are evaluated pre-projection.
			pre := make(propNeeds)
			for _, item := range cl.Items {
				if v, ok := item.Expr.(*cypher.Variable); ok {
					for k := range needs[item.Alias] {
						pre.add(v.Name, k)
					}
				}
				pre.collect(item.Expr)
			}
			needs = pre
		}
	}
	return out
}

// compileWith compiles WITH [DISTINCT] items [WHERE] into a projection
// (aggregation when items aggregate), a dedup for DISTINCT, and
// selections for the WHERE — which acts as HAVING over aggregated
// items. Pass-through variable items additionally carry the property
// attributes needed downstream (under the item's alias, so renames
// propagate); they are harmless extras: each is functionally dependent
// on its variable, so dedup granularity and grouping are unchanged.
func (c *compiler) compileWith(acc Op, w *cypher.WithClause, needs propNeeds) (Op, error) {
	seen := make(map[string]bool)
	for _, item := range w.Items {
		if seen[item.Alias] {
			return nil, fmt.Errorf("gra: duplicate WITH alias %q", item.Alias)
		}
		seen[item.Alias] = true
	}

	var carried []Item
	for _, item := range w.Items {
		v, ok := item.Expr.(*cypher.Variable)
		if !ok {
			continue
		}
		for _, k := range sortedKeys(needs[item.Alias]) {
			attr := schema.PropAttr(item.Alias, k)
			if seen[attr] {
				continue
			}
			seen[attr] = true
			carried = append(carried, Item{
				Expr:  &cypher.PropAccess{Subject: &cypher.Variable{Name: v.Name}, Key: k},
				Alias: attr,
			})
		}
	}

	hasAgg := false
	for _, item := range w.Items {
		if cypher.ContainsAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var plan Op
	if hasAgg {
		agg := &Aggregate{Input: acc}
		for _, item := range w.Items {
			if !cypher.ContainsAggregate(item.Expr) {
				agg.GroupBy = append(agg.GroupBy, Item{Expr: item.Expr, Alias: item.Alias})
				continue
			}
			spec, err := aggSpec(item)
			if err != nil {
				return nil, err
			}
			agg.Aggs = append(agg.Aggs, spec)
		}
		agg.GroupBy = append(agg.GroupBy, carried...)
		plan = agg
	} else {
		proj := &Project{Input: acc}
		for _, item := range w.Items {
			proj.Items = append(proj.Items, Item{Expr: item.Expr, Alias: item.Alias})
		}
		proj.Items = append(proj.Items, carried...)
		plan = proj
	}

	if w.Distinct {
		plan = &Dedup{Input: plan}
	}
	// ORDER BY/SKIP/LIMIT window the projected rows; the WHERE filters
	// the windowed result (matching openCypher's WITH sub-clause order).
	plan, err := applyTop(plan, w.OrderBy, w.Skip, w.Limit)
	if err != nil {
		return nil, err
	}
	if w.Where != nil {
		if cypher.ContainsAggregate(w.Where) {
			return nil, fmt.Errorf("gra: aggregates are not allowed in WITH ... WHERE (alias the aggregate in the items and filter on the alias)")
		}
		for _, conj := range splitConjuncts(w.Where) {
			var err error
			plan, err = c.applyWhereConjunct(plan, conj)
			if err != nil {
				return nil, err
			}
		}
	}
	return plan, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// splitConjuncts flattens a tree of AND operators into its conjuncts.
func splitConjuncts(e cypher.Expr) []cypher.Expr {
	if b, ok := e.(*cypher.Binary); ok && b.Op == cypher.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []cypher.Expr{e}
}

func (c *compiler) applyWhereConjunct(plan Op, conj cypher.Expr) (Op, error) {
	switch x := conj.(type) {
	case *cypher.PatternPredicate:
		sub, err := c.compilePredicatePattern(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &SemiJoin{L: plan, R: sub}, nil
	case *cypher.Unary:
		if x.Op == cypher.OpNot {
			if pp, ok := x.X.(*cypher.PatternPredicate); ok {
				sub, err := c.compilePredicatePattern(pp.Pattern)
				if err != nil {
					return nil, err
				}
				return &AntiJoin{L: plan, R: sub}, nil
			}
		}
	}
	if containsPatternPredicate(conj) {
		return nil, fmt.Errorf("gra: pattern predicates are only supported as top-level (possibly NOT-negated) conjuncts of WHERE, found inside %s", conj.String())
	}
	return &Select{Input: plan, Cond: conj}, nil
}

// compilePredicatePattern compiles the pattern of a pattern predicate
// into a standalone subplan, with relationship uniqueness applied within
// the predicate itself.
func (c *compiler) compilePredicatePattern(pat *cypher.PathPattern) (Op, error) {
	sub, ea, pa, err := c.compileChain(pat)
	if err != nil {
		return nil, err
	}
	if len(ea)+len(pa) > 1 {
		sub = &AllDifferent{Input: sub, EdgeAttrs: ea, PathAttrs: pa}
	}
	return sub, nil
}

func containsPatternPredicate(e cypher.Expr) bool {
	found := false
	cypher.WalkExpr(e, func(x cypher.Expr) {
		if _, ok := x.(*cypher.PatternPredicate); ok {
			found = true
		}
	})
	return found
}

func containsString(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// compileChain compiles one path pattern into a chain of get-vertices and
// expand operators, returning the plan, the single-edge attributes and the
// variable-length path attributes it binds (for relationship uniqueness).
func (c *compiler) compileChain(pat *cypher.PathPattern) (Op, []string, []string, error) {
	var edgeAttrs, pathAttrs []string
	var pathItems []PathItem

	start := pat.Nodes[0]
	startVar := start.Var
	if startVar == "" {
		startVar = c.fresh("v")
	}
	var plan Op = &GetVertices{Var: startVar, Labels: start.Labels}
	var err error
	plan, err = c.applyPropFilters(plan, startVar, start.Props)
	if err != nil {
		return nil, nil, nil, err
	}
	pathItems = append(pathItems, PathItem{Kind: PathVertex, Attr: startVar})

	for i, rel := range pat.Rels {
		dst := pat.Nodes[i+1]
		dstVar := dst.Var
		if dstVar == "" {
			dstVar = c.fresh("v")
		}
		boundDst := plan.Schema().Has(dstVar)
		actualDst := dstVar
		if boundDst {
			actualDst = c.fresh("v")
		}

		if rel.VarLength {
			if rel.Var != "" {
				return nil, nil, nil, fmt.Errorf(
					"gra: binding a variable-length relationship to a variable (%q) is not supported: paths are atomic units (use a named path instead)", rel.Var)
			}
			if pat.Shortest {
				preds, err := edgePreds(rel.Props)
				if err != nil {
					return nil, nil, nil, err
				}
				pathAttr := c.fresh("path")
				cAttr := c.fresh("cost")
				if pat.Var != "" {
					cAttr = costAttr(pat.Var)
				}
				plan = &ShortestPath{
					Input: plan, SrcVar: prevVar(pathItems), DstVar: actualDst,
					Types: rel.Types, Dir: rel.Dir, DstLabels: dst.Labels,
					Min: rel.Min, Max: rel.Max, WeightProp: rel.WeightProp,
					EdgePreds: preds, PathAttr: pathAttr, CostAttr: cAttr,
				}
				pathAttrs = append(pathAttrs, pathAttr)
				pathItems = append(pathItems, PathItem{Kind: PathSub, Attr: pathAttr})
			} else {
				if rel.WeightProp != "" {
					return nil, nil, nil, fmt.Errorf("gra: a weight property ({%s}) is only valid inside shortestPath", rel.WeightProp)
				}
				if len(rel.Props) > 0 {
					return nil, nil, nil, fmt.Errorf("gra: property filters on variable-length relationships are not supported (outside shortestPath)")
				}
				pathAttr := c.fresh("path")
				plan = &Expand{
					Input: plan, SrcVar: prevVar(pathItems), DstVar: actualDst,
					Types: rel.Types, Dir: rel.Dir, DstLabels: dst.Labels,
					VarLength: true, Min: rel.Min, Max: rel.Max, PathAttr: pathAttr,
				}
				pathAttrs = append(pathAttrs, pathAttr)
				pathItems = append(pathItems, PathItem{Kind: PathSub, Attr: pathAttr})
			}
		} else {
			edgeVar := rel.Var
			userEdgeVar := edgeVar != ""
			if edgeVar == "" {
				edgeVar = c.fresh("e")
			}
			boundEdge := plan.Schema().Has(edgeVar)
			actualEdge := edgeVar
			if boundEdge {
				actualEdge = c.fresh("e")
			}
			plan = &Expand{
				Input: plan, SrcVar: prevVar(pathItems), EdgeVar: actualEdge,
				DstVar: actualDst, Types: rel.Types, Dir: rel.Dir, DstLabels: dst.Labels,
				Min: 1, Max: 1,
			}
			if boundEdge {
				plan = &Select{Input: plan, Cond: eqVars(actualEdge, edgeVar)}
			} else if userEdgeVar {
				edgeAttrs = append(edgeAttrs, edgeVar)
			} else {
				edgeAttrs = append(edgeAttrs, actualEdge)
			}
			plan, err = c.applyPropFilters(plan, actualEdge, rel.Props)
			if err != nil {
				return nil, nil, nil, err
			}
			pathItems = append(pathItems, PathItem{Kind: PathEdge, Attr: actualEdge, Reversed: rel.Dir == cypher.DirIn})
		}

		if boundDst {
			plan = &Select{Input: plan, Cond: eqVars(actualDst, dstVar)}
		}
		plan, err = c.applyPropFilters(plan, actualDst, dst.Props)
		if err != nil {
			return nil, nil, nil, err
		}
		pathItems = append(pathItems, PathItem{Kind: PathVertex, Attr: actualDst})
	}

	if pat.Var != "" {
		if plan.Schema().Has(pat.Var) || c.pathVars[pat.Var] {
			return nil, nil, nil, fmt.Errorf("gra: path variable %q is already bound", pat.Var)
		}
		c.pathVars[pat.Var] = true
		plan = &PathBuild{Input: plan, Attr: pat.Var, Items: pathItems}
	}
	return plan, edgeAttrs, pathAttrs, nil
}

// costAttr is the hidden attribute holding the path cost of a named
// shortestPath pattern; cost(p) in any expression resolves to it.
func costAttr(pathVar string) string { return "#cost:" + pathVar }

// rewriteCostCalls replaces cost(p) — where p names a shortestPath
// pattern somewhere in the query — with the hidden cost attribute the
// ShortestPath operator binds. Rewriting happens on the AST before
// compilation so every expression slot (WHERE, WITH, ORDER BY, RETURN,
// UNWIND) sees the attribute uniformly. cost() over anything else is left
// alone and fails in the expression compiler as an unknown function.
func rewriteCostCalls(q *cypher.Query) {
	named := make(map[string]bool)
	for _, cl := range q.Reading {
		m, ok := cl.(*cypher.MatchClause)
		if !ok {
			continue
		}
		for _, pat := range m.Patterns {
			if pat.Shortest && pat.Var != "" {
				named[pat.Var] = true
			}
		}
	}
	if len(named) == 0 {
		return
	}
	rw := func(e cypher.Expr) cypher.Expr {
		fc, ok := e.(*cypher.FuncCall)
		if !ok || fc.Name != "cost" || len(fc.Args) != 1 {
			return e
		}
		v, ok := fc.Args[0].(*cypher.Variable)
		if !ok || !named[v.Name] {
			return e
		}
		return &cypher.Variable{Name: costAttr(v.Name)}
	}
	rwp := func(e cypher.Expr) cypher.Expr {
		if e == nil {
			return nil
		}
		return cypher.RewriteExpr(e, rw)
	}
	for _, cl := range q.Reading {
		switch x := cl.(type) {
		case *cypher.MatchClause:
			x.Where = rwp(x.Where)
		case *cypher.UnwindClause:
			x.Expr = rwp(x.Expr)
		case *cypher.WithClause:
			for i := range x.Items {
				x.Items[i].Expr = rwp(x.Items[i].Expr)
			}
			for i := range x.OrderBy {
				x.OrderBy[i].Expr = rwp(x.OrderBy[i].Expr)
			}
			x.Skip, x.Limit, x.Where = rwp(x.Skip), rwp(x.Limit), rwp(x.Where)
		}
	}
	for i := range q.Return.Items {
		q.Return.Items[i].Expr = rwp(q.Return.Items[i].Expr)
	}
	for i := range q.Return.OrderBy {
		q.Return.OrderBy[i].Expr = rwp(q.Return.OrderBy[i].Expr)
	}
	q.Return.Skip, q.Return.Limit = rwp(q.Return.Skip), rwp(q.Return.Limit)
}

// edgePreds converts the property map of a shortestPath relationship into
// the sorted interior-edge predicate list. Predicate expressions must be
// constant: they apply to every traversed edge, inside the path operator,
// where no pattern variable is in scope.
func edgePreds(props map[string]cypher.Expr) ([]EdgePred, error) {
	if len(props) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sortStrings(keys)
	preds := make([]EdgePred, 0, len(keys))
	for _, k := range keys {
		e := props[k]
		if cypher.ContainsAggregate(e) {
			return nil, fmt.Errorf("gra: aggregates are not allowed in property map values")
		}
		if vars := cypher.Variables(e); len(vars) > 0 {
			return nil, fmt.Errorf("gra: shortestPath edge predicate %s references variable %q; interior-edge predicates must be constant", k, vars[0])
		}
		preds = append(preds, EdgePred{Key: k, Expr: e})
	}
	return preds, nil
}

// prevVar returns the attribute of the most recent vertex in the item
// sequence (the expansion source).
func prevVar(items []PathItem) string {
	for i := len(items) - 1; i >= 0; i-- {
		if items[i].Kind == PathVertex {
			return items[i].Attr
		}
	}
	return ""
}

func eqVars(a, b string) cypher.Expr {
	return &cypher.Binary{Op: cypher.OpEq, L: &cypher.Variable{Name: a}, R: &cypher.Variable{Name: b}}
}

func (c *compiler) applyPropFilters(plan Op, varName string, props map[string]cypher.Expr) (Op, error) {
	if len(props) == 0 {
		return plan, nil
	}
	// Deterministic order for reproducible plans.
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		e := props[k]
		if cypher.ContainsAggregate(e) {
			return nil, fmt.Errorf("gra: aggregates are not allowed in property map values")
		}
		cond := &cypher.Binary{
			Op: cypher.OpEq,
			L:  &cypher.PropAccess{Subject: &cypher.Variable{Name: varName}, Key: k},
			R:  e,
		}
		plan = &Select{Input: plan, Cond: cond}
	}
	return plan, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// aggSpec converts a RETURN/WITH item whose expression contains an
// aggregate into an AggSpec; the aggregate must be the item's top-level
// expression and must not nest further aggregates.
func aggSpec(item cypher.ReturnItem) (AggSpec, error) {
	if !cypher.IsAggregate(item.Expr) {
		return AggSpec{}, fmt.Errorf("gra: aggregate must be a top-level function call in item %q", item.Alias)
	}
	switch x := item.Expr.(type) {
	case *cypher.CountStar:
		return AggSpec{Func: "count", Alias: item.Alias}, nil
	case *cypher.FuncCall:
		if len(x.Args) != 1 {
			return AggSpec{}, fmt.Errorf("gra: aggregate %s expects exactly one argument", x.Name)
		}
		if cypher.ContainsAggregate(x.Args[0]) {
			return AggSpec{}, fmt.Errorf("gra: nested aggregates are not allowed")
		}
		return AggSpec{Func: x.Name, Arg: x.Args[0], Distinct: x.Distinct, Alias: item.Alias}, nil
	}
	return AggSpec{}, fmt.Errorf("gra: unsupported aggregate expression in item %q", item.Alias)
}

func (c *compiler) compileReturn(acc Op, ret *cypher.ReturnClause) (Op, error) {
	seen := make(map[string]bool)
	for _, item := range ret.Items {
		if seen[item.Alias] {
			return nil, fmt.Errorf("gra: duplicate return alias %q", item.Alias)
		}
		seen[item.Alias] = true
	}

	hasAgg := false
	for _, item := range ret.Items {
		if cypher.ContainsAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var plan Op
	if hasAgg {
		agg := &Aggregate{Input: acc}
		for _, item := range ret.Items {
			if !cypher.ContainsAggregate(item.Expr) {
				agg.GroupBy = append(agg.GroupBy, Item{Expr: item.Expr, Alias: item.Alias})
				continue
			}
			spec, err := aggSpec(item)
			if err != nil {
				return nil, err
			}
			agg.Aggs = append(agg.Aggs, spec)
		}
		// Restore the RETURN item order on top of the aggregate's
		// (groups, aggs) schema.
		proj := &Project{Input: agg}
		for _, item := range ret.Items {
			proj.Items = append(proj.Items, Item{Expr: &cypher.Variable{Name: item.Alias}, Alias: item.Alias})
		}
		plan = proj
	} else {
		proj := &Project{Input: acc}
		for _, item := range ret.Items {
			proj.Items = append(proj.Items, Item{Expr: item.Expr, Alias: item.Alias})
		}
		plan = proj
	}

	if ret.Distinct {
		plan = &Dedup{Input: plan}
	}
	return applyTop(plan, ret.OrderBy, ret.Skip, ret.Limit)
}

// applyTop wraps plan with a Top operator when any of ORDER BY, SKIP or
// LIMIT is present (one combined operator: the window is defined with
// respect to the ordering, and a windowed query without ORDER BY falls
// back to the canonical row order for determinism).
func applyTop(plan Op, orderBy []cypher.SortItem, skip, limit cypher.Expr) (Op, error) {
	if len(orderBy) == 0 && skip == nil && limit == nil {
		return plan, nil
	}
	top := &Top{Input: plan, Skip: skip, Limit: limit}
	for _, si := range orderBy {
		if cypher.ContainsAggregate(si.Expr) {
			return nil, fmt.Errorf("gra: aggregates are not allowed in ORDER BY (aggregate in the projection and order by its alias)")
		}
		top.Items = append(top.Items, SortItem{Expr: si.Expr, Desc: si.Desc})
	}
	for _, e := range []cypher.Expr{skip, limit} {
		if e != nil && cypher.ContainsAggregate(e) {
			return nil, fmt.Errorf("gra: aggregates are not allowed in SKIP/LIMIT")
		}
	}
	return top, nil
}
