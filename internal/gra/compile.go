package gra

import (
	"fmt"

	"pgiv/internal/cypher"
)

// Compile translates a parsed openCypher query into a GRA plan, following
// the mapping of [20]: each MATCH pattern becomes a get-vertices operator
// followed by expand-out operators; comma-separated patterns and
// consecutive MATCH clauses are combined by natural joins on shared
// variables; WHERE becomes a selection and RETURN a projection (with
// grouping if aggregates are present).
func Compile(q *cypher.Query) (Op, error) {
	c := &compiler{pathVars: make(map[string]bool)}
	return c.compileQuery(q)
}

type compiler struct {
	hidden   int
	pathVars map[string]bool // named path variables bound so far
}

func (c *compiler) fresh(prefix string) string {
	c.hidden++
	return fmt.Sprintf("#%s%d", prefix, c.hidden)
}

func (c *compiler) compileQuery(q *cypher.Query) (Op, error) {
	if q.Return == nil {
		return nil, fmt.Errorf("gra: query has no RETURN clause")
	}
	var acc Op
	for _, clause := range q.Reading {
		switch cl := clause.(type) {
		case *cypher.MatchClause:
			mp, err := c.compileMatch(cl)
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = mp
			} else {
				acc = &Join{L: acc, R: mp}
			}
		case *cypher.UnwindClause:
			if cypher.ContainsAggregate(cl.Expr) {
				return nil, fmt.Errorf("gra: aggregates are not allowed in UNWIND")
			}
			if acc == nil {
				acc = &Unit{}
			}
			if acc.Schema().Has(cl.Alias) {
				return nil, fmt.Errorf("gra: UNWIND alias %q is already bound", cl.Alias)
			}
			acc = &Unwind{Input: acc, Expr: cl.Expr, Alias: cl.Alias}
		default:
			return nil, fmt.Errorf("gra: unsupported clause %T", clause)
		}
	}
	if acc == nil {
		acc = &Unit{}
	}
	return c.compileReturn(acc, q.Return)
}

func (c *compiler) compileMatch(m *cypher.MatchClause) (Op, error) {
	var clausePlan Op
	var edgeAttrs, pathAttrs []string
	for _, pat := range m.Patterns {
		chain, ea, pa, err := c.compileChain(pat)
		if err != nil {
			return nil, err
		}
		// Deduplicate user-level edge variables: reusing a relationship
		// variable means the same relationship, which is exempt from the
		// uniqueness requirement.
		for _, a := range ea {
			if !containsString(edgeAttrs, a) {
				edgeAttrs = append(edgeAttrs, a)
			}
		}
		pathAttrs = append(pathAttrs, pa...)
		if clausePlan == nil {
			clausePlan = chain
		} else {
			clausePlan = &Join{L: clausePlan, R: chain}
		}
	}
	if len(edgeAttrs)+len(pathAttrs) > 1 {
		clausePlan = &AllDifferent{Input: clausePlan, EdgeAttrs: edgeAttrs, PathAttrs: pathAttrs}
	}
	if m.Where != nil {
		if cypher.ContainsAggregate(m.Where) {
			return nil, fmt.Errorf("gra: aggregates are not allowed in WHERE")
		}
		// Split the condition into top-level conjuncts: pattern
		// predicates become semijoins (antijoins when negated); ordinary
		// predicates become selections.
		for _, conj := range splitConjuncts(m.Where) {
			var err error
			clausePlan, err = c.applyWhereConjunct(clausePlan, conj)
			if err != nil {
				return nil, err
			}
		}
	}
	return clausePlan, nil
}

// splitConjuncts flattens a tree of AND operators into its conjuncts.
func splitConjuncts(e cypher.Expr) []cypher.Expr {
	if b, ok := e.(*cypher.Binary); ok && b.Op == cypher.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []cypher.Expr{e}
}

func (c *compiler) applyWhereConjunct(plan Op, conj cypher.Expr) (Op, error) {
	switch x := conj.(type) {
	case *cypher.PatternPredicate:
		sub, err := c.compilePredicatePattern(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &SemiJoin{L: plan, R: sub}, nil
	case *cypher.Unary:
		if x.Op == cypher.OpNot {
			if pp, ok := x.X.(*cypher.PatternPredicate); ok {
				sub, err := c.compilePredicatePattern(pp.Pattern)
				if err != nil {
					return nil, err
				}
				return &AntiJoin{L: plan, R: sub}, nil
			}
		}
	}
	if containsPatternPredicate(conj) {
		return nil, fmt.Errorf("gra: pattern predicates are only supported as top-level (possibly NOT-negated) conjuncts of WHERE, found inside %s", conj.String())
	}
	return &Select{Input: plan, Cond: conj}, nil
}

// compilePredicatePattern compiles the pattern of a pattern predicate
// into a standalone subplan, with relationship uniqueness applied within
// the predicate itself.
func (c *compiler) compilePredicatePattern(pat *cypher.PathPattern) (Op, error) {
	sub, ea, pa, err := c.compileChain(pat)
	if err != nil {
		return nil, err
	}
	if len(ea)+len(pa) > 1 {
		sub = &AllDifferent{Input: sub, EdgeAttrs: ea, PathAttrs: pa}
	}
	return sub, nil
}

func containsPatternPredicate(e cypher.Expr) bool {
	found := false
	cypher.WalkExpr(e, func(x cypher.Expr) {
		if _, ok := x.(*cypher.PatternPredicate); ok {
			found = true
		}
	})
	return found
}

func containsString(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// compileChain compiles one path pattern into a chain of get-vertices and
// expand operators, returning the plan, the single-edge attributes and the
// variable-length path attributes it binds (for relationship uniqueness).
func (c *compiler) compileChain(pat *cypher.PathPattern) (Op, []string, []string, error) {
	var edgeAttrs, pathAttrs []string
	var pathItems []PathItem

	start := pat.Nodes[0]
	startVar := start.Var
	if startVar == "" {
		startVar = c.fresh("v")
	}
	var plan Op = &GetVertices{Var: startVar, Labels: start.Labels}
	var err error
	plan, err = c.applyPropFilters(plan, startVar, start.Props)
	if err != nil {
		return nil, nil, nil, err
	}
	pathItems = append(pathItems, PathItem{Kind: PathVertex, Attr: startVar})

	for i, rel := range pat.Rels {
		dst := pat.Nodes[i+1]
		dstVar := dst.Var
		if dstVar == "" {
			dstVar = c.fresh("v")
		}
		boundDst := plan.Schema().Has(dstVar)
		actualDst := dstVar
		if boundDst {
			actualDst = c.fresh("v")
		}

		if rel.VarLength {
			if rel.Var != "" {
				return nil, nil, nil, fmt.Errorf(
					"gra: binding a variable-length relationship to a variable (%q) is not supported: paths are atomic units (use a named path instead)", rel.Var)
			}
			if len(rel.Props) > 0 {
				return nil, nil, nil, fmt.Errorf("gra: property filters on variable-length relationships are not supported")
			}
			pathAttr := c.fresh("path")
			plan = &Expand{
				Input: plan, SrcVar: prevVar(pathItems), DstVar: actualDst,
				Types: rel.Types, Dir: rel.Dir, DstLabels: dst.Labels,
				VarLength: true, Min: rel.Min, Max: rel.Max, PathAttr: pathAttr,
			}
			pathAttrs = append(pathAttrs, pathAttr)
			pathItems = append(pathItems, PathItem{Kind: PathSub, Attr: pathAttr})
		} else {
			edgeVar := rel.Var
			userEdgeVar := edgeVar != ""
			if edgeVar == "" {
				edgeVar = c.fresh("e")
			}
			boundEdge := plan.Schema().Has(edgeVar)
			actualEdge := edgeVar
			if boundEdge {
				actualEdge = c.fresh("e")
			}
			plan = &Expand{
				Input: plan, SrcVar: prevVar(pathItems), EdgeVar: actualEdge,
				DstVar: actualDst, Types: rel.Types, Dir: rel.Dir, DstLabels: dst.Labels,
				Min: 1, Max: 1,
			}
			if boundEdge {
				plan = &Select{Input: plan, Cond: eqVars(actualEdge, edgeVar)}
			} else if userEdgeVar {
				edgeAttrs = append(edgeAttrs, edgeVar)
			} else {
				edgeAttrs = append(edgeAttrs, actualEdge)
			}
			plan, err = c.applyPropFilters(plan, actualEdge, rel.Props)
			if err != nil {
				return nil, nil, nil, err
			}
			pathItems = append(pathItems, PathItem{Kind: PathEdge, Attr: actualEdge, Reversed: rel.Dir == cypher.DirIn})
		}

		if boundDst {
			plan = &Select{Input: plan, Cond: eqVars(actualDst, dstVar)}
		}
		plan, err = c.applyPropFilters(plan, actualDst, dst.Props)
		if err != nil {
			return nil, nil, nil, err
		}
		pathItems = append(pathItems, PathItem{Kind: PathVertex, Attr: actualDst})
	}

	if pat.Var != "" {
		if plan.Schema().Has(pat.Var) || c.pathVars[pat.Var] {
			return nil, nil, nil, fmt.Errorf("gra: path variable %q is already bound", pat.Var)
		}
		c.pathVars[pat.Var] = true
		plan = &PathBuild{Input: plan, Attr: pat.Var, Items: pathItems}
	}
	return plan, edgeAttrs, pathAttrs, nil
}

// prevVar returns the attribute of the most recent vertex in the item
// sequence (the expansion source).
func prevVar(items []PathItem) string {
	for i := len(items) - 1; i >= 0; i-- {
		if items[i].Kind == PathVertex {
			return items[i].Attr
		}
	}
	return ""
}

func eqVars(a, b string) cypher.Expr {
	return &cypher.Binary{Op: cypher.OpEq, L: &cypher.Variable{Name: a}, R: &cypher.Variable{Name: b}}
}

func (c *compiler) applyPropFilters(plan Op, varName string, props map[string]cypher.Expr) (Op, error) {
	if len(props) == 0 {
		return plan, nil
	}
	// Deterministic order for reproducible plans.
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		e := props[k]
		if cypher.ContainsAggregate(e) {
			return nil, fmt.Errorf("gra: aggregates are not allowed in property map values")
		}
		cond := &cypher.Binary{
			Op: cypher.OpEq,
			L:  &cypher.PropAccess{Subject: &cypher.Variable{Name: varName}, Key: k},
			R:  e,
		}
		plan = &Select{Input: plan, Cond: cond}
	}
	return plan, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (c *compiler) compileReturn(acc Op, ret *cypher.ReturnClause) (Op, error) {
	seen := make(map[string]bool)
	for _, item := range ret.Items {
		if seen[item.Alias] {
			return nil, fmt.Errorf("gra: duplicate return alias %q", item.Alias)
		}
		seen[item.Alias] = true
	}

	hasAgg := false
	for _, item := range ret.Items {
		if cypher.ContainsAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var plan Op
	if hasAgg {
		agg := &Aggregate{Input: acc}
		for _, item := range ret.Items {
			if !cypher.ContainsAggregate(item.Expr) {
				agg.GroupBy = append(agg.GroupBy, Item{Expr: item.Expr, Alias: item.Alias})
				continue
			}
			if !cypher.IsAggregate(item.Expr) {
				return nil, fmt.Errorf("gra: aggregate must be a top-level function call in RETURN item %q", item.Alias)
			}
			switch x := item.Expr.(type) {
			case *cypher.CountStar:
				agg.Aggs = append(agg.Aggs, AggSpec{Func: "count", Alias: item.Alias})
			case *cypher.FuncCall:
				if len(x.Args) != 1 {
					return nil, fmt.Errorf("gra: aggregate %s expects exactly one argument", x.Name)
				}
				if cypher.ContainsAggregate(x.Args[0]) {
					return nil, fmt.Errorf("gra: nested aggregates are not allowed")
				}
				agg.Aggs = append(agg.Aggs, AggSpec{Func: x.Name, Arg: x.Args[0], Distinct: x.Distinct, Alias: item.Alias})
			}
		}
		// Restore the RETURN item order on top of the aggregate's
		// (groups, aggs) schema.
		proj := &Project{Input: agg}
		for _, item := range ret.Items {
			proj.Items = append(proj.Items, Item{Expr: &cypher.Variable{Name: item.Alias}, Alias: item.Alias})
		}
		plan = proj
	} else {
		proj := &Project{Input: acc}
		for _, item := range ret.Items {
			proj.Items = append(proj.Items, Item{Expr: item.Expr, Alias: item.Alias})
		}
		plan = proj
	}

	if ret.Distinct {
		plan = &Dedup{Input: plan}
	}
	if len(ret.OrderBy) > 0 {
		s := &Sort{Input: plan}
		for _, si := range ret.OrderBy {
			if cypher.ContainsAggregate(si.Expr) {
				return nil, fmt.Errorf("gra: aggregates are not allowed in ORDER BY (aggregate in RETURN and order by its alias)")
			}
			s.Items = append(s.Items, SortItem{Expr: si.Expr, Desc: si.Desc})
		}
		plan = s
	}
	if ret.Skip != nil {
		plan = &Skip{Input: plan, N: ret.Skip}
	}
	if ret.Limit != nil {
		plan = &Limit{Input: plan, N: ret.Limit}
	}
	return plan, nil
}
