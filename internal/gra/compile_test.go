package gra

import (
	"strings"
	"testing"

	"pgiv/internal/cypher"
)

func compile(t *testing.T, src string) Op {
	t.Helper()
	q, err := cypher.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	op, err := Compile(q)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return op
}

func TestCompilePaperExample(t *testing.T) {
	op := compile(t, "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
	want := strings.TrimLeft(`
Project p AS p, t AS t
  Select (p.lang = c.lang)
    PathBuild t = <p, #path1, c>
      Expand (p)-[:REPLY*1..]->(c:Comm)
        GetVertices (p:Post)
`, "\n")
	if got := Format(op); got != want {
		t.Errorf("plan:\n%s\nwant:\n%s", got, want)
	}
}

func TestCompileChainAndJoin(t *testing.T) {
	op := compile(t, "MATCH (a:A)-[e:X]->(b), (c:C)-[f:Y]->(b) RETURN a, c")
	got := Format(op)
	for _, frag := range []string{"Join on (b)", "AllDifferent edges=[e f]", "GetVertices (a:A)", "GetVertices (c:C)"} {
		if !strings.Contains(got, frag) {
			t.Errorf("plan missing %q:\n%s", frag, got)
		}
	}
}

func TestCompileCycleRebinding(t *testing.T) {
	// (a)-->(b)-->(a): the second occurrence of a must become a fresh
	// variable constrained equal.
	op := compile(t, "MATCH (a:A)-[:X]->(b)-[:X]->(a) RETURN a")
	got := Format(op)
	if !strings.Contains(got, "Select (#v") {
		t.Errorf("missing rebinding equality selection:\n%s", got)
	}
}

func TestCompileSharedEdgeVariable(t *testing.T) {
	// Reusing a relationship variable means the same edge and is exempt
	// from the uniqueness check.
	op := compile(t, "MATCH (a)-[e:X]->(b), (c)-[e:X]->(d) RETURN a")
	got := Format(op)
	if strings.Contains(got, "AllDifferent") {
		t.Errorf("shared edge var should not trigger AllDifferent:\n%s", got)
	}
}

func TestCompileAggregate(t *testing.T) {
	op := compile(t, "MATCH (p:Post) RETURN p.lang, count(*) AS n, sum(p.score) AS total")
	got := Format(op)
	for _, frag := range []string{"Aggregate p.lang, count(*) AS n, sum(p.score) AS total", "Project p.lang AS p.lang, n AS n, total AS total"} {
		if !strings.Contains(got, frag) {
			t.Errorf("plan missing %q:\n%s", frag, got)
		}
	}
}

func TestCompileModifiers(t *testing.T) {
	op := compile(t, "MATCH (a) RETURN DISTINCT a ORDER BY a SKIP 1 LIMIT 2")
	got := Format(op)
	// One combined Top operator above the Dedup.
	if !strings.Contains(got, "Top a ASC SKIP 1 LIMIT 2") || !strings.Contains(got, "Dedup") {
		t.Errorf("plan missing Top/Dedup:\n%s", got)
	}
	if to, de := strings.Index(got, "Top"), strings.Index(got, "Dedup"); !(to < de) {
		t.Errorf("modifier order wrong (Top must wrap Dedup):\n%s", got)
	}
	// SKIP/LIMIT without ORDER BY also compile to a (key-less) Top.
	op2 := compile(t, "MATCH (a) RETURN a LIMIT 3")
	if !strings.Contains(Format(op2), "Top LIMIT 3") {
		t.Errorf("key-less window plan:\n%s", Format(op2))
	}
}

func TestCompileWithModifiers(t *testing.T) {
	op := compile(t, "MATCH (a) WITH a ORDER BY a.x DESC LIMIT 5 WHERE a.x > 1 RETURN a")
	got := Format(op)
	if !strings.Contains(got, "Top a.x DESC LIMIT 5") {
		t.Errorf("WITH window missing Top:\n%s", got)
	}
	// The WHERE filters the windowed rows: Select above Top.
	if se, to := strings.Index(got, "Select (a.x > 1)"), strings.Index(got, "Top"); !(se >= 0 && se < to) {
		t.Errorf("WITH WHERE must filter above the window:\n%s", got)
	}
}

func TestCompilePatternPredicates(t *testing.T) {
	op := compile(t, "MATCH (a:A) WHERE NOT (a)-[:X]->(:B) AND a.p = 1 RETURN a")
	got := Format(op)
	if !strings.Contains(got, "AntiJoin on (a)") {
		t.Errorf("missing antijoin:\n%s", got)
	}
	if !strings.Contains(got, "Select (a.p = 1)") {
		t.Errorf("missing residual selection:\n%s", got)
	}
	op2 := compile(t, "MATCH (a:A) WHERE (a)-[:X]->(:B) RETURN a")
	if !strings.Contains(Format(op2), "SemiJoin on (a)") {
		t.Errorf("missing semijoin:\n%s", Format(op2))
	}
}

func TestCompileUnwindLedQuery(t *testing.T) {
	op := compile(t, "UNWIND [1, 2] AS x RETURN x")
	got := Format(op)
	if !strings.Contains(got, "Unit") || !strings.Contains(got, "Unwind [1, 2] AS x") {
		t.Errorf("plan:\n%s", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"MATCH (a)-[es:X*]->(b) RETURN es",                   // var-length edge binding
		"MATCH (a)-[:X* {w: 1}]->(b) RETURN a",               // props on var-length
		"MATCH (a) RETURN a AS x, a AS x",                    // duplicate alias
		"MATCH (a) WHERE count(a) > 1 RETURN a",              // aggregate in WHERE
		"MATCH (a) RETURN count(a) + 1 AS n",                 // non-top-level aggregate
		"MATCH (a) RETURN min(count(a)) AS n",                // nested aggregate
		"MATCH (a) UNWIND count(a) AS x RETURN x",            // aggregate in UNWIND
		"MATCH t = (a)-->(b) MATCH t = (c)-->(d) RETURN t",   // path var rebound
		"MATCH (a) UNWIND [1] AS a RETURN a",                 // alias already bound
		"MATCH (a) WHERE (a)-[:X]->(:B) OR a.p = 1 RETURN a", // pattern predicate in OR
		"MATCH (a) RETURN a ORDER BY count(a)",               // aggregate in ORDER BY
		"MATCH (a) WITH a, a.x AS x, count(a) AS x RETURN x", // duplicate WITH alias
		"MATCH (a) WITH a WHERE count(a) > 1 RETURN a",       // aggregate in WITH WHERE
		"MATCH (a) WITH count(a) + 1 AS n RETURN n",          // non-top-level aggregate in WITH
		// Out-of-scope WHERE references that per-clause compilation
		// cannot correlate must error, not silently miscompile:
		"MATCH (a:A) OPTIONAL MATCH (b:B) WHERE a.p = b.p RETURN a, b",            // expression ref to outer var
		"MATCH (a:A) OPTIONAL MATCH (b:B) WHERE (a)-[:K]->(b) RETURN a, b",        // pattern predicate ref to outer var
		"MATCH (a:A) OPTIONAL MATCH (b:B) WHERE (x {k: a.p}) -[:K]->(b) RETURN b", // outer var in predicate prop map
		"MATCH (a:A) MATCH (b:B) WHERE (a)-[:K]->(b) RETURN a, b",                 // same, non-optional later clause
	}
	for _, src := range cases {
		q, err := cypher.Parse(src)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := Compile(q); err == nil {
			t.Errorf("Compile(%q) unexpectedly succeeded", src)
		}
	}
}

func TestCompileOptionalMatchScope(t *testing.T) {
	// WHERE references confined to the clause's own bindings compile:
	// expression refs, pattern predicates on pattern-bound variables,
	// and genuinely fresh (existential) predicate variables.
	compile(t, "MATCH (a:A) OPTIONAL MATCH (a)-[:K]->(b:B) WHERE b.p > a.p RETURN a, b")
	compile(t, "MATCH (a:A) OPTIONAL MATCH (a)-[:K]->(b:B) WHERE NOT (b)-[:K]->(a) RETURN a, b")
	compile(t, "MATCH (a:A) MATCH (b:B) WHERE (b)-[:K]->(:C) RETURN a, b")
	op := compile(t, "MATCH (a:A) OPTIONAL MATCH (a)-[:K]->(b:B) RETURN a, b")
	if got := Format(op); !strings.Contains(got, "LeftOuterJoin on (a)") {
		t.Errorf("plan missing outer join:\n%s", got)
	}
	// A query-initial OPTIONAL MATCH outer-joins against the unit
	// relation (one all-null row on no match).
	op2 := compile(t, "OPTIONAL MATCH (h:H) RETURN h")
	if got := Format(op2); !strings.Contains(got, "LeftOuterJoin on ()") || !strings.Contains(got, "Unit") {
		t.Errorf("initial OPTIONAL MATCH plan:\n%s", got)
	}
}

func TestCompileWithRenameChains(t *testing.T) {
	// Property demands translate backwards through every WITH rename:
	// b.x two horizons away maps to a.x at the first projection, which
	// must carry it for pushdown to survive.
	op := compile(t, "MATCH (a:P) WITH a WITH a AS b RETURN b.x")
	if got := op.Schema().String(); got != "(b.x)" {
		t.Errorf("schema = %s", got)
	}
	plan := Format(op)
	for _, frag := range []string{"a.x AS a.x", "a.x AS b.x"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing carried attribute %q:\n%s", frag, plan)
		}
	}
	// A rename that shadows an earlier name resolves to the new binding.
	op2 := compile(t, "MATCH (a:P) MATCH (c:Q) WITH a, c WITH c AS a RETURN a.y")
	if got := op2.Schema().String(); got != "(a.y)" {
		t.Errorf("schema = %s", got)
	}
	if plan2 := Format(op2); !strings.Contains(plan2, "c.y AS a.y") {
		t.Errorf("shadowing rename not translated:\n%s", plan2)
	}
}

func TestSchemas(t *testing.T) {
	op := compile(t, "MATCH (a:A)-[e:X]->(b) RETURN a, e, b")
	if got := op.Schema().String(); got != "(a, e, b)" {
		t.Errorf("schema = %s", got)
	}
	op2 := compile(t, "MATCH (p:Post) RETURN p.lang, count(*) AS n")
	if got := op2.Schema().String(); got != "(p.lang, n)" {
		t.Errorf("schema = %s", got)
	}
}
