package wal_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/wal"
	"pgiv/internal/wal/faultfs"
)

func sampleOps(i int) []graph.Op {
	return []graph.Op{
		{Kind: "av", ID: graph.ID(i + 1), Labels: []string{"Person"}},
		{Kind: "ae", ID: graph.ID(i + 1), Src: 1, Trg: graph.ID(i + 1), Type: "KNOWS"},
	}
}

// buildLog appends n commit records through a faultfs-backed log and
// returns the fs, the synced image and the records.
func buildLog(t *testing.T, n int) (*faultfs.FS, []byte, []wal.Record) {
	t.Helper()
	fs := faultfs.New()
	l, recs, err := wal.Open("wal.log", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	for i := 0; i < n; i++ {
		if _, err := l.AppendCommit(uint64(i+1), int64(i+2), int64(i+1), sampleOps(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := fs.ReadFile("wal.log")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	all, _, err := wal.Scan(data)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(all) != n {
		t.Fatalf("scan found %d records, want %d", len(all), n)
	}
	return fs, data, all
}

func TestScanRoundTrip(t *testing.T) {
	_, data, recs := buildLog(t, 5)
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Type != wal.TypeCommit || r.Epoch != uint64(i+1) {
			t.Fatalf("record %d: %+v", i, r)
		}
		if !reflect.DeepEqual(r.Ops, sampleOps(i)) {
			t.Fatalf("record %d ops mismatch: %+v", i, r.Ops)
		}
	}
	// Register and drop records round-trip too.
	fs := faultfs.New()
	l, _, err := wal.Open("wal.log", wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRegister("v1", "MATCH (n) RETURN n", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendDrop("v1"); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, _ = fs.ReadFile("wal.log")
	recs, _, err = wal.Scan(data)
	if err != nil || len(recs) != 2 {
		t.Fatalf("scan: %v, %d records", err, len(recs))
	}
	if recs[0].Type != wal.TypeRegister || recs[0].View != "v1" || recs[1].Type != wal.TypeDrop {
		t.Fatalf("records: %+v", recs)
	}
}

// TestTornTailEveryTruncation truncates the log at every byte offset
// inside the final record and requires the scan to recover exactly the
// preceding records.
func TestTornTailEveryTruncation(t *testing.T) {
	_, data, recs := buildLog(t, 4)
	// Find the start offset of the final record: scan the prefix lengths.
	_, lastStart, err := wal.Scan(data[:len(data)-1])
	if err != nil {
		t.Fatal(err)
	}
	for cut := lastStart; cut < len(data); cut++ {
		got, validLen, err := wal.Scan(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: scan error %v", cut, err)
		}
		if len(got) != len(recs)-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), len(recs)-1)
		}
		if validLen != lastStart {
			t.Fatalf("cut %d: valid length %d, want %d", cut, validLen, lastStart)
		}
	}
	// And Open must truncate the torn tail away and keep appending.
	fs := faultfs.New()
	f, _ := fs.OpenAppend("wal.log")
	f.Write(data[:len(data)-3])
	f.Sync()
	l, got, err := wal.Open("wal.log", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("open torn: %v", err)
	}
	if len(got) != len(recs)-1 {
		t.Fatalf("open torn: %d records, want %d", len(got), len(recs)-1)
	}
	if _, err := l.AppendCommit(99, 1, 1, sampleOps(0)); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	l.Close()
	data2, _ := fs.ReadFile("wal.log")
	got2, _, err := wal.Scan(data2)
	if err != nil || len(got2) != len(recs) {
		t.Fatalf("after re-append: %v, %d records", err, len(got2))
	}
	if got2[len(got2)-1].Epoch != 99 {
		t.Fatalf("re-appended record: %+v", got2[len(got2)-1])
	}
}

// TestTornTailEveryBitFlip flips one bit at every byte offset of the
// final record; the CRC must reject the record and recovery must land on
// the last intact prefix.
func TestTornTailEveryBitFlip(t *testing.T) {
	_, data, recs := buildLog(t, 4)
	_, lastStart, err := wal.Scan(data[:len(data)-1])
	if err != nil {
		t.Fatal(err)
	}
	for off := lastStart; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		got, validLen, err := wal.Scan(mut)
		if err != nil {
			t.Fatalf("flip at %d: scan error %v", off, err)
		}
		// A flip in the length header can make the final frame look
		// torn; a flip anywhere else fails its CRC. Either way the
		// record must not survive.
		if len(got) != len(recs)-1 || validLen != lastStart {
			t.Fatalf("flip at %d: %d records (valid %d), want %d (valid %d)",
				off, len(got), validLen, len(recs)-1, lastStart)
		}
	}
}

// TestShortWriteNotAcknowledged injects a mid-frame write failure: the
// append must error, and a restart must not see the record.
func TestShortWriteNotAcknowledged(t *testing.T) {
	fs, _, recs := buildLog(t, 3)
	l, _, err := wal.Open("wal.log", wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	fs.FailWrites(5)
	if _, err := l.AppendCommit(100, 1, 1, sampleOps(9)); err == nil {
		t.Fatal("short write was acknowledged")
	}
	l.Close()
	// Reboot: the torn frame must be truncated away.
	l2, got, err := wal.Open("wal.log", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(got) != len(recs) {
		t.Fatalf("reopen found %d records, want %d", len(got), len(recs))
	}
}

// TestSyncFailureRollsBackAppend: under fsync=always a failed Sync must
// remove the fully-written frame and reuse its LSN — otherwise the
// rolled-back commit's record survives and every future recovery replays
// a commit that was reported failed.
func TestSyncFailureRollsBackAppend(t *testing.T) {
	fs, _, recs := buildLog(t, 3)
	l, _, err := wal.Open("wal.log", wal.Options{Fsync: wal.FsyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	fs.FailSyncs(1)
	if _, err := l.AppendCommit(100, 1, 1, sampleOps(9)); err == nil {
		t.Fatal("append with failing sync was acknowledged")
	}
	// The retry of the same epoch must land on the rolled-back LSN.
	lsn, err := l.AppendCommit(4, 1, 1, sampleOps(3))
	if err != nil {
		t.Fatalf("append after sync failure: %v", err)
	}
	if want := uint64(len(recs) + 1); lsn != want {
		t.Fatalf("retry got LSN %d, want %d (rolled-back LSN reused)", lsn, want)
	}
	l.Close()
	l2, got, err := wal.Open("wal.log", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(got) != len(recs)+1 {
		t.Fatalf("reopen found %d records, want %d", len(got), len(recs)+1)
	}
	for _, r := range got {
		if r.Epoch == 100 {
			t.Fatalf("rolled-back record survived: %+v", r)
		}
	}
	if last := got[len(got)-1]; last.Epoch != 4 || last.LSN != uint64(len(recs)+1) {
		t.Fatalf("final record: %+v", last)
	}
}

// TestFsyncPolicies checks the crash-durability contract of each policy
// under the faultfs crash model.
func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []string{wal.FsyncAlways, wal.FsyncOff} {
		t.Run(policy, func(t *testing.T) {
			fs := faultfs.New()
			l, _, err := wal.Open("wal.log", wal.Options{Fsync: policy, FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := l.AppendCommit(uint64(i+1), 1, 1, sampleOps(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Crash without closing: an rng that keeps nothing unsynced.
			fs.Crash(rand.New(rand.NewSource(1)))
			_, got, err := wal.Open("wal.log", wal.Options{FS: fs})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			switch policy {
			case wal.FsyncAlways:
				if len(got) != 10 {
					t.Fatalf("fsync=always lost records: %d of 10 survive", len(got))
				}
			case wal.FsyncOff:
				if len(got) == 10 && fs.SyncedLen("wal.log") == 0 {
					// rng kept the whole buffer — possible but with seed 1
					// it should not; the point is no error and a clean
					// prefix, checked by Open succeeding.
					t.Log("crash kept the entire unsynced buffer")
				}
			}
		})
	}
}

// TestEnsureLSN covers the watermark bump used after recovery.
func TestEnsureLSN(t *testing.T) {
	fs := faultfs.New()
	l, _, err := wal.Open("wal.log", wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	l.EnsureLSN(40)
	if _, err := l.AppendCommit(1, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 41 {
		t.Fatalf("LSN after bump: %d, want 41", got)
	}
	l.Close()
}

// TestReadAll exercises the tolerant reader.
func TestReadAll(t *testing.T) {
	_, data, recs := buildLog(t, 3)
	got, err := wal.ReadAll(bytes.NewReader(append(data, 0xde, 0xad)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
}

// TestNonMonotonicLSNRejected: an intact frame with a regressing LSN is
// corruption, not a torn tail.
func TestNonMonotonicLSNRejected(t *testing.T) {
	var data []byte
	var err error
	for _, lsn := range []uint64{1, 2, 2} {
		data, err = wal.AppendFrame(data, &wal.Record{LSN: lsn, Type: wal.TypeDrop, View: fmt.Sprintf("v%d", lsn)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := wal.Scan(data); err == nil {
		t.Fatal("non-monotonic LSN accepted")
	}
}
