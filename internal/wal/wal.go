// Package wal implements the write-ahead log of pgiv's durability
// layer: an append-only, CRC32-framed, length-prefixed sequence of
// records describing every committed change set plus every view
// registration and drop, in commit order.
//
// Frame format (all integers big-endian):
//
//	[4 bytes payload length][4 bytes CRC32 (IEEE) of payload][payload]
//
// The payload is the JSON encoding of one Record. A crash can leave the
// file with a torn tail — an incomplete header, a length pointing past
// EOF, or a payload whose CRC does not match. Open detects all three,
// truncates the file back to the last intact record, and returns the
// surviving records; a torn record and everything after it are
// discarded, never partially applied.
//
// Durability is governed by the fsync policy: "always" syncs after
// every append (a crash loses nothing that was acknowledged),
// "interval" syncs on a timer (bounded loss window), "off" never syncs
// explicitly (crash durability is whatever the OS flushed). The file
// system is abstracted behind FS/File so tests inject fault models
// (short writes, torn tails, lost unsynced data) — see package faultfs.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"pgiv/internal/graph"
	"pgiv/internal/protocol"
)

// Record types.
const (
	TypeCommit   = "commit"   // one committed change set
	TypeRegister = "register" // a view registration
	TypeDrop     = "drop"     // a view drop
)

// Fsync policies.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncOff      = "off"
)

// Record is one logged event. LSN is a strictly monotonic sequence
// number across all record types; checkpoints store an LSN watermark and
// recovery replays records with greater LSNs in log order, which
// reproduces the original interleaving of commits and view
// registrations. Commit records carry the element operations of the
// coalesced change set (graph.OpsFromChangeSet order), the epoch the
// commit was assigned, and the post-commit ID allocator positions.
type Record struct {
	LSN   uint64 `json:"lsn"`
	Type  string `json:"t"`
	Epoch uint64 `json:"epoch,omitempty"`
	NextV int64  `json:"nv,omitempty"`
	NextE int64  `json:"ne,omitempty"`

	Ops []graph.Op `json:"ops,omitempty"`

	View   string                        `json:"view,omitempty"`
	Query  string                        `json:"query,omitempty"`
	Params map[string]protocol.WireValue `json:"params,omitempty"`
}

// FS abstracts the file operations the log needs, so fault-injection
// tests can model crashes and short writes.
type FS interface {
	OpenAppend(path string) (File, error)
	ReadFile(path string) ([]byte, error)
	Truncate(path string, size int64) error
}

// File is an append-only log file handle.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OSFS is the real file system.
type OSFS struct{}

func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (OSFS) ReadFile(path string) ([]byte, error)   { return os.ReadFile(path) }
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// Options configures a log.
type Options struct {
	// Fsync is the sync policy: FsyncAlways (default), FsyncInterval or
	// FsyncOff.
	Fsync string
	// Interval is the sync period under FsyncInterval (default 100ms).
	Interval time.Duration
	// FS overrides the file system (default: the OS).
	FS FS
}

// Log is an open write-ahead log. Appends are serialised internally;
// one Log must not be opened twice.
type Log struct {
	mu      sync.Mutex
	fs      FS
	path    string
	f       File
	policy  string
	nextLSN uint64
	size    int64 // bytes of intact frames (write-failure truncation point)
	dirty   bool  // unsynced appends outstanding

	stop chan struct{} // interval-sync ticker shutdown
	done chan struct{}
}

// Open opens (creating if absent) the log at path, scans it tolerantly
// — a torn or corrupt tail is truncated away — and returns the log
// positioned for appending plus every intact record in log order.
func Open(path string, opts Options) (*Log, []Record, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	policy := opts.Fsync
	if policy == "" {
		policy = FsyncAlways
	}
	switch policy {
	case FsyncAlways, FsyncInterval, FsyncOff:
	default:
		return nil, nil, fmt.Errorf("wal: unknown fsync policy %q", policy)
	}

	data, err := fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	records, validLen, err := Scan(data)
	if err != nil {
		return nil, nil, err
	}
	if int64(validLen) < int64(len(data)) {
		if err := fs.Truncate(path, int64(validLen)); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}

	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{fs: fs, path: path, f: f, policy: policy, nextLSN: 1, size: int64(validLen)}
	if n := len(records); n > 0 {
		l.nextLSN = records[n-1].LSN + 1
	}
	if policy == FsyncInterval {
		iv := opts.Interval
		if iv <= 0 {
			iv = 100 * time.Millisecond
		}
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop(iv)
	}
	return l, records, nil
}

// Scan parses a log image, returning the intact record prefix and the
// byte length it covers. Records beyond the first torn or corrupt frame
// are discarded; Scan fails only on malformed JSON inside an intact
// frame (CRC-valid but undecodable — real corruption, not a torn tail)
// or a non-monotonic LSN.
func Scan(data []byte) ([]Record, int, error) {
	var records []Record
	off := 0
	for {
		if len(data)-off < 8 {
			break // torn or absent header
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if len(data)-off-8 < n {
			break // torn payload
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break // torn or bit-flipped tail record
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, 0, fmt.Errorf("wal: record at offset %d passes CRC but does not decode: %w", off, err)
		}
		if k := len(records); k > 0 && rec.LSN <= records[k-1].LSN {
			return nil, 0, fmt.Errorf("wal: non-monotonic LSN %d after %d at offset %d", rec.LSN, records[k-1].LSN, off)
		}
		records = append(records, rec)
		off += 8 + n
	}
	return records, off, nil
}

// AppendFrame encodes one record into its framed wire form.
func AppendFrame(dst []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...), nil
}

// append writes one record (stamping its LSN), applying the sync
// policy. A failed write may leave a torn frame at the tail; the log
// truncates back to the last intact frame so later appends stay
// readable — and if even that fails, it poisons itself (every further
// append errors) rather than write records nothing can scan to.
func (l *Log) append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	rec.LSN = l.nextLSN
	frame, err := AppendFrame(nil, rec)
	if err != nil {
		return 0, err
	}
	if _, err := l.f.Write(frame); err != nil {
		if terr := l.fs.Truncate(l.path, l.size); terr != nil {
			l.f.Close()
			l.f = nil
			return 0, fmt.Errorf("wal: append failed (%v) and truncation failed (%v): log closed", err, terr)
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.nextLSN++
	if l.policy == FsyncAlways {
		if err := l.f.Sync(); err != nil {
			// The frame is fully written and CRC-valid, but the caller is
			// about to roll the commit back — if the frame stayed, every
			// future recovery would replay a commit that was reported
			// failed (and then trip the epoch assertion on the next real
			// one). Mirror the write-failure path: truncate back to the
			// pre-append size and reuse the LSN, poisoning the log if even
			// the truncation fails.
			l.size -= int64(len(frame))
			l.nextLSN--
			if terr := l.fs.Truncate(l.path, l.size); terr != nil {
				l.f.Close()
				l.f = nil
				return 0, fmt.Errorf("wal: sync failed (%v) and truncation failed (%v): log closed", err, terr)
			}
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	} else {
		l.dirty = true
	}
	return rec.LSN, nil
}

// AppendCommit logs one committed change set's operations.
func (l *Log) AppendCommit(epoch uint64, nextV, nextE int64, ops []graph.Op) (uint64, error) {
	return l.append(&Record{Type: TypeCommit, Epoch: epoch, NextV: nextV, NextE: nextE, Ops: ops})
}

// AppendRegister logs a view registration.
func (l *Log) AppendRegister(view, query string, params map[string]protocol.WireValue) (uint64, error) {
	return l.append(&Record{Type: TypeRegister, View: view, Query: query, Params: params})
}

// AppendDrop logs a view drop.
func (l *Log) AppendDrop(view string) (uint64, error) {
	return l.append(&Record{Type: TypeDrop, View: view})
}

// EnsureLSN makes future appends use LSNs strictly greater than min.
// Recovery calls this with the checkpoint's LSN watermark: under lax
// fsync policies a crash can lose a log suffix the checkpoint already
// covers, and without the bump, post-recovery appends would reuse LSNs
// at or below the watermark and be skipped by the next recovery.
func (l *Log) EnsureLSN(min uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextLSN <= min {
		l.nextLSN = min + 1
	}
}

// LastLSN returns the LSN of the most recently appended (or recovered)
// record, 0 if the log is empty.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Sync forces outstanding appends to stable storage regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	return nil
}

func (l *Log) syncLoop(iv time.Duration) {
	defer close(l.done)
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			_ = l.syncLocked()
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Close syncs outstanding appends and closes the log file.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// ReadAll opens and tolerantly scans a log image from r without
// truncating anything (diagnostics and tests).
func ReadAll(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	recs, _, err := Scan(data)
	return recs, err
}
