// Package faultfs is an in-memory wal.FS with a crash model for
// fault-injection tests.
//
// Each file tracks two byte ranges: synced (guaranteed to survive a
// crash) and buffered (written but not yet synced — the page cache).
// Sync moves the buffer into the synced range. Crash simulates the
// kernel's view at power loss: every file keeps its synced prefix plus
// an arbitrary prefix of its buffered bytes (a torn tail), chosen by the
// caller's random source. FailWrites additionally makes upcoming writes
// fail after a short prefix, modelling ENOSPC/EIO mid-frame.
package faultfs

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"pgiv/internal/wal"
)

// FS is an in-memory fault-injecting file system.
type FS struct {
	mu    sync.Mutex
	files map[string]*file

	// failAfter < 0: writes succeed. Otherwise the next write persists
	// at most failAfter bytes and returns an error.
	failAfter int

	// failSyncs > 0: that many upcoming Sync calls fail, leaving the
	// buffer unsynced (EIO at fsync time — the write itself succeeded).
	failSyncs int
}

type file struct {
	synced []byte
	buf    []byte
}

// New returns an empty fault-injecting file system.
func New() *FS {
	return &FS{files: make(map[string]*file), failAfter: -1}
}

// OpenAppend implements wal.FS.
func (fs *FS) OpenAppend(path string) (wal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path]
	if f == nil {
		f = &file{}
		fs.files[path] = f
	}
	return &handle{fs: fs, f: f}, nil
}

// ReadFile implements wal.FS: it reads what a freshly-rebooted process
// would see — synced bytes plus whatever buffered bytes still survive
// (all of them unless a Crash intervened).
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path]
	if f == nil {
		return nil, os.ErrNotExist
	}
	out := make([]byte, 0, len(f.synced)+len(f.buf))
	out = append(out, f.synced...)
	return append(out, f.buf...), nil
}

// Truncate implements wal.FS.
func (fs *FS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[path]
	if f == nil {
		return os.ErrNotExist
	}
	whole := append(append([]byte(nil), f.synced...), f.buf...)
	if size > int64(len(whole)) {
		return fmt.Errorf("faultfs: truncate %s beyond EOF", path)
	}
	whole = whole[:size]
	if int64(len(f.synced)) > size {
		f.synced = whole
		f.buf = nil
	} else {
		f.buf = whole[len(f.synced):]
	}
	return nil
}

// FailWrites makes the next write to any file persist at most n bytes
// and then return an error (a short write). Pass -1 to restore normal
// operation.
func (fs *FS) FailWrites(n int) {
	fs.mu.Lock()
	fs.failAfter = n
	fs.mu.Unlock()
}

// FailSyncs makes the next n Sync calls on any file fail without
// syncing anything (EIO at fsync time). Pass 0 to restore normal
// operation.
func (fs *FS) FailSyncs(n int) {
	fs.mu.Lock()
	fs.failSyncs = n
	fs.mu.Unlock()
}

// Crash simulates power loss: for every file the unsynced buffer is
// replaced by a random-length prefix of itself (possibly empty,
// possibly all of it — rng decides), producing torn tails exactly where
// unsynced appends were in flight. Synced bytes always survive. Open
// handles keep working (the test usually abandons them).
func (fs *FS) Crash(rng *rand.Rand) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		if len(f.buf) == 0 {
			continue
		}
		keep := rng.Intn(len(f.buf) + 1)
		f.buf = append([]byte(nil), f.buf[:keep]...)
	}
}

// SyncedLen returns the synced byte count of a file (0 if absent).
func (fs *FS) SyncedLen(path string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f := fs.files[path]; f != nil {
		return len(f.synced)
	}
	return 0
}

type handle struct {
	fs *FS
	f  *file
}

// Write implements wal.File: bytes land in the unsynced buffer.
func (h *handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.failAfter >= 0 {
		n := h.fs.failAfter
		if n > len(p) {
			n = len(p)
		}
		h.fs.failAfter = -1
		h.f.buf = append(h.f.buf, p[:n]...)
		return n, fmt.Errorf("faultfs: injected write failure after %d bytes", n)
	}
	h.f.buf = append(h.f.buf, p...)
	return len(p), nil
}

// Sync implements wal.File: the buffer becomes crash-durable.
func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.failSyncs > 0 {
		h.fs.failSyncs--
		return fmt.Errorf("faultfs: injected sync failure")
	}
	h.f.synced = append(h.f.synced, h.f.buf...)
	h.f.buf = h.f.buf[:0]
	return nil
}

// Close implements wal.File. Closing does not sync (like the OS).
func (h *handle) Close() error { return nil }
