// Package core anchors the paper's primary contribution and maps it to
// the packages that implement it. The contribution — compiling an
// openCypher fragment through GRA → NRA → FRA into an incrementally
// maintainable view with fine-grained updates and atomic paths — is split
// across:
//
//   - pgiv/internal/ivm:  the view-maintenance engine and fragment checker
//   - pgiv/internal/rete: the incremental dataflow network
//   - pgiv/internal/gra, nra, fra: the three compilation stages
//
// This package re-exports the engine's entry points so that the
// contribution has a single importable root inside internal/.
package core

import (
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
)

// Engine is the incremental view maintenance engine (see pgiv/internal/ivm).
type Engine = ivm.Engine

// View is an incrementally maintained materialised view.
type View = ivm.View

// Options configure the engine (node-sharing ablation etc.).
type Options = ivm.Options

// ErrNotMaintainable marks queries outside the paper's incrementally
// maintainable openCypher fragment.
var ErrNotMaintainable = ivm.ErrNotMaintainable

// NewEngine creates an engine over a property graph store.
func NewEngine(g *graph.Graph, opts ...Options) *Engine { return ivm.NewEngine(g, opts...) }
