// Package write executes Cypher write statements (CREATE, MERGE, SET,
// REMOVE, DELETE/DETACH DELETE, with an optional reading prefix) against
// a property graph.
//
// The reading prefix is bound through the snapshot evaluator — the same
// GRA→NRA→FRA pipeline read queries use — evaluated once, eagerly,
// before any mutation, per openCypher's clause-major semantics: a MATCH
// never observes the writes of its own statement. The update clauses are
// then applied clause by clause over the binding rows, and every mutation
// goes through the transactional Mutator path, so one statement is one
// commit: views receive one coalesced OnChange batch, and any error rolls
// the whole statement back.
package write

import (
	"fmt"
	"sort"
	"strings"

	"pgiv/internal/cypher"
	"pgiv/internal/expr"
	"pgiv/internal/fra"
	"pgiv/internal/graph"
	"pgiv/internal/schema"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// Stats summarises the effects of one executed write statement,
// mirroring the counters graph databases report for write queries.
type Stats struct {
	MatchedRows   int `json:"matchedRows"`
	NodesCreated  int `json:"nodesCreated,omitempty"`
	EdgesCreated  int `json:"edgesCreated,omitempty"`
	NodesDeleted  int `json:"nodesDeleted,omitempty"`
	EdgesDeleted  int `json:"edgesDeleted,omitempty"`
	PropertiesSet int `json:"propertiesSet,omitempty"`
	LabelsAdded   int `json:"labelsAdded,omitempty"`
	LabelsRemoved int `json:"labelsRemoved,omitempty"`
}

// String renders the non-zero counters, e.g.
// "3 rows, +2 nodes, +1 edges, 4 properties".
func (s Stats) String() string {
	parts := []string{fmt.Sprintf("%d rows", s.MatchedRows)}
	add := func(n int, format string) {
		if n != 0 {
			parts = append(parts, fmt.Sprintf(format, n))
		}
	}
	add(s.NodesCreated, "+%d nodes")
	add(s.EdgesCreated, "+%d edges")
	add(s.NodesDeleted, "-%d nodes")
	add(s.EdgesDeleted, "-%d edges")
	add(s.PropertiesSet, "%d properties")
	add(s.LabelsAdded, "+%d labels")
	add(s.LabelsRemoved, "-%d labels")
	return strings.Join(parts, ", ")
}

// Exec parses src and executes it as a single-commit write statement on
// g. Registered views observe exactly one coalesced OnChange batch; on
// error nothing is applied.
func Exec(g *graph.Graph, src string, params map[string]value.Value) (Stats, error) {
	stmt, err := cypher.ParseStatement(src)
	if err != nil {
		return Stats{}, err
	}
	if !stmt.IsWrite() {
		return Stats{}, fmt.Errorf("write: statement has no write clause (evaluate read queries with Snapshot or RegisterView)")
	}
	return ExecStatement(g, stmt.Write, params)
}

// ExecStatement executes an already-parsed write statement in its own
// transaction.
func ExecStatement(g *graph.Graph, w *cypher.WriteStatement, params map[string]value.Value) (Stats, error) {
	var st Stats
	err := g.Batch(func(tx *graph.Tx) error {
		var err error
		st, err = ExecTx(g, tx, w, params)
		return err
	})
	if err != nil {
		return Stats{}, err
	}
	return st, nil
}

// ExecTx applies a write statement through an already-open transaction
// (mut is the *graph.Tx). The reading prefix observes the transaction's
// earlier writes — the store applies eagerly — so a sequence of ExecTx
// calls inside one Batch equals the same statements in per-statement
// commits, state-wise. Errors leave the transaction open; the caller
// decides to roll back.
func ExecTx(g *graph.Graph, mut graph.Mutator, w *cypher.WriteStatement, params map[string]value.Value) (Stats, error) {
	x := &exec{g: g, mut: mut, params: params,
		deadV: make(map[int64]bool), deadE: make(map[int64]bool)}
	if err := x.bind(w.Reading); err != nil {
		return Stats{}, err
	}
	x.st.MatchedRows = len(x.rows)
	for _, u := range w.Updates {
		var err error
		switch c := u.(type) {
		case *cypher.CreateClause:
			err = x.applyCreate(c)
		case *cypher.MergeClause:
			err = x.applyMerge(c)
		case *cypher.SetClause:
			err = x.applySet(c.Items)
		case *cypher.RemoveClause:
			err = x.applyRemove(c)
		case *cypher.DeleteClause:
			err = x.applyDelete(c)
		default:
			err = fmt.Errorf("write: unsupported update clause %T", u)
		}
		if err != nil {
			return Stats{}, err
		}
	}
	return x.st, nil
}

type exec struct {
	g      *graph.Graph
	mut    graph.Mutator
	params map[string]value.Value
	sch    schema.Schema
	rows   []value.Row
	st     Stats
	deadV  map[int64]bool // vertices deleted by this statement
	deadE  map[int64]bool // edges deleted by this statement
}

// visibleVars lists, in first-appearance order, the variables a reading
// prefix leaves in scope: pattern variables (nodes, fixed-length
// relationships, named paths), UNWIND aliases, and — resetting the scope,
// as WITH is a horizon — WITH aliases.
func visibleVars(reading []cypher.Clause) []string {
	var vars []string
	seen := make(map[string]bool)
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			vars = append(vars, n)
		}
	}
	for _, c := range reading {
		switch cl := c.(type) {
		case *cypher.MatchClause:
			for _, p := range cl.Patterns {
				add(p.Var)
				for _, n := range p.Nodes {
					add(n.Var)
				}
				for _, r := range p.Rels {
					if !r.VarLength {
						add(r.Var)
					}
				}
			}
		case *cypher.UnwindClause:
			add(cl.Alias)
		case *cypher.WithClause:
			vars = vars[:0]
			seen = make(map[string]bool)
			for _, it := range cl.Items {
				add(it.Alias)
			}
		}
	}
	return vars
}

// bind evaluates the reading prefix once against the current graph and
// captures its rows as the binding table. An empty prefix yields the
// single empty row; a prefix binding no variables still preserves row
// multiplicity through a constant projection.
func (x *exec) bind(reading []cypher.Clause) error {
	if len(reading) == 0 {
		x.sch, x.rows = schema.Schema{}, []value.Row{{}}
		return nil
	}
	vars := visibleVars(reading)
	items := make([]cypher.ReturnItem, 0, len(vars))
	for _, v := range vars {
		items = append(items, cypher.ReturnItem{Expr: &cypher.Variable{Name: v}, Alias: v})
	}
	if len(items) == 0 {
		items = append(items, cypher.ReturnItem{
			Expr: &cypher.Literal{Val: value.NewInt(1)}, Alias: "1"})
	}
	q := &cypher.Query{Reading: reading, Return: &cypher.ReturnClause{Items: items}}
	plan, err := fra.Compile(q)
	if err != nil {
		return err
	}
	res, err := snapshot.Eval(x.g, plan, x.params)
	if err != nil {
		return err
	}
	x.sch, x.rows = res.Schema, res.Rows
	if len(items) == 1 && len(vars) == 0 {
		// The constant column only carried multiplicity; hide it so
		// update clauses cannot reference it.
		x.sch = schema.Schema{}
		for i := range x.rows {
			x.rows[i] = x.rows[i][:0]
		}
	}
	return nil
}

// propSet is one compiled property initialiser or constraint.
type propSet struct {
	key string
	fn  expr.Fn
}

func compileProps(props map[string]cypher.Expr, sch schema.Schema, params map[string]value.Value) ([]propSet, error) {
	if len(props) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]propSet, 0, len(keys))
	for _, k := range keys {
		fn, err := expr.Compile(props[k], sch, params)
		if err != nil {
			return nil, err
		}
		out = append(out, propSet{key: k, fn: fn})
	}
	return out, nil
}

func evalProps(env *expr.Env, ps []propSet) map[string]value.Value {
	if len(ps) == 0 {
		return nil
	}
	m := make(map[string]value.Value, len(ps))
	for _, p := range ps {
		m[p.key] = p.fn(env)
	}
	return m
}

// extendRows widens every binding row to the clause's extended schema.
func (x *exec) extendRows(newLen int) {
	for i, row := range x.rows {
		nr := make(value.Row, newLen)
		copy(nr, row)
		x.rows[i] = nr
	}
}

// cNode is one compiled CREATE node slot.
type cNode struct {
	useIdx  int // >= 0: reuse the bound vertex at this row index
	labels  []string
	props   []propSet
	bindIdx int // >= 0: write the created vertex to this row index
}

// cRel is one compiled CREATE relationship.
type cRel struct {
	typ            string
	srcPos, trgPos int // node positions within the pattern
	props          []propSet
	bindIdx        int
}

type cPattern struct {
	nodes []cNode
	rels  []cRel
}

// compileCreatePattern lowers one CREATE (or MERGE-create) pattern
// against the schema in *sch, extending it with the variables the
// pattern binds. forMerge relaxes direction (MERGE may match -[]-; a
// created relationship is then oriented left-to-right).
func compileCreatePattern(pat *cypher.PathPattern, sch *schema.Schema, params map[string]value.Value, forMerge bool) (*cPattern, error) {
	cp := &cPattern{}
	for _, n := range pat.Nodes {
		cn := cNode{useIdx: -1, bindIdx: -1, labels: n.Labels}
		if n.Var != "" {
			if idx := sch.Index(n.Var); idx >= 0 {
				if len(n.Labels) > 0 || len(n.Props) > 0 {
					return nil, fmt.Errorf("write: pattern reuses bound variable %q; it must be bare", n.Var)
				}
				cn.useIdx = idx
				cp.nodes = append(cp.nodes, cn)
				continue
			}
		}
		ps, err := compileProps(n.Props, *sch, params)
		if err != nil {
			return nil, err
		}
		cn.props = ps
		if n.Var != "" {
			cn.bindIdx = len(*sch)
			*sch = append(*sch, n.Var)
		}
		cp.nodes = append(cp.nodes, cn)
	}
	for j, r := range pat.Rels {
		if r.VarLength {
			return nil, fmt.Errorf("write: cannot create a variable-length relationship")
		}
		if len(r.Types) != 1 {
			return nil, fmt.Errorf("write: a created relationship requires exactly one type")
		}
		cr := cRel{typ: r.Types[0], bindIdx: -1}
		switch r.Dir {
		case cypher.DirOut:
			cr.srcPos, cr.trgPos = j, j+1
		case cypher.DirIn:
			cr.srcPos, cr.trgPos = j+1, j
		default:
			if !forMerge {
				return nil, fmt.Errorf("write: a created relationship requires a direction")
			}
			cr.srcPos, cr.trgPos = j, j+1
		}
		ps, err := compileProps(r.Props, *sch, params)
		if err != nil {
			return nil, err
		}
		cr.props = ps
		if r.Var != "" {
			if sch.Index(r.Var) >= 0 {
				return nil, fmt.Errorf("write: relationship variable %q is already bound", r.Var)
			}
			cr.bindIdx = len(*sch)
			*sch = append(*sch, r.Var)
		}
		cp.rels = append(cp.rels, cr)
	}
	return cp, nil
}

// createPattern instantiates one compiled pattern for one binding row,
// returning the vertex IDs of the pattern's node slots.
func (x *exec) createPattern(cp *cPattern, row value.Row, env *expr.Env) ([]int64, error) {
	ids := make([]int64, len(cp.nodes))
	for i, n := range cp.nodes {
		if n.useIdx >= 0 {
			v := row[n.useIdx]
			if v.Kind() != value.KindVertex {
				return nil, fmt.Errorf("write: pattern endpoint is %s, not a vertex", v)
			}
			if x.deadV[v.ID()] {
				return nil, fmt.Errorf("write: pattern endpoint was deleted by this statement")
			}
			ids[i] = v.ID()
			continue
		}
		id := x.mut.AddVertex(n.labels, evalProps(env, n.props))
		x.st.NodesCreated++
		ids[i] = id
		if n.bindIdx >= 0 {
			row[n.bindIdx] = value.NewVertex(id)
		}
	}
	for _, r := range cp.rels {
		eid, err := x.mut.AddEdge(ids[r.srcPos], ids[r.trgPos], r.typ, evalProps(env, r.props))
		if err != nil {
			return nil, fmt.Errorf("write: %v", err)
		}
		x.st.EdgesCreated++
		if r.bindIdx >= 0 {
			row[r.bindIdx] = value.NewEdge(eid)
		}
	}
	return ids, nil
}

func (x *exec) applyCreate(c *cypher.CreateClause) error {
	sch := x.sch.Clone()
	pats := make([]*cPattern, 0, len(c.Patterns))
	for _, pat := range c.Patterns {
		if pat.Var != "" {
			return fmt.Errorf("write: named paths are not supported in CREATE")
		}
		cp, err := compileCreatePattern(pat, &sch, x.params, false)
		if err != nil {
			return err
		}
		pats = append(pats, cp)
	}
	x.extendRows(len(sch))
	env := &expr.Env{G: x.g}
	for _, row := range x.rows {
		env.Row = row
		for _, cp := range pats {
			if _, err := x.createPattern(cp, row, env); err != nil {
				return err
			}
		}
	}
	x.sch = sch
	return nil
}

// compiledSetItem is one lowered SET/REMOVE target.
type compiledSetItem struct {
	varIdx int
	name   string
	key    string
	labels []string
	fn     expr.Fn // property form only
	remove bool
}

func (x *exec) compileSetItems(items []cypher.SetItem, sch schema.Schema) ([]compiledSetItem, error) {
	out := make([]compiledSetItem, 0, len(items))
	for _, it := range items {
		idx := sch.Index(it.Variable)
		if idx < 0 {
			return nil, fmt.Errorf("write: SET references unbound variable %q", it.Variable)
		}
		ci := compiledSetItem{varIdx: idx, name: it.Variable, key: it.Key, labels: it.Labels}
		if it.Key != "" && it.Value != nil { // REMOVE items carry no value
			fn, err := expr.Compile(it.Value, sch, x.params)
			if err != nil {
				return nil, err
			}
			ci.fn = fn
		}
		out = append(out, ci)
	}
	return out, nil
}

// applySetItem applies one SET/REMOVE item to one row. SET on a null
// target is a no-op (the OPTIONAL MATCH convention); any other non-element
// target is an error.
func (x *exec) applySetItem(ci compiledSetItem, row value.Row, env *expr.Env) error {
	v := row[ci.varIdx]
	if v.IsNull() {
		return nil
	}
	switch v.Kind() {
	case value.KindVertex:
		if ci.key != "" {
			val := value.Null
			if !ci.remove {
				val = ci.fn(env)
			}
			if err := x.mut.SetVertexProperty(v.ID(), ci.key, val); err != nil {
				return fmt.Errorf("write: %v", err)
			}
			x.st.PropertiesSet++
			return nil
		}
		for _, l := range ci.labels {
			var err error
			if ci.remove {
				err = x.mut.RemoveVertexLabel(v.ID(), l)
				x.st.LabelsRemoved++
			} else {
				err = x.mut.AddVertexLabel(v.ID(), l)
				x.st.LabelsAdded++
			}
			if err != nil {
				return fmt.Errorf("write: %v", err)
			}
		}
		return nil
	case value.KindEdge:
		if ci.key == "" {
			return fmt.Errorf("write: cannot change labels of relationship %q", ci.name)
		}
		val := value.Null
		if !ci.remove {
			val = ci.fn(env)
		}
		if err := x.mut.SetEdgeProperty(v.ID(), ci.key, val); err != nil {
			return fmt.Errorf("write: %v", err)
		}
		x.st.PropertiesSet++
		return nil
	}
	return fmt.Errorf("write: SET target %q is %s, not a vertex or relationship", ci.name, v)
}

func (x *exec) applySet(items []cypher.SetItem) error {
	cis, err := x.compileSetItems(items, x.sch)
	if err != nil {
		return err
	}
	env := &expr.Env{G: x.g}
	for _, row := range x.rows {
		env.Row = row
		for _, ci := range cis {
			if err := x.applySetItem(ci, row, env); err != nil {
				return err
			}
		}
	}
	return nil
}

func (x *exec) applyRemove(c *cypher.RemoveClause) error {
	items := make([]cypher.SetItem, 0, len(c.Items))
	for _, it := range c.Items {
		items = append(items, cypher.SetItem{Variable: it.Variable, Key: it.Key, Labels: it.Labels})
	}
	cis, err := x.compileSetItems(items, x.sch)
	if err != nil {
		return err
	}
	for i := range cis {
		cis[i].remove = true
	}
	env := &expr.Env{G: x.g}
	for _, row := range x.rows {
		env.Row = row
		for _, ci := range cis {
			if err := x.applySetItem(ci, row, env); err != nil {
				return err
			}
		}
	}
	return nil
}

// incidentEdges returns the IDs of the edges incident to a vertex,
// deduplicated (a self-loop appears once), in ascending order.
func (x *exec) incidentEdges(id int64) []int64 {
	seen := make(map[int64]bool)
	var ids []int64
	collect := func(e *graph.Edge) bool {
		if !seen[e.ID] {
			seen[e.ID] = true
			ids = append(ids, e.ID)
		}
		return true
	}
	x.g.ForEachOutEdge(id, "", collect)
	x.g.ForEachInEdge(id, "", collect)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (x *exec) applyDelete(c *cypher.DeleteClause) error {
	fns := make([]expr.Fn, len(c.Exprs))
	for i, e := range c.Exprs {
		fn, err := expr.Compile(e, x.sch, x.params)
		if err != nil {
			return err
		}
		fns[i] = fn
	}
	env := &expr.Env{G: x.g}
	for _, row := range x.rows {
		env.Row = row
		for i, fn := range fns {
			v := fn(env)
			switch v.Kind() {
			case value.KindNull:
				// DELETE null is a no-op.
			case value.KindVertex:
				id := v.ID()
				if x.deadV[id] {
					continue
				}
				inc := x.incidentEdges(id)
				if !c.Detach && len(inc) > 0 {
					return fmt.Errorf("write: cannot DELETE vertex %d: it still has %d relationships (use DETACH DELETE)", id, len(inc))
				}
				if err := x.mut.RemoveVertex(id); err != nil {
					return fmt.Errorf("write: %v", err)
				}
				x.deadV[id] = true
				x.st.NodesDeleted++
				for _, eid := range inc {
					if !x.deadE[eid] {
						x.deadE[eid] = true
						x.st.EdgesDeleted++
					}
				}
			case value.KindEdge:
				id := v.ID()
				if x.deadE[id] {
					continue
				}
				if err := x.mut.RemoveEdge(id); err != nil {
					return fmt.Errorf("write: %v", err)
				}
				x.deadE[id] = true
				x.st.EdgesDeleted++
			default:
				return fmt.Errorf("write: cannot DELETE %s (expression %s)", v, c.Exprs[i])
			}
		}
	}
	return nil
}
