package write

import (
	"fmt"

	"pgiv/internal/cypher"
	"pgiv/internal/expr"
	"pgiv/internal/graph"
	"pgiv/internal/value"
)

// nodeCons is one MERGE pattern node resolved for one binding row: either
// a bound vertex or a label/property constraint over candidate vertices.
type nodeCons struct {
	bound   bool
	boundID int64
	labels  []string
	props   map[string]value.Value
}

// relCons is one MERGE relationship constraint.
type relCons struct {
	typ   string
	dir   cypher.Direction
	props map[string]value.Value
}

// patMatch is one complete deterministic match of a MERGE pattern.
type patMatch struct {
	nodes []int64
	edges []int64
}

// applyMerge implements MERGE pattern [ON CREATE SET ...] [ON MATCH SET
// ...]: per binding row the fixed-length pattern is matched against the
// live graph (so a MERGE observes the creations of earlier rows — the
// openCypher behaviour that makes UNWIND + MERGE idempotent); every match
// becomes an output row and runs ON MATCH SET, and a matchless row
// creates the pattern's unbound elements and runs ON CREATE SET.
func (x *exec) applyMerge(c *cypher.MergeClause) error {
	sch := x.sch.Clone()
	cp, err := compileCreatePattern(c.Pattern, &sch, x.params, true)
	if err != nil {
		return err
	}
	onCreate, err := x.compileSetItems(c.OnCreate, sch)
	if err != nil {
		return err
	}
	onMatch, err := x.compileSetItems(c.OnMatch, sch)
	if err != nil {
		return err
	}
	env := &expr.Env{G: x.g}
	out := make([]value.Row, 0, len(x.rows))
	for _, row := range x.rows {
		nr := make(value.Row, len(sch))
		copy(nr, row)
		env.Row = nr
		nodes, rels, err := x.mergeConstraints(c.Pattern, cp, nr, env)
		if err != nil {
			return err
		}
		matches := x.matchPattern(nodes, rels)
		if len(matches) == 0 {
			if _, err := x.createPattern(cp, nr, env); err != nil {
				return err
			}
			for _, ci := range onCreate {
				if err := x.applySetItem(ci, nr, env); err != nil {
					return err
				}
			}
			out = append(out, nr)
			continue
		}
		for _, m := range matches {
			mr := make(value.Row, len(sch))
			copy(mr, row)
			for i, n := range cp.nodes {
				if n.bindIdx >= 0 {
					mr[n.bindIdx] = value.NewVertex(m.nodes[i])
				}
			}
			for j, r := range cp.rels {
				if r.bindIdx >= 0 {
					mr[r.bindIdx] = value.NewEdge(m.edges[j])
				}
			}
			env.Row = mr
			for _, ci := range onMatch {
				if err := x.applySetItem(ci, mr, env); err != nil {
					return err
				}
			}
			out = append(out, mr)
		}
	}
	x.sch, x.rows = sch, out
	return nil
}

// mergeConstraints resolves the pattern's node and relationship
// constraints for one binding row. Null constraint values are an error,
// as is a bound endpoint that is not a live vertex.
func (x *exec) mergeConstraints(pat *cypher.PathPattern, cp *cPattern, row value.Row, env *expr.Env) ([]nodeCons, []relCons, error) {
	nodes := make([]nodeCons, len(cp.nodes))
	for i, n := range cp.nodes {
		if n.useIdx >= 0 {
			v := row[n.useIdx]
			if v.Kind() != value.KindVertex {
				return nil, nil, fmt.Errorf("write: MERGE endpoint is %s, not a vertex (self-referential patterns are not supported)", v)
			}
			if _, ok := x.g.VertexByID(v.ID()); !ok {
				return nil, nil, fmt.Errorf("write: MERGE endpoint vertex %d no longer exists", v.ID())
			}
			nodes[i] = nodeCons{bound: true, boundID: v.ID()}
			continue
		}
		props, err := evalPropsStrict(env, n.props)
		if err != nil {
			return nil, nil, err
		}
		nodes[i] = nodeCons{labels: n.labels, props: props}
	}
	rels := make([]relCons, len(cp.rels))
	for j, r := range cp.rels {
		props, err := evalPropsStrict(env, r.props)
		if err != nil {
			return nil, nil, err
		}
		rels[j] = relCons{typ: r.typ, dir: pat.Rels[j].Dir, props: props}
	}
	return nodes, rels, nil
}

func evalPropsStrict(env *expr.Env, ps []propSet) (map[string]value.Value, error) {
	if len(ps) == 0 {
		return nil, nil
	}
	m := make(map[string]value.Value, len(ps))
	for _, p := range ps {
		v := p.fn(env)
		if v.IsNull() {
			return nil, fmt.Errorf("write: cannot MERGE using null property value for %q", p.key)
		}
		m[p.key] = v
	}
	return m, nil
}

func nodeSatisfies(v *graph.Vertex, c nodeCons) bool {
	for _, l := range c.labels {
		if !v.HasLabel(l) {
			return false
		}
	}
	for k, want := range c.props {
		if !value.Equal(v.Prop(k), want) {
			return false
		}
	}
	return true
}

func edgeSatisfies(e *graph.Edge, c relCons) bool {
	for k, want := range c.props {
		if !value.Equal(e.Prop(k), want) {
			return false
		}
	}
	return true
}

// matchPattern enumerates every match of the constraint chain in
// deterministic order (vertices and edges in ascending ID order), with
// openCypher relationship uniqueness (an edge binds at most one pattern
// relationship).
func (x *exec) matchPattern(nodes []nodeCons, rels []relCons) []patMatch {
	ids := make([]int64, len(nodes))
	eids := make([]int64, len(rels))
	used := make(map[int64]bool)
	var out []patMatch

	var step func(pos int)
	emit := func() {
		m := patMatch{nodes: append([]int64(nil), ids...)}
		if len(eids) > 0 {
			m.edges = append([]int64(nil), eids...)
		}
		out = append(out, m)
	}
	// tryEdge extends the match over rels[pos] with edge e toward the
	// vertex other, then recurses.
	tryEdge := func(pos int, e *graph.Edge, other int64) {
		if used[e.ID] || !edgeSatisfies(e, rels[pos]) {
			return
		}
		next := nodes[pos+1]
		if next.bound {
			if other != next.boundID {
				return
			}
		} else {
			v, ok := x.g.VertexByID(other)
			if !ok || !nodeSatisfies(v, next) {
				return
			}
		}
		eids[pos] = e.ID
		ids[pos+1] = other
		used[e.ID] = true
		step(pos + 1)
		used[e.ID] = false
	}
	step = func(pos int) {
		if pos == len(rels) {
			emit()
			return
		}
		from := ids[pos]
		rc := rels[pos]
		if rc.dir == cypher.DirOut || rc.dir == cypher.DirBoth {
			x.g.ForEachOutEdge(from, rc.typ, func(e *graph.Edge) bool {
				tryEdge(pos, e, e.Trg)
				return true
			})
		}
		if rc.dir == cypher.DirIn || rc.dir == cypher.DirBoth {
			x.g.ForEachInEdge(from, rc.typ, func(e *graph.Edge) bool {
				// A self-loop already appeared among the out-edges.
				if rc.dir == cypher.DirBoth && e.Src == e.Trg {
					return true
				}
				tryEdge(pos, e, e.Src)
				return true
			})
		}
	}

	first := nodes[0]
	if first.bound {
		ids[0] = first.boundID
		step(0)
		return out
	}
	primary := ""
	if len(first.labels) > 0 {
		primary = first.labels[0]
	}
	for _, v := range x.g.VerticesByLabel(primary) {
		if !nodeSatisfies(v, first) {
			continue
		}
		ids[0] = v.ID
		step(0)
	}
	return out
}
