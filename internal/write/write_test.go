package write

import (
	"strings"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/rete"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

func mustExec(t *testing.T, g *graph.Graph, src string) Stats {
	t.Helper()
	st, err := Exec(g, src, nil)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return st
}

func rowCount(t *testing.T, g *graph.Graph, query string) int {
	t.Helper()
	res, err := snapshot.Query(g, query, nil)
	if err != nil {
		t.Fatalf("Snapshot(%q): %v", query, err)
	}
	return len(res.Rows)
}

func TestCreateStandalone(t *testing.T) {
	g := graph.New()
	st := mustExec(t, g,
		"CREATE (p:Post {lang: 'en', score: 3}), (c:Comm {lang: 'en'}), (p)-[:REPLY {w: 1}]->(c)")
	if st.NodesCreated != 2 || st.EdgesCreated != 1 || st.MatchedRows != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if n := rowCount(t, g, "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p"); n != 1 {
		t.Fatalf("pattern count = %d", n)
	}
}

func TestCreateBoundEndpoints(t *testing.T) {
	g := graph.New()
	mustExec(t, g, "CREATE (:Person {name: 'Ann'}), (:Person {name: 'Bob'})")
	st := mustExec(t, g,
		"MATCH (a:Person {name: 'Ann'}), (b:Person {name: 'Bob'}) CREATE (a)-[:KNOWS {since: 2020}]->(b)")
	if st.MatchedRows != 1 || st.EdgesCreated != 1 || st.NodesCreated != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// One edge per binding row.
	st = mustExec(t, g, "MATCH (p:Person) CREATE (p)-[:SELF]->(q:Shadow)")
	if st.MatchedRows != 2 || st.NodesCreated != 2 || st.EdgesCreated != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Reused bound variables must be bare.
	if _, err := Exec(g, "MATCH (p:Person) CREATE (p:Extra)", nil); err == nil {
		t.Fatal("labelled reuse of a bound variable should fail")
	}
	// Created relationships need a direction and exactly one type.
	if _, err := Exec(g, "CREATE (a)-[:X]-(b)", nil); err == nil {
		t.Fatal("undirected CREATE relationship should fail")
	}
	if _, err := Exec(g, "CREATE (a)-[:X|Y]->(b)", nil); err == nil {
		t.Fatal("multi-type CREATE relationship should fail")
	}
}

func TestCreateChainedBindings(t *testing.T) {
	g := graph.New()
	// Later patterns and property expressions see earlier bindings.
	st := mustExec(t, g,
		"CREATE (a:N {x: 1}), (b:N {x: a.x + 1}), (a)-[:R]->(b)")
	if st.NodesCreated != 2 || st.EdgesCreated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	res, err := snapshot.Query(g, "MATCH (n:N) RETURN n.x ORDER BY n.x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSetAndRemove(t *testing.T) {
	g := graph.New()
	mustExec(t, g, "CREATE (:Person {name: 'Ann', age: 30, tmp: 1})")
	st := mustExec(t, g,
		"MATCH (p:Person {name: 'Ann'}) SET p.age = p.age + 1, p:Hot REMOVE p.tmp")
	if st.PropertiesSet != 2 || st.LabelsAdded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if n := rowCount(t, g, "MATCH (p:Hot) WHERE p.age = 31 AND p.tmp IS NULL RETURN p"); n != 1 {
		t.Fatalf("post-SET state wrong (count %d)", n)
	}
	st = mustExec(t, g, "MATCH (p:Hot) REMOVE p:Hot")
	if st.LabelsRemoved != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// SET a property to NULL removes it.
	mustExec(t, g, "MATCH (p:Person) SET p.age = NULL")
	if n := rowCount(t, g, "MATCH (p:Person) WHERE p.age IS NULL RETURN p"); n != 1 {
		t.Fatal("SET ... = NULL did not remove the property")
	}
	// SET on a null binding (failed OPTIONAL MATCH) is a no-op.
	st = mustExec(t, g, "OPTIONAL MATCH (q:Missing) SET q.x = 1")
	if st.PropertiesSet != 0 || st.MatchedRows != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeleteSemantics(t *testing.T) {
	g := graph.New()
	mustExec(t, g, "CREATE (a:A), (b:B), (a)-[:R]->(b)")
	// Plain DELETE of a vertex with incident edges fails and rolls back.
	if _, err := Exec(g, "MATCH (a:A) DELETE a", nil); err == nil ||
		!strings.Contains(err.Error(), "DETACH") {
		t.Fatalf("plain DELETE with relationships: err = %v", err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatal("failed DELETE must not mutate the graph")
	}
	// Deleting the edge first makes the plain DELETE legal, in one statement.
	st := mustExec(t, g, "MATCH (a:A)-[r:R]->(b:B) DELETE r DELETE a, b")
	if st.NodesDeleted != 2 || st.EdgesDeleted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("graph not empty after DELETE")
	}
	// DETACH DELETE removes incident edges; double deletion via multiple
	// rows is a no-op.
	mustExec(t, g, "CREATE (h:Hub), (x:Leaf), (y:Leaf), (x)-[:L]->(h), (y)-[:L]->(h)")
	st = mustExec(t, g, "MATCH (:Leaf)-[:L]->(h:Hub) DETACH DELETE h")
	if st.MatchedRows != 2 || st.NodesDeleted != 1 || st.EdgesDeleted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// DELETE null is a no-op.
	st = mustExec(t, g, "OPTIONAL MATCH (m:Missing) DELETE m")
	if st.NodesDeleted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMergeMatchOrCreate(t *testing.T) {
	g := graph.New()
	st := mustExec(t, g,
		"MERGE (p:Person {name: 'Ann'}) ON CREATE SET p.seen = 1 ON MATCH SET p.seen = 2")
	if st.NodesCreated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if n := rowCount(t, g, "MATCH (p:Person {seen: 1}) RETURN p"); n != 1 {
		t.Fatal("ON CREATE SET did not run")
	}
	st = mustExec(t, g,
		"MERGE (p:Person {name: 'Ann'}) ON CREATE SET p.seen = 1 ON MATCH SET p.seen = 2")
	if st.NodesCreated != 0 {
		t.Fatalf("second MERGE created a node: %+v", st)
	}
	if n := rowCount(t, g, "MATCH (p:Person {seen: 2}) RETURN p"); n != 1 {
		t.Fatal("ON MATCH SET did not run")
	}
	// MERGE observes earlier rows' creations: one node for three rows.
	st = mustExec(t, g, "UNWIND [1, 2, 3] AS i MERGE (q:Tag {name: 'go'})")
	if st.NodesCreated != 1 || st.MatchedRows != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Relationship MERGE with bound endpoints.
	mustExec(t, g, "CREATE (:City {name: 'Oslo'})")
	for i := 0; i < 2; i++ {
		mustExec(t, g,
			"MATCH (p:Person {name: 'Ann'}), (c:City {name: 'Oslo'}) MERGE (p)-[:LIVES_IN]->(c)")
	}
	if n := rowCount(t, g, "MATCH (:Person)-[r:LIVES_IN]->(:City) RETURN r"); n != 1 {
		t.Fatalf("LIVES_IN edges = %d, want 1 (MERGE must be idempotent)", n)
	}
	// Null constraint values are an error.
	if _, err := Exec(g, "MATCH (p:Person) MERGE (q:Tag {name: p.missing})", nil); err == nil {
		t.Fatal("MERGE with null property value should fail")
	}
}

func TestOneCommitPerStatement(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	v, err := engine.RegisterView("people", "MATCH (p:Person) RETURN p.name")
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]rete.Delta
	v.OnChange(func(ds []rete.Delta) {
		cp := append([]rete.Delta(nil), ds...)
		batches = append(batches, cp)
	})
	mustExec(t, g,
		"CREATE (:Person {name: 'Ann'}), (:Person {name: 'Bob'}), (:Person {name: 'Cid'})")
	if len(batches) != 1 {
		t.Fatalf("OnChange fired %d times, want 1", len(batches))
	}
	if len(batches[0]) != 3 {
		t.Fatalf("batch has %d deltas, want 3", len(batches[0]))
	}
	if got := len(v.Rows()); got != 3 {
		t.Fatalf("view has %d rows", got)
	}
	// A failing statement must deliver nothing.
	if _, err := Exec(g, "MATCH (p:Person) CREATE (p)-[:X]->(q) DELETE p", nil); err == nil {
		t.Fatal("expected failure")
	}
	if len(batches) != 1 || len(v.Rows()) != 3 {
		t.Fatal("failed statement leaked changes to the view")
	}
}

// TestWriteMatchesMutatorBatch drives the same logical update through the
// Cypher path and the Mutator path and checks the views agree — the
// acceptance-criterion equivalence in miniature.
func TestWriteMatchesMutatorBatch(t *testing.T) {
	query := "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c.lang"

	gc := graph.New()
	ec := ivm.NewEngine(gc)
	defer ec.Close()
	vc, err := ec.RegisterView("q", query)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, gc,
		"CREATE (p:Post {lang: 'en'}), (c:Comm {lang: 'en'}), (d:Comm {lang: 'de'}), (p)-[:REPLY]->(c), (p)-[:REPLY]->(d)")
	mustExec(t, gc, "MATCH (d:Comm {lang: 'de'}) SET d.lang = 'en'")

	gm := graph.New()
	em := ivm.NewEngine(gm)
	defer em.Close()
	vm, err := em.RegisterView("q", query)
	if err != nil {
		t.Fatal(err)
	}
	var dID graph.ID
	if err := gm.Batch(func(tx *graph.Tx) error {
		p := tx.AddVertex([]string{"Post"}, map[string]value.Value{"lang": value.NewString("en")})
		c := tx.AddVertex([]string{"Comm"}, map[string]value.Value{"lang": value.NewString("en")})
		dID = tx.AddVertex([]string{"Comm"}, map[string]value.Value{"lang": value.NewString("de")})
		if _, err := tx.AddEdge(p, c, "REPLY", nil); err != nil {
			return err
		}
		_, err := tx.AddEdge(p, dID, "REPLY", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := gm.SetVertexProperty(dID, "lang", value.NewString("en")); err != nil {
		t.Fatal(err)
	}

	cRows, mRows := vc.Rows(), vm.Rows()
	if len(cRows) != len(mRows) || len(cRows) != 2 {
		t.Fatalf("row counts differ: cypher %d, mutator %d", len(cRows), len(mRows))
	}
	ck := make([]string, len(cRows))
	mk := make([]string, len(mRows))
	for i := range cRows {
		ck[i] = value.RowKey(cRows[i])
		mk[i] = value.RowKey(mRows[i])
	}
	for i := range ck {
		if ck[i] != mk[i] {
			t.Fatalf("row %d differs: %v vs %v", i, cRows[i], mRows[i])
		}
	}
}

func TestExecRejectsReads(t *testing.T) {
	g := graph.New()
	if _, err := Exec(g, "MATCH (n) RETURN n", nil); err == nil {
		t.Fatal("Exec accepted a read query")
	}
}

func TestWithPrefixAndParams(t *testing.T) {
	g := graph.New()
	mustExec(t, g, "CREATE (:P {s: 1}), (:P {s: 2}), (:P {s: 3})")
	// WITH horizon narrows the binding table before the write.
	st := mustExec(t, g,
		"MATCH (p:P) WITH p ORDER BY p.s DESC LIMIT 1 SET p.top = TRUE")
	if st.MatchedRows != 1 || st.PropertiesSet != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if n := rowCount(t, g, "MATCH (p:P {s: 3, top: TRUE}) RETURN p"); n != 1 {
		t.Fatal("wrong row updated")
	}
	st, err := Exec(g, "MATCH (p:P) WHERE p.s = $s DELETE p",
		map[string]value.Value{"s": value.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesDeleted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRowsSorted(t *testing.T) {
	// The view transcript ordering helper used across the harness: the
	// executor itself must be deterministic for identical statements.
	g1, g2 := graph.New(), graph.New()
	for _, g := range []*graph.Graph{g1, g2} {
		mustExec(t, g, "CREATE (:V {k: 2}), (:V {k: 1})")
		mustExec(t, g, "MATCH (v:V) MERGE (w:W {k: v.k})")
	}
	a, _ := snapshot.Query(g1, "MATCH (w:W) RETURN w.k", nil)
	b, _ := snapshot.Query(g2, "MATCH (w:W) RETURN w.k", nil)
	as, bs := a.Sorted(), b.Sorted()
	if len(as) != 2 || len(bs) != 2 {
		t.Fatalf("W counts: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if value.RowKey(as[i]) != value.RowKey(bs[i]) {
			t.Fatal("non-deterministic MERGE result")
		}
	}
}
