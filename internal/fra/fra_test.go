package fra

import (
	"strings"
	"testing"

	"pgiv/internal/nra"
)

// TestPaperPushdown reproduces the paper's Section 4 step (3) example:
// after flattening, the base operators carry the inferred minimal
// schemas ©(p:Post{lang→pL}) and the transitive ⇑(c:Comm{lang→cL}).
func TestPaperPushdown(t *testing.T) {
	plan, err := CompileString("MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
	if err != nil {
		t.Fatal(err)
	}
	got := nra.Format(plan.Root)
	for _, frag := range []string{
		"GetVertices (p:Post{lang→p.lang})",
		"TransitiveJoin (p)-[:REPLY*1..]->(c:Comm{lang→c.lang})",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("plan missing %q:\n%s", frag, got)
		}
	}
	if strings.Contains(got, "Unnest") {
		t.Errorf("unnest survived flattening:\n%s", got)
	}
	if plan.OutSchema.String() != "(p, t)" {
		t.Errorf("out schema = %s", plan.OutSchema)
	}
}

func TestGetEdgesPushdown(t *testing.T) {
	plan, err := CompileString("MATCH (a:A)-[e:X]->(b:B) WHERE a.p = b.q AND e.w > 0 RETURN a, e.w")
	if err != nil {
		t.Fatal(err)
	}
	got := nra.Format(plan.Root)
	// a.p is pushed to the get-vertices of a; e.w and b.q to get-edges.
	for _, frag := range []string{
		"GetVertices (a:A{p→a.p})",
		"e:X{w→e.w}",
		"b:B{q→b.q}",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("plan missing %q:\n%s", frag, got)
		}
	}
}

func TestMinimalSchema(t *testing.T) {
	// Only the accessed property is pushed; others are not materialised.
	plan, err := CompileString("MATCH (a:A) WHERE a.p = 1 RETURN a")
	if err != nil {
		t.Fatal(err)
	}
	gv := findGetVertices(plan.Root)
	if gv == nil {
		t.Fatal("no get-vertices")
	}
	if len(gv.Props) != 1 || gv.Props[0].Key != "p" {
		t.Errorf("props = %+v (want exactly p)", gv.Props)
	}
}

func TestSharedVariableAcrossClauses(t *testing.T) {
	// b is bound in both MATCH clauses; the property access must resolve
	// in both subtrees without breaking the join.
	plan, err := CompileString("MATCH (a:A)-[:X]->(b) MATCH (b)-[:Y]->(c) WHERE b.p = 1 RETURN a, c")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OutSchema.Has("a") || !plan.OutSchema.Has("c") {
		t.Errorf("schema = %s", plan.OutSchema)
	}
}

func TestDedupPropSpecs(t *testing.T) {
	// The same property accessed twice pushes down once.
	plan, err := CompileString("MATCH (a:A) WHERE a.p > 1 AND a.p < 9 RETURN a.p")
	if err != nil {
		t.Fatal(err)
	}
	gv := findGetVertices(plan.Root)
	if len(gv.Props) != 1 {
		t.Errorf("props = %+v", gv.Props)
	}
}

func findGetVertices(op nra.Op) *nra.GetVertices {
	if gv, ok := op.(*nra.GetVertices); ok {
		return gv
	}
	for _, c := range op.Children() {
		if gv := findGetVertices(c); gv != nil {
			return gv
		}
	}
	return nil
}
