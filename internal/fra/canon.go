package fra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pgiv/internal/cypher"
	"pgiv/internal/value"
)

// CanonExpr renders a canonical, parameter-substituted form of an
// expression: two expressions with equal renderings evaluate to the same
// value on every row (over the same schema). It is the equality the
// query-rewrite planner uses to decide conjunct implication and
// projection-item cover, so it must never equate two expressions that
// can differ — false negatives only cost a missed rewrite, false
// positives would be wrong answers.
//
// Literals are kind-tagged (Int(2) vs Float(2) behave differently under
// division); parameters are substituted with the kinded rendering of
// their bound value, so `p.score > $t` with {t: 3} matches a memoized
// `p.score > 3`. Pattern predicates are rendered per-instance-unique:
// they reference pattern structure outside the expression tree, so two
// are never considered equal.
func CanonExpr(e cypher.Expr, params map[string]value.Value) string {
	var sb strings.Builder
	canonExpr(&sb, e, params)
	return sb.String()
}

func canonExpr(sb *strings.Builder, e cypher.Expr, params map[string]value.Value) {
	switch x := e.(type) {
	case *cypher.Literal:
		sb.WriteString("L:")
		appendKinded(sb, x.Val)
	case *cypher.Variable:
		sb.WriteString("V:")
		sb.WriteString(strconv.Quote(x.Name))
	case *cypher.Parameter:
		if v, ok := params[x.Name]; ok {
			sb.WriteString("L:")
			appendKinded(sb, v)
		} else {
			// Unbound parameter: compile would fail anyway; render it
			// distinctly so it never matches a substituted literal.
			sb.WriteString("P:")
			sb.WriteString(strconv.Quote(x.Name))
		}
	case *cypher.PropAccess:
		sb.WriteString("(.")
		sb.WriteString(strconv.Quote(x.Key))
		sb.WriteByte(' ')
		canonExpr(sb, x.Subject, params)
		sb.WriteByte(')')
	case *cypher.Binary:
		fmt.Fprintf(sb, "(b%d ", x.Op)
		canonExpr(sb, x.L, params)
		sb.WriteByte(' ')
		canonExpr(sb, x.R, params)
		sb.WriteByte(')')
	case *cypher.Unary:
		fmt.Fprintf(sb, "(u%d ", x.Op)
		canonExpr(sb, x.X, params)
		sb.WriteByte(')')
	case *cypher.IsNull:
		if x.Negate {
			sb.WriteString("(notnull ")
		} else {
			sb.WriteString("(isnull ")
		}
		canonExpr(sb, x.X, params)
		sb.WriteByte(')')
	case *cypher.FuncCall:
		sb.WriteString("(f:")
		sb.WriteString(strconv.Quote(x.Name))
		if x.Distinct {
			sb.WriteString("!d")
		}
		for _, a := range x.Args {
			sb.WriteByte(' ')
			canonExpr(sb, a, params)
		}
		sb.WriteByte(')')
	case *cypher.CountStar:
		sb.WriteString("count(*)")
	case *cypher.ListLit:
		sb.WriteString("(list")
		for _, el := range x.Elems {
			sb.WriteByte(' ')
			canonExpr(sb, el, params)
		}
		sb.WriteByte(')')
	case *cypher.MapLit:
		keys := make([]string, 0, len(x.Entries))
		for k := range x.Entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("(map")
		for _, k := range keys {
			sb.WriteByte(' ')
			sb.WriteString(strconv.Quote(k))
			sb.WriteByte('=')
			canonExpr(sb, x.Entries[k], params)
		}
		sb.WriteByte(')')
	default:
		// PatternPredicate and anything unknown: reference structure the
		// rendering cannot capture — unique per instance, never equal.
		fmt.Fprintf(sb, "%T@%p", e, e)
	}
}
