package fra_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pgiv/internal/cypher"
	"pgiv/internal/fra"
	"pgiv/internal/gra"
	"pgiv/internal/nra"
)

var update = flag.Bool("update", false, "rewrite golden plan files")

// goldenQueries is the plan-printing battery: one template per operator
// family of the compilation pipeline, including the PR 4 OPTIONAL MATCH
// (left outer join) and WITH (projection horizon) clauses. Each query's
// GRA → NRA → FRA plan trees are snapshotted into testdata/plans.golden
// so a compilation regression shows up as a readable diff; regenerate
// with `go test ./internal/fra -run TestGoldenPlans -update`.
var goldenQueries = []string{
	"MATCH (p:Post) RETURN p",
	"MATCH (p:Post) WHERE p.score > 5 RETURN p, p.score",
	"MATCH (a:Person)-[e:KNOWS]->(b:Person) RETURN a, e.weight, b",
	"MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, b",
	"MATCH (p:Post)<-[:LIKES]-(u:Person) RETURN p, u",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
	"MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN a, c",
	"MATCH (a:Person), (p:Post) WHERE a.score = p.score RETURN a, p",
	"MATCH (a:Person) RETURN DISTINCT a.city",
	"MATCH (p:Post) RETURN p.lang, count(*)",
	"MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
	"MATCH (a:Person) WHERE (a)-[:LIKES]->(:Post) RETURN a",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN p, n",
	"UNWIND [1, 2, 3] AS x RETURN x, x * 2",
	"MATCH (a:Person {city: 'berlin'}) RETURN a ORDER BY a.score DESC SKIP 1 LIMIT 3",
	// OPTIONAL MATCH: left outer joins.
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[e:LIKES]->(p:Post) WHERE p.score > 3 RETURN a, p, p.score",
	"MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) OPTIONAL MATCH (c)-[:REPLY]->(d:Comm) RETURN p, c, d",
	"MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY*]->(c:Comm) RETURN p, c",
	"OPTIONAL MATCH (h:Person:Hot) RETURN h",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) RETURN a, count(b)",
	// WITH: projection horizons, carried properties, HAVING.
	"MATCH (a:Person) WITH a WHERE a.score > 2 RETURN a, a.score",
	"MATCH (a:Person)-[:KNOWS]->(b) WITH a, count(b) AS friends WHERE friends >= 2 RETURN a, friends",
	"MATCH (p:Post) WITH p.lang AS l, count(*) AS n RETURN l, n",
	"MATCH (a:Person) WITH DISTINCT a.city AS city RETURN city",
	"MATCH (a:Person) WITH a AS x WHERE x.score < 8 RETURN x.score, x",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) WITH a, count(b) AS k RETURN a, k",
	"MATCH (a:Person) WITH a WHERE (a)-[:LIKES]->(:Post) RETURN a.name",
	// ORDER BY/SKIP/LIMIT: the combined Top operator (PR 5).
	"MATCH (a:Person) RETURN a.name, a.score ORDER BY a.score DESC, a.name LIMIT 10",
	"MATCH (a:Person) RETURN a, a.score ORDER BY a.score DESC SKIP 2 LIMIT 4",
	"MATCH (a:Person) RETURN a.name SKIP 3",
	"MATCH (p:Post) RETURN p.lang, count(*) AS n ORDER BY n DESC LIMIT 2",
	"MATCH (a:Person) WITH a ORDER BY a.score DESC LIMIT 5 RETURN a.name",
	"MATCH (p:Post) WITH p.lang AS l, count(*) AS n ORDER BY n DESC, l LIMIT 3 RETURN l, n",
	// Shortest-path views: weighted, predicated, undirected, zero-hop
	// (PR 10). cost(t) resolves to the operator's cost column; the dst
	// property pushdown lands in the SP operator's prop specs.
	"MATCH t = shortestPath((a:Person)-[:KNOWS*1..3 {weight}]->(b:Person)) RETURN a, b, cost(t)",
	"MATCH t = shortestPath((a:Person)-[:KNOWS*1..2 {weight, cat: 2}]-(b:Person)) WHERE b.score > 3 RETURN a, b, b.score, cost(t), length(t)",
	"MATCH shortestPath((a:Person)-[:KNOWS*0..2]->(b:Person)) RETURN a, b",
}

// renderPlans compiles q through the three stages and renders their plan
// trees, mirroring ivm.RegisterView (GRA and NRA are rendered before
// Flatten rewrites the NRA tree in place).
func renderPlans(q string) (string, error) {
	ast, err := cypher.Parse(q)
	if err != nil {
		return "", fmt.Errorf("parse: %w", err)
	}
	graPlan, err := gra.Compile(ast)
	if err != nil {
		return "", fmt.Errorf("gra: %w", err)
	}
	nraPlan, err := nra.Transform(graPlan)
	if err != nil {
		return "", fmt.Errorf("nra: %w", err)
	}
	graText := gra.Format(graPlan)
	nraText := nra.Format(nraPlan)
	plan, err := fra.Flatten(nraPlan)
	if err != nil {
		return "", fmt.Errorf("fra: %w", err)
	}
	var sb strings.Builder
	sb.WriteString("== GRA ==\n")
	sb.WriteString(graText)
	sb.WriteString("== NRA ==\n")
	sb.WriteString(nraText)
	sb.WriteString("== FRA ==\n")
	sb.WriteString(nra.Format(plan.Root))
	sb.WriteString("== schema ==\n")
	sb.WriteString(plan.OutSchema.String())
	sb.WriteString("\n")
	return sb.String(), nil
}

func TestGoldenPlans(t *testing.T) {
	var sb strings.Builder
	for _, q := range goldenQueries {
		sb.WriteString("### ")
		sb.WriteString(q)
		sb.WriteString("\n")
		text, err := renderPlans(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		sb.WriteString(text)
		sb.WriteString("\n")
	}
	got := sb.String()

	path := filepath.Join("testdata", "plans.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first diverging query section, not a 1000-line dump.
	gotSecs := strings.Split(got, "### ")
	wantSecs := strings.Split(string(want), "### ")
	for i := 1; i < len(gotSecs) && i < len(wantSecs); i++ {
		if gotSecs[i] != wantSecs[i] {
			t.Fatalf("plan changed (run with -update if intended):\n--- got ---\n### %s\n--- want ---\n### %s", gotSecs[i], wantSecs[i])
		}
	}
	t.Fatalf("golden file covers %d queries, test renders %d (run with -update if intended)", len(wantSecs)-1, len(gotSecs)-1)
}
