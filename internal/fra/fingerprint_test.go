package fra

import (
	"testing"

	"pgiv/internal/nra"
	"pgiv/internal/value"
)

func mustPlan(t *testing.T, q string) *Plan {
	t.Helper()
	p, err := CompileString(q)
	if err != nil {
		t.Fatalf("compile %q: %v", q, err)
	}
	return p
}

// TestFingerprintStability: compiling the same query twice yields the
// same fingerprint; distinct queries yield distinct fingerprints.
func TestFingerprintStability(t *testing.T) {
	queries := []string{
		"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
		"MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.score > 5 RETURN a, b",
		"MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.score > 6 RETURN a, b",
		"MATCH (a:Person)-[:LIKES]->(b:Post) RETURN a, b",
		"MATCH (u:Person)-[:LIKES]->(p:Post) RETURN p, count(u)",
		"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
		"MATCH t = (p:Post)-[:REPLY*3..]->(c:Comm) RETURN p, c, length(t)",
		"MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
		"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b",
		"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) WHERE b.score > 5 RETURN a, b",
		"MATCH (a:Person)-[:KNOWS]->(b) WITH a, count(b) AS k WHERE k >= 2 RETURN a, k",
	}
	seen := make(map[string]string)
	for _, q := range queries {
		fp1 := Fingerprint(mustPlan(t, q).Root, nil)
		fp2 := Fingerprint(mustPlan(t, q).Root, nil)
		if fp1 != fp2 {
			t.Errorf("fingerprint of %q not stable:\n%s\n%s", q, fp1, fp2)
		}
		if prev, dup := seen[fp1]; dup {
			t.Errorf("queries %q and %q share fingerprint %s", prev, q, fp1)
		}
		seen[fp1] = q
	}
}

// TestFingerprintOuterJoinAsymmetry: the left outer join is not
// commutative — swapping its sides must change the fingerprint, and an
// outer join must never alias the natural join of the same subtrees
// (they compute different relations under the same update stream, so
// the Rete registry must not share one node between them).
func TestFingerprintOuterJoinAsymmetry(t *testing.T) {
	outer := mustPlan(t, "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b")
	inner := mustPlan(t, "MATCH (a:Person) MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b")
	if Fingerprint(outer.Root, nil) == Fingerprint(inner.Root, nil) {
		t.Error("outer and inner join plans must not share a fingerprint")
	}

	// Swapped operands are a different relation: null padding applies to
	// the right side only, so LeftOuterJoin{X,Y} must never fingerprint
	// equal to LeftOuterJoin{Y,X} — even if a commutative operator like
	// Join ever canonicalises its child order.
	x := &nra.GetVertices{Var: "v", Labels: []string{"X"}}
	y := &nra.GetVertices{Var: "v", Labels: []string{"Y"}}
	xy := Fingerprint(&nra.LeftOuterJoin{L: x, R: y}, nil)
	yx := Fingerprint(&nra.LeftOuterJoin{L: y, R: x}, nil)
	if xy == yx {
		t.Error("swapping outer-join operands must change the fingerprint")
	}

	// Same structural subtree below two different projections: the
	// outer-join child fingerprints must agree so the registry shares
	// the stateful node.
	p1 := mustPlan(t, "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b")
	p2 := mustPlan(t, "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN b, a")
	c1 := p1.Root.Children()[0]
	c2 := p2.Root.Children()[0]
	if Fingerprint(c1, nil) != Fingerprint(c2, nil) {
		t.Error("identical outer-join subtrees below different projections must share a fingerprint")
	}
}

// TestFingerprintParams: parameters are substituted at compile time, so
// plans referencing them must embed the parameter values; parameter maps
// irrelevant to the expression text must not block sharing.
func TestFingerprintParams(t *testing.T) {
	const q = "MATCH (a:P) WHERE a.score > $min RETURN a"
	p1 := Fingerprint(mustPlan(t, q).Root, map[string]value.Value{"min": value.NewInt(5)})
	p2 := Fingerprint(mustPlan(t, q).Root, map[string]value.Value{"min": value.NewInt(9)})
	p3 := Fingerprint(mustPlan(t, q).Root, map[string]value.Value{"min": value.NewInt(5)})
	if p1 == p2 {
		t.Error("different parameter values must yield different fingerprints")
	}
	if p1 != p3 {
		t.Error("same parameter values must yield equal fingerprints")
	}

	const plain = "MATCH (a:P) WHERE a.score > 5 RETURN a"
	f1 := Fingerprint(mustPlan(t, plain).Root, nil)
	f2 := Fingerprint(mustPlan(t, plain).Root, map[string]value.Value{"unused": value.NewInt(1)})
	if f1 != f2 {
		t.Error("parameters not referenced by the plan must not affect the fingerprint")
	}
}

// TestFingerprintNumericKinds: Value.String renders Int(2) and Float(2)
// identically, so the fingerprint must disambiguate value kinds both in
// parameter maps and in literal expressions (integer vs float division
// behave differently).
func TestFingerprintNumericKinds(t *testing.T) {
	const q = "MATCH (n:P) WHERE n.a > $x RETURN n"
	pi := Fingerprint(mustPlan(t, q).Root, map[string]value.Value{"x": value.NewInt(2)})
	pf := Fingerprint(mustPlan(t, q).Root, map[string]value.Value{"x": value.NewFloat(2)})
	if pi == pf {
		t.Error("Int(2) and Float(2) parameters must yield different fingerprints")
	}
	li := Fingerprint(mustPlan(t, "MATCH (n:P) RETURN n.a / 2 AS y").Root, nil)
	lf := Fingerprint(mustPlan(t, "MATCH (n:P) RETURN n.a / 2.0 AS y").Root, nil)
	if li == lf {
		t.Error("integer and float literals must yield different fingerprints")
	}
}

// TestFingerprintVariableNames: attribute names determine downstream
// schemas and must be part of the fingerprint.
func TestFingerprintVariableNames(t *testing.T) {
	a := Fingerprint(mustPlan(t, "MATCH (x:Person) RETURN x").Root, nil)
	b := Fingerprint(mustPlan(t, "MATCH (y:Person) RETURN y").Root, nil)
	if a == b {
		t.Error("different variable names must yield different fingerprints")
	}
}
