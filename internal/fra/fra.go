// Package fra implements the flat relational algebra (FRA) stage of the
// paper (Section 4 step 3), following the flattening approaches of [7, 25]
// adapted to schema-free property graphs: because the data has no a-priori
// schema, the minimal schema of every operator is inferred from the query
// and the unnest (µ) operators of the NRA plan are pushed down into the
// base operators (get-vertices, get-edges, transitive join), yielding
// operators like ©(p:Post{lang→p.lang}).
//
// The result is a flat plan: every attribute of every intermediate
// relation is an atomic value, a vertex/edge reference, or an (atomic)
// path — exactly the fragment the paper proves incrementally maintainable.
package fra

import (
	"fmt"

	"pgiv/internal/cypher"
	"pgiv/internal/gra"
	"pgiv/internal/nra"
	"pgiv/internal/schema"
)

// Plan is a flattened plan ready for evaluation (snapshot engine) or
// incremental maintenance (Rete network). Root contains no nra.Unnest
// operators; all property requirements live in base-operator PropSpecs.
type Plan struct {
	Root      nra.Op
	OutSchema schema.Schema
}

// Compile runs the full pipeline of the paper on a parsed query:
// AST → GRA → NRA → FRA.
func Compile(q *cypher.Query) (*Plan, error) {
	g, err := gra.Compile(q)
	if err != nil {
		return nil, err
	}
	n, err := nra.Transform(g)
	if err != nil {
		return nil, err
	}
	return Flatten(n)
}

// CompileString parses and compiles a query text.
func CompileString(query string) (*Plan, error) {
	q, err := cypher.Parse(query)
	if err != nil {
		return nil, err
	}
	return Compile(q)
}

// Flatten eliminates every unnest operator by pushing it into the base
// operator that binds the unnested variable, and returns the flat plan.
func Flatten(root nra.Op) (*Plan, error) {
	flat, err := flatten(root)
	if err != nil {
		return nil, err
	}
	if u := findUnnest(flat); u != nil {
		return nil, fmt.Errorf("fra: internal error: unnest %s survived pushdown", u.Head())
	}
	return &Plan{Root: flat, OutSchema: flat.Schema()}, nil
}

func flatten(op nra.Op) (nra.Op, error) {
	switch o := op.(type) {
	case *nra.Unnest:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		pushed, err := push(in, o.Var, o.Key, o.Attr)
		if err != nil {
			return nil, err
		}
		return pushed, nil

	case *nra.TransitiveJoin:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.ShortestPath:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Join:
		l, err := flatten(o.L)
		if err != nil {
			return nil, err
		}
		r, err := flatten(o.R)
		if err != nil {
			return nil, err
		}
		o.L, o.R = l, r
		return o, nil

	case *nra.LeftOuterJoin:
		l, err := flatten(o.L)
		if err != nil {
			return nil, err
		}
		r, err := flatten(o.R)
		if err != nil {
			return nil, err
		}
		o.L, o.R = l, r
		return o, nil

	case *nra.SemiJoin:
		l, err := flatten(o.L)
		if err != nil {
			return nil, err
		}
		r, err := flatten(o.R)
		if err != nil {
			return nil, err
		}
		o.L, o.R = l, r
		return o, nil

	case *nra.AntiJoin:
		l, err := flatten(o.L)
		if err != nil {
			return nil, err
		}
		r, err := flatten(o.R)
		if err != nil {
			return nil, err
		}
		o.L, o.R = l, r
		return o, nil

	case *nra.Select:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Project:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Dedup:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.AllDifferent:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.PathBuild:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Aggregate:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Unwind:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Top:
		in, err := flatten(o.Input)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Unit, *nra.GetVertices, *nra.GetEdges:
		return op, nil
	}
	return nil, fmt.Errorf("fra: unsupported NRA operator %T", op)
}

// push descends to the operator binding varName and records the property
// requirement there.
func push(op nra.Op, varName, key, attr string) (nra.Op, error) {
	switch o := op.(type) {
	case *nra.GetVertices:
		if o.Var == varName {
			o.Props = addProp(o.Props, key, attr)
			return o, nil
		}

	case *nra.GetEdges:
		switch varName {
		case o.AVar:
			o.AProps = addProp(o.AProps, key, attr)
			return o, nil
		case o.EVar:
			o.EProps = addProp(o.EProps, key, attr)
			return o, nil
		case o.BVar:
			o.BProps = addProp(o.BProps, key, attr)
			return o, nil
		}

	case *nra.TransitiveJoin:
		if o.DstAttr == varName {
			o.DstProps = addProp(o.DstProps, key, attr)
			return o, nil
		}
		in, err := push(o.Input, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.ShortestPath:
		if o.DstAttr == varName {
			o.DstProps = addProp(o.DstProps, key, attr)
			return o, nil
		}
		in, err := push(o.Input, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Join:
		if o.L.Schema().Has(varName) {
			l, err := push(o.L, varName, key, attr)
			if err != nil {
				return nil, err
			}
			o.L = l
			return o, nil
		}
		r, err := push(o.R, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.R = r
		return o, nil

	case *nra.LeftOuterJoin:
		// Push towards the side binding the variable; a right-side
		// property attribute is null-padded with the rest of the right
		// schema when a left row has no match.
		if o.L.Schema().Has(varName) {
			l, err := push(o.L, varName, key, attr)
			if err != nil {
				return nil, err
			}
			o.L = l
			return o, nil
		}
		r, err := push(o.R, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.R = r
		return o, nil

	case *nra.SemiJoin:
		// The output schema is the left schema, so the attribute must be
		// available on the left.
		l, err := push(o.L, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.L = l
		return o, nil

	case *nra.AntiJoin:
		l, err := push(o.L, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.L = l
		return o, nil

	case *nra.Select:
		in, err := push(o.Input, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Dedup:
		in, err := push(o.Input, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.AllDifferent:
		in, err := push(o.Input, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.PathBuild:
		in, err := push(o.Input, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil

	case *nra.Unnest:
		in, err := push(o.Input, varName, key, attr)
		if err != nil {
			return nil, err
		}
		o.Input = in
		return o, nil
	}
	return nil, fmt.Errorf("fra: cannot push property %s.%s below %T", varName, key, op)
}

func addProp(ps []nra.PropSpec, key, attr string) []nra.PropSpec {
	for _, p := range ps {
		if p.Attr == attr {
			return ps
		}
	}
	return append(ps, nra.PropSpec{Key: key, Attr: attr})
}

func findUnnest(op nra.Op) *nra.Unnest {
	if u, ok := op.(*nra.Unnest); ok {
		return u
	}
	for _, c := range op.Children() {
		if u := findUnnest(c); u != nil {
			return u
		}
	}
	return nil
}
