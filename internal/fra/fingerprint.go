package fra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pgiv/internal/cypher"
	"pgiv/internal/nra"
	"pgiv/internal/value"
)

// Fingerprint renders a canonical structural fingerprint of a flattened
// plan subtree: two subtrees with equal fingerprints compute the same
// relation under the same update stream, so the Rete compiler can attach
// both to one shared stateful node chain (subplan sharing, the beta-level
// extension of the paper's Rete node-sharing optimisation).
//
// The fingerprint covers the operator kind, every behavioural parameter
// (labels, types, direction, hop bounds, pushed-down property specs,
// compiled-expression source text, aggregation specs, path-construction
// items) and the fingerprints of the children. Attribute names are
// included deliberately: they determine the inferred schema, and with it
// join keys, column positions and output order downstream. Identifiers
// are individually quoted, so a backtick-quoted label or attribute
// containing a delimiter character cannot alias a structurally different
// plan.
//
// Query parameters are substituted into expressions at compile time, so
// any operator whose expression text references a parameter ($name) also
// embeds the canonical rendering of the whole parameter map. The check is
// a textual scan for '$' — a string literal containing '$' triggers it
// spuriously, which only costs a missed sharing opportunity, never a
// wrong one.
func Fingerprint(op nra.Op, params map[string]value.Value) string {
	return NewFingerprinter(params).Fingerprint(op)
}

// Fingerprinter memoizes subtree fingerprints per operator instance, so
// fingerprinting every subtree of one plan (as the Rete compiler does
// during registration) renders each node exactly once instead of
// re-walking its subtree per ancestor.
type Fingerprinter struct {
	params string
	cache  map[nra.Op]string
}

// NewFingerprinter builds a fingerprinter for one plan compilation with
// the given query parameters.
func NewFingerprinter(params map[string]value.Value) *Fingerprinter {
	return &Fingerprinter{params: canonicalParams(params), cache: make(map[nra.Op]string)}
}

// Fingerprint returns the canonical fingerprint of op, memoized by
// operator instance.
func (f *Fingerprinter) Fingerprint(op nra.Op) string {
	if s, ok := f.cache[op]; ok {
		return s
	}
	var sb strings.Builder
	f.op(&sb, op)
	s := sb.String()
	f.cache[op] = s
	return s
}

// InputKey returns the variable-independent registry key of an input
// (alpha) operator, or ok == false for any other operator. Input nodes
// carry rows of positional values — pattern-variable names never reach
// them — so the Rete registry shares one node across views that merely
// rename variables; the names still flow into the fingerprints of every
// operator above, where they genuinely determine schemas and join keys.
// Kept beside the Fingerprinter cases so the two renderings of the same
// operators evolve together.
func InputKey(op nra.Op) (string, bool) {
	var sb strings.Builder
	switch o := op.(type) {
	case *nra.Unit:
		return "unit", true
	case *nra.GetVertices:
		sb.WriteString("gv{")
		strs(&sb, o.Labels)
		sb.WriteByte('|')
		strs(&sb, specKeys(o.Props))
		sb.WriteByte('}')
		return sb.String(), true
	case *nra.GetEdges:
		sb.WriteString("ge{")
		strs(&sb, o.Types)
		sb.WriteByte('|')
		strs(&sb, o.ALabels)
		sb.WriteByte('|')
		strs(&sb, o.BLabels)
		sb.WriteByte('|')
		if o.Undirected {
			sb.WriteByte('u')
		} else {
			sb.WriteByte('d')
		}
		sb.WriteByte('|')
		strs(&sb, specKeys(o.AProps))
		sb.WriteByte('|')
		strs(&sb, specKeys(o.EProps))
		sb.WriteByte('|')
		strs(&sb, specKeys(o.BProps))
		sb.WriteByte('}')
		return sb.String(), true
	}
	return "", false
}

// specKeys projects the property keys of a PropSpec list (the part of a
// pushed-down property that determines the input node's row content; the
// Attr names are variable-derived and belong to the schema above).
func specKeys(ps []nra.PropSpec) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Key
	}
	return out
}

// canonicalParams renders a parameter map deterministically.
func canonicalParams(params map[string]value.Value) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Quote(k))
		sb.WriteByte('=')
		appendKinded(&sb, params[k])
	}
	return sb.String()
}

// appendKinded renders a value with explicit kind tags at every level.
// Neither Value.String (Int(2) and Float(2) both print "2") nor
// value.Key (which canonicalises integral floats to the int encoding,
// matching openCypher's 2 = 2.0) distinguishes numeric kinds — but the
// evaluator does (integer vs float division), so the fingerprint must.
func appendKinded(sb *strings.Builder, v value.Value) {
	fmt.Fprintf(sb, "k%d:", v.Kind())
	switch v.Kind() {
	case value.KindList:
		sb.WriteByte('[')
		for i, el := range v.List() {
			if i > 0 {
				sb.WriteByte(',')
			}
			appendKinded(sb, el)
		}
		sb.WriteByte(']')
	case value.KindMap:
		m := v.Map()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Quote(k))
			sb.WriteByte(':')
			appendKinded(sb, m[k])
		}
		sb.WriteByte('}')
	default:
		sb.WriteString(strconv.Quote(v.String()))
	}
}

// expr renders an expression and, if its source references a query
// parameter, the canonical parameter map (substitution happens at
// compile time, so the same text with different parameters compiles to
// different behaviour). The source text alone is ambiguous about value
// kinds — Value.String() renders Int(2) and Float(2) both as "2" — so
// every literal's kind-tagged rendering is appended in deterministic
// walk order.
func (f *Fingerprinter) expr(sb *strings.Builder, e cypher.Expr) {
	s := e.String()
	sb.WriteString(strconv.Quote(s))
	cypher.WalkExpr(e, func(x cypher.Expr) {
		if lit, ok := x.(*cypher.Literal); ok {
			sb.WriteByte('#')
			appendKinded(sb, lit.Val)
		}
	})
	if strings.ContainsRune(s, '$') && f.params != "" {
		sb.WriteString("⟨")
		sb.WriteString(f.params)
		sb.WriteString("⟩")
	}
}

// ident writes one identifier, quoted so delimiter characters inside
// backtick-quoted names cannot alias list or field boundaries.
func ident(sb *strings.Builder, s string) {
	sb.WriteString(strconv.Quote(s))
}

func strs(sb *strings.Builder, parts []string) {
	for i, p := range parts {
		if i > 0 {
			sb.WriteByte(',')
		}
		ident(sb, p)
	}
}

func props(sb *strings.Builder, ps []nra.PropSpec) {
	for i, p := range ps {
		if i > 0 {
			sb.WriteByte(',')
		}
		ident(sb, p.Key)
		sb.WriteString("→")
		ident(sb, p.Attr)
	}
}

// child appends a child subtree fingerprint (memoized).
func (f *Fingerprinter) child(sb *strings.Builder, op nra.Op) {
	sb.WriteString(f.Fingerprint(op))
}

func (f *Fingerprinter) op(sb *strings.Builder, op nra.Op) {
	switch o := op.(type) {
	case *nra.Unit:
		sb.WriteString("unit")

	case *nra.GetVertices:
		sb.WriteString("gv(")
		ident(sb, o.Var)
		sb.WriteByte('|')
		strs(sb, o.Labels)
		sb.WriteByte('|')
		props(sb, o.Props)
		sb.WriteByte(')')

	case *nra.GetEdges:
		sb.WriteString("ge(")
		ident(sb, o.AVar)
		sb.WriteByte(',')
		ident(sb, o.EVar)
		sb.WriteByte(',')
		ident(sb, o.BVar)
		sb.WriteByte('|')
		strs(sb, o.Types)
		sb.WriteByte('|')
		strs(sb, o.ALabels)
		sb.WriteByte('|')
		strs(sb, o.BLabels)
		sb.WriteByte('|')
		if o.Undirected {
			sb.WriteByte('u')
		} else {
			sb.WriteByte('d')
		}
		sb.WriteByte('|')
		props(sb, o.AProps)
		sb.WriteByte('|')
		props(sb, o.EProps)
		sb.WriteByte('|')
		props(sb, o.BProps)
		sb.WriteByte(')')

	case *nra.TransitiveJoin:
		sb.WriteString("tj(")
		ident(sb, o.SrcAttr)
		sb.WriteByte('|')
		strs(sb, o.Types)
		fmt.Fprintf(sb, "|%d|%d..%d|", o.Dir, o.Min, o.Max)
		ident(sb, o.DstAttr)
		sb.WriteByte('|')
		strs(sb, o.DstLabels)
		sb.WriteByte('|')
		ident(sb, o.PathAttr)
		sb.WriteByte('|')
		props(sb, o.DstProps)
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.ShortestPath:
		sb.WriteString("sp(")
		ident(sb, o.SrcAttr)
		sb.WriteByte('|')
		strs(sb, o.Types)
		fmt.Fprintf(sb, "|%d|%d..%d|", o.Dir, o.Min, o.Max)
		ident(sb, o.DstAttr)
		sb.WriteByte('|')
		strs(sb, o.DstLabels)
		sb.WriteByte('|')
		ident(sb, o.WeightProp)
		sb.WriteByte('|')
		for i, ep := range o.EdgePreds {
			if i > 0 {
				sb.WriteByte(',')
			}
			ident(sb, ep.Key)
			sb.WriteByte(':')
			f.expr(sb, ep.Expr)
		}
		sb.WriteByte('|')
		ident(sb, o.PathAttr)
		sb.WriteByte('|')
		ident(sb, o.CostAttr)
		sb.WriteByte('|')
		props(sb, o.DstProps)
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.Join:
		f.binary(sb, "join", o.L, o.R)
	case *nra.LeftOuterJoin:
		f.binary(sb, "louter", o.L, o.R)
	case *nra.SemiJoin:
		f.binary(sb, "semi", o.L, o.R)
	case *nra.AntiJoin:
		f.binary(sb, "anti", o.L, o.R)

	case *nra.Select:
		sb.WriteString("sel(")
		f.expr(sb, o.Cond)
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.Project:
		sb.WriteString("proj(")
		for i, it := range o.Items {
			if i > 0 {
				sb.WriteByte(',')
			}
			f.expr(sb, it.Expr)
			sb.WriteString("→")
			ident(sb, it.Alias)
		}
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.Dedup:
		sb.WriteString("dedup[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.AllDifferent:
		sb.WriteString("alldiff(")
		strs(sb, o.EdgeAttrs)
		sb.WriteByte(';')
		strs(sb, o.PathAttrs)
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.PathBuild:
		sb.WriteString("path(")
		ident(sb, o.Attr)
		sb.WriteByte('|')
		for i, it := range o.Items {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(sb, "%d:", it.Kind)
			ident(sb, it.Attr)
			fmt.Fprintf(sb, ":%t", it.Reversed)
		}
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.Aggregate:
		sb.WriteString("agg(")
		for i, it := range o.GroupBy {
			if i > 0 {
				sb.WriteByte(',')
			}
			f.expr(sb, it.Expr)
			sb.WriteString("→")
			ident(sb, it.Alias)
		}
		sb.WriteByte(';')
		for i, a := range o.Aggs {
			if i > 0 {
				sb.WriteByte(',')
			}
			ident(sb, a.Func)
			if a.Distinct {
				sb.WriteString("!d")
			}
			sb.WriteByte('(')
			if a.Arg != nil {
				f.expr(sb, a.Arg)
			} else {
				sb.WriteByte('*')
			}
			sb.WriteString(")→")
			ident(sb, a.Alias)
		}
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.Unwind:
		sb.WriteString("unwind(")
		f.expr(sb, o.Expr)
		sb.WriteString("→")
		ident(sb, o.Alias)
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	case *nra.Top:
		sb.WriteString("top(")
		for i, it := range o.Items {
			if i > 0 {
				sb.WriteByte(',')
			}
			f.expr(sb, it.Expr)
			if it.Desc {
				sb.WriteString("!desc")
			}
		}
		sb.WriteByte(';')
		if o.Skip != nil {
			f.expr(sb, o.Skip)
		}
		sb.WriteByte(';')
		if o.Limit != nil {
			f.expr(sb, o.Limit)
		}
		sb.WriteString(")[")
		f.child(sb, o.Input)
		sb.WriteByte(']')

	default:
		// Unknown operators (e.g. a stray Unnest) never reach the Rete
		// compiler; render something unique per instance so an unexpected
		// caller cannot alias two of them.
		fmt.Fprintf(sb, "%T@%p", op, op)
		for _, c := range op.Children() {
			sb.WriteByte('[')
			f.child(sb, c)
			sb.WriteByte(']')
		}
	}
}

func (f *Fingerprinter) binary(sb *strings.Builder, tag string, l, r nra.Op) {
	sb.WriteString(tag)
	sb.WriteByte('[')
	f.child(sb, l)
	sb.WriteByte(',')
	f.child(sb, r)
	sb.WriteByte(']')
}
