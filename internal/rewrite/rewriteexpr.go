package rewrite

import (
	"fmt"

	"pgiv/internal/cypher"
	"pgiv/internal/fra"
	"pgiv/internal/gra"
	"pgiv/internal/schema"
	"pgiv/internal/value"
)

// rewriter translates residual expressions (written against the query
// core's schema) into expressions over the memo's projected columns.
// Each memo projection item gets a fresh placeholder attribute ("·0",
// "·1", …) keyed by the item expression's canonical rendering; a
// residual subexpression whose rendering matches is replaced by a
// reference to that placeholder. Fresh placeholders — rather than the
// memo's own aliases — make alias shadowing impossible: a memo like
// `RETURN a.score AS a` can never capture a residual `a.score` or `a`.
//
// A residual subexpression with no rendering match is rewritten
// structurally; reaching a bare Variable with no match means the memo
// dropped a column the query needs — the cover fails. Property accesses
// fall back to rewriting only their subject: `(·i).key` compiles to a
// live property lookup against the epoch-pinned snapshot, which observes
// exactly the state the memo was computed from.
type rewriter struct {
	cols    map[string]string // canonical rendering of memo item → placeholder attr
	attrs   schema.Schema
	qParams map[string]value.Value
}

func newRewriter(items []gra.Item, memoParams, qParams map[string]value.Value) *rewriter {
	rw := &rewriter{
		cols:    make(map[string]string, len(items)),
		attrs:   make(schema.Schema, len(items)),
		qParams: qParams,
	}
	for i, it := range items {
		attr := fmt.Sprintf("·%d", i)
		rw.attrs[i] = attr
		r := fra.CanonExpr(it.Expr, memoParams)
		if _, dup := rw.cols[r]; !dup {
			rw.cols[r] = attr
		}
	}
	return rw
}

// schema returns the placeholder schema of the memo leaf, in memo
// projection order (matching the published rows' column order).
func (rw *rewriter) schema() schema.Schema { return rw.attrs }

func (rw *rewriter) rewrite(e cypher.Expr) (cypher.Expr, bool) {
	if attr, ok := rw.cols[fra.CanonExpr(e, rw.qParams)]; ok {
		return &cypher.Variable{Name: attr}, true
	}
	switch x := e.(type) {
	case *cypher.Literal, *cypher.Parameter:
		return e, true
	case *cypher.Variable:
		return nil, false // column not covered by the memo projection
	case *cypher.PropAccess:
		sub, ok := rw.rewrite(x.Subject)
		if !ok {
			return nil, false
		}
		return &cypher.PropAccess{Subject: sub, Key: x.Key}, true
	case *cypher.Binary:
		l, ok := rw.rewrite(x.L)
		if !ok {
			return nil, false
		}
		r, ok := rw.rewrite(x.R)
		if !ok {
			return nil, false
		}
		return &cypher.Binary{Op: x.Op, L: l, R: r}, true
	case *cypher.Unary:
		sub, ok := rw.rewrite(x.X)
		if !ok {
			return nil, false
		}
		return &cypher.Unary{Op: x.Op, X: sub}, true
	case *cypher.IsNull:
		sub, ok := rw.rewrite(x.X)
		if !ok {
			return nil, false
		}
		return &cypher.IsNull{X: sub, Negate: x.Negate}, true
	case *cypher.FuncCall:
		args := make([]cypher.Expr, len(x.Args))
		for i, a := range x.Args {
			ra, ok := rw.rewrite(a)
			if !ok {
				return nil, false
			}
			args[i] = ra
		}
		return &cypher.FuncCall{Name: x.Name, Distinct: x.Distinct, Args: args}, true
	case *cypher.ListLit:
		elems := make([]cypher.Expr, len(x.Elems))
		for i, el := range x.Elems {
			re, ok := rw.rewrite(el)
			if !ok {
				return nil, false
			}
			elems[i] = re
		}
		return &cypher.ListLit{Elems: elems}, true
	case *cypher.MapLit:
		entries := make(map[string]cypher.Expr, len(x.Entries))
		for k, v := range x.Entries {
			rv, ok := rw.rewrite(v)
			if !ok {
				return nil, false
			}
			entries[k] = rv
		}
		return &cypher.MapLit{Entries: entries}, true
	}
	// CountStar, PatternPredicate, anything unknown: not expressible over
	// memo columns.
	return nil, false
}
