package rewrite

import (
	"math"

	"pgiv/internal/cypher"
	"pgiv/internal/fra"
	"pgiv/internal/value"
)

// rangePred is a normalized comparison conjunct: lhs ⋈ const, with the
// lhs identified by its canonical rendering and the constant resolved
// through the parameter map.
type rangePred struct {
	lhs string
	op  cypher.BinOp // OpEq, OpLt, OpLe, OpGt, OpGe (lhs on the left)
	c   value.Value
}

// normalizeRange recognises `expr ⋈ const` / `const ⋈ expr` comparisons.
//
// NaN constants are rejected: every comparison against NaN evaluates to
// false at runtime, but value.Compare totally orders NaN after all other
// numbers, so admitting one would let the ordering-based implication
// below "prove" containments the evaluator contradicts (e.g. x < 5
// implying x < NaN, whose view is empty).
func normalizeRange(e cypher.Expr, params map[string]value.Value) (rangePred, bool) {
	b, ok := e.(*cypher.Binary)
	if !ok {
		return rangePred{}, false
	}
	switch b.Op {
	case cypher.OpEq, cypher.OpLt, cypher.OpLe, cypher.OpGt, cypher.OpGe:
	default:
		return rangePred{}, false
	}
	if c, ok := constVal(b.R, params); ok && !isNaN(c) {
		return rangePred{lhs: fra.CanonExpr(b.L, params), op: b.Op, c: c}, true
	}
	if c, ok := constVal(b.L, params); ok && !isNaN(c) {
		return rangePred{lhs: fra.CanonExpr(b.R, params), op: flip(b.Op), c: c}, true
	}
	return rangePred{}, false
}

func isNaN(v value.Value) bool {
	return v.Kind() == value.KindFloat && math.IsNaN(v.Float())
}

func constVal(e cypher.Expr, params map[string]value.Value) (value.Value, bool) {
	switch x := e.(type) {
	case *cypher.Literal:
		return x.Val, true
	case *cypher.Parameter:
		v, ok := params[x.Name]
		return v, ok
	}
	return value.Value{}, false
}

func flip(op cypher.BinOp) cypher.BinOp {
	switch op {
	case cypher.OpLt:
		return cypher.OpGt
	case cypher.OpLe:
		return cypher.OpGe
	case cypher.OpGt:
		return cypher.OpLt
	case cypher.OpGe:
		return cypher.OpLe
	}
	return op // OpEq is symmetric
}

// impliesRange reports whether the query conjunct qc implies the memo
// conjunct mc by constant-range widening: both must normalize to a
// comparison over the same lhs rendering, with constants in the same
// kind class (both numeric or both string — the classes where
// value.Compare agrees with the evaluator's comparison semantics; a
// cross-kind comparison evaluates to null in Cypher, which ordering
// implication cannot model). Comparison semantics are null-strict on
// both sides, so a row passing qc has a non-null lhs and the widened
// bound holds.
func impliesRange(qc cypher.Expr, qParams map[string]value.Value, mc cypher.Expr, mParams map[string]value.Value) bool {
	qp, ok := normalizeRange(qc, qParams)
	if !ok {
		return false
	}
	mp, ok := normalizeRange(mc, mParams)
	if !ok {
		return false
	}
	if qp.lhs != mp.lhs {
		return false
	}
	if !sameClass(qp.c, mp.c) {
		return false
	}
	d := value.Compare(qp.c, mp.c) // qp.c vs mp.c
	switch mp.op {
	case cypher.OpEq:
		return qp.op == cypher.OpEq && d == 0
	case cypher.OpLt: // lhs < mc
		switch qp.op {
		case cypher.OpEq, cypher.OpLe:
			return d < 0
		case cypher.OpLt:
			return d <= 0
		}
	case cypher.OpLe: // lhs <= mc
		switch qp.op {
		case cypher.OpEq, cypher.OpLt, cypher.OpLe:
			return d <= 0
		}
	case cypher.OpGt: // lhs > mc
		switch qp.op {
		case cypher.OpEq, cypher.OpGe:
			return d > 0
		case cypher.OpGt:
			return d >= 0
		}
	case cypher.OpGe: // lhs >= mc
		switch qp.op {
		case cypher.OpEq, cypher.OpGt, cypher.OpGe:
			return d >= 0
		}
	}
	return false
}

func sameClass(a, b value.Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		return true
	}
	return a.Kind() == value.KindString && b.Kind() == value.KindString
}
