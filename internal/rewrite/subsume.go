package rewrite

import (
	"pgiv/internal/cypher"
	"pgiv/internal/fra"
	"pgiv/internal/gra"
	"pgiv/internal/nra"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// Subsumes decides whether the memoized plan covers the query and, if
// so, compiles the residual. Two strategies, cheapest wins:
//
//  1. Subtree hit: some subtree of the query plan has the memo's exact
//     fingerprint — that subtree's rows are the memo's rows (published
//     rows are a bag; every NRA operator except Top is order-insensitive,
//     and Top re-sorts, so bag equality suffices for interior nodes).
//     The residual is the query plan itself with that subtree answered
//     from the memo. A whole-plan hit on a non-Top root is an exact hit.
//
//  2. Spine near-match: both plans decompose as
//     Top?[Dedup?[Project?[Select*[core]]]] with fingerprint-equal cores;
//     the memo covers the query when every memo conjunct is implied by a
//     query conjunct (render equality or constant-range widening), the
//     query's columns are expressible over the memo's projection, dedup
//     is compatible, and — for window memos — the query asks a contained
//     [skip, skip+limit) slice under identical sort keys. The residual
//     re-applies the query-only filters, projection, dedup and top over
//     the memo rows.
func Subsumes(memoPlan nra.Op, memoParams map[string]value.Value, q *fra.Plan, qParams map[string]value.Value) (*Plan, bool) {
	var best *Plan
	consider := func(p *Plan) {
		if p != nil && (best == nil || p.Ops < best.Ops) {
			best = p
		}
	}
	consider(subtreeHit(memoPlan, memoParams, q, qParams))
	consider(spineHit(memoPlan, memoParams, q, qParams))
	return best, best != nil
}

// subtreeHit scans the query plan for a subtree with the memo's exact
// fingerprint.
func subtreeHit(memoPlan nra.Op, memoParams map[string]value.Value, q *fra.Plan, qParams map[string]value.Value) *Plan {
	memoFP := fra.Fingerprint(memoPlan, memoParams)
	qf := fra.NewFingerprinter(qParams)
	var found nra.Op
	var walk func(op nra.Op)
	walk = func(op nra.Op) {
		if found != nil {
			return
		}
		// Prefer the shallowest (largest-cover) match: check op before
		// descending.
		if qf.Fingerprint(op) == memoFP {
			if op == q.Root {
				if _, isTop := op.(*nra.Top); isTop {
					// Published rows are in canonical bag order, not rank
					// order; a whole-plan Top hit must re-sort, which the
					// spine window rule compiles (delta 0).
					return
				}
			}
			found = op
			return
		}
		for _, c := range op.Children() {
			walk(c)
		}
	}
	walk(q.Root)
	if found == nil {
		return nil
	}
	if found == q.Root {
		return &Plan{Leaf: found, Residual: found, Out: q.OutSchema, Ops: 0, Exact: true}
	}
	return &Plan{
		Leaf: found, Residual: q.Root, Out: q.OutSchema,
		Ops: countOps(q.Root, found), Exact: false,
	}
}

// spine is the decomposed root of a plan: the optional trailing
// Top / Dedup / Project / Select* chain over an arbitrary core.
type spine struct {
	top   *nra.Top
	dedup bool
	proj  *nra.Project
	conj  []cypher.Expr // AND-flattened Select conjuncts, outermost first
	core  nra.Op
}

func decompose(root nra.Op) spine {
	var s spine
	op := root
	if t, ok := op.(*nra.Top); ok {
		s.top = t
		op = t.Input
	}
	if d, ok := op.(*nra.Dedup); ok {
		s.dedup = true
		op = d.Input
	}
	if p, ok := op.(*nra.Project); ok {
		s.proj = p
		op = p.Input
	}
	for {
		sel, ok := op.(*nra.Select)
		if !ok {
			break
		}
		s.conj = append(s.conj, conjuncts(sel.Cond)...)
		op = sel.Input
	}
	s.core = op
	return s
}

// conjuncts flattens an AND tree into its conjunct list.
func conjuncts(e cypher.Expr) []cypher.Expr {
	if b, ok := e.(*cypher.Binary); ok && b.Op == cypher.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []cypher.Expr{e}
}

func spineHit(memoPlan nra.Op, memoParams map[string]value.Value, q *fra.Plan, qParams map[string]value.Value) *Plan {
	ms := decompose(memoPlan)
	qs := decompose(q.Root)

	if ms.top != nil {
		return windowHit(ms, memoParams, qs, qParams, q)
	}
	// Cores must compute the same relation.
	if fra.Fingerprint(ms.core, memoParams) != fra.Fingerprint(qs.core, qParams) {
		return nil
	}
	// Dedup compatibility: a deduplicated memo lost multiplicities the
	// query needs unless the query deduplicates too.
	if ms.dedup && !qs.dedup {
		return nil
	}

	// Conjunct implication: every memo filter must be implied by some
	// query filter, else the memo is missing rows the query wants.
	qRender := make([]string, len(qs.conj))
	for i, c := range qs.conj {
		qRender[i] = fra.CanonExpr(c, qParams)
	}
	for _, mc := range ms.conj {
		mr := fra.CanonExpr(mc, memoParams)
		implied := false
		for i, qc := range qs.conj {
			if qRender[i] == mr || impliesRange(qc, qParams, mc, memoParams) {
				implied = true
				break
			}
		}
		if !implied {
			return nil
		}
	}
	// Residual filters: query conjuncts not already enforced verbatim by
	// the memo (a strictly stronger query conjunct re-applies).
	mRender := make(map[string]bool, len(ms.conj))
	for _, mc := range ms.conj {
		mRender[fra.CanonExpr(mc, memoParams)] = true
	}
	var resid []cypher.Expr
	for i, qc := range qs.conj {
		if !mRender[qRender[i]] {
			resid = append(resid, qc)
		}
	}

	var leaf *memoLeaf
	var projItems []gra.Item
	if ms.proj == nil {
		// Mode A: the memo rows carry the full core schema; residual
		// expressions compile unchanged.
		leaf = &memoLeaf{s: ms.core.Schema()}
		if qs.proj != nil {
			projItems = qs.proj.Items
		}
	} else {
		// Mode B: the memo rows carry only the projected columns. Rewrite
		// every residual expression over a fresh placeholder schema — one
		// placeholder per memo projection item, matched by canonical
		// rendering — so a memo alias shadowing a pattern variable (e.g.
		// `a.score AS a`) can never capture a residual reference.
		rw := newRewriter(ms.proj.Items, memoParams, qParams)
		leaf = &memoLeaf{s: rw.schema()}
		for i, qc := range resid {
			re, ok := rw.rewrite(qc)
			if !ok {
				return nil
			}
			resid[i] = re
		}
		var items []gra.Item
		if qs.proj != nil {
			items = qs.proj.Items
		} else {
			// Query without a projection root: synthesize the identity
			// projection over its core schema so the output columns (and
			// any Top keys above) compile against real aliases.
			for _, a := range qs.core.Schema() {
				items = append(items, gra.Item{Expr: &cypher.Variable{Name: a}, Alias: a})
			}
		}
		projItems = make([]gra.Item, len(items))
		for i, it := range items {
			re, ok := rw.rewrite(it.Expr)
			if !ok {
				return nil
			}
			projItems[i] = gra.Item{Expr: re, Alias: it.Alias}
		}
	}

	// Assemble the residual stack: leaf → Select → Project → Dedup → Top.
	var tree nra.Op = leaf
	ops := 0
	if len(resid) > 0 {
		cond := resid[0]
		for _, c := range resid[1:] {
			cond = &cypher.Binary{Op: cypher.OpAnd, L: cond, R: c}
		}
		tree = &nra.Select{Input: tree, Cond: cond}
		ops++
	}
	if projItems != nil {
		tree = &nra.Project{Input: tree, Items: projItems}
		ops++
	}
	if qs.dedup {
		tree = &nra.Dedup{Input: tree}
		ops++
	}
	if qs.top != nil {
		tree = &nra.Top{Input: tree, Items: qs.top.Items, Skip: qs.top.Skip, Limit: qs.top.Limit}
		ops++
	}
	if ops == 0 && ms.proj == nil {
		// Nothing to do: memo and query are the same Select*(core) modulo
		// conjunct order.
		return &Plan{Leaf: leaf, Residual: leaf, Out: q.OutSchema, Ops: 0, Exact: true}
	}
	return &Plan{Leaf: leaf, Residual: tree, Out: q.OutSchema, Ops: ops, Exact: false}
}

// windowHit covers a query window from a memoized ORDER BY/SKIP/LIMIT
// window: everything below the two Tops must be fingerprint-identical,
// the sort keys must match, and the query's [skip, skip+limit) must lie
// inside the memo's. The memo rows are the ranks
// [mskip, mskip+mlimit) of the shared sorted sequence (published as a
// bag); re-sorting them with the shared total order and slicing at the
// rank delta reproduces the query window exactly.
func windowHit(ms spine, memoParams map[string]value.Value, qs spine, qParams map[string]value.Value, q *fra.Plan) *Plan {
	if qs.top == nil {
		return nil // a truncated window cannot serve an un-windowed query
	}
	if fra.Fingerprint(ms.top.Input, memoParams) != fra.Fingerprint(qs.top.Input, qParams) {
		return nil
	}
	if len(ms.top.Items) != len(qs.top.Items) {
		return nil
	}
	for i, mit := range ms.top.Items {
		qit := qs.top.Items[i]
		if mit.Desc != qit.Desc || fra.CanonExpr(mit.Expr, memoParams) != fra.CanonExpr(qit.Expr, qParams) {
			return nil
		}
	}
	mSkip, mLimit, ok := window(ms.top, memoParams)
	if !ok {
		return nil
	}
	qSkip, qLimit, ok := window(qs.top, qParams)
	if !ok {
		return nil
	}
	if qSkip < mSkip {
		return nil
	}
	if mLimit >= 0 && (qLimit < 0 || qSkip+qLimit > mSkip+mLimit) {
		return nil
	}
	leaf := &memoLeaf{s: qs.top.Input.Schema()}
	var limit cypher.Expr
	if qLimit >= 0 {
		limit = &cypher.Literal{Val: value.NewInt(int64(qLimit))}
	}
	residual := &nra.Top{
		Input: leaf,
		Items: qs.top.Items,
		Skip:  &cypher.Literal{Val: value.NewInt(int64(qSkip - mSkip))},
		Limit: limit,
	}
	return &Plan{Leaf: leaf, Residual: residual, Out: q.OutSchema, Ops: 1, Exact: false}
}

// window evaluates a Top's constant skip/limit; limit -1 means
// unbounded.
func window(t *nra.Top, params map[string]value.Value) (skip, limit int, ok bool) {
	skip, limit = 0, -1
	if t.Skip != nil {
		n, err := snapshot.EvalConstN(t.Skip, params, "SKIP")
		if err != nil {
			return 0, 0, false
		}
		skip = n
	}
	if t.Limit != nil {
		n, err := snapshot.EvalConstN(t.Limit, params, "LIMIT")
		if err != nil {
			return 0, 0, false
		}
		limit = n
	}
	return skip, limit, true
}
