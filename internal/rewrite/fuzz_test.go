package rewrite_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pgiv/internal/fra"
	"pgiv/internal/graph"
	"pgiv/internal/rewrite"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// genQuery draws a random query from a small grammar over a fixed
// vocabulary (labels Person/Post, properties score/lang/city, edge label
// KNOWS) chosen so that two independent draws frequently share cores —
// the interesting regime for the subsumption test: shared conjuncts,
// widened ranges, column subsets, contained windows, and near misses.
func genQuery(r *rand.Rand) string {
	if r.Intn(5) == 0 { // edge-pattern shape
		q := "MATCH (a:Person)-[:KNOWS]->(b:Person)"
		if r.Intn(2) == 0 {
			q += fmt.Sprintf(" WHERE a.score > %d", r.Intn(4))
		}
		// The ORDER BY key must survive the projection: the snapshot
		// engine evaluates sort keys over the projected schema, so a
		// dropped key is an evaluation error, not a sortable query.
		orderKey := "a"
		if r.Intn(2) == 0 {
			q += " RETURN a, b"
		} else {
			q += " RETURN a, b, a.score"
			orderKey = "a.score"
		}
		if r.Intn(3) == 0 {
			q += fmt.Sprintf(" ORDER BY %s DESC LIMIT %d", orderKey, 1+r.Intn(6))
		}
		return q
	}
	label := []string{"Person", "Post"}[r.Intn(2)]
	q := fmt.Sprintf("MATCH (n:%s)", label)
	var conj []string
	for i, k := 0, r.Intn(3); i < k; i++ {
		switch r.Intn(5) {
		case 0:
			conj = append(conj, fmt.Sprintf("n.score > %d", r.Intn(5)))
		case 1:
			conj = append(conj, fmt.Sprintf("n.score < %d", 1+r.Intn(5)))
		case 2:
			conj = append(conj, fmt.Sprintf("n.score >= %d", r.Intn(5)))
		case 3:
			// $nan resolves to NaN in fuzzParams: every comparison against
			// it is false at runtime, while value.Compare totally orders it
			// after all numbers — the exact mismatch normalizeRange must
			// refuse to reason about.
			conj = append(conj, fmt.Sprintf("n.score %s $nan", []string{"<", ">", "<=", ">="}[r.Intn(4)]))
		default:
			conj = append(conj, fmt.Sprintf("n.lang = '%s'", []string{"en", "de"}[r.Intn(2)]))
		}
	}
	if len(conj) > 0 {
		q += " WHERE " + strings.Join(conj, " AND ")
	}
	// Each return shape names an ORDER BY key it keeps (see the
	// edge-pattern comment above: dropped keys do not evaluate).
	var orderKey string
	switch r.Intn(6) {
	case 0:
		q += " RETURN n, n.score, n.lang"
		orderKey = "n.score"
	case 1:
		q += " RETURN n.score, n.lang"
		orderKey = "n.score"
	case 2:
		q += " RETURN n, n.score"
		orderKey = "n.score"
	case 3:
		q += " RETURN DISTINCT n.city"
		orderKey = "n.city"
	case 4:
		q += " RETURN n.lang, count(*) AS c"
		orderKey = "c"
	default:
		q += " RETURN n"
		orderKey = "n"
	}
	switch r.Intn(4) {
	case 0:
		q += fmt.Sprintf(" ORDER BY %s DESC SKIP %d LIMIT %d", orderKey, r.Intn(3), 1+r.Intn(8))
	case 1:
		q += fmt.Sprintf(" LIMIT %d", 1+r.Intn(8))
	}
	return q
}

// randomGraph builds a small graph with partially missing properties so
// null-strict comparison semantics are part of every soundness check.
func randomGraph(r *rand.Rand) *graph.Graph {
	g := graph.New()
	err := g.Batch(func(tx *graph.Tx) error {
		n := 6 + r.Intn(10)
		ids := make([]graph.ID, n)
		for i := range ids {
			props := map[string]value.Value{}
			if r.Intn(4) != 0 {
				props["score"] = value.NewInt(int64(r.Intn(7)))
			}
			if r.Intn(4) != 0 {
				props["lang"] = value.NewString([]string{"en", "de"}[r.Intn(2)])
			}
			if r.Intn(3) != 0 {
				props["city"] = value.NewString([]string{"ams", "bud"}[r.Intn(2)])
			}
			props["name"] = value.NewString(fmt.Sprintf("v%d", i))
			ids[i] = tx.AddVertex([]string{[]string{"Person", "Post"}[r.Intn(2)]}, props)
		}
		for i := 0; i < n; i++ {
			if _, err := tx.AddEdge(ids[r.Intn(n)], ids[r.Intn(n)], "KNOWS", nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return g
}

// FuzzSubsumes checks the planner's soundness contract: whenever
// Subsumes claims a random "memo" plan covers a random query, evaluating
// the residual over the memo's (canonically ordered) rows must equal a
// from-scratch evaluation of the query — on 20 random graphs per claim.
// False negatives (no cover claimed where one trivially exists, i.e. the
// two queries are the same string) are logged, never failed: the planner
// is allowed to be incomplete but never wrong.
func FuzzSubsumes(f *testing.F) {
	for s := int64(0); s < 12; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		memoQ, adhocQ := genQuery(r), genQuery(r)
		fuzzParams := map[string]value.Value{"nan": value.NewFloat(math.NaN())}
		memoPlan, err := fra.CompileString(memoQ)
		if err != nil {
			t.Fatalf("grammar produced uncompilable memo %q: %v", memoQ, err)
		}
		qPlan, err := fra.CompileString(adhocQ)
		if err != nil {
			t.Fatalf("grammar produced uncompilable query %q: %v", adhocQ, err)
		}
		p, ok := rewrite.Subsumes(memoPlan.Root, fuzzParams, qPlan, fuzzParams)
		if !ok {
			if memoQ == adhocQ {
				t.Logf("false negative: no self-cover for %q", memoQ)
			}
			return
		}
		ordered := strings.Contains(adhocQ, "ORDER BY") || strings.Contains(adhocQ, "LIMIT")
		for i := 0; i < 20; i++ {
			g := randomGraph(rand.New(rand.NewSource(seed + int64(i)*7919)))
			memoRes, err := snapshot.Query(g, memoQ, fuzzParams)
			if err != nil {
				t.Fatalf("memo eval %q: %v", memoQ, err)
			}
			// Memoized rows are published in canonical bag order, never
			// rank order, so the oracle feeds the residual the same way.
			got, err := p.Eval(g, memoRes.Sorted(), fuzzParams)
			if err != nil {
				t.Fatalf("residual eval (memo %q, query %q): %v", memoQ, adhocQ, err)
			}
			want, err := snapshot.Query(g, adhocQ, fuzzParams)
			if err != nil {
				t.Fatalf("direct eval %q: %v", adhocQ, err)
			}
			gotRows, wantRows := got.Rows, want.Rows
			if !ordered {
				gotRows = (&snapshot.Result{Rows: gotRows}).Sorted()
				wantRows = want.Sorted()
			}
			bad := len(gotRows) != len(wantRows)
			if !bad {
				for j := range gotRows {
					if value.CompareRows(gotRows[j], wantRows[j]) != 0 {
						bad = true
						break
					}
				}
			}
			if bad {
				t.Fatalf("unsound cover claim:\n memo  %q\n query %q\n plan:\n%s\n graph %d: rewrite answered %d rows, direct %d rows",
					memoQ, adhocQ, p.Format(), i, len(gotRows), len(wantRows))
			}
		}
	})
}
