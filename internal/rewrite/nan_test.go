package rewrite_test

import (
	"math"
	"testing"

	"pgiv/internal/fra"
	"pgiv/internal/rewrite"
	"pgiv/internal/value"
)

// TestSubsumesRejectsNaN: a NaN bound must never participate in range
// implication. Before the fix, value.Compare's total order (NaN after
// all numbers) let `n.score < 5` "imply" `n.score < $w` with $w = NaN —
// but the memo view is empty (every comparison against NaN is false), so
// the claimed cover was unsound.
func TestSubsumesRejectsNaN(t *testing.T) {
	nan := map[string]value.Value{"w": value.NewFloat(math.NaN())}
	memo, err := fra.CompileString("MATCH (n:Person) WHERE n.score < $w RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	q, err := fra.CompileString("MATCH (n:Person) WHERE n.score < 5 RETURN n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rewrite.Subsumes(memo.Root, nan, q, nil); ok {
		t.Fatal("claimed a NaN-bounded memo covers a finite-range query")
	}
	// Mirror direction: a finite-range memo must not claim to cover a
	// NaN-bounded query either — the query's answer is always empty, but
	// a range residual cannot express "drop everything".
	if _, ok := rewrite.Subsumes(q.Root, nil, memo, nan); ok {
		t.Fatal("claimed a finite-range memo covers a NaN-bounded query")
	}
}
