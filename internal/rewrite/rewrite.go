// Package rewrite answers ad-hoc queries from materialized view state:
// given a query's FRA plan and the live memoized productions of the
// SubplanRegistry, it finds the cheapest *covering* memo and compiles a
// residual plan (filter / projection / dedup / top slice) that the
// snapshot evaluator runs over the memo's published rows instead of the
// base graph. This turns the registry from a memory optimisation into a
// serving layer: a covered read costs O(residual over memo rows), not a
// full snapshot evaluation.
//
// Soundness contract: a returned Plan evaluates, over the memo's
// published rows at epoch E and a graph snapshot pinned at E, to exactly
// the row bag of evaluating the query from scratch at E — including
// multiplicities, and including rank order for ORDER BY queries. False
// negatives (missed rewrites) are fine; false positives are wrong
// answers, which is what FuzzSubsumes hunts.
package rewrite

import (
	"fmt"
	"strings"

	"pgiv/internal/fra"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/schema"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// Candidate is one live memoized production offered to the planner.
// Rows returns the memo's published rows and their epoch (ok == false
// when the production has never published — e.g. a view registered in a
// serialized-reads server that never Watch()ed it).
type Candidate struct {
	Name   string
	Plan   nra.Op
	Params map[string]value.Value
	Rows   func() (rows []value.Row, epoch uint64, ok bool)
}

// Plan is a compiled rewrite: evaluate Residual with Leaf answered from
// the memo's rows. For exact hits Residual == Leaf and evaluation is a
// pass-through of the memo rows.
type Plan struct {
	Cand     *Candidate
	Leaf     nra.Op // node answered from memo rows (pointer identity)
	Residual nra.Op // residual tree containing Leaf
	Out      schema.Schema
	Ops      int // residual operator count above the leaf
	Exact    bool
}

// Match finds the cheapest covering memo for the query among the
// candidates, or nil when no candidate covers it. Cost is memoized-row
// count scaled by residual operator count; ties keep the earliest
// candidate (registration order).
func Match(q *fra.Plan, qParams map[string]value.Value, cands []Candidate) *Plan {
	var best *Plan
	bestCost := 0
	for i := range cands {
		c := &cands[i]
		rows, _, ok := c.Rows()
		if !ok {
			continue
		}
		p, ok := Subsumes(c.Plan, c.Params, q, qParams)
		if !ok {
			continue
		}
		p.Cand = c
		cost := len(rows)*(1+p.Ops) + p.Ops
		if best == nil || cost < bestCost {
			best, bestCost = p, cost
		}
	}
	return best
}

// Eval runs the plan over the memo's rows. g must be a graph reader
// pinned at the rows' publish epoch: residual expressions may read
// properties the memo did not project, and those lookups must observe
// the same state the memo was computed from.
func (p *Plan) Eval(g graph.Reader, rows []value.Row, params map[string]value.Value) (*snapshot.Result, error) {
	if p.Exact {
		return &snapshot.Result{Schema: p.Out, Rows: rows}, nil
	}
	return snapshot.EvalWithRows(g, p.Residual, p.Out, p.Leaf, rows, params)
}

// memoLeaf is the placeholder operator the spine matcher substitutes for
// the covered part of the query plan; the snapshot evaluator answers it
// from the memo's rows by pointer identity.
type memoLeaf struct {
	s    schema.Schema
	name string
}

func (m *memoLeaf) Schema() schema.Schema { return m.s }
func (m *memoLeaf) Children() []nra.Op    { return nil }
func (m *memoLeaf) Head() string          { return "MemoRows " + m.name }

// Format renders the residual plan with the memo leaf called out — the
// human-readable form behind ExplainRewrite and the golden plan tests.
func (p *Plan) Format() string {
	var sb strings.Builder
	if p.Cand != nil {
		fmt.Fprintf(&sb, "memo: %s\n", p.Cand.Name)
	}
	if p.Exact {
		sb.WriteString("residual: none (exact hit)\n")
		return sb.String()
	}
	sb.WriteString("residual:\n")
	var rec func(op nra.Op, depth int)
	rec = func(op nra.Op, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if op == p.Leaf {
			name := "memo"
			if p.Cand != nil {
				name = p.Cand.Name
			}
			fmt.Fprintf(&sb, "MemoRows[%s]\n", name)
			return
		}
		sb.WriteString(op.Head())
		sb.WriteByte('\n')
		for _, c := range op.Children() {
			rec(c, depth+1)
		}
	}
	rec(p.Residual, 1)
	return sb.String()
}

// countOps counts the operators of a tree, excluding the subtree rooted
// at stop (the covered leaf).
func countOps(op nra.Op, stop nra.Op) int {
	if op == stop {
		return 0
	}
	n := 1
	for _, c := range op.Children() {
		n += countOps(c, stop)
	}
	return n
}
