package rewrite_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

var update = flag.Bool("update", false, "regenerate golden files")

// goldenViews are the registered views the golden queries are planned
// against.
var goldenViews = []struct{ name, query string }{
	{"v_knows", "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b"},
	{"v_posts", "MATCH (p:Post) WHERE p.score > 3 RETURN p, p.lang"},
	{"v_top", "MATCH (p:Person) RETURN p.name, p.score ORDER BY p.score DESC LIMIT 10"},
	{"v_cities", "MATCH (a:Person) RETURN DISTINCT a.city"},
	{"v_agg", "MATCH (p:Post) RETURN p.lang, count(*) AS n"},
}

// goldenQueries cover every planner outcome: exact hits, subtree hits,
// residual filters (render-equal and range-widened), column-subset
// projections, window containment, DISTINCT and aggregate covers, and
// misses.
var goldenQueries = []string{
	// exact hit on v_knows
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
	// subtree hit: LIMIT over the v_knows projection
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b LIMIT 5",
	// residual filter, render-equal shared conjunct
	"MATCH (p:Post) WHERE p.score > 3 AND p.lang = 'en' RETURN p, p.lang",
	// residual filter via constant-range widening (5 > 3)
	"MATCH (p:Post) WHERE p.score > 5 RETURN p, p.lang",
	// column subset over the memo projection
	"MATCH (p:Post) WHERE p.score > 3 RETURN p.lang",
	// miss: referencing a property the memo never read pushes a new
	// PropSpec into the query's base operator, so the cores differ
	"MATCH (p:Post) WHERE p.score > 3 AND p.nick = 'x' RETURN p",
	// window containment inside v_top's [0, 10)
	"MATCH (p:Person) RETURN p.name, p.score ORDER BY p.score DESC SKIP 2 LIMIT 3",
	// DISTINCT exact hit
	"MATCH (a:Person) RETURN DISTINCT a.city",
	// aggregate memo under an ad-hoc ORDER BY window
	"MATCH (p:Post) RETURN p.lang, count(*) AS n ORDER BY n DESC, p.lang ASC LIMIT 2",
	// miss: no memo covers Comm
	"MATCH (c:Comm) RETURN c",
	// miss: wider predicate than the memo (2 < 3 cannot widen)
	"MATCH (p:Post) WHERE p.score > 2 RETURN p, p.lang",
}

func goldenEngine(t *testing.T) (*graph.Graph, *ivm.Engine) {
	t.Helper()
	g := graph.New()
	engine := ivm.NewEngine(g, ivm.Options{NumWorkers: 1})
	t.Cleanup(engine.Close)
	for _, v := range goldenViews {
		if _, err := engine.RegisterView(v.name, v.query); err != nil {
			t.Fatalf("register %q: %v", v.query, err)
		}
	}
	err := g.Batch(func(tx *graph.Tx) error {
		people := make([]graph.ID, 6)
		for i := range people {
			people[i] = tx.AddVertex([]string{"Person"}, map[string]value.Value{
				"name":  value.NewString(fmt.Sprintf("p%d", i)),
				"score": value.NewInt(int64(i % 4)),
				"city":  value.NewString([]string{"ams", "bud", "ber"}[i%3]),
			})
		}
		for i := range people {
			if _, err := tx.AddEdge(people[i], people[(i+1)%len(people)], "KNOWS", nil); err != nil {
				return err
			}
		}
		for i := 0; i < 8; i++ {
			tx.AddVertex([]string{"Post"}, map[string]value.Value{
				"score": value.NewInt(int64(i)),
				"lang":  value.NewString([]string{"en", "de"}[i%2]),
				"nick":  value.NewString("x"),
			})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	engine.EnableRewrite()
	return g, engine
}

// TestGoldenRewritePlans snapshots the chosen memo + residual plan for
// every representative query; regenerate with -update.
func TestGoldenRewritePlans(t *testing.T) {
	_, engine := goldenEngine(t)
	var sb strings.Builder
	for _, q := range goldenQueries {
		exp, err := engine.ExplainRewrite(q, nil)
		if err != nil {
			t.Fatalf("explain %q: %v", q, err)
		}
		fmt.Fprintf(&sb, "== %s ==\n%s\n", q, exp)
	}
	got := sb.String()
	path := filepath.Join("testdata", "rewrites.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden rewrite plans changed (re-run with -update if intended)\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestRewriteAnswersMatchSnapshot is the quick inline differential: every
// golden query answered through the rewrite path must produce the exact
// row bag (and window order) of a from-scratch snapshot evaluation.
func TestRewriteAnswersMatchSnapshot(t *testing.T) {
	g, engine := goldenEngine(t)
	for _, q := range goldenQueries {
		got, _, err := engine.Query(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		want, err := snapshot.Query(g, q, nil)
		if err != nil {
			t.Fatalf("snapshot %q: %v", q, err)
		}
		ordered := strings.Contains(q, "ORDER BY") || strings.Contains(q, "LIMIT")
		gotRows, wantRows := got.Rows, want.Rows
		if !ordered {
			gotRows = (&snapshot.Result{Rows: gotRows}).Sorted()
			wantRows = want.Sorted()
		}
		if len(gotRows) != len(wantRows) {
			t.Fatalf("%q: got %d rows, want %d", q, len(gotRows), len(wantRows))
		}
		for i := range gotRows {
			if value.CompareRows(gotRows[i], wantRows[i]) != 0 {
				t.Fatalf("%q row %d: got %s want %s", q, i, value.RowString(gotRows[i]), value.RowString(wantRows[i]))
			}
		}
	}
	st := engine.Stats()
	if st.RewriteExact == 0 || st.RewriteResidual == 0 || st.RewriteMiss == 0 {
		t.Fatalf("expected all outcomes exercised, got %+v", st)
	}
	if st.RewriteFallback != 0 {
		t.Fatalf("unexpected fallbacks: %+v", st)
	}
}
