// Package protocol defines the pgivd wire protocol: length-prefixed JSON
// frames over a TCP stream.
//
// Every frame is a 4-byte big-endian payload length followed by one JSON
// message. The client sends Request frames; the server answers each with
// exactly one Response frame carrying the request's ID, and — for
// connections with active subscriptions — interleaves unsolicited
// DeltaBatch frames, one per (commit, view) pair, stamped with the
// server's monotonic commit sequence number. Values roundtrip exactly
// through the typed WireValue encoding (an int64 never degrades to a
// float, and vertex/edge/path references keep their identity).
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pgiv/internal/value"
)

// MaxFrame bounds a frame payload (16 MiB): a corrupt or hostile length
// prefix must not trigger an arbitrary allocation.
const MaxFrame = 16 << 20

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, msg *Message) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("protocol: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("protocol: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var msg Message
	if err := json.Unmarshal(body, &msg); err != nil {
		return nil, fmt.Errorf("protocol: bad frame: %v", err)
	}
	return &msg, nil
}

// Message is the frame envelope, discriminated by Type.
type Message struct {
	// Type is "req", "resp", "delta", or "bye" (a graceful-shutdown
	// goodbye: the server is closing and will send nothing further —
	// clients should not treat the connection drop as a failure).
	Type  string      `json:"type"`
	Req   *Request    `json:"req,omitempty"`
	Resp  *Response   `json:"resp,omitempty"`
	Delta *DeltaBatch `json:"delta,omitempty"`
}

// Request operations.
const (
	OpExec        = "exec"        // execute a write statement (Text)
	OpQuery       = "query"       // snapshot-evaluate a read query (Text)
	OpRows        = "rows"        // read view Name's current contents
	OpRegister    = "register"    // register view Name as query Text
	OpDrop        = "drop"        // drop view Name
	OpSubscribe   = "subscribe"   // stream view Name's OnChange batches
	OpUnsubscribe = "unsubscribe" // stop streaming view Name
	OpViews       = "views"       // list registered view names
	OpPing        = "ping"
)

// Request is one client request. ID is chosen by the client and echoed in
// the matching Response.
type Request struct {
	ID     uint64               `json:"id"`
	Op     string               `json:"op"`
	Name   string               `json:"name,omitempty"` // view name
	Text   string               `json:"text,omitempty"` // statement / query
	Params map[string]WireValue `json:"params,omitempty"`
}

// WriteStats mirrors write.Stats on the wire.
type WriteStats struct {
	MatchedRows   int `json:"matchedRows"`
	NodesCreated  int `json:"nodesCreated,omitempty"`
	EdgesCreated  int `json:"edgesCreated,omitempty"`
	NodesDeleted  int `json:"nodesDeleted,omitempty"`
	EdgesDeleted  int `json:"edgesDeleted,omitempty"`
	PropertiesSet int `json:"propertiesSet,omitempty"`
	LabelsAdded   int `json:"labelsAdded,omitempty"`
	LabelsRemoved int `json:"labelsRemoved,omitempty"`
}

// Response answers one Request. For OpExec, Stats and Seq carry the
// statement's effect and the commit sequence it produced (Seq 0 when the
// statement was a no-op). For OpQuery, OpRows and OpSubscribe, Schema
// and Rows hold the result (for subscribe: the view's current contents,
// the replay seed the delta stream continues from) and Seq the commit
// sequence — the graph epoch — the rows are consistent with.
type Response struct {
	ID     uint64        `json:"id"`
	Error  string        `json:"error,omitempty"`
	Schema []string      `json:"schema,omitempty"`
	Rows   [][]WireValue `json:"rows,omitempty"`
	Stats  *WriteStats   `json:"stats,omitempty"`
	Seq    uint64        `json:"seq,omitempty"`
	Views  []string      `json:"views,omitempty"`
}

// WireDelta is one view delta: a row appearing (Mult > 0) or disappearing
// (Mult < 0).
type WireDelta struct {
	Row  []WireValue `json:"row"`
	Mult int         `json:"mult"`
}

// DeltaBatch is one view's coalesced per-commit OnChange batch. Seq is
// the server's monotonic commit sequence number: every subscriber of
// every view observes the same numbering, and a subscriber receives at
// most one batch per (view, commit).
type DeltaBatch struct {
	View   string      `json:"view"`
	Seq    uint64      `json:"seq"`
	Deltas []WireDelta `json:"deltas"`
}

// WireValue is the typed value encoding. K discriminates; the zero
// WireValue is null.
type WireValue struct {
	K  string               `json:"k,omitempty"` // "", "b", "i", "f", "s", "v", "e", "l", "m", "p"
	B  bool                 `json:"b,omitempty"`
	I  int64                `json:"i,omitempty"`
	F  float64              `json:"f,omitempty"`
	S  string               `json:"s,omitempty"`
	L  []WireValue          `json:"l,omitempty"`
	M  map[string]WireValue `json:"m,omitempty"`
	PV []int64              `json:"pv,omitempty"` // path vertices
	PE []int64              `json:"pe,omitempty"` // path edges
}

// EncodeValue converts an engine value to its wire form.
func EncodeValue(v value.Value) WireValue {
	switch v.Kind() {
	case value.KindNull:
		return WireValue{}
	case value.KindBool:
		return WireValue{K: "b", B: v.Bool()}
	case value.KindInt:
		return WireValue{K: "i", I: v.Int()}
	case value.KindFloat:
		return WireValue{K: "f", F: v.Float()}
	case value.KindString:
		return WireValue{K: "s", S: v.Str()}
	case value.KindVertex:
		return WireValue{K: "v", I: v.ID()}
	case value.KindEdge:
		return WireValue{K: "e", I: v.ID()}
	case value.KindList:
		l := make([]WireValue, len(v.List()))
		for i, el := range v.List() {
			l[i] = EncodeValue(el)
		}
		if l == nil {
			l = []WireValue{}
		}
		return WireValue{K: "l", L: l}
	case value.KindMap:
		m := make(map[string]WireValue, len(v.Map()))
		for k, el := range v.Map() {
			m[k] = EncodeValue(el)
		}
		return WireValue{K: "m", M: m}
	case value.KindPath:
		p := v.Path()
		return WireValue{K: "p", PV: p.Vertices, PE: p.Edges}
	}
	return WireValue{}
}

// DecodeValue converts a wire value back to an engine value.
func DecodeValue(w WireValue) (value.Value, error) {
	switch w.K {
	case "":
		return value.Null, nil
	case "b":
		return value.NewBool(w.B), nil
	case "i":
		return value.NewInt(w.I), nil
	case "f":
		return value.NewFloat(w.F), nil
	case "s":
		return value.NewString(w.S), nil
	case "v":
		return value.NewVertex(w.I), nil
	case "e":
		return value.NewEdge(w.I), nil
	case "l":
		vs := make([]value.Value, len(w.L))
		for i, el := range w.L {
			v, err := DecodeValue(el)
			if err != nil {
				return value.Null, err
			}
			vs[i] = v
		}
		return value.NewList(vs), nil
	case "m":
		m := make(map[string]value.Value, len(w.M))
		keys := make([]string, 0, len(w.M))
		for k := range w.M {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v, err := DecodeValue(w.M[k])
			if err != nil {
				return value.Null, err
			}
			m[k] = v
		}
		return value.NewMap(m), nil
	case "p":
		return value.NewPath(&value.Path{Vertices: w.PV, Edges: w.PE}), nil
	}
	return value.Null, fmt.Errorf("protocol: unknown value kind %q", w.K)
}

// EncodeRow converts a result row.
func EncodeRow(row value.Row) []WireValue {
	out := make([]WireValue, len(row))
	for i, v := range row {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeRow converts a wire row.
func DecodeRow(ws []WireValue) (value.Row, error) {
	row := make(value.Row, len(ws))
	for i, w := range ws {
		v, err := DecodeValue(w)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// EncodeParams converts query parameters for a request.
func EncodeParams(params map[string]value.Value) map[string]WireValue {
	if len(params) == 0 {
		return nil
	}
	out := make(map[string]WireValue, len(params))
	for k, v := range params {
		out[k] = EncodeValue(v)
	}
	return out
}

// DecodeParams converts request parameters back to engine values.
func DecodeParams(ws map[string]WireValue) (map[string]value.Value, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	out := make(map[string]value.Value, len(ws))
	for k, w := range ws {
		v, err := DecodeValue(w)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}
