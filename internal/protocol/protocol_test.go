package protocol

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"pgiv/internal/value"
)

func TestValueRoundtrip(t *testing.T) {
	vals := []value.Value{
		value.Null,
		value.NewBool(true),
		value.NewBool(false),
		value.NewInt(0),
		value.NewInt(math.MaxInt64),
		value.NewInt(math.MinInt64),
		value.NewInt(1 << 60), // would lose precision as a float64
		value.NewFloat(3.25),
		value.NewFloat(-0.0),
		value.NewString(""),
		value.NewString("hëllo\nworld"),
		value.NewVertex(42),
		value.NewEdge(7),
		value.NewList(nil),
		value.NewList([]value.Value{value.NewInt(1), value.NewString("x"), value.Null}),
		value.NewMap(map[string]value.Value{"a": value.NewInt(1), "b": value.NewList([]value.Value{value.NewBool(true)})}),
		value.NewPath(&value.Path{Vertices: []int64{1, 2, 3}, Edges: []int64{10, 11}}),
	}
	for _, v := range vals {
		got, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Fatalf("decode(%s): %v", v, err)
		}
		if !value.Equal(got, v) && !(v.IsNull() && got.IsNull()) {
			t.Errorf("roundtrip %s -> %s", v, got)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("kind changed: %v -> %v", v.Kind(), got.Kind())
		}
	}
}

func TestInt64Exact(t *testing.T) {
	// The reason for the typed encoding: int64s beyond 2^53 must survive.
	v := value.NewInt((1 << 53) + 1)
	got, err := DecodeValue(EncodeValue(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != value.KindInt || got.Int() != (1<<53)+1 {
		t.Fatalf("int64 degraded: %v", got)
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	msg := &Message{Type: "req", Req: &Request{
		ID: 9, Op: OpExec, Text: "CREATE (:A)",
		Params: EncodeParams(map[string]value.Value{"x": value.NewInt(5)}),
	}}
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	delta := &Message{Type: "delta", Delta: &DeltaBatch{
		View: "v", Seq: 3,
		Deltas: []WireDelta{{Row: EncodeRow(value.Row{value.NewVertex(1)}), Mult: 1}},
	}}
	if err := WriteFrame(&buf, delta); err != nil {
		t.Fatal(err)
	}
	m1, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Type != "req" || m1.Req.ID != 9 || m1.Req.Text != "CREATE (:A)" {
		t.Fatalf("bad request frame: %+v", m1)
	}
	params, err := DecodeParams(m1.Req.Params)
	if err != nil || params["x"].Int() != 5 {
		t.Fatalf("params lost: %v %v", params, err)
	}
	m2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Type != "delta" || m2.Delta.Seq != 3 || len(m2.Delta.Deltas) != 1 {
		t.Fatalf("bad delta frame: %+v", m2)
	}
	row, err := DecodeRow(m2.Delta.Deltas[0].Row)
	if err != nil || row[0].Kind() != value.KindVertex || row[0].ID() != 1 {
		t.Fatalf("delta row lost: %v %v", row, err)
	}
}

func TestFrameLimit(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
