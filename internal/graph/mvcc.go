// MVCC read snapshots: every committed transaction stamps its ChangeSet
// with a monotonic epoch, and — once snapshots are enabled — maintains a
// copy-on-write versioned mirror of the store (persistent tries keyed by
// element ID). A reader pins an epoch with Graph.Snapshot and traverses a
// fully stable state without holding any lock the writer needs; commits
// publish fresh trie roots instead of mutating shared ones. Epochs are
// reclaimed by the garbage collector when the last pinned reader
// releases: the pin table only keeps an old version's root alive while
// someone still reads it, so the memory retained beyond the latest
// version is exactly the path-copied nodes its pinned readers still see.
package graph

import (
	"sort"
	"sync"
	"sync/atomic"

	"pgiv/internal/value"
)

// Reader is the read-only graph access interface shared by the live
// *Graph and the immutable *Snapshot. Query evaluation (package snapshot)
// and expression evaluation (package expr) run against a Reader, so the
// same evaluator serves both the locked live store and pinned MVCC
// epochs.
type Reader interface {
	VertexByID(id ID) (*Vertex, bool)
	EdgeByID(id ID) (*Edge, bool)
	NumVertices() int
	NumEdges() int
	VerticesByLabel(label string) []*Vertex
	EdgesByType(typ string) []*Edge
	OutEdges(id ID, typ string) []*Edge
	InEdges(id ID, typ string) []*Edge
	ForEachOutEdge(id ID, typ string, fn func(*Edge) bool)
	ForEachInEdge(id ID, typ string, fn func(*Edge) bool)
	Labels() []string
	EdgeTypes() []string
}

var (
	_ Reader = (*Graph)(nil)
	_ Reader = (*Snapshot)(nil)
)

// sadj is one vertex's adjacency in a versioned store: sorted incident
// edge IDs, total and per type. It stores IDs rather than *Edge so an
// edge property change only replaces the edge copy, not every adjacency
// list that mentions it. Slices follow the live index's publication
// discipline: appends extend only the newest version's tail (older
// versions hold shorter prefixes and never index the new slot), and
// mid-slice inserts and removals build fresh arrays.
type sadj struct {
	all    []ID
	byType map[string][]ID
}

func insertIDSorted(s []ID, id ID) []ID {
	if n := len(s); n == 0 || s[n-1] < id {
		return append(s, id)
	}
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	ns := make([]ID, len(s)+1)
	copy(ns, s[:i])
	ns[i] = id
	copy(ns[i+1:], s[i:])
	return ns
}

func removeIDSorted(s []ID, id ID) []ID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i >= len(s) || s[i] != id {
		return s
	}
	ns := make([]ID, 0, len(s)-1)
	ns = append(ns, s[:i]...)
	return append(ns, s[i+1:]...)
}

// store is one epoch's complete immutable graph state. Element objects
// are store-owned copies (the live store mutates its objects in place;
// these never change after publication), indexes are persistent tries,
// and the label/type maps are copied per commit that touches them.
type store struct {
	epoch    uint64
	vertices pvec[*Vertex]
	edges    pvec[*Edge]
	byLabel  map[string]pvec[struct{}] // vertex IDs carrying each label
	byType   map[string]pvec[struct{}] // edge IDs of each type
	out      pvec[*sadj]
	in       pvec[*sadj]
}

func copyVertexFor(v *Vertex) *Vertex {
	c := &Vertex{ID: v.ID, props: make(map[string]value.Value, len(v.props))}
	c.labels = append([]string(nil), v.labels...)
	for k, p := range v.props {
		c.props[k] = p
	}
	return c
}

func copyEdgeFor(e *Edge) *Edge {
	c := &Edge{ID: e.ID, Src: e.Src, Trg: e.Trg, Type: e.Type, props: make(map[string]value.Value, len(e.props))}
	for k, p := range e.props {
		c.props[k] = p
	}
	return c
}

// buildStore materialises the versioned mirror of the whole live graph —
// the one-time activation cost of EnableMVCC. The caller holds wmu, so no
// commit is in flight.
func buildStore(g *Graph, epoch uint64) *store {
	st := &store{
		epoch:   epoch,
		byLabel: make(map[string]pvec[struct{}]),
		byType:  make(map[string]pvec[struct{}]),
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for id, v := range g.vertices {
		st.vertices = st.vertices.set(id, copyVertexFor(v))
	}
	for label, m := range g.byLabel {
		set := pvec[struct{}]{}
		for id := range m {
			set = set.set(id, struct{}{})
		}
		st.byLabel[label] = set
	}
	for typ, m := range g.byType {
		set := pvec[struct{}]{}
		for id := range m {
			set = set.set(id, struct{}{})
		}
		st.byType[typ] = set
	}
	for id, e := range g.edges {
		st.edges = st.edges.set(id, copyEdgeFor(e))
	}
	adj := func(src map[ID]*adjacency) pvec[*sadj] {
		out := pvec[*sadj]{}
		for id, a := range src {
			if len(a.all) == 0 {
				continue
			}
			na := &sadj{all: make([]ID, len(a.all)), byType: make(map[string][]ID, len(a.byType))}
			for i, e := range a.all {
				na.all[i] = e.ID
			}
			for t, es := range a.byType {
				ids := make([]ID, len(es))
				for i, e := range es {
					ids[i] = e.ID
				}
				na.byType[t] = ids
			}
			out = out.set(id, na)
		}
		return out
	}
	st.out = adj(g.out)
	st.in = adj(g.in)
	return st
}

// labelSet / typeSet edit helpers: copy the outer map once per commit
// that touches it, then update the per-key persistent sets.
type indexEdit struct {
	m      map[string]pvec[struct{}]
	copied bool
}

func (ie *indexEdit) edit(key string, id ID, add bool) map[string]pvec[struct{}] {
	if !ie.copied {
		nm := make(map[string]pvec[struct{}], len(ie.m)+1)
		for k, v := range ie.m {
			nm[k] = v
		}
		ie.m = nm
		ie.copied = true
	}
	set := ie.m[key]
	if add {
		ie.m[key] = set.set(id, struct{}{})
	} else {
		set = set.del(id)
		if set.len() == 0 {
			delete(ie.m, key)
		} else {
			ie.m[key] = set
		}
	}
	return ie.m
}

func adjInsert(m pvec[*sadj], vid, eid ID, typ string) pvec[*sadj] {
	old, _ := m.get(vid)
	na := &sadj{}
	if old != nil {
		na.all = insertIDSorted(old.all, eid)
		na.byType = make(map[string][]ID, len(old.byType)+1)
		for t, s := range old.byType {
			na.byType[t] = s
		}
		na.byType[typ] = insertIDSorted(na.byType[typ], eid)
	} else {
		na.all = []ID{eid}
		na.byType = map[string][]ID{typ: {eid}}
	}
	return m.set(vid, na)
}

func adjRemove(m pvec[*sadj], vid, eid ID, typ string) pvec[*sadj] {
	old, ok := m.get(vid)
	if !ok {
		return m
	}
	all := removeIDSorted(old.all, eid)
	if len(all) == 0 {
		return m.del(vid)
	}
	na := &sadj{all: all, byType: make(map[string][]ID, len(old.byType))}
	for t, s := range old.byType {
		na.byType[t] = s
	}
	if b := removeIDSorted(na.byType[typ], eid); len(b) > 0 {
		na.byType[typ] = b
	} else {
		delete(na.byType, typ)
	}
	return m.set(vid, na)
}

// apply derives the post-commit store from one coalesced ChangeSet. The
// caller holds wmu (commits are serialised), so the live objects the
// deltas reference are stable while their final states are copied.
func (st *store) apply(cs *ChangeSet, epoch uint64) *store {
	ns := &store{
		epoch: epoch, vertices: st.vertices, edges: st.edges,
		byLabel: st.byLabel, byType: st.byType, out: st.out, in: st.in,
	}
	labels := &indexEdit{m: ns.byLabel}
	types := &indexEdit{m: ns.byType}

	// Pass 1: removed edges unlink while both endpoint adjacencies still
	// exist; a vertex removal in the same commit deletes the (possibly
	// already emptied) entry afterwards.
	for _, d := range cs.Edges() {
		if !d.Removed() {
			continue
		}
		e := d.E
		ns.edges = ns.edges.del(e.ID)
		ns.byType = types.edit(e.Type, e.ID, false)
		ns.out = adjRemove(ns.out, e.Src, e.ID, e.Type)
		ns.in = adjRemove(ns.in, e.Trg, e.ID, e.Type)
	}
	// Pass 2: vertices. Label index edits diff the pre-transaction label
	// set (what the previous store indexed) against the final one.
	for _, d := range cs.Vertices() {
		v := d.V
		switch {
		case d.Removed():
			ns.vertices = ns.vertices.del(v.ID)
			for _, l := range d.BeforeLabels() {
				ns.byLabel = labels.edit(l, v.ID, false)
			}
			ns.out = ns.out.del(v.ID)
			ns.in = ns.in.del(v.ID)
		case d.Created():
			ns.vertices = ns.vertices.set(v.ID, copyVertexFor(v))
			for _, l := range v.Labels() {
				ns.byLabel = labels.edit(l, v.ID, true)
			}
		default:
			ns.vertices = ns.vertices.set(v.ID, copyVertexFor(v))
			if d.LabelsChanged() {
				for _, l := range d.BeforeLabels() {
					if !v.HasLabel(l) {
						ns.byLabel = labels.edit(l, v.ID, false)
					}
				}
				for _, l := range v.Labels() {
					if !d.HadLabel(l) {
						ns.byLabel = labels.edit(l, v.ID, true)
					}
				}
			}
		}
	}
	// Pass 3: created and modified edges (endpoints exist by now).
	for _, d := range cs.Edges() {
		e := d.E
		switch {
		case d.Removed():
		case d.Created():
			ns.edges = ns.edges.set(e.ID, copyEdgeFor(e))
			ns.byType = types.edit(e.Type, e.ID, true)
			ns.out = adjInsert(ns.out, e.Src, e.ID, e.Type)
			ns.in = adjInsert(ns.in, e.Trg, e.ID, e.Type)
		default:
			ns.edges = ns.edges.set(e.ID, copyEdgeFor(e))
		}
	}
	return ns
}

// countNodes adds the store's trie nodes not already in seen.
func (st *store) countNodes(seen map[any]bool) int {
	n := st.vertices.countNodes(seen) + st.edges.countNodes(seen) +
		st.out.countNodes(seen) + st.in.countNodes(seen)
	for _, set := range st.byLabel {
		n += set.countNodes(seen)
	}
	for _, set := range st.byType {
		n += set.countNodes(seen)
	}
	return n
}

// --- epoch manager ---

// mvccState is the versioned-store manager hung off a Graph once
// snapshots are enabled. latest is replaced (never mutated) by each
// non-empty commit; pins ref-counts the epochs readers still hold, which
// is all that keeps a superseded version's roots reachable.
type mvccState struct {
	mu     sync.Mutex
	latest *store
	pins   map[uint64]*epochPin
}

type epochPin struct {
	st   *store
	refs int
}

// EnableMVCC activates snapshot maintenance: the versioned mirror is
// built once from the current state and kept up to date copy-on-write by
// every subsequent commit. Before activation the only MVCC cost a commit
// pays is stamping its epoch; afterwards it is O(changed elements ·
// log n) trie path copies. Idempotent; implied by the first Snapshot
// call. Must not be called from inside a commit (a graph listener).
func (g *Graph) EnableMVCC() {
	if g.mvcc.Load() != nil {
		return
	}
	g.wmu.Lock()
	defer g.wmu.Unlock()
	if g.mvcc.Load() != nil {
		return
	}
	st := buildStore(g, g.epoch.Load())
	g.mvcc.Store(&mvccState{latest: st, pins: make(map[uint64]*epochPin)})
}

// MVCCEnabled reports whether versioned snapshots are being maintained.
func (g *Graph) MVCCEnabled() bool { return g.mvcc.Load() != nil }

// Epoch returns the epoch of the last committed non-empty transaction
// (0 before the first). Every committed ChangeSet carries its epoch; the
// value here is the one the next Snapshot will observe once no commit is
// in flight.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// Snapshot pins the latest committed epoch and returns a stable,
// immutable view of the graph at that epoch. The snapshot never blocks
// writers and never observes later commits — reads are plain pointer
// walks over shared immutable tries, safe from any number of goroutines.
// Callers must Release the snapshot when done; the pin is what keeps the
// epoch's superseded state alive, so a leaked pin is a memory leak. The
// first call enables MVCC (see EnableMVCC).
func (g *Graph) Snapshot() *Snapshot {
	ms := g.mvcc.Load()
	if ms == nil {
		g.EnableMVCC()
		ms = g.mvcc.Load()
	}
	ms.mu.Lock()
	st := ms.latest
	p := ms.pins[st.epoch]
	if p == nil {
		p = &epochPin{st: st}
		ms.pins[st.epoch] = p
	}
	p.refs++
	ms.mu.Unlock()
	return &Snapshot{g: g, st: st}
}

func (g *Graph) releasePin(epoch uint64) {
	ms := g.mvcc.Load()
	if ms == nil {
		return
	}
	ms.mu.Lock()
	if p := ms.pins[epoch]; p != nil {
		p.refs--
		if p.refs <= 0 {
			delete(ms.pins, epoch)
		}
	}
	ms.mu.Unlock()
}

// publishStore installs the post-commit store version. Called from
// Commit with wmu held.
func (g *Graph) publishStore(ns *store) {
	ms := g.mvcc.Load()
	ms.mu.Lock()
	ms.latest = ns
	ms.mu.Unlock()
}

// MVCCStats reports the versioned-store accounting used by the epoch
// reclamation tests and ops introspection.
type MVCCStats struct {
	Active         bool
	Epoch          uint64 // latest committed epoch
	PinnedEpochs   int    // distinct epochs with outstanding pins
	PinnedReaders  int    // outstanding Snapshot pins
	RetainedStores int    // store versions kept alive (latest + pinned)
	LatestNodes    int    // trie nodes reachable from the latest version
	RetainedNodes  int    // distinct trie nodes across all retained versions
}

// MVCCStats returns the current snapshot-retention accounting. With no
// pinned readers, RetainedNodes == LatestNodes: everything a released
// epoch held exclusively is unreachable and collectable.
func (g *Graph) MVCCStats() MVCCStats {
	st := MVCCStats{Epoch: g.epoch.Load()}
	ms := g.mvcc.Load()
	if ms == nil {
		return st
	}
	st.Active = true
	ms.mu.Lock()
	defer ms.mu.Unlock()
	seen := make(map[any]bool)
	st.LatestNodes = ms.latest.countNodes(seen)
	st.RetainedNodes = st.LatestNodes
	st.RetainedStores = 1
	for epoch, p := range ms.pins {
		st.PinnedEpochs++
		st.PinnedReaders += p.refs
		if epoch != ms.latest.epoch {
			st.RetainedStores++
			st.RetainedNodes += p.st.countNodes(seen)
		}
	}
	return st
}

// --- Snapshot: the pinned-epoch Reader ---

// Snapshot is an immutable view of the graph at one committed epoch. All
// Reader methods are lock-free walks over shared persistent state: they
// never block a writer, never observe a later commit, and are safe for
// concurrent use. Release must be called exactly once when the reader is
// done (further reads after Release still work while the process holds
// the pointer, but the epoch's memory is no longer protected from
// supersession accounting). The *Vertex/*Edge objects returned are
// store-owned immutable copies — unlike the live graph's objects they
// never change after the snapshot is taken.
type Snapshot struct {
	g        *Graph
	st       *store
	released atomic.Bool
}

// Epoch returns the committed epoch this snapshot pins.
func (s *Snapshot) Epoch() uint64 { return s.st.epoch }

// Release unpins the epoch. Idempotent.
func (s *Snapshot) Release() {
	if s.released.CompareAndSwap(false, true) {
		s.g.releasePin(s.st.epoch)
	}
}

// VertexByID returns the vertex with the given ID.
func (s *Snapshot) VertexByID(id ID) (*Vertex, bool) { return s.st.vertices.get(id) }

// EdgeByID returns the edge with the given ID.
func (s *Snapshot) EdgeByID(id ID) (*Edge, bool) { return s.st.edges.get(id) }

// NumVertices returns the number of vertices.
func (s *Snapshot) NumVertices() int { return s.st.vertices.len() }

// NumEdges returns the number of edges.
func (s *Snapshot) NumEdges() int { return s.st.edges.len() }

// VerticesByLabel returns the vertices carrying the given label, sorted
// by ID ("" selects all).
func (s *Snapshot) VerticesByLabel(label string) []*Vertex {
	if label == "" {
		out := make([]*Vertex, 0, s.st.vertices.len())
		s.st.vertices.ascend(func(_ ID, v *Vertex) bool {
			out = append(out, v)
			return true
		})
		return out
	}
	set := s.st.byLabel[label]
	out := make([]*Vertex, 0, set.len())
	set.ascend(func(id ID, _ struct{}) bool {
		if v, ok := s.st.vertices.get(id); ok {
			out = append(out, v)
		}
		return true
	})
	return out
}

// EdgesByType returns the edges of the given type, sorted by ID (""
// selects all).
func (s *Snapshot) EdgesByType(typ string) []*Edge {
	if typ == "" {
		out := make([]*Edge, 0, s.st.edges.len())
		s.st.edges.ascend(func(_ ID, e *Edge) bool {
			out = append(out, e)
			return true
		})
		return out
	}
	set := s.st.byType[typ]
	out := make([]*Edge, 0, set.len())
	set.ascend(func(id ID, _ struct{}) bool {
		if e, ok := s.st.edges.get(id); ok {
			out = append(out, e)
		}
		return true
	})
	return out
}

func (s *Snapshot) adjIDs(m pvec[*sadj], id ID, typ string) []ID {
	a, ok := m.get(id)
	if !ok {
		return nil
	}
	if typ == "" {
		return a.all
	}
	return a.byType[typ]
}

func (s *Snapshot) resolveEdges(ids []ID) []*Edge {
	if len(ids) == 0 {
		return nil
	}
	out := make([]*Edge, 0, len(ids))
	for _, eid := range ids {
		if e, ok := s.st.edges.get(eid); ok {
			out = append(out, e)
		}
	}
	return out
}

// OutEdges returns the outgoing edges of the vertex, optionally filtered
// by type, sorted by edge ID.
func (s *Snapshot) OutEdges(id ID, typ string) []*Edge {
	return s.resolveEdges(s.adjIDs(s.st.out, id, typ))
}

// InEdges returns the incoming edges of the vertex, optionally filtered
// by type, sorted by edge ID.
func (s *Snapshot) InEdges(id ID, typ string) []*Edge {
	return s.resolveEdges(s.adjIDs(s.st.in, id, typ))
}

// ForEachOutEdge invokes fn for every outgoing edge of the vertex with
// the given type ("" selects all) in edge-ID order, until fn returns
// false. Unlike OutEdges it allocates no result slice.
func (s *Snapshot) ForEachOutEdge(id ID, typ string, fn func(*Edge) bool) {
	for _, eid := range s.adjIDs(s.st.out, id, typ) {
		if e, ok := s.st.edges.get(eid); ok && !fn(e) {
			return
		}
	}
}

// ForEachInEdge is ForEachOutEdge for incoming edges.
func (s *Snapshot) ForEachInEdge(id ID, typ string, fn func(*Edge) bool) {
	for _, eid := range s.adjIDs(s.st.in, id, typ) {
		if e, ok := s.st.edges.get(eid); ok && !fn(e) {
			return
		}
	}
}

// Labels returns the sorted set of labels in use at this epoch.
func (s *Snapshot) Labels() []string {
	out := make([]string, 0, len(s.st.byLabel))
	for l := range s.st.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EdgeTypes returns the sorted set of edge types in use at this epoch.
func (s *Snapshot) EdgeTypes() []string {
	out := make([]string, 0, len(s.st.byType))
	for t := range s.st.byType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
