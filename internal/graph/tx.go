package graph

import (
	"fmt"
	"sort"

	"pgiv/internal/value"
)

// Mutator is the write interface shared by *Graph (auto-committed one-op
// transactions) and *Tx (explicit transactions). Code that loads or
// mutates a graph should accept a Mutator so callers choose the
// transaction granularity.
type Mutator interface {
	AddVertex(labels []string, props map[string]value.Value) ID
	AddEdge(src, trg ID, typ string, props map[string]value.Value) (ID, error)
	RemoveVertex(id ID) error
	RemoveEdge(id ID) error
	SetVertexProperty(id ID, key string, val value.Value) error
	SetEdgeProperty(id ID, key string, val value.Value) error
	AddVertexLabel(id ID, label string) error
	RemoveVertexLabel(id ID, label string) error
}

var (
	_ Mutator = (*Graph)(nil)
	_ Mutator = (*Tx)(nil)
)

// Tx is an explicit transaction: a batch of mutations committed (and
// change-notified) as one unit. Mutations apply to the store eagerly, so
// reads on the graph observe the transaction's own writes; the change log
// self-coalesces (see ChangeSet) and listeners receive one ChangeSet at
// Commit. Rollback restores the pre-transaction state and notifies
// nobody.
//
// A Tx holds the graph's writer lock from Begin until Commit or
// Rollback: transactions serialise against each other and against
// auto-committed single operations. The lock is not reentrant — calling
// an auto-committed Graph mutator (g.AddVertex, g.RemoveEdge, ...) while
// a transaction is open on the same goroutine deadlocks; mutate through
// the Tx instead (reads on the graph are fine and observe the
// transaction's writes). A Tx must not be shared across goroutines, and
// exactly one of Commit/Rollback must be called; mutators on a finished
// transaction return ErrTxDone (AddVertex panics).
type Tx struct {
	g    *Graph
	cs   *ChangeSet
	done bool
}

// Begin starts a transaction, acquiring the writer lock.
func (g *Graph) Begin() *Tx {
	g.wmu.Lock()
	return &Tx{g: g, cs: newChangeSet()}
}

// Batch runs fn inside a transaction. If fn returns an error (or panics)
// the transaction rolls back and the error is returned (resp. the panic
// re-raised); otherwise it commits. This is the recommended way to apply
// multi-operation updates: listeners see one coalesced ChangeSet, and
// view maintenance pays one propagation pass instead of one per
// operation.
//
// fn must mutate only through tx: calling the graph's auto-committed
// mutators (or nesting Begin/Batch) inside fn deadlocks on the writer
// lock. Reading the graph inside fn is fine.
func (g *Graph) Batch(fn func(*Tx) error) error {
	tx := g.Begin()
	defer func() {
		if !tx.done {
			_ = tx.Rollback()
		}
	}()
	if err := fn(tx); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}

// ErrTxDone is returned by Commit/Rollback on a finished transaction.
var ErrTxDone = fmt.Errorf("graph: transaction already finished")

// CommitLog persists committed change sets before they become visible:
// the write-ahead half of the durability contract. AppendCommit runs
// inside Commit with the writer lock held, after the change set has been
// coalesced and stamped with its tentative epoch but before the commit
// is published (epoch counter, MVCC store, listeners). Returning an
// error aborts the commit: the store rolls back to its pre-transaction
// state and Commit returns the error, so a commit the log rejected is
// never observable. nextV/nextE are the post-commit ID allocator
// positions (see Graph.NextIDs).
type CommitLog interface {
	AppendCommit(cs *ChangeSet, epoch uint64, nextV, nextE ID) error
}

// SetCommitLog installs (or, with nil, removes) the write-ahead commit
// log. Pass nil only when no commit can be in flight.
func (g *Graph) SetCommitLog(l CommitLog) {
	g.wmu.Lock()
	g.commitLog = l
	g.wmu.Unlock()
}

// Commit finalises the transaction: the change log is coalesced,
// persisted to the commit log (when one is installed), and dispatched to
// listeners as one ChangeSet, then the writer lock is released.
// Committing an effect-free transaction notifies nobody and logs
// nothing. If the commit log rejects the change set, the transaction
// rolls back and the log's error is returned.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	cs := tx.cs.normalize()
	if !cs.Empty() {
		epoch := tx.g.epoch.Load() + 1
		if log := tx.g.commitLog; log != nil {
			cs.epoch = epoch
			nextV, nextE := tx.g.NextIDs()
			if err := log.AppendCommit(cs, epoch, nextV, nextE); err != nil {
				// Write-ahead failed: the commit must not become visible.
				cs.epoch = 0
				_ = tx.Rollback()
				return fmt.Errorf("graph: commit log: %w", err)
			}
		}
		tx.done = true
		cs.epoch = epoch
		tx.g.epoch.Store(epoch)
		if ms := tx.g.mvcc.Load(); ms != nil {
			// Derive and publish the next versioned-store state before
			// listeners run, so a Snapshot taken from inside (or right
			// after) a listener already sees this commit's epoch. The
			// live objects the deltas reference are stable here: wmu is
			// held and readers never mutate.
			tx.g.publishStore(ms.latest.apply(cs, cs.epoch))
		}
		tx.g.dispatch(cs)
	} else {
		tx.done = true
	}
	tx.g.wmu.Unlock()
	return nil
}

// Rollback undoes every mutation of the transaction and releases the
// writer lock. No listener is notified. Elements created in the
// transaction disappear (their IDs are not reused); removed elements are
// restored with their original IDs, labels, properties and adjacency.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	g := tx.g
	cs := tx.cs

	g.mu.Lock()
	// Pass 1: delete created edges (frees adjacency of created vertices;
	// edges created-and-removed are already gone).
	for _, d := range cs.edges {
		if d.created && !d.dropped {
			g.removeEdgeLocked(d.E)
		}
	}
	// Pass 2: vertices — delete created, restore removed and modified.
	for _, d := range cs.vertices {
		if d.dropped {
			continue
		}
		v := d.V
		switch {
		case d.created:
			delete(g.vertices, v.ID)
			delete(g.out, v.ID)
			delete(g.in, v.ID)
			for _, l := range v.labels {
				g.unindexLabel(v.ID, l)
			}
		default:
			// Restore pre-tx properties and labels on the object first.
			for k, old := range d.oldProps {
				if old.IsNull() {
					delete(v.props, k)
				} else {
					v.props[k] = old
				}
			}
			if d.labelsChanged {
				if !d.removed {
					for _, l := range v.labels {
						g.unindexLabel(v.ID, l)
					}
				}
				v.labels = append([]string(nil), d.oldLabels...)
			}
			if d.removed {
				g.vertices[v.ID] = v
			}
			if d.removed || d.labelsChanged {
				for _, l := range v.labels {
					g.indexLabel(v, l)
				}
			}
		}
	}
	// Pass 3: edges — restore removed and modified (endpoints exist again).
	for _, d := range cs.edges {
		if d.dropped || d.created {
			continue
		}
		e := d.E
		for k, old := range d.oldProps {
			if old.IsNull() {
				delete(e.props, k)
			} else {
				e.props[k] = old
			}
		}
		if d.removed {
			g.edges[e.ID] = e
			m := g.byType[e.Type]
			if m == nil {
				m = make(map[ID]*Edge)
				g.byType[e.Type] = m
			}
			m[e.ID] = e
			g.linkEdgeLocked(e)
		}
	}
	g.mu.Unlock()

	g.wmu.Unlock()
	return nil
}

// AddVertex adds a vertex with the given labels and properties and
// returns its ID. Null-valued properties are ignored; labels are
// deduplicated and sorted. AddVertex panics on a finished transaction
// (it has no error return; the other mutators return ErrTxDone).
func (tx *Tx) AddVertex(labels []string, props map[string]value.Value) ID {
	if tx.done {
		panic("graph: AddVertex on a finished transaction")
	}
	g := tx.g
	g.mu.Lock()
	v := g.addVertexLocked(labels, props)
	g.mu.Unlock()
	tx.cs.recordVertexAdded(v)
	return v.ID
}

// AddEdge adds a typed edge between existing vertices and returns its ID.
// A failed operation does not abort the transaction.
func (tx *Tx) AddEdge(src, trg ID, typ string, props map[string]value.Value) (ID, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	e, err := g.addEdgeLocked(src, trg, typ, props)
	g.mu.Unlock()
	if err != nil {
		return 0, err
	}
	tx.cs.recordEdgeAdded(e)
	return e.ID, nil
}

// RemoveEdge removes the edge with the given ID.
func (tx *Tx) RemoveEdge(id ID) error {
	if tx.done {
		return ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	e, ok := g.edges[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: remove edge: edge %d does not exist", id)
	}
	g.removeEdgeLocked(e)
	g.mu.Unlock()
	tx.cs.recordEdgeRemoved(e)
	return nil
}

// RemoveVertex removes the vertex and all its incident edges.
func (tx *Tx) RemoveVertex(id ID) error {
	if tx.done {
		return ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	v, ok := g.vertices[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: remove vertex: vertex %d does not exist", id)
	}
	incident := make(map[ID]*Edge)
	for _, e := range g.out[id].edges("") {
		incident[e.ID] = e
	}
	for _, e := range g.in[id].edges("") {
		incident[e.ID] = e
	}
	ids := make([]ID, 0, len(incident))
	for eid := range incident {
		ids = append(ids, eid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, eid := range ids {
		g.removeEdgeLocked(incident[eid])
	}
	delete(g.vertices, id)
	delete(g.out, id)
	delete(g.in, id)
	for _, l := range v.labels {
		g.unindexLabel(id, l)
	}
	g.mu.Unlock()

	for _, eid := range ids {
		tx.cs.recordEdgeRemoved(incident[eid])
	}
	tx.cs.recordVertexRemoved(v)
	return nil
}

// SetVertexProperty sets (or, with a null value, removes) a vertex
// property. Writing an unchanged value records nothing.
func (tx *Tx) SetVertexProperty(id ID, key string, val value.Value) error {
	if tx.done {
		return ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	v, ok := g.vertices[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: set vertex property: vertex %d does not exist", id)
	}
	old := v.Prop(key)
	if sameStoredValue(old, val) {
		g.mu.Unlock()
		return nil
	}
	if val.IsNull() {
		delete(v.props, key)
	} else {
		v.props[key] = val
	}
	g.mu.Unlock()
	tx.cs.recordVertexProp(v, key, old)
	return nil
}

// SetEdgeProperty sets (or, with a null value, removes) an edge property.
func (tx *Tx) SetEdgeProperty(id ID, key string, val value.Value) error {
	if tx.done {
		return ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	e, ok := g.edges[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: set edge property: edge %d does not exist", id)
	}
	old := e.Prop(key)
	if sameStoredValue(old, val) {
		g.mu.Unlock()
		return nil
	}
	if val.IsNull() {
		delete(e.props, key)
	} else {
		e.props[key] = val
	}
	g.mu.Unlock()
	tx.cs.recordEdgeProp(e, key, old)
	return nil
}

// AddVertexLabel adds a label to an existing vertex. Adding an existing
// label is a no-op.
func (tx *Tx) AddVertexLabel(id ID, label string) error {
	if tx.done {
		return ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	v, ok := g.vertices[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: add label: vertex %d does not exist", id)
	}
	if v.HasLabel(label) {
		g.mu.Unlock()
		return nil
	}
	v.labels = append(v.labels, label)
	sort.Strings(v.labels)
	g.indexLabel(v, label)
	g.mu.Unlock()
	tx.cs.recordVertexLabel(v, label, true)
	return nil
}

// RemoveVertexLabel removes a label from an existing vertex. Removing an
// absent label is a no-op.
func (tx *Tx) RemoveVertexLabel(id ID, label string) error {
	if tx.done {
		return ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	v, ok := g.vertices[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: remove label: vertex %d does not exist", id)
	}
	if !v.HasLabel(label) {
		g.mu.Unlock()
		return nil
	}
	i := sort.SearchStrings(v.labels, label)
	v.labels = append(v.labels[:i], v.labels[i+1:]...)
	g.unindexLabel(id, label)
	g.mu.Unlock()
	tx.cs.recordVertexLabel(v, label, false)
	return nil
}
