package graph

import (
	"fmt"
	"sort"

	"pgiv/internal/value"
)

// Op is one element-level operation of a committed transaction in its
// durable wire form: the unit the write-ahead log records and recovery
// replays. A commit's coalesced ChangeSet lowers to a sequence of Ops
// (OpsFromChangeSet) in the same canonical order AdaptEvents uses, so
// replaying them through a normal transaction (ApplyReplay) reproduces
// both the post-commit store state and — because the replayed commit
// dispatches an equivalent ChangeSet — the exact delta batches every
// downstream consumer saw the first time.
//
// Kinds: "av" add vertex (explicit ID, final labels and properties),
// "rv" remove vertex, "ae" add edge (explicit ID), "re" remove edge,
// "vl" set vertex label set (final, applied as a diff), "vp"/"ep" set a
// vertex/edge property (Val nil removes the key).
type Op struct {
	Kind   string               `json:"k"`
	ID     ID                   `json:"id,omitempty"`
	Src    ID                   `json:"src,omitempty"`
	Trg    ID                   `json:"trg,omitempty"`
	Type   string               `json:"type,omitempty"`
	Key    string               `json:"key,omitempty"`
	Labels []string             `json:"labels,omitempty"`
	Props  map[string]jsonValue `json:"props,omitempty"`
	Val    *jsonValue           `json:"val,omitempty"`
}

func encodeProps(keys []string, get func(string) value.Value) (map[string]jsonValue, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	m := make(map[string]jsonValue, len(keys))
	for _, k := range keys {
		jv, err := encodeValue(get(k))
		if err != nil {
			return nil, fmt.Errorf("property %s: %w", k, err)
		}
		m[k] = jv
	}
	return m, nil
}

func decodeProps(m map[string]jsonValue) (map[string]value.Value, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[string]value.Value, len(m))
	for k, jv := range m {
		v, err := decodeValue(jv)
		if err != nil {
			return nil, fmt.Errorf("property %s: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// OpsFromChangeSet lowers a normalized, committed ChangeSet to its
// durable operation sequence, in the canonical replay order AdaptEvents
// established: edge removals, vertex removals, vertex creations, vertex
// label/property transitions, edge creations, edge property
// transitions. The order guarantees every Op's preconditions hold when
// replayed front to back (an edge removal precedes its endpoint's
// removal; endpoints exist before an edge creation).
func OpsFromChangeSet(cs *ChangeSet) ([]Op, error) {
	var ops []Op
	for _, d := range cs.Edges() {
		if d.Removed() {
			ops = append(ops, Op{Kind: "re", ID: d.E.ID})
		}
	}
	for _, d := range cs.Vertices() {
		if d.Removed() {
			ops = append(ops, Op{Kind: "rv", ID: d.V.ID})
		}
	}
	for _, d := range cs.Vertices() {
		switch {
		case d.Created():
			props, err := encodeProps(d.V.PropKeys(), d.V.Prop)
			if err != nil {
				return nil, fmt.Errorf("graph: log vertex %d: %w", d.V.ID, err)
			}
			ops = append(ops, Op{Kind: "av", ID: d.V.ID, Labels: d.V.Labels(), Props: props})
		case !d.Removed():
			if d.LabelsChanged() {
				ops = append(ops, Op{Kind: "vl", ID: d.V.ID, Labels: d.V.Labels()})
			}
			for _, k := range d.ChangedProps() {
				op := Op{Kind: "vp", ID: d.V.ID, Key: k}
				if cur := d.V.Prop(k); !cur.IsNull() {
					jv, err := encodeValue(cur)
					if err != nil {
						return nil, fmt.Errorf("graph: log vertex %d property %s: %w", d.V.ID, k, err)
					}
					op.Val = &jv
				}
				ops = append(ops, op)
			}
		}
	}
	for _, d := range cs.Edges() {
		switch {
		case d.Created():
			props, err := encodeProps(d.E.PropKeys(), d.E.Prop)
			if err != nil {
				return nil, fmt.Errorf("graph: log edge %d: %w", d.E.ID, err)
			}
			ops = append(ops, Op{Kind: "ae", ID: d.E.ID, Src: d.E.Src, Trg: d.E.Trg, Type: d.E.Type, Props: props})
		case !d.Removed():
			for _, k := range d.ChangedProps() {
				op := Op{Kind: "ep", ID: d.E.ID, Key: k}
				if cur := d.E.Prop(k); !cur.IsNull() {
					jv, err := encodeValue(cur)
					if err != nil {
						return nil, fmt.Errorf("graph: log edge %d property %s: %w", d.E.ID, k, err)
					}
					op.Val = &jv
				}
				ops = append(ops, op)
			}
		}
	}
	return ops, nil
}

// ApplyReplay re-applies one logged commit as a single transaction. The
// operations run through the normal Tx mutation path, so the commit
// dispatches a coalesced ChangeSet to listeners exactly like the
// original did; nextV/nextE restore the ID allocators to their logged
// post-commit values (elements created and dropped inside the original
// transaction advanced them without leaving Ops behind).
func (g *Graph) ApplyReplay(ops []Op, nextV, nextE ID) error {
	return g.Batch(func(tx *Tx) error {
		for i := range ops {
			if err := tx.applyOp(&ops[i]); err != nil {
				return fmt.Errorf("graph: replay op %d (%s %d): %w", i, ops[i].Kind, ops[i].ID, err)
			}
		}
		tx.setNextIDs(nextV, nextE)
		return nil
	})
}

func (tx *Tx) applyOp(op *Op) error {
	switch op.Kind {
	case "re":
		return tx.RemoveEdge(op.ID)
	case "rv":
		// Incident-edge removals always precede the vertex removal in the
		// op sequence, so no implicit cascade happens here.
		return tx.RemoveVertex(op.ID)
	case "av":
		props, err := decodeProps(op.Props)
		if err != nil {
			return err
		}
		return tx.addVertexWithID(op.ID, op.Labels, props)
	case "ae":
		props, err := decodeProps(op.Props)
		if err != nil {
			return err
		}
		return tx.addEdgeWithID(op.ID, op.Src, op.Trg, op.Type, props)
	case "vl":
		return tx.setVertexLabels(op.ID, op.Labels)
	case "vp", "ep":
		val := value.Null
		if op.Val != nil {
			v, err := decodeValue(*op.Val)
			if err != nil {
				return err
			}
			val = v
		}
		if op.Kind == "vp" {
			return tx.SetVertexProperty(op.ID, op.Key, val)
		}
		return tx.SetEdgeProperty(op.ID, op.Key, val)
	}
	return fmt.Errorf("unknown op kind %q", op.Kind)
}

// addVertexWithID is AddVertex with a caller-chosen ID (recovery only).
func (tx *Tx) addVertexWithID(id ID, labels []string, props map[string]value.Value) error {
	if tx.done {
		return ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	if _, exists := g.vertices[id]; exists {
		g.mu.Unlock()
		return fmt.Errorf("vertex %d already exists", id)
	}
	v := &Vertex{ID: id, props: make(map[string]value.Value, len(props))}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			v.labels = append(v.labels, l)
		}
	}
	sort.Strings(v.labels)
	for k, p := range props {
		if !p.IsNull() {
			v.props[k] = p
		}
	}
	g.vertices[id] = v
	for _, l := range v.labels {
		g.indexLabel(v, l)
	}
	if id > g.nextVertexID {
		g.nextVertexID = id
	}
	g.mu.Unlock()
	tx.cs.recordVertexAdded(v)
	return nil
}

// addEdgeWithID is AddEdge with a caller-chosen ID (recovery only).
func (tx *Tx) addEdgeWithID(id, src, trg ID, typ string, props map[string]value.Value) error {
	if tx.done {
		return ErrTxDone
	}
	g := tx.g
	g.mu.Lock()
	if _, exists := g.edges[id]; exists {
		g.mu.Unlock()
		return fmt.Errorf("edge %d already exists", id)
	}
	if _, ok := g.vertices[src]; !ok {
		g.mu.Unlock()
		return fmt.Errorf("source vertex %d does not exist", src)
	}
	if _, ok := g.vertices[trg]; !ok {
		g.mu.Unlock()
		return fmt.Errorf("target vertex %d does not exist", trg)
	}
	e := &Edge{ID: id, Src: src, Trg: trg, Type: typ, props: make(map[string]value.Value, len(props))}
	for k, p := range props {
		if !p.IsNull() {
			e.props[k] = p
		}
	}
	g.edges[id] = e
	m := g.byType[typ]
	if m == nil {
		m = make(map[ID]*Edge)
		g.byType[typ] = m
	}
	m[id] = e
	g.linkEdgeLocked(e)
	if id > g.nextEdgeID {
		g.nextEdgeID = id
	}
	g.mu.Unlock()
	tx.cs.recordEdgeAdded(e)
	return nil
}

// setVertexLabels diffs the vertex's current label set against the
// target (a logged final set) and applies additions and removals through
// the normal label mutators.
func (tx *Tx) setVertexLabels(id ID, target []string) error {
	v, ok := tx.g.VertexByID(id)
	if !ok {
		return fmt.Errorf("vertex %d does not exist", id)
	}
	want := make(map[string]bool, len(target))
	for _, l := range target {
		want[l] = true
	}
	for _, l := range append([]string(nil), v.Labels()...) {
		if !want[l] {
			if err := tx.RemoveVertexLabel(id, l); err != nil {
				return err
			}
		}
	}
	for _, l := range target {
		if !v.HasLabel(l) {
			if err := tx.AddVertexLabel(id, l); err != nil {
				return err
			}
		}
	}
	return nil
}

// setNextIDs raises the ID allocators to at least the given values
// (recovery only; allocators never move backwards).
func (tx *Tx) setNextIDs(nextV, nextE ID) {
	g := tx.g
	g.mu.Lock()
	if nextV > g.nextVertexID {
		g.nextVertexID = nextV
	}
	if nextE > g.nextEdgeID {
		g.nextEdgeID = nextE
	}
	g.mu.Unlock()
}

// NextIDs returns the current ID allocator positions (the IDs most
// recently assigned; the next vertex gets v+1).
func (g *Graph) NextIDs() (v, e ID) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nextVertexID, g.nextEdgeID
}
