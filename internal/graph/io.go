package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pgiv/internal/value"
)

// jsonValue is the JSON wire form of a property value. Only the kinds
// that appear in property maps are supported (atoms and lists of atoms);
// vertex/edge references and paths are query-result values, not storable
// properties.
type jsonValue struct {
	Kind string      `json:"kind"`
	V    interface{} `json:"v"`
}

func encodeValue(v value.Value) (jsonValue, error) {
	switch v.Kind() {
	case value.KindBool:
		return jsonValue{Kind: "bool", V: v.Bool()}, nil
	case value.KindInt:
		return jsonValue{Kind: "int", V: v.Int()}, nil
	case value.KindFloat:
		return jsonValue{Kind: "float", V: v.Float()}, nil
	case value.KindString:
		return jsonValue{Kind: "string", V: v.Str()}, nil
	case value.KindList:
		elems := make([]jsonValue, len(v.List()))
		for i, e := range v.List() {
			je, err := encodeValue(e)
			if err != nil {
				return jsonValue{}, err
			}
			elems[i] = je
		}
		return jsonValue{Kind: "list", V: elems}, nil
	}
	return jsonValue{}, fmt.Errorf("graph: property value kind %s is not serialisable", v.Kind())
}

func decodeValue(jv jsonValue) (value.Value, error) {
	switch jv.Kind {
	case "bool":
		b, ok := jv.V.(bool)
		if !ok {
			return value.Null, fmt.Errorf("graph: bool value malformed")
		}
		return value.NewBool(b), nil
	case "int":
		// encoding/json decodes numbers as float64.
		f, ok := jv.V.(float64)
		if !ok {
			return value.Null, fmt.Errorf("graph: int value malformed")
		}
		return value.NewInt(int64(f)), nil
	case "float":
		f, ok := jv.V.(float64)
		if !ok {
			return value.Null, fmt.Errorf("graph: float value malformed")
		}
		return value.NewFloat(f), nil
	case "string":
		s, ok := jv.V.(string)
		if !ok {
			return value.Null, fmt.Errorf("graph: string value malformed")
		}
		return value.NewString(s), nil
	case "list":
		raw, ok := jv.V.([]interface{})
		if !ok {
			return value.Null, fmt.Errorf("graph: list value malformed")
		}
		elems := make([]value.Value, len(raw))
		for i, r := range raw {
			b, err := json.Marshal(r)
			if err != nil {
				return value.Null, err
			}
			var sub jsonValue
			if err := json.Unmarshal(b, &sub); err != nil {
				return value.Null, err
			}
			ev, err := decodeValue(sub)
			if err != nil {
				return value.Null, err
			}
			elems[i] = ev
		}
		return value.NewList(elems), nil
	}
	return value.Null, fmt.Errorf("graph: unknown value kind %q", jv.Kind)
}

type jsonVertex struct {
	ID     ID                   `json:"id"`
	Labels []string             `json:"labels,omitempty"`
	Props  map[string]jsonValue `json:"props,omitempty"`
}

type jsonEdge struct {
	ID    ID                   `json:"id"`
	Src   ID                   `json:"src"`
	Trg   ID                   `json:"trg"`
	Type  string               `json:"type"`
	Props map[string]jsonValue `json:"props,omitempty"`
}

type jsonGraph struct {
	Vertices []jsonVertex `json:"vertices"`
	Edges    []jsonEdge   `json:"edges"`
}

// jsonState is the recovery snapshot form: the graph contents plus the
// identity that Import discards — ID allocator positions and the commit
// epoch. Field order (and json's sorted map keys) make the encoding
// deterministic, so equal states produce equal bytes.
type jsonState struct {
	jsonGraph
	NextVertexID ID     `json:"next_vertex_id"`
	NextEdgeID   ID     `json:"next_edge_id"`
	Epoch        uint64 `json:"epoch"`
}

// Export writes a JSON snapshot of the graph, deterministically ordered
// by ID.
func (g *Graph) Export(w io.Writer) error {
	jg, err := g.exportContents()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ExportState writes a deterministic JSON snapshot that RestoreState can
// load back byte-exactly: contents plus ID allocators plus epoch. This
// is the checkpoint form — unlike Export/Import, a restore reproduces
// the graph's identity, not just an isomorphic copy.
func (g *Graph) ExportState(w io.Writer) error {
	jg, err := g.exportContents()
	if err != nil {
		return err
	}
	st := jsonState{jsonGraph: jg, Epoch: g.epoch.Load()}
	g.mu.RLock()
	st.NextVertexID, st.NextEdgeID = g.nextVertexID, g.nextEdgeID
	g.mu.RUnlock()
	return json.NewEncoder(w).Encode(st)
}

// Digest returns the SHA-256 hex digest of the graph's deterministic
// state snapshot (contents, ID allocators, epoch). Equal digests mean
// byte-identical state — the crash-recovery oracle check.
func (g *Graph) Digest() (string, error) {
	h := sha256.New()
	if err := g.ExportState(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RestoreState loads an ExportState snapshot into an empty graph,
// restoring IDs, allocators and epoch exactly. No transaction runs and
// no listener is notified: the caller re-attaches downstream state (view
// networks, MVCC) afterwards. Restoring into a non-empty graph is an
// error.
func (g *Graph) RestoreState(r io.Reader) error {
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		return fmt.Errorf("graph: restore requires an empty graph")
	}
	var st jsonState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("graph: restore: %w", err)
	}
	g.wmu.Lock()
	defer g.wmu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, jv := range st.Vertices {
		if _, exists := g.vertices[jv.ID]; exists {
			return fmt.Errorf("graph: restore: duplicate vertex %d", jv.ID)
		}
		v := &Vertex{ID: jv.ID, props: make(map[string]value.Value, len(jv.Props))}
		v.labels = append([]string(nil), jv.Labels...)
		sort.Strings(v.labels)
		for k, p := range jv.Props {
			dv, err := decodeValue(p)
			if err != nil {
				return fmt.Errorf("graph: restore vertex %d property %s: %w", jv.ID, k, err)
			}
			v.props[k] = dv
		}
		g.vertices[v.ID] = v
		for _, l := range v.labels {
			g.indexLabel(v, l)
		}
		if v.ID > g.nextVertexID {
			g.nextVertexID = v.ID
		}
	}
	for _, je := range st.Edges {
		if _, exists := g.edges[je.ID]; exists {
			return fmt.Errorf("graph: restore: duplicate edge %d", je.ID)
		}
		if _, ok := g.vertices[je.Src]; !ok {
			return fmt.Errorf("graph: restore edge %d: unknown source vertex %d", je.ID, je.Src)
		}
		if _, ok := g.vertices[je.Trg]; !ok {
			return fmt.Errorf("graph: restore edge %d: unknown target vertex %d", je.ID, je.Trg)
		}
		e := &Edge{ID: je.ID, Src: je.Src, Trg: je.Trg, Type: je.Type, props: make(map[string]value.Value, len(je.Props))}
		for k, p := range je.Props {
			dv, err := decodeValue(p)
			if err != nil {
				return fmt.Errorf("graph: restore edge %d property %s: %w", je.ID, k, err)
			}
			e.props[k] = dv
		}
		g.edges[e.ID] = e
		m := g.byType[e.Type]
		if m == nil {
			m = make(map[ID]*Edge)
			g.byType[e.Type] = m
		}
		m[e.ID] = e
		g.linkEdgeLocked(e)
		if e.ID > g.nextEdgeID {
			g.nextEdgeID = e.ID
		}
	}
	if st.NextVertexID > g.nextVertexID {
		g.nextVertexID = st.NextVertexID
	}
	if st.NextEdgeID > g.nextEdgeID {
		g.nextEdgeID = st.NextEdgeID
	}
	g.epoch.Store(st.Epoch)
	return nil
}

// exportContents builds the deterministic JSON contents form (vertices
// and edges sorted by ID).
func (g *Graph) exportContents() (jsonGraph, error) {
	g.mu.RLock()
	jg := jsonGraph{}
	vids := make([]ID, 0, len(g.vertices))
	for id := range g.vertices {
		vids = append(vids, id)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	for _, id := range vids {
		v := g.vertices[id]
		jv := jsonVertex{ID: v.ID, Labels: v.labels}
		if len(v.props) > 0 {
			jv.Props = make(map[string]jsonValue, len(v.props))
			for k, p := range v.props {
				ep, err := encodeValue(p)
				if err != nil {
					g.mu.RUnlock()
					return jsonGraph{}, fmt.Errorf("vertex %d property %s: %w", v.ID, k, err)
				}
				jv.Props[k] = ep
			}
		}
		jg.Vertices = append(jg.Vertices, jv)
	}
	eids := make([]ID, 0, len(g.edges))
	for id := range g.edges {
		eids = append(eids, id)
	}
	sort.Slice(eids, func(i, j int) bool { return eids[i] < eids[j] })
	for _, id := range eids {
		e := g.edges[id]
		je := jsonEdge{ID: e.ID, Src: e.Src, Trg: e.Trg, Type: e.Type}
		if len(e.props) > 0 {
			je.Props = make(map[string]jsonValue, len(e.props))
			for k, p := range e.props {
				ep, err := encodeValue(p)
				if err != nil {
					g.mu.RUnlock()
					return jsonGraph{}, fmt.Errorf("edge %d property %s: %w", e.ID, k, err)
				}
				je.Props[k] = ep
			}
		}
		jg.Edges = append(jg.Edges, je)
	}
	g.mu.RUnlock()
	return jg, nil
}

// Import reads a JSON snapshot into an empty graph, preserving IDs. The
// whole load is one transaction: views registered beforehand are
// populated by a single coalesced ChangeSet at commit, and a malformed
// snapshot rolls the graph back to empty. Importing into a non-empty
// graph is an error.
func (g *Graph) Import(r io.Reader) error {
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		return fmt.Errorf("graph: import requires an empty graph")
	}
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return fmt.Errorf("graph: import: %w", err)
	}
	return g.Batch(func(tx *Tx) error {
		remap := make(map[ID]ID, len(jg.Vertices))
		for _, jv := range jg.Vertices {
			props := make(map[string]value.Value, len(jv.Props))
			for k, p := range jv.Props {
				dv, err := decodeValue(p)
				if err != nil {
					return fmt.Errorf("graph: import vertex %d property %s: %w", jv.ID, k, err)
				}
				props[k] = dv
			}
			remap[jv.ID] = tx.AddVertex(jv.Labels, props)
		}
		for _, je := range jg.Edges {
			props := make(map[string]value.Value, len(je.Props))
			for k, p := range je.Props {
				dv, err := decodeValue(p)
				if err != nil {
					return fmt.Errorf("graph: import edge %d property %s: %w", je.ID, k, err)
				}
				props[k] = dv
			}
			src, ok := remap[je.Src]
			if !ok {
				return fmt.Errorf("graph: import edge %d references unknown vertex %d", je.ID, je.Src)
			}
			trg, ok := remap[je.Trg]
			if !ok {
				return fmt.Errorf("graph: import edge %d references unknown vertex %d", je.ID, je.Trg)
			}
			if _, err := tx.AddEdge(src, trg, je.Type, props); err != nil {
				return fmt.Errorf("graph: import edge %d: %w", je.ID, err)
			}
		}
		return nil
	})
}
