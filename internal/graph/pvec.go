package graph

// pvec is a persistent (copy-on-write) sparse vector: a 32-ary radix trie
// keyed by non-negative int64 IDs. It is the building block of the MVCC
// versioned store: every update path-copies the O(log32 n) nodes from the
// root to the touched slot and leaves every other node shared with the
// previous version, so a reader holding an old root keeps traversing an
// immutable snapshot while commits publish new roots.
//
// A pvec value is immutable once published: set and del return a new pvec
// and never modify nodes reachable from existing ones. The zero value is
// the empty vector. Nodes are never mutated after they become reachable
// from a returned pvec, which is what makes lock-free concurrent readers
// safe.

const (
	pvecBits = 5
	pvecFan  = 1 << pvecBits
	pvecMask = pvecFan - 1
)

// pnode is one trie node. Interior nodes (level shift > 0) populate kids;
// leaf nodes (shift == 0) populate vals/bits. Leaves dominate the node
// population, so the value array is inline and the child array is a slice
// allocated only for interior nodes.
type pnode[T any] struct {
	kids []*pnode[T] // len pvecFan on interior levels, nil at leaves
	vals [pvecFan]T  // leaf payload
	bits uint32      // leaf occupancy bitmap
}

// clone shallow-copies the node (vals inline; kids into a fresh array) so
// the copy can diverge without touching the shared original.
func (n *pnode[T]) clone() *pnode[T] {
	c := *n
	if n.kids != nil {
		c.kids = make([]*pnode[T], pvecFan)
		copy(c.kids, n.kids)
	}
	return &c
}

// pvec is the persistent vector handle: a root plus the bit position of
// the root level's digit. Copying the struct copies the version.
type pvec[T any] struct {
	root  *pnode[T]
	shift uint
	count int
}

// len returns the number of stored entries.
func (p pvec[T]) len() int { return p.count }

// get returns the value stored at k. Safe for concurrent use with
// publishers of newer versions.
func (p pvec[T]) get(k ID) (T, bool) {
	var zero T
	if p.root == nil || k < 0 || k>>(p.shift+pvecBits) != 0 {
		return zero, false
	}
	n := p.root
	for sh := p.shift; sh > 0; sh -= pvecBits {
		n = n.kids[(k>>sh)&pvecMask]
		if n == nil {
			return zero, false
		}
	}
	i := k & pvecMask
	if n.bits&(1<<uint(i)) == 0 {
		return zero, false
	}
	return n.vals[i], true
}

// has reports whether k is present.
func (p pvec[T]) has(k ID) bool {
	_, ok := p.get(k)
	return ok
}

// set returns a version with k bound to v. The receiver is unchanged.
func (p pvec[T]) set(k ID, v T) pvec[T] {
	if k < 0 {
		return p
	}
	if p.root == nil {
		p.root = &pnode[T]{}
		p.shift = 0
	}
	for k>>(p.shift+pvecBits) != 0 {
		r := &pnode[T]{kids: make([]*pnode[T], pvecFan)}
		r.kids[0] = p.root
		p.root = r
		p.shift += pvecBits
	}
	p.root = p.root.setRec(p.shift, k, v, &p.count)
	return p
}

func (n *pnode[T]) setRec(sh uint, k ID, v T, count *int) *pnode[T] {
	var c *pnode[T]
	switch {
	case n == nil && sh == 0:
		c = &pnode[T]{}
	case n == nil:
		c = &pnode[T]{kids: make([]*pnode[T], pvecFan)}
	default:
		c = n.clone()
	}
	if sh == 0 {
		i := k & pvecMask
		if c.bits&(1<<uint(i)) == 0 {
			c.bits |= 1 << uint(i)
			*count++
		}
		c.vals[i] = v
		return c
	}
	i := (k >> sh) & pvecMask
	c.kids[i] = c.kids[i].setRec(sh-pvecBits, k, v, count)
	return c
}

// del returns a version without k. Emptied subtrees are pruned so a
// released version's exclusive nodes are garbage-collectable.
func (p pvec[T]) del(k ID) pvec[T] {
	if p.root == nil || k < 0 || k>>(p.shift+pvecBits) != 0 {
		return p
	}
	r, deleted := p.root.delRec(p.shift, k)
	if deleted {
		p.count--
		p.root = r
		if r == nil {
			p.shift = 0
		}
	}
	return p
}

func (n *pnode[T]) delRec(sh uint, k ID) (*pnode[T], bool) {
	if n == nil {
		return nil, false
	}
	if sh == 0 {
		i := k & pvecMask
		if n.bits&(1<<uint(i)) == 0 {
			return n, false
		}
		if n.bits == 1<<uint(i) {
			return nil, true
		}
		c := n.clone()
		c.bits &^= 1 << uint(i)
		var zero T
		c.vals[i] = zero
		return c, true
	}
	i := (k >> sh) & pvecMask
	nk, deleted := n.kids[i].delRec(sh-pvecBits, k)
	if !deleted {
		return n, false
	}
	if nk == nil {
		empty := true
		for j, kid := range n.kids {
			if ID(j) != i && kid != nil {
				empty = false
				break
			}
		}
		if empty {
			return nil, true
		}
	}
	c := n.clone()
	c.kids[i] = nk
	return c, true
}

// ascend invokes fn for every entry in increasing key order until fn
// returns false.
func (p pvec[T]) ascend(fn func(ID, T) bool) {
	if p.root != nil {
		p.root.ascendRec(p.shift, 0, fn)
	}
}

func (n *pnode[T]) ascendRec(sh uint, prefix ID, fn func(ID, T) bool) bool {
	if sh == 0 {
		for i := 0; i < pvecFan; i++ {
			if n.bits&(1<<uint(i)) != 0 {
				if !fn(prefix|ID(i), n.vals[i]) {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < pvecFan; i++ {
		if kid := n.kids[i]; kid != nil {
			if !kid.ascendRec(sh-pvecBits, prefix|ID(i)<<sh, fn) {
				return false
			}
		}
	}
	return true
}

// countNodes counts trie nodes reachable from this version that are not
// already in seen, adding them as it goes. Walking several versions with
// one seen set measures their structural sharing — the MVCC retained-
// memory accounting.
func (p pvec[T]) countNodes(seen map[any]bool) int {
	var walk func(n *pnode[T]) int
	walk = func(n *pnode[T]) int {
		if n == nil || seen[n] {
			return 0
		}
		seen[n] = true
		c := 1
		for _, kid := range n.kids {
			c += walk(kid)
		}
		return c
	}
	return walk(p.root)
}
