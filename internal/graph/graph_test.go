package graph

import (
	"fmt"
	"strings"
	"testing"

	"pgiv/internal/value"
)

// recorder captures events as strings for order-sensitive assertions. It
// implements the legacy EventListener and is subscribed through
// AdaptEvents, exercising the per-event migration adapter.
type recorder struct {
	events []string
}

func (r *recorder) VertexAdded(v *Vertex)   { r.events = append(r.events, fmt.Sprintf("+v%d", v.ID)) }
func (r *recorder) VertexRemoved(v *Vertex) { r.events = append(r.events, fmt.Sprintf("-v%d", v.ID)) }
func (r *recorder) EdgeAdded(e *Edge)       { r.events = append(r.events, fmt.Sprintf("+e%d", e.ID)) }
func (r *recorder) EdgeRemoved(e *Edge)     { r.events = append(r.events, fmt.Sprintf("-e%d", e.ID)) }
func (r *recorder) VertexLabelAdded(v *Vertex, l string) {
	r.events = append(r.events, fmt.Sprintf("+l%d:%s", v.ID, l))
}
func (r *recorder) VertexLabelRemoved(v *Vertex, l string) {
	r.events = append(r.events, fmt.Sprintf("-l%d:%s", v.ID, l))
}
func (r *recorder) VertexPropertyChanged(v *Vertex, k string, old value.Value) {
	r.events = append(r.events, fmt.Sprintf("pv%d:%s:%s->%s", v.ID, k, old, v.Prop(k)))
}
func (r *recorder) EdgePropertyChanged(e *Edge, k string, old value.Value) {
	r.events = append(r.events, fmt.Sprintf("pe%d:%s:%s->%s", e.ID, k, old, e.Prop(k)))
}

func (r *recorder) log() string { return strings.Join(r.events, " ") }

func TestVertexCRUD(t *testing.T) {
	g := New()
	id := g.AddVertex([]string{"B", "A", "A"}, map[string]value.Value{
		"x":    value.NewInt(1),
		"null": value.Null, // ignored
	})
	v, ok := g.VertexByID(id)
	if !ok {
		t.Fatal("vertex not found")
	}
	if got := fmt.Sprint(v.Labels()); got != "[A B]" {
		t.Errorf("labels = %s (want sorted, deduplicated)", got)
	}
	if !v.HasLabel("A") || v.HasLabel("C") {
		t.Error("HasLabel wrong")
	}
	if !value.Equal(v.Prop("x"), value.NewInt(1)) {
		t.Error("prop x wrong")
	}
	if !v.Prop("null").IsNull() || !v.Prop("missing").IsNull() {
		t.Error("null/missing props should read as null")
	}
	if g.NumVertices() != 1 {
		t.Error("NumVertices wrong")
	}
	if err := g.RemoveVertex(id); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Error("vertex not removed")
	}
	if err := g.RemoveVertex(id); err == nil {
		t.Error("double remove should fail")
	}
}

func TestEdgeCRUDAndAdjacency(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"A"}, nil)
	b := g.AddVertex([]string{"B"}, nil)
	if _, err := g.AddEdge(a, 999, "T", nil); err == nil {
		t.Error("edge to missing vertex should fail")
	}
	e1, err := g.AddEdge(a, b, "T", map[string]value.Value{"w": value.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g.AddEdge(a, a, "S", nil) // self-loop
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.OutEdges(a, "")); got != 2 {
		t.Errorf("out(a) = %d, want 2", got)
	}
	if got := len(g.OutEdges(a, "T")); got != 1 {
		t.Errorf("out(a, T) = %d, want 1", got)
	}
	if got := len(g.InEdges(a, "")); got != 1 {
		t.Errorf("in(a) = %d (self-loop), want 1", got)
	}
	if got := len(g.EdgesByType("T")); got != 1 {
		t.Errorf("edges T = %d", got)
	}
	if got := len(g.EdgesByType("")); got != 2 {
		t.Errorf("all edges = %d", got)
	}
	if err := g.RemoveEdge(e1); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.EdgeByID(e1); ok {
		t.Error("edge still present")
	}
	if got := len(g.OutEdges(a, "")); got != 1 {
		t.Errorf("out(a) after removal = %d", got)
	}
	_ = e2
	if got := fmt.Sprint(g.EdgeTypes()); got != "[S]" {
		t.Errorf("edge types = %s", got)
	}
}

func TestLabelIndex(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"X"}, nil)
	b := g.AddVertex([]string{"X", "Y"}, nil)
	if got := len(g.VerticesByLabel("X")); got != 2 {
		t.Errorf("X count = %d", got)
	}
	if got := len(g.VerticesByLabel("Y")); got != 1 {
		t.Errorf("Y count = %d", got)
	}
	if err := g.AddVertexLabel(a, "Y"); err != nil {
		t.Fatal(err)
	}
	if got := len(g.VerticesByLabel("Y")); got != 2 {
		t.Errorf("Y count after add = %d", got)
	}
	if err := g.RemoveVertexLabel(b, "Y"); err != nil {
		t.Fatal(err)
	}
	if got := len(g.VerticesByLabel("Y")); got != 1 {
		t.Errorf("Y count after remove = %d", got)
	}
	if got := fmt.Sprint(g.Labels()); got != "[X Y]" {
		t.Errorf("labels = %s", got)
	}
	// Removing the last holder of a label drops it from the index.
	if err := g.RemoveVertexLabel(a, "Y"); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(g.Labels()); got != "[X]" {
		t.Errorf("labels = %s", got)
	}
}

func TestEventOrderOnVertexRemoval(t *testing.T) {
	g := New()
	rec := &recorder{}
	a := g.AddVertex([]string{"A"}, nil)
	b := g.AddVertex([]string{"B"}, nil)
	e1, _ := g.AddEdge(a, b, "T", nil)
	e2, _ := g.AddEdge(b, a, "T", nil)
	g.Subscribe(AdaptEvents(rec))

	// Listeners must be able to resolve the endpoints of removed edges
	// through the changeset.
	check := &endpointChecker{g: g, t: t}
	g.Subscribe(check)

	if err := g.RemoveVertex(a); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("-e%d -e%d -v%d", e1, e2, a)
	if rec.log() != want {
		t.Errorf("event order = %q, want %q", rec.log(), want)
	}
}

// endpointChecker asserts that a removed edge's endpoints are resolvable
// when the changeset is delivered: via the store for surviving vertices,
// via the vertex delta for ones removed in the same transaction.
type endpointChecker struct {
	g *Graph
	t *testing.T
}

func (c *endpointChecker) Apply(cs *ChangeSet) {
	resolve := func(id ID) bool {
		if d := cs.VertexDelta(id); d != nil && d.V != nil {
			return true
		}
		_, ok := c.g.VertexByID(id)
		return ok
	}
	for _, d := range cs.Edges() {
		if !d.Removed() {
			continue
		}
		if !resolve(d.E.Src) {
			c.t.Errorf("edge %d source %d unresolvable during removal", d.E.ID, d.E.Src)
		}
		if !resolve(d.E.Trg) {
			c.t.Errorf("edge %d target %d unresolvable during removal", d.E.ID, d.E.Trg)
		}
	}
}

func TestPropertyEvents(t *testing.T) {
	g := New()
	rec := &recorder{}
	id := g.AddVertex([]string{"A"}, map[string]value.Value{"x": value.NewInt(1)})
	g.Subscribe(AdaptEvents(rec))

	if err := g.SetVertexProperty(id, "x", value.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	// Setting to the same value emits nothing.
	if err := g.SetVertexProperty(id, "x", value.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	// Setting to null deletes.
	if err := g.SetVertexProperty(id, "x", value.Null); err != nil {
		t.Fatal(err)
	}
	v, _ := g.VertexByID(id)
	if !v.Prop("x").IsNull() {
		t.Error("property not deleted")
	}
	want := fmt.Sprintf("pv%d:x:1->2 pv%d:x:2->null", id, id)
	if rec.log() != want {
		t.Errorf("events = %q, want %q", rec.log(), want)
	}
	if len(v.PropKeys()) != 0 {
		t.Error("PropKeys should be empty")
	}
}

func TestLabelEventNoOps(t *testing.T) {
	g := New()
	rec := &recorder{}
	id := g.AddVertex([]string{"A"}, nil)
	g.Subscribe(AdaptEvents(rec))
	if err := g.AddVertexLabel(id, "A"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveVertexLabel(id, "Z"); err != nil {
		t.Fatal(err)
	}
	if rec.log() != "" {
		t.Errorf("no-op label ops emitted events: %q", rec.log())
	}
}

func TestUnsubscribe(t *testing.T) {
	g := New()
	rec := &recorder{}
	g.Subscribe(AdaptEvents(rec))
	g.AddVertex(nil, nil)
	g.Unsubscribe(AdaptEvents(rec)) // adapter values of the same listener compare equal
	g.AddVertex(nil, nil)
	if len(rec.events) != 1 {
		t.Errorf("events after unsubscribe = %v", rec.events)
	}
}

func TestErrorPaths(t *testing.T) {
	g := New()
	if err := g.SetVertexProperty(1, "x", value.NewInt(1)); err == nil {
		t.Error("set prop on missing vertex should fail")
	}
	if err := g.SetEdgeProperty(1, "x", value.NewInt(1)); err == nil {
		t.Error("set prop on missing edge should fail")
	}
	if err := g.AddVertexLabel(1, "L"); err == nil {
		t.Error("label on missing vertex should fail")
	}
	if err := g.RemoveVertexLabel(1, "L"); err == nil {
		t.Error("unlabel on missing vertex should fail")
	}
	if err := g.RemoveEdge(1); err == nil {
		t.Error("remove missing edge should fail")
	}
}
