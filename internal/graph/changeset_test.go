package graph

import (
	"fmt"
	"testing"

	"pgiv/internal/value"
)

// capture stores the changesets a listener receives.
type capture struct {
	sets []*ChangeSet
}

func (c *capture) Apply(cs *ChangeSet) { c.sets = append(c.sets, cs) }

func TestTxAddRemoveSameElementNetsOut(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"A"}, nil)
	b := g.AddVertex([]string{"B"}, nil)
	cap := &capture{}
	g.Subscribe(cap)

	err := g.Batch(func(tx *Tx) error {
		e, err := tx.AddEdge(a, b, "T", nil)
		if err != nil {
			return err
		}
		v := tx.AddVertex([]string{"C"}, map[string]value.Value{"x": value.NewInt(1)})
		if err := tx.SetVertexProperty(v, "x", value.NewInt(2)); err != nil {
			return err
		}
		if err := tx.RemoveEdge(e); err != nil {
			return err
		}
		return tx.RemoveVertex(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.sets) != 0 {
		t.Fatalf("self-cancelling tx dispatched %d changesets, want 0", len(cap.sets))
	}
	if g.NumVertices() != 2 || g.NumEdges() != 0 {
		t.Fatalf("graph state = %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestTxPropertyFlipFlopCoalesces(t *testing.T) {
	g := New()
	id := g.AddVertex([]string{"A"}, map[string]value.Value{"x": value.NewInt(1)})
	cap := &capture{}
	g.Subscribe(cap)

	// Flip-flop back to the original value: nets out entirely.
	if err := g.Batch(func(tx *Tx) error {
		_ = tx.SetVertexProperty(id, "x", value.NewInt(2))
		_ = tx.SetVertexProperty(id, "x", value.NewInt(1))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cap.sets) != 0 {
		t.Fatalf("flip-flop dispatched %d changesets, want 0", len(cap.sets))
	}

	// Repeated writes keep first-old / last-new.
	if err := g.Batch(func(tx *Tx) error {
		_ = tx.SetVertexProperty(id, "x", value.NewInt(2))
		_ = tx.SetVertexProperty(id, "x", value.NewInt(3))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cap.sets) != 1 {
		t.Fatalf("dispatched %d changesets, want 1", len(cap.sets))
	}
	d := cap.sets[0].VertexDelta(id)
	if d == nil {
		t.Fatal("vertex delta missing")
	}
	if got := d.BeforeProp("x"); !value.Equal(got, value.NewInt(1)) {
		t.Errorf("BeforeProp = %s, want first old value 1", got)
	}
	if got := d.V.Prop("x"); !value.Equal(got, value.NewInt(3)) {
		t.Errorf("current prop = %s, want last new value 3", got)
	}
	if ks := d.ChangedProps(); len(ks) != 1 || ks[0] != "x" {
		t.Errorf("ChangedProps = %v", ks)
	}
}

func TestTxLabelFlipFlopCoalesces(t *testing.T) {
	g := New()
	id := g.AddVertex([]string{"A"}, nil)
	cap := &capture{}
	g.Subscribe(cap)

	if err := g.Batch(func(tx *Tx) error {
		_ = tx.AddVertexLabel(id, "B")
		_ = tx.RemoveVertexLabel(id, "B")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cap.sets) != 0 {
		t.Fatalf("label flip-flop dispatched %d changesets, want 0", len(cap.sets))
	}

	if err := g.Batch(func(tx *Tx) error {
		_ = tx.AddVertexLabel(id, "B")
		_ = tx.AddVertexLabel(id, "C")
		_ = tx.RemoveVertexLabel(id, "A")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cap.sets) != 1 {
		t.Fatalf("dispatched %d changesets, want 1", len(cap.sets))
	}
	d := cap.sets[0].VertexDelta(id)
	if !d.LabelsChanged() {
		t.Fatal("labels not marked changed")
	}
	if got := fmt.Sprint(d.BeforeLabels()); got != "[A]" {
		t.Errorf("BeforeLabels = %s, want [A]", got)
	}
	if got := fmt.Sprint(d.V.Labels()); got != "[B C]" {
		t.Errorf("labels = %s, want [B C]", got)
	}
	if !d.HadLabel("A") || d.HadLabel("B") {
		t.Error("HadLabel reports the post-tx set")
	}
}

func TestTxCreatedElementFoldsChanges(t *testing.T) {
	g := New()
	cap := &capture{}
	g.Subscribe(cap)

	var vid, eid ID
	if err := g.Batch(func(tx *Tx) error {
		vid = tx.AddVertex([]string{"A"}, nil)
		_ = tx.AddVertexLabel(vid, "B")
		_ = tx.SetVertexProperty(vid, "x", value.NewInt(7))
		var err error
		eid, err = tx.AddEdge(vid, vid, "T", nil)
		if err != nil {
			return err
		}
		return tx.SetEdgeProperty(eid, "w", value.NewInt(3))
	}); err != nil {
		t.Fatal(err)
	}
	if len(cap.sets) != 1 {
		t.Fatalf("dispatched %d changesets, want 1", len(cap.sets))
	}
	cs := cap.sets[0]
	vd := cs.VertexDelta(vid)
	if !vd.Created() || vd.LabelsChanged() || len(vd.ChangedProps()) != 0 {
		t.Errorf("created vertex carries separate change entries: labelsChanged=%v props=%v",
			vd.LabelsChanged(), vd.ChangedProps())
	}
	if !vd.V.HasLabel("B") || !value.Equal(vd.V.Prop("x"), value.NewInt(7)) {
		t.Error("final state not readable from the object")
	}
	ed := cs.EdgeDelta(eid)
	if !ed.Created() || len(ed.ChangedProps()) != 0 {
		t.Errorf("created edge carries separate change entries: %v", ed.ChangedProps())
	}
}

func TestTxRemoveKeepsPriorChangesReadable(t *testing.T) {
	g := New()
	id := g.AddVertex([]string{"A"}, map[string]value.Value{"x": value.NewInt(1)})
	cap := &capture{}
	g.Subscribe(cap)

	if err := g.Batch(func(tx *Tx) error {
		_ = tx.SetVertexProperty(id, "x", value.NewInt(2))
		return tx.RemoveVertex(id)
	}); err != nil {
		t.Fatal(err)
	}
	d := cap.sets[0].VertexDelta(id)
	if !d.Removed() || d.Created() {
		t.Fatal("delta should be a plain removal")
	}
	// The pre-tx value is what view rows were built from.
	if got := d.BeforeProp("x"); !value.Equal(got, value.NewInt(1)) {
		t.Errorf("BeforeProp = %s, want pre-tx value 1", got)
	}
}

func TestRollbackRestoresState(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"A"}, map[string]value.Value{"x": value.NewInt(1)})
	b := g.AddVertex([]string{"B"}, nil)
	e, err := g.AddEdge(a, b, "T", map[string]value.Value{"w": value.NewInt(5)})
	if err != nil {
		t.Fatal(err)
	}
	cap := &capture{}
	g.Subscribe(cap)

	wantErr := fmt.Errorf("boom")
	err = g.Batch(func(tx *Tx) error {
		_ = tx.SetVertexProperty(a, "x", value.NewInt(9))
		_ = tx.SetEdgeProperty(e, "w", value.NewInt(6))
		_ = tx.AddVertexLabel(a, "Z")
		tx.AddVertex([]string{"New"}, nil)
		if err := tx.RemoveVertex(b); err != nil { // cascades to e
			return err
		}
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("Batch error = %v, want %v", err, wantErr)
	}
	if len(cap.sets) != 0 {
		t.Fatal("rolled-back tx dispatched a changeset")
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("state = %d vertices, %d edges; want 2, 1", g.NumVertices(), g.NumEdges())
	}
	av, _ := g.VertexByID(a)
	if !value.Equal(av.Prop("x"), value.NewInt(1)) || av.HasLabel("Z") {
		t.Error("vertex a not restored")
	}
	if _, ok := g.VertexByID(b); !ok {
		t.Error("vertex b not restored")
	}
	ev, ok := g.EdgeByID(e)
	if !ok || !value.Equal(ev.Prop("w"), value.NewInt(5)) {
		t.Error("edge not restored")
	}
	if got := len(g.OutEdges(a, "T")); got != 1 {
		t.Errorf("adjacency not restored: out(a) = %d", got)
	}
	if got := len(g.VerticesByLabel("New")); got != 0 {
		t.Errorf("created vertex survived rollback: %d", got)
	}
	if got := len(g.VerticesByLabel("B")); got != 1 {
		t.Errorf("label index not restored: B = %d", got)
	}

	// The graph stays writable after rollback (locks released).
	g.AddVertex([]string{"After"}, nil)
	if len(cap.sets) != 1 {
		t.Error("post-rollback commit not dispatched")
	}
}

func TestTxDoubleCommit(t *testing.T) {
	g := New()
	tx := g.Begin()
	tx.AddVertex(nil, nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrTxDone {
		t.Errorf("second commit = %v, want ErrTxDone", err)
	}
	if err := tx.Rollback(); err != ErrTxDone {
		t.Errorf("rollback after commit = %v, want ErrTxDone", err)
	}
}

func TestTxMutatorsAfterFinish(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"A"}, nil)
	tx := g.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.AddEdge(a, a, "T", nil); err != ErrTxDone {
		t.Errorf("AddEdge = %v, want ErrTxDone", err)
	}
	if err := tx.RemoveVertex(a); err != ErrTxDone {
		t.Errorf("RemoveVertex = %v, want ErrTxDone", err)
	}
	if err := tx.SetVertexProperty(a, "x", value.NewInt(1)); err != ErrTxDone {
		t.Errorf("SetVertexProperty = %v, want ErrTxDone", err)
	}
	if err := tx.AddVertexLabel(a, "B"); err != ErrTxDone {
		t.Errorf("AddVertexLabel = %v, want ErrTxDone", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddVertex on finished tx did not panic")
			}
		}()
		tx.AddVertex(nil, nil)
	}()
	if g.NumVertices() != 1 {
		t.Errorf("finished tx mutated the store: %d vertices", g.NumVertices())
	}
}

func TestBatchPanicRollsBack(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"A"}, nil)
	func() {
		defer func() { _ = recover() }()
		_ = g.Batch(func(tx *Tx) error {
			tx.AddVertex([]string{"B"}, nil)
			panic("boom")
		})
	}()
	if g.NumVertices() != 1 {
		t.Fatalf("vertices after panic = %d, want 1", g.NumVertices())
	}
	// Writer lock must be released.
	_ = g.RemoveVertex(a)
}
