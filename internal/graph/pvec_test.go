package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestPvecBasic(t *testing.T) {
	var p pvec[int]
	if p.len() != 0 {
		t.Fatalf("empty len = %d", p.len())
	}
	if _, ok := p.get(0); ok {
		t.Fatal("get on empty succeeded")
	}
	p = p.set(0, 10).set(31, 20).set(32, 30).set(1<<40, 40)
	if p.len() != 4 {
		t.Fatalf("len = %d, want 4", p.len())
	}
	for k, want := range map[ID]int{0: 10, 31: 20, 32: 30, 1 << 40: 40} {
		if got, ok := p.get(k); !ok || got != want {
			t.Fatalf("get(%d) = %d,%v, want %d", k, got, ok, want)
		}
	}
	if _, ok := p.get(33); ok {
		t.Fatal("get(33) on absent key succeeded")
	}
	if _, ok := p.get(-1); ok {
		t.Fatal("get(-1) succeeded")
	}
	// Overwrite does not change count.
	p = p.set(31, 21)
	if got, _ := p.get(31); got != 21 || p.len() != 4 {
		t.Fatalf("overwrite: get=%d len=%d", got, p.len())
	}
}

func TestPvecPersistence(t *testing.T) {
	var v0 pvec[string]
	v1 := v0.set(5, "a")
	v2 := v1.set(5, "b").set(1000, "c")
	v3 := v2.del(5)

	if v0.len() != 0 {
		t.Fatal("v0 mutated")
	}
	if got, _ := v1.get(5); got != "a" || v1.len() != 1 {
		t.Fatalf("v1 changed: %q len=%d", got, v1.len())
	}
	if v1.has(1000) {
		t.Fatal("v1 sees v2's key")
	}
	if got, _ := v2.get(5); got != "b" || !v2.has(1000) {
		t.Fatal("v2 wrong")
	}
	if v3.has(5) || !v3.has(1000) || v3.len() != 1 {
		t.Fatal("v3 wrong")
	}
}

func TestPvecDelPrunes(t *testing.T) {
	var p pvec[int]
	for i := ID(0); i < 100; i++ {
		p = p.set(i*37, int(i))
	}
	for i := ID(0); i < 100; i++ {
		p = p.del(i * 37)
	}
	if p.len() != 0 || p.root != nil {
		t.Fatalf("after deleting all: len=%d root=%v", p.len(), p.root)
	}
	// Deleting an absent key is a no-op.
	q := pvec[int]{}.set(3, 1)
	if q.del(4).len() != 1 || q.del(1<<50).len() != 1 || q.del(-2).len() != 1 {
		t.Fatal("deleting absent key changed count")
	}
}

func TestPvecAscendOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var p pvec[int]
	want := make([]ID, 0, 500)
	seen := map[ID]bool{}
	for len(want) < 500 {
		k := ID(rng.Int63n(1 << 30))
		if !seen[k] {
			seen[k] = true
			want = append(want, k)
			p = p.set(k, int(k))
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []ID
	p.ascend(func(k ID, v int) bool {
		if int(k) != v {
			t.Fatalf("value mismatch at %d: %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ascend visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ascend order wrong at %d: %d vs %d", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	p.ascend(func(ID, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestPvecRandomVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var p pvec[int]
	oracle := map[ID]int{}
	for i := 0; i < 20000; i++ {
		k := ID(rng.Int63n(4096))
		if rng.Intn(3) == 0 {
			p = p.del(k)
			delete(oracle, k)
		} else {
			v := rng.Int()
			p = p.set(k, v)
			oracle[k] = v
		}
	}
	if p.len() != len(oracle) {
		t.Fatalf("len=%d oracle=%d", p.len(), len(oracle))
	}
	for k, v := range oracle {
		if got, ok := p.get(k); !ok || got != v {
			t.Fatalf("get(%d)=%d,%v want %d", k, got, ok, v)
		}
	}
}

func TestPvecStructuralSharing(t *testing.T) {
	var p pvec[int]
	for i := ID(0); i < 1000; i++ {
		p = p.set(i, int(i))
	}
	q := p.set(0, -1) // touches one root-to-leaf path
	seen := map[any]bool{}
	base := p.countNodes(seen)
	extra := q.countNodes(seen) // only q's path-copied nodes are new
	if extra >= base/2 {
		t.Fatalf("one-key update copied %d of %d nodes — no sharing", extra, base)
	}
	if extra == 0 {
		t.Fatal("update shared everything — versions aliased")
	}
}
