package graph

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"pgiv/internal/value"
)

// readerDigest serialises everything a Reader exposes into one canonical
// string, so two Readers describe the same graph state iff their digests
// are equal.
func readerDigest(r Reader) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nv=%d ne=%d\n", r.NumVertices(), r.NumEdges())
	for _, v := range r.VerticesByLabel("") {
		fmt.Fprintf(&b, "v%d labels=%v", v.ID, v.Labels())
		for _, k := range v.PropKeys() {
			fmt.Fprintf(&b, " %s=%s", k, v.Prop(k))
		}
		b.WriteByte('\n')
	}
	for _, e := range r.EdgesByType("") {
		fmt.Fprintf(&b, "e%d %d-[%s]->%d", e.ID, e.Src, e.Type, e.Trg)
		for _, k := range e.PropKeys() {
			fmt.Fprintf(&b, " %s=%s", k, e.Prop(k))
		}
		b.WriteByte('\n')
	}
	for _, l := range r.Labels() {
		fmt.Fprintf(&b, "label %s:", l)
		for _, v := range r.VerticesByLabel(l) {
			fmt.Fprintf(&b, " %d", v.ID)
		}
		b.WriteByte('\n')
	}
	for _, t := range r.EdgeTypes() {
		fmt.Fprintf(&b, "type %s:", t)
		for _, e := range r.EdgesByType(t) {
			fmt.Fprintf(&b, " %d", e.ID)
		}
		b.WriteByte('\n')
	}
	for _, v := range r.VerticesByLabel("") {
		fmt.Fprintf(&b, "out%d:", v.ID)
		for _, e := range r.OutEdges(v.ID, "") {
			fmt.Fprintf(&b, " %d", e.ID)
		}
		b.WriteString(" in:")
		for _, e := range r.InEdges(v.ID, "") {
			fmt.Fprintf(&b, " %d", e.ID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestSnapshotIsolation(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"Person"}, map[string]value.Value{"name": value.NewString("ada")})
	bID := g.AddVertex([]string{"Person"}, nil)
	eid, _ := g.AddEdge(a, bID, "KNOWS", nil)

	snap := g.Snapshot()
	defer snap.Release()
	before := readerDigest(snap)
	if snap.Epoch() != g.Epoch() {
		t.Fatalf("snapshot epoch %d != graph epoch %d", snap.Epoch(), g.Epoch())
	}

	// Mutate heavily after pinning.
	_ = g.SetVertexProperty(a, "name", value.NewString("grace"))
	_ = g.AddVertexLabel(bID, "Admin")
	_ = g.RemoveEdge(eid)
	_ = g.RemoveVertex(bID)
	c := g.AddVertex([]string{"City"}, nil)
	_, _ = g.AddEdge(a, c, "LIVES_IN", nil)

	if got := readerDigest(snap); got != before {
		t.Fatalf("pinned snapshot changed:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if v, ok := snap.VertexByID(a); !ok || v.Prop("name").Str() != "ada" {
		t.Fatalf("snapshot vertex prop mutated: %v", v.Prop("name"))
	}
	if _, ok := snap.EdgeByID(eid); !ok {
		t.Fatal("snapshot lost removed edge")
	}

	// A fresh snapshot sees the new state and matches the live graph.
	snap2 := g.Snapshot()
	defer snap2.Release()
	if got, want := readerDigest(snap2), readerDigest(g); got != want {
		t.Fatalf("fresh snapshot diverges from live graph:\n%s\nvs\n%s", got, want)
	}
	if snap2.Epoch() <= snap.Epoch() {
		t.Fatalf("epoch not monotonic: %d then %d", snap.Epoch(), snap2.Epoch())
	}
}

// randomMutation applies one random operation through tx; returns false
// if it chose an op that turned out to be impossible (empty graph etc).
func randomMutation(rng *rand.Rand, g *Graph, tx *Tx) {
	labels := []string{"Person", "Admin", "City", "Tag"}
	types := []string{"KNOWS", "LIKES", "IN"}
	pick := func(ids []ID) (ID, bool) {
		if len(ids) == 0 {
			return 0, false
		}
		return ids[rng.Intn(len(ids))], true
	}
	vids := func() []ID {
		var ids []ID
		for _, v := range g.VerticesByLabel("") {
			ids = append(ids, v.ID)
		}
		return ids
	}
	eids := func() []ID {
		var ids []ID
		for _, e := range g.EdgesByType("") {
			ids = append(ids, e.ID)
		}
		return ids
	}
	switch rng.Intn(10) {
	case 0, 1:
		tx.AddVertex([]string{labels[rng.Intn(len(labels))]}, map[string]value.Value{"n": value.NewInt(int64(rng.Intn(100)))})
	case 2, 3:
		if s, ok := pick(vids()); ok {
			if d, ok := pick(vids()); ok {
				_, _ = tx.AddEdge(s, d, types[rng.Intn(len(types))], map[string]value.Value{"w": value.NewInt(int64(rng.Intn(10)))})
			}
		}
	case 4:
		if id, ok := pick(vids()); ok {
			_ = tx.RemoveVertex(id)
		}
	case 5:
		if id, ok := pick(eids()); ok {
			_ = tx.RemoveEdge(id)
		}
	case 6:
		if id, ok := pick(vids()); ok {
			_ = tx.SetVertexProperty(id, "n", value.NewInt(int64(rng.Intn(100))))
		}
	case 7:
		if id, ok := pick(eids()); ok {
			_ = tx.SetEdgeProperty(id, "w", value.NewInt(int64(rng.Intn(10))))
		}
	case 8:
		if id, ok := pick(vids()); ok {
			_ = tx.AddVertexLabel(id, labels[rng.Intn(len(labels))])
		}
	default:
		if id, ok := pick(vids()); ok {
			_ = tx.RemoveVertexLabel(id, labels[rng.Intn(len(labels))])
		}
	}
}

// TestSnapshotTracksLiveGraph fuzzes random multi-op transactions and
// checks after every commit that a fresh snapshot is byte-identical to
// the live graph — i.e. store.apply handles every delta shape the
// ChangeSet can produce.
func TestSnapshotTracksLiveGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := New()
	g.EnableMVCC()
	for round := 0; round < 300; round++ {
		tx := g.Begin()
		for n := rng.Intn(5) + 1; n > 0; n-- {
			randomMutation(rng, g, tx)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		snap := g.Snapshot()
		if got, want := readerDigest(snap), readerDigest(g); got != want {
			t.Fatalf("round %d (epoch %d): snapshot diverged\nsnapshot:\n%s\nlive:\n%s",
				round, snap.Epoch(), got, want)
		}
		snap.Release()
	}
}

// TestSnapshotLabelChangeThenRemove covers the delta corner where a
// vertex's labels change and the vertex is then removed in the same
// transaction: the store must unindex the pre-transaction labels.
func TestSnapshotLabelChangeThenRemove(t *testing.T) {
	g := New()
	id := g.AddVertex([]string{"A"}, nil)
	g.EnableMVCC()
	err := g.Batch(func(tx *Tx) error {
		if err := tx.AddVertexLabel(id, "B"); err != nil {
			return err
		}
		if err := tx.RemoveVertexLabel(id, "A"); err != nil {
			return err
		}
		return tx.RemoveVertex(id)
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	defer snap.Release()
	if got, want := readerDigest(snap), readerDigest(g); got != want {
		t.Fatalf("diverged:\n%s\nvs\n%s", got, want)
	}
	if len(snap.Labels()) != 0 {
		t.Fatalf("stale label index entries: %v", snap.Labels())
	}
}

// TestSnapshotRollbackInvisible checks a rolled-back transaction leaves
// no trace in the versioned store and advances no epoch.
func TestSnapshotRollbackInvisible(t *testing.T) {
	g := New()
	g.AddVertex([]string{"A"}, nil)
	g.EnableMVCC()
	e0 := g.Epoch()
	tx := g.Begin()
	tx.AddVertex([]string{"B"}, nil)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != e0 {
		t.Fatalf("rollback advanced epoch %d -> %d", e0, g.Epoch())
	}
	snap := g.Snapshot()
	defer snap.Release()
	if got, want := readerDigest(snap), readerDigest(g); got != want {
		t.Fatalf("diverged after rollback:\n%s\nvs\n%s", got, want)
	}
}

// TestEpochReclamation pins an old epoch, commits enough churn to make
// the versions diverge, and asserts that the extra retained trie nodes
// drop back to exactly the latest version's after release.
func TestEpochReclamation(t *testing.T) {
	g := New()
	for i := 0; i < 200; i++ {
		g.AddVertex([]string{"N"}, map[string]value.Value{"i": value.NewInt(int64(i))})
	}
	g.EnableMVCC()

	snap := g.Snapshot()
	for i := 0; i < 200; i++ {
		v := g.VerticesByLabel("N")[i]
		_ = g.SetVertexProperty(v.ID, "i", value.NewInt(int64(-i)))
	}

	pinned := g.MVCCStats()
	if pinned.PinnedReaders != 1 || pinned.PinnedEpochs != 1 {
		t.Fatalf("pin accounting wrong: %+v", pinned)
	}
	if pinned.RetainedStores != 2 {
		t.Fatalf("expected 2 retained stores, got %+v", pinned)
	}
	if pinned.RetainedNodes <= pinned.LatestNodes {
		t.Fatalf("pinned epoch retains nothing extra: %+v", pinned)
	}

	snap.Release()
	after := g.MVCCStats()
	if after.PinnedReaders != 0 || after.PinnedEpochs != 0 || after.RetainedStores != 1 {
		t.Fatalf("release did not drop pin: %+v", after)
	}
	if after.RetainedNodes != after.LatestNodes {
		t.Fatalf("retained memory above baseline after release: %+v", after)
	}
	// Double release is a safe no-op.
	snap.Release()
	if s := g.MVCCStats(); s.PinnedReaders != 0 {
		t.Fatalf("double release corrupted pins: %+v", s)
	}
}

// TestSnapshotSharedPin checks two snapshots of the same epoch share one
// pin entry and the epoch survives until the last one releases.
func TestSnapshotSharedPin(t *testing.T) {
	g := New()
	g.AddVertex([]string{"A"}, nil)
	s1 := g.Snapshot()
	s2 := g.Snapshot()
	if s1.Epoch() != s2.Epoch() {
		t.Fatalf("same-state snapshots pin different epochs: %d vs %d", s1.Epoch(), s2.Epoch())
	}
	if st := g.MVCCStats(); st.PinnedEpochs != 1 || st.PinnedReaders != 2 {
		t.Fatalf("want 1 epoch / 2 readers, got %+v", st)
	}
	s1.Release()
	if st := g.MVCCStats(); st.PinnedEpochs != 1 || st.PinnedReaders != 1 {
		t.Fatalf("first release dropped the epoch: %+v", st)
	}
	s2.Release()
	if st := g.MVCCStats(); st.PinnedEpochs != 0 {
		t.Fatalf("pins leak: %+v", st)
	}
}

// TestSnapshotConcurrentReaders runs pinned-epoch readers against a
// committing writer; under -race this is the lock-freedom proof, and the
// digest re-check catches torn traversals in any mode.
func TestSnapshotConcurrentReaders(t *testing.T) {
	g := New()
	seedIDs := make([]ID, 0, 50)
	for i := 0; i < 50; i++ {
		seedIDs = append(seedIDs, g.AddVertex([]string{"N"}, map[string]value.Value{"i": value.NewInt(int64(i))}))
	}
	for i := 0; i < 49; i++ {
		_, _ = g.AddEdge(seedIDs[i], seedIDs[i+1], "NEXT", nil)
	}
	g.EnableMVCC()

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := g.Snapshot()
				if snap.Epoch() < last {
					errs <- fmt.Errorf("epoch went backwards: %d after %d", snap.Epoch(), last)
					snap.Release()
					return
				}
				last = snap.Epoch()
				d1 := readerDigest(snap)
				d2 := readerDigest(snap)
				snap.Release()
				if d1 != d2 {
					errs <- fmt.Errorf("torn read at epoch %d", snap.Epoch())
					return
				}
			}
		}(int64(r))
	}

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		err := g.Batch(func(tx *Tx) error {
			for n := rng.Intn(4) + 1; n > 0; n-- {
				randomMutation(rng, g, tx)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := g.MVCCStats(); st.PinnedReaders != 0 {
		t.Fatalf("readers leaked pins: %+v", st)
	}
}

// TestLazyMVCCActivation: before the first Snapshot/EnableMVCC the graph
// maintains no versioned store; the first Snapshot builds it on demand
// and reflects all prior commits.
func TestLazyMVCCActivation(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"A"}, nil)
	b := g.AddVertex([]string{"B"}, nil)
	_, _ = g.AddEdge(a, b, "T", nil)
	if g.MVCCEnabled() {
		t.Fatal("MVCC active before first snapshot")
	}
	if g.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", g.Epoch())
	}
	snap := g.Snapshot()
	defer snap.Release()
	if !g.MVCCEnabled() {
		t.Fatal("first snapshot did not enable MVCC")
	}
	if got, want := readerDigest(snap), readerDigest(g); got != want {
		t.Fatalf("on-demand store diverges:\n%s\nvs\n%s", got, want)
	}
}
