package graph

import (
	"slices"
	"sort"

	"pgiv/internal/value"
)

// ChangeSet is the unit of change notification: the coalesced net effect
// of one committed transaction, expressed as per-element transitions.
// Consumers receive one ChangeSet per commit (see Listener) and can read,
// for every touched vertex and edge, both the pre-transaction state (via
// the delta's Before* accessors) and the post-transaction state (via the
// live object, which stays readable even for removed elements).
//
// Coalescing rules (applied while the transaction records and finalised
// at commit):
//
//   - An element added and removed inside the same transaction nets out
//     and is dropped entirely, together with every label/property change
//     on it.
//   - Label and property changes on an element created inside the
//     transaction fold into the creation: consumers read the final state
//     from the object, so no separate change entries are kept.
//   - Repeated writes to the same property keep only the first old value;
//     the last new value is read from the object. A flip-flop that
//     restores the original value drops the entry (first-old == last-new).
//   - Label changes keep only the pre-transaction label set; a flip-flop
//     restoring the original set drops the entry.
//   - A delta whose every entry nets out is dropped, so a transaction
//     that undoes itself commits an empty ChangeSet and notifies nobody.
//
// Deltas appear in first-touch order, vertices and edges separately.
type ChangeSet struct {
	vertices []*VertexDelta
	edges    []*EdgeDelta
	vIdx     map[ID]*VertexDelta
	eIdx     map[ID]*EdgeDelta
	epoch    uint64 // commit epoch, stamped at Commit
}

// newChangeSet returns an empty changeset. The per-kind indices are
// created lazily on first touch, so a single-operation transaction (the
// FGN hot path) allocates only the index it needs.
func newChangeSet() *ChangeSet { return &ChangeSet{} }

// Empty reports whether the changeset carries no net change.
func (cs *ChangeSet) Empty() bool { return len(cs.vertices) == 0 && len(cs.edges) == 0 }

// Epoch returns the monotonic commit epoch of this changeset. Epochs
// count committed non-empty transactions from 1; the graph's current
// epoch (Graph.Epoch) equals the last dispatched changeset's.
func (cs *ChangeSet) Epoch() uint64 { return cs.epoch }

// Len returns the number of element deltas (vertices + edges).
func (cs *ChangeSet) Len() int { return len(cs.vertices) + len(cs.edges) }

// Vertices returns the vertex deltas in first-touch order. Read-only.
func (cs *ChangeSet) Vertices() []*VertexDelta { return cs.vertices }

// Edges returns the edge deltas in first-touch order. Read-only.
func (cs *ChangeSet) Edges() []*EdgeDelta { return cs.edges }

// VertexDelta returns the delta of the given vertex, or nil if the vertex
// is untouched by this changeset.
func (cs *ChangeSet) VertexDelta(id ID) *VertexDelta { return cs.vIdx[id] }

// EdgeDelta returns the delta of the given edge, or nil if untouched.
func (cs *ChangeSet) EdgeDelta(id ID) *EdgeDelta { return cs.eIdx[id] }

// VertexDelta is the net transition of one vertex across a transaction.
type VertexDelta struct {
	// V is the live vertex object. For removed vertices it holds the
	// state at removal time and stays readable.
	V *Vertex

	created       bool
	removed       bool
	dropped       bool // created and removed in the same tx: net nothing
	labelsChanged bool
	oldLabels     []string // pre-tx labels, sorted; valid iff labelsChanged
	oldProps      map[string]value.Value
}

// Created reports whether the vertex was created in this transaction.
func (d *VertexDelta) Created() bool { return d.created }

// Removed reports whether the vertex was removed in this transaction.
func (d *VertexDelta) Removed() bool { return d.removed }

// ExistedBefore reports whether the vertex existed before the transaction.
func (d *VertexDelta) ExistedBefore() bool { return !d.created }

// ExistsAfter reports whether the vertex exists after the transaction.
func (d *VertexDelta) ExistsAfter() bool { return !d.removed }

// LabelsChanged reports whether the label set differs from before the
// transaction.
func (d *VertexDelta) LabelsChanged() bool { return d.labelsChanged }

// BeforeLabels returns the pre-transaction label set (sorted). For
// created vertices it returns nil. Callers must not mutate the result.
func (d *VertexDelta) BeforeLabels() []string {
	if d.created {
		return nil
	}
	if d.labelsChanged {
		return d.oldLabels
	}
	return d.V.Labels()
}

// HadLabel reports whether the vertex carried the label before the
// transaction.
func (d *VertexDelta) HadLabel(label string) bool {
	if d.created {
		return false
	}
	if !d.labelsChanged {
		return d.V.HasLabel(label)
	}
	i := sort.SearchStrings(d.oldLabels, label)
	return i < len(d.oldLabels) && d.oldLabels[i] == label
}

// BeforeProp returns the pre-transaction value of the property key (null
// if absent, or if the vertex was created in this transaction).
func (d *VertexDelta) BeforeProp(key string) value.Value {
	if d.created {
		return value.Null
	}
	if old, ok := d.oldProps[key]; ok {
		return old
	}
	return d.V.Prop(key)
}

// ChangedProps returns the sorted keys whose values differ from before
// the transaction (empty for created vertices, whose whole state is new).
func (d *VertexDelta) ChangedProps() []string { return sortedPropKeys(d.oldProps) }

// EdgeDelta is the net transition of one edge across a transaction.
type EdgeDelta struct {
	// E is the live edge object. For removed edges it holds the state at
	// removal time and stays readable, including Src/Trg.
	E *Edge

	created  bool
	removed  bool
	dropped  bool
	oldProps map[string]value.Value
}

// Created reports whether the edge was created in this transaction.
func (d *EdgeDelta) Created() bool { return d.created }

// Removed reports whether the edge was removed in this transaction.
func (d *EdgeDelta) Removed() bool { return d.removed }

// ExistedBefore reports whether the edge existed before the transaction.
func (d *EdgeDelta) ExistedBefore() bool { return !d.created }

// ExistsAfter reports whether the edge exists after the transaction.
func (d *EdgeDelta) ExistsAfter() bool { return !d.removed }

// BeforeProp returns the pre-transaction value of the property key.
func (d *EdgeDelta) BeforeProp(key string) value.Value {
	if d.created {
		return value.Null
	}
	if old, ok := d.oldProps[key]; ok {
		return old
	}
	return d.E.Prop(key)
}

// ChangedProps returns the sorted keys whose values differ from before
// the transaction.
func (d *EdgeDelta) ChangedProps() []string { return sortedPropKeys(d.oldProps) }

// --- recording (called by Tx after each applied mutation) ---

func (cs *ChangeSet) ensureVertex(v *Vertex) *VertexDelta {
	d := cs.vIdx[v.ID]
	if d == nil {
		if cs.vIdx == nil {
			cs.vIdx = make(map[ID]*VertexDelta)
		}
		d = &VertexDelta{V: v}
		cs.vIdx[v.ID] = d
		cs.vertices = append(cs.vertices, d)
	}
	return d
}

func (cs *ChangeSet) ensureEdge(e *Edge) *EdgeDelta {
	d := cs.eIdx[e.ID]
	if d == nil {
		if cs.eIdx == nil {
			cs.eIdx = make(map[ID]*EdgeDelta)
		}
		d = &EdgeDelta{E: e}
		cs.eIdx[e.ID] = d
		cs.edges = append(cs.edges, d)
	}
	return d
}

func (cs *ChangeSet) recordVertexAdded(v *Vertex) {
	cs.ensureVertex(v).created = true
}

func (cs *ChangeSet) recordVertexRemoved(v *Vertex) {
	d := cs.ensureVertex(v)
	if d.created {
		d.dropped = true
		return
	}
	d.removed = true
}

func (cs *ChangeSet) recordEdgeAdded(e *Edge) {
	cs.ensureEdge(e).created = true
}

func (cs *ChangeSet) recordEdgeRemoved(e *Edge) {
	d := cs.ensureEdge(e)
	if d.created {
		d.dropped = true
		return
	}
	d.removed = true
}

// recordVertexLabel logs a label addition (added=true) or removal. It is
// called after the store applied the change, so the pre-change label set
// is reconstructed from the current one.
func (cs *ChangeSet) recordVertexLabel(v *Vertex, label string, added bool) {
	d := cs.ensureVertex(v)
	if d.created || d.labelsChanged {
		return // final state is on the object; first old set already kept
	}
	cur := v.Labels()
	var old []string
	if added {
		old = make([]string, 0, len(cur)-1)
		for _, l := range cur {
			if l != label {
				old = append(old, l)
			}
		}
	} else {
		old = make([]string, 0, len(cur)+1)
		old = append(old, cur...)
		old = append(old, label)
		sort.Strings(old)
	}
	d.labelsChanged = true
	d.oldLabels = old
}

func (cs *ChangeSet) recordVertexProp(v *Vertex, key string, old value.Value) {
	d := cs.ensureVertex(v)
	if d.created {
		return
	}
	if d.oldProps == nil {
		d.oldProps = make(map[string]value.Value)
	}
	if _, seen := d.oldProps[key]; !seen {
		d.oldProps[key] = old
	}
}

func (cs *ChangeSet) recordEdgeProp(e *Edge, key string, old value.Value) {
	d := cs.ensureEdge(e)
	if d.created {
		return
	}
	if d.oldProps == nil {
		d.oldProps = make(map[string]value.Value)
	}
	if _, seen := d.oldProps[key]; !seen {
		d.oldProps[key] = old
	}
}

// sameStoredValue mirrors the store's no-op test for property writes.
func sameStoredValue(a, b value.Value) bool {
	return value.Equal(a, b) && a.Kind() == b.Kind()
}

// normalize finalises coalescing: flip-flopped properties and label sets
// are pruned, and deltas with no remaining net change are dropped. It
// returns cs for chaining.
func (cs *ChangeSet) normalize() *ChangeSet {
	vs := cs.vertices[:0]
	for _, d := range cs.vertices {
		if d.dropped {
			delete(cs.vIdx, d.V.ID)
			continue
		}
		if !d.created && !d.removed {
			for k, old := range d.oldProps {
				if sameStoredValue(old, d.V.Prop(k)) {
					delete(d.oldProps, k)
				}
			}
			if d.labelsChanged && slices.Equal(d.oldLabels, d.V.Labels()) {
				d.labelsChanged = false
				d.oldLabels = nil
			}
			if len(d.oldProps) == 0 && !d.labelsChanged {
				delete(cs.vIdx, d.V.ID)
				continue
			}
		}
		vs = append(vs, d)
	}
	cs.vertices = vs

	es := cs.edges[:0]
	for _, d := range cs.edges {
		if d.dropped {
			delete(cs.eIdx, d.E.ID)
			continue
		}
		if !d.created && !d.removed {
			for k, old := range d.oldProps {
				if sameStoredValue(old, d.E.Prop(k)) {
					delete(d.oldProps, k)
				}
			}
			if len(d.oldProps) == 0 {
				delete(cs.eIdx, d.E.ID)
				continue
			}
		}
		es = append(es, d)
	}
	cs.edges = es
	return cs
}

// EventListener is the legacy per-event callback interface, kept as a
// migration aid: AdaptEvents lifts it into a ChangeSet Listener.
type EventListener interface {
	VertexAdded(v *Vertex)
	VertexRemoved(v *Vertex)
	EdgeAdded(e *Edge)
	EdgeRemoved(e *Edge)
	VertexLabelAdded(v *Vertex, label string)
	VertexLabelRemoved(v *Vertex, label string)
	VertexPropertyChanged(v *Vertex, key string, old value.Value)
	EdgePropertyChanged(e *Edge, key string, old value.Value)
}

// AdaptEvents wraps a per-event listener as a ChangeSet listener. The
// coalesced per-element transitions are replayed as individual events in
// a canonical order: edge removals first (endpoints still resolvable),
// then vertex removals, then vertex additions and label/property changes,
// then edge additions and edge property changes. Note that a coalesced
// replay reflects net transitions, not the original operation sequence —
// intermediate states that a transaction created and undid are invisible.
func AdaptEvents(l EventListener) Listener { return eventAdapter{l} }

type eventAdapter struct{ l EventListener }

func (a eventAdapter) Apply(cs *ChangeSet) {
	for _, d := range cs.Edges() {
		if d.Removed() {
			a.l.EdgeRemoved(d.E)
		}
	}
	for _, d := range cs.Vertices() {
		if d.Removed() {
			a.l.VertexRemoved(d.V)
		}
	}
	for _, d := range cs.Vertices() {
		switch {
		case d.Created():
			a.l.VertexAdded(d.V)
		case d.Removed():
			// already replayed
		default:
			if d.LabelsChanged() {
				cur := d.V.Labels()
				for _, lab := range d.BeforeLabels() {
					if !d.V.HasLabel(lab) {
						a.l.VertexLabelRemoved(d.V, lab)
					}
				}
				for _, lab := range cur {
					if !d.HadLabel(lab) {
						a.l.VertexLabelAdded(d.V, lab)
					}
				}
			}
			for _, k := range d.ChangedProps() {
				a.l.VertexPropertyChanged(d.V, k, d.BeforeProp(k))
			}
		}
	}
	for _, d := range cs.Edges() {
		switch {
		case d.Created():
			a.l.EdgeAdded(d.E)
		case d.Removed():
			// already replayed
		default:
			for _, k := range d.ChangedProps() {
				a.l.EdgePropertyChanged(d.E, k, d.BeforeProp(k))
			}
		}
	}
}
