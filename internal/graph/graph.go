// Package graph implements an in-memory property graph store with
// transactional, coalesced change notification.
//
// The store realises the paper's data model (Section 2):
//
//	G = (V, E, st, L, T, labels, types, Pv, Pe)
//
// Vertices carry a set of labels and a property map; edges carry a type and
// a property map. The store maintains label, type and adjacency indices.
//
// Mutation and notification are transactional: every change happens inside
// a transaction (Tx), and listeners receive exactly one ChangeSet — the
// ordered, self-coalescing net effect of the transaction — per commit.
// The classic single-shot mutators (AddVertex, AddEdge, ...) remain and
// auto-commit a one-operation transaction each, so a ChangeSet carrying a
// single element delta is the batched generalisation of the paper's
// fine-granularity (FGN) update operations: a property write still reaches
// consumers as a single property-level transition, never a wholesale row
// replacement. Multi-operation updates should use Batch (or Begin/Commit),
// which amortises lock acquisition and delta propagation across the whole
// change set — see ChangeSet for the coalescing rules.
//
// Concurrency: transactions are serialised by an internal writer mutex
// held from Begin to Commit/Rollback; data is additionally guarded by an
// RWMutex so readers may run concurrently with each other. Listeners are
// invoked synchronously inside Commit (the data lock is released first,
// so listeners may read the graph). Listeners must not mutate the graph.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pgiv/internal/value"
)

// ID identifies a vertex or an edge. Vertex and edge ID spaces are
// disjoint sequences assigned by the store.
type ID = int64

// Vertex is a labelled vertex with a property map. The exported fields and
// the accessor results must be treated as read-only by callers.
type Vertex struct {
	ID     ID
	labels []string // sorted
	props  map[string]value.Value
}

// HasLabel reports whether the vertex carries the given label.
func (v *Vertex) HasLabel(label string) bool {
	i := sort.SearchStrings(v.labels, label)
	return i < len(v.labels) && v.labels[i] == label
}

// Labels returns the sorted labels of the vertex. Callers must not mutate
// the returned slice.
func (v *Vertex) Labels() []string { return v.labels }

// Prop returns the value of the property key, or null if absent.
func (v *Vertex) Prop(key string) value.Value {
	if p, ok := v.props[key]; ok {
		return p
	}
	return value.Null
}

// PropKeys returns the sorted property keys of the vertex.
func (v *Vertex) PropKeys() []string { return sortedPropKeys(v.props) }

// Edge is a typed edge with a property map. Src and Trg are vertex IDs.
type Edge struct {
	ID    ID
	Src   ID
	Trg   ID
	Type  string
	props map[string]value.Value
}

// Prop returns the value of the property key, or null if absent.
func (e *Edge) Prop(key string) value.Value {
	if p, ok := e.props[key]; ok {
		return p
	}
	return value.Null
}

// PropKeys returns the sorted property keys of the edge.
func (e *Edge) PropKeys() []string { return sortedPropKeys(e.props) }

func sortedPropKeys(m map[string]value.Value) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Listener receives the coalesced net effect of each committed
// transaction as one ChangeSet. Apply runs synchronously inside Commit,
// after every change of the transaction has been applied to the store;
// removed elements remain readable through their deltas. Listeners must
// not mutate the graph. Per-event consumers can wrap themselves with
// AdaptEvents.
type Listener interface {
	Apply(cs *ChangeSet)
}

// adjacency is one vertex's incident-edge index for one direction: the
// full edge list plus per-type buckets, every slice kept sorted by edge
// ID on insert. Reads are plain index lookups; no per-call copy, filter
// or sort.
type adjacency struct {
	all    []*Edge
	byType map[string][]*Edge
}

// insert links e into both the all-types view and its type bucket.
// Edge IDs are assigned monotonically, so the common case is an append;
// rollback re-links old (smaller) IDs and takes the binary-search path.
func (a *adjacency) insert(e *Edge) {
	a.all = insertEdgeSorted(a.all, e)
	if a.byType == nil {
		a.byType = make(map[string][]*Edge, 1)
	}
	a.byType[e.Type] = insertEdgeSorted(a.byType[e.Type], e)
}

// remove unlinks e, preserving the sorted order of the survivors.
func (a *adjacency) remove(e *Edge) {
	a.all = removeEdgeSorted(a.all, e.ID)
	if b := removeEdgeSorted(a.byType[e.Type], e.ID); len(b) > 0 {
		a.byType[e.Type] = b
	} else {
		delete(a.byType, e.Type)
	}
}

// edges returns the sorted bucket for typ ("" selects all).
func (a *adjacency) edges(typ string) []*Edge {
	if a == nil {
		return nil
	}
	if typ == "" {
		return a.all
	}
	return a.byType[typ]
}

// insertEdgeSorted and removeEdgeSorted never mutate elements a
// previously returned slice can see: the common insert is a plain
// append (readers' shorter views never index the new slot), and
// mid-slice inserts (rollback) and removals build a fresh array. A
// slice fetched from the index under the read lock is therefore an
// immutable snapshot — concurrent commits publish new slices instead
// of shifting the one readers may still be walking.
func insertEdgeSorted(s []*Edge, e *Edge) []*Edge {
	if n := len(s); n == 0 || s[n-1].ID < e.ID {
		return append(s, e)
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= e.ID })
	ns := make([]*Edge, len(s)+1)
	copy(ns, s[:i])
	ns[i] = e
	copy(ns[i+1:], s[i:])
	return ns
}

func removeEdgeSorted(s []*Edge, id ID) []*Edge {
	i := sort.Search(len(s), func(i int) bool { return s[i].ID >= id })
	if i >= len(s) || s[i].ID != id {
		return s
	}
	ns := make([]*Edge, 0, len(s)-1)
	ns = append(ns, s[:i]...)
	return append(ns, s[i+1:]...)
}

// Graph is an in-memory property graph. The zero value is not usable; use
// New.
type Graph struct {
	wmu sync.Mutex   // serialises transactions and notifications
	mu  sync.RWMutex // guards the maps below

	vertices map[ID]*Vertex
	edges    map[ID]*Edge
	byLabel  map[string]map[ID]*Vertex
	byType   map[string]map[ID]*Edge
	out      map[ID]*adjacency // adjacency by source vertex
	in       map[ID]*adjacency // adjacency by target vertex

	nextVertexID ID
	nextEdgeID   ID

	listeners []Listener

	// commitLog, when non-nil, persists every committed change set
	// before it becomes visible (see CommitLog). Guarded by wmu.
	commitLog CommitLog

	// epoch counts committed non-empty transactions; every dispatched
	// ChangeSet carries the epoch assigned to its commit. mvcc, once
	// EnableMVCC runs, holds the copy-on-write versioned mirror that
	// backs pinned-epoch Snapshots (see mvcc.go); while nil the only
	// per-commit MVCC cost is one atomic load.
	epoch atomic.Uint64
	mvcc  atomic.Pointer[mvccState]
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[ID]*Vertex),
		edges:    make(map[ID]*Edge),
		byLabel:  make(map[string]map[ID]*Vertex),
		byType:   make(map[string]map[ID]*Edge),
		out:      make(map[ID]*adjacency),
		in:       make(map[ID]*adjacency),
	}
}

// Subscribe registers a listener for committed change sets.
func (g *Graph) Subscribe(l Listener) {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	g.listeners = append(g.listeners, l)
}

// Unsubscribe removes a previously registered listener.
func (g *Graph) Unsubscribe(l Listener) {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	for i, x := range g.listeners {
		if x == l {
			g.listeners = append(g.listeners[:i], g.listeners[i+1:]...)
			return
		}
	}
}

// dispatch delivers a committed changeset to all listeners. The caller
// holds wmu (but not mu, so listeners may read the graph).
func (g *Graph) dispatch(cs *ChangeSet) {
	for _, l := range g.listeners {
		l.Apply(cs)
	}
}

// Exclusive runs fn while holding the writer lock: no transaction can
// commit and no listener can run until fn returns. fn must not mutate
// the graph (reads are fine) — it exists for consistent multi-structure
// reads such as a shutdown-time checkpoint of the graph plus downstream
// state. Calling Exclusive from inside a listener deadlocks (the lock is
// already held there; listeners already run exclusively).
func (g *Graph) Exclusive(fn func()) {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	fn()
}

// --- locked store mutation helpers (caller holds g.mu) ---

func (g *Graph) addVertexLocked(labels []string, props map[string]value.Value) *Vertex {
	g.nextVertexID++
	v := &Vertex{ID: g.nextVertexID, props: make(map[string]value.Value, len(props))}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			v.labels = append(v.labels, l)
		}
	}
	sort.Strings(v.labels)
	for k, p := range props {
		if !p.IsNull() {
			v.props[k] = p
		}
	}
	g.vertices[v.ID] = v
	for _, l := range v.labels {
		g.indexLabel(v, l)
	}
	return v
}

func (g *Graph) addEdgeLocked(src, trg ID, typ string, props map[string]value.Value) (*Edge, error) {
	if _, ok := g.vertices[src]; !ok {
		return nil, fmt.Errorf("graph: add edge: source vertex %d does not exist", src)
	}
	if _, ok := g.vertices[trg]; !ok {
		return nil, fmt.Errorf("graph: add edge: target vertex %d does not exist", trg)
	}
	g.nextEdgeID++
	e := &Edge{ID: g.nextEdgeID, Src: src, Trg: trg, Type: typ, props: make(map[string]value.Value, len(props))}
	for k, p := range props {
		if !p.IsNull() {
			e.props[k] = p
		}
	}
	g.edges[e.ID] = e
	m := g.byType[typ]
	if m == nil {
		m = make(map[ID]*Edge)
		g.byType[typ] = m
	}
	m[e.ID] = e
	g.linkEdgeLocked(e)
	return e, nil
}

// linkEdgeLocked inserts e into both adjacency indexes. Caller holds
// g.mu. Also used by rollback to restore removed edges (whose IDs are
// smaller than the current tail, hence the sorted insert).
func (g *Graph) linkEdgeLocked(e *Edge) {
	ao := g.out[e.Src]
	if ao == nil {
		ao = &adjacency{}
		g.out[e.Src] = ao
	}
	ao.insert(e)
	ai := g.in[e.Trg]
	if ai == nil {
		ai = &adjacency{}
		g.in[e.Trg] = ai
	}
	ai.insert(e)
}

func (g *Graph) indexLabel(v *Vertex, label string) {
	m := g.byLabel[label]
	if m == nil {
		m = make(map[ID]*Vertex)
		g.byLabel[label] = m
	}
	m[v.ID] = v
}

func (g *Graph) unindexLabel(id ID, label string) {
	if m := g.byLabel[label]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(g.byLabel, label)
		}
	}
}

// removeEdgeLocked unlinks e from all indices. Caller holds g.mu.
func (g *Graph) removeEdgeLocked(e *Edge) {
	delete(g.edges, e.ID)
	if m := g.byType[e.Type]; m != nil {
		delete(m, e.ID)
		if len(m) == 0 {
			delete(g.byType, e.Type)
		}
	}
	if a := g.out[e.Src]; a != nil {
		a.remove(e)
	}
	if a := g.in[e.Trg]; a != nil {
		a.remove(e)
	}
}

// --- auto-committed single-operation mutators ---

// AddVertex adds a vertex in an auto-committed one-op transaction and
// returns its ID. Null-valued properties are ignored. The label slice and
// property map are copied.
func (g *Graph) AddVertex(labels []string, props map[string]value.Value) ID {
	tx := g.Begin()
	id := tx.AddVertex(labels, props)
	_ = tx.Commit()
	return id
}

// AddEdge adds a typed edge between existing vertices in an
// auto-committed one-op transaction and returns its ID.
func (g *Graph) AddEdge(src, trg ID, typ string, props map[string]value.Value) (ID, error) {
	tx := g.Begin()
	id, err := tx.AddEdge(src, trg, typ, props)
	_ = tx.Commit()
	return id, err
}

// RemoveEdge removes the edge with the given ID (auto-committed).
func (g *Graph) RemoveEdge(id ID) error {
	tx := g.Begin()
	err := tx.RemoveEdge(id)
	_ = tx.Commit()
	return err
}

// RemoveVertex removes the vertex and all its incident edges
// (auto-committed). The resulting ChangeSet carries the incident edge
// removals alongside the vertex removal; removed objects stay readable
// through their deltas.
func (g *Graph) RemoveVertex(id ID) error {
	tx := g.Begin()
	err := tx.RemoveVertex(id)
	_ = tx.Commit()
	return err
}

// SetVertexProperty sets (or, with a null value, removes) a vertex
// property (auto-committed). No change is recorded if the value is
// unchanged.
func (g *Graph) SetVertexProperty(id ID, key string, val value.Value) error {
	tx := g.Begin()
	err := tx.SetVertexProperty(id, key, val)
	_ = tx.Commit()
	return err
}

// SetEdgeProperty sets (or, with a null value, removes) an edge property
// (auto-committed).
func (g *Graph) SetEdgeProperty(id ID, key string, val value.Value) error {
	tx := g.Begin()
	err := tx.SetEdgeProperty(id, key, val)
	_ = tx.Commit()
	return err
}

// AddVertexLabel adds a label to an existing vertex (auto-committed).
// Adding an existing label is a no-op.
func (g *Graph) AddVertexLabel(id ID, label string) error {
	tx := g.Begin()
	err := tx.AddVertexLabel(id, label)
	_ = tx.Commit()
	return err
}

// RemoveVertexLabel removes a label from an existing vertex
// (auto-committed). Removing an absent label is a no-op.
func (g *Graph) RemoveVertexLabel(id ID, label string) error {
	tx := g.Begin()
	err := tx.RemoveVertexLabel(id, label)
	_ = tx.Commit()
	return err
}

// --- readers ---

// VertexByID returns the vertex with the given ID.
func (g *Graph) VertexByID(id ID) (*Vertex, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.vertices[id]
	return v, ok
}

// EdgeByID returns the edge with the given ID.
func (g *Graph) EdgeByID(id ID) (*Edge, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.edges[id]
	return e, ok
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.vertices)
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// VerticesByLabel returns the vertices carrying the given label, sorted by
// ID. An empty label selects all vertices.
func (g *Graph) VerticesByLabel(label string) []*Vertex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Vertex
	if label == "" {
		out = make([]*Vertex, 0, len(g.vertices))
		for _, v := range g.vertices {
			out = append(out, v)
		}
	} else {
		m := g.byLabel[label]
		out = make([]*Vertex, 0, len(m))
		for _, v := range m {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EdgesByType returns the edges of the given type, sorted by ID. An empty
// type selects all edges.
func (g *Graph) EdgesByType(typ string) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Edge
	if typ == "" {
		out = make([]*Edge, 0, len(g.edges))
		for _, e := range g.edges {
			out = append(out, e)
		}
	} else {
		m := g.byType[typ]
		out = make([]*Edge, 0, len(m))
		for _, e := range m {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OutEdges returns the outgoing edges of the vertex, optionally filtered
// by type ("" selects all), sorted by edge ID. The result is an
// immutable snapshot of the adjacency index at call time: callers must
// not modify it, and it does not reflect later mutations (mutation
// publishes fresh slices rather than shifting shared ones).
func (g *Graph) OutEdges(id ID, typ string) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.out[id].edges(typ)
}

// InEdges returns the incoming edges of the vertex, optionally filtered
// by type ("" selects all), sorted by edge ID. The same aliasing rules
// as OutEdges apply.
func (g *Graph) InEdges(id ID, typ string) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.in[id].edges(typ)
}

// ForEachOutEdge invokes fn for every outgoing edge of the vertex with
// the given type ("" selects all), in edge-ID order, until fn returns
// false. It allocates nothing and iterates the same immutable snapshot
// OutEdges returns. fn must not mutate the graph; concurrent reads are
// fine (fn runs outside the graph's internal lock).
func (g *Graph) ForEachOutEdge(id ID, typ string, fn func(*Edge) bool) {
	g.mu.RLock()
	es := g.out[id].edges(typ)
	g.mu.RUnlock()
	for _, e := range es {
		if !fn(e) {
			return
		}
	}
}

// ForEachInEdge is ForEachOutEdge for incoming edges.
func (g *Graph) ForEachInEdge(id ID, typ string, fn func(*Edge) bool) {
	g.mu.RLock()
	es := g.in[id].edges(typ)
	g.mu.RUnlock()
	for _, e := range es {
		if !fn(e) {
			return
		}
	}
}

// Labels returns the sorted set of labels in use.
func (g *Graph) Labels() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.byLabel))
	for l := range g.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EdgeTypes returns the sorted set of edge types in use.
func (g *Graph) EdgeTypes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.byType))
	for t := range g.byType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
