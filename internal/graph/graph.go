// Package graph implements an in-memory property graph store with
// fine-grained change notification.
//
// The store realises the paper's data model (Section 2):
//
//	G = (V, E, st, L, T, labels, types, Pv, Pe)
//
// Vertices carry a set of labels and a property map; edges carry a type and
// a property map. The store maintains label, type and adjacency indices and
// emits events for every elementary change — vertex/edge addition and
// removal, label addition/removal, and property updates including the old
// value. These events are exactly the fine-granularity (FGN) update
// operations the paper requires: a property write produces a single
// property-level event, not a wholesale row replacement.
//
// Concurrency: mutations are serialised by an internal writer mutex; data
// is additionally guarded by an RWMutex so readers may run concurrently
// with each other. Listeners are invoked synchronously after the mutation
// has been applied (the data lock is released first, so listeners may read
// the graph). Listeners must not mutate the graph.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"pgiv/internal/value"
)

// ID identifies a vertex or an edge. Vertex and edge ID spaces are
// disjoint sequences assigned by the store.
type ID = int64

// Vertex is a labelled vertex with a property map. The exported fields and
// the accessor results must be treated as read-only by callers.
type Vertex struct {
	ID     ID
	labels []string // sorted
	props  map[string]value.Value
}

// HasLabel reports whether the vertex carries the given label.
func (v *Vertex) HasLabel(label string) bool {
	i := sort.SearchStrings(v.labels, label)
	return i < len(v.labels) && v.labels[i] == label
}

// Labels returns the sorted labels of the vertex. Callers must not mutate
// the returned slice.
func (v *Vertex) Labels() []string { return v.labels }

// Prop returns the value of the property key, or null if absent.
func (v *Vertex) Prop(key string) value.Value {
	if p, ok := v.props[key]; ok {
		return p
	}
	return value.Null
}

// PropKeys returns the sorted property keys of the vertex.
func (v *Vertex) PropKeys() []string { return sortedPropKeys(v.props) }

// Edge is a typed edge with a property map. Src and Trg are vertex IDs.
type Edge struct {
	ID    ID
	Src   ID
	Trg   ID
	Type  string
	props map[string]value.Value
}

// Prop returns the value of the property key, or null if absent.
func (e *Edge) Prop(key string) value.Value {
	if p, ok := e.props[key]; ok {
		return p
	}
	return value.Null
}

// PropKeys returns the sorted property keys of the edge.
func (e *Edge) PropKeys() []string { return sortedPropKeys(e.props) }

func sortedPropKeys(m map[string]value.Value) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Listener receives change events. All callbacks run synchronously inside
// the mutating call, after the change has been applied to the store.
// Removal callbacks receive the removed object, which remains readable.
// Property callbacks receive the previous value (null if the key was
// absent); the new value is readable from the object.
type Listener interface {
	VertexAdded(v *Vertex)
	VertexRemoved(v *Vertex)
	EdgeAdded(e *Edge)
	EdgeRemoved(e *Edge)
	VertexLabelAdded(v *Vertex, label string)
	VertexLabelRemoved(v *Vertex, label string)
	VertexPropertyChanged(v *Vertex, key string, old value.Value)
	EdgePropertyChanged(e *Edge, key string, old value.Value)
}

// Graph is an in-memory property graph. The zero value is not usable; use
// New.
type Graph struct {
	wmu sync.Mutex   // serialises mutations and notifications
	mu  sync.RWMutex // guards the maps below

	vertices map[ID]*Vertex
	edges    map[ID]*Edge
	byLabel  map[string]map[ID]*Vertex
	byType   map[string]map[ID]*Edge
	out      map[ID][]*Edge // adjacency by source vertex
	in       map[ID][]*Edge // adjacency by target vertex

	nextVertexID ID
	nextEdgeID   ID

	listeners []Listener
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[ID]*Vertex),
		edges:    make(map[ID]*Edge),
		byLabel:  make(map[string]map[ID]*Vertex),
		byType:   make(map[string]map[ID]*Edge),
		out:      make(map[ID][]*Edge),
		in:       make(map[ID][]*Edge),
	}
}

// Subscribe registers a listener for change events.
func (g *Graph) Subscribe(l Listener) {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	g.listeners = append(g.listeners, l)
}

// Unsubscribe removes a previously registered listener.
func (g *Graph) Unsubscribe(l Listener) {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	for i, x := range g.listeners {
		if x == l {
			g.listeners = append(g.listeners[:i], g.listeners[i+1:]...)
			return
		}
	}
}

type eventKind uint8

const (
	evVertexAdded eventKind = iota
	evVertexRemoved
	evEdgeAdded
	evEdgeRemoved
	evLabelAdded
	evLabelRemoved
	evVertexProp
	evEdgeProp
)

type event struct {
	kind  eventKind
	v     *Vertex
	e     *Edge
	label string
	key   string
	old   value.Value
}

func (g *Graph) dispatch(events []event) {
	for _, ev := range events {
		for _, l := range g.listeners {
			switch ev.kind {
			case evVertexAdded:
				l.VertexAdded(ev.v)
			case evVertexRemoved:
				l.VertexRemoved(ev.v)
			case evEdgeAdded:
				l.EdgeAdded(ev.e)
			case evEdgeRemoved:
				l.EdgeRemoved(ev.e)
			case evLabelAdded:
				l.VertexLabelAdded(ev.v, ev.label)
			case evLabelRemoved:
				l.VertexLabelRemoved(ev.v, ev.label)
			case evVertexProp:
				l.VertexPropertyChanged(ev.v, ev.key, ev.old)
			case evEdgeProp:
				l.EdgePropertyChanged(ev.e, ev.key, ev.old)
			}
		}
	}
}

// AddVertex adds a vertex with the given labels and properties and returns
// its ID. Null-valued properties are ignored. The label slice and property
// map are copied.
func (g *Graph) AddVertex(labels []string, props map[string]value.Value) ID {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	g.mu.Lock()
	g.nextVertexID++
	v := &Vertex{ID: g.nextVertexID, props: make(map[string]value.Value, len(props))}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			v.labels = append(v.labels, l)
		}
	}
	sort.Strings(v.labels)
	for k, p := range props {
		if !p.IsNull() {
			v.props[k] = p
		}
	}
	g.vertices[v.ID] = v
	for _, l := range v.labels {
		g.indexLabel(v, l)
	}
	g.mu.Unlock()

	g.dispatch([]event{{kind: evVertexAdded, v: v}})
	return v.ID
}

func (g *Graph) indexLabel(v *Vertex, label string) {
	m := g.byLabel[label]
	if m == nil {
		m = make(map[ID]*Vertex)
		g.byLabel[label] = m
	}
	m[v.ID] = v
}

// AddEdge adds a typed edge between existing vertices and returns its ID.
func (g *Graph) AddEdge(src, trg ID, typ string, props map[string]value.Value) (ID, error) {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	g.mu.Lock()
	if _, ok := g.vertices[src]; !ok {
		g.mu.Unlock()
		return 0, fmt.Errorf("graph: add edge: source vertex %d does not exist", src)
	}
	if _, ok := g.vertices[trg]; !ok {
		g.mu.Unlock()
		return 0, fmt.Errorf("graph: add edge: target vertex %d does not exist", trg)
	}
	g.nextEdgeID++
	e := &Edge{ID: g.nextEdgeID, Src: src, Trg: trg, Type: typ, props: make(map[string]value.Value, len(props))}
	for k, p := range props {
		if !p.IsNull() {
			e.props[k] = p
		}
	}
	g.edges[e.ID] = e
	m := g.byType[typ]
	if m == nil {
		m = make(map[ID]*Edge)
		g.byType[typ] = m
	}
	m[e.ID] = e
	g.out[src] = append(g.out[src], e)
	g.in[trg] = append(g.in[trg], e)
	g.mu.Unlock()

	g.dispatch([]event{{kind: evEdgeAdded, e: e}})
	return e.ID, nil
}

// RemoveEdge removes the edge with the given ID.
func (g *Graph) RemoveEdge(id ID) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	g.mu.Lock()
	e, ok := g.edges[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: remove edge: edge %d does not exist", id)
	}
	g.removeEdgeLocked(e)
	g.mu.Unlock()

	g.dispatch([]event{{kind: evEdgeRemoved, e: e}})
	return nil
}

// removeEdgeLocked unlinks e from all indices. Caller holds g.mu.
func (g *Graph) removeEdgeLocked(e *Edge) {
	delete(g.edges, e.ID)
	if m := g.byType[e.Type]; m != nil {
		delete(m, e.ID)
		if len(m) == 0 {
			delete(g.byType, e.Type)
		}
	}
	g.out[e.Src] = removeEdgeFromSlice(g.out[e.Src], e.ID)
	g.in[e.Trg] = removeEdgeFromSlice(g.in[e.Trg], e.ID)
}

func removeEdgeFromSlice(s []*Edge, id ID) []*Edge {
	for i, e := range s {
		if e.ID == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// RemoveVertex removes the vertex and all its incident edges. Incident
// edges are removed and their events dispatched first, while the vertex
// is still present in the store (so listeners can resolve edge
// endpoints); the vertex removal event follows.
func (g *Graph) RemoveVertex(id ID) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	g.mu.Lock()
	v, ok := g.vertices[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: remove vertex: vertex %d does not exist", id)
	}
	// Collect incident edges (out and in, deduplicated for self-loops).
	incident := make(map[ID]*Edge)
	for _, e := range g.out[id] {
		incident[e.ID] = e
	}
	for _, e := range g.in[id] {
		incident[e.ID] = e
	}
	ids := make([]ID, 0, len(incident))
	for eid := range incident {
		ids = append(ids, eid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var edgeEvents []event
	for _, eid := range ids {
		e := incident[eid]
		g.removeEdgeLocked(e)
		edgeEvents = append(edgeEvents, event{kind: evEdgeRemoved, e: e})
	}
	g.mu.Unlock()

	// Dispatch edge removals while the vertex is still readable.
	g.dispatch(edgeEvents)

	g.mu.Lock()
	delete(g.vertices, id)
	delete(g.out, id)
	delete(g.in, id)
	for _, l := range v.labels {
		if m := g.byLabel[l]; m != nil {
			delete(m, id)
			if len(m) == 0 {
				delete(g.byLabel, l)
			}
		}
	}
	g.mu.Unlock()

	g.dispatch([]event{{kind: evVertexRemoved, v: v}})
	return nil
}

// SetVertexProperty sets (or, with a null value, removes) a vertex
// property. No event is emitted if the value is unchanged.
func (g *Graph) SetVertexProperty(id ID, key string, val value.Value) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	g.mu.Lock()
	v, ok := g.vertices[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: set vertex property: vertex %d does not exist", id)
	}
	old := v.Prop(key)
	if value.Equal(old, val) && old.Kind() == val.Kind() {
		g.mu.Unlock()
		return nil
	}
	if val.IsNull() {
		delete(v.props, key)
	} else {
		v.props[key] = val
	}
	g.mu.Unlock()

	g.dispatch([]event{{kind: evVertexProp, v: v, key: key, old: old}})
	return nil
}

// SetEdgeProperty sets (or, with a null value, removes) an edge property.
func (g *Graph) SetEdgeProperty(id ID, key string, val value.Value) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	g.mu.Lock()
	e, ok := g.edges[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: set edge property: edge %d does not exist", id)
	}
	old := e.Prop(key)
	if value.Equal(old, val) && old.Kind() == val.Kind() {
		g.mu.Unlock()
		return nil
	}
	if val.IsNull() {
		delete(e.props, key)
	} else {
		e.props[key] = val
	}
	g.mu.Unlock()

	g.dispatch([]event{{kind: evEdgeProp, e: e, key: key, old: old}})
	return nil
}

// AddVertexLabel adds a label to an existing vertex. Adding an existing
// label is a no-op.
func (g *Graph) AddVertexLabel(id ID, label string) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	g.mu.Lock()
	v, ok := g.vertices[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: add label: vertex %d does not exist", id)
	}
	if v.HasLabel(label) {
		g.mu.Unlock()
		return nil
	}
	v.labels = append(v.labels, label)
	sort.Strings(v.labels)
	g.indexLabel(v, label)
	g.mu.Unlock()

	g.dispatch([]event{{kind: evLabelAdded, v: v, label: label}})
	return nil
}

// RemoveVertexLabel removes a label from an existing vertex. Removing an
// absent label is a no-op.
func (g *Graph) RemoveVertexLabel(id ID, label string) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	g.mu.Lock()
	v, ok := g.vertices[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("graph: remove label: vertex %d does not exist", id)
	}
	if !v.HasLabel(label) {
		g.mu.Unlock()
		return nil
	}
	i := sort.SearchStrings(v.labels, label)
	v.labels = append(v.labels[:i], v.labels[i+1:]...)
	if m := g.byLabel[label]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(g.byLabel, label)
		}
	}
	g.mu.Unlock()

	g.dispatch([]event{{kind: evLabelRemoved, v: v, label: label}})
	return nil
}

// VertexByID returns the vertex with the given ID.
func (g *Graph) VertexByID(id ID) (*Vertex, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.vertices[id]
	return v, ok
}

// EdgeByID returns the edge with the given ID.
func (g *Graph) EdgeByID(id ID) (*Edge, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.edges[id]
	return e, ok
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.vertices)
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// VerticesByLabel returns the vertices carrying the given label, sorted by
// ID. An empty label selects all vertices.
func (g *Graph) VerticesByLabel(label string) []*Vertex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Vertex
	if label == "" {
		out = make([]*Vertex, 0, len(g.vertices))
		for _, v := range g.vertices {
			out = append(out, v)
		}
	} else {
		m := g.byLabel[label]
		out = make([]*Vertex, 0, len(m))
		for _, v := range m {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EdgesByType returns the edges of the given type, sorted by ID. An empty
// type selects all edges.
func (g *Graph) EdgesByType(typ string) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*Edge
	if typ == "" {
		out = make([]*Edge, 0, len(g.edges))
		for _, e := range g.edges {
			out = append(out, e)
		}
	} else {
		m := g.byType[typ]
		out = make([]*Edge, 0, len(m))
		for _, e := range m {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OutEdges returns a copy of the outgoing edges of the vertex, optionally
// filtered by type ("" selects all).
func (g *Graph) OutEdges(id ID, typ string) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return filterEdges(g.out[id], typ)
}

// InEdges returns a copy of the incoming edges of the vertex, optionally
// filtered by type ("" selects all).
func (g *Graph) InEdges(id ID, typ string) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return filterEdges(g.in[id], typ)
}

func filterEdges(es []*Edge, typ string) []*Edge {
	out := make([]*Edge, 0, len(es))
	for _, e := range es {
		if typ == "" || e.Type == typ {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Labels returns the sorted set of labels in use.
func (g *Graph) Labels() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.byLabel))
	for l := range g.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EdgeTypes returns the sorted set of edge types in use.
func (g *Graph) EdgeTypes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.byType))
	for t := range g.byType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
