package graph

import (
	"bytes"
	"strings"
	"testing"

	"pgiv/internal/value"
)

func TestExportImportRoundTrip(t *testing.T) {
	g := New()
	a := g.AddVertex([]string{"A", "B"}, map[string]value.Value{
		"s":    value.NewString("x"),
		"i":    value.NewInt(7),
		"f":    value.NewFloat(2.5),
		"b":    value.NewBool(true),
		"list": value.NewList([]value.Value{value.NewInt(1), value.NewString("y")}),
	})
	b := g.AddVertex(nil, nil)
	if _, err := g.AddEdge(a, b, "T", map[string]value.Value{"w": value.NewInt(3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, b, "S", nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := g.Export(&buf); err != nil {
		t.Fatal(err)
	}

	g2 := New()
	if err := g2.Import(&buf); err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 2 || g2.NumEdges() != 2 {
		t.Fatalf("round trip lost elements: %d vertices, %d edges", g2.NumVertices(), g2.NumEdges())
	}
	v2, ok := g2.VertexByID(1)
	if !ok {
		t.Fatal("vertex 1 missing")
	}
	if !v2.HasLabel("A") || !v2.HasLabel("B") {
		t.Error("labels lost")
	}
	for _, k := range []string{"s", "i", "f", "b", "list"} {
		orig, _ := g.VertexByID(a)
		if !value.Equal(v2.Prop(k), orig.Prop(k)) {
			t.Errorf("property %s: %s != %s", k, v2.Prop(k), orig.Prop(k))
		}
	}
	// Exports of original and reimported graph are byte-identical
	// (deterministic ordering).
	var buf1, buf2 bytes.Buffer
	if err := g.Export(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := g2.Export(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("export not deterministic across round trip")
	}
}

func TestImportErrors(t *testing.T) {
	g := New()
	g.AddVertex(nil, nil)
	if err := g.Import(strings.NewReader("{}")); err == nil {
		t.Error("import into non-empty graph should fail")
	}
	g2 := New()
	if err := g2.Import(strings.NewReader("not json")); err == nil {
		t.Error("malformed JSON should fail")
	}
	g3 := New()
	if err := g3.Import(strings.NewReader(`{"vertices":[],"edges":[{"id":1,"src":5,"trg":6,"type":"T"}]}`)); err == nil {
		t.Error("dangling edge endpoints should fail")
	}
}

func TestImportPopulatesRegisteredListeners(t *testing.T) {
	g := New()
	rec := &recorder{}
	g.Subscribe(AdaptEvents(rec))
	src := New()
	a := src.AddVertex([]string{"A"}, nil)
	b := src.AddVertex(nil, nil)
	if _, err := src.AddEdge(a, b, "T", nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := g.Import(&buf); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 3 {
		t.Errorf("import emitted %d events, want 3 (%v)", len(rec.events), rec.events)
	}
}
