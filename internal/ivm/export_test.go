package ivm

// SetRewriteHook installs a test seam that runs on the query path
// between memo selection and residual evaluation — the window where a
// concurrent DropView can release the memo's registry entry while the
// read still holds its published rows.
func (e *Engine) SetRewriteHook(fn func()) { e.qs.rewriteHook = fn }
