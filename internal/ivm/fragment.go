package ivm

import (
	"errors"
	"fmt"

	"pgiv/internal/cypher"
	"pgiv/internal/expr"
	"pgiv/internal/nra"
	"pgiv/internal/schema"
)

// ErrNotMaintainable is wrapped by every fragment-check rejection: the
// query parses and evaluates in the snapshot engine but lies outside the
// incrementally maintainable openCypher fragment identified by the paper.
var ErrNotMaintainable = errors.New("query is not incrementally maintainable")

// notMaintainable builds a rejection error.
func notMaintainable(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrNotMaintainable, fmt.Sprintf(format, args...))
}

// CheckFragment verifies that a flattened plan lies inside the
// incrementally maintainable fragment — the paper's fragment extended
// with ordering/top-k (the Top operator, maintained by the Rete
// order-statistic node):
//
//   - ORDER BY keys must be computable from the operator's input columns
//     (returned items, aliases, or pushed-down property attributes) —
//     `RETURN p, p.score ORDER BY p.score` is maintainable,
//     `RETURN p ORDER BY p.score` is not, because the projection drops
//     the ordering key and a score change would reach the window without
//     a delta;
//   - SKIP / LIMIT must be constant expressions (literals and query
//     parameters): the window boundary is fixed at registration;
//   - no expressions whose value depends on mutable graph state that does
//     not flow through the view's deltas: labels(), keys(), properties(),
//     type(), and property accesses that were not pushed down into base
//     operators (e.g. n.prop where n is bound by UNWIND rather than by a
//     pattern) — a change to such state would alter results without any
//     delta reaching the view.
//
// The snapshot engine accepts all of these, which makes the fragment
// boundary directly observable in tests and benchmarks.
func CheckFragment(root nra.Op) error {
	return check(root)
}

func check(op nra.Op) error {
	switch o := op.(type) {
	case *nra.Top:
		for _, it := range o.Items {
			if err := checkExpr(it.Expr, o.Input.Schema()); err != nil {
				return err
			}
		}
		for _, e := range []cypher.Expr{o.Skip, o.Limit} {
			if e == nil {
				continue
			}
			if vars := cypher.Variables(e); len(vars) > 0 {
				return notMaintainable("SKIP/LIMIT must be a constant expression; %q references %q", e.String(), vars[0])
			}
		}
	case *nra.Select:
		if err := checkExpr(o.Cond, o.Input.Schema()); err != nil {
			return err
		}
	case *nra.Project:
		for _, it := range o.Items {
			if err := checkExpr(it.Expr, o.Input.Schema()); err != nil {
				return err
			}
		}
	case *nra.Aggregate:
		for _, it := range o.GroupBy {
			if err := checkExpr(it.Expr, o.Input.Schema()); err != nil {
				return err
			}
		}
		for _, a := range o.Aggs {
			if a.Arg != nil {
				if err := checkExpr(a.Arg, o.Input.Schema()); err != nil {
					return err
				}
			}
		}
	case *nra.Unwind:
		if err := checkExpr(o.Expr, o.Input.Schema()); err != nil {
			return err
		}
	case *nra.ShortestPath:
		// Maintainable when the weight is a constant-or-property spec (our
		// grammar only admits a property name or none) and the hop bounds
		// are constants (always true: the grammar admits integer literals
		// only). Interior-edge predicates must be constant so the Rete node
		// can resolve them once at build time; the gra compiler enforces
		// this, but plans can be built programmatically too.
		for _, ep := range o.EdgePreds {
			if vars := cypher.Variables(ep.Expr); len(vars) > 0 {
				return notMaintainable("shortestPath edge predicate %s references %q; interior-edge predicates must be constant", ep.Key, vars[0])
			}
		}
	}
	for _, c := range op.Children() {
		if err := check(c); err != nil {
			return err
		}
	}
	return nil
}

func checkExpr(e cypher.Expr, s schema.Schema) error {
	if deps := expr.MutableGraphDeps(e); len(deps) > 0 {
		return notMaintainable("function %s() depends on mutable graph state not covered by deltas", deps[0])
	}
	var err error
	cypher.WalkExpr(e, func(x cypher.Expr) {
		if err != nil {
			return
		}
		switch fc := x.(type) {
		case *cypher.FuncCall:
			if fc.Name == "type" {
				err = notMaintainable("type() consults the graph at evaluation time; match the relationship with an explicit type instead")
			}
		case *cypher.PropAccess:
			v, ok := fc.Subject.(*cypher.Variable)
			if !ok {
				err = notMaintainable("property access on a computed expression (%s) cannot be pushed down", fc.String())
				return
			}
			if !s.Has(schema.PropAttr(v.Name, fc.Key)) {
				err = notMaintainable("property %s.%s is not bound by a pattern; fine-grained maintenance requires pushdown into a base operator", v.Name, fc.Key)
			}
		}
	})
	return err
}
