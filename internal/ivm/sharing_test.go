package ivm_test

import (
	"fmt"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/rete"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
	"pgiv/internal/workload"
)

// templateQueries returns nv queries drawn round-robin from nt distinct
// structural templates over the social schema.
func templateQueries(nv, nt int) map[string]string {
	out := make(map[string]string, nv)
	for i := 0; i < nv; i++ {
		out[fmt.Sprintf("v%03d", i)] = fmt.Sprintf(
			"MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.score > %d RETURN a, b", (i%nt)*10)
	}
	return out
}

// TestSubplanSharingDeterminism drives the identical social operation
// stream through engines with subplan sharing on and off — per-op,
// batched, and with a four-worker pool — and asserts every view of the
// battery materialises byte-identical rows in all six configurations.
func TestSubplanSharingDeterminism(t *testing.T) {
	cfg := workload.SocialConfig{
		Persons: 20, PostsPerPerson: 2, RepliesPerPost: 4,
		KnowsPerPerson: 3, LikesPerPerson: 2,
		Langs: []string{"en", "de"}, Seed: 11,
	}
	run := func(opts ivm.Options, batched bool) map[string][]value.Row {
		soc := workload.NewSocial(cfg)
		engine := ivm.NewEngine(soc.G, opts)
		defer engine.Close()
		views := make(map[string]*ivm.View)
		for name, q := range workload.SocialQueries {
			v, err := engine.RegisterView(name, q)
			if err != nil {
				t.Fatalf("register %s: %v", name, err)
			}
			views[name] = v
		}
		// Two views per template on top of the battery: genuine beta
		// sharing (identical full plans share even the production).
		for name, q := range templateQueries(8, 4) {
			v, err := engine.RegisterView(name, q)
			if err != nil {
				t.Fatalf("register %s: %v", name, err)
			}
			views[name] = v
		}
		if batched {
			soc.Load()
			soc.ChurnBatch(120)
		} else {
			soc.LoadPerOp()
			soc.Churn(120)
		}
		out := make(map[string][]value.Row)
		for name, v := range views {
			out[name] = v.Rows()
		}
		return out
	}
	baseline := run(ivm.Options{NoSharing: true, NumWorkers: 1}, false)
	for _, mode := range []struct {
		name    string
		opts    ivm.Options
		batched bool
	}{
		{"shared/per-op", ivm.Options{NumWorkers: 1}, false},
		{"shared/batched", ivm.Options{NumWorkers: 1}, true},
		{"shared/parallel(4)", ivm.Options{NumWorkers: 4}, false},
		{"private/batched", ivm.Options{NoSharing: true, NumWorkers: 1}, true},
		{"private/parallel(4)", ivm.Options{NoSharing: true, NumWorkers: 4}, false},
	} {
		got := run(mode.opts, mode.batched)
		for name, want := range baseline {
			rows := got[name]
			if len(rows) != len(want) {
				t.Fatalf("%s: view %s has %d rows, baseline %d", mode.name, name, len(rows), len(want))
			}
			for i := range rows {
				if value.CompareRows(rows[i], want[i]) != 0 {
					t.Fatalf("%s: view %s row %d differs: %v vs %v", mode.name, name, i, rows[i], want[i])
				}
			}
		}
	}
}

// TestTemplateMemorySharing pins the memory claim of EXP-L: K views
// instantiated from one template hold ~1× (not K×) the join/dedup state.
// Engine.MemoryEntries counts every distinct node once.
func TestTemplateMemorySharing(t *testing.T) {
	const copies = 8
	build := func(opts ivm.Options, nv int) (*ivm.Engine, *workload.Social) {
		soc := workload.GenerateSocial(workload.SocialConfig{
			Persons: 30, PostsPerPerson: 2, RepliesPerPost: 3,
			KnowsPerPerson: 4, LikesPerPerson: 2,
			Langs: []string{"en", "de"}, Seed: 5,
		})
		engine := ivm.NewEngine(soc.G, opts)
		for i := 0; i < nv; i++ {
			q := "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) RETURN a, c"
			if _, err := engine.RegisterView(fmt.Sprintf("v%d", i), q); err != nil {
				t.Fatal(err)
			}
		}
		return engine, soc
	}

	one, _ := build(ivm.Options{}, 1)
	base := one.MemoryEntries()
	if base == 0 {
		t.Fatal("single view holds no memory")
	}
	one.Close()

	shared, _ := build(ivm.Options{}, copies)
	if got := shared.MemoryEntries(); got != base {
		t.Errorf("%d shared template views hold %d entries, single view holds %d (want identical)", copies, got, base)
	}
	shared.Close()

	private, _ := build(ivm.Options{NoSharing: true}, copies)
	if got := private.MemoryEntries(); got != copies*base {
		t.Errorf("%d private views hold %d entries, want %d (K×)", copies, got, copies*base)
	}
	private.Close()
}

// TestPartialSharingMemory: views sharing a join prefix but differing in
// their suffix share the prefix state.
func TestPartialSharingMemory(t *testing.T) {
	soc := workload.GenerateSocial(workload.SocialConfig{
		Persons: 25, PostsPerPerson: 2, RepliesPerPost: 3,
		KnowsPerPerson: 4, LikesPerPerson: 2,
		Langs: []string{"en", "de"}, Seed: 6,
	})
	engine := ivm.NewEngine(soc.G)
	defer engine.Close()
	base := "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person)"
	if _, err := engine.RegisterView("all", base+" RETURN a, c"); err != nil {
		t.Fatal(err)
	}
	afterOne := engine.MemoryEntries()
	nodesOne := engine.NodeCount()
	// Same two-hop join, different projection: the join chain is shared,
	// only the projection/production differ.
	if _, err := engine.RegisterView("pairs", base+" RETURN a, b, c"); err != nil {
		t.Fatal(err)
	}
	afterTwo := engine.MemoryEntries()
	if engine.NodeCount() >= 2*nodesOne {
		t.Errorf("node count doubled (%d → %d): join prefix not shared", nodesOne, engine.NodeCount())
	}

	// What would "pairs" cost standing alone? Its registration on the
	// shared engine must cost exactly that minus the shared join state.
	solo := ivm.NewEngine(soc.G)
	if _, err := solo.RegisterView("pairs", base+" RETURN a, b, c"); err != nil {
		t.Fatal(err)
	}
	pairsAlone := solo.MemoryEntries()
	solo.Close()
	savings := afterOne + pairsAlone - afterTwo
	if savings <= 0 {
		t.Errorf("prefix-sharing registration saved nothing: one=%d pairsAlone=%d both=%d",
			afterOne, pairsAlone, afterTwo)
	}
	if grow := afterTwo - afterOne; grow >= pairsAlone {
		t.Errorf("registration grew memory by %d, at least a full private copy (%d)", grow, pairsAlone)
	}
}

// TestReplaySeedMatchesSnapshot: a view registered late onto live shared
// state — seeded by memory replay, not a graph scan — must match the
// snapshot engine exactly, and keep matching under subsequent updates.
func TestReplaySeedMatchesSnapshot(t *testing.T) {
	soc := workload.GenerateSocial(workload.SocialConfig{
		Persons: 20, PostsPerPerson: 2, RepliesPerPost: 4,
		KnowsPerPerson: 3, LikesPerPerson: 2,
		Langs: []string{"en", "de"}, Seed: 9,
	})
	engine := ivm.NewEngine(soc.G)
	defer engine.Close()
	for name, q := range workload.SocialQueries {
		if _, err := engine.RegisterView(name, q); err != nil {
			t.Fatal(err)
		}
	}
	soc.Churn(30)

	// Late registrations: an exact duplicate (shares the production), a
	// template copy sharing a transitive subtree, and a suffix extension
	// over a shared join chain.
	late := map[string]string{
		"dup-threads":  workload.SocialQueries["threads"],
		"dup-popular":  workload.SocialQueries["popular"],
		"fof-filtered": "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE a.score > 50 RETURN a, c",
	}
	views := make(map[string]*ivm.View)
	for name, q := range late {
		v, err := engine.RegisterView(name, q)
		if err != nil {
			t.Fatalf("late register %s: %v", name, err)
		}
		views[name] = v
	}
	check := func(stage string) {
		t.Helper()
		for name, v := range views {
			res, err := snapshot.Query(soc.G, v.Query(), nil)
			if err != nil {
				t.Fatal(err)
			}
			want := res.Sorted()
			got := v.Rows()
			if len(got) != len(want) {
				t.Fatalf("%s %s: view %d rows, snapshot %d", stage, name, len(got), len(want))
			}
			for i := range got {
				if value.CompareRows(got[i], want[i]) != 0 {
					t.Fatalf("%s %s: row %d differs", stage, name, i)
				}
			}
		}
	}
	check("after replay seed")
	soc.Churn(30)
	check("after churn")
}

// TestDropViewSharedSurvives pins the ref-counted lifecycle: dropping one
// of several views attached to shared subtrees must leave the survivors'
// rows intact and correctly maintained, and must reclaim the dropped
// view's private suffix.
func TestDropViewSharedSurvives(t *testing.T) {
	soc := workload.GenerateSocial(workload.SocialConfig{
		Persons: 20, PostsPerPerson: 2, RepliesPerPost: 3,
		KnowsPerPerson: 3, LikesPerPerson: 2,
		Langs: []string{"en", "de"}, Seed: 13,
	})
	engine := ivm.NewEngine(soc.G)
	defer engine.Close()

	q := "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) RETURN a, c"
	va, err := engine.RegisterView("a", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.RegisterView("b", q); err != nil {
		t.Fatal(err)
	}
	vc, err := engine.RegisterView("c",
		"MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) WHERE a.score > 40 RETURN a, c")
	if err != nil {
		t.Fatal(err)
	}
	nodesBefore := engine.NodeCount()

	if err := engine.DropView("b"); err != nil {
		t.Fatal(err)
	}
	// b shared a's entire chain including the production: nothing to
	// reclaim.
	if got := engine.NodeCount(); got != nodesBefore {
		t.Errorf("dropping a fully shared view changed node count %d → %d", nodesBefore, got)
	}
	if err := engine.DropView("c"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got >= nodesBefore {
		t.Errorf("dropping view c reclaimed nothing (%d → %d)", nodesBefore, got)
	}
	_ = vc

	// The survivor keeps maintaining correctly through further updates.
	soc.Churn(40)
	res, err := snapshot.Query(soc.G, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Sorted()
	got := va.Rows()
	if len(got) != len(want) {
		t.Fatalf("survivor has %d rows, snapshot %d", len(got), len(want))
	}
	for i := range got {
		if value.CompareRows(got[i], want[i]) != 0 {
			t.Fatalf("survivor row %d differs", i)
		}
	}

	// Dropping the last view empties the registry entirely (inputs
	// included — they are ref-counted too).
	if err := engine.DropView("a"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got != 0 {
		t.Errorf("registry holds %d nodes after the last view dropped", got)
	}
	if got := engine.MemoryEntries(); got != 0 {
		t.Errorf("registry holds %d memoized rows after the last view dropped", got)
	}
}

// TestOuterJoinTemplateMemorySharing extends the EXP-L memory claim to
// the outer-join family: K views instantiated from one OPTIONAL MATCH
// template hold ~1× (not K×) the outer-join state, and the padding
// behaviour survives sharing.
func TestOuterJoinTemplateMemorySharing(t *testing.T) {
	const copies = 6
	const q = "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b"
	build := func(opts ivm.Options, nv int) *ivm.Engine {
		soc := workload.GenerateSocial(workload.SocialConfig{
			Persons: 30, PostsPerPerson: 1, RepliesPerPost: 1,
			KnowsPerPerson: 2, LikesPerPerson: 1,
			Langs: []string{"en"}, Seed: 7,
		})
		engine := ivm.NewEngine(soc.G, opts)
		for i := 0; i < nv; i++ {
			if _, err := engine.RegisterView(fmt.Sprintf("v%d", i), q); err != nil {
				t.Fatal(err)
			}
		}
		return engine
	}

	one := build(ivm.Options{}, 1)
	base := one.MemoryEntries()
	if base == 0 {
		t.Fatal("single outer-join view holds no memory")
	}
	one.Close()

	shared := build(ivm.Options{}, copies)
	if got := shared.MemoryEntries(); got != base {
		t.Errorf("%d shared optional-match views hold %d entries, single view holds %d (want identical)", copies, got, base)
	}
	shared.Close()

	private := build(ivm.Options{NoSharing: true}, copies)
	if got := private.MemoryEntries(); got != copies*base {
		t.Errorf("%d private views hold %d entries, want %d (K×)", copies, got, copies*base)
	}
	private.Close()
}

// TestOuterJoinDropViewReleasesSuffix pins the ref-counted lifecycle of
// the new operator family: a view whose plan shares an outer-join (and
// an exists) subtree with a live view must release exactly its unshared
// suffix on DropView — the shared subtree keeps its memory and its
// other attachments — and dropping the last view must empty the
// registry (no leaked nodes, no leaked memoized rows).
func TestOuterJoinDropViewReleasesSuffix(t *testing.T) {
	soc := workload.GenerateSocial(workload.SocialConfig{
		Persons: 20, PostsPerPerson: 2, RepliesPerPost: 2,
		KnowsPerPerson: 3, LikesPerPerson: 2,
		Langs: []string{"en", "de"}, Seed: 21,
	})
	engine := ivm.NewEngine(soc.G)
	defer engine.Close()

	outer := "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person)"
	va, err := engine.RegisterView("a", outer+" RETURN a, b")
	if err != nil {
		t.Fatal(err)
	}
	nodesOne := engine.NodeCount()

	// Differs only above the shared outer-join subtree (projection order).
	if _, err := engine.RegisterView("b", outer+" RETURN b, a"); err != nil {
		t.Fatal(err)
	}
	nodesTwo := engine.NodeCount()
	if grow := nodesTwo - nodesOne; grow <= 0 || grow >= nodesOne {
		t.Errorf("second view grew node count by %d of %d: outer-join subtree not shared", grow, nodesOne)
	}
	// An exists-family sibling sharing the same inputs.
	if _, err := engine.RegisterView("c",
		"MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got <= nodesTwo {
		t.Errorf("exists view added no nodes (%d → %d)", nodesTwo, got)
	}

	// Dropping the suffix views restores the earlier node counts exactly.
	if err := engine.DropView("c"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got != nodesTwo {
		t.Errorf("dropping exists view: node count %d, want %d", got, nodesTwo)
	}
	if err := engine.DropView("b"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got != nodesOne {
		t.Errorf("dropping shared-outer-join view: node count %d, want %d", got, nodesOne)
	}

	// The survivor keeps maintaining padding flips correctly.
	soc.Churn(40)
	res, err := snapshot.Query(soc.G, va.Query(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Sorted()
	got := va.Rows()
	if len(got) != len(want) {
		t.Fatalf("survivor has %d rows, snapshot %d", len(got), len(want))
	}
	for i := range got {
		if value.CompareRows(got[i], want[i]) != 0 {
			t.Fatalf("survivor row %d differs", i)
		}
	}

	// Dropping the last view leaks nothing.
	if err := engine.DropView("a"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got != 0 {
		t.Errorf("registry holds %d nodes after the last view dropped", got)
	}
	if got := engine.MemoryEntries(); got != 0 {
		t.Errorf("registry holds %d memoized rows after the last view dropped", got)
	}
}

// TestInputSharingAcrossVariableRenames: input (alpha) nodes are
// variable-independent, so views that merely rename pattern variables
// share them — the PR 2 alpha-sharing behaviour, preserved under the
// subplan registry.
func TestInputSharingAcrossVariableRenames(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	if _, err := engine.RegisterView("a", "MATCH (a:Person) RETURN a"); err != nil {
		t.Fatal(err)
	}
	afterOne := engine.NodeCount()
	if _, err := engine.RegisterView("b", "MATCH (b:Person) RETURN b"); err != nil {
		t.Fatal(err)
	}
	// The second view rebuilds its projection and production but attaches
	// to the first view's vertex input.
	grow := engine.NodeCount() - afterOne
	if grow >= afterOne {
		t.Errorf("variable-renamed view duplicated all %d nodes (grew by %d): input not shared", afterOne, grow)
	}
	// Both views stay correct under updates through the shared input.
	g.AddVertex([]string{"Person"}, nil)
	for _, name := range []string{"a", "b"} {
		v, _ := engine.View(name)
		if len(v.Rows()) != 1 {
			t.Errorf("view %s has %d rows, want 1", name, len(v.Rows()))
		}
	}
}

// TestOnChangeSortedViewOrder: with several views affected by one
// commit, OnChange callbacks fire in sorted view-name order regardless
// of registration order.
func TestOnChangeSortedViewOrder(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	var fired []string
	// Register in non-sorted order; all views see every KNOWS edge.
	for _, name := range []string{"zeta", "alpha", "mid"} {
		name := name
		v, err := engine.RegisterView(name,
			fmt.Sprintf("MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b, %q", name))
		if err != nil {
			t.Fatal(err)
		}
		v.OnChange(func([]rete.Delta) { fired = append(fired, name) })
	}
	p := g.AddVertex([]string{"Person"}, nil)
	q := g.AddVertex([]string{"Person"}, nil)
	if _, err := g.AddEdge(p, q, "KNOWS", nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// TestSharedProductionOnChange: views sharing one production each
// receive the commit's delta batch exactly once.
func TestSharedProductionOnChange(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	const q = "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b"
	fires := make(map[string]int)
	for _, name := range []string{"x", "y"} {
		name := name
		v, err := engine.RegisterView(name, q)
		if err != nil {
			t.Fatal(err)
		}
		v.OnChange(func(ds []rete.Delta) { fires[name] += len(ds) })
	}
	p := g.AddVertex([]string{"Person"}, nil)
	r := g.AddVertex([]string{"Person"}, nil)
	if _, err := g.AddEdge(p, r, "KNOWS", nil); err != nil {
		t.Fatal(err)
	}
	if fires["x"] != 1 || fires["y"] != 1 {
		t.Fatalf("fires = %v, want one delta each", fires)
	}
	// Dropping x must not silence y.
	if err := engine.DropView("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(r, p, "KNOWS", nil); err != nil {
		t.Fatal(err)
	}
	if fires["x"] != 1 {
		t.Errorf("dropped view still fired (%d)", fires["x"])
	}
	if fires["y"] != 2 {
		t.Errorf("surviving view fires = %d, want 2", fires["y"])
	}
}

// TestLateRegistrationReplayTransitive: a late duplicate of a transitive
// view must seed from the shared node's memoized fragments and stay
// consistent afterwards.
func TestLateRegistrationReplayTransitive(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	defer engine.Close()
	const q = "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, c"
	if _, err := engine.RegisterView("first", q); err != nil {
		t.Fatal(err)
	}
	post := g.AddVertex([]string{"Post"}, map[string]value.Value{"lang": value.NewString("en")})
	prev := post
	var last graph.ID
	for i := 0; i < 6; i++ {
		c := g.AddVertex([]string{"Comm"}, map[string]value.Value{"lang": value.NewString("en")})
		e, err := g.AddEdge(prev, c, "REPLY", nil)
		if err != nil {
			t.Fatal(err)
		}
		prev, last = c, e
	}
	// Same plan but a distinct projection: shares the transitive chain,
	// adds its own suffix, seeded by fragment replay.
	second, err := engine.RegisterView("second",
		"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN c, p")
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		res, err := snapshot.Query(g, second.Query(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := res.Sorted()
		got := second.Rows()
		if len(got) != len(want) {
			t.Fatalf("%s: view %d rows, snapshot %d", stage, len(got), len(want))
		}
		for i := range got {
			if value.CompareRows(got[i], want[i]) != 0 {
				t.Fatalf("%s: row %d differs", stage, i)
			}
		}
	}
	check("seed")
	if err := g.RemoveEdge(last); err != nil {
		t.Fatal(err)
	}
	check("after edge removal")
}
