package ivm_test

import (
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// TestDropViewDuringRewriteRead reproduces the drop-under-read race: a
// rewrite-served query selects a view's memo, then the view is dropped
// (releasing its registry entry) before the residual evaluates. The read
// must still answer correctly from the rows it holds — the published
// slice is immutable and the pinned epoch snapshot keeps property state
// for the residual's lookups — and it exercises the restamp path first:
// the commit preceding the read leaves the view's contents unchanged, so
// its published rows are the restamped previous slice.
func TestDropViewDuringRewriteRead(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g, ivm.Options{NumWorkers: 1})
	defer engine.Close()

	if _, err := engine.RegisterView("posts",
		"MATCH (p:Post) WHERE p.score > 3 RETURN p, p.lang"); err != nil {
		t.Fatal(err)
	}
	err := g.Batch(func(tx *graph.Tx) error {
		for i := 0; i < 10; i++ {
			tx.AddVertex([]string{"Post"}, map[string]value.Value{
				"score": value.NewInt(int64(i)),
				"lang":  value.NewString([]string{"en", "de"}[i%2]),
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.EnableRewrite()

	// A commit that cannot affect the view: publication restamps the
	// previous rows slice at the new epoch.
	if err := g.Batch(func(tx *graph.Tx) error {
		tx.AddVertex([]string{"Person"}, nil)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The query needs a residual over the memo (range-widened filter plus
	// a property lookup the memo did not project as a column), so the
	// evaluation after the drop touches both the published rows and the
	// pinned graph snapshot.
	const q = "MATCH (p:Post) WHERE p.score > 5 RETURN p, p.lang"
	want, err := snapshot.Query(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}

	dropped := false
	engine.SetRewriteHook(func() {
		if !dropped {
			dropped = true
			if err := engine.DropView("posts"); err != nil {
				t.Errorf("drop during read: %v", err)
			}
		}
	})
	got, _, err := engine.Query(q)
	if err != nil {
		t.Fatalf("rewrite-served read after drop: %v", err)
	}
	if !dropped {
		t.Fatal("hook never fired: the query was not rewrite-served")
	}
	st := engine.Stats()
	if st.RewriteResidual != 1 {
		t.Fatalf("expected one residual hit, stats %+v", st)
	}
	gotRows := (&snapshot.Result{Rows: got.Rows}).Sorted()
	wantRows := want.Sorted()
	if len(gotRows) != len(wantRows) {
		t.Fatalf("got %d rows, want %d", len(gotRows), len(wantRows))
	}
	for i := range gotRows {
		if value.CompareRows(gotRows[i], wantRows[i]) != 0 {
			t.Fatalf("row %d: got %s want %s", i, value.RowString(gotRows[i]), value.RowString(wantRows[i]))
		}
	}

	// With the view gone, the same query must now miss and still answer
	// correctly from scratch.
	engine.SetRewriteHook(nil)
	again, _, err := engine.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Stats().RewriteMiss == 0 {
		t.Fatal("expected a miss after the drop")
	}
	againRows := (&snapshot.Result{Rows: again.Rows}).Sorted()
	for i := range againRows {
		if value.CompareRows(againRows[i], wantRows[i]) != 0 {
			t.Fatalf("post-drop row %d mismatch", i)
		}
	}
}
