package ivm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
)

// batteryQueries is the incremental-fragment query battery (EXP-H): every
// operator of the pipeline is exercised — fixed and variable-length
// patterns in all directions, property pushdown, selections, projections,
// DISTINCT, aggregation, named paths and path unwinding, relationship
// uniqueness, multi-clause joins and cartesian products.
var batteryQueries = []string{
	"MATCH (p:Post) RETURN p",
	"MATCH (p:Post) RETURN p.lang",
	"MATCH (p:Post) WHERE p.score > 5 RETURN p, p.score",
	"MATCH (a)-[e:KNOWS]->(b) RETURN a, b",
	"MATCH (a:Person)-[e]->(b) RETURN a, e, b",
	"MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN a, b, c",
	"MATCH (p:Post)<-[:LIKES]-(u:Person) RETURN p, u",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
	"MATCH (p:Post)-[:REPLY*1..2]->(c:Comm) RETURN p, c",
	"MATCH (p:Post)-[:REPLY*0..]->(m) RETURN p, m",
	"MATCH (a:Person) WHERE a.name STARTS WITH 'A' RETURN a.name",
	"MATCH (a:Person) RETURN DISTINCT a.city",
	"MATCH (p:Post) RETURN count(*)",
	"MATCH (p:Post) RETURN p.lang, count(*)",
	"MATCH (a:Person) RETURN min(a.score), max(a.score), sum(a.score)",
	"MATCH (a:Person) RETURN avg(a.score), count(a.score)",
	"MATCH (a:Person) RETURN collect(a.score)",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, count(b)",
	"MATCH t = (a:Person)-[:KNOWS*1..3]->(b:Person) RETURN a, b, length(t)",
	"UNWIND [1, 2, 2, 3] AS x RETURN x, x * 2",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN p, n",
	"MATCH (a:Person {city: 'berlin'}) RETURN a",
	"MATCH (a:Person)-[e:KNOWS {weight: 3}]->(b) RETURN a, b",
	"MATCH (a:Person), (p:Post) WHERE a.score = p.score RETURN a, p",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) MATCH (b)-[:LIKES]->(p:Post) RETURN a, p",
	"MATCH (a)-[:REPLY]->(a2) WHERE a.lang = a2.lang RETURN a, a2",
	"MATCH (a:Person) WHERE a.score IN [1, 2, 3] RETURN a",
	"MATCH (a:Person) WHERE a.nick IS NULL RETURN a",
	"MATCH (x:Comm)-[:REPLY]->(x2:Comm)-[:REPLY]->(x3:Comm)-[:REPLY]->(x) RETURN x, x2, x3",
	"MATCH (h:Person:Hot) RETURN h, h.score",
	"MATCH (a:Person) RETURN count(DISTINCT a.city)",
	"MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
	"MATCH (a:Person) WHERE (a)-[:LIKES]->(:Post) RETURN a",
	"MATCH (a:Person)-[:KNOWS]->(b) WHERE NOT (b)-[:KNOWS]->(a) RETURN a, b",
	"MATCH (p:Post) WHERE NOT (p)-[:REPLY*]->(:Comm {lang: 'de'}) RETURN p",
}

// mutator drives a random but reproducible update stream against a graph.
type mutator struct {
	g *graph.Graph
	r *rand.Rand
}

var (
	labels = [][]string{{"Person"}, {"Post"}, {"Comm"}}
	langs  = []string{"en", "de", "fr"}
	cities = []string{"berlin", "budapest", "aachen"}
	names  = []string{"Alice", "Antal", "Bob", "Borbala", "Cecil"}
	types  = []string{"KNOWS", "REPLY", "LIKES"}
)

func (m *mutator) randomVertexProps() map[string]value.Value {
	props := map[string]value.Value{
		"score": value.NewInt(int64(m.r.Intn(10))),
	}
	switch m.r.Intn(3) {
	case 0:
		props["lang"] = value.NewString(langs[m.r.Intn(len(langs))])
	case 1:
		props["city"] = value.NewString(cities[m.r.Intn(len(cities))])
		props["name"] = value.NewString(names[m.r.Intn(len(names))])
	}
	return props
}

func (m *mutator) liveVertices() []graph.ID {
	var ids []graph.ID
	for _, v := range m.g.VerticesByLabel("") {
		ids = append(ids, v.ID)
	}
	return ids
}

func (m *mutator) liveEdges() []graph.ID {
	var ids []graph.ID
	for _, e := range m.g.EdgesByType("") {
		ids = append(ids, e.ID)
	}
	return ids
}

func (m *mutator) pickVertex() (graph.ID, bool) {
	ids := m.liveVertices()
	if len(ids) == 0 {
		return 0, false
	}
	return ids[m.r.Intn(len(ids))], true
}

// step applies one random update and returns its description.
func (m *mutator) step(t *testing.T) string {
	t.Helper()
	switch op := m.r.Intn(100); {
	case op < 15: // add vertex
		ls := labels[m.r.Intn(len(labels))]
		id := m.g.AddVertex(ls, m.randomVertexProps())
		return fmt.Sprintf("add vertex %d %v", id, ls)
	case op < 40: // add edge
		src, ok1 := m.pickVertex()
		trg, ok2 := m.pickVertex()
		if !ok1 || !ok2 {
			return "noop"
		}
		typ := types[m.r.Intn(len(types))]
		props := map[string]value.Value{}
		if typ == "KNOWS" {
			props["weight"] = value.NewInt(int64(m.r.Intn(5)))
		}
		id, err := m.g.AddEdge(src, trg, typ, props)
		if err != nil {
			t.Fatalf("add edge: %v", err)
		}
		return fmt.Sprintf("add edge %d: %d-[%s]->%d", id, src, typ, trg)
	case op < 55: // remove edge
		ids := m.liveEdges()
		if len(ids) == 0 {
			return "noop"
		}
		id := ids[m.r.Intn(len(ids))]
		if err := m.g.RemoveEdge(id); err != nil {
			t.Fatalf("remove edge: %v", err)
		}
		return fmt.Sprintf("remove edge %d", id)
	case op < 62: // remove vertex (with incident edges)
		id, ok := m.pickVertex()
		if !ok {
			return "noop"
		}
		if err := m.g.RemoveVertex(id); err != nil {
			t.Fatalf("remove vertex: %v", err)
		}
		return fmt.Sprintf("remove vertex %d", id)
	case op < 80: // set vertex property (sometimes to null = delete)
		id, ok := m.pickVertex()
		if !ok {
			return "noop"
		}
		keys := []string{"score", "lang", "city", "name", "nick"}
		key := keys[m.r.Intn(len(keys))]
		var v value.Value
		switch {
		case m.r.Intn(5) == 0:
			v = value.Null
		case key == "score":
			v = value.NewInt(int64(m.r.Intn(10)))
		case key == "lang":
			v = value.NewString(langs[m.r.Intn(len(langs))])
		case key == "city":
			v = value.NewString(cities[m.r.Intn(len(cities))])
		default:
			v = value.NewString(names[m.r.Intn(len(names))])
		}
		if err := m.g.SetVertexProperty(id, key, v); err != nil {
			t.Fatalf("set vertex prop: %v", err)
		}
		return fmt.Sprintf("set vertex %d .%s = %s", id, key, v)
	case op < 85: // set edge property
		ids := m.liveEdges()
		if len(ids) == 0 {
			return "noop"
		}
		id := ids[m.r.Intn(len(ids))]
		if err := m.g.SetEdgeProperty(id, "weight", value.NewInt(int64(m.r.Intn(5)))); err != nil {
			t.Fatalf("set edge prop: %v", err)
		}
		return fmt.Sprintf("set edge %d .weight", id)
	case op < 92: // add label
		id, ok := m.pickVertex()
		if !ok {
			return "noop"
		}
		if err := m.g.AddVertexLabel(id, "Hot"); err != nil {
			t.Fatalf("add label: %v", err)
		}
		return fmt.Sprintf("add label Hot to %d", id)
	default: // remove label
		id, ok := m.pickVertex()
		if !ok {
			return "noop"
		}
		if err := m.g.RemoveVertexLabel(id, "Hot"); err != nil {
			t.Fatalf("remove label: %v", err)
		}
		return fmt.Sprintf("remove label Hot from %d", id)
	}
}

// checkViews compares every registered view against a fresh snapshot
// evaluation of the same query.
func checkViews(t *testing.T, g *graph.Graph, views []*ivm.View, context string) {
	t.Helper()
	for _, v := range views {
		res, err := snapshot.Query(g, v.Query(), nil)
		if err != nil {
			t.Fatalf("%s: snapshot %q: %v", context, v.Query(), err)
		}
		want := res.Sorted()
		got := v.Rows()
		if len(got) != len(want) {
			t.Fatalf("%s: view %q:\n got  (%d rows) %s\n want (%d rows) %s",
				context, v.Query(), len(got), renderRows(got), len(want), renderRows(want))
		}
		for i := range got {
			if value.CompareRows(got[i], want[i]) != 0 {
				t.Fatalf("%s: view %q row %d:\n got  %s\n want %s\nfull got:  %s\nfull want: %s",
					context, v.Query(), i, value.RowString(got[i]), value.RowString(want[i]),
					renderRows(got), renderRows(want))
			}
		}
	}
}

// TestDifferentialRandomStream is the main correctness harness: for
// several seeds, build a random graph, register the full query battery as
// incremental views (some registered before and some after initial data,
// to exercise seeding), then interleave random fine-grained updates with
// full-view comparisons against the snapshot oracle.
func TestDifferentialRandomStream(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := graph.New()
			engine := ivm.NewEngine(g)
			m := &mutator{g: g, r: rand.New(rand.NewSource(seed))}

			// Register the first half of the battery on the empty graph.
			var views []*ivm.View
			for i, q := range batteryQueries {
				if i%2 == 0 {
					v, err := engine.RegisterView(fmt.Sprintf("q%d", i), q)
					if err != nil {
						t.Fatalf("register %q: %v", q, err)
					}
					views = append(views, v)
				}
			}

			// Initial data.
			for i := 0; i < 30; i++ {
				m.step(t)
			}
			checkViews(t, g, views, "after initial load")

			// Register the second half against the populated graph
			// (exercises shared-input seeding).
			for i, q := range batteryQueries {
				if i%2 == 1 {
					v, err := engine.RegisterView(fmt.Sprintf("q%d", i), q)
					if err != nil {
						t.Fatalf("register %q: %v", q, err)
					}
					views = append(views, v)
				}
			}
			checkViews(t, g, views, "after late registration")

			// Random update stream with a check after every step.
			for i := 0; i < 60; i++ {
				desc := m.step(t)
				checkViews(t, g, views, fmt.Sprintf("seed %d step %d (%s)", seed, i, desc))
			}
		})
	}
}
