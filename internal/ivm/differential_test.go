package ivm_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pgiv/internal/cypher"
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/rete"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
	"pgiv/internal/write"
)

// batteryQueries is the incremental-fragment query battery (EXP-H): every
// operator of the pipeline is exercised — fixed and variable-length
// patterns in all directions, property pushdown, selections, projections,
// DISTINCT, aggregation, named paths and path unwinding, relationship
// uniqueness, multi-clause joins and cartesian products.
var batteryQueries = []string{
	"MATCH (p:Post) RETURN p",
	"MATCH (p:Post) RETURN p.lang",
	"MATCH (p:Post) WHERE p.score > 5 RETURN p, p.score",
	"MATCH (a)-[e:KNOWS]->(b) RETURN a, b",
	"MATCH (a:Person)-[e]->(b) RETURN a, e, b",
	"MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, b",
	"MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN a, b, c",
	"MATCH (p:Post)<-[:LIKES]-(u:Person) RETURN p, u",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
	"MATCH (p:Post)-[:REPLY*1..2]->(c:Comm) RETURN p, c",
	"MATCH (p:Post)-[:REPLY*0..]->(m) RETURN p, m",
	"MATCH (a:Person) WHERE a.name STARTS WITH 'A' RETURN a.name",
	"MATCH (a:Person) RETURN DISTINCT a.city",
	"MATCH (p:Post) RETURN count(*)",
	"MATCH (p:Post) RETURN p.lang, count(*)",
	"MATCH (a:Person) RETURN min(a.score), max(a.score), sum(a.score)",
	"MATCH (a:Person) RETURN avg(a.score), count(a.score)",
	"MATCH (a:Person) RETURN collect(a.score)",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, count(b)",
	"MATCH t = (a:Person)-[:KNOWS*1..3]->(b:Person) RETURN a, b, length(t)",
	"UNWIND [1, 2, 2, 3] AS x RETURN x, x * 2",
	"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) UNWIND nodes(t) AS n RETURN p, n",
	"MATCH (a:Person {city: 'berlin'}) RETURN a",
	"MATCH (a:Person)-[e:KNOWS {weight: 3}]->(b) RETURN a, b",
	"MATCH (a:Person), (p:Post) WHERE a.score = p.score RETURN a, p",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) MATCH (b)-[:LIKES]->(p:Post) RETURN a, p",
	"MATCH (a)-[:REPLY]->(a2) WHERE a.lang = a2.lang RETURN a, a2",
	"MATCH (a:Person) WHERE a.score IN [1, 2, 3] RETURN a",
	"MATCH (a:Person) WHERE a.nick IS NULL RETURN a",
	"MATCH (x:Comm)-[:REPLY]->(x2:Comm)-[:REPLY]->(x3:Comm)-[:REPLY]->(x) RETURN x, x2, x3",
	"MATCH (h:Person:Hot) RETURN h, h.score",
	"MATCH (a:Person) RETURN count(DISTINCT a.city)",
	"MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
	"MATCH (a:Person) WHERE (a)-[:LIKES]->(:Post) RETURN a",
	"MATCH (a:Person)-[:KNOWS]->(b) WHERE NOT (b)-[:KNOWS]->(a) RETURN a, b",
	"MATCH (p:Post) WHERE NOT (p)-[:REPLY*]->(:Comm {lang: 'de'}) RETURN p",
	// OPTIONAL MATCH: incremental left outer joins (PR 4).
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[e:LIKES]->(p:Post) WHERE p.score > 3 RETURN a, p, p.score",
	"MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) OPTIONAL MATCH (c)-[:REPLY]->(d:Comm) RETURN p, c, d",
	"OPTIONAL MATCH (h:Person:Hot) RETURN h",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) RETURN a, count(b)",
	"MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY*]->(c:Comm) RETURN p, c",
	"MATCH (p:Post) OPTIONAL MATCH (p)<-[:LIKES]-(u:Person) WHERE u.score >= 5 RETURN p, u",
	// WITH: projection/aggregation pipelining (PR 4).
	"MATCH (a:Person) WITH a WHERE a.score > 2 RETURN a, a.score",
	"MATCH (a:Person)-[:KNOWS]->(b) WITH a, count(b) AS friends WHERE friends >= 2 RETURN a, friends",
	"MATCH (p:Post) WITH p.lang AS l, count(*) AS n RETURN l, n",
	"MATCH (a:Person) WITH DISTINCT a.city AS city RETURN city",
	"MATCH (a:Person) WITH a AS x WHERE x.score < 8 RETURN x.score, x",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) WITH a, count(b) AS k RETURN a, k",
	"UNWIND [1, 2, 3] AS x WITH x WHERE x % 2 = 1 RETURN x",
	"MATCH (a:Person) WITH a WHERE (a)-[:LIKES]->(:Post) RETURN a.name",
	// ORDER BY/SKIP/LIMIT: incrementally maintained windows (PR 5).
	// Scores come from a tiny domain, so window boundaries are packed
	// with ties and the canonical tie-break is exercised constantly.
	"MATCH (a:Person) RETURN a, a.score ORDER BY a.score DESC LIMIT 5",
	"MATCH (a:Person) RETURN a.name, a.score ORDER BY a.score DESC, a.name ASC SKIP 1 LIMIT 4",
	"MATCH (a:Person) RETURN a.score ORDER BY a.score SKIP 3",
	"MATCH (a) RETURN a LIMIT 6",
	"MATCH (p:Post) RETURN p.lang, count(*) AS n ORDER BY n DESC, p.lang LIMIT 2",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b, b.score ORDER BY b.score DESC LIMIT 4",
	"MATCH (a:Person) WITH a ORDER BY a.score DESC LIMIT 6 RETURN a.city, count(*)",
	// Bounded-hop windows (PR 10): lower bounds above 1, exact-hop, and
	// explicit zero-hop ranges.
	"MATCH (p:Post)-[:REPLY*2..4]->(c:Comm) RETURN p, c",
	"MATCH (x:Comm)-[:REPLY*3..3]->(y) RETURN x, y",
	"MATCH (a:Person)-[:KNOWS*0..2]->(b) RETURN a, b",
	// Weighted and unweighted shortest-path views (PR 10).
	"MATCH t = shortestPath((a:Person)-[:KNOWS*1..3 {weight}]->(b:Person)) RETURN a, b, cost(t)",
	"MATCH shortestPath((a:Person)-[:KNOWS*1..2]->(b:Person)) RETURN a, b",
	"MATCH t = shortestPath((p:Post)-[:REPLY*0..3]->(c:Comm)) RETURN p, c, cost(t), length(t)",
}

// mutator drives a random but reproducible update stream against a
// graph. Reads go through g; writes go through mut, so the same stream
// can run per-op (mut == g, one auto-committed transaction per
// mutation) or batched (mut is an open Tx). With capV/capE set, growth
// operations flip to removals once the graph exceeds the cap, keeping
// long fuzz streams bounded (and transitive-path enumeration cheap).
type mutator struct {
	g          *graph.Graph
	mut        graph.Mutator
	r          *rand.Rand
	capV, capE int // 0 = unbounded

	// cypherFrac routes that fraction of mutations through the Cypher
	// write-statement ingress (write.ExecTx against the same Mutator)
	// instead of direct Mutator calls. Both ingress paths must produce
	// identical graphs, changesets and view transcripts.
	cypherFrac float64
}

var (
	labels = [][]string{{"Person"}, {"Post"}, {"Comm"}}
	langs  = []string{"en", "de", "fr"}
	cities = []string{"berlin", "budapest", "aachen"}
	names  = []string{"Alice", "Antal", "Bob", "Borbala", "Cecil"}
	types  = []string{"KNOWS", "REPLY", "LIKES"}
)

func (m *mutator) randomVertexProps() map[string]value.Value {
	props := map[string]value.Value{
		"score": value.NewInt(int64(m.r.Intn(10))),
	}
	switch m.r.Intn(3) {
	case 0:
		props["lang"] = value.NewString(langs[m.r.Intn(len(langs))])
	case 1:
		props["city"] = value.NewString(cities[m.r.Intn(len(cities))])
		props["name"] = value.NewString(names[m.r.Intn(len(names))])
	}
	return props
}

func (m *mutator) liveVertices() []graph.ID {
	var ids []graph.ID
	for _, v := range m.g.VerticesByLabel("") {
		ids = append(ids, v.ID)
	}
	return ids
}

func (m *mutator) liveEdges() []graph.ID {
	var ids []graph.ID
	for _, e := range m.g.EdgesByType("") {
		ids = append(ids, e.ID)
	}
	return ids
}

func (m *mutator) pickVertex() (graph.ID, bool) {
	ids := m.liveVertices()
	if len(ids) == 0 {
		return 0, false
	}
	return ids[m.r.Intn(len(ids))], true
}

// execCypher parses and executes one write statement against the
// mutator's current write target (auto-commit in per-op mode, the open
// transaction in batched mode) — the same executor the server uses.
func (m *mutator) execCypher(t *testing.T, stmt string) {
	t.Helper()
	st, err := cypher.ParseStatement(stmt)
	if err != nil || !st.IsWrite() {
		t.Fatalf("bad write statement %q: %v", stmt, err)
	}
	if _, err := write.ExecTx(m.g, m.mut, st.Write, nil); err != nil {
		t.Fatalf("exec %q: %v", stmt, err)
	}
}

// renderValue renders a property value as a Cypher literal.
func renderValue(v value.Value) string {
	switch v.Kind() {
	case value.KindInt:
		return fmt.Sprintf("%d", v.Int())
	case value.KindString:
		return "'" + v.Str() + "'" // fixed vocabulary, no escaping needed
	}
	return "NULL"
}

// renderProps renders a property map as a Cypher map literal, keys
// sorted (empty map renders as "").
func renderProps(props map[string]value.Value) string {
	if len(props) == 0 {
		return ""
	}
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" {")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(renderValue(props[k]))
	}
	b.WriteString("}")
	return b.String()
}

// step applies one random update and returns its description.
func (m *mutator) step(t *testing.T) string {
	t.Helper()
	// Drawn unconditionally so the op stream is identical across
	// cypherFrac settings: only the ingress path varies.
	useCy := m.r.Float64() < m.cypherFrac
	op := m.r.Intn(100)
	// Bounded streams: flip growth to shrinkage above the caps.
	if op < 15 && m.capV > 0 && len(m.liveVertices()) > m.capV {
		op = 58 // add vertex → remove vertex
	}
	if op >= 15 && op < 40 && m.capE > 0 && len(m.liveEdges()) > m.capE {
		op = 45 // add edge → remove edge
	}
	switch {
	case op < 15: // add vertex
		ls := labels[m.r.Intn(len(labels))]
		props := m.randomVertexProps()
		if useCy {
			m.execCypher(t, fmt.Sprintf("CREATE (:%s%s)", strings.Join(ls, ":"), renderProps(props)))
			return fmt.Sprintf("cypher create vertex %v", ls)
		}
		id := m.mut.AddVertex(ls, props)
		return fmt.Sprintf("add vertex %d %v", id, ls)
	case op < 40: // add edge
		src, ok1 := m.pickVertex()
		trg, ok2 := m.pickVertex()
		if !ok1 || !ok2 {
			return "noop"
		}
		typ := types[m.r.Intn(len(types))]
		props := map[string]value.Value{}
		if typ == "KNOWS" {
			props["weight"] = value.NewInt(int64(m.r.Intn(5)))
		}
		if useCy {
			m.execCypher(t, fmt.Sprintf(
				"MATCH (a), (b) WHERE id(a) = %d AND id(b) = %d CREATE (a)-[:%s%s]->(b)",
				src, trg, typ, renderProps(props)))
			return fmt.Sprintf("cypher create edge %d-[%s]->%d", src, typ, trg)
		}
		id, err := m.mut.AddEdge(src, trg, typ, props)
		if err != nil {
			t.Fatalf("add edge: %v", err)
		}
		return fmt.Sprintf("add edge %d: %d-[%s]->%d", id, src, typ, trg)
	case op < 55: // remove edge
		ids := m.liveEdges()
		if len(ids) == 0 {
			return "noop"
		}
		id := ids[m.r.Intn(len(ids))]
		if useCy {
			m.execCypher(t, fmt.Sprintf("MATCH (x)-[e]->(y) WHERE id(e) = %d DELETE e", id))
			return fmt.Sprintf("cypher delete edge %d", id)
		}
		if err := m.mut.RemoveEdge(id); err != nil {
			t.Fatalf("remove edge: %v", err)
		}
		return fmt.Sprintf("remove edge %d", id)
	case op < 62: // remove vertex (with incident edges)
		id, ok := m.pickVertex()
		if !ok {
			return "noop"
		}
		if useCy {
			m.execCypher(t, fmt.Sprintf("MATCH (n) WHERE id(n) = %d DETACH DELETE n", id))
			return fmt.Sprintf("cypher detach delete vertex %d", id)
		}
		if err := m.mut.RemoveVertex(id); err != nil {
			t.Fatalf("remove vertex: %v", err)
		}
		return fmt.Sprintf("remove vertex %d", id)
	case op < 80: // set vertex property (sometimes to null = delete)
		id, ok := m.pickVertex()
		if !ok {
			return "noop"
		}
		keys := []string{"score", "lang", "city", "name", "nick"}
		key := keys[m.r.Intn(len(keys))]
		var v value.Value
		switch {
		case m.r.Intn(5) == 0:
			v = value.Null
		case key == "score":
			v = value.NewInt(int64(m.r.Intn(10)))
		case key == "lang":
			v = value.NewString(langs[m.r.Intn(len(langs))])
		case key == "city":
			v = value.NewString(cities[m.r.Intn(len(cities))])
		default:
			v = value.NewString(names[m.r.Intn(len(names))])
		}
		if useCy {
			m.execCypher(t, fmt.Sprintf("MATCH (n) WHERE id(n) = %d SET n.%s = %s", id, key, renderValue(v)))
			return fmt.Sprintf("cypher set vertex %d .%s = %s", id, key, v)
		}
		if err := m.mut.SetVertexProperty(id, key, v); err != nil {
			t.Fatalf("set vertex prop: %v", err)
		}
		return fmt.Sprintf("set vertex %d .%s = %s", id, key, v)
	case op < 85: // set edge property
		ids := m.liveEdges()
		if len(ids) == 0 {
			return "noop"
		}
		id := ids[m.r.Intn(len(ids))]
		w := int64(m.r.Intn(5))
		if useCy {
			m.execCypher(t, fmt.Sprintf("MATCH (x)-[e]->(y) WHERE id(e) = %d SET e.weight = %d", id, w))
			return fmt.Sprintf("cypher set edge %d .weight", id)
		}
		if err := m.mut.SetEdgeProperty(id, "weight", value.NewInt(w)); err != nil {
			t.Fatalf("set edge prop: %v", err)
		}
		return fmt.Sprintf("set edge %d .weight", id)
	case op < 92: // add label
		id, ok := m.pickVertex()
		if !ok {
			return "noop"
		}
		if useCy {
			m.execCypher(t, fmt.Sprintf("MATCH (n) WHERE id(n) = %d SET n:Hot", id))
			return fmt.Sprintf("cypher add label Hot to %d", id)
		}
		if err := m.mut.AddVertexLabel(id, "Hot"); err != nil {
			t.Fatalf("add label: %v", err)
		}
		return fmt.Sprintf("add label Hot to %d", id)
	default: // remove label
		id, ok := m.pickVertex()
		if !ok {
			return "noop"
		}
		if useCy {
			m.execCypher(t, fmt.Sprintf("MATCH (n) WHERE id(n) = %d REMOVE n:Hot", id))
			return fmt.Sprintf("cypher remove label Hot from %d", id)
		}
		if err := m.mut.RemoveVertexLabel(id, "Hot"); err != nil {
			t.Fatalf("remove label: %v", err)
		}
		return fmt.Sprintf("remove label Hot from %d", id)
	}
}

// checkViews compares every registered view against a fresh snapshot
// evaluation of the same query. Ordered views (plan rooted at
// ORDER BY/SKIP/LIMIT) are compared order-sensitively: the maintained
// window must match the snapshot result row for row, in rank order —
// not just as a bag.
func checkViews(t *testing.T, g *graph.Graph, views []*ivm.View, context string) {
	t.Helper()
	for _, v := range views {
		res, err := snapshot.Query(g, v.Query(), nil)
		if err != nil {
			t.Fatalf("%s: snapshot %q: %v", context, v.Query(), err)
		}
		want := res.Sorted()
		if v.Ordered() {
			want = res.Rows // the oracle's exact window order
		}
		got := v.Rows()
		if len(got) != len(want) {
			t.Fatalf("%s: view %q:\n got  (%d rows) %s\n want (%d rows) %s",
				context, v.Query(), len(got), renderRows(got), len(want), renderRows(want))
		}
		for i := range got {
			if value.CompareRows(got[i], want[i]) != 0 {
				t.Fatalf("%s: view %q row %d:\n got  %s\n want %s\nfull got:  %s\nfull want: %s",
					context, v.Query(), i, value.RowString(got[i]), value.RowString(want[i]),
					renderRows(got), renderRows(want))
			}
		}
	}
}

// fuzzPanel is the template panel of the randomized multi-mode
// differential harness: one representative per operator family, plus
// the PR 4 OPTIONAL MATCH / WITH battery, where subtle delta bugs
// (padding flips, projection horizons, HAVING) live.
var fuzzPanel = []string{
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b",
	"MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c",
	"MATCH (p:Post) RETURN p.lang, count(*)",
	"MATCH (a:Person) RETURN DISTINCT a.city",
	"MATCH (a:Person) WHERE NOT (a)-[:KNOWS]->(:Person) RETURN a",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) RETURN a, b",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[e:LIKES]->(p:Post) WHERE p.score > 3 RETURN a, p, p.score",
	"MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY]->(c:Comm) OPTIONAL MATCH (c)-[:REPLY]->(d:Comm) RETURN p, c, d",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) RETURN a, count(b)",
	"MATCH (p:Post) OPTIONAL MATCH (p)-[:REPLY*]->(c:Comm) RETURN p, c",
	"OPTIONAL MATCH (h:Person:Hot) RETURN h",
	"MATCH (a:Person) WITH a WHERE a.score > 2 RETURN a, a.score",
	"MATCH (a:Person)-[:KNOWS]->(b) WITH a, count(b) AS friends WHERE friends >= 2 RETURN a, friends",
	"MATCH (p:Post) WITH p.lang AS l, count(*) AS n RETURN l, n",
	"MATCH (a:Person) WITH DISTINCT a.city AS city RETURN city",
	"MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b:Person) WITH a, count(b) AS k RETURN a, k",
	// ORDER BY/SKIP/LIMIT (PR 5): maintained windows, checked
	// order-sensitively against the oracle. The mutator's tiny score
	// domain keeps window boundaries packed with ties, so the canonical
	// tie-break is exercised on nearly every commit.
	"MATCH (a:Person) RETURN a, a.score ORDER BY a.score DESC LIMIT 5",
	"MATCH (a:Person) RETURN a.name, a.score ORDER BY a.score DESC, a.name ASC SKIP 1 LIMIT 4",
	"MATCH (a:Person) RETURN a.score ORDER BY a.score SKIP 3",
	"MATCH (a) RETURN a LIMIT 6",
	"MATCH (p:Post) RETURN p.lang, count(*) AS n ORDER BY n DESC, p.lang LIMIT 2",
	"MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b, b.score ORDER BY b.score DESC LIMIT 4",
	"MATCH (a:Person) WITH a ORDER BY a.score DESC LIMIT 6 RETURN a.city, count(*)",
	// Shortest-path views (PR 10) interleaved with bounded-hop
	// transitive templates. The SP templates sit at even indices so the
	// durability panel (stride 2 from 0) replays them through
	// checkpoint/recovery; the odd bounded-hop templates pin down the
	// min>1 and zero-hop repair paths of the plain transitive node.
	"MATCH t = shortestPath((a:Person)-[:KNOWS*1..3]->(b:Person)) RETURN a, b, cost(t)",
	"MATCH (p:Post)-[:REPLY*2..4]->(c:Comm) RETURN p, c",
	"MATCH t = shortestPath((a:Person)-[:KNOWS*1..4 {weight}]->(b:Person)) RETURN a, b, cost(t), length(t)",
	"MATCH (p:Post)-[:REPLY*0..2]->(m) RETURN p, m",
	"MATCH t = shortestPath((a:Person)-[:KNOWS*1..2]-(b:Person)) RETURN a, b, cost(t)",
	"MATCH (x:Comm)-[:REPLY*3..3]->(y:Comm) RETURN x, y",
	"MATCH t = shortestPath((a:Person)-[:KNOWS*1..3 {weight: 2}]->(b:Person)) RETURN a, b, cost(t)",
	"MATCH (a:Person)-[:KNOWS*2..3]->(b) RETURN a, b",
	"MATCH t = shortestPath((a:Person)-[:KNOWS*0..2]->(b:Person)) RETURN a, b, cost(t)",
}

// TestDifferentialFuzzModes is the randomized multi-mode harness: one
// seeded stream of ≥1000 random mutations runs against the fuzzPanel
// views in six engine configurations — per-op, batched and parallel
// commits, each with subplan sharing on and off — asserting after every
// commit that every view's rows are byte-identical to a fresh snapshot
// re-evaluation. Half the views register before any data, half against
// the populated graph (replay seeding); the graph size is capped so the
// thousand-step stream keeps exercising add/remove churn rather than
// growing without bound.
func TestDifferentialFuzzModes(t *testing.T) {
	const seed = 20260729
	steps := 1000
	if testing.Short() {
		steps = 250
	}
	const batchSize = 20
	// In every mode a fraction of the mutation stream arrives as Cypher
	// write statements through write.ExecTx instead of Mutator calls; the
	// op stream itself is identical across modes (the ingress coin is
	// drawn from the same seeded source either way).
	const cypherFrac = 0.4
	modes := []struct {
		name    string
		opts    ivm.Options
		batched bool
	}{
		{"per-op/shared", ivm.Options{NumWorkers: 1}, false},
		{"batched/shared", ivm.Options{NumWorkers: 1}, true},
		{"parallel/shared", ivm.Options{NumWorkers: 4}, false},
		{"per-op/private", ivm.Options{NoSharing: true, NumWorkers: 1}, false},
		{"batched/private", ivm.Options{NoSharing: true, NumWorkers: 1}, true},
		{"parallel/private", ivm.Options{NoSharing: true, NumWorkers: 4}, false},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			g := graph.New()
			engine := ivm.NewEngine(g, mode.opts)
			defer engine.Close()
			m := &mutator{g: g, mut: g, r: rand.New(rand.NewSource(seed)), capV: 40, capE: 80, cypherFrac: cypherFrac}

			var views []*ivm.View
			register := func(from, stride int) {
				for i := from; i < len(fuzzPanel); i += stride {
					v, err := engine.RegisterView(fmt.Sprintf("f%02d", i), fuzzPanel[i])
					if err != nil {
						t.Fatalf("register %q: %v", fuzzPanel[i], err)
					}
					views = append(views, v)
				}
			}
			register(0, 2) // even templates on the empty graph

			applied := 0
			commit := 0
			runCommit := func() {
				if mode.batched {
					err := g.Batch(func(tx *graph.Tx) error {
						m.mut = tx
						for i := 0; i < batchSize && applied < steps; i++ {
							m.step(t)
							applied++
						}
						m.mut = g
						return nil
					})
					if err != nil {
						t.Fatalf("batch: %v", err)
					}
				} else {
					m.step(t)
					applied++
				}
				commit++
			}

			// Initial churn, then late registration against live state.
			for applied < steps/5 {
				runCommit()
			}
			checkViews(t, g, views, fmt.Sprintf("%s after initial load", mode.name))
			register(1, 2) // odd templates seed by replay against live shared nodes
			checkViews(t, g, views, fmt.Sprintf("%s after late registration", mode.name))

			for applied < steps {
				runCommit()
				checkViews(t, g, views, fmt.Sprintf("%s commit %d (%d mutations)", mode.name, commit, applied))
			}
			if applied < 1000 && !testing.Short() {
				t.Fatalf("stream applied only %d mutations", applied)
			}
		})
	}
}

// TestCypherIngressTranscripts runs the same seeded mutation stream
// twice — once entirely through direct Mutator calls, once entirely
// through Cypher write statements — and asserts the two runs produce
// byte-identical view transcripts: the same per-commit OnChange batches
// for every view, in the same order, and the same final rows. This is
// the strong form of the ingress-equivalence claim: not just equal end
// states, but equal delta streams.
func TestCypherIngressTranscripts(t *testing.T) {
	const steps = 300
	const batchSize = 10
	run := func(frac float64) []string {
		var transcript []string
		g := graph.New()
		engine := ivm.NewEngine(g, ivm.Options{NumWorkers: 1})
		defer engine.Close()
		var views []*ivm.View
		for i, q := range fuzzPanel {
			v, err := engine.RegisterView(fmt.Sprintf("f%02d", i), q)
			if err != nil {
				t.Fatalf("register %q: %v", q, err)
			}
			views = append(views, v)
			v.OnChange(func(ds []rete.Delta) {
				var b strings.Builder
				fmt.Fprintf(&b, "%s:", v.Name())
				for _, d := range ds {
					fmt.Fprintf(&b, " %+d %s", d.Mult, value.RowString(d.Row))
				}
				transcript = append(transcript, b.String())
			})
		}
		m := &mutator{g: g, mut: g, r: rand.New(rand.NewSource(42)), capV: 30, capE: 60, cypherFrac: frac}
		applied := 0
		for applied < steps {
			err := g.Batch(func(tx *graph.Tx) error {
				m.mut = tx
				for i := 0; i < batchSize && applied < steps; i++ {
					m.step(t)
					applied++
				}
				m.mut = g
				return nil
			})
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
		}
		for _, v := range views {
			for _, r := range v.Rows() {
				transcript = append(transcript, "final "+v.Name()+" "+value.RowString(r))
			}
		}
		return transcript
	}

	direct := run(0)
	viaCypher := run(1)
	if len(direct) != len(viaCypher) {
		t.Fatalf("transcript lengths differ: direct %d vs cypher %d", len(direct), len(viaCypher))
	}
	for i := range direct {
		if direct[i] != viaCypher[i] {
			t.Fatalf("transcript line %d differs:\n direct: %s\n cypher: %s", i, direct[i], viaCypher[i])
		}
	}
}

// TestDifferentialRandomStream is the main correctness harness: for
// several seeds, build a random graph, register the full query battery as
// incremental views (some registered before and some after initial data,
// to exercise seeding), then interleave random fine-grained updates with
// full-view comparisons against the snapshot oracle.
func TestDifferentialRandomStream(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := graph.New()
			engine := ivm.NewEngine(g)
			m := &mutator{g: g, mut: g, r: rand.New(rand.NewSource(seed))}

			// Register the first half of the battery on the empty graph.
			var views []*ivm.View
			for i, q := range batteryQueries {
				if i%2 == 0 {
					v, err := engine.RegisterView(fmt.Sprintf("q%d", i), q)
					if err != nil {
						t.Fatalf("register %q: %v", q, err)
					}
					views = append(views, v)
				}
			}

			// Initial data.
			for i := 0; i < 30; i++ {
				m.step(t)
			}
			checkViews(t, g, views, "after initial load")

			// Register the second half against the populated graph
			// (exercises shared-input seeding).
			for i, q := range batteryQueries {
				if i%2 == 1 {
					v, err := engine.RegisterView(fmt.Sprintf("q%d", i), q)
					if err != nil {
						t.Fatalf("register %q: %v", q, err)
					}
					views = append(views, v)
				}
			}
			checkViews(t, g, views, "after late registration")

			// Random update stream with a check after every step.
			for i := 0; i < 60; i++ {
				desc := m.step(t)
				checkViews(t, g, views, fmt.Sprintf("seed %d step %d (%s)", seed, i, desc))
			}
		})
	}
}
