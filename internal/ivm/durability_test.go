package ivm_test

// Durability and crash-recovery tests: WAL + checkpoint round trips on
// the real file system, incremental checkpoint reuse, and the
// kill-at-random-commit differential harness over the fault-injecting
// file system (torn WAL tails, lost unsynced suffixes).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pgiv/internal/checkpoint"
	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/value"
	"pgiv/internal/wal"
	"pgiv/internal/wal/faultfs"
)

// registerDurPanel registers every stride-th fuzzPanel template (stride
// 1 = all of them: joins, optional joins, aggregates, transitive
// closures, NOT EXISTS, DISTINCT and ORDER BY/SKIP/LIMIT windows).
func registerDurPanel(t *testing.T, e *ivm.Engine, stride int) {
	t.Helper()
	for i := 0; i < len(fuzzPanel); i += stride {
		if _, err := e.RegisterView(fmt.Sprintf("f%02d", i), fuzzPanel[i]); err != nil {
			t.Fatalf("register %q: %v", fuzzPanel[i], err)
		}
	}
}

// durViews collects an engine's views in name order.
func durViews(t *testing.T, e *ivm.Engine) []*ivm.View {
	t.Helper()
	var vs []*ivm.View
	for _, name := range e.ViewNames() {
		v, ok := e.View(name)
		if !ok {
			t.Fatalf("view %q vanished", name)
		}
		vs = append(vs, v)
	}
	return vs
}

// viewTranscript renders every view's rows keyed by name.
func viewTranscript(t *testing.T, e *ivm.Engine) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, v := range durViews(t, e) {
		out[v.Name()] = renderRows(v.Rows())
	}
	return out
}

func mustDigest(t *testing.T, g *graph.Graph) string {
	t.Helper()
	d, err := g.Digest()
	if err != nil {
		t.Fatalf("digest: %v", err)
	}
	return d
}

// TestDurableRecoveryRoundTrip drives a seeded mutation stream (with
// mid-stream view drop and registration) against a durable engine on
// the real file system, abandons it without shutdown, recovers into a
// fresh graph and requires byte-identical graph digest and view rows —
// then keeps committing on the recovered engine, closes it cleanly and
// recovers once more from the final checkpoint.
func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dopts := ivm.DurabilityOptions{
		WALPath:         filepath.Join(dir, "wal.log"),
		CheckpointDir:   filepath.Join(dir, "checkpoint"),
		Fsync:           wal.FsyncAlways,
		CheckpointEvery: 8,
	}
	g := graph.New()
	e, err := ivm.OpenDurable(g, dopts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	registerDurPanel(t, e, 1)

	steps := 120
	if testing.Short() {
		steps = 40
	}
	m := &mutator{g: g, mut: g, r: rand.New(rand.NewSource(20260808)), capV: 40, capE: 80, cypherFrac: 0.3}
	for i := 0; i < steps; i++ {
		m.step(t)
		if i == steps/2 {
			// Mid-stream registration churn lands register/drop records
			// in the WAL tail.
			if err := e.DropView("f03"); err != nil {
				t.Fatalf("drop: %v", err)
			}
			if _, err := e.RegisterView("late", "MATCH (a:Person)-[:KNOWS]->(b) RETURN b, a"); err != nil {
				t.Fatalf("late register: %v", err)
			}
		}
	}
	if err := e.CheckpointError(); err != nil {
		t.Fatalf("automatic checkpoint: %v", err)
	}
	wantDigest := mustDigest(t, g)
	wantRows := viewTranscript(t, e)

	// Crash: abandon e without any shutdown. fsync=always means every
	// acknowledged commit is durable, so recovery must be exact.
	g2 := graph.New()
	e2, err := ivm.OpenDurable(g2, dopts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := mustDigest(t, g2); got != wantDigest {
		t.Fatalf("recovered graph digest differs:\n got  %s\n want %s", got, wantDigest)
	}
	gotRows := viewTranscript(t, e2)
	if len(gotRows) != len(wantRows) {
		t.Fatalf("recovered %d views, want %d", len(gotRows), len(wantRows))
	}
	for name, want := range wantRows {
		if gotRows[name] != want {
			t.Fatalf("view %q rows differ after recovery:\n got  %s\n want %s", name, gotRows[name], want)
		}
	}
	checkViews(t, g2, durViews(t, e2), "after crash recovery")

	// The recovered engine must stay correct under further commits.
	m2 := &mutator{g: g2, mut: g2, r: rand.New(rand.NewSource(7)), capV: 40, capE: 80, cypherFrac: 0.3}
	for i := 0; i < 25; i++ {
		m2.step(t)
	}
	checkViews(t, g2, durViews(t, e2), "after post-recovery commits")
	finalDigest := mustDigest(t, g2)
	finalRows := viewTranscript(t, e2)
	if err := e2.CloseDurable(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Clean shutdown wrote a final checkpoint: recovery needs no replay.
	g3 := graph.New()
	e3, err := ivm.OpenDurable(g3, dopts)
	if err != nil {
		t.Fatalf("reopen after clean close: %v", err)
	}
	if got := mustDigest(t, g3); got != finalDigest {
		t.Fatalf("post-close recovery digest differs")
	}
	got3 := viewTranscript(t, e3)
	for name, want := range finalRows {
		if got3[name] != want {
			t.Fatalf("view %q rows differ after clean-close recovery", name)
		}
	}
	if err := e3.CloseDurable(); err != nil {
		t.Fatalf("final close: %v", err)
	}
}

// TestCheckpointIncrementalReuse checks the dirty-node granularity: a
// commit that only touches one view's subtree must leave the other
// view's node files byte-identical (same file, not rewritten) in the
// next manifest.
func TestCheckpointIncrementalReuse(t *testing.T) {
	dir := t.TempDir()
	ckDir := filepath.Join(dir, "checkpoint")
	dopts := ivm.DurabilityOptions{
		WALPath:       filepath.Join(dir, "wal.log"),
		CheckpointDir: ckDir,
		Fsync:         wal.FsyncAlways,
	}
	g := graph.New()
	e, err := ivm.OpenDurable(g, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterView("people", "MATCH (a:Person) RETURN a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterView("posts", "MATCH (p:Post) RETURN p"); err != nil {
		t.Fatal(err)
	}
	g.AddVertex([]string{"Person"}, nil)
	g.AddVertex([]string{"Post"}, nil)
	if err := e.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	m1 := readManifest(t, ckDir)

	// Touch only the Person subtree.
	g.AddVertex([]string{"Person"}, nil)
	if err := e.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint 2: %v", err)
	}
	m2 := readManifest(t, ckDir)

	files1 := make(map[string]string, len(m1.Nodes)) // key -> file
	for _, nr := range m1.Nodes {
		files1[nr.Key] = nr.File
	}
	reused, rewritten := 0, 0
	for _, nr := range m2.Nodes {
		if files1[nr.Key] == nr.File {
			reused++
		} else {
			rewritten++
		}
	}
	if reused == 0 {
		t.Fatalf("no node files reused across checkpoints: %+v -> %+v", m1.Nodes, m2.Nodes)
	}
	if rewritten == 0 {
		t.Fatalf("no node files rewritten although the Person subtree changed")
	}
	// And the incremental manifest still recovers exactly.
	if err := e.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	g2 := graph.New()
	e2, err := ivm.OpenDurable(g2, dopts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer e2.CloseDurable()
	if mustDigest(t, g2) != mustDigest(t, g) {
		t.Fatal("digest differs after incremental-checkpoint recovery")
	}
	checkViews(t, g2, durViews(t, e2), "after incremental recovery")
}

func readManifest(t *testing.T, dir string) *checkpoint.Manifest {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	var m checkpoint.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decode manifest: %v", err)
	}
	return &m
}

// TestCrashRecoveryDifferential is the kill-at-random-commit harness: a
// no-crash oracle pass records the graph digest and every view's rows at
// each epoch; then repeated trials run the same seeded stream over the
// fault-injecting file system, crash after a random number of commits
// (discarding a random suffix of unsynced WAL bytes — torn tails
// included), recover and require the recovered state to be
// byte-identical to the oracle at the recovered epoch. Under
// fsync=always the recovered epoch must be exactly the pre-crash epoch;
// under fsync=off it may be any durable prefix, but never an
// inconsistent state.
func TestCrashRecoveryDifferential(t *testing.T) {
	const seed = 20260729
	steps, trials := 60, 5
	if testing.Short() {
		steps, trials = 25, 2
	}
	configs := []struct {
		name      string
		fsync     string
		noSharing bool
		workers   int
	}{
		{"always-shared-parallel", wal.FsyncAlways, false, 0},
		{"always-private-serial", wal.FsyncAlways, true, 1},
		{"off-shared-serial", wal.FsyncOff, false, 1},
		{"off-private-parallel", wal.FsyncOff, true, 0},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			eopts := ivm.Options{NoSharing: cfg.noSharing, NumWorkers: cfg.workers}

			// Oracle pass: same stream, no crash. Keyed by epoch.
			type snap struct {
				digest string
				rows   map[string]string
			}
			transcript := make(map[uint64]snap)
			og := graph.New()
			oe, err := ivm.OpenDurable(og, ivm.DurabilityOptions{
				WALPath: "wal.log", CheckpointDir: t.TempDir(),
				Fsync: wal.FsyncAlways, FS: faultfs.New(),
			}, eopts)
			if err != nil {
				t.Fatalf("oracle open: %v", err)
			}
			registerDurPanel(t, oe, 2)
			record := func() {
				transcript[og.Epoch()] = snap{digest: mustDigest(t, og), rows: viewTranscript(t, oe)}
			}
			record() // epoch 0: registered, empty
			om := &mutator{g: og, mut: og, r: rand.New(rand.NewSource(seed)), capV: 40, capE: 80, cypherFrac: 0.4}
			for i := 0; i < steps; i++ {
				om.step(t)
				record()
			}

			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))
				fs := faultfs.New()
				dopts := ivm.DurabilityOptions{
					WALPath: "wal.log", CheckpointDir: t.TempDir(),
					Fsync: cfg.fsync, CheckpointEvery: 7, FS: fs,
				}
				g := graph.New()
				e, err := ivm.OpenDurable(g, dopts, eopts)
				if err != nil {
					t.Fatalf("trial %d open: %v", trial, err)
				}
				registerDurPanel(t, e, 2)
				m := &mutator{g: g, mut: g, r: rand.New(rand.NewSource(seed)), capV: 40, capE: 80, cypherFrac: 0.4}
				k := 1 + rng.Intn(steps)
				for i := 0; i < k; i++ {
					m.step(t)
				}
				if err := e.CheckpointError(); err != nil {
					t.Fatalf("trial %d: automatic checkpoint: %v", trial, err)
				}
				preCrash := g.Epoch()
				fs.Crash(rng) // kill -9: unsynced WAL suffix torn at a random byte

				g2 := graph.New()
				e2, err := ivm.OpenDurable(g2, dopts, eopts)
				if err != nil {
					t.Fatalf("trial %d recover: %v", trial, err)
				}
				ep := g2.Epoch()
				if cfg.fsync == wal.FsyncAlways && ep != preCrash {
					t.Fatalf("trial %d: fsync=always lost commits: recovered epoch %d, pre-crash %d", trial, ep, preCrash)
				}
				if ep > preCrash {
					t.Fatalf("trial %d: recovered epoch %d beyond pre-crash %d", trial, ep, preCrash)
				}
				want, ok := transcript[ep]
				if !ok {
					t.Fatalf("trial %d: recovered to epoch %d, not in oracle transcript", trial, ep)
				}
				if got := mustDigest(t, g2); got != want.digest {
					t.Fatalf("trial %d: graph digest at epoch %d differs from oracle", trial, ep)
				}
				// Under lax fsync the crash may have discarded the WAL
				// records that registered some (or all) of the panel views
				// before the first checkpoint pinned them — losing a view
				// registration is as legitimate as losing a commit. Every
				// view that DID survive must match the oracle exactly, and
				// fsync=always must keep the whole panel.
				got := viewTranscript(t, e2)
				if cfg.fsync == wal.FsyncAlways && len(got) != len(want.rows) {
					t.Fatalf("trial %d: fsync=always lost views: recovered %d of %d", trial, len(got), len(want.rows))
				}
				for name, rows := range got {
					if wantRows, ok := want.rows[name]; !ok || rows != wantRows {
						t.Fatalf("trial %d: view %q at epoch %d differs from oracle:\n got  %s\n want %s",
							trial, name, ep, rows, wantRows)
					}
				}
				checkViews(t, g2, durViews(t, e2), fmt.Sprintf("trial %d after recovery", trial))

				// Recovered engines keep committing correctly.
				m2 := &mutator{g: g2, mut: g2, r: rand.New(rand.NewSource(int64(trial) + 99)), capV: 40, capE: 80}
				for i := 0; i < 5; i++ {
					m2.step(t)
				}
				checkViews(t, g2, durViews(t, e2), fmt.Sprintf("trial %d post-recovery commits", trial))
				if err := e2.CloseDurable(); err != nil {
					t.Fatalf("trial %d close: %v", trial, err)
				}
			}
		})
	}
}

// TestDropViewLogFailureKeepsView: when logging a drop fails, live and
// durable state must keep agreeing that the view exists — the drop is
// rejected, the view keeps working, and recovery restores it.
func TestDropViewLogFailureKeepsView(t *testing.T) {
	fs := faultfs.New()
	g := graph.New()
	e, err := ivm.OpenDurable(g, ivm.DurabilityOptions{
		WALPath: "wal.log", CheckpointDir: t.TempDir(),
		Fsync: wal.FsyncAlways, FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterView("people", "MATCH (a:Person) RETURN a"); err != nil {
		t.Fatal(err)
	}
	fs.FailWrites(3)
	if err := e.DropView("people"); err == nil {
		t.Fatal("drop with failing WAL append was acknowledged")
	}
	v, ok := e.View("people")
	if !ok {
		t.Fatal("view dropped in memory despite failed drop log")
	}
	g.AddVertex([]string{"Person"}, nil)
	if len(v.Rows()) != 1 {
		t.Fatalf("view stopped updating after rejected drop: %d rows", len(v.Rows()))
	}
	g2 := graph.New()
	e2, err := ivm.OpenDurable(g2, ivm.DurabilityOptions{
		WALPath: "wal.log", CheckpointDir: t.TempDir(),
		Fsync: wal.FsyncAlways, FS: fs,
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, ok := e2.View("people"); !ok {
		t.Fatal("view missing after recovery")
	}
}

// TestWALSyncFailureAbortsCommit: under fsync=always a commit whose WAL
// sync fails must roll back without leaving its record in the log — the
// next successful commit reuses the epoch, and recovery must replay the
// log without tripping the epoch assertion.
func TestWALSyncFailureAbortsCommit(t *testing.T) {
	fs := faultfs.New()
	g := graph.New()
	e, err := ivm.OpenDurable(g, ivm.DurabilityOptions{
		WALPath: "wal.log", CheckpointDir: t.TempDir(),
		Fsync: wal.FsyncAlways, FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.AddVertex([]string{"Person"}, nil)
	before := g.Epoch()

	fs.FailSyncs(1)
	err = g.Batch(func(tx *graph.Tx) error {
		tx.AddVertex([]string{"Person"}, nil)
		return nil
	})
	if err == nil {
		t.Fatal("commit with failing WAL sync was acknowledged")
	}
	if g.Epoch() != before {
		t.Fatalf("epoch advanced on failed commit: %d -> %d", before, g.Epoch())
	}
	// The next commit is assigned the same epoch the rolled-back one
	// would have used; if the rolled-back record survived in the log,
	// recovery would replay it and then fail the epoch assertion here.
	g.AddVertex([]string{"Person"}, nil)
	if g.Epoch() != before+1 {
		t.Fatalf("post-failure commit epoch: %d", g.Epoch())
	}
	g2 := graph.New()
	if _, err := ivm.OpenDurable(g2, ivm.DurabilityOptions{
		WALPath: "wal.log", CheckpointDir: t.TempDir(),
		Fsync: wal.FsyncAlways, FS: fs,
	}); err != nil {
		t.Fatalf("recover after sync-failure rollback: %v", err)
	}
	if mustDigest(t, g2) != mustDigest(t, g) {
		t.Fatal("digest differs after sync-failure recovery")
	}
	_ = e
}

// TestWALAppendFailureAbortsCommit: a commit whose WAL append fails must
// roll back invisibly — no epoch advance, no view change — and the
// engine must keep working afterwards.
func TestWALAppendFailureAbortsCommit(t *testing.T) {
	fs := faultfs.New()
	g := graph.New()
	e, err := ivm.OpenDurable(g, ivm.DurabilityOptions{
		WALPath: "wal.log", CheckpointDir: t.TempDir(),
		Fsync: wal.FsyncAlways, FS: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.RegisterView("people", "MATCH (a:Person) RETURN a")
	if err != nil {
		t.Fatal(err)
	}
	g.AddVertex([]string{"Person"}, nil)
	before := g.Epoch()
	rowsBefore := renderRows(v.Rows())

	fs.FailWrites(3)
	err = g.Batch(func(tx *graph.Tx) error {
		tx.AddVertex([]string{"Person"}, map[string]value.Value{"score": value.NewInt(1)})
		return nil
	})
	if err == nil {
		t.Fatal("commit with failing WAL append was acknowledged")
	}
	if g.Epoch() != before {
		t.Fatalf("epoch advanced on failed commit: %d -> %d", before, g.Epoch())
	}
	if got := renderRows(v.Rows()); got != rowsBefore {
		t.Fatalf("view changed on failed commit:\n got  %s\n want %s", got, rowsBefore)
	}
	if g.NumVertices() != 1 {
		t.Fatalf("graph mutated on failed commit: %d vertices", g.NumVertices())
	}
	// Subsequent commits succeed and recover normally.
	g.AddVertex([]string{"Person"}, nil)
	if g.Epoch() != before+1 {
		t.Fatalf("post-failure commit epoch: %d", g.Epoch())
	}
	g2 := graph.New()
	e2, err := ivm.OpenDurable(g2, ivm.DurabilityOptions{
		WALPath: "wal.log", CheckpointDir: t.TempDir(),
		Fsync: wal.FsyncAlways, FS: fs,
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	_ = e2
	if mustDigest(t, g2) != mustDigest(t, g) {
		t.Fatal("digest differs after torn-append recovery")
	}
	_ = e
}
