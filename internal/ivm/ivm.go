// Package ivm is the incremental view maintenance engine — the system the
// paper proposes. It compiles openCypher queries through the paper's
// pipeline (GRA → NRA → FRA, packages gra/nra/fra), checks that the query
// lies in the incrementally maintainable fragment, builds a Rete network
// (package rete) and keeps the materialised view consistent with the
// property graph under fine-grained updates.
//
// Usage:
//
//	g := graph.New()
//	engine := ivm.NewEngine(g)
//	view, err := engine.RegisterView("replies",
//	    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
//	...mutate g; view.Rows() is always up to date...
package ivm

import (
	"fmt"
	"sort"
	"sync"

	"pgiv/internal/cypher"
	"pgiv/internal/fra"
	"pgiv/internal/gra"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/rete"
	"pgiv/internal/schema"
	"pgiv/internal/value"
)

// Options configure an Engine.
type Options struct {
	// NoSharing disables input-node sharing across views (ablation
	// experiment EXP-F); every view gets private input nodes.
	NoSharing bool
}

// Engine maintains a set of materialised views over one property graph.
// It subscribes to the graph's change events and propagates deltas
// synchronously within each mutating call. All Engine methods must be
// called while no graph mutation is in flight (the store serialises
// mutations; view registration is not itself serialised against them).
type Engine struct {
	g    *graph.Graph
	opts Options

	mu    sync.RWMutex
	reg   *rete.InputRegistry
	sinks []rete.GraphSink // all live event sinks, in registration order
	views map[string]*View
}

// NewEngine creates an engine bound to g and subscribes it to the graph.
func NewEngine(g *graph.Graph, opts ...Options) *Engine {
	e := &Engine{g: g, views: make(map[string]*View)}
	if len(opts) > 0 {
		e.opts = opts[0]
	}
	e.reg = rete.NewInputRegistry(g, !e.opts.NoSharing, func(s rete.GraphSink) {
		e.sinks = append(e.sinks, s)
	})
	g.Subscribe(e)
	return e
}

// Close unsubscribes the engine from the graph. Views stop updating.
func (e *Engine) Close() { e.g.Unsubscribe(e) }

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// View is a registered materialised view.
type View struct {
	name   string
	query  string
	engine *Engine

	ast     *cypher.Query
	graText string
	nraText string
	plan    *fra.Plan

	network *rete.Network
	sinks   []rete.GraphSink // this view's transitive nodes
}

// RegisterView compiles, checks and materialises a view. The query must
// lie in the incrementally maintainable fragment; otherwise the error
// wraps ErrNotMaintainable (and the query can still be evaluated by the
// snapshot engine).
func (e *Engine) RegisterView(name, query string) (*View, error) {
	return e.RegisterViewParams(name, query, nil)
}

// RegisterViewParams is RegisterView with query parameters, substituted
// at compilation time.
func (e *Engine) RegisterViewParams(name, query string, params map[string]value.Value) (*View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.views[name]; exists {
		return nil, fmt.Errorf("ivm: view %q already registered", name)
	}
	ast, err := cypher.Parse(query)
	if err != nil {
		return nil, err
	}
	graPlan, err := gra.Compile(ast)
	if err != nil {
		return nil, err
	}
	nraPlan, err := nra.Transform(graPlan)
	if err != nil {
		return nil, err
	}
	// Render the GRA and NRA stages before flattening: Flatten rewrites
	// the operator tree in place (merging unnests into base operators),
	// and Explain should show the µ operators of the NRA stage.
	graText := gra.Format(graPlan)
	nraText := nra.Format(nraPlan)
	plan, err := fra.Flatten(nraPlan)
	if err != nil {
		return nil, err
	}
	if err := CheckFragment(plan.Root); err != nil {
		return nil, fmt.Errorf("ivm: %q: %w", name, err)
	}
	network, err := rete.Build(plan, e.g, e.reg, params)
	if err != nil {
		return nil, err
	}
	v := &View{
		name: name, query: query, engine: e,
		ast: ast, graText: graText, nraText: nraText, plan: plan,
		network: network, sinks: network.Sinks(),
	}
	// Route events to the view's transitive nodes, then populate.
	e.sinks = append(e.sinks, v.sinks...)
	network.Seed()
	e.views[name] = v
	return v, nil
}

// DropView detaches and forgets a view.
func (e *Engine) DropView(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[name]
	if !ok {
		return fmt.Errorf("ivm: view %q is not registered", name)
	}
	v.network.Detach()
	for _, s := range v.sinks {
		for i, x := range e.sinks {
			if x == s {
				e.sinks = append(e.sinks[:i], e.sinks[i+1:]...)
				break
			}
		}
	}
	delete(e.views, name)
	return nil
}

// View returns a registered view by name.
func (e *Engine) View(name string) (*View, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.views[name]
	return v, ok
}

// ViewNames returns the sorted names of all registered views.
func (e *Engine) ViewNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.views))
	for n := range e.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the view's name.
func (v *View) Name() string { return v.name }

// Query returns the view's query text.
func (v *View) Query() string { return v.query }

// Schema returns the view's output attribute names.
func (v *View) Schema() schema.Schema { return v.plan.OutSchema }

// Rows returns the current view contents in canonical order, one entry
// per bag multiplicity.
func (v *View) Rows() []value.Row { return v.network.Prod.Rows() }

// DistinctCount returns the number of distinct rows in the view.
func (v *View) DistinctCount() int { return v.network.Prod.DistinctCount() }

// OnChange subscribes fn to the view's delta stream. fn runs
// synchronously inside the mutating store call and must not mutate the
// graph. Batches may contain retract/assert pairs of the same row.
func (v *View) OnChange(fn func([]rete.Delta)) { v.network.Prod.Subscribe(fn) }

// MemoryEntries reports the total number of memoized rows across the
// view's stateful Rete nodes.
func (v *View) MemoryEntries() int { return v.network.MemoryEntries() }

// Explain renders the three compilation stages of the paper for this
// view: the GRA plan, the NRA plan (with get-edges, transitive joins and
// unnests) and the flattened FRA plan with inferred minimal schemas.
func (v *View) Explain() string {
	return "== GRA ==\n" + v.graText +
		"== NRA ==\n" + v.nraText +
		"== FRA ==\n" + nra.Format(v.plan.Root) +
		"== schema ==\n" + v.plan.OutSchema.String() + "\n"
}

// The Engine fans every graph event out to all live sinks (input nodes
// and transitive-join nodes). The routing order does not affect the final
// state: every node computes deltas against the current memories of its
// peers.

// VertexAdded implements graph.Listener.
func (e *Engine) VertexAdded(v *graph.Vertex) {
	for _, s := range e.snapshotSinks() {
		s.VertexAdded(v)
	}
}

// VertexRemoved implements graph.Listener.
func (e *Engine) VertexRemoved(v *graph.Vertex) {
	for _, s := range e.snapshotSinks() {
		s.VertexRemoved(v)
	}
}

// EdgeAdded implements graph.Listener.
func (e *Engine) EdgeAdded(ed *graph.Edge) {
	for _, s := range e.snapshotSinks() {
		s.EdgeAdded(ed)
	}
}

// EdgeRemoved implements graph.Listener.
func (e *Engine) EdgeRemoved(ed *graph.Edge) {
	for _, s := range e.snapshotSinks() {
		s.EdgeRemoved(ed)
	}
}

// VertexLabelAdded implements graph.Listener.
func (e *Engine) VertexLabelAdded(v *graph.Vertex, label string) {
	for _, s := range e.snapshotSinks() {
		s.VertexLabelAdded(v, label)
	}
}

// VertexLabelRemoved implements graph.Listener.
func (e *Engine) VertexLabelRemoved(v *graph.Vertex, label string) {
	for _, s := range e.snapshotSinks() {
		s.VertexLabelRemoved(v, label)
	}
}

// VertexPropertyChanged implements graph.Listener.
func (e *Engine) VertexPropertyChanged(v *graph.Vertex, key string, old value.Value) {
	for _, s := range e.snapshotSinks() {
		s.VertexPropertyChanged(v, key, old)
	}
}

// EdgePropertyChanged implements graph.Listener.
func (e *Engine) EdgePropertyChanged(ed *graph.Edge, key string, old value.Value) {
	for _, s := range e.snapshotSinks() {
		s.EdgePropertyChanged(ed, key, old)
	}
}

// snapshotSinks copies the sink list under the read lock so that event
// fan-out does not hold the engine lock (sinks may be long-running).
func (e *Engine) snapshotSinks() []rete.GraphSink {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]rete.GraphSink, len(e.sinks))
	copy(out, e.sinks)
	return out
}
