// Package ivm is the incremental view maintenance engine — the system the
// paper proposes. It compiles openCypher queries through the paper's
// pipeline (GRA → NRA → FRA, packages gra/nra/fra), checks that the query
// lies in the incrementally maintainable fragment, builds a Rete network
// (package rete) and keeps the materialised view consistent with the
// property graph under transactional updates.
//
// Usage:
//
//	g := graph.New()
//	engine := ivm.NewEngine(g)
//	view, err := engine.RegisterView("replies",
//	    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
//	...mutate g (per-op or via g.Batch); view.Rows() is always up to date...
//
// The engine subscribes to the graph's transactional change stream: each
// committed transaction delivers one coalesced graph.ChangeSet, which the
// engine fans out to every Rete changeset sink under a single lock
// acquisition, then fires each view's OnChange subscribers once with the
// commit's net delta batch. Loading 10k mutations through one g.Batch
// therefore costs one propagation pass instead of 10k.
package ivm

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"pgiv/internal/cypher"
	"pgiv/internal/fra"
	"pgiv/internal/gra"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/rete"
	"pgiv/internal/schema"
	"pgiv/internal/value"
)

// Options configure an Engine.
type Options struct {
	// NoSharing disables input-node sharing across views (ablation
	// experiment EXP-F); every view gets private input nodes.
	NoSharing bool

	// NumWorkers bounds the propagation worker pool. With more than one
	// worker and at least two registered views, each committed ChangeSet
	// is translated once per shared input node and the per-view beta
	// networks then run concurrently, one view per worker. 1 preserves
	// the fully-sequential behaviour; 0 (the default) means
	// runtime.GOMAXPROCS(0). View contents are identical either way —
	// only intra-commit scheduling differs. OnChange callbacks are
	// unaffected: whatever the worker count, they fire exactly once per
	// commit per view, sequentially, on the committing goroutine, after
	// every view's propagation has finished.
	NumWorkers int
}

// Engine maintains a set of materialised views over one property graph.
// It subscribes to the graph's committed change sets and propagates
// deltas synchronously within each commit. All Engine methods must be
// called while no graph mutation is in flight (the store serialises
// transactions; view registration is not itself serialised against
// them).
type Engine struct {
	g       *graph.Graph
	opts    Options
	workers int // resolved NumWorkers (≥1)

	mu      sync.RWMutex
	reg     *rete.InputRegistry
	sinks   []rete.ChangeSink       // all live changeset sinks
	sinkPos map[rete.ChangeSink]int // sink → index in sinks (swap-delete)
	views   map[string]*View
	closed  bool

	// propagation worker pool (nil while workers == 1); started by
	// NewEngine, stopped by Close.
	jobs chan func()

	// per-commit scratch, reused across commits (dispatch is serialised
	// by the store's writer lock)
	sinkScratch  []rete.ChangeSink
	viewScratch  []*View
	transScratch map[rete.Translator][]rete.Delta
}

// NewEngine creates an engine bound to g and subscribes it to the graph.
func NewEngine(g *graph.Graph, opts ...Options) *Engine {
	e := &Engine{
		g:       g,
		views:   make(map[string]*View),
		sinkPos: make(map[rete.ChangeSink]int),
	}
	if len(opts) > 0 {
		e.opts = opts[0]
	}
	e.workers = e.opts.NumWorkers
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.reg = rete.NewInputRegistry(g, !e.opts.NoSharing, e.addSinkLocked)
	g.Subscribe(e)
	return e
}

// pool returns the propagation worker pool, starting it on first use.
// Only Apply calls pool, and commits are serialised by the store's
// writer lock, so creation needs no extra synchronisation; Close reads
// e.jobs only after Unsubscribe's lock barrier.
func (e *Engine) pool() chan func() {
	if e.jobs == nil {
		e.jobs = make(chan func(), e.workers)
		for i := 0; i < e.workers; i++ {
			go func() {
				for job := range e.jobs {
					job()
				}
			}()
		}
	}
	return e.jobs
}

// Close unsubscribes the engine from the graph and stops the worker
// pool. Views stop updating. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// Unsubscribe serialises against in-flight commits (it takes the
	// store's writer lock), so once it returns no Apply can be running
	// or arrive — closing the pool after it is safe.
	e.g.Unsubscribe(e)
	if e.jobs != nil {
		close(e.jobs)
	}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// View is a registered materialised view.
type View struct {
	name   string
	query  string
	engine *Engine

	ast     *cypher.Query
	graText string
	nraText string
	plan    *fra.Plan

	network *rete.Network
	sinks   []rete.ChangeSink // this view's transitive nodes

	pending []rete.Delta // deltas accumulated since the last commit flush
	subs    []func([]rete.Delta)
}

// RegisterView compiles, checks and materialises a view. The query must
// lie in the incrementally maintainable fragment; otherwise the error
// wraps ErrNotMaintainable (and the query can still be evaluated by the
// snapshot engine).
func (e *Engine) RegisterView(name, query string) (*View, error) {
	return e.RegisterViewParams(name, query, nil)
}

// RegisterViewParams is RegisterView with query parameters, substituted
// at compilation time.
func (e *Engine) RegisterViewParams(name, query string, params map[string]value.Value) (*View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.views[name]; exists {
		return nil, fmt.Errorf("ivm: view %q already registered", name)
	}
	ast, err := cypher.Parse(query)
	if err != nil {
		return nil, err
	}
	graPlan, err := gra.Compile(ast)
	if err != nil {
		return nil, err
	}
	nraPlan, err := nra.Transform(graPlan)
	if err != nil {
		return nil, err
	}
	// Render the GRA and NRA stages before flattening: Flatten rewrites
	// the operator tree in place (merging unnests into base operators),
	// and Explain should show the µ operators of the NRA stage.
	graText := gra.Format(graPlan)
	nraText := nra.Format(nraPlan)
	plan, err := fra.Flatten(nraPlan)
	if err != nil {
		return nil, err
	}
	if err := CheckFragment(plan.Root); err != nil {
		return nil, fmt.Errorf("ivm: %q: %w", name, err)
	}
	network, err := rete.Build(plan, e.g, e.reg, params)
	if err != nil {
		return nil, err
	}
	v := &View{
		name: name, query: query, engine: e,
		ast: ast, graText: graText, nraText: nraText, plan: plan,
		network: network, sinks: network.Sinks(),
	}
	// Buffer the production's delta stream; commits flush it to OnChange
	// subscribers as one coalesced batch.
	network.Prod.Subscribe(func(ds []rete.Delta) { v.pending = append(v.pending, ds...) })
	// Route committed change sets to the view's transitive nodes, then
	// populate.
	for _, s := range v.sinks {
		e.addSinkLocked(s)
	}
	network.Seed()
	v.pending = v.pending[:0] // the seed is not a change; OnChange starts here
	e.views[name] = v
	return v, nil
}

// DropView detaches and forgets a view.
func (e *Engine) DropView(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.views[name]
	if !ok {
		return fmt.Errorf("ivm: view %q is not registered", name)
	}
	v.network.Detach()
	e.removeSinksLocked(v.sinks)
	delete(e.views, name)
	return nil
}

// addSinkLocked registers a changeset sink and records its position for
// O(1) removal. Caller holds e.mu (RegisterView) or runs before the
// engine is shared (NewEngine).
func (e *Engine) addSinkLocked(s rete.ChangeSink) {
	e.sinkPos[s] = len(e.sinks)
	e.sinks = append(e.sinks, s)
}

// removeSinksLocked deletes a view's sinks in one O(|sinks|) compaction
// pass via the position index (dropping a view used to scan the whole
// sink list once per sink, O(views × sinks)). Relative order of the
// surviving sinks is preserved: the rete freshness optimisation relies
// on a view's input nodes preceding its transitive nodes in fan-out
// order, so a swap-delete would be incorrect here.
func (e *Engine) removeSinksLocked(sinks []rete.ChangeSink) {
	drop := 0
	for _, s := range sinks {
		if _, ok := e.sinkPos[s]; ok {
			delete(e.sinkPos, s)
			drop++
		}
	}
	if drop == 0 {
		return
	}
	kept := e.sinks[:0]
	for _, s := range e.sinks {
		if _, ok := e.sinkPos[s]; ok {
			e.sinkPos[s] = len(kept)
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(e.sinks); i++ {
		e.sinks[i] = nil
	}
	e.sinks = kept
}

// View returns a registered view by name.
func (e *Engine) View(name string) (*View, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.views[name]
	return v, ok
}

// ViewNames returns the sorted names of all registered views.
func (e *Engine) ViewNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.views))
	for n := range e.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the view's name.
func (v *View) Name() string { return v.name }

// Query returns the view's query text.
func (v *View) Query() string { return v.query }

// Schema returns the view's output attribute names.
func (v *View) Schema() schema.Schema { return v.plan.OutSchema }

// Rows returns the current view contents in canonical order, one entry
// per bag multiplicity.
func (v *View) Rows() []value.Row { return v.network.Prod.Rows() }

// DistinctCount returns the number of distinct rows in the view.
func (v *View) DistinctCount() int { return v.network.Prod.DistinctCount() }

// OnChange subscribes fn to the view's delta stream. fn runs
// synchronously inside Commit and must not mutate the graph. It fires at
// most once per committed transaction, with the commit's coalesced net
// delta batch: transient retract/assert churn inside one commit (an edge
// added and removed in the same batch, an aggregate recomputed several
// times) nets out before subscribers see it, and an effect-free commit
// fires nothing.
func (v *View) OnChange(fn func([]rete.Delta)) { v.subs = append(v.subs, fn) }

// flush delivers the deltas accumulated during one commit to the view's
// subscribers as a single coalesced batch.
func (v *View) flush() {
	if len(v.pending) == 0 {
		return
	}
	batch := coalesceDeltas(v.pending)
	v.pending = v.pending[:0]
	if len(batch) == 0 {
		return
	}
	for _, fn := range v.subs {
		fn(batch)
	}
}

// coalesceDeltas nets multiplicities per row, dropping rows that cancel
// out. Rows keep first-appearance order. Small batches — the per-commit
// common case — coalesce by pairwise comparison without building a key
// map; EqualRows agrees with key equality by construction.
func coalesceDeltas(ds []rete.Delta) []rete.Delta {
	if len(ds) <= 16 {
		out := make([]rete.Delta, 0, len(ds))
		for _, d := range ds {
			merged := false
			for i := range out {
				if value.EqualRows(out[i].Row, d.Row) {
					out[i].Mult += d.Mult
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, d)
			}
		}
		kept := out[:0]
		for _, d := range out {
			if d.Mult != 0 {
				kept = append(kept, d)
			}
		}
		return kept
	}
	type acc struct {
		row  value.Row
		mult int
	}
	m := make(map[string]*acc, len(ds))
	order := make([]string, 0, len(ds))
	for _, d := range ds {
		k := value.RowKey(d.Row)
		a := m[k]
		if a == nil {
			a = &acc{row: d.Row}
			m[k] = a
			order = append(order, k)
		}
		a.mult += d.Mult
	}
	out := make([]rete.Delta, 0, len(order))
	for _, k := range order {
		if a := m[k]; a.mult != 0 {
			out = append(out, rete.Delta{Row: a.row, Mult: a.mult})
		}
	}
	return out
}

// MemoryEntries reports the total number of memoized rows across the
// view's stateful Rete nodes.
func (v *View) MemoryEntries() int { return v.network.MemoryEntries() }

// Explain renders the three compilation stages of the paper for this
// view: the GRA plan, the NRA plan (with get-edges, transitive joins and
// unnests) and the flattened FRA plan with inferred minimal schemas.
func (v *View) Explain() string {
	return "== GRA ==\n" + v.graText +
		"== NRA ==\n" + v.nraText +
		"== FRA ==\n" + nra.Format(v.plan.Root) +
		"== schema ==\n" + v.plan.OutSchema.String() + "\n"
}

// Apply implements graph.Listener: one committed ChangeSet is fanned
// out to every live sink — input nodes and transitive-join nodes — then
// each view's OnChange fires once with the commit's coalesced deltas.
// The routing order does not affect the final state: every node
// computes deltas against the current memories of its peers.
//
// With NumWorkers > 1 and at least two views, the fan-out is scheduled
// in three phases: every shared input node translates the ChangeSet
// into its delta batch exactly once (emit-free); the views propagate
// concurrently on the worker pool — each worker delivers the
// precomputed input batches into one view's private subtree and runs
// that view's transitive-join sinks; then, after the barrier, every
// view's OnChange subscribers flush sequentially on this goroutine.
// Views share no mutable state below the (stateless) input nodes, so
// per-view propagation is embarrassingly parallel; Apply returns only
// after every view is consistent and every callback has run.
func (e *Engine) Apply(cs *graph.ChangeSet) {
	e.mu.RLock()
	sinks := append(e.sinkScratch[:0], e.sinks...)
	views := e.viewScratch[:0]
	for _, v := range e.views {
		views = append(views, v)
	}
	e.mu.RUnlock()
	e.sinkScratch = sinks
	e.viewScratch = views

	if e.workers <= 1 || len(views) < 2 {
		for _, s := range sinks {
			s.ApplyChangeSet(cs)
		}
		for _, v := range views {
			v.flush()
		}
		return
	}

	// Phase 1: translate each shared input once. The batches are
	// read-only for the rest of the commit; input emitters are bypassed.
	if e.transScratch == nil {
		e.transScratch = make(map[rete.Translator][]rete.Delta)
	}
	clear(e.transScratch)
	batches := e.transScratch
	for _, s := range sinks {
		if t, ok := s.(rete.Translator); ok {
			batches[t] = t.TranslateChangeSet(cs)
		}
	}

	// Phase 2: fan the views across the worker pool. Each view's subtree
	// (input attachments → beta nodes → transitive sinks) runs on
	// exactly one worker; wg.Wait restores the commit barrier.
	jobs := e.pool()
	var wg sync.WaitGroup
	wg.Add(len(views))
	for _, v := range views {
		v := v
		jobs <- func() {
			defer wg.Done()
			v.network.ApplyTranslated(func(t rete.Translator) []rete.Delta { return batches[t] })
			for _, s := range v.sinks {
				s.ApplyChangeSet(cs)
			}
		}
	}
	wg.Wait()

	// Phase 3: flush OnChange subscribers sequentially on the
	// committing goroutine, preserving the published callback contract
	// (synchronous, never concurrent) regardless of NumWorkers. The
	// barrier above makes every view's pending buffer complete and
	// visible here.
	for _, v := range views {
		v.flush()
	}
}
