// Package ivm is the incremental view maintenance engine — the system the
// paper proposes. It compiles openCypher queries through the paper's
// pipeline (GRA → NRA → FRA, packages gra/nra/fra), checks that the query
// lies in the incrementally maintainable fragment, builds a Rete network
// (package rete) and keeps the materialised view consistent with the
// property graph under transactional updates.
//
// Usage:
//
//	g := graph.New()
//	engine := ivm.NewEngine(g)
//	view, err := engine.RegisterView("replies",
//	    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t")
//	...mutate g (per-op or via g.Batch); view.Rows() is always up to date...
//
// The engine subscribes to the graph's transactional change stream: each
// committed transaction delivers one coalesced graph.ChangeSet, which the
// engine fans out to every Rete changeset sink under a single lock
// acquisition, then fires each view's OnChange subscribers once with the
// commit's net delta batch. Loading 10k mutations through one g.Batch
// therefore costs one propagation pass instead of 10k.
//
// Views share structure: every FRA subtree is fingerprinted and resolved
// through a ref-counted subplan registry, so overlapping views attach to
// one shared chain of stateful Rete nodes (joins, filters, dedups,
// aggregates, transitive joins — and the production itself when two plans
// are identical). Propagation work and Rete memory scale with the number
// of distinct subplans, not the number of registered views.
package ivm

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"pgiv/internal/checkpoint"
	"pgiv/internal/cypher"
	"pgiv/internal/fra"
	"pgiv/internal/gra"
	"pgiv/internal/graph"
	"pgiv/internal/nra"
	"pgiv/internal/rete"
	"pgiv/internal/schema"
	"pgiv/internal/value"
)

// Options configure an Engine.
type Options struct {
	// NoSharing disables Rete node sharing across views entirely — input
	// (alpha) nodes and the shared beta network alike; every view gets a
	// fully private node chain (ablation experiments EXP-F and EXP-L).
	NoSharing bool

	// NumWorkers bounds the propagation worker pool. With more than one
	// worker, each committed ChangeSet is translated once per shared
	// input node and the mutable network — partitioned into connected
	// components of shared subtrees, so no stateful node is touched by
	// two workers — then propagates concurrently, one component per
	// worker. 1 preserves the fully-sequential behaviour; 0 (the
	// default) means runtime.GOMAXPROCS(0). View contents are identical
	// either way — only intra-commit scheduling differs. OnChange
	// callbacks are unaffected: whatever the worker count, they fire
	// exactly once per commit per view, sequentially, on the committing
	// goroutine, after every view's propagation has finished.
	NumWorkers int
}

// Engine maintains a set of materialised views over one property graph.
// It subscribes to the graph's committed change sets and propagates
// deltas synchronously within each commit. All Engine methods must be
// called while no graph mutation is in flight (the store serialises
// transactions; view registration is not itself serialised against
// them).
type Engine struct {
	g       *graph.Graph
	opts    Options
	workers int // resolved NumWorkers (≥1)

	mu       sync.RWMutex
	reg      *rete.SubplanRegistry
	sinks    []rete.ChangeSink       // all live changeset sinks, creation order
	sinkPos  map[rete.ChangeSink]int // sink → index in sinks (ordered compaction)
	views    map[string]*View
	viewList []*View // sorted by name: deterministic OnChange order
	plan     *rete.PropPlan
	released []rete.ChangeSink // sinks released by the registry, pending removal
	closed   bool

	// nextRegSeq numbers views by registration order (viewList is sorted
	// by name); checkpoint manifests record views in this order so that
	// no-sharing private-copy serials line up again on restore.
	nextRegSeq int

	// dur is non-nil on engines opened through OpenDurable; it carries
	// the WAL, the checkpoint store and the checkpoint cadence. Set once
	// during recovery, before any concurrent commit.
	dur *durableState

	// propagation worker pool (nil while workers == 1); started by
	// NewEngine, stopped by Close.
	jobs chan func()

	// qs is the ad-hoc query serving state (rewrite flag, counters,
	// test hook); see query.go.
	qs queryState

	// per-commit scratch, reused across commits (dispatch is serialised
	// by the store's writer lock)
	sinkScratch  []rete.ChangeSink
	viewScratch  []*View
	transScratch map[rete.Translator][]rete.Delta
	coalesceH    value.Hasher // flush-coalescing key scratch (flushes are sequential)
}

// NewEngine creates an engine bound to g and subscribes it to the graph.
func NewEngine(g *graph.Graph, opts ...Options) *Engine {
	e := &Engine{
		g:       g,
		views:   make(map[string]*View),
		sinkPos: make(map[rete.ChangeSink]int),
	}
	if len(opts) > 0 {
		e.opts = opts[0]
	}
	e.workers = e.opts.NumWorkers
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.reg = rete.NewSubplanRegistry(g, !e.opts.NoSharing, e.addSinkLocked, e.noteReleasedLocked)
	g.Subscribe(e)
	return e
}

// pool returns the propagation worker pool, starting it on first use.
// Only Apply calls pool, and commits are serialised by the store's
// writer lock, so creation needs no extra synchronisation; Close reads
// e.jobs only after Unsubscribe's lock barrier.
func (e *Engine) pool() chan func() {
	if e.jobs == nil {
		e.jobs = make(chan func(), e.workers)
		for i := 0; i < e.workers; i++ {
			go func() {
				for job := range e.jobs {
					job()
				}
			}()
		}
	}
	return e.jobs
}

// Close unsubscribes the engine from the graph and stops the worker
// pool. Views stop updating. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// Unsubscribe serialises against in-flight commits (it takes the
	// store's writer lock), so once it returns no Apply can be running
	// or arrive — closing the pool after it is safe.
	e.g.Unsubscribe(e)
	if e.jobs != nil {
		close(e.jobs)
	}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// View is a registered materialised view: a named handle onto a (possibly
// shared) production node of the Rete network.
type View struct {
	name   string
	query  string
	engine *Engine
	params map[string]value.Value
	regSeq int // registration order (see Engine.nextRegSeq)

	ast     *cypher.Query
	graText string
	nraText string
	plan    *fra.Plan

	network *rete.Network
	subID   int // this view's subscription token on the production

	// ordered is non-nil for views whose plan is rooted at a Top
	// operator: Rows() returns rank order and OnChange batches are
	// sorted by rank (the window contents are maintained by the Rete
	// TopKNode; the order is applied at this delivery boundary).
	ordered *topOrder

	// Rank-order cache for ordered views: the production's cached
	// canonical slice is the sort source; as long as it hands back the
	// identical slice (no commit rebuilt it), the rank-sorted copy is
	// reused instead of re-evaluating keys and re-sorting per read.
	orderedMu   sync.Mutex
	orderedSrc  []value.Row
	orderedRows []value.Row

	pending []rete.Delta // deltas accumulated since the last commit flush
	subs    []func([]rete.Delta)
}

// RegisterView compiles, checks and materialises a view. The query must
// lie in the incrementally maintainable fragment; otherwise the error
// wraps ErrNotMaintainable (and the query can still be evaluated by the
// snapshot engine).
func (e *Engine) RegisterView(name, query string) (*View, error) {
	return e.RegisterViewParams(name, query, nil)
}

// RegisterViewParams is RegisterView with query parameters, substituted
// at compilation time.
//
// Registration cost scales with what is new: subtrees another live view
// already compiled are attached to in place, and each attachment is
// seeded by replaying the shared node's memoized rows — registering the
// 50th view of a popular template does not re-scan the graph per
// operator.
func (e *Engine) RegisterViewParams(name, query string, params map[string]value.Value) (*View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, err := e.registerLocked(name, query, params, true)
	if err != nil {
		return nil, err
	}
	if e.dur != nil {
		if _, err := e.dur.log.AppendRegister(name, query, checkpoint.EncodeParams(params)); err != nil {
			// The registration must not outlive a log it was never
			// written to; undo it and surface the failure.
			_ = e.dropLocked(name)
			return nil, fmt.Errorf("ivm: log registration of %q: %w", name, err)
		}
	}
	return v, nil
}

// registerLocked is the registration body. With seed=false the built
// network is NOT seeded from the graph — the recovery path registers
// every checkpointed view structurally and then restores each node's
// memo directly, skipping the initial scan.
func (e *Engine) registerLocked(name, query string, params map[string]value.Value, seed bool) (*View, error) {
	if _, exists := e.views[name]; exists {
		return nil, fmt.Errorf("ivm: view %q already registered", name)
	}
	ast, err := cypher.Parse(query)
	if err != nil {
		return nil, err
	}
	graPlan, err := gra.Compile(ast)
	if err != nil {
		return nil, err
	}
	nraPlan, err := nra.Transform(graPlan)
	if err != nil {
		return nil, err
	}
	// Render the GRA and NRA stages before flattening: Flatten rewrites
	// the operator tree in place (merging unnests into base operators),
	// and Explain should show the µ operators of the NRA stage.
	graText := gra.Format(graPlan)
	nraText := nra.Format(nraPlan)
	plan, err := fra.Flatten(nraPlan)
	if err != nil {
		return nil, err
	}
	if err := CheckFragment(plan.Root); err != nil {
		return nil, fmt.Errorf("ivm: %q: %w", name, err)
	}
	network, err := rete.Build(plan, e.g, e.reg, params)
	if err != nil {
		e.drainReleasedLocked()
		return nil, err
	}
	v := &View{
		name: name, query: query, engine: e, params: params,
		ast: ast, graText: graText, nraText: nraText, plan: plan,
		network: network,
	}
	v.regSeq = e.nextRegSeq
	e.nextRegSeq++
	if top, ok := plan.Root.(*nra.Top); ok {
		ordered, err := newTopOrder(top, e.g, params)
		if err != nil {
			// Unreachable after CheckFragment (the same expressions
			// compiled inside rete.Build), but fail closed.
			network.Release(e.reg)
			e.drainReleasedLocked()
			return nil, err
		}
		v.ordered = ordered
	}
	if seed {
		network.Seed()
	}
	if e.qs.rewriteOn.Load() {
		// Rewrite serving is on: make the new view's memo publishable (and
		// thereby a rewrite candidate) from birth.
		v.network.Prod.Watch(e.g.Epoch())
	}
	e.views[name] = v
	i := sort.Search(len(e.viewList), func(i int) bool { return e.viewList[i].name >= name })
	e.viewList = append(e.viewList, nil)
	copy(e.viewList[i+1:], e.viewList[i:])
	e.viewList[i] = v
	e.plan = e.reg.BuildPropPlan()
	return v, nil
}

// DropView detaches and forgets a view. Reference counting confines the
// detachment to the suffix of the view's node chain that no surviving
// view shares: a shared join or transitive node keeps its memory and its
// other attachments untouched.
func (e *Engine) DropView(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Log the drop before applying it, so a failed append leaves live and
	// durable state agreeing that the view still exists (the register path
	// has the mirror-image undo). After the existence check, dropLocked
	// cannot fail, so a logged drop is always applied.
	if _, ok := e.views[name]; !ok {
		return fmt.Errorf("ivm: view %q is not registered", name)
	}
	if e.dur != nil {
		if _, err := e.dur.log.AppendDrop(name); err != nil {
			return fmt.Errorf("ivm: log drop of %q: %w", name, err)
		}
	}
	return e.dropLocked(name)
}

func (e *Engine) dropLocked(name string) error {
	v, ok := e.views[name]
	if !ok {
		return fmt.Errorf("ivm: view %q is not registered", name)
	}
	if v.subID != 0 {
		v.network.Prod.Unsubscribe(v.subID)
	}
	v.network.Release(e.reg)
	e.drainReleasedLocked()
	delete(e.views, name)
	for i, lv := range e.viewList {
		if lv == v {
			e.viewList = append(e.viewList[:i], e.viewList[i+1:]...)
			break
		}
	}
	e.plan = e.reg.BuildPropPlan()
	return nil
}

// addSinkLocked registers a changeset sink and records its position for
// ordered removal. Invoked by the registry for every new input or
// transitive node; caller holds e.mu (RegisterView) or runs before the
// engine is shared (NewEngine).
func (e *Engine) addSinkLocked(s rete.ChangeSink) {
	e.sinkPos[s] = len(e.sinks)
	e.sinks = append(e.sinks, s)
}

// noteReleasedLocked collects sinks whose registry entries were released;
// RegisterView (error path) and DropView drain the batch in one
// compaction pass.
func (e *Engine) noteReleasedLocked(s rete.ChangeSink) {
	e.released = append(e.released, s)
}

// drainReleasedLocked removes the collected released sinks from the
// routing list in one O(|sinks|) compaction pass via the position index.
// Relative order of the surviving sinks is preserved: the rete freshness
// optimisation relies on a subtree's input nodes preceding its transitive
// nodes in fan-out order, so a swap-delete would be incorrect here.
func (e *Engine) drainReleasedLocked() {
	drop := 0
	for _, s := range e.released {
		if _, ok := e.sinkPos[s]; ok {
			delete(e.sinkPos, s)
			drop++
		}
	}
	e.released = e.released[:0]
	if drop == 0 {
		return
	}
	kept := e.sinks[:0]
	for _, s := range e.sinks {
		if _, ok := e.sinkPos[s]; ok {
			e.sinkPos[s] = len(kept)
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(e.sinks); i++ {
		e.sinks[i] = nil
	}
	e.sinks = kept
}

// View returns a registered view by name.
func (e *Engine) View(name string) (*View, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.views[name]
	return v, ok
}

// ViewNames returns the sorted names of all registered views.
func (e *Engine) ViewNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.viewList))
	for _, v := range e.viewList {
		out = append(out, v.name)
	}
	return out
}

// MemoryEntries reports the total number of memoized rows across all
// distinct live Rete nodes — each shared node counted once, however many
// views attach to it. This is the engine-level figure of the sharing
// experiment (EXP-L); View.MemoryEntries reports the per-view dependency
// closure instead.
func (e *Engine) MemoryEntries() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.reg.MemoryEntries()
}

// NodeCount reports the number of distinct live Rete nodes (including
// productions) across all views.
func (e *Engine) NodeCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.reg.NodeCount()
}

// Name returns the view's name.
func (v *View) Name() string { return v.name }

// Query returns the view's query text.
func (v *View) Query() string { return v.query }

// Schema returns the view's output attribute names.
func (v *View) Schema() schema.Schema { return v.plan.OutSchema }

// Rows returns the current view contents, one entry per bag
// multiplicity: in rank order for ordered views (the view's ORDER BY
// with the canonical tie-break — the window reads as a leaderboard),
// in canonical order otherwise.
func (v *View) Rows() []value.Row {
	rows := v.network.Prod.Rows()
	if v.ordered == nil {
		return rows
	}
	return v.rankOrdered(rows)
}

// rankOrdered maps a canonical-order slice to rank order through the
// view's identity cache. The production rebuilds its cached slice only
// when a commit touched the view, so slice identity doubles as a dirty
// flag for the rank-order cache: repeated reads between commits re-sort
// nothing. Publication hands out the same slices the legacy cache holds,
// so wait-free PublishedRows readers and locked Rows readers share one
// sorted copy.
func (v *View) rankOrdered(rows []value.Row) []value.Row {
	v.orderedMu.Lock()
	defer v.orderedMu.Unlock()
	if len(rows) == len(v.orderedSrc) &&
		(len(rows) == 0 || &rows[0] == &v.orderedSrc[0]) {
		return v.orderedRows
	}
	out := make([]value.Row, len(rows))
	copy(out, rows)
	v.ordered.SortRows(out)
	v.orderedSrc, v.orderedRows = rows, out
	return out
}

// Watch turns on per-epoch row publication for this view (see
// PublishedRows) and publishes the current contents at the graph's
// current epoch. Must not run concurrently with a commit — the server
// calls it while holding its write lock.
func (v *View) Watch() {
	v.network.Prod.Watch(v.engine.g.Epoch())
}

// PublishedRows returns the view contents as of the latest committed
// epoch, wait-free: no lock is taken that the commit path needs, so a
// reader never blocks (or is blocked by) a writer. Rank order for
// ordered views, canonical order otherwise; the slice is immutable. ok
// is false until Watch has been called.
func (v *View) PublishedRows() (rows []value.Row, epoch uint64, ok bool) {
	pub := v.network.Prod.Published()
	if pub == nil {
		return nil, 0, false
	}
	rows = pub.Rows
	if v.ordered != nil {
		rows = v.rankOrdered(rows)
	}
	return rows, pub.Epoch, true
}

// Ordered reports whether the view's results carry a query-defined
// order (its plan is rooted at ORDER BY/SKIP/LIMIT); Rows() then
// returns rank order rather than the canonical order.
func (v *View) Ordered() bool { return v.ordered != nil }

// DistinctCount returns the number of distinct rows in the view.
func (v *View) DistinctCount() int { return v.network.Prod.DistinctCount() }

// OnChange subscribes fn to the view's delta stream. fn runs
// synchronously inside Commit and must not mutate the graph. It fires at
// most once per committed transaction, with the commit's coalesced net
// delta batch: transient retract/assert churn inside one commit (an edge
// added and removed in the same batch, an aggregate recomputed several
// times) nets out before subscribers see it, and an effect-free commit
// fires nothing. With several views registered, per-commit callbacks run
// in sorted view-name order, whatever the registration or scheduling
// order. Deltas are buffered only while at least one subscriber exists:
// the first OnChange call attaches the view to its production's delta
// stream, so subscriber-less views (the common case at scale) add no
// per-commit buffering or coalescing cost, shared production or not.
// Like every Engine method, OnChange must not be called while a graph
// mutation is in flight.
func (v *View) OnChange(fn func([]rete.Delta)) {
	// The production may be shared with other views; serialise the
	// subscriber-list mutation against DropView/OnChange of its peers.
	v.engine.mu.Lock()
	defer v.engine.mu.Unlock()
	if len(v.subs) == 0 {
		v.subID = v.network.Prod.Subscribe(func(ds []rete.Delta) { v.pending = append(v.pending, ds...) })
	}
	v.subs = append(v.subs, fn)
}

// flush delivers the deltas accumulated during one commit to the view's
// subscribers as a single coalesced batch.
func (v *View) flush() {
	if len(v.pending) == 0 {
		return
	}
	batch := coalesceDeltas(&v.engine.coalesceH, v.pending)
	v.pending = v.pending[:0]
	if len(batch) == 0 {
		return
	}
	if v.ordered != nil {
		// Ordered views deliver the coalesced batch in rank order, so
		// subscribers replaying it see window rows in leaderboard
		// position (coalescing leaves one delta per row, so the sort is
		// total over the batch).
		v.ordered.SortDeltas(batch)
	}
	for _, fn := range v.subs {
		fn(batch)
	}
}

// coalesceDeltas nets multiplicities per row, dropping rows that cancel
// out. Rows keep first-appearance order. Small batches — the per-commit
// common case — coalesce by pairwise comparison without building a key
// map; EqualRows agrees with key equality by construction. The map path
// encodes keys through the caller's scratch Hasher and probes with the
// zero-copy m[string(buf)] idiom, materialising a key string only when a
// new distinct row appears.
func coalesceDeltas(h *value.Hasher, ds []rete.Delta) []rete.Delta {
	if len(ds) <= 16 {
		out := make([]rete.Delta, 0, len(ds))
		for _, d := range ds {
			merged := false
			for i := range out {
				if value.EqualRows(out[i].Row, d.Row) {
					out[i].Mult += d.Mult
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, d)
			}
		}
		kept := out[:0]
		for _, d := range out {
			if d.Mult != 0 {
				kept = append(kept, d)
			}
		}
		return kept
	}
	type acc struct {
		row  value.Row
		mult int
	}
	m := make(map[string]*acc, len(ds))
	order := make([]*acc, 0, len(ds))
	for _, d := range ds {
		k := h.RowKey(d.Row)
		a := m[string(k)] // zero-copy probe
		if a == nil {
			a = &acc{row: d.Row}
			m[string(k)] = a
			order = append(order, a)
		}
		a.mult += d.Mult
	}
	out := make([]rete.Delta, 0, len(order))
	for _, a := range order {
		if a.mult != 0 {
			out = append(out, rete.Delta{Row: a.row, Mult: a.mult})
		}
	}
	return out
}

// MemoryEntries reports the total number of memoized rows across the
// stateful Rete nodes this view depends on, shared nodes included (each
// counted once within this view). Engine.MemoryEntries deduplicates
// across views.
func (v *View) MemoryEntries() int { return v.network.MemoryEntries() }

// Explain renders the three compilation stages of the paper for this
// view: the GRA plan, the NRA plan (with get-edges, transitive joins and
// unnests) and the flattened FRA plan with inferred minimal schemas.
func (v *View) Explain() string {
	return "== GRA ==\n" + v.graText +
		"== NRA ==\n" + v.nraText +
		"== FRA ==\n" + nra.Format(v.plan.Root) +
		"== schema ==\n" + v.plan.OutSchema.String() + "\n"
}

// Apply implements graph.Listener: one committed ChangeSet is fanned
// out to every live sink — input nodes and transitive-join nodes — then
// each view's OnChange fires once with the commit's coalesced deltas,
// in sorted view-name order. The routing order does not affect the final
// state: every node computes deltas against the current memories of its
// peers.
//
// With NumWorkers > 1 and at least two propagation groups, the fan-out
// is scheduled in three phases: every shared input node translates the
// ChangeSet into its delta batch exactly once (emit-free); the mutable
// network — partitioned into connected components of shared subtrees, so
// two views sharing a join or transitive node land in one component —
// propagates concurrently on the worker pool, each component applying
// the precomputed input batches into its own edges and running its own
// transitive sinks; then, after the barrier, every view's OnChange
// subscribers flush sequentially on this goroutine. No stateful node is
// ever touched by two workers; Apply returns only after every view is
// consistent and every callback has run.
func (e *Engine) Apply(cs *graph.ChangeSet) {
	e.mu.RLock()
	sinks := append(e.sinkScratch[:0], e.sinks...)
	views := append(e.viewScratch[:0], e.viewList...)
	plan := e.plan
	dur := e.dur
	e.mu.RUnlock()
	e.sinkScratch = sinks
	e.viewScratch = views

	if e.workers <= 1 || plan == nil || len(plan.Groups) < 2 {
		for _, s := range sinks {
			s.ApplyChangeSet(cs)
		}
		for _, v := range views {
			v.network.Prod.Publish(cs.Epoch())
		}
		for _, v := range views {
			v.flush()
		}
		e.maybeCheckpoint(dur)
		return
	}

	// Phase 1: translate each shared input once. The batches are
	// read-only for the rest of the commit; input emitters are bypassed.
	if e.transScratch == nil {
		e.transScratch = make(map[rete.Translator][]rete.Delta)
	}
	clear(e.transScratch)
	batches := e.transScratch
	for _, s := range sinks {
		if t, ok := s.(rete.Translator); ok {
			batches[t] = t.TranslateChangeSet(cs)
		}
	}
	lookup := func(t rete.Translator) []rete.Delta { return batches[t] }

	// Phase 2: fan the propagation groups across the worker pool. Each
	// connected component of mutable nodes runs on exactly one worker;
	// wg.Wait restores the commit barrier.
	jobs := e.pool()
	var wg sync.WaitGroup
	wg.Add(len(plan.Groups))
	for i := range plan.Groups {
		grp := &plan.Groups[i]
		jobs <- func() {
			defer wg.Done()
			grp.Run(cs, lookup)
		}
	}
	wg.Wait()

	// Publish each watched production's post-commit row set at this
	// commit's epoch (after the barrier: every memo is final), making the
	// new state visible to wait-free PublishedRows readers before
	// OnChange subscribers run. Unwatched views pay one atomic load.
	for _, v := range views {
		v.network.Prod.Publish(cs.Epoch())
	}

	// Phase 3: flush OnChange subscribers sequentially on the
	// committing goroutine in sorted view-name order, preserving the
	// published callback contract (synchronous, never concurrent,
	// deterministic order) regardless of NumWorkers. The barrier above
	// makes every view's pending buffer complete and visible here.
	for _, v := range views {
		v.flush()
	}
	e.maybeCheckpoint(dur)
}
