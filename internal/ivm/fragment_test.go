package ivm_test

import (
	"errors"
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
)

// TestFragmentRejections checks the fragment boundary: queries with
// non-materialisable expressions — including ORDER BY keys the
// projection drops and non-constant window bounds — must be rejected
// with ErrNotMaintainable.
func TestFragmentRejections(t *testing.T) {
	engine := ivm.NewEngine(graph.New())
	cases := []string{
		// The projection drops a.score, so a score change would move the
		// window without any delta reaching the view.
		"MATCH (a) RETURN a ORDER BY a.score",
		// Window bounds must be constants.
		"MATCH (a) RETURN a, a.n AS n LIMIT n",
		"MATCH (a) RETURN a, a.n AS n ORDER BY n SKIP n",
		"MATCH (a) RETURN labels(a)",
		"MATCH (a) WHERE size(labels(a)) > 1 RETURN a",
		"MATCH (a)-[e]->(b) RETURN type(e)",
		"MATCH (a) RETURN keys(a)",
		// Property access on an UNWIND-bound vertex is not covered by
		// pushdown.
		"MATCH t = (a:A)-[:X*]->(b) UNWIND nodes(t) AS n RETURN n.x",
	}
	for i, q := range cases {
		_, err := engine.RegisterView(viewName(i), q)
		if err == nil {
			t.Errorf("RegisterView(%q) unexpectedly succeeded", q)
			continue
		}
		if !errors.Is(err, ivm.ErrNotMaintainable) {
			t.Errorf("RegisterView(%q): error %v does not wrap ErrNotMaintainable", q, err)
		}
	}
}

func viewName(i int) string { return string(rune('a' + i)) }

// TestFragmentAcceptance checks that the maintainable fragment —
// including path returns, path unwinding and ordered/top-k windows over
// returned columns — registers successfully.
func TestFragmentAcceptance(t *testing.T) {
	engine := ivm.NewEngine(graph.New())
	cases := []string{
		"MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, t",
		"MATCH t = (a)-[:X*]->(b) UNWIND nodes(t) AS n RETURN n",
		"MATCH t = (a)-[:X*]->(b) RETURN relationships(t), length(t)",
		"MATCH (a) RETURN id(a)",
		"MATCH (a) RETURN DISTINCT a",
		"MATCH (a) RETURN count(*)",
		"UNWIND [{k: 1}] AS m RETURN m", // maps as values are fine
		// Ordering/top-k over returned columns (PR 5): maintained by the
		// order-statistic TopKNode.
		"MATCH (a) RETURN a ORDER BY a",
		"MATCH (a) RETURN a, a.score ORDER BY a.score DESC LIMIT 10",
		"MATCH (a) RETURN a.name AS n ORDER BY n SKIP 2 LIMIT 3",
		"MATCH (a) RETURN a SKIP 1",
		"MATCH (a) RETURN a LIMIT 3",
		"MATCH (a) WITH a ORDER BY a.score DESC LIMIT 5 RETURN a.name",
	}
	for i, q := range cases {
		if _, err := engine.RegisterView(viewName(i)+"-ok", q); err != nil {
			t.Errorf("RegisterView(%q): %v", q, err)
		}
	}
}

// TestViewRegistryLifecycle covers duplicate names, lookup and dropping.
func TestViewRegistryLifecycle(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	v, err := engine.RegisterView("v1", "MATCH (a:A) RETURN a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.RegisterView("v1", "MATCH (a:A) RETURN a"); err == nil {
		t.Error("duplicate registration should fail")
	}
	if got, ok := engine.View("v1"); !ok || got != v {
		t.Error("View lookup failed")
	}
	if names := engine.ViewNames(); len(names) != 1 || names[0] != "v1" {
		t.Errorf("ViewNames = %v", names)
	}

	id := g.AddVertex([]string{"A"}, nil)
	if len(v.Rows()) != 1 {
		t.Fatal("view not maintained")
	}
	if err := engine.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	if err := engine.DropView("v1"); err == nil {
		t.Error("double drop should fail")
	}
	// The dropped view no longer receives updates.
	_ = g.RemoveVertex(id)
	if len(v.Rows()) != 1 {
		t.Error("dropped view should be frozen")
	}
}

// TestDropViewIsolation: dropping one view must not disturb others
// sharing input nodes.
func TestDropViewIsolation(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	v1, err := engine.RegisterView("v1", "MATCH (a:A) RETURN a")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := engine.RegisterView("v2", "MATCH (a:A) RETURN a, id(a) AS i")
	if err != nil {
		t.Fatal(err)
	}
	g.AddVertex([]string{"A"}, nil)
	if err := engine.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	g.AddVertex([]string{"A"}, nil)
	if len(v2.Rows()) != 2 {
		t.Errorf("surviving view rows = %d, want 2", len(v2.Rows()))
	}
	if len(v1.Rows()) != 1 {
		t.Errorf("dropped view rows = %d, want frozen at 1", len(v1.Rows()))
	}
}

// TestCloseStopsMaintenance verifies Engine.Close unsubscribes from the
// store.
func TestCloseStopsMaintenance(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	v, err := engine.RegisterView("v", "MATCH (a:A) RETURN a")
	if err != nil {
		t.Fatal(err)
	}
	engine.Close()
	g.AddVertex([]string{"A"}, nil)
	if len(v.Rows()) != 0 {
		t.Error("closed engine still maintaining views")
	}
}
