package ivm_test

import (
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
	"pgiv/internal/workload"
)

func checkSP(t *testing.T, g *graph.Graph, v *ivm.View, q string) {
	t.Helper()
	got := v.Rows()
	want, err := snapshot.Query(g, q, nil)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(got) != len(want.Rows) {
		t.Fatalf("view %d rows, oracle %d rows\nview: %v\noracle: %v", len(got), len(want.Rows), got, want.Rows)
	}
	for i := range got {
		if value.CompareRows(got[i], want.Rows[i]) != 0 {
			t.Fatalf("row %d differs: view %v vs oracle %v", i, got[i], want.Rows[i])
		}
	}
}

func TestSPBasicOracle(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	q := `MATCH p = shortestPath((a:Person)-[:KNOWS*1..3 {weight}]->(b:Person)) RETURN a, b, cost(p), length(p)`
	v, err := engine.RegisterView("sp", q)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var ids []graph.ID
	for i := 0; i < 6; i++ {
		ids = append(ids, g.AddVertex([]string{"Person"}, nil))
	}
	w := func(a, b int, wt int64) graph.ID {
		e, err := g.AddEdge(ids[a], ids[b], "KNOWS", map[string]value.Value{"weight": value.NewInt(wt)})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e01 := w(0, 1, 1)
	w(1, 2, 1)
	w(0, 2, 5)
	checkSP(t, g, v, q)
	w(2, 3, 2)
	w(3, 4, 0)
	checkSP(t, g, v, q)
	if err := g.RemoveEdge(e01); err != nil {
		t.Fatal(err)
	}
	checkSP(t, g, v, q)
	w(4, 5, 3)
	w(0, 5, 1)
	checkSP(t, g, v, q)
	if err := g.SetEdgeProperty(e01, "weight", value.NewInt(2)); err == nil {
		_ = err
	}
	checkSP(t, g, v, q)
}

func TestSPUnweightedUndirectedOracle(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	q := `MATCH p = shortestPath((a:Person)-[:KNOWS*0..2]-(b:Person)) RETURN a, b, cost(p)`
	v, err := engine.RegisterView("spu", q)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var ids []graph.ID
	for i := 0; i < 5; i++ {
		ids = append(ids, g.AddVertex([]string{"Person"}, nil))
	}
	for i := 0; i+1 < 5; i++ {
		if _, err := g.AddEdge(ids[i], ids[i+1], "KNOWS", nil); err != nil {
			t.Fatal(err)
		}
	}
	checkSP(t, g, v, q)
	e, err := g.AddEdge(ids[4], ids[0], "KNOWS", nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSP(t, g, v, q)
	if err := g.RemoveEdge(e); err != nil {
		t.Fatal(err)
	}
	checkSP(t, g, v, q)
	if err := g.RemoveVertex(ids[2]); err != nil {
		t.Fatal(err)
	}
	checkSP(t, g, v, q)
}

// TestSPDropViewReleasesSuffix pins the ref-counted lifecycle for
// shortest-path nodes: two views of one SP template share the stateful
// node; dropping one leaves the survivor maintained, dropping a view
// with a private SP suffix reclaims it, and dropping the last view
// empties the registry — including the per-source fragment memos.
func TestSPDropViewReleasesSuffix(t *testing.T) {
	soc := workload.GenerateSocial(workload.SocialConfig{
		Persons: 15, PostsPerPerson: 1, RepliesPerPost: 2,
		KnowsPerPerson: 3, LikesPerPerson: 1,
		Langs: []string{"en", "de"}, Seed: 11,
	})
	engine := ivm.NewEngine(soc.G)
	defer engine.Close()

	q := "MATCH t = shortestPath((a:Person)-[:KNOWS*1..3 {weight}]->(b:Person)) RETURN a, b, cost(t)"
	va, err := engine.RegisterView("a", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.RegisterView("b", q); err != nil {
		t.Fatal(err)
	}
	soloNodes := engine.NodeCount()
	// A different hop bound is a different fingerprint: its SP node is a
	// private suffix on the shared input.
	if _, err := engine.RegisterView("c",
		"MATCH t = shortestPath((a:Person)-[:KNOWS*1..2 {weight}]->(b:Person)) RETURN a, b, cost(t)"); err != nil {
		t.Fatal(err)
	}
	nodesBefore := engine.NodeCount()
	if nodesBefore <= soloNodes {
		t.Fatalf("variant bound view added no nodes (%d → %d)", soloNodes, nodesBefore)
	}

	if err := engine.DropView("b"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got != nodesBefore {
		t.Errorf("dropping a fully shared SP view changed node count %d → %d", nodesBefore, got)
	}
	if err := engine.DropView("c"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got != soloNodes {
		t.Errorf("dropping the variant view left %d nodes, want %d", got, soloNodes)
	}

	// The survivor keeps maintaining correctly through further updates.
	soc.Churn(40)
	checkSP(t, soc.G, va, q)

	if err := engine.DropView("a"); err != nil {
		t.Fatal(err)
	}
	if got := engine.NodeCount(); got != 0 {
		t.Errorf("registry holds %d nodes after the last view dropped", got)
	}
	if got := engine.MemoryEntries(); got != 0 {
		t.Errorf("registry holds %d memoized rows after the last view dropped", got)
	}
}
