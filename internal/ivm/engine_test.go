package ivm_test

import (
	"testing"

	"pgiv/internal/graph"
	"pgiv/internal/ivm"
	"pgiv/internal/rete"
	"pgiv/internal/snapshot"
	"pgiv/internal/value"
	"pgiv/internal/workload"
)

// TestSharingAblationEquivalence: with and without input-node sharing,
// view contents must be identical (EXP-F correctness side).
func TestSharingAblationEquivalence(t *testing.T) {
	build := func(opts ivm.Options) ([]*ivm.View, *workload.Social) {
		soc := workload.GenerateSocial(workload.SocialConfig{
			Persons: 10, PostsPerPerson: 2, RepliesPerPost: 4,
			KnowsPerPerson: 2, LikesPerPerson: 2,
			Langs: []string{"en", "de"}, Seed: 7,
		})
		engine := ivm.NewEngine(soc.G, opts)
		var views []*ivm.View
		for name, q := range workload.SocialQueries {
			v, err := engine.RegisterView(name, q)
			if err != nil {
				t.Fatalf("register %s: %v", name, err)
			}
			views = append(views, v)
		}
		soc.Churn(40)
		return views, soc
	}
	shared, _ := build(ivm.Options{})
	private, _ := build(ivm.Options{NoSharing: true})
	byName := make(map[string][]value.Row)
	for _, v := range shared {
		byName[v.Name()] = v.Rows()
	}
	for _, v := range private {
		want := byName[v.Name()]
		got := v.Rows()
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows shared vs %d private", v.Name(), len(want), len(got))
		}
		for i := range got {
			if value.CompareRows(got[i], want[i]) != 0 {
				t.Fatalf("%s row %d differs", v.Name(), i)
			}
		}
	}
}

// TestOnChangeNetEffect: folding the delta stream must reproduce the view
// contents (delta-stream consistency).
func TestOnChangeNetEffect(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	v, err := engine.RegisterView("v",
		"MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang RETURN p, c")
	if err != nil {
		t.Fatal(err)
	}
	folded := make(map[string]int)
	rowOf := make(map[string]value.Row)
	v.OnChange(func(deltas []rete.Delta) {
		for _, d := range deltas {
			k := value.RowKey(d.Row)
			folded[k] += d.Mult
			rowOf[k] = d.Row
			if folded[k] == 0 {
				delete(folded, k)
			}
		}
	})

	soc := workload.GenerateSocial(workload.SocialConfig{
		Persons: 5, PostsPerPerson: 2, RepliesPerPost: 5,
		KnowsPerPerson: 1, LikesPerPerson: 1,
		Langs: []string{"en", "de"}, Seed: 3,
	})
	// Note: the view was registered on an empty graph bound to g, not to
	// soc.G; rebuild properly below.
	_ = soc
	// Drive updates on g directly.
	p := g.AddVertex([]string{"Post"}, map[string]value.Value{"lang": value.NewString("en")})
	c1 := g.AddVertex([]string{"Comm"}, map[string]value.Value{"lang": value.NewString("en")})
	c2 := g.AddVertex([]string{"Comm"}, map[string]value.Value{"lang": value.NewString("de")})
	e1, _ := g.AddEdge(p, c1, "REPLY", nil)
	_, _ = g.AddEdge(c1, c2, "REPLY", nil)
	_ = g.SetVertexProperty(c2, "lang", value.NewString("en"))
	_ = g.SetVertexProperty(p, "lang", value.NewString("de"))
	_ = g.SetVertexProperty(p, "lang", value.NewString("en"))
	_ = g.RemoveEdge(e1)

	// The folded delta stream must equal the (empty) view.
	rows := v.Rows()
	total := 0
	for _, m := range folded {
		total += m
	}
	if total != len(rows) {
		t.Fatalf("folded stream has %d rows, view has %d", total, len(rows))
	}
}

// TestLateRegistrationMatchesSnapshot: registering on a populated graph
// must seed the exact snapshot result.
func TestLateRegistrationMatchesSnapshot(t *testing.T) {
	train := workload.GenerateTrain(workload.DefaultTrainConfig(1))
	engine := ivm.NewEngine(train.G)
	for name, q := range workload.TrainQueries {
		v, err := engine.RegisterView(name, q)
		if err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		res, err := snapshot.Query(train.G, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := res.Sorted()
		got := v.Rows()
		if len(got) != len(want) {
			t.Fatalf("%s: view %d rows, snapshot %d", name, len(got), len(want))
		}
		for i := range got {
			if value.CompareRows(got[i], want[i]) != 0 {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}

// TestTrainBenchmarkDifferential drives the inject/repair mix and checks
// all six constraint views against the oracle after every transformation.
func TestTrainBenchmarkDifferential(t *testing.T) {
	train := workload.GenerateTrain(workload.TrainConfig{
		Routes: 4, SwitchesPerRoute: 3, SegmentsPerSwitch: 4,
		FaultRate: 0.15, Seed: 11,
	})
	engine := ivm.NewEngine(train.G)
	views := make(map[string]*ivm.View)
	for name, q := range workload.TrainQueries {
		v, err := engine.RegisterView(name, q)
		if err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		views[name] = v
	}
	for i := 0; i < 30; i++ {
		train.InjectRepairMix(1)
		for name, v := range views {
			res, err := snapshot.Query(train.G, v.Query(), nil)
			if err != nil {
				t.Fatal(err)
			}
			want := res.Sorted()
			got := v.Rows()
			if len(got) != len(want) {
				t.Fatalf("step %d %s: view %d rows, snapshot %d", i, name, len(got), len(want))
			}
			for j := range got {
				if value.CompareRows(got[j], want[j]) != 0 {
					t.Fatalf("step %d %s row %d differs", i, name, j)
				}
			}
		}
	}
}

// TestParamsViews: parameters are substituted at registration time.
func TestParamsViews(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	v, err := engine.RegisterViewParams("hot",
		"MATCH (a:P) WHERE a.score > $min RETURN a",
		map[string]value.Value{"min": value.NewInt(5)})
	if err != nil {
		t.Fatal(err)
	}
	g.AddVertex([]string{"P"}, map[string]value.Value{"score": value.NewInt(3)})
	g.AddVertex([]string{"P"}, map[string]value.Value{"score": value.NewInt(8)})
	if len(v.Rows()) != 1 {
		t.Errorf("rows = %d, want 1", len(v.Rows()))
	}
	if _, err := engine.RegisterView("bad", "MATCH (a:P) WHERE a.x > $missing RETURN a"); err == nil {
		t.Error("missing parameter should fail registration")
	}
}

// TestMemoryEntriesReporting sanity-checks the memory accounting used by
// the memory experiment.
func TestMemoryEntriesReporting(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	v, err := engine.RegisterView("v", "MATCH (a:A)-[:X]->(b:B) RETURN a, b")
	if err != nil {
		t.Fatal(err)
	}
	if v.MemoryEntries() != 0 {
		t.Errorf("empty view memory = %d", v.MemoryEntries())
	}
	a := g.AddVertex([]string{"A"}, nil)
	b := g.AddVertex([]string{"B"}, nil)
	_, _ = g.AddEdge(a, b, "X", nil)
	if v.MemoryEntries() == 0 {
		t.Error("populated view reports zero memory")
	}
}

// TestExplainStages: the three pipeline stages render distinctly.
func TestExplainStages(t *testing.T) {
	g := graph.New()
	engine := ivm.NewEngine(g)
	v, err := engine.RegisterView("v",
		"MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p")
	if err != nil {
		t.Fatal(err)
	}
	ex := v.Explain()
	for _, frag := range []string{
		"== GRA ==", "Expand",
		"== NRA ==", "Unnest µ(p.lang → p.lang)", "GetEdges",
		"== FRA ==", "{lang→p.lang}",
		"== schema ==", "(p)",
	} {
		if !contains(ex, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, ex)
		}
	}
	if contains(splitAfter(ex, "== FRA =="), "Unnest") {
		t.Error("FRA stage still contains unnest operators")
	}
}

func contains(s, sub string) bool { return len(s) >= len(sub) && indexOf(s, sub) >= 0 }

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func splitAfter(s, marker string) string {
	if i := indexOf(s, marker); i >= 0 {
		return s[i:]
	}
	return ""
}
