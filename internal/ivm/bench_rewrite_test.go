package ivm_test

import (
	"testing"

	"pgiv/internal/ivm"
	"pgiv/internal/snapshot"
	"pgiv/internal/workload"
)

// BenchmarkRewriteExactHit measures answering an ad-hoc query that
// exactly matches a maintained view's memo, against the from-scratch
// snapshot evaluation of the same query (BenchmarkRewriteScratch).
func BenchmarkRewriteExactHit(b *testing.B) {
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(2))
	engine := ivm.NewEngine(soc.G, ivm.Options{NumWorkers: 1})
	defer engine.Close()
	const q = "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b"
	if _, err := engine.RegisterView("knows", q); err != nil {
		b.Fatal(err)
	}
	engine.EnableRewrite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewriteScratch(b *testing.B) {
	soc := workload.GenerateSocial(workload.DefaultSocialConfig(2))
	const q = "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a, b"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Query(soc.G, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}
